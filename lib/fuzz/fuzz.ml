open Ccsim
module R = Vm.Radixvm.Default
module T = Vm.Vm_types

type config = {
  seed : int;
  ops : int;
  ncores : int;
  check : bool;
  verbose : bool;
  broken : bool;
  rangelock : Locks.Range_lock.kind;
      (* every process's address space uses this backend; the default
         keeps the seed-42 golden transcript byte-identical *)
  crash : bool;
      (* draw crash rules (Injected_crash) into the fault plan; off by
         default so the golden transcript's rng sequence is untouched *)
  watchdog : int option;
      (* livelock horizon in simulated cycles (requires [check]) *)
  lock_timeouts : (string * float) list;
      (* spurious try_acquire-timeout rules, (line label, probability) *)
}

let default =
  { seed = 0; ops = 600; ncores = 4; check = true; verbose = false;
    broken = false; rangelock = Locks.Range_lock.Radix_embedded;
    crash = false; watchdog = None; lock_timeouts = [] }

(* --- the reified session: an explicit, replayable program --- *)

type op =
  | Nop  (* a generated iteration that took no action (fork table full,
            exit with one process); recorded so replay drains and checks
            invariants at the same operation indices *)
  | Mmap of { p : int; c : int; lo : int; len : int; ro : bool }
  | Munmap of { p : int; c : int; lo : int; len : int }
  | Mprotect of { p : int; c : int; lo : int; len : int; ro : bool }
  | Store of { p : int; c : int; vpn : int; value : int }
  | Load of { p : int; c : int; vpn : int }
  | Touch of { p : int; c : int; vpn : int }
  | Discard of { p : int; c : int }
  | Fork of { p : int; c : int; child : int }
  | Exit of { c : int; victim : int }
  | Spawn of { id : int }

type rule_spec = { rs_op : string; rs_point : string option; rs_prob : float }

type plan_spec = {
  ps_budget : int option;
  ps_delayed : (int * int) list;
  ps_stalled : int list;
  ps_aborts : rule_spec list;
  ps_crashes : rule_spec list;
  ps_timeouts : (string * float) list;
}

type program = {
  pr_seed : int;
  pr_ncores : int;
  pr_check : bool;
  pr_broken : bool;
  pr_rangelock : Locks.Range_lock.kind;
  pr_watchdog : int option;
  pr_plan : plan_spec;
  pr_ops : op list;
}

type outcome = {
  transcript : string;
  passed : bool;
  failures : string list;
  crashes : int;
  livelocked : bool;
  program : program;
}

(* The oracle: per process, a map vpn -> (protection, expected word). A
   page that was mmapped but never stored reads as 0 (demand-zero), and a
   failed operation must leave the map — and the real tree — untouched. *)
type opage = { mutable o_prot : T.prot; mutable o_value : int }
type proc = { id : int; vm : R.t; pages : (int, opage) Hashtbl.t }

let region = 1024 (* fuzzed vpn range per address space *)
let max_procs = 6
let epoch = 50_000

(* Audited for iteration-order leaks (simlint det-hashtbl-order): the
   copy's insertion order — hence the copy's own iteration order in
   [rand_vpn] — follows [src]'s bucket order, which is a pure function of
   the operation history for a fixed seed. The seed-42 golden digest
   freezes it; migrating to a sorted copy would move those bytes, so the
   site is pinned in lint.allow instead. *)
let copy_pages src =
  let dst = Hashtbl.create (2 * Hashtbl.length src) in
  Hashtbl.iter
    (fun k v -> Hashtbl.replace dst k { o_prot = v.o_prot; o_value = v.o_value })
    src;
  dst

let pp_result = function
  | Stdlib.Ok () -> "ok"
  | Stdlib.Error e -> Format.asprintf "%a" T.pp_vm_error e

let counted_op = function Spawn _ -> false | _ -> true

let op_actor = function
  | Mmap { p; c; _ }
  | Munmap { p; c; _ }
  | Mprotect { p; c; _ }
  | Store { p; c; _ }
  | Load { p; c; _ }
  | Touch { p; c; _ }
  | Discard { p; c }
  | Fork { p; c; _ } ->
      Some (p, c)
  | Nop | Exit _ | Spawn _ -> None

type src =
  | Gen of config
  | Rep of { prog : program; verbose : bool; fail_fast : bool }

(* Abandon the op stream at the first failure (shrinker candidate runs:
   only the pass/fail bit matters, and a failing 600-op broken-rollback
   session can cost quadratic checker work if run to completion). *)
exception Failed_fast

let session ?(inject = fun (_ : int) -> []) src =
  let cfg =
    match src with
    | Gen cfg -> { cfg with ncores = max 2 cfg.ncores; ops = max 1 cfg.ops }
    | Rep { prog; verbose; _ } ->
        {
          seed = prog.pr_seed;
          ops = List.length (List.filter counted_op prog.pr_ops);
          ncores = max 2 prog.pr_ncores;
          check = prog.pr_check;
          verbose;
          broken = prog.pr_broken;
          rangelock = prog.pr_rangelock;
          crash = prog.pr_plan.ps_crashes <> [];
          watchdog = prog.pr_watchdog;
          lock_timeouts = prog.pr_plan.ps_timeouts;
        }
  in
  let buf = Buffer.create 4096 in
  let out fmt =
    Printf.ksprintf
      (fun s ->
        Buffer.add_string buf s;
        Buffer.add_char buf '\n')
      fmt
  in
  let trace fmt =
    Printf.ksprintf (fun s -> if cfg.verbose then out "%s" s) fmt
  in
  let failures = ref [] in
  let ff_armed = ref false in
  let failed fmt =
    Printf.ksprintf
      (fun s ->
        let s = Printf.sprintf "seed=%d: %s" cfg.seed s in
        failures := s :: !failures;
        out "FAIL %s" s;
        if !ff_armed then raise Failed_fast)
      fmt
  in
  let rng = Random.State.make [| 0x5eed; cfg.seed |] in
  let machine =
    Machine.create (Params.default ~ncores:cfg.ncores ~epoch_cycles:epoch ())
  in
  let checker = if cfg.check then Some (Check.attach machine) else None in
  (* The fault plan is drawn from the session rng, except that core 1 is
     always configured to acknowledge IPIs late enough (past
     ipi_ack_timeout) to force at least one sender-side retry — together
     with the frame budget and the abort rules this guarantees every
     session exercises frame exhaustion, IPI delay, and mid-op aborts.
     When replaying, the drawn plan is replaced by the program's explicit
     plan spec; generation reifies its draws into the same spec type so
     both modes configure the plan through one code path. *)
  let plan = Fault.create ~seed:cfg.seed () in
  let spec =
    match src with
    | Rep { prog; _ } ->
        (* Shrunk or hand-edited programs may reference cores that no
           longer exist after core reduction: drop those plan entries. *)
        let pl = prog.pr_plan in
        {
          pl with
          ps_delayed =
            List.filter (fun (c, _) -> c >= 0 && c < cfg.ncores) pl.ps_delayed;
          ps_stalled =
            List.filter (fun c -> c >= 0 && c < cfg.ncores) pl.ps_stalled;
        }
    | Gen _ ->
        let budget = 10 + Random.State.int rng 16 in
        let delayed =
          ref [ (1, 300_000 + Random.State.int rng 150_000) ]
        and stalled = ref [] in
        for c = 2 to cfg.ncores - 1 do
          match Random.State.int rng 10 with
          | 0 -> stalled := c :: !stalled
          | 1 | 2 ->
              delayed := (c, 5_000 + Random.State.int rng 400_000) :: !delayed
          | _ -> ()
        done;
        let aborts =
          List.map
            (fun op ->
              { rs_op = op; rs_point = None;
                rs_prob = 0.02 +. Random.State.float rng 0.10 })
            [ "mmap"; "munmap"; "mprotect"; "pagefault" ]
        in
        (* Crash probabilities are drawn after every legacy draw, and only
           when asked for, so crash-free configs keep the frozen rng
           sequence (golden digest). *)
        let crashes =
          if cfg.crash then
            List.map
              (fun op ->
                { rs_op = op; rs_point = None;
                  rs_prob = 0.0005 +. Random.State.float rng 0.0045 })
              [ "mmap"; "munmap"; "mprotect"; "pagefault"; "fork" ]
          else []
        in
        {
          ps_budget = Some budget;
          ps_delayed = List.rev !delayed;
          ps_stalled = List.rev !stalled;
          ps_aborts = aborts;
          ps_crashes = crashes;
          ps_timeouts = cfg.lock_timeouts;
        }
  in
  Fault.set_frame_budget plan spec.ps_budget;
  List.iter
    (fun (c, cycles) -> Fault.delay_ipi plan ~core:c ~cycles)
    spec.ps_delayed;
  List.iter (fun c -> Fault.stall_ipi plan ~core:c) spec.ps_stalled;
  List.iter
    (fun r -> Fault.abort_ops plan ~op:r.rs_op ?point:r.rs_point ~prob:r.rs_prob ())
    spec.ps_aborts;
  List.iter
    (fun r -> Fault.crash_ops plan ~op:r.rs_op ?point:r.rs_point ~prob:r.rs_prob ())
    spec.ps_crashes;
  List.iter
    (fun (label, prob) -> Fault.timeout_locks plan ~label ~prob)
    spec.ps_timeouts;
  if cfg.broken then Fault.set_break_rollback plan true;
  Machine.set_fault machine (Some plan);
  (match (checker, cfg.watchdog) with
  | Some ck, Some horizon -> Check.arm_watchdog ck ~horizon
  | _ -> ());
  let budget_str =
    match spec.ps_budget with Some b -> string_of_int b | None -> "none"
  in
  out "fuzz: seed=%d ops=%d cores=%d budget=%s%s%s%s%s" cfg.seed cfg.ops
    cfg.ncores budget_str
    (* Every suffix is empty at the defaults, keeping golden bytes. *)
    (match cfg.rangelock with
    | Locks.Range_lock.Radix_embedded -> ""
    | k -> " rangelock=" ^ Locks.Range_lock.name k)
    (if cfg.broken then " BROKEN-ROLLBACK" else "")
    (if spec.ps_crashes <> [] then " crash" else "")
    (match cfg.watchdog with
    | Some h -> Printf.sprintf " watchdog=%d" h
    | None -> "");
  let rule_str r =
    (* %.3f over plan constants, not computed values: fixed-point
       rendering of exact config floats is stable across platforms and
       frozen by the golden digest (pinned in lint.allow). *)
    Printf.sprintf "%s%s:%.3f" r.rs_op
      (match r.rs_point with None -> "" | Some pt -> "@" ^ pt)
      r.rs_prob
  in
  out "plan: delayed=[%s] stalled=[%s] aborts=[%s]%s%s"
    (String.concat ","
       (List.map (fun (c, _) -> string_of_int c) spec.ps_delayed))
    (String.concat "," (List.map string_of_int spec.ps_stalled))
    (String.concat " " (List.map rule_str spec.ps_aborts))
    (if spec.ps_crashes = [] then ""
     else
       Printf.sprintf " crashes=[%s]"
         (String.concat " " (List.map rule_str spec.ps_crashes)))
    (if spec.ps_timeouts = [] then ""
     else
       Printf.sprintf " timeouts=[%s]"
         (String.concat " "
            (List.map
               (fun (l, p) -> Printf.sprintf "%s:%.3f" l p)
               spec.ps_timeouts)));
  (* --- processes --- *)
  let next_id = ref 0 in
  let new_proc ?id vm pages =
    let id =
      match id with
      | Some i ->
          next_id := max !next_id (i + 1);
          i
      | None ->
          let i = !next_id in
          incr next_id;
          i
    in
    { id; vm; pages }
  in
  let procs =
    ref
      [
        new_proc
          (R.create_with ~rangelock:cfg.rangelock machine)
          (Hashtbl.create 64);
      ]
  in
  let find_proc id = List.find_opt (fun q -> q.id = id) !procs in
  let n_ok = ref 0
  and n_segv = ref 0
  and n_enomem = ref 0
  and n_aborted = ref 0
  and n_oomr = ref 0
  and n_crashed = ref 0
  and n_skipped = ref 0 in
  let count_err = function
    | T.Enomem -> incr n_enomem
    | T.Aborted _ -> incr n_aborted
  in
  let skip () = incr n_skipped in
  let norm_core c = abs c mod cfg.ncores in
  let core_of c = Machine.core machine (norm_core c) in
  let rand_core () = Machine.core machine (Random.State.int rng cfg.ncores) in
  let rand_proc () =
    List.nth !procs (Random.State.int rng (List.length !procs))
  in
  let rand_range () =
    let lo = Random.State.int rng region in
    let len = 1 + Random.State.int rng 12 in
    (lo, min len (region - lo))
  in
  let oracle_mapped p vpn = Hashtbl.mem p.pages vpn in
  (* Page accesses aim at mapped pages most of the time: mmap ranges are a
     dozen pages in a 1024-page space, so uniform vpns almost always
     segfault and the frame budget is never even approached. (Hashtbl
     iteration order is deterministic for a given operation history, so
     this keeps transcripts reproducible; the seed-42 golden digest
     freezes the exact pick order, so this audited site is pinned in
     lint.allow rather than sorted — sorting would change the bytes.) *)
  let rand_vpn p =
    let n = Hashtbl.length p.pages in
    if n > 0 && Random.State.int rng 100 < 60 then begin
      let k = Random.State.int rng n in
      let i = ref 0 and pick = ref 0 in
      Hashtbl.iter
        (fun v _ ->
          if !i = k then pick := v;
          incr i)
        p.pages;
      !pick
    end
    else Random.State.int rng region
  in
  (* A failed operation is required to be a no-op: spot-check that the
     tree still agrees with the oracle at the range's endpoints. *)
  let check_noop label p lo hi =
    List.iter
      (fun v ->
        let m = R.mapped p.vm ~vpn:v and o = oracle_mapped p v in
        if m <> o then
          failed "failed %s was not a no-op: p%d vpn %d is %s, oracle says %s"
            label p.id v
            (if m then "mapped" else "unmapped")
            (if o then "mapped" else "unmapped"))
      [ lo; hi ]
  in
  (* --- operations (explicit, resolved parameters — shared between
     generation and replay; the generator draws the parameters, the
     replayer reads them from the program) --- *)
  let do_mmap core p lo len ro =
    let prot = if ro then T.Read_only else T.Read_write in
    let r = R.mmap_result p.vm core ~vpn:lo ~npages:len ~prot () in
    trace "  c%d p%d mmap [%d,%d) %s -> %s" core.Core.id p.id lo (lo + len)
      (if prot = T.Read_only then "r-" else "rw")
      (pp_result r);
    match r with
    | Ok () ->
        incr n_ok;
        for v = lo to lo + len - 1 do
          Hashtbl.replace p.pages v { o_prot = prot; o_value = 0 }
        done;
        if not (R.mapped p.vm ~vpn:lo && R.mapped p.vm ~vpn:(lo + len - 1))
        then failed "mmap ok but p%d [%d,%d) is not mapped" p.id lo (lo + len)
    | Error e ->
        count_err e;
        check_noop "mmap" p lo (lo + len - 1)
  in
  let do_munmap core p lo len =
    let r = R.munmap_result p.vm core ~vpn:lo ~npages:len in
    trace "  c%d p%d munmap [%d,%d) -> %s" core.Core.id p.id lo (lo + len)
      (pp_result r);
    match r with
    | Ok () ->
        incr n_ok;
        for v = lo to lo + len - 1 do
          Hashtbl.remove p.pages v
        done;
        if R.mapped p.vm ~vpn:lo || R.mapped p.vm ~vpn:(lo + len - 1) then
          failed "munmap ok but p%d [%d,%d) still mapped" p.id lo (lo + len)
    | Error e ->
        count_err e;
        check_noop "munmap" p lo (lo + len - 1)
  in
  let do_mprotect core p lo len ro =
    let prot = if ro then T.Read_only else T.Read_write in
    let r = R.mprotect_result p.vm core ~vpn:lo ~npages:len prot in
    trace "  c%d p%d mprotect [%d,%d) %s -> %s" core.Core.id p.id lo (lo + len)
      (if prot = T.Read_only then "r-" else "rw")
      (pp_result r);
    match r with
    | Ok () ->
        incr n_ok;
        for v = lo to lo + len - 1 do
          match Hashtbl.find_opt p.pages v with
          | Some pg -> pg.o_prot <- prot
          | None -> ()
        done
    | Error e -> count_err e
  in
  let do_store core p vpn value =
    let r = R.store_result p.vm core ~vpn value in
    trace "  c%d p%d store %d<-%d -> %s" core.Core.id p.id vpn value
      (match r with
      | Ok a -> Format.asprintf "%a" T.pp_access_result a
      | Error e -> Format.asprintf "%a" T.pp_vm_error e);
    match r with
    | Ok T.Ok -> (
        incr n_ok;
        match Hashtbl.find_opt p.pages vpn with
        | Some pg when pg.o_prot = T.Read_write -> pg.o_value <- value
        | Some _ -> failed "store to read-only p%d vpn %d succeeded" p.id vpn
        | None -> failed "store to unmapped p%d vpn %d succeeded" p.id vpn)
    | Ok T.Segfault -> (
        incr n_segv;
        match Hashtbl.find_opt p.pages vpn with
        | Some { o_prot = T.Read_write; _ } ->
            failed "store to mapped rw p%d vpn %d segfaulted" p.id vpn
        | Some _ | None -> ())
    | Ok T.Oom -> incr n_oomr
    | Error e -> count_err e
  in
  let do_load core p vpn =
    let r = R.load_result p.vm core ~vpn in
    trace "  c%d p%d load %d -> %s" core.Core.id p.id vpn
      (match r with
      | Ok (Some v) -> string_of_int v
      | Ok None -> "fault"
      | Error e -> Format.asprintf "%a" T.pp_vm_error e);
    match r with
    | Ok (Some v) -> (
        incr n_ok;
        match Hashtbl.find_opt p.pages vpn with
        | Some pg when pg.o_value = v -> ()
        | Some pg ->
            failed "load p%d vpn %d returned %d, oracle expects %d" p.id vpn v
              pg.o_value
        | None -> failed "load of unmapped p%d vpn %d returned %d" p.id vpn v)
    | Ok None ->
        incr n_segv;
        if oracle_mapped p vpn then
          failed "load of mapped p%d vpn %d faulted" p.id vpn
    | Error e -> count_err e
  in
  let do_touch core p vpn =
    let r = R.touch_result p.vm core ~vpn in
    trace "  c%d p%d touch %d -> %s" core.Core.id p.id vpn
      (match r with
      | Ok a -> Format.asprintf "%a" T.pp_access_result a
      | Error e -> Format.asprintf "%a" T.pp_vm_error e);
    match r with
    | Ok T.Ok -> (
        incr n_ok;
        match Hashtbl.find_opt p.pages vpn with
        | Some { o_prot = T.Read_write; _ } -> ()
        | Some _ -> failed "touch of read-only p%d vpn %d succeeded" p.id vpn
        | None -> failed "touch of unmapped p%d vpn %d succeeded" p.id vpn)
    | Ok T.Segfault -> (
        incr n_segv;
        match Hashtbl.find_opt p.pages vpn with
        | Some { o_prot = T.Read_write; _ } ->
            failed "touch of mapped rw p%d vpn %d segfaulted" p.id vpn
        | Some _ | None -> ())
    | Ok T.Oom -> incr n_oomr
    | Error e -> count_err e
  in
  let do_discard core p =
    R.discard_page_tables p.vm core;
    incr n_ok;
    trace "  c%d p%d discard page tables" core.Core.id p.id
  in
  let do_fork core p child =
    if List.length !procs >= max_procs then skip ()
    else
      match R.fork_result p.vm core with
      | Ok vm ->
          let q = new_proc ~id:child vm (copy_pages p.pages) in
          procs := !procs @ [ q ];
          incr n_ok;
          trace "  c%d p%d fork -> p%d" core.Core.id p.id q.id
      | Error e ->
          count_err e;
          trace "  c%d p%d fork -> %s" core.Core.id p.id
            (pp_result (Error e))
  in
  let do_exit core victim =
    match List.partition (fun q -> q.id = victim) !procs with
    | [ v ], rest when rest <> [] ->
        procs := rest;
        R.destroy v.vm core;
        incr n_ok;
        trace "  c%d exit p%d" core.Core.id v.id
    | _ -> skip ()
  in
  let do_spawn id =
    match find_proc id with
    | Some _ -> skip ()
    | None ->
        let q =
          new_proc ~id
            (R.create_with ~rangelock:cfg.rangelock machine)
            (Hashtbl.create 64)
        in
        procs := !procs @ [ q ];
        out "spawn: p%d (no survivors)" id
  in
  let with_proc p f = match find_proc p with Some q -> f q | None -> skip () in
  let exec = function
    | Nop -> ()
    | Mmap { p; c; lo; len; ro } ->
        with_proc p (fun q -> do_mmap (core_of c) q lo len ro)
    | Munmap { p; c; lo; len } ->
        with_proc p (fun q -> do_munmap (core_of c) q lo len)
    | Mprotect { p; c; lo; len; ro } ->
        with_proc p (fun q -> do_mprotect (core_of c) q lo len ro)
    | Store { p; c; vpn; value } ->
        with_proc p (fun q -> do_store (core_of c) q vpn value)
    | Load { p; c; vpn } -> with_proc p (fun q -> do_load (core_of c) q vpn)
    | Touch { p; c; vpn } -> with_proc p (fun q -> do_touch (core_of c) q vpn)
    | Discard { p; c } -> with_proc p (fun q -> do_discard (core_of c) q)
    | Fork { p; c; child } ->
        with_proc p (fun q -> do_fork (core_of c) q child)
    | Exit { c; victim } -> do_exit (core_of c) victim
    | Spawn { id } -> do_spawn id
  in
  (* A crashed operation does not unwind the VM's critical section: the
     process is dead mid-mutation with range locks held. The kernel-side
     recovery ([R.reap] on the crashed core) backs out the half-done
     mutation, force-releases the dead process's locks, and reclaims its
     frames; siblings must come through untouched, which is asserted
     right here, at the most adversarial moment. *)
  let run_op op =
    match exec op with
    | () -> ()
    | exception Fault.Injected_crash { op = fop; point } -> (
        match op_actor op with
        | None -> ()
        | Some (pid, cid) -> (
            incr n_crashed;
            out "crash: c%d p%d died in %s@%s; reaped" (norm_core cid) pid fop
              point;
            match find_proc pid with
            | None -> ()
            | Some p ->
                procs := List.filter (fun q -> q.id <> pid) !procs;
                R.reap p.vm (core_of cid);
                (match checker with
                | None -> ()
                | Some ck -> (
                    match Check.leaked_locks ck with
                    | [] -> ()
                    | v :: _ as l ->
                        failed "reap of p%d left %d leaked locks, first: %s"
                          pid (List.length l)
                          (Format.asprintf "%a" Check.pp_leaked_lock v)));
                List.iter
                  (fun q ->
                    try R.check_invariants q.vm
                    with T.Invariant_violation { subsystem; detail } ->
                      failed "post-reap invariant violation in %s (p%d): %s"
                        subsystem q.id detail)
                  !procs))
  in
  let check_all_invariants () =
    List.iter
      (fun q ->
        try R.check_invariants q.vm
        with T.Invariant_violation { subsystem; detail } ->
          failed "invariant violation in %s (p%d): %s" subsystem q.id detail)
      !procs
  in
  (* --- the stream --- *)
  let ops_acc = ref [] in
  let record op = ops_acc := op :: !ops_acc in
  let gen_op () =
    let core = rand_core () in
    let p = rand_proc () in
    let c = core.Core.id and pid = p.id in
    match Random.State.int rng 100 with
    | r when r < 18 ->
        let lo, len = rand_range () in
        Mmap { p = pid; c; lo; len; ro = Random.State.int rng 100 < 15 }
    | r when r < 32 ->
        let lo, len = rand_range () in
        Munmap { p = pid; c; lo; len }
    | r when r < 40 ->
        let lo, len = rand_range () in
        Mprotect { p = pid; c; lo; len; ro = Random.State.int rng 2 = 0 }
    | r when r < 62 ->
        let vpn = rand_vpn p in
        let value = 1 + Random.State.int rng 1_000_000 in
        Store { p = pid; c; vpn; value }
    | r when r < 76 -> Load { p = pid; c; vpn = rand_vpn p }
    | r when r < 84 -> Touch { p = pid; c; vpn = rand_vpn p }
    | r when r < 88 -> Discard { p = pid; c }
    | r when r < 94 ->
        if List.length !procs < max_procs then begin
          let child = !next_id in
          incr next_id;
          Fork { p = pid; c; child }
        end
        else Nop
    | _ -> (
        match !procs with
        | _ :: rest when rest <> [] ->
            let idx = 1 + Random.State.int rng (List.length rest) in
            let victim = List.nth !procs idx in
            Exit { c; victim = victim.id }
        | _ -> Nop)
  in
  let counted = ref 0 in
  let generating = match src with Gen _ -> true | Rep _ -> false in
  let step op =
    if generating then record op;
    run_op op;
    (match checker with Some ck -> Check.feed_watchdog ck | None -> ());
    if counted_op op then begin
      incr counted;
      if !counted mod 97 = 0 then begin
        Machine.drain machine ~cycles:epoch;
        (* Cross-node spawn injections land here, right after the drain:
           the fuzzer's barrier points. Replay needs no hook — injected
           ops are recorded like any other, at exactly this position. *)
        List.iter
          (fun sp ->
            if generating then record sp;
            run_op sp)
          (inject (!counted / 97))
      end;
      if !counted mod 128 = 0 then check_all_invariants ()
    end;
    (* A crash that killed the last process leaves nothing to fuzz:
       spawn a fresh one and record it so replay recreates it at exactly
       this position (Spawn does not advance the drain counter). *)
    if generating && !procs = [] then begin
      let id = !next_id in
      incr next_id;
      let sp = Spawn { id } in
      record sp;
      run_op sp
    end
  in
  let livelocked = ref false in
  let abandoned = ref false in
  (match src with
  | Rep { fail_fast = true; _ } -> ff_armed := true
  | _ -> ());
  (try
     match src with
     | Gen _ ->
         for _ = 1 to cfg.ops do
           step (gen_op ())
         done
     | Rep { prog; _ } -> List.iter step prog.pr_ops
   with
  | Failed_fast ->
      ff_armed := false;
      abandoned := true;
      out "abandoned: fail-fast after first failure"
  | Check.Livelock { elapsed; horizon; dump } ->
      ff_armed := false;
      livelocked := true;
      failed "livelock: no operation retired within %d simulated cycles \
              (elapsed %d)" horizon elapsed;
      out "held locks at livelock:";
      out "%s"
        (let n = String.length dump in
         if n > 0 && dump.[n - 1] = '\n' then String.sub dump 0 (n - 1)
         else dump));
  ff_armed := false;
  (match checker with Some ck -> Check.disarm_watchdog ck | None -> ());
  (* --- teardown: everything must come back --- *)
  if (not !livelocked) && not !abandoned then begin
    List.iter
      (fun q ->
        try R.check_invariants q.vm
        with T.Invariant_violation { subsystem; detail } ->
          failed "final invariant violation in %s (p%d): %s" subsystem q.id
            detail)
      !procs;
    let core0 = Machine.core machine 0 in
    List.iter (fun q -> R.destroy q.vm core0) !procs;
    procs := [];
    Machine.drain machine ~cycles:(8 * epoch);
    Machine.drain machine ~cycles:(8 * epoch);
    let live = Physmem.live_frames (Machine.physmem machine) in
    if live <> 0 then failed "%d frames leaked after teardown" live;
    match checker with
    | None -> ()
    | Some ck ->
        out "checker: %d line accesses observed" (Check.accesses ck);
        let show pp v = Format.asprintf "%a" pp v in
        (match Check.tlb_violations ck with
        | [] -> ()
        | v :: _ as l ->
            failed "%d stale-TLB violations, first: %s" (List.length l)
              (show Check.pp_tlb_violation v));
        (match Check.rc_violations ck with
        | [] -> ()
        | v :: _ as l ->
            failed "%d refcount violations, first: %s" (List.length l)
              (show Check.pp_rc_violation v));
        (match Check.leaked_locks ck with
        | [] -> ()
        | v :: _ as l ->
            failed "%d leaked locks, first: %s" (List.length l)
              (show Check.pp_leaked_lock v));
        (match Check.cycles ck with
        | [] -> ()
        | c :: _ as l ->
            failed "%d lock-order cycles, first: %s" (List.length l)
              (show Check.pp_cycle c))
  end;
  out "summary: ok=%d segv=%d enomem=%d aborted=%d oom=%d%s%s" !n_ok !n_segv
    !n_enomem !n_aborted !n_oomr
    (if spec.ps_crashes <> [] then Printf.sprintf " reaped=%d" !n_crashed
     else "")
    (if !n_skipped > 0 then Printf.sprintf " skipped=%d" !n_skipped else "");
  out "injected: oom=%d aborts=%d lock_timeouts=%d ipi_delays=%d \
       ipi_abandoned=%d shootdown_retries=%d%s"
    (Fault.injected_oom plan)
    (Fault.injected_aborts plan)
    (Fault.injected_lock_timeouts plan)
    (Fault.ipi_delays plan) (Fault.ipi_abandoned plan)
    (Machine.stats machine).Stats.shootdown_retries
    (if spec.ps_crashes <> [] then
       Printf.sprintf " crashes=%d" (Fault.injected_crashes plan)
     else "");
  out "frames: live=%d (budget %s)"
    (Physmem.live_frames (Machine.physmem machine))
    budget_str;
  let failures = List.rev !failures in
  out "verdict: %s" (if failures = [] then "PASS" else "FAIL");
  let program =
    match src with
    | Rep { prog; _ } -> prog
    | Gen _ ->
        {
          pr_seed = cfg.seed;
          pr_ncores = cfg.ncores;
          pr_check = cfg.check;
          pr_broken = cfg.broken;
          pr_rangelock = cfg.rangelock;
          pr_watchdog = cfg.watchdog;
          pr_plan = spec;
          pr_ops = List.rev !ops_acc;
        }
  in
  {
    transcript = Buffer.contents buf;
    passed = failures = [];
    failures;
    crashes = !n_crashed;
    livelocked = !livelocked;
    program;
  }

let run_session cfg = session (Gen cfg)

let run_program ?(verbose = false) prog =
  session (Rep { prog; verbose; fail_fast = false })

(* --- sharded worlds: [nodes] per-node sessions coupled by a static
   cross-node spawn schedule (the fuzzer's analogue of the epoch-batched
   fork/reap traffic in Harness.Shard). The schedule is drawn from
   dedicated per-node rngs before any session runs, so it — and
   therefore every node's transcript — is a pure function of the world
   seed and node count. [shards] only maps node sessions onto host
   domains; no byte of the outcome depends on it. --- *)

type world_outcome = {
  w_transcript : string;
  w_passed : bool;
  w_failures : string list;
  w_spawns : int;
  w_outcomes : outcome list;
}

let node_seed ~seed n = seed + (7919 * n)

(* Each node's rng decides, per barrier index, whether it asks the next
   node to spawn a fresh process there — executed on the destination as
   an ordinary [Spawn] op at that barrier, which replay reproduces from
   the recorded program alone. *)
let world_schedule ~seed ~nodes ~ops =
  let barriers = ops / 97 in
  let per_dst = Array.make nodes [] in
  let all = ref [] in
  for n = 0 to nodes - 1 do
    let rng = Random.State.make [| 0x5a7d; seed; n |] in
    for b = 1 to barriers do
      if nodes > 1 && Random.State.int rng 3 = 0 then begin
        let dst = (n + 1) mod nodes in
        let id = 1000 + (100 * n) + b in
        per_dst.(dst) <- (b, id, n) :: per_dst.(dst);
        all := (b, n, dst, id) :: !all
      end
    done
  done;
  (Array.map List.rev per_dst, List.sort compare !all)

let run_world ?(clamp = true) ?(shards = 1) ~nodes cfg =
  if nodes < 1 then invalid_arg "Fuzz.run_world: nodes must be at least 1";
  if shards < 1 then invalid_arg "Fuzz.run_world: shards must be at least 1";
  let cfg = { cfg with ops = max 1 cfg.ops; ncores = max 2 cfg.ncores } in
  let per_dst, all = world_schedule ~seed:cfg.seed ~nodes ~ops:cfg.ops in
  let jobs = max 1 (min shards nodes) in
  let jobs = if clamp then Harness.Pool.clamp_jobs jobs else jobs in
  let outcomes =
    Harness.Pool.run ~jobs
      (List.init nodes (fun n ->
           let sched = per_dst.(n) in
           let inject b =
             List.filter_map
               (fun (bb, id, _src) ->
                 if bb = b then Some (Spawn { id }) else None)
               sched
           in
           Harness.Pool.job
             ~name:(Printf.sprintf "fuzz-node-%d" n)
             (fun () ->
               session ~inject
                 (Gen { cfg with seed = node_seed ~seed:cfg.seed n }))))
  in
  (* The world transcript deliberately never mentions the shard width:
     widths 1/2/4 must render the same bytes (golden-pinned). *)
  let buf = Buffer.create 8192 in
  let line fmt =
    Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt
  in
  line "world: seed=%d nodes=%d ops=%d cores=%d xspawns=%d" cfg.seed nodes
    cfg.ops cfg.ncores (List.length all);
  List.iter
    (fun (b, src, dst, id) ->
      line "xshard: @%d node%d -> node%d spawn p%d" b src dst id)
    all;
  let failures = ref [] in
  List.iteri
    (fun n (o : outcome) ->
      line "--- node %d seed=%d ---" n (node_seed ~seed:cfg.seed n);
      Buffer.add_string buf o.transcript;
      failures :=
        !failures @ List.map (Printf.sprintf "node %d: %s" n) o.failures)
    outcomes;
  let passed = !failures = [] in
  line "world verdict: %s (%d/%d nodes)"
    (if passed then "PASS" else "FAIL")
    (List.length (List.filter (fun (o : outcome) -> o.passed) outcomes))
    nodes;
  {
    w_transcript = Buffer.contents buf;
    w_passed = passed;
    w_failures = !failures;
    w_spawns = List.length all;
    w_outcomes = outcomes;
  }

(* --- serialization: a repro file is a line-oriented program, terminated
   by "end" so a transcript can ride along after it --- *)

let op_line = function
  | Nop -> "op nop"
  | Mmap { p; c; lo; len; ro } ->
      Printf.sprintf "op mmap %d %d %d %d %b" p c lo len ro
  | Munmap { p; c; lo; len } ->
      Printf.sprintf "op munmap %d %d %d %d" p c lo len
  | Mprotect { p; c; lo; len; ro } ->
      Printf.sprintf "op mprotect %d %d %d %d %b" p c lo len ro
  | Store { p; c; vpn; value } ->
      Printf.sprintf "op store %d %d %d %d" p c vpn value
  | Load { p; c; vpn } -> Printf.sprintf "op load %d %d %d" p c vpn
  | Touch { p; c; vpn } -> Printf.sprintf "op touch %d %d %d" p c vpn
  | Discard { p; c } -> Printf.sprintf "op discard %d %d" p c
  | Fork { p; c; child } -> Printf.sprintf "op fork %d %d %d" p c child
  | Exit { c; victim } -> Printf.sprintf "op exit %d %d" c victim
  | Spawn { id } -> Printf.sprintf "op spawn %d" id

(* %h hex floats round-trip probabilities losslessly (float_of_string
   reads them back bit-exact), so serializing a program never perturbs
   the plan's rng-driven firing decisions. Pinned in lint.allow as an
   audited float-format site. *)
let rule_line kw r =
  Printf.sprintf "%s %s %s %h" kw r.rs_op
    (match r.rs_point with None -> "*" | Some pt -> pt)
    r.rs_prob

let timeout_line (label, prob) = Printf.sprintf "timeout %s %h" label prob

let program_to_string prog =
  let b = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "# radixvm-fuzz repro v1";
  line "seed %d" prog.pr_seed;
  line "cores %d" prog.pr_ncores;
  line "check %b" prog.pr_check;
  line "broken %b" prog.pr_broken;
  line "rangelock %s" (Locks.Range_lock.name prog.pr_rangelock);
  (match prog.pr_watchdog with
  | Some h -> line "watchdog %d" h
  | None -> ());
  (match prog.pr_plan.ps_budget with
  | Some n -> line "budget %d" n
  | None -> ());
  List.iter (fun (c, cy) -> line "delay %d %d" c cy) prog.pr_plan.ps_delayed;
  List.iter (fun c -> line "stall %d" c) prog.pr_plan.ps_stalled;
  List.iter (fun r -> line "%s" (rule_line "abort" r)) prog.pr_plan.ps_aborts;
  List.iter (fun r -> line "%s" (rule_line "crash" r)) prog.pr_plan.ps_crashes;
  List.iter (fun t -> line "%s" (timeout_line t)) prog.pr_plan.ps_timeouts;
  List.iter (fun op -> line "%s" (op_line op)) prog.pr_ops;
  line "end";
  Buffer.contents b

exception Parse_error of string

let program_of_string s =
  let seed = ref 0
  and cores = ref 2
  and check = ref true
  and broken = ref false in
  let rangelock = ref Locks.Range_lock.Radix_embedded in
  let watchdog = ref None
  and budget = ref None in
  let delayed = ref []
  and stalled = ref []
  and aborts = ref []
  and crashes = ref []
  and timeouts = ref []
  and ops = ref [] in
  let seen_end = ref false in
  let ln = ref 0 in
  try
    List.iter
      (fun raw ->
        incr ln;
        if not !seen_end then begin
          let lineTxt = String.trim raw in
          if lineTxt = "" || lineTxt.[0] = '#' then ()
          else begin
            let fail msg =
              raise (Parse_error (Printf.sprintf "line %d: %s" !ln msg))
            in
            let int w =
              match int_of_string_opt w with
              | Some v -> v
              | None -> fail ("bad integer " ^ w)
            in
            let bool w =
              match bool_of_string_opt w with
              | Some v -> v
              | None -> fail ("bad boolean " ^ w)
            in
            let prob w =
              match float_of_string_opt w with
              | Some v when v >= 0.0 && v <= 1.0 -> v
              | Some _ -> fail ("probability out of [0,1]: " ^ w)
              | None -> fail ("bad probability " ^ w)
            in
            let point = function "*" -> None | pt -> Some pt in
            let parse_op = function
              | [ "nop" ] -> Nop
              | [ "mmap"; p; c; lo; len; ro ] ->
                  Mmap
                    { p = int p; c = int c; lo = int lo; len = int len;
                      ro = bool ro }
              | [ "munmap"; p; c; lo; len ] ->
                  Munmap { p = int p; c = int c; lo = int lo; len = int len }
              | [ "mprotect"; p; c; lo; len; ro ] ->
                  Mprotect
                    { p = int p; c = int c; lo = int lo; len = int len;
                      ro = bool ro }
              | [ "store"; p; c; vpn; value ] ->
                  Store { p = int p; c = int c; vpn = int vpn;
                          value = int value }
              | [ "load"; p; c; vpn ] ->
                  Load { p = int p; c = int c; vpn = int vpn }
              | [ "touch"; p; c; vpn ] ->
                  Touch { p = int p; c = int c; vpn = int vpn }
              | [ "discard"; p; c ] -> Discard { p = int p; c = int c }
              | [ "fork"; p; c; child ] ->
                  Fork { p = int p; c = int c; child = int child }
              | [ "exit"; c; victim ] ->
                  Exit { c = int c; victim = int victim }
              | [ "spawn"; id ] -> Spawn { id = int id }
              | w :: _ -> fail ("unknown op " ^ w)
              | [] -> fail "empty op"
            in
            let words =
              List.filter (fun w -> w <> "")
                (String.split_on_char ' ' lineTxt)
            in
            match words with
            | [ "end" ] -> seen_end := true
            | [ "seed"; v ] -> seed := int v
            | [ "cores"; v ] -> cores := int v
            | [ "check"; v ] -> check := bool v
            | [ "broken"; v ] -> broken := bool v
            | [ "rangelock"; v ] -> (
                match Locks.Range_lock.of_string v with
                | Ok k -> rangelock := k
                | Error e -> fail e)
            | [ "watchdog"; v ] -> watchdog := Some (int v)
            | [ "budget"; v ] -> budget := Some (int v)
            | [ "delay"; c; cy ] -> delayed := (int c, int cy) :: !delayed
            | [ "stall"; c ] -> stalled := int c :: !stalled
            | [ "abort"; op; pt; pr ] ->
                aborts :=
                  { rs_op = op; rs_point = point pt; rs_prob = prob pr }
                  :: !aborts
            | [ "crash"; op; pt; pr ] ->
                crashes :=
                  { rs_op = op; rs_point = point pt; rs_prob = prob pr }
                  :: !crashes
            | [ "timeout"; label; pr ] ->
                timeouts := (label, prob pr) :: !timeouts
            | "op" :: rest -> ops := parse_op rest :: !ops
            | _ -> fail ("unrecognized line: " ^ lineTxt)
          end
        end)
      (String.split_on_char '\n' s);
    if not !seen_end then raise (Parse_error "missing \"end\" line");
    Ok
      {
        pr_seed = !seed;
        pr_ncores = !cores;
        pr_check = !check;
        pr_broken = !broken;
        pr_rangelock = !rangelock;
        pr_watchdog = !watchdog;
        pr_plan =
          {
            ps_budget = !budget;
            ps_delayed = List.rev !delayed;
            ps_stalled = List.rev !stalled;
            ps_aborts = List.rev !aborts;
            ps_crashes = List.rev !crashes;
            ps_timeouts = List.rev !timeouts;
          };
        pr_ops = List.rev !ops;
      }
  with Parse_error msg -> Error msg

(* --- the shrinker: delta-debug a failing program to a minimal
   reproducer. Every candidate is judged by actually replaying it
   ([run_program]), so the result is guaranteed to still fail; every
   reduction pass is a deterministic function of the input program, so
   shrinking the same failure twice yields the same reproducer. --- *)

let known_points = [ "locked"; "cleared"; "filled" ]

let shrink ?(log = fun (_ : string) -> ()) prog0 =
  (* Candidate runs abandon the op stream at the first failure: whether a
     candidate fails is unchanged (the failure is recorded before the
     abandon, and a candidate that reaches teardown runs it in full), but
     pathological candidates — e.g. probability-1.0 abort rules under
     broken rollback, whose leaked locks make the checker's lock-order
     graph quadratic — stop costing a full session each. *)
  let fails p =
    not (session (Rep { prog = p; verbose = false; fail_fast = true })).passed
  in
  if not (fails prog0) then
    Error "program does not fail; nothing to shrink"
  else begin
    let current = ref prog0 in
    let try_keep cand =
      if fails cand then begin
        current := cand;
        true
      end
      else false
    in
    (* 1. Strip fault-plan entries the failure does not depend on. *)
    let strip_plan () =
      let with_plan p pl = { p with pr_plan = pl } in
      (match !current.pr_plan.ps_budget with
      | None -> ()
      | Some _ ->
          let p = !current in
          ignore
            (try_keep (with_plan p { p.pr_plan with ps_budget = None })));
      List.iter
        (fun d ->
          let p = !current in
          if List.mem d p.pr_plan.ps_delayed then
            ignore
              (try_keep
                 (with_plan p
                    {
                      p.pr_plan with
                      ps_delayed =
                        List.filter (fun x -> x <> d) p.pr_plan.ps_delayed;
                    })))
        prog0.pr_plan.ps_delayed;
      List.iter
        (fun c ->
          let p = !current in
          if List.mem c p.pr_plan.ps_stalled then
            ignore
              (try_keep
                 (with_plan p
                    {
                      p.pr_plan with
                      ps_stalled =
                        List.filter (fun x -> x <> c) p.pr_plan.ps_stalled;
                    })))
        prog0.pr_plan.ps_stalled;
      let strip_rules get set =
        List.iter
          (fun r ->
            let p = !current in
            if List.mem r (get p.pr_plan) then
              ignore
                (try_keep
                   (with_plan p
                      (set p.pr_plan
                         (List.filter (fun x -> x <> r) (get p.pr_plan))))))
          (get prog0.pr_plan)
      in
      strip_rules (fun pl -> pl.ps_aborts) (fun pl rs -> { pl with ps_aborts = rs });
      strip_rules (fun pl -> pl.ps_crashes) (fun pl rs -> { pl with ps_crashes = rs });
      List.iter
        (fun t ->
          let p = !current in
          if List.mem t p.pr_plan.ps_timeouts then
            ignore
              (try_keep
                 (with_plan p
                    {
                      p.pr_plan with
                      ps_timeouts =
                        List.filter (fun x -> x <> t) p.pr_plan.ps_timeouts;
                    })))
        prog0.pr_plan.ps_timeouts
    in
    (* 2. Pin surviving probabilistic rules to a deterministic form:
       point-specific, probability 1.0. Once a rule is certain, the
       failure no longer depends on the plan rng's mood and the op-level
       ddmin below converges to a tiny stream. *)
    let pin_rules () =
      let pin get set =
        let n = List.length (get !current.pr_plan) in
        for idx = 0 to n - 1 do
          let r = List.nth (get !current.pr_plan) idx in
          if r.rs_prob < 1.0 || r.rs_point = None then begin
            let candidates =
              List.map
                (fun pt -> { r with rs_point = Some pt; rs_prob = 1.0 })
                (match r.rs_point with
                | Some pt -> [ pt ]
                | None -> known_points)
              @ [ { r with rs_prob = 1.0 } ]
            in
            ignore
              (List.exists
                 (fun r' ->
                   let p = !current in
                   let rules =
                     List.mapi
                       (fun i x -> if i = idx then r' else x)
                       (get p.pr_plan)
                   in
                   try_keep { p with pr_plan = set p.pr_plan rules })
                 candidates)
          end
        done
      in
      pin (fun pl -> pl.ps_aborts) (fun pl rs -> { pl with ps_aborts = rs });
      pin (fun pl -> pl.ps_crashes) (fun pl rs -> { pl with ps_crashes = rs })
    in
    (* 3. ddmin over the op stream (complement reduction): drop chunks of
       ops while the program still fails; terminates 1-minimal. *)
    let ddmin_ops () =
      let test ops = fails { !current with pr_ops = ops } in
      let rec go ops n =
        let len = List.length ops in
        if len <= 1 then ops
        else begin
          let n = min n len in
          let complement i =
            List.filteri
              (fun j _ -> j < i * len / n || j >= (i + 1) * len / n)
              ops
          in
          let rec first i =
            if i >= n then None
            else
              let c = complement i in
              if List.length c < len && test c then Some c else first (i + 1)
          in
          match first 0 with
          | Some c -> go c (max (n - 1) 2)
          | None -> if n < len then go ops (min (2 * n) len) else ops
        end
      in
      let reduced = go !current.pr_ops 2 in
      if List.length reduced < List.length !current.pr_ops then
        current := { !current with pr_ops = reduced }
    in
    (* 4. Fewer cores: op core ids are taken mod the core count at
       execution time, so only the plan's per-core entries need
       filtering. *)
    let reduce_cores () =
      let p = !current in
      let rec try_n k =
        if k >= p.pr_ncores then ()
        else if
          try_keep
            {
              p with
              pr_ncores = k;
              pr_plan =
                {
                  p.pr_plan with
                  ps_delayed =
                    List.filter (fun (c, _) -> c < k) p.pr_plan.ps_delayed;
                  ps_stalled =
                    List.filter (fun c -> c < k) p.pr_plan.ps_stalled;
                };
            }
        then ()
        else try_n (k + 1)
      in
      try_n 2
    in
    let describe p =
      Printf.sprintf "%d ops, %d plan entries, %d cores"
        (List.length p.pr_ops)
        ((match p.pr_plan.ps_budget with Some _ -> 1 | None -> 0)
        + List.length p.pr_plan.ps_delayed
        + List.length p.pr_plan.ps_stalled
        + List.length p.pr_plan.ps_aborts
        + List.length p.pr_plan.ps_crashes
        + List.length p.pr_plan.ps_timeouts)
        p.pr_ncores
    in
    log (Printf.sprintf "shrink: start: %s" (describe prog0));
    let rec rounds i =
      let before = !current in
      strip_plan ();
      pin_rules ();
      ddmin_ops ();
      reduce_cores ();
      log (Printf.sprintf "shrink: round %d: %s" i (describe !current));
      if i < 5 && !current <> before then rounds (i + 1)
    in
    rounds 1;
    Ok !current
  end
