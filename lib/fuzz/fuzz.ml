open Ccsim
module R = Vm.Radixvm.Default
module T = Vm.Vm_types

type config = {
  seed : int;
  ops : int;
  ncores : int;
  check : bool;
  verbose : bool;
  broken : bool;
  rangelock : Locks.Range_lock.kind;
      (* every process's address space uses this backend; the default
         keeps the seed-42 golden transcript byte-identical *)
}

let default =
  { seed = 0; ops = 600; ncores = 4; check = true; verbose = false;
    broken = false; rangelock = Locks.Range_lock.Radix_embedded }

type outcome = { transcript : string; passed : bool; failures : string list }

(* The oracle: per process, a map vpn -> (protection, expected word). A
   page that was mmapped but never stored reads as 0 (demand-zero), and a
   failed operation must leave the map — and the real tree — untouched. *)
type opage = { mutable o_prot : T.prot; mutable o_value : int }
type proc = { id : int; vm : R.t; pages : (int, opage) Hashtbl.t }

let region = 1024 (* fuzzed vpn range per address space *)
let max_procs = 6
let epoch = 50_000

(* Audited for iteration-order leaks (simlint det-hashtbl-order): the
   copy's insertion order — hence the copy's own iteration order in
   [rand_vpn] — follows [src]'s bucket order, which is a pure function of
   the operation history for a fixed seed. The seed-42 golden digest
   freezes it; migrating to a sorted copy would move those bytes, so the
   site is pinned in lint.allow instead. *)
let copy_pages src =
  let dst = Hashtbl.create (2 * Hashtbl.length src) in
  Hashtbl.iter
    (fun k v -> Hashtbl.replace dst k { o_prot = v.o_prot; o_value = v.o_value })
    src;
  dst

let pp_result = function
  | Stdlib.Ok () -> "ok"
  | Stdlib.Error e -> Format.asprintf "%a" T.pp_vm_error e

let run_session cfg =
  let cfg = { cfg with ncores = max 2 cfg.ncores; ops = max 1 cfg.ops } in
  let buf = Buffer.create 4096 in
  let out fmt =
    Printf.ksprintf
      (fun s ->
        Buffer.add_string buf s;
        Buffer.add_char buf '\n')
      fmt
  in
  let trace fmt =
    Printf.ksprintf (fun s -> if cfg.verbose then out "%s" s) fmt
  in
  let failures = ref [] in
  let failed fmt =
    Printf.ksprintf
      (fun s ->
        let s = Printf.sprintf "seed=%d: %s" cfg.seed s in
        failures := s :: !failures;
        out "FAIL %s" s)
      fmt
  in
  let rng = Random.State.make [| 0x5eed; cfg.seed |] in
  let machine =
    Machine.create (Params.default ~ncores:cfg.ncores ~epoch_cycles:epoch ())
  in
  let checker = if cfg.check then Some (Check.attach machine) else None in
  (* The fault plan is drawn from the session rng, except that core 1 is
     always configured to acknowledge IPIs late enough (past
     ipi_ack_timeout) to force at least one sender-side retry — together
     with the frame budget and the abort rules this guarantees every
     session exercises frame exhaustion, IPI delay, and mid-op aborts. *)
  let plan = Fault.create ~seed:cfg.seed () in
  let budget = 10 + Random.State.int rng 16 in
  Fault.set_frame_budget plan (Some budget);
  let delayed = ref [ 1 ] and stalled = ref [] in
  Fault.delay_ipi plan ~core:1 ~cycles:(300_000 + Random.State.int rng 150_000);
  for c = 2 to cfg.ncores - 1 do
    match Random.State.int rng 10 with
    | 0 ->
        Fault.stall_ipi plan ~core:c;
        stalled := c :: !stalled
    | 1 | 2 ->
        Fault.delay_ipi plan ~core:c
          ~cycles:(5_000 + Random.State.int rng 400_000);
        delayed := c :: !delayed
    | _ -> ()
  done;
  let abort_probs =
    List.map
      (fun op ->
        let prob = 0.02 +. Random.State.float rng 0.10 in
        Fault.abort_ops plan ~op ~prob ();
        (op, prob))
      [ "mmap"; "munmap"; "mprotect"; "pagefault" ]
  in
  if cfg.broken then Fault.set_break_rollback plan true;
  Machine.set_fault machine (Some plan);
  out "fuzz: seed=%d ops=%d cores=%d budget=%d%s%s" cfg.seed cfg.ops cfg.ncores
    budget
    (* Both suffixes are empty at the defaults, keeping golden bytes. *)
    (match cfg.rangelock with
    | Locks.Range_lock.Radix_embedded -> ""
    | k -> " rangelock=" ^ Locks.Range_lock.name k)
    (if cfg.broken then " BROKEN-ROLLBACK" else "");
  out "plan: delayed=[%s] stalled=[%s] aborts=[%s]"
    (String.concat "," (List.rev_map string_of_int !delayed))
    (String.concat "," (List.rev_map string_of_int !stalled))
    (* %.3f over plan constants, not computed values: fixed-point
       rendering of exact config floats is stable across platforms and
       frozen by the golden digest (pinned in lint.allow). *)
    (String.concat " "
       (List.map (fun (op, p) -> Printf.sprintf "%s:%.3f" op p) abort_probs));
  (* --- processes --- *)
  let next_id = ref 0 in
  let new_proc vm pages =
    let id = !next_id in
    incr next_id;
    { id; vm; pages }
  in
  let procs =
    ref
      [
        new_proc
          (R.create_with ~rangelock:cfg.rangelock machine)
          (Hashtbl.create 64);
      ]
  in
  let n_ok = ref 0
  and n_segv = ref 0
  and n_enomem = ref 0
  and n_aborted = ref 0
  and n_oomr = ref 0 in
  let count_err = function
    | T.Enomem -> incr n_enomem
    | T.Aborted _ -> incr n_aborted
  in
  let rand_core () = Machine.core machine (Random.State.int rng cfg.ncores) in
  let rand_proc () =
    List.nth !procs (Random.State.int rng (List.length !procs))
  in
  let rand_range () =
    let lo = Random.State.int rng region in
    let len = 1 + Random.State.int rng 12 in
    (lo, min len (region - lo))
  in
  let oracle_mapped p vpn = Hashtbl.mem p.pages vpn in
  (* Page accesses aim at mapped pages most of the time: mmap ranges are a
     dozen pages in a 1024-page space, so uniform vpns almost always
     segfault and the frame budget is never even approached. (Hashtbl
     iteration order is deterministic for a given operation history, so
     this keeps transcripts reproducible; the seed-42 golden digest
     freezes the exact pick order, so this audited site is pinned in
     lint.allow rather than sorted — sorting would change the bytes.) *)
  let rand_vpn p =
    let n = Hashtbl.length p.pages in
    if n > 0 && Random.State.int rng 100 < 60 then begin
      let k = Random.State.int rng n in
      let i = ref 0 and pick = ref 0 in
      Hashtbl.iter
        (fun v _ ->
          if !i = k then pick := v;
          incr i)
        p.pages;
      !pick
    end
    else Random.State.int rng region
  in
  (* A failed operation is required to be a no-op: spot-check that the
     tree still agrees with the oracle at the range's endpoints. *)
  let check_noop label p lo hi =
    List.iter
      (fun v ->
        let m = R.mapped p.vm ~vpn:v and o = oracle_mapped p v in
        if m <> o then
          failed "failed %s was not a no-op: p%d vpn %d is %s, oracle says %s"
            label p.id v
            (if m then "mapped" else "unmapped")
            (if o then "mapped" else "unmapped"))
      [ lo; hi ]
  in
  (* --- operations --- *)
  let do_mmap core p =
    let lo, len = rand_range () in
    let prot =
      if Random.State.int rng 100 < 15 then T.Read_only else T.Read_write
    in
    let r = R.mmap_result p.vm core ~vpn:lo ~npages:len ~prot () in
    trace "  c%d p%d mmap [%d,%d) %s -> %s" core.Core.id p.id lo (lo + len)
      (if prot = T.Read_only then "r-" else "rw")
      (pp_result r);
    match r with
    | Ok () ->
        incr n_ok;
        for v = lo to lo + len - 1 do
          Hashtbl.replace p.pages v { o_prot = prot; o_value = 0 }
        done;
        if not (R.mapped p.vm ~vpn:lo && R.mapped p.vm ~vpn:(lo + len - 1))
        then failed "mmap ok but p%d [%d,%d) is not mapped" p.id lo (lo + len)
    | Error e ->
        count_err e;
        check_noop "mmap" p lo (lo + len - 1)
  in
  let do_munmap core p =
    let lo, len = rand_range () in
    let r = R.munmap_result p.vm core ~vpn:lo ~npages:len in
    trace "  c%d p%d munmap [%d,%d) -> %s" core.Core.id p.id lo (lo + len)
      (pp_result r);
    match r with
    | Ok () ->
        incr n_ok;
        for v = lo to lo + len - 1 do
          Hashtbl.remove p.pages v
        done;
        if R.mapped p.vm ~vpn:lo || R.mapped p.vm ~vpn:(lo + len - 1) then
          failed "munmap ok but p%d [%d,%d) still mapped" p.id lo (lo + len)
    | Error e ->
        count_err e;
        check_noop "munmap" p lo (lo + len - 1)
  in
  let do_mprotect core p =
    let lo, len = rand_range () in
    let prot =
      if Random.State.int rng 2 = 0 then T.Read_only else T.Read_write
    in
    let r = R.mprotect_result p.vm core ~vpn:lo ~npages:len prot in
    trace "  c%d p%d mprotect [%d,%d) %s -> %s" core.Core.id p.id lo (lo + len)
      (if prot = T.Read_only then "r-" else "rw")
      (pp_result r);
    match r with
    | Ok () ->
        incr n_ok;
        for v = lo to lo + len - 1 do
          match Hashtbl.find_opt p.pages v with
          | Some pg -> pg.o_prot <- prot
          | None -> ()
        done
    | Error e -> count_err e
  in
  let do_store core p =
    let vpn = rand_vpn p in
    let value = 1 + Random.State.int rng 1_000_000 in
    let r = R.store_result p.vm core ~vpn value in
    trace "  c%d p%d store %d<-%d -> %s" core.Core.id p.id vpn value
      (match r with
      | Ok a -> Format.asprintf "%a" T.pp_access_result a
      | Error e -> Format.asprintf "%a" T.pp_vm_error e);
    match r with
    | Ok T.Ok -> (
        incr n_ok;
        match Hashtbl.find_opt p.pages vpn with
        | Some pg when pg.o_prot = T.Read_write -> pg.o_value <- value
        | Some _ -> failed "store to read-only p%d vpn %d succeeded" p.id vpn
        | None -> failed "store to unmapped p%d vpn %d succeeded" p.id vpn)
    | Ok T.Segfault -> (
        incr n_segv;
        match Hashtbl.find_opt p.pages vpn with
        | Some { o_prot = T.Read_write; _ } ->
            failed "store to mapped rw p%d vpn %d segfaulted" p.id vpn
        | Some _ | None -> ())
    | Ok T.Oom -> incr n_oomr
    | Error e -> count_err e
  in
  let do_load core p =
    let vpn = rand_vpn p in
    let r = R.load_result p.vm core ~vpn in
    trace "  c%d p%d load %d -> %s" core.Core.id p.id vpn
      (match r with
      | Ok (Some v) -> string_of_int v
      | Ok None -> "fault"
      | Error e -> Format.asprintf "%a" T.pp_vm_error e);
    match r with
    | Ok (Some v) -> (
        incr n_ok;
        match Hashtbl.find_opt p.pages vpn with
        | Some pg when pg.o_value = v -> ()
        | Some pg ->
            failed "load p%d vpn %d returned %d, oracle expects %d" p.id vpn v
              pg.o_value
        | None -> failed "load of unmapped p%d vpn %d returned %d" p.id vpn v)
    | Ok None ->
        incr n_segv;
        if oracle_mapped p vpn then
          failed "load of mapped p%d vpn %d faulted" p.id vpn
    | Error e -> count_err e
  in
  let do_touch core p =
    let vpn = rand_vpn p in
    let r = R.touch_result p.vm core ~vpn in
    trace "  c%d p%d touch %d -> %s" core.Core.id p.id vpn
      (match r with
      | Ok a -> Format.asprintf "%a" T.pp_access_result a
      | Error e -> Format.asprintf "%a" T.pp_vm_error e);
    match r with
    | Ok T.Ok -> (
        incr n_ok;
        match Hashtbl.find_opt p.pages vpn with
        | Some { o_prot = T.Read_write; _ } -> ()
        | Some _ -> failed "touch of read-only p%d vpn %d succeeded" p.id vpn
        | None -> failed "touch of unmapped p%d vpn %d succeeded" p.id vpn)
    | Ok T.Segfault -> (
        incr n_segv;
        match Hashtbl.find_opt p.pages vpn with
        | Some { o_prot = T.Read_write; _ } ->
            failed "touch of mapped rw p%d vpn %d segfaulted" p.id vpn
        | Some _ | None -> ())
    | Ok T.Oom -> incr n_oomr
    | Error e -> count_err e
  in
  let do_fork core p =
    if List.length !procs < max_procs then begin
      let child = new_proc (R.fork p.vm core) (copy_pages p.pages) in
      procs := !procs @ [ child ];
      incr n_ok;
      trace "  c%d p%d fork -> p%d" core.Core.id p.id child.id
    end
  in
  let do_exit core =
    match !procs with
    | _ :: rest when rest <> [] ->
        let idx = 1 + Random.State.int rng (List.length rest) in
        let victim = List.nth !procs idx in
        procs := List.filteri (fun i _ -> i <> idx) !procs;
        R.destroy victim.vm core;
        incr n_ok;
        trace "  c%d exit p%d" core.Core.id victim.id
    | _ -> ()
  in
  (* --- the stream --- *)
  for i = 1 to cfg.ops do
    let core = rand_core () in
    let p = rand_proc () in
    (match Random.State.int rng 100 with
    | r when r < 18 -> do_mmap core p
    | r when r < 32 -> do_munmap core p
    | r when r < 40 -> do_mprotect core p
    | r when r < 62 -> do_store core p
    | r when r < 76 -> do_load core p
    | r when r < 84 -> do_touch core p
    | r when r < 88 ->
        R.discard_page_tables p.vm core;
        incr n_ok;
        trace "  c%d p%d discard page tables" core.Core.id p.id
    | r when r < 94 -> do_fork core p
    | _ -> do_exit core);
    if i mod 97 = 0 then Machine.drain machine ~cycles:epoch;
    if i mod 128 = 0 then
      List.iter
        (fun q ->
          try R.check_invariants q.vm
          with T.Invariant_violation { subsystem; detail } ->
            failed "invariant violation in %s (p%d): %s" subsystem q.id detail)
        !procs
  done;
  (* --- teardown: everything must come back --- *)
  List.iter
    (fun q ->
      try R.check_invariants q.vm
      with T.Invariant_violation { subsystem; detail } ->
        failed "final invariant violation in %s (p%d): %s" subsystem q.id
          detail)
    !procs;
  let core0 = Machine.core machine 0 in
  List.iter (fun q -> R.destroy q.vm core0) !procs;
  procs := [];
  Machine.drain machine ~cycles:(8 * epoch);
  Machine.drain machine ~cycles:(8 * epoch);
  let live = Physmem.live_frames (Machine.physmem machine) in
  if live <> 0 then failed "%d frames leaked after teardown" live;
  (match checker with
  | None -> ()
  | Some ck ->
      out "checker: %d line accesses observed" (Check.accesses ck);
      let show pp v = Format.asprintf "%a" pp v in
      (match Check.tlb_violations ck with
      | [] -> ()
      | v :: _ as l ->
          failed "%d stale-TLB violations, first: %s" (List.length l)
            (show Check.pp_tlb_violation v));
      (match Check.rc_violations ck with
      | [] -> ()
      | v :: _ as l ->
          failed "%d refcount violations, first: %s" (List.length l)
            (show Check.pp_rc_violation v));
      (match Check.leaked_locks ck with
      | [] -> ()
      | v :: _ as l ->
          failed "%d leaked locks, first: %s" (List.length l)
            (show Check.pp_leaked_lock v));
      (match Check.cycles ck with
      | [] -> ()
      | c :: _ as l ->
          failed "%d lock-order cycles, first: %s" (List.length l)
            (show Check.pp_cycle c)));
  out "summary: ok=%d segv=%d enomem=%d aborted=%d oom=%d" !n_ok !n_segv
    !n_enomem !n_aborted !n_oomr;
  out "injected: oom=%d aborts=%d lock_timeouts=%d ipi_delays=%d \
       ipi_abandoned=%d shootdown_retries=%d"
    (Fault.injected_oom plan)
    (Fault.injected_aborts plan)
    (Fault.injected_lock_timeouts plan)
    (Fault.ipi_delays plan) (Fault.ipi_abandoned plan)
    (Machine.stats machine).Stats.shootdown_retries;
  out "frames: live=%d (budget %d)" live budget;
  let failures = List.rev !failures in
  out "verdict: %s" (if failures = [] then "PASS" else "FAIL");
  { transcript = Buffer.contents buf; passed = failures = []; failures }
