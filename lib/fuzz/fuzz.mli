(** Seeded random-operation fuzzer for the VM stack.

    One {e session} drives a stream of VM operations (mmap / munmap /
    mprotect / store / load / touch / fork / exit / page-table discard)
    across the cores of one simulated machine, under a randomly drawn
    fault schedule (finite frame budget, delayed or stalled IPI acks,
    mid-operation aborts), and cross-checks every result against a
    trivial oracle model — a per-process hash table of what should be
    mapped, with what protection and contents. Failed operations
    ([Error Enomem] / [Error (Aborted _)]) must be no-ops; that is
    exactly the graceful-degradation contract the fuzzer verifies.

    Everything — the operation stream, the fault plan, the simulator —
    derives from [config.seed], so a session is replayed exactly by
    re-running the same configuration, and {!run_session} returns a
    byte-deterministic transcript (the property `dune build @fuzz-smoke`
    and the determinism test pin down). *)

type config = {
  seed : int;
  ops : int;  (** operations per session *)
  ncores : int;  (** simulated cores (clamped to at least 2) *)
  check : bool;  (** attach the {!Check} dynamic analyses *)
  verbose : bool;  (** one transcript line per operation *)
  broken : bool;
      (** known-bad mode: skip rollback on injected aborts
          ({!Ccsim.Fault.set_break_rollback}) — the session must FAIL;
          used to prove the oracle and checkers catch a missing
          rollback *)
  rangelock : Locks.Range_lock.kind;
      (** range-lock backend for every process's address space (forked
          children inherit it). The default ([Radix_embedded]) keeps
          transcripts byte-identical with earlier versions; the other
          backends reuse the same frozen operation stream, so the whole
          alphabet (including fork teardown and abort rollback) runs
          against each backend. *)
}

val default : config
(** seed 0, 600 ops, 4 cores, checker attached, quiet, not broken,
    radix-embedded range locks. *)

type outcome = {
  transcript : string;
      (** deterministic: same [config] ⇒ same bytes. Includes the fault
          plan, any failures, and a summary with injection counters. *)
  passed : bool;
  failures : string list;  (** oldest first; empty iff [passed] *)
}

val run_session : config -> outcome
(** Run one session to completion (including teardown: every process
    destroyed, epochs drained, zero live frames demanded). Never raises —
    oracle mismatches, invariant violations, and checker findings are
    reported in the outcome, each tagged with the seed that replays
    them. *)
