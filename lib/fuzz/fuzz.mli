(** Seeded random-operation fuzzer for the VM stack, with record/replay
    and a failing-case shrinker.

    One {e session} drives a stream of VM operations (mmap / munmap /
    mprotect / store / load / touch / fork / exit / page-table discard)
    across the cores of one simulated machine, under a randomly drawn
    fault schedule (finite frame budget, delayed or stalled IPI acks,
    mid-operation aborts, and — opt-in — mid-critical-section crashes),
    and cross-checks every result against a trivial oracle model — a
    per-process hash table of what should be mapped, with what protection
    and contents. Failed operations ([Error Enomem] /
    [Error (Aborted _)]) must be no-ops; that is exactly the
    graceful-degradation contract the fuzzer verifies. A crashed
    operation ({!Ccsim.Fault.Injected_crash}) is the opposite contract:
    it must {e not} unwind — the session reaps the dead process
    ({!Vm.Radixvm}[.Make.reap]) and asserts the survivors are untouched,
    no locks leaked, at the moment of maximum damage.

    Everything — the operation stream, the fault plan, the simulator —
    derives from [config.seed], so a session is replayed exactly by
    re-running the same configuration, and {!run_session} returns a
    byte-deterministic transcript (the property `dune build @fuzz-smoke`
    and the determinism test pin down). Beyond that, every session
    {e records} itself: the outcome carries an explicit {!program} — the
    resolved fault plan plus every executed operation with its concrete
    parameters — which {!run_program} replays byte-identically,
    {!program_to_string}/{!program_of_string} round-trip through a repro
    file, and {!shrink} delta-debugs to a minimal reproducer. *)

type config = {
  seed : int;
  ops : int;  (** operations per session *)
  ncores : int;  (** simulated cores (clamped to at least 2) *)
  check : bool;  (** attach the {!Check} dynamic analyses *)
  verbose : bool;  (** one transcript line per operation *)
  broken : bool;
      (** known-bad mode: skip rollback on injected aborts
          ({!Ccsim.Fault.set_break_rollback}) — the session must FAIL;
          used to prove the oracle and checkers catch a missing
          rollback *)
  rangelock : Locks.Range_lock.kind;
      (** range-lock backend for every process's address space (forked
          children inherit it). The default ([Radix_embedded]) keeps
          transcripts byte-identical with earlier versions; the other
          backends reuse the same frozen operation stream, so the whole
          alphabet (including fork teardown and abort rollback) runs
          against each backend. *)
  crash : bool;
      (** draw crash rules into the fault plan: each of mmap / munmap /
          mprotect / pagefault / fork gets a small per-injection-point
          probability of raising {!Ccsim.Fault.Injected_crash}. The
          session reaps each dead process and asserts recovery left the
          survivors oracle-clean. Off by default — the crash draws come
          after every legacy plan draw, so crash-free configs keep the
          frozen rng sequence (golden digest). *)
  watchdog : int option;
      (** livelock horizon in simulated cycles: arm
          {!Check.arm_watchdog} and feed it once per retired operation;
          a session that stops retiring operations for this many cycles
          is declared livelocked (FAIL, with a held-lock dump in the
          transcript) and abandoned. Requires [check]. [None] (default)
          disarms. *)
  lock_timeouts : (string * float) list;
      (** spurious lock-timeout rules, [(line label, probability)]:
          timed acquires on locks with that label fail spuriously
          ({!Ccsim.Fault.timeout_locks}). Part of the chaos palette;
          empty by default. *)
}

val default : config
(** seed 0, 600 ops, 4 cores, checker attached, quiet, not broken,
    radix-embedded range locks, no crash rules, no watchdog. *)

(** {1 Reified sessions}

    A {!program} is a session made explicit: the resolved fault plan and
    the exact operation stream, each operation carrying the concrete
    parameters the generator drew (process, core, vpns, values). Replay
    needs no session rng — it executes the list — so a program survives
    editing: ops can be deleted, the plan trimmed, the core count
    reduced, and the result is still a valid (if different) session.
    That editability is what the shrinker exploits. *)

type op =
  | Nop
      (** a generated iteration that took no action; recorded so replay
          drains the machine and checks invariants at the same
          operation indices as generation (drain timing feeds back into
          frame reclamation, so it must be preserved for byte-identical
          replay) *)
  | Mmap of { p : int; c : int; lo : int; len : int; ro : bool }
  | Munmap of { p : int; c : int; lo : int; len : int }
  | Mprotect of { p : int; c : int; lo : int; len : int; ro : bool }
  | Store of { p : int; c : int; vpn : int; value : int }
  | Load of { p : int; c : int; vpn : int }
  | Touch of { p : int; c : int; vpn : int }
  | Discard of { p : int; c : int }
  | Fork of { p : int; c : int; child : int }
      (** [child] is the id the new process will get (pre-reserved by the
          generator, so ids stay stable under replay even when a crash
          kills the fork) *)
  | Exit of { c : int; victim : int }  (** [victim] is a process id *)
  | Spawn of { id : int }
      (** recreate a fresh process (recorded when a crash killed the last
          one); does not advance the drain counter *)

type rule_spec = {
  rs_op : string;  (** "mmap", "munmap", "mprotect", "pagefault", "fork" *)
  rs_point : string option;  (** injection point, [None] = every point *)
  rs_prob : float;
}

type plan_spec = {
  ps_budget : int option;  (** frame budget *)
  ps_delayed : (int * int) list;  (** (core, IPI-ack delay cycles) *)
  ps_stalled : int list;  (** cores that never ack IPIs *)
  ps_aborts : rule_spec list;
  ps_crashes : rule_spec list;
  ps_timeouts : (string * float) list;  (** (line label, probability) *)
}

type program = {
  pr_seed : int;  (** seeds the {e fault plan's} rng (firing decisions) *)
  pr_ncores : int;
  pr_check : bool;
  pr_broken : bool;
  pr_rangelock : Locks.Range_lock.kind;
  pr_watchdog : int option;
  pr_plan : plan_spec;
  pr_ops : op list;
}

type outcome = {
  transcript : string;
      (** deterministic: same [config] (or same [program]) ⇒ same bytes.
          Includes the fault plan, any failures, and a summary with
          injection counters. Replaying an unmodified recorded program
          reproduces the generating session's transcript byte for
          byte. *)
  passed : bool;
  failures : string list;  (** oldest first; empty iff [passed] *)
  crashes : int;  (** processes killed by injected crashes (and reaped) *)
  livelocked : bool;
      (** the watchdog tripped: the session was abandoned mid-operation
          (no teardown, no end-of-run checker queries) *)
  program : program;
      (** the session, reified: what was (or would be, for a replay)
          executed. Serialize with {!program_to_string} for a repro
          artifact. *)
}

val run_session : config -> outcome
(** Run one session to completion (including teardown: every process
    destroyed, epochs drained, zero live frames demanded). Never raises —
    oracle mismatches, invariant violations, checker findings, crashes
    that reap badly, and livelocks are reported in the outcome, each
    tagged with the seed that replays them. *)

val run_program : ?verbose:bool -> program -> outcome
(** Replay a reified session: no operation generation, no session rng —
    the listed ops execute in order against a fresh machine configured
    from [pr_plan]. Operations naming processes that do not exist (dead
    after an edit moved a crash, or never forked after an edit dropped
    the fork) are skipped and counted in the transcript's summary line.
    Core ids are taken mod the core count, and plan entries for
    out-of-range cores are dropped, so reduced programs stay valid. *)

(** {1 Sharded worlds} *)

type world_outcome = {
  w_transcript : string;
      (** world header + cross-node spawn schedule + every node's session
          transcript in node order + a world verdict line. A pure
          function of the configuration and node count — byte-identical
          at any [shards] width, which the golden test pins at widths
          1, 2, and 4. *)
  w_passed : bool;
  w_failures : string list;  (** each tagged ["node N: ..."] *)
  w_spawns : int;  (** cross-node spawn injections in the schedule *)
  w_outcomes : outcome list;  (** per-node outcomes, node order *)
}

val run_world : ?clamp:bool -> ?shards:int -> nodes:int -> config -> world_outcome
(** Run a world of [nodes] coupled sessions: node [n] runs an ordinary
    session with seed [cfg.seed + 7919*n], plus a static cross-node
    spawn schedule — per-node rngs (independent of every session rng)
    decide at which barrier indices (every 97th counted op, the drain
    period) a node asks its successor to spawn a fresh process there,
    executed as an ordinary recorded {!Spawn} op so a node's repro
    artifact replays standalone. [shards] host domains execute the node
    sessions ([Harness.Pool]); since the schedule is fixed up front the
    sessions are embarrassingly parallel and the outcome is independent
    of [shards]. [clamp] (default) additionally bounds the width by
    {!Harness.Pool.default_jobs}; [nodes = 1] degenerates to exactly
    {!run_session} wrapped in the world envelope. *)

(** {1 Repro files} *)

val program_to_string : program -> string
(** A line-oriented, hand-editable serialization, terminated by an ["end"]
    line. Probabilities use hexadecimal float literals ([%h]) so the
    round-trip is bit-exact — a re-serialized program never drifts.
    Anything after the ["end"] line is ignored by the parser, so a repro
    file can carry the failing transcript as an appendix. *)

val program_of_string : string -> (program, string) result
(** Inverse of {!program_to_string} (modulo comments and blank lines).
    [Error] carries a message naming the offending line. *)

(** {1 Shrinking} *)

val shrink :
  ?log:(string -> unit) -> program -> (program, string) result
(** Delta-debug a failing program to a minimal reproducer that still
    fails. Four passes iterate to a fixpoint (at most five rounds):
    fault-plan entries the failure does not depend on are stripped;
    surviving probabilistic abort/crash rules are pinned to
    deterministic point-specific probability-1.0 forms (so the failure
    stops depending on the plan rng); the op stream is reduced by ddmin
    (complement reduction, 1-minimal on termination); and the core count
    is lowered to the smallest that still fails. Every candidate is
    validated by an actual replay, and every pass is deterministic, so
    the same failure always shrinks to the same reproducer.
    [Error] if [program] does not fail in the first place. [log]
    receives one progress line per round. *)
