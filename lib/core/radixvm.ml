open Ccsim
module Refcache = Refcnt.Refcache

module Make (C : Refcnt.Counter_intf.S) = struct
  module Cache = Page_cache.Make (C)

  (* Per-page mapping metadata. A freshly mmapped range shares one folded,
     immutable record; a page's record is privatized (replaced via
     [Radix.set_page]) before anything mutable — the frame pointer, the
     COW bit, or the TLB core set — is written. The record lives inline in
     the page's leaf slot (Figure 3), so its mutations are charged against
     the slot's cache line, which the fault path already owns through the
     slot lock. *)
  type meta = {
    prot : Vm_types.prot;
    backing : Vm_types.backing;
    mutable frame : (int * C.handle) option;
    mutable cow : bool;  (* shared frame: a write must copy first *)
    tlb_cores : Bitset.t;  (* cores that may cache this page's translation *)
  }

  type t = {
    machine : Machine.t;
    rc : Refcache.t;  (* tracks radix-tree nodes *)
    csub : C.t;  (* tracks physical frames *)
    cache : Cache.t;  (* file-backed pages, shared across address spaces *)
    tree : meta Radix.t;
    mmu : Mmu.t;
    ever_active : Bitset.t;  (* cores that ever used this address space *)
    rangelock : Locks.Range_lock.kind;  (* forked children inherit *)
    rl_partition : int option;
    mutable crashed : (unit -> unit) option;
        (* Pending crash repair: set when [Fault.Injected_crash] killed an
           operation mid-critical-section, consumed by [reap]. The closure
           backs out the half-done work — what a real kernel reconstructs
           from the dead CPU's journal. *)
  }

  let name = "radixvm+" ^ C.name

  let fresh_meta (core : Core.t) ~prot ~backing =
    {
      prot;
      backing;
      frame = None;
      cow = false;
      tlb_cores = Bitset.create core.Core.params.Params.ncores;
    }

  let create_with ?(mmu = Page_table.Per_core) ?bits ?levels ?collapse
      ?(rangelock = Locks.Range_lock.Radix_embedded) ?partition ?share_state
      machine =
    let rc, csub, cache =
      match share_state with
      | Some other -> (other.rc, other.csub, other.cache)
      | None ->
          let rc = Refcache.create machine in
          let csub = C.create machine in
          (rc, csub, Cache.create machine csub)
    in
    let core0 = Machine.core machine 0 in
    {
      machine;
      rc;
      csub;
      cache;
      tree =
        Radix.create ?bits ?levels ?collapse ~backend:rangelock ?partition
          machine rc core0;
      mmu = Mmu.create machine mmu;
      ever_active = Bitset.create (Machine.ncores machine);
      rangelock;
      rl_partition = partition;
      crashed = None;
    }

  let create machine = create_with machine
  let machine t = t.machine
  let counters t = t.csub
  let refcache t = t.rc
  let page_cache t = t.cache
  let cached_file_pages t = Cache.cached_pages t.cache
  let evict_file_page t core ~file ~page = Cache.evict t.cache core ~file ~page
  let radix_nodes t = Radix.node_count t.tree
  let mmu t = t.mmu
  let address_space_pages t = Radix.max_vpn t.tree

  let writable m =
    (match m.prot with Vm_types.Read_write -> true | Vm_types.Read_only -> false)
    && not m.cow

  (* With grouped tables, any group member may fill its TLB from the group
     table without faulting: widen per-core tracking to whole groups. *)
  let widen_to_groups t targets =
    match Mmu.kind t.mmu with
    | Page_table.Per_core | Page_table.Shared -> ()
    | Page_table.Grouped g ->
        let ncores = Machine.ncores t.machine in
        let widened = Bitset.create ncores in
        Bitset.iter
          (fun c ->
            let base = c / g * g in
            for i = base to min (ncores - 1) (base + g - 1) do
              Bitset.add widened i
            done)
          targets;
        Bitset.union_into ~dst:targets widened

  (* Clear translations for [lo, hi) on every core in [targets] and send
     the IPIs; the caller holds the range lock. *)
  let shootdown t (core : Core.t) ~lo ~hi targets =
    widen_to_groups t targets;
    if not (Bitset.is_empty targets) then begin
      Bitset.iter
        (fun c -> ignore (Mmu.drop_for_core t.mmu ~owner:c ~lo ~hi))
        targets;
      let remote =
        Bitset.fold
          (fun c acc -> if c = core.Core.id then acc else c :: acc)
          targets []
      in
      (* Local invalidation is a few instructions. *)
      Core.tick core core.Core.params.Params.op_cost;
      if not (List.is_empty remote) then
        Ipi.multicast t.machine core ~targets:remote
    end

  (* Unmap bookkeeping shared by munmap and map-over: with the range still
     locked, gather the frames and the cores that may cache translations,
     clear exactly those cores' page tables and TLBs, and interrupt the
     remote ones. Returns the frame handles whose references the caller
     drops *after* unlocking (the paper's ordering). *)
  let cleanup_removed t (core : Core.t) ~lo ~hi removed =
    let ncores = Machine.ncores t.machine in
    let targets = Bitset.create ncores in
    let handles = ref [] in
    let any_frames = ref false in
    List.iter
      (fun (_vpn, _count, m) ->
        match m.frame with
        | Some (_pfn, h) ->
            any_frames := true;
            handles := h :: !handles;
            (match Mmu.kind t.mmu with
            | Page_table.Per_core | Page_table.Grouped _ ->
                Bitset.union_into ~dst:targets m.tlb_cores
            | Page_table.Shared -> ())
        | None -> ())
      removed;
    (* Shared page tables give no usage information: if any page was ever
       faulted, conservatively shoot down every core that used the address
       space. *)
    (match Mmu.kind t.mmu with
    | Page_table.Shared ->
        if !any_frames then Bitset.union_into ~dst:targets t.ever_active
    | Page_table.Per_core | Page_table.Grouped _ -> ());
    shootdown t core ~lo ~hi targets;
    (* The range is gone and the shootdown round is over: no core may still
       cache a translation for [lo, hi). The TLB checker verifies this. *)
    let obs = Machine.obs t.machine in
    if Obs.active obs then
      Obs.emit obs
        (Obs.Unmap_done
           { core = core.Core.id; asid = Mmu.asid t.mmu; lo; hi });
    !handles

  let drop_handles t core handles =
    List.iter (fun h -> C.dec t.csub core h) handles

  (* ---------------------------------------------------------------- *)
  (* Fault-injection plumbing. Every operation below is exception-safe:
     whatever escapes its critical section (an injected abort, frame
     exhaustion from [Physmem.alloc]) unwinds through a handler that
     rolls the tree back to the pre-operation state and releases the
     range lock, so a failed operation is a no-op. The [rollback_broken]
     escape hatch deliberately skips that handling — it exists so tests
     can prove the leak checkers catch a missing rollback. *)

  let abort_point (core : Core.t) ~op ~point =
    match core.Core.fault with
    | None -> ()
    | Some f -> Fault.abort_now f ~op ~point

  let rollback_broken (core : Core.t) =
    match core.Core.fault with
    | Some f -> Fault.rollback_broken f
    | None -> false

  (* Crash semantics: an [Injected_crash] kills the process on the spot.
     Unlike an abort, the dying operation must NOT unwind — no rollback,
     no unlock; the tree is left exactly as the dead core left it, locks
     and all. Each operation instead maintains [repair], a closure
     capturing how to back out its half-done work from the current point,
     and the outer handler stashes it in [t.crashed] for [reap] to run.
     The inner rollback handlers exclude crashes with [is_crash] so the
     graceful-abort path stays untouched. *)
  let is_crash = function Fault.Injected_crash _ -> true | _ -> false

  let stash_crash t repair e =
    if is_crash e then begin
      (match t.crashed with
      | None -> ()
      | Some _ ->
          raise
            (Vm_types.Invariant_violation
               {
                 subsystem = "radixvm";
                 detail = "second crash before the first was reaped";
               }));
      t.crashed <- Some repair
    end

  let crash_pending t = Option.is_some t.crashed

  (* Reinstall the mappings a [clear_range] removed, page by page, undoing
     a partially applied operation. The displaced records still own their
     frame references (the caller must not have dropped the collected
     handles), so putting the same records back restores the refcount
     picture exactly. Pages of a folded run go back as per-page slots
     sharing one record — the same sharing [Radix.expand] produces. *)
  let reinstate t core lk removed =
    List.iter
      (fun (vpn, count, m) ->
        for p = vpn to vpn + count - 1 do
          Radix.set_page t.tree core lk p m
        done)
      removed

  let mmap t (core : Core.t) ~vpn ~npages ?(prot = Vm_types.Read_write)
      ?(backing = Vm_types.Anon) () =
    if npages <= 0 then invalid_arg "Radixvm.mmap: npages";
    let stats = core.Core.stats in
    stats.Stats.mmaps <- stats.Stats.mmaps + 1;
    Bitset.add t.ever_active core.Core.id;
    Core.tick core core.Core.params.Params.op_cost;
    let lo = vpn and hi = vpn + npages in
    let lk = Radix.lock_range t.tree core ~lo ~hi in
    let repair = ref (fun () -> Radix.unlock_range ~dead:true t.tree core lk) in
    match
      abort_point core ~op:"mmap" ~point:"locked";
      let removed = Radix.clear_range t.tree core lk in
      let handles = cleanup_removed t core ~lo ~hi removed in
      (repair :=
         fun () ->
           (* Drop any partial fill (its fresh records carry no frames),
              put the displaced mappings back — they still own the
              collected handles' references — and free the range on the
              dead core's behalf. *)
           let _ : (int * int * meta) list =
             Radix.clear_range t.tree core lk
           in
           reinstate t core lk removed;
           Radix.unlock_range ~dead:true t.tree core lk);
      (try
         abort_point core ~op:"mmap" ~point:"cleared";
         Radix.fill_range t.tree core lk (fresh_meta core ~prot ~backing);
         abort_point core ~op:"mmap" ~point:"filled"
       with e when (not (is_crash e)) && not (rollback_broken core) ->
         (* Drop any partial fill, put the displaced mappings back. The
            shoot-down that already happened only over-invalidated TLBs,
            which is always safe. *)
         let _ : (int * int * meta) list = Radix.clear_range t.tree core lk in
         reinstate t core lk removed;
         raise e);
      handles
    with
    | handles ->
        Radix.unlock_range t.tree core lk;
        drop_handles t core handles
    | exception e ->
        stash_crash t !repair e;
        if (not (is_crash e)) && not (rollback_broken core) then
          Radix.unlock_range t.tree core lk;
        raise e

  let munmap t (core : Core.t) ~vpn ~npages =
    if npages <= 0 then invalid_arg "Radixvm.munmap: npages";
    let stats = core.Core.stats in
    stats.Stats.munmaps <- stats.Stats.munmaps + 1;
    Core.tick core core.Core.params.Params.op_cost;
    let lo = vpn and hi = vpn + npages in
    let lk = Radix.lock_range t.tree core ~lo ~hi in
    let repair = ref (fun () -> Radix.unlock_range ~dead:true t.tree core lk) in
    match
      abort_point core ~op:"munmap" ~point:"locked";
      let removed = Radix.clear_range t.tree core lk in
      let handles = cleanup_removed t core ~lo ~hi removed in
      (repair :=
         fun () ->
           reinstate t core lk removed;
           Radix.unlock_range ~dead:true t.tree core lk);
      (try abort_point core ~op:"munmap" ~point:"cleared"
       with e when (not (is_crash e)) && not (rollback_broken core) ->
         reinstate t core lk removed;
         raise e);
      handles
    with
    | handles ->
        Radix.unlock_range t.tree core lk;
        drop_handles t core handles
    | exception e ->
        stash_crash t !repair e;
        if (not (is_crash e)) && not (rollback_broken core) then
          Radix.unlock_range t.tree core lk;
        raise e

  let destroy t core =
    (* Process teardown must not fail: like a real kernel's exit path it
       runs with injection suppressed (the frame budget is irrelevant —
       teardown only releases frames). *)
    Fault.with_suppressed core.Core.fault (fun () ->
        munmap t core ~vpn:0 ~npages:(Radix.max_vpn t.tree))

  (* Reap a process that died mid-operation: run the crashed operation's
     pending repair — backing out its half-done work and force-releasing
     the range locks it died holding — then tear the dead address space
     down, reclaiming its frames through the refcounting layer. Siblings
     sharing frames keep them (their references are untouched). Must be
     called with the dead process's own core: lock releases are attributed
     to the core that acquired them, which both the time-based lock model
     and the checker's per-core held-lock accounting require. Like any
     exit path, reaping runs with injection suppressed. *)
  let reap t core =
    Fault.with_suppressed core.Core.fault (fun () ->
        (match t.crashed with
        | Some repair ->
            t.crashed <- None;
            repair ()
        | None -> ());
        destroy t core)

  (* mprotect: rewrite the metadata under the range lock. Removing write
     permission must invalidate cached (possibly writable) translations;
     granting it needs no shootdown — stale read-only translations upgrade
     lazily through protection faults. *)
  let mprotect t (core : Core.t) ~vpn ~npages prot =
    if npages <= 0 then invalid_arg "Radixvm.mprotect: npages";
    Core.tick core core.Core.params.Params.op_cost;
    let lo = vpn and hi = vpn + npages in
    let lk = Radix.lock_range t.tree core ~lo ~hi in
    (* The only injection point fires before the first mutation, so a
       crash here leaves nothing to back out: repair just frees the lock. *)
    let repair () = Radix.unlock_range ~dead:true t.tree core lk in
    match
      (* The only abort point is before the first mutation: a permission
         rewrite cannot be partially rolled back page by page, so the
         injection model aborts it atomically or not at all. *)
      abort_point core ~op:"mprotect" ~point:"locked";
      let targets = Bitset.create (Machine.ncores t.machine) in
      let any_frames = ref false in
      Radix.update_range t.tree core lk ~f:(fun m ->
          if Option.is_some m.frame then begin
            any_frames := true;
            Bitset.union_into ~dst:targets m.tlb_cores
          end;
          { m with prot });
      if prot = Vm_types.Read_only then begin
        (match Mmu.kind t.mmu with
        | Page_table.Shared ->
            if !any_frames then Bitset.union_into ~dst:targets t.ever_active
        | Page_table.Per_core | Page_table.Grouped _ -> ());
        shootdown t core ~lo ~hi targets
      end
    with
    | () -> Radix.unlock_range t.tree core lk
    | exception e ->
        stash_crash t repair e;
        if (not (is_crash e)) && not (rollback_broken core) then
          Radix.unlock_range t.tree core lk;
        raise e

  let mmap_shared_frame t (core : Core.t) ~vpn ~npages ~pfn handle =
    if npages <= 0 then invalid_arg "Radixvm.mmap_shared_frame: npages";
    let stats = core.Core.stats in
    stats.Stats.mmaps <- stats.Stats.mmaps + 1;
    Bitset.add t.ever_active core.Core.id;
    Core.tick core core.Core.params.Params.op_cost;
    let lo = vpn and hi = vpn + npages in
    let lk = Radix.lock_range t.tree core ~lo ~hi in
    (* The one injection point fires before any mutation (the fill loop
       that follows cannot fault), so repair is unlock-only. *)
    let repair () = Radix.unlock_range ~dead:true t.tree core lk in
    match
      abort_point core ~op:"mmap" ~point:"locked";
      let removed = Radix.clear_range t.tree core lk in
      let handles = cleanup_removed t core ~lo ~hi removed in
      for p = lo to hi - 1 do
        C.inc t.csub core handle;
        let m =
          fresh_meta core ~prot:Vm_types.Read_write ~backing:Vm_types.Anon
        in
        m.frame <- Some (pfn, handle);
        Radix.set_page t.tree core lk p m
      done;
      handles
    with
    | handles ->
        Radix.unlock_range t.tree core lk;
        drop_handles t core handles
    | exception e ->
        stash_crash t repair e;
        if (not (is_crash e)) && not (rollback_broken core) then
          Radix.unlock_range t.tree core lk;
        raise e

  (* Attach a frame to a faulting page, privatizing its metadata record:
     anonymous pages get a zeroed frame, file pages come from the shared
     page cache (MAP_SHARED semantics: every mapping of the file page uses
     the one cached frame). *)
  let attach_frame t (core : Core.t) lk vpn m =
    let stats = core.Core.stats in
    stats.Stats.alloc_faults <- stats.Stats.alloc_faults + 1;
    let frame =
      match m.backing with
      | Vm_types.Anon ->
          let pfn = Physmem.alloc (Machine.physmem t.machine) core in
          let handle =
            C.make t.csub core ~init:1 ~on_free:(fun c ->
                Physmem.free (Machine.physmem t.machine) c pfn)
          in
          (pfn, handle)
      | Vm_types.File fd -> Cache.get t.cache core ~file:fd ~page:vpn
    in
    let m' = fresh_meta core ~prot:m.prot ~backing:m.backing in
    m'.frame <- Some frame;
    m'.cow <- m.cow;
    Radix.set_page t.tree core lk vpn m';
    m'

  (* Break copy-on-write: copy the shared frame into a private one and
     drop the reference on the original. *)
  let break_cow t (core : Core.t) m =
    match m.frame with
    | None -> assert false
    | Some (old_pfn, old_handle) ->
        let pm = Machine.physmem t.machine in
        let pfn = Physmem.alloc pm core in
        (* copying the old page's contents *)
        Physmem.set_content pm pfn (Physmem.get_content pm old_pfn);
        Core.tick core core.Core.params.Params.page_zero;
        let handle =
          C.make t.csub core ~init:1 ~on_free:(fun c ->
              Physmem.free (Machine.physmem t.machine) c pfn)
        in
        m.frame <- Some (pfn, handle);
        m.cow <- false;
        C.dec t.csub core old_handle

  (* The software page-fault handler (section 3.4), for both misses and
     protection faults (COW breaks and lazy RO->RW upgrades). Returns the
     frame the access may now use, or [None] for a genuine violation. *)
  let pagefault t (core : Core.t) vpn ~write =
    let stats = core.Core.stats in
    stats.Stats.pagefaults <- stats.Stats.pagefaults + 1;
    let lk = Radix.lock_range t.tree core ~lo:vpn ~hi:(vpn + 1) in
    (* Pre-mutation injection point only: a crash here holds the page's
       lock but has touched nothing, so repair is unlock-only. *)
    let repair () = Radix.unlock_range ~dead:true t.tree core lk in
    match
      (* Pre-mutation abort point; [Physmem.alloc] inside [attach_frame]
         and [break_cow] can additionally raise [Out_of_frames], in both
         cases before the page's metadata record is touched — so an OOM
         fault leaves the page exactly as it was. *)
      abort_point core ~op:"pagefault" ~point:"locked";
      match Radix.get_page t.tree core lk vpn with
      | None -> None
      | Some m
        when write
             && match m.prot with
                | Vm_types.Read_only -> true
                | Vm_types.Read_write -> false ->
          None
      | Some m ->
          let m =
            match m.frame with
            | Some _ ->
                stats.Stats.fill_faults <- stats.Stats.fill_faults + 1;
                m
            | None -> attach_frame t core lk vpn m
          in
          if write && m.cow then break_cow t core m;
          let pfn =
            match m.frame with Some (p, _) -> p | None -> assert false
          in
          (match Mmu.kind t.mmu with
          | Page_table.Per_core | Page_table.Grouped _ ->
              (* Record this core in the page's shootdown set — a local
                 store; the metadata shares the locked slot's line. *)
              Core.tick core core.Core.params.Params.l1_hit;
              Bitset.add m.tlb_cores core.Core.id
          | Page_table.Shared -> ());
          Mmu.install t.mmu core ~vpn ~pfn ~writable:(writable m);
          Some pfn
    with
    | r ->
        Radix.unlock_range t.tree core lk;
        r
    | exception e ->
        stash_crash t repair e;
        if (not (is_crash e)) && not (rollback_broken core) then
          Radix.unlock_range t.tree core lk;
        raise e

  (* Resolve one user access to the frame it may use. *)
  let resolve t (core : Core.t) ~vpn ~write =
    Bitset.add t.ever_active core.Core.id;
    match Mmu.translate t.mmu core ~vpn ~write with
    | Mmu.Hit pfn ->
        (* the user load/store itself *)
        Core.tick core core.Core.params.Params.l1_hit;
        Some pfn
    | Mmu.Miss | Mmu.Prot_fault _ -> pagefault t core vpn ~write

  let access t core ~vpn ~write =
    match resolve t core ~vpn ~write with
    | Some _ -> Vm_types.Ok
    | None -> Vm_types.Segfault

  let touch t core ~vpn = access t core ~vpn ~write:true
  let read t core ~vpn = access t core ~vpn ~write:false

  let store t core ~vpn value =
    match resolve t core ~vpn ~write:true with
    | Some pfn ->
        Physmem.set_content (Machine.physmem t.machine) pfn value;
        Vm_types.Ok
    | None -> Vm_types.Segfault

  let load t core ~vpn =
    match resolve t core ~vpn ~write:false with
    | Some pfn -> Some (Physmem.get_content (Machine.physmem t.machine) pfn)
    | None -> None

  (* fork: duplicate the address space. File-backed pages stay shared
     through the page cache; anonymous pages become copy-on-write in both
     parent and child, which requires demoting the parent's cached
     writable translations (a shootdown that keeps the frames). The whole
     space is range-locked, so fork serializes against concurrent VM
     operations on this address space, as in real kernels. *)
  let fork t (core : Core.t) =
    Core.tick core core.Core.params.Params.op_cost;
    let child =
      create_with ~mmu:(Mmu.kind t.mmu) ~rangelock:t.rangelock
        ?partition:t.rl_partition ~share_state:t t.machine
    in
    let lo = 0 and hi = Radix.max_vpn t.tree in
    let lk = Radix.lock_range t.tree core ~lo ~hi in
    let child_lk = Radix.lock_range child.tree core ~lo ~hi in
    (* Metadata records this fork demotes to COW (records that were not
       COW before): an abort must restore their bits, or the parent's
       still-cached writable translations would contradict the tree. *)
    let demoted = ref [] in
    (* One repair covers every fork crash point: no shootdown has happened
       before the last injection point, so restoring the demoted records'
       COW bits restores the parent exactly; the half-built child is torn
       down, returning the frame references the copy loop took. *)
    let repair () =
      List.iter (fun m -> m.cow <- false) !demoted;
      Radix.unlock_range ~dead:true child.tree core child_lk;
      Radix.unlock_range ~dead:true t.tree core lk;
      destroy child core
    in
    match
    abort_point core ~op:"fork" ~point:"locked";
    let targets = Bitset.create (Machine.ncores t.machine) in
    (* Demote the parent's writable anonymous pages to COW. *)
    Radix.update_range t.tree core lk ~f:(fun m ->
        (match (m.frame, m.backing, m.prot) with
        | Some _, Vm_types.Anon, Vm_types.Read_write ->
            Bitset.union_into ~dst:targets m.tlb_cores;
            if not m.cow then demoted := m :: !demoted;
            m.cow <- true
        | _ -> ());
        m);
    abort_point core ~op:"fork" ~point:"demoted";
    (* Build the child's mappings page by page. *)
    ignore
      (Radix.fold_mapped t.tree ~init:() ~f:(fun () vpn m ->
           abort_point core ~op:"fork" ~point:"copy";
           Core.tick core core.Core.params.Params.l1_hit;
           match m.frame with
           | None ->
               (* lazy page: child inherits the mapping, no frame *)
               Radix.set_page child.tree core child_lk vpn
                 (fresh_meta core ~prot:m.prot ~backing:m.backing)
           | Some (pfn, handle) ->
               C.inc t.csub core handle;
               let cm = fresh_meta core ~prot:m.prot ~backing:m.backing in
               cm.frame <- Some (pfn, handle);
               cm.cow <- m.cow;
               Radix.set_page child.tree core child_lk vpn cm));
    (* Drop the parent's (possibly writable) translations for demoted
       pages so the next write faults and copies. *)
    (match Mmu.kind t.mmu with
    | Page_table.Shared ->
        if not (Bitset.is_empty targets) then
          Bitset.union_into ~dst:targets t.ever_active
    | Page_table.Per_core | Page_table.Grouped _ -> ());
    abort_point core ~op:"fork" ~point:"copied";
    shootdown t core ~lo ~hi targets
    with
    | () ->
        Radix.unlock_range child.tree core child_lk;
        Radix.unlock_range t.tree core lk;
        child
    | exception e ->
        stash_crash t repair e;
        if (not (is_crash e)) && not (rollback_broken core) then begin
          (* No shootdown has happened yet, so restoring the demoted
             records' COW bits restores the parent exactly (its cached
             translations were valid for the pre-fork state). The records
             are per-page private — never folded, since only faulted
             pages carry frames — so clearing the bit cannot leak into
             other pages. *)
          List.iter (fun m -> m.cow <- false) !demoted;
          Radix.unlock_range child.tree core child_lk;
          Radix.unlock_range t.tree core lk;
          (* Tear the half-built child down: releases the frame
             references the copy loop took and empties the child's tree.
             Suppress injection — like process exit, fork's failure path
             must not itself fail. *)
          destroy child core
        end;
        raise e

  (* Memory pressure: RadixVM's page tables are caches of the radix tree
     and can simply be dropped (section 3.2: "the hardware page tables
     themselves are cacheable memory that can be discarded by the OS to
     free memory"). Later accesses re-fault and rebuild them. *)
  let discard_page_tables t (core : Core.t) =
    Core.tick core core.Core.params.Params.op_cost;
    let lo = 0 and hi = Radix.max_vpn t.tree in
    let lk = Radix.lock_range t.tree core ~lo ~hi in
    match
      let ncores = Machine.ncores t.machine in
      let remote = ref [] in
      for c = 0 to ncores - 1 do
        Mmu.discard_for_core t.mmu ~owner:c;
        if c <> core.Core.id then remote := c :: !remote
      done;
      Ipi.multicast t.machine core ~targets:!remote;
      (* No core caches anything now: reset the per-page tracking. *)
      Radix.update_range t.tree core lk ~f:(fun m ->
          Bitset.clear m.tlb_cores;
          m)
    with
    | () -> Radix.unlock_range t.tree core lk
    | exception e ->
        if not (rollback_broken core) then Radix.unlock_range t.tree core lk;
        raise e

  let mapped t ~vpn = Option.is_some (Radix.peek t.tree vpn)

  (* ---------------------------------------------------------------- *)
  (* Typed-failure entry points: the same operations with the two
     expected failures — frame exhaustion and injected aborts — caught
     and returned as values. The operations' exception safety guarantees
     an [Error] means "nothing happened". Anything else (a genuine bug)
     still propagates. *)

  let trap f =
    match f () with
    | v -> Stdlib.Ok v
    | exception Physmem.Out_of_frames -> Stdlib.Error Vm_types.Enomem
    | exception Fault.Injected_abort { op; point } ->
        Stdlib.Error (Vm_types.Aborted { op; point })

  let mmap_result t core ~vpn ~npages ?prot ?backing () =
    trap (fun () -> mmap t core ~vpn ~npages ?prot ?backing ())

  let munmap_result t core ~vpn ~npages =
    trap (fun () -> munmap t core ~vpn ~npages)

  let mprotect_result t core ~vpn ~npages prot =
    trap (fun () -> mprotect t core ~vpn ~npages prot)

  let fork_result t core = trap (fun () -> fork t core)
  let touch_result t core ~vpn = trap (fun () -> touch t core ~vpn)
  let read_result t core ~vpn = trap (fun () -> read t core ~vpn)

  let store_result t core ~vpn value =
    trap (fun () -> store t core ~vpn value)

  let load_result t core ~vpn = trap (fun () -> load t core ~vpn)

  (* Table 2 accounting: tree nodes plus the per-page copies of mapping
     metadata (pages that have faulted carry a private ~32-byte record;
     folded pages share one). *)
  let meta_bytes = 32

  let index_bytes t =
    let private_records =
      Radix.fold_mapped t.tree ~init:0 ~f:(fun acc _vpn m ->
          if Option.is_some m.frame then acc + 1 else acc)
    in
    Radix.approx_bytes t.tree + (meta_bytes * private_records)

  let pt_bytes t = Page_table.bytes (Mmu.page_table t.mmu)

  let inv_fail fmt =
    Format.kasprintf
      (fun detail ->
        raise (Vm_types.Invariant_violation { subsystem = "radixvm"; detail }))
      fmt

  let check_invariants t =
    (try Radix.check_invariants t.tree
     with Failure detail ->
       raise (Vm_types.Invariant_violation { subsystem = "radix"; detail }));
    (* After quiescence, any cached translation must be covered by the
       page's TLB core set, and no writable translation may survive for a
       read-only or COW page (per-core MMU only — shared page tables don't
       track usage). *)
    if
      match Mmu.kind t.mmu with
      | Page_table.Per_core -> true
      | Page_table.Shared | Page_table.Grouped _ -> false
    then
      ignore
        (Radix.fold_mapped t.tree ~init:() ~f:(fun () vpn m ->
             match m.frame with
             | None -> ()
             | Some (pfn, _) ->
                 for c = 0 to Machine.ncores t.machine - 1 do
                   let pt = Mmu.pt_entry t.mmu ~core:c ~vpn in
                   let cached =
                     Mmu.tlb_mem t.mmu ~core:c ~vpn
                     ||
                     match pt with
                     | Some pte -> pte.Page_table.pfn = pfn
                     | None -> false
                   in
                   if cached && not (Bitset.mem m.tlb_cores c) then
                     inv_fail "core %d caches vpn %d outside its TLB set" c
                       vpn;
                   match pt with
                   | Some pte when pte.Page_table.writable && not (writable m)
                     ->
                       inv_fail
                         "core %d holds a writable PTE for protected vpn %d" c
                         vpn
                   | Some _ | None -> ()
                 done))
end

module Default = Make (Refcnt.Refcache_counter)
