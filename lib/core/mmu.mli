(** The MMU abstraction (Table 1): hardware page tables plus per-core TLBs
    behind one interface, implemented for both per-core page tables (which
    enable targeted TLB shootdowns) and traditional shared page tables.

    [translate] is the hardware path of a user memory access: TLB hit, or
    TLB fill from the page table visible to the core (no kernel
    involvement), or a miss that the caller must turn into a software
    [pagefault]. [drop_for_core] is what a shootdown handler does on the
    target core: clear the page-table range and invalidate the TLB. *)

type t

(** Outcome of the hardware path of one memory access. *)
type translation =
  | Hit of int  (** translation present with sufficient permission *)
  | Miss  (** no translation visible: software page fault *)
  | Prot_fault of int
      (** translation present but read-only and the access is a write:
          software protection fault (COW or genuine violation) *)

val create : Ccsim.Machine.t -> Page_table.kind -> t

val asid : t -> int
(** The address-space id (from {!Ccsim.Obs.fresh_asid}) tagging every TLB
    event this MMU's per-core TLBs emit; [Unmap_done] emitters must use
    the same id so the checker scopes staleness to one address space. *)

val kind : t -> Page_table.kind
val page_table : t -> Page_table.t

val translate : t -> Ccsim.Core.t -> vpn:int -> write:bool -> translation
(** TLB lookup, then hardware walk; fills the TLB on a walk hit. *)

val install :
  t -> Ccsim.Core.t -> vpn:int -> pfn:int -> writable:bool -> unit
(** Called at the end of a software page fault: fill the faulting core's
    page table and TLB. *)

val drop_for_core : t -> owner:int -> lo:int -> hi:int -> (int * int) list
(** Remove translations for [lo, hi) from core [owner]'s page table and
    TLB; returns the [(vpn, pfn)] pairs that were present in the page
    table. *)

val drop_tlb_range : t -> owner:int -> lo:int -> hi:int -> unit
(** Invalidate core [owner]'s TLB entries for [lo, hi) without touching
    the page table (mprotect rewrites PTEs in place and only needs the
    stale cached permissions gone). *)

val discard_for_core : t -> owner:int -> unit
(** Drop core [owner]'s entire page table and TLB — the paper's
    memory-pressure story: RadixVM's page tables are caches of the radix
    tree and can be discarded wholesale; later accesses re-fault. *)

val tlb_mem : t -> core:int -> vpn:int -> bool
(** Does core [core]'s TLB cache [vpn]? (Uncharged; for invariant tests:
    after munmap returns, no TLB may cache the range.) *)

val pt_entry : t -> core:int -> vpn:int -> Page_table.pte option
(** Uncharged page-table read for tests. *)
