(** RadixVM: the paper's virtual memory system (section 3.4).

    An address space is a compressed radix tree of per-page mapping
    metadata ({!Radix}), physical pages and radix nodes are reclaimed
    through a scalable reference-counting scheme, and TLB shootdowns are
    targeted using per-core page tables ({!Mmu}).

    Operations follow the paper's concurrency plan: every operation locks
    the radix-tree slots covering its range left-to-right, so operations on
    non-overlapping ranges share no cache lines while overlapping
    operations serialize at the leftmost common page.

    - [mmap] locks the range, unmaps anything there (with shootdowns),
      writes folded mapping metadata, and unlocks: no physical pages are
      allocated.
    - [touch] is the user access path; on a software fault it locks the
      single page, allocates a frame if the page has none (privatizing the
      page's metadata record), installs the translation in the local core's
      page table and TLB, and records the core in the page's TLB set.
    - [munmap] locks the range, clears metadata while collecting frames and
      the set of cores that may cache translations, clears exactly those
      cores' page tables and TLBs (inter-processor interrupts only to
      cores that actually faulted the pages), unlocks, and then releases
      the frame references — so frames are freed only after every
      translation is gone.

    The functor parameter chooses the physical-page reference-counting
    scheme; Figure 8 runs the same benchmark over Refcache, a shared
    counter, and SNZI. Radix-tree nodes always use Refcache, as in the
    paper. *)

module Make (C : Refcnt.Counter_intf.S) : sig
  include Vm_intf.S

  val create_with :
    ?mmu:Page_table.kind ->
    ?bits:int ->
    ?levels:int ->
    ?collapse:bool ->
    ?rangelock:Locks.Range_lock.kind ->
    ?partition:int ->
    ?share_state:t ->
    Ccsim.Machine.t ->
    t
  (** [create_with machine] with [mmu] defaulting to [Per_core] (the
      paper's configuration; [Shared] gives the Figure 9 ablation),
      radix geometry as in {!Radix.create}. [rangelock] picks the
      range-lock backend (default [Radix_embedded]; see
      {!Locks.Range_lock}) and [partition] enables the embedded backend's
      huge-fold partitioning, both as in {!Radix.create}; forked children
      inherit both. [share_state] makes the new address space share
      another's Refcache, frame counters, and page cache — what processes
      of one system share ({!fork} uses it). *)

  val store : t -> Ccsim.Core.t -> vpn:int -> int -> Vm_types.access_result
  (** A user store carrying a value: like {!touch}, but records the word in
      the backing frame, so copy-on-write and page sharing are observable
      on real data. *)

  val load : t -> Ccsim.Core.t -> vpn:int -> int option
  (** A user load: [None] means the access faulted fatally. *)

  val fork : t -> Ccsim.Core.t -> t
  (** Duplicate the address space, Unix-fork style: file-backed pages stay
      shared through the page cache; anonymous pages become copy-on-write
      in both parent and child (the parent's writable translations are
      shot down so its next writes fault and copy). *)

  val destroy : t -> Ccsim.Core.t -> unit
  (** Unmap everything (process exit): every frame reference is dropped.
      Runs with fault injection suppressed — teardown never fails. *)

  val reap : t -> Ccsim.Core.t -> unit
  (** Recover from a crash ({!Ccsim.Fault.Injected_crash}): a crashed
      operation does not unwind — it leaves the tree mid-mutation with its
      range locks held and stashes a repair closure here. [reap t core]
      runs that repair (backing out the half-done mutation, force-releasing
      the dead process's range locks — {!Radix.unlock_range}[ ~dead:true] —
      and, for a crashed fork, destroying the half-built child), then
      destroys the address space, reclaiming every frame through the
      refcounting layer. Siblings sharing state are untouched. [core] must
      be the core the process crashed on: lock releases must come from the
      acquiring core for the lock model's timestamps and the checker's
      per-core held-lock accounting to balance. Safe to call without a
      pending crash (plain teardown). Runs with injection suppressed. *)

  val crash_pending : t -> bool
  (** A crash happened in this address space and {!reap} has not yet run. *)

  val discard_page_tables : t -> Ccsim.Core.t -> unit
  (** Memory pressure: drop every per-core page table and TLB entry. The
      radix tree is the canonical mapping, so nothing is lost — subsequent
      accesses re-fault and rebuild (section 3.2's "page tables are
      cacheable memory"). *)

  val address_space_pages : t -> int
  (** One past the largest mappable VPN. *)

  val page_cache : t -> Page_cache.Make(C).t
  (** The file page cache shared by this address space's family. *)

  val cached_file_pages : t -> int
  (** Pages resident in the file page cache (for tests). *)

  val evict_file_page : t -> Ccsim.Core.t -> file:int -> page:int -> unit
  (** Drop the cache's reference on one file page (memory pressure). *)

  val mmap_shared_frame :
    t -> Ccsim.Core.t -> vpn:int -> npages:int -> pfn:int -> C.handle -> unit
  (** Map an existing physical frame (e.g. a shared library page or a
      forked page): takes one reference per page on the frame's counter.
      This is the Figure 8 workload's operation. *)

  (** {2 Typed-failure entry points}

      The same operations with the two {e expected} failure modes — frame
      exhaustion ({!Ccsim.Physmem.Out_of_frames} becomes
      [Error Vm_types.Enomem]) and injected aborts
      ({!Ccsim.Fault.Injected_abort} becomes [Error (Vm_types.Aborted _)])
      — caught and returned as values. Every operation is exception-safe:
      an [Error] means the operation was a no-op (range locks released,
      partial mutations rolled back, reference counts rebalanced), so the
      caller may retry, degrade, or report. Any other exception is a bug
      and still propagates. *)

  val mmap_result :
    t -> Ccsim.Core.t -> vpn:int -> npages:int -> ?prot:Vm_types.prot ->
    ?backing:Vm_types.backing -> unit -> (unit, Vm_types.vm_error) Stdlib.result

  val munmap_result :
    t -> Ccsim.Core.t -> vpn:int -> npages:int ->
    (unit, Vm_types.vm_error) Stdlib.result

  val mprotect_result :
    t -> Ccsim.Core.t -> vpn:int -> npages:int -> Vm_types.prot ->
    (unit, Vm_types.vm_error) Stdlib.result

  val fork_result :
    t -> Ccsim.Core.t -> (t, Vm_types.vm_error) Stdlib.result
  (** {!fork} with the expected failures caught. An [Error] means the
      parent is untouched (COW demotions undone, locks released) and the
      half-built child was destroyed — its tree emptied and every frame
      reference the copy had taken released. *)

  val touch_result :
    t -> Ccsim.Core.t -> vpn:int ->
    (Vm_types.access_result, Vm_types.vm_error) Stdlib.result

  val read_result :
    t -> Ccsim.Core.t -> vpn:int ->
    (Vm_types.access_result, Vm_types.vm_error) Stdlib.result

  val store_result :
    t -> Ccsim.Core.t -> vpn:int -> int ->
    (Vm_types.access_result, Vm_types.vm_error) Stdlib.result

  val load_result :
    t -> Ccsim.Core.t -> vpn:int ->
    (int option, Vm_types.vm_error) Stdlib.result

  val counters : t -> C.t
  (** The frame-counting subsystem (to create shared frames). *)

  val refcache : t -> Refcnt.Refcache.t
  (** The Refcache instance tracking radix nodes. *)

  val radix_nodes : t -> int
  val mmu : t -> Mmu.t

  val check_invariants : t -> unit
  (** Tree invariants plus: every mapped-with-frame page's TLB set covers
      every core whose TLB or page table holds its translation.
      @raise Vm_types.Invariant_violation on failure, with the subsystem
      ("radix" or "radixvm") and a description. *)
end

(** The paper's configuration: Refcache for physical pages too. *)
module Default : sig
  include module type of Make (Refcnt.Refcache_counter)
end
