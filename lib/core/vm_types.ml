(** Shared vocabulary for every VM system in the repository. *)

type prot = Read_only | Read_write

type backing =
  | Anon  (** demand-zero anonymous memory *)
  | File of int  (** file-backed mapping; the int names the file *)

(** Result of a user-level page access. *)
type access_result =
  | Ok  (** translation present or fault handled *)
  | Segfault  (** access to an unmapped page *)
  | Oom  (** the fault handler could not allocate a frame *)

(** Typed failure of a VM operation under fault injection or memory
    pressure. Operations that fail this way are no-ops: locks released,
    partial mutations rolled back, reference counts rebalanced. *)
type vm_error =
  | Enomem  (** physical frame budget exhausted *)
  | Aborted of { op : string; point : string }
      (** the operation hit a fault-injection abort point *)

exception Invariant_violation of { subsystem : string; detail : string }
(** A VM invariant check failed. Structured (rather than [Failure]) so
    harnesses — the fuzzer in particular — can catch it, print the
    offending seed, and continue. *)

let pp_access_result ppf = function
  | Ok -> Format.pp_print_string ppf "ok"
  | Segfault -> Format.pp_print_string ppf "segfault"
  | Oom -> Format.pp_print_string ppf "oom"

let pp_vm_error ppf = function
  | Enomem -> Format.pp_print_string ppf "ENOMEM"
  | Aborted { op; point } -> Format.fprintf ppf "aborted(%s@%s)" op point

let pp_prot ppf = function
  | Read_only -> Format.pp_print_string ppf "r--"
  | Read_write -> Format.pp_print_string ppf "rw-"

let pp_backing ppf = function
  | Anon -> Format.pp_print_string ppf "anon"
  | File fd -> Format.fprintf ppf "file:%d" fd

let page_size = 4096
(** Bytes per page, for memory-overhead accounting. *)

let ptes_per_page = 512
(** Page-table entries per page-table page (x86-64). *)
