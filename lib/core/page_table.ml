open Ccsim

type kind = Per_core | Shared | Grouped of int

type pte = { pfn : int; writable : bool }

(* A table per "domain": one per core, one per group of cores, or one for
   the whole machine. PTEs are packed eight per cache line within a
   domain, so walks and installs by different cores of the same domain
   contend realistically; a per-core domain's lines are only ever touched
   by their core and stay in its cache. *)
type t = {
  kind : kind;
  machine : Machine.t;
  maps : (int, pte) Hashtbl.t array;  (* per domain: vpn -> pte *)
  lines : (int, Line.t) Hashtbl.t;  (* (domain, vpn group) -> line *)
}

let domains_of machine = function
  | Per_core -> Machine.ncores machine
  | Shared -> 1
  | Grouped g ->
      if g <= 0 then invalid_arg "Page_table: group size";
      (Machine.ncores machine + g - 1) / g

let create machine kind =
  {
    kind;
    machine;
    maps = Array.init (domains_of machine kind) (fun _ -> Hashtbl.create 256);
    lines = Hashtbl.create 1024;
  }

let kind t = t.kind

let domain_of t core_id =
  match t.kind with
  | Per_core -> core_id
  | Shared -> 0
  | Grouped g -> core_id / g

let line_for t ~domain ~vpn =
  let key = (domain lsl 40) lor (vpn / 8) in
  match Hashtbl.find_opt t.lines key with
  | Some line -> line
  | None ->
      let params = Machine.params t.machine in
      let nsockets =
        max 1 (params.Params.ncores / params.Params.cores_per_socket)
      in
      let label =
        match t.kind with
        | Per_core -> "pt:percore"
        | Shared -> "pt:shared"
        | Grouped _ -> "pt:grouped"
      in
      let line =
        Line.create ~label params (Machine.stats t.machine)
          ~home_socket:(key mod nsockets)
      in
      Hashtbl.replace t.lines key line;
      line

let find t (core : Core.t) ~vpn =
  let domain = domain_of t core.Core.id in
  Line.read core (line_for t ~domain ~vpn);
  Hashtbl.find_opt t.maps.(domain) vpn

let install t (core : Core.t) ~vpn ~pfn ~writable =
  let domain = domain_of t core.Core.id in
  Line.write core (line_for t ~domain ~vpn);
  Hashtbl.replace t.maps.(domain) vpn { pfn; writable }

let clear_range t ~owner ~lo ~hi =
  let map = t.maps.(domain_of t owner) in
  let removed = ref [] in
  if hi - lo < Hashtbl.length map then
    for vpn = lo to hi - 1 do
      match Hashtbl.find_opt map vpn with
      | Some pte ->
          Hashtbl.remove map vpn;
          removed := (vpn, pte.pfn) :: !removed
      | None -> ()
    done
  else begin
    let doomed =
      Hashtbl.fold
        (fun vpn pte acc ->
          if vpn >= lo && vpn < hi then (vpn, pte.pfn) :: acc else acc)
        map []
    in
    List.iter (fun (vpn, _) -> Hashtbl.remove map vpn) doomed;
    removed := doomed
  end;
  List.rev !removed

let entries t =
  Array.fold_left (fun acc map -> acc + Hashtbl.length map) 0 t.maps

let pt_pages t =
  Array.fold_left
    (fun acc map ->
      let leaves = Hashtbl.create 64 in
      Hashtbl.iter
        (fun vpn _ -> Hashtbl.replace leaves (vpn / Vm_types.ptes_per_page) ())
        map;
      acc + Hashtbl.length leaves)
    0 t.maps

let bytes t = pt_pages t * Vm_types.page_size

let peek t ~owner ~vpn = Hashtbl.find_opt t.maps.(domain_of t owner) vpn
