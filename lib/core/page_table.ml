open Ccsim

type kind = Per_core | Shared | Grouped of int

type pte = { pfn : int; writable : bool }

(* A table per "domain": one per core, one per group of cores, or one for
   the whole machine. PTEs are packed eight per cache line within a
   domain, so walks and installs by different cores of the same domain
   contend realistically; a per-core domain's lines are only ever touched
   by their core and stay in its cache.

   Both maps are open-addressed int tables ({!Ccsim.Int_table}): a PTE
   packs as [pfn lsl 1 lor writable] (absent = [-1]), so the walk that
   every simulated memory access performs neither hashes nor allocates. *)
type t = {
  kind : kind;
  machine : Machine.t;
  maps : int Int_table.t array;  (* per domain: vpn -> packed pte *)
  lines : Line.t Int_table.t;  (* (domain, vpn group) -> line *)
  dummy_line : Line.t;
}

let domains_of machine = function
  | Per_core -> Machine.ncores machine
  | Shared -> 1
  | Grouped g ->
      if g <= 0 then invalid_arg "Page_table: group size";
      (Machine.ncores machine + g - 1) / g

let create machine kind =
  let params = Machine.params machine in
  let dummy_line =
    Line.create ~label:"pt:none" params (Machine.stats machine) ~home_socket:0
  in
  {
    kind;
    machine;
    maps =
      Array.init (domains_of machine kind) (fun _ ->
          Int_table.create ~size_hint:256 (-1));
    lines = Int_table.create ~size_hint:1024 dummy_line;
    dummy_line;
  }

let kind t = t.kind

let domain_of t core_id =
  match t.kind with
  | Per_core -> core_id
  | Shared -> 0
  | Grouped g -> core_id / g

let line_for t ~domain ~vpn =
  let key = (domain lsl 40) lor (vpn / 8) in
  let line = Int_table.find_default t.lines key t.dummy_line in
  if line != t.dummy_line then line
  else begin
    let params = Machine.params t.machine in
    let nsockets =
      max 1 (params.Params.ncores / params.Params.cores_per_socket)
    in
    let label =
      match t.kind with
      | Per_core -> "pt:percore"
      | Shared -> "pt:shared"
      | Grouped _ -> "pt:grouped"
    in
    let line =
      Line.create ~label params (Machine.stats t.machine)
        ~home_socket:(key mod nsockets)
    in
    Int_table.set t.lines key line;
    line
  end

let find t (core : Core.t) ~vpn =
  let domain = domain_of t core.Core.id in
  Line.read core (line_for t ~domain ~vpn);
  let packed = Int_table.find_default t.maps.(domain) vpn (-1) in
  if packed < 0 then None
  else Some { pfn = packed lsr 1; writable = packed land 1 = 1 }

(* Allocation-free variant of [find]: [-1] when absent, else
   [pfn lsl 1 lor writable]. *)
let find_packed t (core : Core.t) ~vpn =
  let domain = domain_of t core.Core.id in
  Line.read core (line_for t ~domain ~vpn);
  Int_table.find_default t.maps.(domain) vpn (-1)

let install t (core : Core.t) ~vpn ~pfn ~writable =
  let domain = domain_of t core.Core.id in
  Line.write core (line_for t ~domain ~vpn);
  Int_table.set t.maps.(domain) vpn
    ((pfn lsl 1) lor if writable then 1 else 0)

let clear_range t ~owner ~lo ~hi =
  let map = t.maps.(domain_of t owner) in
  let removed = ref [] in
  (* Probe per vpn for narrow ranges (the common munmap of a few pages);
     a narrow probe loop beats walking the whole slot array even when the
     table holds fewer entries than the range. *)
  if hi - lo <= 64 || hi - lo < Int_table.length map then
    for vpn = lo to hi - 1 do
      let packed = Int_table.find_default map vpn (-1) in
      if packed >= 0 then begin
        Int_table.remove map vpn;
        removed := (vpn, packed lsr 1) :: !removed
      end
    done
  else begin
    let doomed =
      Int_table.fold
        (fun vpn packed acc ->
          if vpn >= lo && vpn < hi then (vpn, packed lsr 1) :: acc else acc)
        map []
    in
    List.iter (fun (vpn, _) -> Int_table.remove map vpn) doomed;
    removed := doomed
  end;
  List.rev !removed

let entries t =
  Array.fold_left (fun acc map -> acc + Int_table.length map) 0 t.maps

let pt_pages t =
  Array.fold_left
    (fun acc map ->
      let leaves = Int_table.create ~size_hint:64 false in
      Int_table.iter
        (fun vpn _ -> Int_table.set leaves (vpn / Vm_types.ptes_per_page) true)
        map;
      acc + Int_table.length leaves)
    0 t.maps

let bytes t = pt_pages t * Vm_types.page_size

let peek t ~owner ~vpn =
  let packed = Int_table.find_default t.maps.(domain_of t owner) vpn (-1) in
  if packed < 0 then None
  else Some { pfn = packed lsr 1; writable = packed land 1 = 1 }
