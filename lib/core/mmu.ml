open Ccsim

type t = {
  asid : int;  (* tags this address space's TLB events *)
  pt : Page_table.t;
  tlbs : Tlb.t array;
}

let create machine kind =
  let params = Machine.params machine in
  let asid = Obs.fresh_asid () in
  {
    asid;
    pt = Page_table.create machine kind;
    tlbs =
      Array.init (Machine.ncores machine) (fun i ->
          Tlb.create ~obs:(Machine.obs machine) ~core:i ~asid
            ~capacity:params.Params.tlb_entries ());
  }

let asid t = t.asid
let kind t = Page_table.kind t.pt
let page_table t = t.pt

type translation = Hit of int | Miss | Prot_fault of int

let translate t (core : Core.t) ~vpn ~write =
  let stats = core.Core.stats and params = core.Core.params in
  let packed = Tlb.lookup_packed t.tlbs.(core.Core.id) vpn in
  if packed >= 0 then begin
    stats.Stats.tlb_hits <- stats.Stats.tlb_hits + 1;
    Core.tick core params.Params.tlb_hit;
    let pfn = packed lsr 1 in
    if write && packed land 1 = 0 then Prot_fault pfn else Hit pfn
  end
  else begin
    stats.Stats.tlb_misses <- stats.Stats.tlb_misses + 1;
    Core.tick core params.Params.hw_walk_base;
    let packed = Page_table.find_packed t.pt core ~vpn in
    if packed < 0 then Miss
    else begin
      stats.Stats.hw_walks <- stats.Stats.hw_walks + 1;
      let pfn = packed lsr 1 and writable = packed land 1 = 1 in
      Tlb.insert t.tlbs.(core.Core.id) ~vpn ~pfn ~writable;
      if write && not writable then Prot_fault pfn else Hit pfn
    end
  end

let install t (core : Core.t) ~vpn ~pfn ~writable =
  Page_table.install t.pt core ~vpn ~pfn ~writable;
  Tlb.insert t.tlbs.(core.Core.id) ~vpn ~pfn ~writable

let drop_for_core t ~owner ~lo ~hi =
  let removed = Page_table.clear_range t.pt ~owner ~lo ~hi in
  Tlb.invalidate_range t.tlbs.(owner) ~lo ~hi;
  removed

let drop_tlb_range t ~owner ~lo ~hi =
  Tlb.invalidate_range t.tlbs.(owner) ~lo ~hi

let discard_for_core t ~owner =
  ignore (Page_table.clear_range t.pt ~owner ~lo:0 ~hi:max_int);
  Tlb.flush t.tlbs.(owner)

let tlb_mem t ~core ~vpn = Tlb.mem t.tlbs.(core) vpn

let pt_entry t ~core ~vpn = Page_table.peek t.pt ~owner:core ~vpn
