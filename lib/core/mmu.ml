open Ccsim

type t = {
  asid : int;  (* tags this address space's TLB events *)
  pt : Page_table.t;
  tlbs : Tlb.t array;
}

let create machine kind =
  let params = Machine.params machine in
  let asid = Obs.fresh_asid () in
  {
    asid;
    pt = Page_table.create machine kind;
    tlbs =
      Array.init (Machine.ncores machine) (fun i ->
          Tlb.create ~obs:(Machine.obs machine) ~core:i ~asid
            ~capacity:params.Params.tlb_entries ());
  }

let asid t = t.asid
let kind t = Page_table.kind t.pt
let page_table t = t.pt

type translation = Hit of int | Miss | Prot_fault of int

let translate t (core : Core.t) ~vpn ~write =
  let stats = core.Core.stats and params = core.Core.params in
  match Tlb.lookup t.tlbs.(core.Core.id) vpn with
  | Some entry ->
      stats.Stats.tlb_hits <- stats.Stats.tlb_hits + 1;
      Core.tick core params.Params.tlb_hit;
      if write && not entry.Tlb.writable then Prot_fault entry.Tlb.pfn
      else Hit entry.Tlb.pfn
  | None -> (
      stats.Stats.tlb_misses <- stats.Stats.tlb_misses + 1;
      Core.tick core params.Params.hw_walk_base;
      match Page_table.find t.pt core ~vpn with
      | Some pte ->
          stats.Stats.hw_walks <- stats.Stats.hw_walks + 1;
          Tlb.insert t.tlbs.(core.Core.id) ~vpn ~pfn:pte.Page_table.pfn
            ~writable:pte.Page_table.writable;
          if write && not pte.Page_table.writable then
            Prot_fault pte.Page_table.pfn
          else Hit pte.Page_table.pfn
      | None -> Miss)

let install t (core : Core.t) ~vpn ~pfn ~writable =
  Page_table.install t.pt core ~vpn ~pfn ~writable;
  Tlb.insert t.tlbs.(core.Core.id) ~vpn ~pfn ~writable

let drop_for_core t ~owner ~lo ~hi =
  let removed = Page_table.clear_range t.pt ~owner ~lo ~hi in
  Tlb.invalidate_range t.tlbs.(owner) ~lo ~hi;
  removed

let drop_tlb_range t ~owner ~lo ~hi =
  Tlb.invalidate_range t.tlbs.(owner) ~lo ~hi

let discard_for_core t ~owner =
  ignore (Page_table.clear_range t.pt ~owner ~lo:0 ~hi:max_int);
  Tlb.flush t.tlbs.(owner)

let tlb_mem t ~core ~vpn = Tlb.mem t.tlbs.(core) vpn

let pt_entry t ~core ~vpn = Page_table.peek t.pt ~owner:core ~vpn
