(** A page cache for file-backed mappings.

    Maps (file, page) to a physical frame shared by every mapping of that
    file page — across cores and across address spaces — with the frame's
    lifetime tracked by the pluggable reference-counting scheme (each
    cached page holds one base reference; every mapping holds one more).
    This is the workload behind the paper's Figure 8: processes repeatedly
    mapping and unmapping shared library pages drive these counts up and
    down from every core.

    Buckets are individually locked and live on their own cache lines, so
    lookups of different files do not contend. A miss "reads from disk"
    (a fixed latency) into a fresh frame.

    Pages additionally carry a dirty bit for the cache-serving workload's
    writeback accounting: a store through a file mapping marks the page
    ({!Make.set_dirty}); an LRU sweep consults {!Make.dirty} to charge a
    writeback before dropping the page. The bit is bookkeeping only — it
    adds no cost to the fault or eviction paths themselves. *)

module Make (C : Refcnt.Counter_intf.S) : sig
  type t

  val create : Ccsim.Machine.t -> C.t -> t

  val get : t -> Ccsim.Core.t -> file:int -> page:int -> int * C.handle
  (** The frame caching this file page, loading it on a miss. Takes one
      reference for the caller (dropped when the caller unmaps). If the
      page was evicted but mappings kept it alive, the cache re-adopts
      its base reference here. *)

  val evict : t -> Ccsim.Core.t -> file:int -> page:int -> unit
  (** Drop the cache's base reference (memory pressure): the frame is
      freed once the last mapping goes away; a later [get] reloads it.
      Idempotent — evicting an already-evicted (but still mapped)
      page is a no-op. *)

  val set_dirty : t -> Ccsim.Core.t -> file:int -> page:int -> unit
  (** Mark a resident page dirty (a store went through a mapping).
      No-op for non-resident pages. *)

  val clear_dirty : t -> Ccsim.Core.t -> file:int -> page:int -> unit
  (** Writeback done: unmark the page. *)

  val dirty : t -> file:int -> page:int -> bool
  (** Inspection (eviction policy / tests): is the resident page dirty? *)

  val resident : t -> file:int -> page:int -> bool
  (** Inspection (tests): is the page currently cached? *)

  val cached_pages : t -> int
  (** Resident cache entries (for tests). *)

  val dirty_pages : t -> int
  (** Resident entries currently marked dirty. *)
end

val file_content : file:int -> page:int -> int
(** The deterministic content word "on disk" for a file page (what a miss
    loads into the fresh frame). *)
