(** Hardware page tables, in the configurations of section 3.3.

    [Per_core] gives every core its own table: installs and walks touch
    only core-local cache lines, and the kernel learns exactly which cores
    have a translation (every core must software-fault a page before using
    it). [Shared] is the conventional single table: walks by any core read
    shared PTE lines, installs write them (8 PTEs per line — real false
    sharing), and the kernel cannot know which TLBs cached what.
    [Grouped g] shares one table among each group of [g] cores — the
    middle ground the paper suggests ("the kernel could reduce overhead by
    sharing page tables between small groups of cores"): per-group memory
    cost, and shootdowns targeted at group granularity.

    The table maps VPN -> PFN. Accounting (entries, page-table pages) backs
    the section 5.4 memory-overhead experiment. *)

type kind = Per_core | Shared | Grouped of int

type pte = { pfn : int; writable : bool }

type t

val create : Ccsim.Machine.t -> kind -> t
val kind : t -> kind

val find : t -> Ccsim.Core.t -> vpn:int -> pte option
(** Hardware walk by [core] (reads its own table when [Per_core]). *)

val find_packed : t -> Ccsim.Core.t -> vpn:int -> int
(** Allocation-free {!find} for the translation fast path: [-1] when
    absent, otherwise [pfn lsl 1 lor writable]. *)

val install : t -> Ccsim.Core.t -> vpn:int -> pfn:int -> writable:bool -> unit
(** Fill the PTE visible to [core]. *)

val clear_range :
  t -> owner:int -> lo:int -> hi:int -> (int * int) list
(** Remove PTEs for vpns in [lo, hi) from core [owner]'s view ([owner] is
    ignored for [Shared]); returns the removed [(vpn, pfn)] pairs. The
    caller charges the cost (it happens inside shootdown handlers). *)

val entries : t -> int
(** Live PTEs, summed over per-core tables. *)

val pt_pages : t -> int
(** Page-table pages needed to hold the live PTEs (512 entries per page,
    counted per distinct leaf page, summed over per-core tables). *)

val bytes : t -> int
(** [pt_pages t * 4096]. *)

val peek : t -> owner:int -> vpn:int -> pte option
(** Uncharged PTE read of core [owner]'s view (for tests). *)
