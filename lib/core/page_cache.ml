open Ccsim

let file_content ~file ~page = (file * 1_000_003) lxor page

module Make (C : Refcnt.Counter_intf.S) = struct
  type entry = {
    pfn : int;
    handle : C.handle;
    (* Whether the cache currently holds its base reference. Eviction
       drops it; if mappings keep the page alive and a later [get] finds
       the entry still resident, the cache re-adopts it — and a second
       eviction of an already-evicted page must not dec again. *)
    mutable base : bool;
    mutable dirty : bool;
  }

  type bucket = {
    lock : Lock.t;
    entries : (int * int, entry) Hashtbl.t;  (* (file, page) -> entry *)
  }

  type t = {
    machine : Machine.t;
    csub : C.t;
    buckets : bucket array;
    mutable resident : int;
    mutable dirty_count : int;
  }

  let nbuckets = 256

  let create machine csub =
    let core0 = Machine.core machine 0 in
    {
      machine;
      csub;
      buckets =
        Array.init nbuckets (fun _ ->
            {
              lock = Lock.create ~label:"pagecache:lock" core0;
              entries = Hashtbl.create 8;
            });
      resident = 0;
      dirty_count = 0;
    }

  let bucket_of t ~file ~page =
    t.buckets.(((file * 0x9E3779B1) + page) land (nbuckets - 1))

  let get t (core : Core.t) ~file ~page =
    let b = bucket_of t ~file ~page in
    Lock.acquire core b.lock;
    match
      match Hashtbl.find_opt b.entries (file, page) with
      | Some e ->
          if not e.base then begin
            (* A prior eviction dropped the base reference but mappings
               kept the page alive: re-adopt it so the entry's lifetime
               invariant (resident => one base reference) holds again. *)
            C.inc t.csub core e.handle;
            e.base <- true
          end;
          e
      | None ->
          (* Miss: read the page in from backing store. *)
          let pfn = Physmem.alloc (Machine.physmem t.machine) core in
          Core.tick core core.Core.params.Params.disk_read;
          Physmem.set_content (Machine.physmem t.machine) pfn
            (file_content ~file ~page);
          let e =
            {
              pfn;
              base = true;
              dirty = false;
              handle =
                (* The cache's base reference; freeing returns the frame
                   and forgets the entry. *)
                C.make t.csub core ~init:1 ~on_free:(fun c ->
                    (match Hashtbl.find_opt b.entries (file, page) with
                    | Some stale when stale.dirty ->
                        t.dirty_count <- t.dirty_count - 1
                    | _ -> ());
                    Hashtbl.remove b.entries (file, page);
                    t.resident <- t.resident - 1;
                    Physmem.free (Machine.physmem t.machine) c pfn);
            }
          in
          Hashtbl.replace b.entries (file, page) e;
          t.resident <- t.resident + 1;
          e
    with
    | entry ->
        C.inc t.csub core entry.handle;
        Lock.release core b.lock;
        (entry.pfn, entry.handle)
    | exception e ->
        (* Frame exhaustion on a miss: nothing was inserted — release the
           bucket lock and let the fault path surface the failure. *)
        Lock.release core b.lock;
        raise e

  let evict t (core : Core.t) ~file ~page =
    let b = bucket_of t ~file ~page in
    Lock.acquire core b.lock;
    (match Hashtbl.find_opt b.entries (file, page) with
    | Some e when e.base ->
        e.base <- false;
        C.dec t.csub core e.handle
    | _ -> ());
    Lock.release core b.lock

  let set_dirty t (core : Core.t) ~file ~page =
    let b = bucket_of t ~file ~page in
    Lock.acquire core b.lock;
    (match Hashtbl.find_opt b.entries (file, page) with
    | Some e when not e.dirty ->
        e.dirty <- true;
        t.dirty_count <- t.dirty_count + 1
    | _ -> ());
    Lock.release core b.lock

  let clear_dirty t (core : Core.t) ~file ~page =
    let b = bucket_of t ~file ~page in
    Lock.acquire core b.lock;
    (match Hashtbl.find_opt b.entries (file, page) with
    | Some e when e.dirty ->
        e.dirty <- false;
        t.dirty_count <- t.dirty_count - 1
    | _ -> ());
    Lock.release core b.lock

  let dirty t ~file ~page =
    match Hashtbl.find_opt (bucket_of t ~file ~page).entries (file, page) with
    | Some e -> e.dirty
    | None -> false

  let resident t ~file ~page =
    Hashtbl.mem (bucket_of t ~file ~page).entries (file, page)

  let cached_pages t = t.resident
  let dirty_pages t = t.dirty_count
end
