open Ccsim

let file_content ~file ~page = (file * 1_000_003) lxor page

module Make (C : Refcnt.Counter_intf.S) = struct
  type entry = { pfn : int; handle : C.handle }

  type bucket = {
    lock : Lock.t;
    entries : (int * int, entry) Hashtbl.t;  (* (file, page) -> entry *)
  }

  type t = {
    machine : Machine.t;
    csub : C.t;
    buckets : bucket array;
    mutable resident : int;
  }

  let nbuckets = 256

  let create machine csub =
    let core0 = Machine.core machine 0 in
    {
      machine;
      csub;
      buckets =
        Array.init nbuckets (fun _ ->
            {
              lock = Lock.create ~label:"pagecache:lock" core0;
              entries = Hashtbl.create 8;
            });
      resident = 0;
    }

  let bucket_of t ~file ~page =
    t.buckets.(((file * 0x9E3779B1) + page) land (nbuckets - 1))

  let get t (core : Core.t) ~file ~page =
    let b = bucket_of t ~file ~page in
    Lock.acquire core b.lock;
    match
      match Hashtbl.find_opt b.entries (file, page) with
      | Some e -> e
      | None ->
          (* Miss: read the page in from backing store. *)
          let pfn = Physmem.alloc (Machine.physmem t.machine) core in
          Core.tick core core.Core.params.Params.disk_read;
          Physmem.set_content (Machine.physmem t.machine) pfn
            (file_content ~file ~page);
          let e =
            {
              pfn;
              handle =
                (* The cache's base reference; freeing returns the frame
                   and forgets the entry. *)
                C.make t.csub core ~init:1 ~on_free:(fun c ->
                    Hashtbl.remove b.entries (file, page);
                    t.resident <- t.resident - 1;
                    Physmem.free (Machine.physmem t.machine) c pfn);
            }
          in
          Hashtbl.replace b.entries (file, page) e;
          t.resident <- t.resident + 1;
          e
    with
    | entry ->
        C.inc t.csub core entry.handle;
        Lock.release core b.lock;
        (entry.pfn, entry.handle)
    | exception e ->
        (* Frame exhaustion on a miss: nothing was inserted — release the
           bucket lock and let the fault path surface the failure. *)
        Lock.release core b.lock;
        raise e

  let evict t (core : Core.t) ~file ~page =
    let b = bucket_of t ~file ~page in
    Lock.acquire core b.lock;
    (match Hashtbl.find_opt b.entries (file, page) with
    | Some e -> C.dec t.csub core e.handle
    | None -> ());
    Lock.release core b.lock

  let cached_pages t = t.resident
end
