open Ccsim

type obj = {
  oid : int;  (* process-global identity, for the event stream *)
  seq : int;  (* per-instance creation index, for delta-cache hashing *)
  label : string;
  refcnt : int Cell.t;  (* the global count, on its own line *)
  lock : Lock.t;
  mutable dirty : bool;  (* global count left zero during this epoch? *)
  mutable on_review : bool;
  mutable freed : bool;
  free : Core.t -> unit;
  mutable weak : weakref option;
}

and weakref = {
  mutable target : obj option;
  mutable dying : bool;
  wline : Line.t;
}

type slot = {
  mutable sobj : obj option;
  mutable delta : int;
  mutable queued : bool;  (* on this core's dirty list *)
}

(* [dirty] lists the slots touched since the last flush (every slot with a
   nonzero delta is on it — flush zeroes all deltas, so a nonzero delta
   implies a touch since). Flush walks it instead of all [cache_slots]
   slots, which turns the per-epoch maintenance cost from O(cache size)
   into O(slots actually used this epoch). *)
type percore = {
  slots : slot array;
  mutable dirty_slots : int list;
  review : (obj * int) Queue.t;
}

type t = {
  mask : int;
  percore : percore array;
  mutable global_epoch : int;
  flushed : bool array;
  mutable nflushed : int;
  mutable next_seq : int;  (* per-instance; deterministic for a given run *)
}

let is_power_of_two n = n > 0 && n land (n - 1) = 0

(* Object ids are process-global (like line and lock ids), not
   per-instance: a machine can host several Refcache instances (the radix
   tree's node counts and the VM's frame counts, say) whose [Rc_*] events
   share one stream, so ids from different instances must never collide.
   Atomic, because the benchmark harness runs independent simulations on
   concurrent domains and colliding oids would silently corrupt the
   checkers' ledgers. *)
let next_oid = Atomic.make 0
let fresh_oid () = Atomic.fetch_and_add next_oid 1

(* Hash the per-instance sequence number, NOT the process-global oid:
   oids interleave arbitrarily when the benchmark pool runs simulations on
   concurrent domains, and hashing them would let one job's allocations
   perturb another job's delta-cache conflict pattern (and therefore its
   measured timings). The seq space restarts per instance, so every
   simulation is a pure function of its own configuration. *)
let hash_obj t obj = obj.seq * 0x9E3779B1 land t.mask

let emit (core : Core.t) ev =
  let obs = core.Core.obs in
  if Obs.active obs then Obs.emit obs ev

let queue_for_review t (core : Core.t) obj =
  obj.dirty <- false;
  (match obj.weak with
  | Some w ->
      (* Setting the dying bit is part of the weakref cmpxchg protocol. *)
      Line.write_atomic core w.wline;
      w.dying <- true
  | None -> ());
  obj.on_review <- true;
  Queue.push (obj, t.global_epoch) t.percore.(core.Core.id).review

(* Apply a cached delta to the object's global count (Figure 2, evict). *)
let evict t (core : Core.t) obj delta =
  Lock.acquire core obj.lock;
  let old = Cell.fetch_add core obj.refcnt delta in
  if old + delta = 0 then
    if not obj.on_review then queue_for_review t core obj
    else obj.dirty <- true;
  Lock.release core obj.lock

(* The delta cache is two-way set-associative: an object hashes to a set
   of two slots and evicts the other way's entry only when both miss.
   This keeps the conflict rate low even when a few extremely hot objects
   (pinned interior radix nodes) coexist with a stream of cold ones
   (per-page frame counts) — the space/scalability trade-off the paper
   says the conflict rate controls. *)
let cached_delta t (core : Core.t) obj d =
  assert (not obj.freed);
  (* The delta cache is core-private: constant local cost, no line traffic. *)
  Core.tick core (2 * core.Core.params.Params.l1_hit);
  let pc = t.percore.(core.Core.id) in
  let slots = pc.slots in
  let way0 = hash_obj t obj land lnot 1 in
  let s0 = slots.(way0) and s1 = slots.(way0 lor 1) in
  let s =
    match (s0.sobj, s1.sobj) with
    | Some o, _ when o == obj -> s0
    | _, Some o when o == obj -> s1
    | None, _ -> s0
    | _, None -> s1
    | Some _, Some _ ->
        (* Both ways busy: evict the smaller-delta way (hot pinned objects
           carry transient non-zero deltas mid-operation; evicting them
           would write their shared global count). *)
        let victim = if abs s0.delta <= abs s1.delta then s0 else s1 in
        (match victim.sobj with
        | Some o when victim.delta <> 0 -> evict t core o victim.delta
        | _ -> ());
        victim.sobj <- None;
        victim.delta <- 0;
        victim
  in
  if
    match s.sobj with
    | Some o -> not (o == obj)
    | None -> true
  then begin
    s.sobj <- Some obj;
    s.delta <- 0
  end;
  s.delta <- s.delta + d;
  if not s.queued then begin
    s.queued <- true;
    pc.dirty_slots <- (if s == s1 then way0 lor 1 else way0) :: pc.dirty_slots
  end

let inc t (core : Core.t) obj =
  emit core (Obs.Rc_inc { core = core.Core.id; oid = obj.oid; label = obj.label });
  cached_delta t core obj 1

let dec t (core : Core.t) obj =
  emit core (Obs.Rc_dec { core = core.Core.id; oid = obj.oid; label = obj.label });
  cached_delta t core obj (-1)

(* Process this core's review queue (Figure 2, review). *)
let review t (core : Core.t) =
  let q = t.percore.(core.Core.id).review in
  let n = Queue.length q in
  for _ = 1 to n do
    let ((obj, objepoch) as entry) = Queue.pop q in
    if t.global_epoch < objepoch + 2 then Queue.push entry q
    else begin
      Lock.acquire core obj.lock;
      obj.on_review <- false;
      let count = Cell.read core obj.refcnt in
      if count <> 0 then begin
        (match obj.weak with
        | Some w ->
            Line.write_atomic core w.wline;
            w.dying <- false
        | None -> ());
        Lock.release core obj.lock
      end
      else begin
        (* Zero at review time. Free only if it was zero all epoch (not
           dirty) and we win the race with tryget on the weak ref. *)
        let weak_cleared =
          if obj.dirty then false
          else
            match obj.weak with
            | None -> true
            | Some w ->
                Line.write_atomic core w.wline;
                if w.dying then begin
                  w.target <- None;
                  w.dying <- false;
                  true
                end
                else false
        in
        if weak_cleared then begin
          obj.freed <- true;
          Lock.release core obj.lock;
          emit core
            (Obs.Rc_free
               { core = core.Core.id; oid = obj.oid; label = obj.label });
          obj.free core
        end
        else begin
          queue_for_review t core obj;
          Lock.release core obj.lock
        end
      end
    end
  done

let flush t (core : Core.t) =
  let id = core.Core.id in
  Core.tick core core.Core.params.Params.op_cost;
  let pc = t.percore.(id) in
  (* Ascending slot order, exactly the full-array walk's eviction order —
     eviction order is observable (line-stall timing, lock events). *)
  let dirty = List.sort compare pc.dirty_slots in
  pc.dirty_slots <- [];
  List.iter
    (fun i ->
      let s = pc.slots.(i) in
      s.queued <- false;
      match s.sobj with
      | Some o when s.delta <> 0 ->
          evict t core o s.delta;
          s.delta <- 0
      | _ -> ())
    dirty;
  if not t.flushed.(id) then begin
    t.flushed.(id) <- true;
    t.nflushed <- t.nflushed + 1;
    if t.nflushed = Array.length t.flushed then begin
      t.global_epoch <- t.global_epoch + 1;
      Array.fill t.flushed 0 (Array.length t.flushed) false;
      t.nflushed <- 0
    end
  end;
  review t core

let create ?(cache_slots = 4096) machine =
  if not (is_power_of_two cache_slots) then
    invalid_arg "Refcache.create: cache_slots must be a power of two";
  let n = Machine.ncores machine in
  let t =
    {
      mask = cache_slots - 1;
      percore =
        Array.init n (fun _ ->
            {
              slots =
                Array.init cache_slots (fun _ ->
                    { sobj = None; delta = 0; queued = false });
              dirty_slots = [];
              review = Queue.create ();
            });
      global_epoch = 0;
      flushed = Array.make n false;
      nflushed = 0;
      next_seq = 0;
    }
  in
  Machine.add_maintenance machine
    ~period:(Machine.params machine).Params.epoch_cycles (fun core ->
      flush t core);
  t

let make_obj ?(label = "refcache:obj") t (core : Core.t) ~init ~free =
  if init < 0 then invalid_arg "Refcache.make_obj: negative count";
  let oid = fresh_oid () in
  let seq = t.next_seq in
  t.next_seq <- t.next_seq + 1;
  let obj =
    {
      oid;
      seq;
      label;
      refcnt = Cell.make ~label core init;
      lock = Lock.create ~label core;
      dirty = false;
      on_review = false;
      freed = false;
      free;
      weak = None;
    }
  in
  emit core
    (Obs.Rc_make { core = core.Core.id; oid; init; label });
  if init = 0 then begin
    Lock.acquire core obj.lock;
    queue_for_review t core obj;
    Lock.release core obj.lock
  end;
  obj

let make_weak_obj ?label t core ~init ~free =
  let obj = make_obj ?label t core ~init ~free in
  let w = { target = Some obj; dying = false; wline = Cell.line obj.refcnt } in
  obj.weak <- Some w;
  (obj, w)

let tryget t (core : Core.t) w =
  (* The cmpxchg of Figure 2, with the standard fast path: read the weak
     reference and only perform the (line-invalidating) atomic write when
     the dying bit is actually set. Without this, every radix-tree
     traversal would write a shared line per level and lookups could not
     scale. *)
  Line.read_atomic core w.wline;
  match w.target with
  | None -> None
  | Some obj ->
      if w.dying then begin
        Line.write_atomic core w.wline;
        w.dying <- false
      end;
      inc t core obj;
      Some obj

let is_freed obj = obj.freed
let oid obj = obj.oid

let true_count t obj =
  let total = ref (Cell.peek obj.refcnt) in
  Array.iter
    (fun pc ->
      Array.iter
        (fun s ->
          match s.sobj with
          | Some o when o == obj -> total := !total + s.delta
          | _ -> ())
        pc.slots)
    t.percore;
  !total

let epoch t = t.global_epoch

let pending_review t =
  Array.fold_left (fun acc pc -> acc + Queue.length pc.review) 0 t.percore

let approx_bytes t ~live_objects =
  let slot_bytes = 16 and obj_bytes = 56 in
  (Array.length t.percore * (t.mask + 1) * slot_bytes)
  + (live_objects * obj_bytes)
