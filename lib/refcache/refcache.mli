(** Refcache: space-efficient, lazy, scalable reference counting
    (section 3.1 and Figure 2 of the paper).

    Each object has a global reference count; each core has a fixed-size
    cache of per-object count deltas. [inc]/[dec] touch only the local
    cache. Every epoch (driven by the machine's maintenance hooks) each
    core flushes its deltas into the global counts; the last core to flush
    ends the epoch. When a flush drops an object's global count to zero,
    the flushing core queues the object for review two epochs later — by
    which time every core has flushed at least once — and frees it only if
    the count is still zero and was never disturbed in between (no "dirty
    zero").

    Weak references support the radix tree's revival of empty nodes: a weak
    reference carries a dying bit; [tryget] either revives the object
    (clearing the bit and incrementing its count) or reports that it has
    been freed. A race between [tryget] and deletion is settled by which
    side clears the dying bit first.

    Space is O(objects + cores): the per-core cache size is fixed and
    collisions simply evict the previous delta early. *)

type t
type obj
type weakref

val create : ?cache_slots:int -> Ccsim.Machine.t -> t
(** [create machine] registers a flush+review maintenance hook on every
    core with period [machine.params.epoch_cycles]. [cache_slots] is the
    per-core delta-cache size (default 4096; must be a power of two). *)

val make_obj :
  ?label:string ->
  t -> Ccsim.Core.t -> init:int -> free:(Ccsim.Core.t -> unit) -> obj
(** A counted object with initial count [init] (>= 0; an object created at
    0 is immediately eligible for review) whose [free] runs when Refcache
    decides the true count is zero. [label] (default ["refcache:obj"])
    names the object's lines and count events in checker reports. *)

val make_weak_obj :
  ?label:string ->
  t -> Ccsim.Core.t -> init:int -> free:(Ccsim.Core.t -> unit) ->
  obj * weakref
(** As {!make_obj}, with an attached weak reference. *)

val inc : t -> Ccsim.Core.t -> obj -> unit
val dec : t -> Ccsim.Core.t -> obj -> unit

val tryget : t -> Ccsim.Core.t -> weakref -> obj option
(** Revive through a weak reference: increments and returns the object, or
    [None] if it has been freed (or is being freed). *)

val is_freed : obj -> bool

val oid : obj -> int
(** The object id carried by this object's [Rc_*] instrumentation events. *)

val true_count : t -> obj -> int
(** Global count plus all cached deltas — the count's true value. O(cores);
    for tests and assertions only (charges nothing). *)

val epoch : t -> int
(** Current global epoch. *)

val flush : t -> Ccsim.Core.t -> unit
(** Flush one core's delta cache and run its review queue. Normally driven
    by machine maintenance; exposed for tests. *)

val pending_review : t -> int
(** Objects sitting on review queues (for tests). *)

val approx_bytes : t -> live_objects:int -> int
(** Modeled memory footprint: per-core caches plus per-object headers —
    O(objects + cores), the space claim of section 3.1. *)
