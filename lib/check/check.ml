open Ccsim
module IS = Set.Make (Int)

(* ------------------------------------------------------------------ *)
(* Findings                                                            *)

type race = {
  race_line : int;
  race_label : string;
  race_core : int;  (* the core whose access emptied the lockset *)
  race_write : bool;
  race_cores : int list;  (* every core that touched the line *)
}

type held_lock = { hl_lock : int; hl_label : string; hl_rd : bool }

type lock_edge = {
  e_from : int;
  e_from_label : string;
  e_to : int;
  e_to_label : string;
  e_core : int;  (* core that acquired [e_to] while holding [e_from] *)
  e_held : held_lock list;  (* full held stack at that acquisition *)
}

type cycle = lock_edge list
(* A closed path in the lock-order graph: each edge's [e_to] is the next
   edge's [e_from], and the last edge points back at the first. *)

type line_info = {
  li_line : int;
  li_label : string;
  li_readers : int list;
  li_writers : int list;
  li_reads : int;
  li_writes : int;
}

type tlb_violation = {
  tv_unmap_core : int;
  tv_asid : int;
  tv_stale_core : int;
  tv_vpn : int;
  tv_lo : int;
  tv_hi : int;
}

type rc_fault =
  | Inc_after_free
  | Dec_after_free
  | Double_free
  | Negative_count
  | Freed_referenced of int  (* the nonzero count at free time *)

type rc_violation = { rv_oid : int; rv_label : string; rv_core : int; rv_fault : rc_fault }

(* ------------------------------------------------------------------ *)
(* Internal state                                                      *)

(* Eraser's per-line state machine: a line is born Virgin, owned by its
   first core (Exclusive), and only once a second core touches it does the
   candidate lockset start refining. Races are reported when a line that is
   written by several cores ends up with an empty candidate set. *)
type lstate = Virgin | Exclusive of int | Shared | Shared_mod

type line_rec = {
  lr_label : string;
  mutable lr_state : lstate;
  mutable lr_cand : int array;
      (* candidate lockset: sorted ascending, first [lr_cand_len] entries
         valid. A plain array filtered in place: wide operations seed
         thousands of candidates per line, and a persistent set paid a
         tree rebuild on every refinement. *)
  mutable lr_cand_len : int;
  mutable lr_readers : IS.t;
  mutable lr_writers : IS.t;
  mutable lr_reads : int;
  mutable lr_writes : int;
  mutable lr_raced : bool;  (* one report per line *)
  (* Per-mode memo of the last candidate refinement: the core and that
     core's release counter at the time. Refinement can only shrink the
     candidate set when a candidate is released, so while the memo'd core
     releases nothing the refinement is a no-op and is skipped. A wide
     operation (a destroy locks the whole space) performs thousands of
     line accesses per lock event; without the memo each one re-filters a
     candidate set the size of the held stack. Write-mode refinement
     filters against the stricter write-mode table, so it revalidates the
     read memo as well, but not vice versa. *)
  mutable lr_rd_core : int;
  mutable lr_rd_ver : int;
  mutable lr_wr_core : int;
  mutable lr_wr_ver : int;
}

type rc_rec = {
  rr_label : string;
  mutable rr_count : int;
  mutable rr_made : bool;  (* saw Rc_make, so rr_count is absolute *)
  mutable rr_freed : bool;
}

(* A core's held locks in one mode: a multiset (count per id) plus a
   sorted array of the distinct ids, maintained incrementally on 0 -> 1
   and 1 -> 0 count transitions. The counts answer the per-candidate
   membership probe of [full_filter] in O(1); the sorted array seeds a
   line's candidate set with a single [Array.sub] — the former
   sort-on-demand rebuilt and re-sorted the whole set once per lock
   event, O(held log held) each time under a wide [Radix.lock_range]. *)
type lockset = {
  counts : int Int_table.t;
  mutable sorted : int array;
  mutable sorted_len : int;
}

type t = {
  machine : Machine.t;
  lines : line_rec Int_table.t;
  dummy_line_rec : line_rec;
  held : held_lock list array;  (* per core, most recent acquisition first *)
  held_all : lockset array;
      (* per core: every mode. Incremental mirror of [held] so lockset
         queries cost O(1) per lock instead of rebuilding a set from the
         whole held list on every shared access — a full-address-space
         operation holds thousands of slot locks, and the rebuild made
         every access under it O(held). *)
  held_wr : lockset array;
      (* per core: write-mode holds only *)
  seen_locks : int Int_table.t;
      (* locks that have completed a first acquisition; see note_acquire *)
  rel_ver : int array;  (* per core: total releases; versions the memos *)
  rel_ring : int array array;
      (* per core: the last [ring_size] released lock ids, indexed by
         release number mod [ring_size]. Lets a refinement prove "no
         candidate was released since the memo" with a few binary searches
         instead of a full filter. *)
  edges : lock_edge Int_table.t;
      (* keyed [from lsl 31 lor to]: lock ids are line ids, far below
         2^31 in any feasible run, so the packing is injective *)
  tlb : int Int_table.t array;
      (* per core: [asid lsl 44 lor vpn] keys it may cache (vpns fit 44
         bits — the simulated address space tops out well below that) *)
  rc : rc_rec Int_table.t;
  dummy_rc : rc_rec;
  mutable races : race list;
  mutable tlb_violations : tlb_violation list;
  mutable rc_violations : rc_violation list;
  mutable accesses : int;  (* every line access seen (incl. lock traffic) *)
  mutable wd_horizon : int option;  (* armed livelock watchdog, in cycles *)
  mutable wd_mark : int;  (* simulated time at the last progress feed *)
}

exception
  Livelock of { elapsed : int; horizon : int; dump : string }

let line_rec t line label =
  let r = Int_table.find_default t.lines line t.dummy_line_rec in
  if r != t.dummy_line_rec then r
  else begin
    let r =
      {
        lr_label = label;
        lr_state = Virgin;
        lr_cand = [||];
        lr_cand_len = 0;
        lr_readers = IS.empty;
        lr_writers = IS.empty;
        lr_reads = 0;
        lr_writes = 0;
        lr_raced = false;
        lr_rd_core = -1;
        lr_rd_ver = -1;
        lr_wr_core = -1;
        lr_wr_ver = -1;
      }
    in
    Int_table.set t.lines line r;
    r
  end

(* The lockset protecting an access: read-mode rwlock acquisitions protect
   only reads (two readers cannot conflict, but a reader does not exclude a
   writer). The count tables mirror [held] incrementally; a line pays for a
   full lockset materialisation once, at its Exclusive -> Shared
   transition, and afterwards only filters its own candidate set — and the
   per-mode memos skip even that while the owning core releases nothing. *)
let held_ls t ~core ~write = if write then t.held_wr.(core) else t.held_all.(core)

let ring_size = 64

(* Blit between [int array]s by plain stores: the type is statically
   immediate, so each store compiles barrier-free, where [Array.blit] on
   a major-heap destination pays the generic write barrier per element.
   Handles overlap within one array for shifts in either direction. *)
let int_blit (src : int array) spos (dst : int array) dpos len =
  if dpos <= spos then
    for k = 0 to len - 1 do
      Array.unsafe_set dst (dpos + k) (Array.unsafe_get src (spos + k))
    done
  else
    for k = len - 1 downto 0 do
      Array.unsafe_set dst (dpos + k) (Array.unsafe_get src (spos + k))
    done

let int_sub src len =
  let dst = Array.make len 0 in
  int_blit src 0 dst 0 len;
  dst

(* Position of [id] (or its insertion point) in [ls.sorted]. *)
let ls_pos ls id =
  let lo = ref 0 and hi = ref ls.sorted_len in
  while !hi > !lo do
    let mid = (!lo + !hi) / 2 in
    if Array.unsafe_get ls.sorted mid < id then lo := mid + 1 else hi := mid
  done;
  !lo

let ls_incr ls id =
  let c = Int_table.find_default ls.counts id 0 in
  Int_table.set ls.counts id (c + 1);
  if c = 0 then begin
    let pos = ls_pos ls id in
    let len = ls.sorted_len in
    if len = Array.length ls.sorted then begin
      let bigger = Array.make (max 16 (2 * len)) 0 in
      int_blit ls.sorted 0 bigger 0 len;
      ls.sorted <- bigger
    end;
    int_blit ls.sorted pos ls.sorted (pos + 1) (len - pos);
    ls.sorted.(pos) <- id;
    ls.sorted_len <- len + 1
  end

let ls_decr ls id =
  match Int_table.find_default ls.counts id 0 with
  | 0 -> ()  (* release without acquire: tolerated (attached mid-run) *)
  | 1 ->
      Int_table.remove ls.counts id;
      let pos = ls_pos ls id in
      int_blit ls.sorted (pos + 1) ls.sorted pos (ls.sorted_len - pos - 1);
      ls.sorted_len <- ls.sorted_len - 1
  | n -> Int_table.set ls.counts id (n - 1)

let cand_mem r id =
  let lo = ref 0 and hi = ref r.lr_cand_len in
  while !hi > !lo do
    let mid = (!lo + !hi) / 2 in
    if r.lr_cand.(mid) < id then lo := mid + 1 else hi := mid
  done;
  !lo < r.lr_cand_len && r.lr_cand.(!lo) = id

let full_filter t r ~core ~write =
  let tbl = (held_ls t ~core ~write).counts in
  let j = ref 0 in
  for i = 0 to r.lr_cand_len - 1 do
    let id = r.lr_cand.(i) in
    if Int_table.mem tbl id then begin
      r.lr_cand.(!j) <- id;
      incr j
    end
  done;
  r.lr_cand_len <- !j

let mark_refined t r ~core ~write =
  let ver = t.rel_ver.(core) in
  (* A write-mode bound also bounds reads: write-mode holds are a subset
     of all holds. The converse does not hold, so a read refinement leaves
     the write memo alone. *)
  if write then begin
    r.lr_wr_core <- core;
    r.lr_wr_ver <- ver
  end;
  r.lr_rd_core <- core;
  r.lr_rd_ver <- ver

(* Intersect the candidate set with the current lockset. Skipped entirely
   when the memo proves the result unchanged: same core, and either no
   release since, or none of the (few, ring-buffered) releases since was a
   candidate. Releases are the only events that can shrink the set —
   acquires only grow the held tables. *)
let refine_cand t r ~core ~write =
  let seen_core, seen_ver =
    if write then (r.lr_wr_core, r.lr_wr_ver)
    else (r.lr_rd_core, r.lr_rd_ver)
  in
  let ver = t.rel_ver.(core) in
  let unchanged =
    seen_core = core && seen_ver >= 0
    && (ver = seen_ver
       || ver - seen_ver <= ring_size
          &&
          let ring = t.rel_ring.(core) in
          let clean = ref true in
          for v = seen_ver to ver - 1 do
            if cand_mem r ring.(v mod ring_size) then clean := false
          done;
          !clean)
  in
  if not unchanged then full_filter t r ~core ~write;
  mark_refined t r ~core ~write

let note_census r ~core ~write =
  if write then begin
    r.lr_writers <- IS.add core r.lr_writers;
    r.lr_writes <- r.lr_writes + 1
  end
  else begin
    r.lr_readers <- IS.add core r.lr_readers;
    r.lr_reads <- r.lr_reads + 1
  end

let note_plain t r ~line ~core ~write =
  let update_cand () = refine_cand t r ~core ~write in
  let report () =
    if (not r.lr_raced) && r.lr_cand_len = 0 then begin
      r.lr_raced <- true;
      t.races <-
        {
          race_line = line;
          race_label = r.lr_label;
          race_core = core;
          race_write = write;
          race_cores = IS.elements (IS.union r.lr_readers r.lr_writers);
        }
        :: t.races
    end
  in
  match r.lr_state with
  | Virgin -> r.lr_state <- Exclusive core
  | Exclusive c when c = core -> ()
  | Exclusive _ ->
      (* Second core: the candidate set starts as this access's lockset. *)
      let ls = held_ls t ~core ~write in
      r.lr_cand <- int_sub ls.sorted ls.sorted_len;
      r.lr_cand_len <- ls.sorted_len;
      mark_refined t r ~core ~write;
      if write then begin
        r.lr_state <- Shared_mod;
        report ()
      end
      else r.lr_state <- Shared
  | Shared ->
      update_cand ();
      if write then begin
        r.lr_state <- Shared_mod;
        report ()
      end
  | Shared_mod ->
      update_cand ();
      report ()

let note_access t ~line ~label ~core ~write kind =
  t.accesses <- t.accesses + 1;
  let r = line_rec t line label in
  note_census r ~core ~write;
  match kind with
  | Obs.Plain -> note_plain t r ~line ~core ~write
  | Obs.Atomic | Obs.Sync -> ()

let note_acquire t ~core ~lock ~line ~label ~rd =
  t.accesses <- t.accesses + 1;
  let r = line_rec t line label in
  note_census r ~core ~write:true;
  let held = t.held.(core) in
  (* One edge from the most recently acquired lock still held suffices:
     a lock below the top of the held list was held when everything above
     it was acquired, so the cumulative graph always contains a path from
     every held lock to the top, and the edge to the new lock extends it —
     reachability, and therefore cycle detection, matches recording an
     edge from every held lock. That full scheme is quadratic in range
     width under [Radix.lock_range] (one slot lock per page) and melts
     down on wide ranges.

     A lock's very first acquisition orders against nothing: nascent
     objects are born locked before they are published ([Radix.expand]
     propagates the range's lock bits into the fresh child's slots while
     the parent slot is still held), so no other core can be waiting on
     such a lock and no deadlock can involve that acquisition. Recording
     it would thread held-stack -> newborn edges through the graph and
     report the birth pattern as a cycle. *)
  let virgin = not (Int_table.mem t.seen_locks lock) in
  if virgin then Int_table.set t.seen_locks lock 1;
  (match held with
  | h :: _ when (not virgin) && h.hl_lock <> lock ->
      let key = (h.hl_lock lsl 31) lor lock in
      if not (Int_table.mem t.edges key) then
        Int_table.set t.edges key
          {
            e_from = h.hl_lock;
            e_from_label = h.hl_label;
            e_to = lock;
            e_to_label = label;
            e_core = core;
            e_held = held;
          }
  | _ -> ());
  ls_incr t.held_all.(core) lock;
  if not rd then ls_incr t.held_wr.(core) lock;
  t.held.(core) <-
    { hl_lock = lock; hl_label = label; hl_rd = rd } :: held

let note_release t ~core ~lock ~line ~label =
  t.accesses <- t.accesses + 1;
  let r = line_rec t line label in
  note_census r ~core ~write:true;
  let dropped = ref None in
  let rec drop = function
    | [] -> []  (* release without acquire: tolerated (attached mid-run) *)
    | h :: rest when h.hl_lock = lock && Option.is_none !dropped ->
        dropped := Some h;
        rest
    | h :: rest -> h :: drop rest
  in
  t.held.(core) <- drop t.held.(core);
  (* Keep the count tables in step with the entry actually removed. *)
  match !dropped with
  | Some h ->
      ls_decr t.held_all.(core) lock;
      if not h.hl_rd then ls_decr t.held_wr.(core) lock;
      let ver = t.rel_ver.(core) in
      t.rel_ring.(core).(ver mod ring_size) <- lock;
      t.rel_ver.(core) <- ver + 1
  | None -> ()

let note_rc t ~core ~oid ~label f =
  let r =
    let r = Int_table.find_default t.rc oid t.dummy_rc in
    if r != t.dummy_rc then r
    else begin
      let r =
        { rr_label = label; rr_count = 0; rr_made = false; rr_freed = false }
      in
      Int_table.set t.rc oid r;
      r
    end
  in
  match f r with
  | None -> ()
  | Some fault ->
      t.rc_violations <-
        { rv_oid = oid; rv_label = r.rr_label; rv_core = core; rv_fault = fault }
        :: t.rc_violations

(* ------------------------------------------------------------------ *)
(* Livelock watchdog. Locks here are time-based, so the host process can
   never deadlock — a wedged simulation shows up as simulated time racing
   ahead with no operation retiring. The driver feeds the watchdog once
   per retired operation; every observed event then checks how far the
   simulated clock has run since the last feed, and past the horizon the
   watchdog trips mid-operation with a dump of every core's held locks
   (the usual prime suspects). *)

let held_dump t =
  let b = Buffer.create 256 in
  Array.iteri
    (fun core held ->
      match held with
      | [] -> ()
      | _ ->
          Buffer.add_string b
            (Printf.sprintf "  core %d holds (innermost first):\n" core);
          List.iter
            (fun h ->
              Buffer.add_string b
                (Printf.sprintf "    lock %d (%s)%s\n" h.hl_lock h.hl_label
                   (if h.hl_rd then " [read]" else "")))
            held)
    t.held;
  if Buffer.length b = 0 then "  (no locks held)\n" else Buffer.contents b

let arm_watchdog t ~horizon =
  if horizon <= 0 then invalid_arg "Check.arm_watchdog";
  t.wd_horizon <- Some horizon;
  t.wd_mark <- Machine.elapsed t.machine

let feed_watchdog t =
  if Option.is_some t.wd_horizon then t.wd_mark <- Machine.elapsed t.machine

let disarm_watchdog t = t.wd_horizon <- None

let wd_check t =
  match t.wd_horizon with
  | None -> ()
  | Some horizon ->
      let elapsed = Machine.elapsed t.machine in
      if elapsed - t.wd_mark > horizon then begin
        (* One-shot: disarm before raising so the unwind (and whatever
           teardown follows) cannot trip it again. *)
        t.wd_horizon <- None;
        raise (Livelock { elapsed; horizon; dump = held_dump t })
      end

let handle t ev =
  wd_check t;
  match ev with
  | Obs.Read { core; line; label; kind } ->
      note_access t ~line ~label ~core ~write:false kind
  | Obs.Write { core; line; label; kind } ->
      note_access t ~line ~label ~core ~write:true kind
  | Obs.Acquire { core; lock; line; label; rd } ->
      note_acquire t ~core ~lock ~line ~label ~rd
  | Obs.Release { core; lock; line; label; rd = _ } ->
      note_release t ~core ~lock ~line ~label
  | Obs.Tlb_fill { core; asid; vpn } ->
      Int_table.set t.tlb.(core) ((asid lsl 44) lor vpn) 1
  | Obs.Tlb_drop { core; asid; vpn } ->
      Int_table.remove t.tlb.(core) ((asid lsl 44) lor vpn)
  | Obs.Unmap_done { core; asid; lo; hi } ->
      (* Staleness is scoped to one address space: another MMU's
         translation for the same vpn on the same core is unrelated. *)
      Array.iteri
        (fun c tbl ->
          Int_table.iter
            (fun key _ ->
              let a = key lsr 44 and vpn = key land ((1 lsl 44) - 1) in
              if a = asid && vpn >= lo && vpn < hi then
                t.tlb_violations <-
                  {
                    tv_unmap_core = core;
                    tv_asid = asid;
                    tv_stale_core = c;
                    tv_vpn = vpn;
                    tv_lo = lo;
                    tv_hi = hi;
                  }
                  :: t.tlb_violations)
            tbl)
        t.tlb
  | Obs.Rc_make { core; oid; init; label } ->
      note_rc t ~core ~oid ~label (fun r ->
          r.rr_count <- init;
          r.rr_made <- true;
          r.rr_freed <- false;
          None)
  | Obs.Rc_inc { core; oid; label } ->
      note_rc t ~core ~oid ~label (fun r ->
          r.rr_count <- r.rr_count + 1;
          if r.rr_freed then Some Inc_after_free else None)
  | Obs.Rc_dec { core; oid; label } ->
      note_rc t ~core ~oid ~label (fun r ->
          r.rr_count <- r.rr_count - 1;
          if r.rr_freed then Some Dec_after_free
          else if r.rr_made && r.rr_count < 0 then Some Negative_count
          else None)
  | Obs.Rc_free { core; oid; label } ->
      note_rc t ~core ~oid ~label (fun r ->
          if r.rr_freed then Some Double_free
          else begin
            r.rr_freed <- true;
            if r.rr_made && r.rr_count <> 0 then
              Some (Freed_referenced r.rr_count)
            else None
          end)

let attach machine =
  let ncores = Machine.ncores machine in
  let dummy_line_rec =
    {
      lr_label = "";
      lr_state = Virgin;
      lr_cand = [||];
      lr_cand_len = 0;
      lr_readers = IS.empty;
      lr_writers = IS.empty;
      lr_reads = 0;
      lr_writes = 0;
      lr_raced = false;
      lr_rd_core = -1;
      lr_rd_ver = -1;
      lr_wr_core = -1;
      lr_wr_ver = -1;
    }
  in
  let dummy_edge =
    { e_from = -1; e_from_label = ""; e_to = -1; e_to_label = ""; e_core = -1; e_held = [] }
  in
  let dummy_rc =
    { rr_label = ""; rr_count = 0; rr_made = false; rr_freed = false }
  in
  let fresh_ls () =
    {
      counts = Int_table.create ~size_hint:64 0;
      sorted = Array.make 64 0;
      sorted_len = 0;
    }
  in
  let t =
    {
      machine;
      lines = Int_table.create ~size_hint:4096 dummy_line_rec;
      dummy_line_rec;
      held = Array.make ncores [];
      held_all = Array.init ncores (fun _ -> fresh_ls ());
      held_wr = Array.init ncores (fun _ -> fresh_ls ());
      seen_locks = Int_table.create ~size_hint:1024 0;
      rel_ver = Array.make ncores 0;
      rel_ring = Array.init ncores (fun _ -> Array.make ring_size (-1));
      edges = Int_table.create ~size_hint:64 dummy_edge;
      tlb = Array.init ncores (fun _ -> Int_table.create ~size_hint:64 0);
      rc = Int_table.create ~size_hint:1024 dummy_rc;
      dummy_rc;
      races = [];
      tlb_violations = [];
      rc_violations = [];
      accesses = 0;
      wd_horizon = None;
      wd_mark = 0;
    }
  in
  Obs.set_sink (Machine.obs machine) (Some (handle t));
  t

let detach t = Obs.set_sink (Machine.obs t.machine) None

(* Start a fresh measurement window: clear the sharing census and the
   access counter, keeping every cumulative analysis (race states, lock
   order, the TLB mirror, the refcount ledger) intact. Called at the same
   boundary where a benchmark calls [Stats.reset] — node creation and
   other startup handoffs are excluded from the zero-sharing claim just
   as they are excluded from the paper's steady-state averages. *)
let reset_window t =
  t.accesses <- 0;
  Int_table.iter
    (fun _ r ->
      r.lr_readers <- IS.empty;
      r.lr_writers <- IS.empty;
      r.lr_reads <- 0;
      r.lr_writes <- 0)
    t.lines

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)

let accesses t = t.accesses
let races t = List.rev t.races
let tlb_violations t = List.rev t.tlb_violations
let rc_violations t = List.rev t.rc_violations

(* Locks still recorded as held. Meaningful at quiescence: with every
   operation complete, a non-empty held stack means some operation leaked
   a lock — e.g. an exception path that skipped its unlock/rollback. *)
type leaked_lock = { ll_core : int; ll_lock : int; ll_label : string }

let leaked_locks t =
  let acc = ref [] in
  Array.iteri
    (fun core held ->
      List.iter
        (fun h ->
          acc :=
            { ll_core = core; ll_lock = h.hl_lock; ll_label = h.hl_label }
            :: !acc)
        held)
    t.held;
  List.rev !acc

let rc_count t ~oid =
  let r = Int_table.find_default t.rc oid t.dummy_rc in
  if r != t.dummy_rc && r.rr_made then Some r.rr_count else None

let line_info line r =
  {
    li_line = line;
    li_label = r.lr_label;
    li_readers = IS.elements r.lr_readers;
    li_writers = IS.elements r.lr_writers;
    li_reads = r.lr_reads;
    li_writes = r.lr_writes;
  }

let multi_writer_lines ?(allow = []) t =
  Int_table.fold
    (fun line r acc ->
      if IS.cardinal r.lr_writers >= 2 && not (List.mem r.lr_label allow) then
        line_info line r :: acc
      else acc)
    t.lines []
  |> List.sort (fun a b -> compare a.li_line b.li_line)

type label_census = {
  lc_label : string;
  lc_lines : int;
  lc_multi_writer : int;  (* lines written by >= 2 cores *)
  lc_reads : int;
  lc_writes : int;
  lc_max_writers : int;
}

let census t =
  let tbl = Hashtbl.create 32 in
  Int_table.iter
    (fun _ r ->
      let c =
        match Hashtbl.find_opt tbl r.lr_label with
        | Some c -> c
        | None ->
            {
              lc_label = r.lr_label;
              lc_lines = 0;
              lc_multi_writer = 0;
              lc_reads = 0;
              lc_writes = 0;
              lc_max_writers = 0;
            }
      in
      let nw = IS.cardinal r.lr_writers in
      Hashtbl.replace tbl r.lr_label
        {
          c with
          lc_lines = c.lc_lines + 1;
          lc_multi_writer = c.lc_multi_writer + (if nw >= 2 then 1 else 0);
          lc_reads = c.lc_reads + r.lr_reads;
          lc_writes = c.lc_writes + r.lr_writes;
          lc_max_writers = max c.lc_max_writers nw;
        })
    t.lines;
  Hashtbl.fold (fun _ c acc -> c :: acc) tbl []
  |> List.sort (fun a b -> compare a.lc_label b.lc_label)

(* Lock-order cycles: Tarjan's SCC over the edge set; every SCC with at
   least two locks contains a cycle, which we recover with a DFS restricted
   to that SCC so the report can show each edge's acquisition context. *)
let cycles t =
  let adj = Int_table.create ~size_hint:64 [] in
  Int_table.iter
    (fun _ e ->
      Int_table.set adj e.e_from (e :: Int_table.find_default adj e.e_from []))
    t.edges;
  let index = Int_table.create ~size_hint:64 (-1) in
  let lowlink = Int_table.create ~size_hint:64 (-1) in
  let on_stack = Int_table.create ~size_hint:64 false in
  let stack = ref [] in
  let counter = ref 0 in
  let sccs = ref [] in
  let rec strongconnect v =
    Int_table.set index v !counter;
    Int_table.set lowlink v !counter;
    incr counter;
    stack := v :: !stack;
    Int_table.set on_stack v true;
    List.iter
      (fun e ->
        let w = e.e_to in
        if not (Int_table.mem index w) then begin
          strongconnect w;
          Int_table.set lowlink v
            (min
               (Int_table.find_default lowlink v max_int)
               (Int_table.find_default lowlink w max_int))
        end
        else if Int_table.mem on_stack w then
          Int_table.set lowlink v
            (min
               (Int_table.find_default lowlink v max_int)
               (Int_table.find_default index w max_int)))
      (Int_table.find_default adj v []);
    if Int_table.find_default lowlink v (-1) = Int_table.find_default index v (-2)
    then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
            stack := rest;
            Int_table.remove on_stack w;
            if w = v then w :: acc else pop (w :: acc)
      in
      let scc = pop [] in
      if List.length scc >= 2 then sccs := scc :: !sccs
    end
  in
  Int_table.iter
    (fun v _ -> if not (Int_table.mem index v) then strongconnect v)
    adj;
  (* One representative cycle per SCC. *)
  List.filter_map
    (fun scc ->
      let inside = List.fold_left (fun s v -> IS.add v s) IS.empty scc in
      let start = List.hd scc in
      let rec walk v path visited =
        let outs = Int_table.find_default adj v [] in
        let outs = List.filter (fun e -> IS.mem e.e_to inside) outs in
        let closing = List.find_opt (fun e -> e.e_to = start) outs in
        match closing with
        | Some e
          when (match path with [] -> e.e_from <> start | _ :: _ -> true) ->
            Some (List.rev (e :: path))
        | _ ->
            List.fold_left
              (fun acc e ->
                match acc with
                | Some _ -> acc
                | None ->
                    if IS.mem e.e_to visited then None
                    else walk e.e_to (e :: path) (IS.add e.e_to visited))
              None outs
      in
      walk start [] (IS.singleton start))
    !sccs

(* Label-level race filtering, the same convention as bench's checked
   wrapper: some structures are lock-free by design (the list range-lock
   backend's ordered list is traversed and spliced before any node lock
   is held), so line-granular Eraser flags their every access. Races on
   labels in [race_allow] are expected; anything else still fails. *)
let filter_races ~race_allow races =
  match race_allow with
  | [] -> races
  | labels ->
      List.filter (fun r -> not (List.mem r.race_label labels)) races

let ok ?allow ?(race_allow = []) t =
  List.is_empty (filter_races ~race_allow (races t))
  && List.is_empty (cycles t)
  && List.is_empty (tlb_violations t)
  && List.is_empty (rc_violations t)
  && List.is_empty (leaked_locks t)
  && List.is_empty (multi_writer_lines ?allow t)

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)

let pp_int_list ppf l =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Format.pp_print_int)
    l

let pp_race ppf r =
  Format.fprintf ppf
    "race: line %d (%s) %s by core %d with empty lockset; cores %a" r.race_line
    r.race_label
    (if r.race_write then "written" else "read")
    r.race_core pp_int_list r.race_cores

(* A full-address-space operation can hold thousands of slot locks; cap
   the printed stack so a report stays readable. *)
let pp_held_cap = 8

let pp_held ppf held =
  let n = List.length held in
  let shown = if n > pp_held_cap then List.filteri (fun i _ -> i < pp_held_cap) held else held in
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
    (fun ppf h ->
      Format.fprintf ppf "lock %d (%s%s)" h.hl_lock h.hl_label
        (if h.hl_rd then ", read-mode" else ""))
    ppf shown;
  if n > pp_held_cap then Format.fprintf ppf ", ... %d more" (n - pp_held_cap)

let pp_edge ppf e =
  Format.fprintf ppf
    "lock %d (%s) -> lock %d (%s) on core %d holding [%a]" e.e_from
    e.e_from_label e.e_to e.e_to_label e.e_core pp_held e.e_held

let pp_cycle ppf c =
  Format.fprintf ppf "lock-order cycle:@,  %a"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf "@,  ")
       pp_edge)
    c

let pp_tlb_violation ppf v =
  Format.fprintf ppf
    "stale TLB: core %d still caches vpn %d of space %d after core %d \
     unmapped [%d,%d)"
    v.tv_stale_core v.tv_vpn v.tv_asid v.tv_unmap_core v.tv_lo v.tv_hi

let pp_rc_violation ppf v =
  let what =
    match v.rv_fault with
    | Inc_after_free -> "incremented after free"
    | Dec_after_free -> "decremented after free"
    | Double_free -> "freed twice"
    | Negative_count -> "count went negative"
    | Freed_referenced n -> Format.asprintf "freed with count %d" n
  in
  Format.fprintf ppf "refcount: object %d (%s) %s (on core %d)" v.rv_oid
    v.rv_label what v.rv_core

let pp_leaked_lock ppf l =
  Format.fprintf ppf "leaked lock: core %d still holds lock %d (%s)" l.ll_core
    l.ll_lock l.ll_label

let pp_line_info ppf li =
  Format.fprintf ppf "line %d (%s): writers %a, readers %a, %d w / %d r"
    li.li_line li.li_label pp_int_list li.li_writers pp_int_list li.li_readers
    li.li_writes li.li_reads

let pp_census ppf cs =
  Format.fprintf ppf "@[<v 2>sharing census (per label):";
  List.iter
    (fun c ->
      Format.fprintf ppf
        "@,%-18s %6d lines, %4d multi-writer (max %d writers), %9d w, %9d r"
        c.lc_label c.lc_lines c.lc_multi_writer c.lc_max_writers c.lc_writes
        c.lc_reads)
    cs;
  Format.fprintf ppf "@]"

let report ?allow ?(race_allow = []) ppf t =
  let races = filter_races ~race_allow (races t)
  and cycles = cycles t
  and tlbv = tlb_violations t
  and rcv = rc_violations t
  and leaked = leaked_locks t
  and mw = multi_writer_lines ?allow t in
  Format.fprintf ppf "@[<v>check: %d accesses observed@," (accesses t);
  pp_census ppf (census t);
  let section name pp l =
    match l with
    | [] -> Format.fprintf ppf "@,%s: none" name
    | l ->
        Format.fprintf ppf "@,@[<v 2>%s (%d):" name (List.length l);
        List.iter (fun x -> Format.fprintf ppf "@,%a" pp x) l;
        Format.fprintf ppf "@]"
  in
  section "data races" pp_race races;
  section "lock-order cycles" pp_cycle cycles;
  section "stale TLB entries" pp_tlb_violation tlbv;
  section "refcount violations" pp_rc_violation rcv;
  section "leaked locks" pp_leaked_lock leaked;
  section "multi-writer lines outside allowlist" pp_line_info mw;
  Format.fprintf ppf "@,verdict: %s@]"
    (if
       List.is_empty races && List.is_empty cycles && List.is_empty tlbv
       && List.is_empty rcv && List.is_empty leaked && List.is_empty mw
     then "PASS"
     else "FAIL")

(* The one kind of line RadixVM legitimately writes from several cores in a
   disjoint-region workload: radix-tree *node* refcount objects. Every
   core's used-slot deltas flush into the owning node's global count (and
   take its object lock) at epoch boundaries — that is Refcache working as
   designed, O(1) writes per epoch, off the operation fast path. Everything
   else (slot lines, page-table lines, TLB bookkeeping, frame counts,
   free lists) must stay single-writer. *)
let radixvm_allow = [ "radix:node" ]
