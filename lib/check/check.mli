(** Dynamic concurrency checking over the simulator's event stream.

    The simulator is deterministic and every shared-memory access already
    funnels through {!Ccsim.Line} and {!Ccsim.Lock}; attaching a checker
    turns each run into a machine-checked proof obligation. Five analyses
    run simultaneously over one event stream:

    - a {b lockset race detector} (Eraser-style): per-line candidate-lockset
      intersection across cores; any cross-core access to a write-shared
      line with an empty lockset is reported. Accesses tagged [Atomic]
      (modeled cmpxchg / fetch-add protocols) are exempt;
    - a {b lock-order graph} with cycle detection: acquiring B while
      holding A adds edge A->B; a cycle is a potential deadlock, reported
      with the acquisition context of every edge;
    - a {b zero-sharing verifier}: {!multi_writer_lines} lists every line
      written by more than one core outside an explicit allowlist, and
      {!census} breaks sharing down per label — this turns the paper's
      disjoint-operations claim into a pass/fail check;
    - a {b TLB coherence checker}: an exact mirror of every core's TLB is
      maintained from fill/drop events; when a VM emits [Unmap_done] after
      a shootdown round, no core may still cache a translation for the
      range;
    - a {b Refcache invariant checker}: a ledger of every object's count
      from [Rc_make]/[Rc_inc]/[Rc_dec]/[Rc_free] events; objects must be
      freed exactly once, at count zero, and never touched after free.

    Attach before the run ([Check.attach machine]), query or
    [Check.report] after. Detaching restores the zero-cost uninstrumented
    path. *)

type t

val attach : Ccsim.Machine.t -> t
(** Install the checker as the machine's event sink. At most one checker
    can be attached to a machine at a time (a second [attach] replaces the
    first). *)

val detach : t -> unit

val reset_window : t -> unit
(** Start a fresh measurement window: clear the sharing census (per-line
    reader/writer sets and counts) and the {!accesses} counter while
    keeping every cumulative analysis — race states, the lock-order
    graph, the TLB mirror, the refcount ledger — intact. Call it exactly
    where the benchmark calls [Stats.reset] (the warmup/measure
    boundary): one-time initialization handoffs, such as a radix node
    being born with its lock bits set by the creating core, are startup
    effects the paper's steady-state zero-sharing claim excludes. *)

(** {1 Livelock watchdog}

    The simulator's locks are time-based, so the host process can never
    deadlock: a wedged simulation (every core spinning on a lock that is
    never freed, an IPI storm that starves progress) shows up as the
    simulated clock racing ahead while no operation retires. The watchdog
    makes that observable: the session driver {!feed_watchdog}s it once
    per retired operation, and every event the checker observes compares
    the machine's elapsed simulated time against the last feed. Past the
    horizon, {!Livelock} is raised from inside the wedged operation with
    a dump of every core's held locks. The watchdog disarms itself before
    raising (one-shot), so the unwind cannot trip it again; note the
    simulation is mid-operation at that point — the session should be
    abandoned, not torn down. *)

exception Livelock of { elapsed : int; horizon : int; dump : string }
(** [elapsed] is the machine's simulated time when the watchdog tripped,
    [horizon] the armed limit, [dump] a human-readable listing of every
    core's held locks (empty stacks omitted). *)

val arm_watchdog : t -> horizon:int -> unit
(** Trip {!Livelock} if more than [horizon] simulated cycles pass without
    a {!feed_watchdog}. [horizon] must be positive and should comfortably
    exceed the longest legitimate operation (IPI retry backoff included —
    tens of millions of cycles under heavy fault plans). *)

val feed_watchdog : t -> unit
(** Mark progress (an operation retired): restart the horizon. *)

val disarm_watchdog : t -> unit

(** {1 Findings} *)

type race = {
  race_line : int;
  race_label : string;
  race_core : int;  (** the core whose access emptied the lockset *)
  race_write : bool;
  race_cores : int list;  (** every core that touched the line *)
}

type held_lock = { hl_lock : int; hl_label : string; hl_rd : bool }

type leaked_lock = { ll_core : int; ll_lock : int; ll_label : string }
(** A lock some core acquired and never released (see {!leaked_locks}). *)

type lock_edge = {
  e_from : int;
  e_from_label : string;
  e_to : int;
  e_to_label : string;
  e_core : int;  (** core that acquired [e_to] while holding [e_from] *)
  e_held : held_lock list;  (** full held stack at that acquisition *)
}

type cycle = lock_edge list
(** A closed path in the lock-order graph: each edge's [e_to] is the next
    edge's [e_from], and the last edge points back at the first. *)

type line_info = {
  li_line : int;
  li_label : string;
  li_readers : int list;
  li_writers : int list;
  li_reads : int;
  li_writes : int;
}

type tlb_violation = {
  tv_unmap_core : int;
  tv_asid : int;  (** the address space the unmap happened in *)
  tv_stale_core : int;
  tv_vpn : int;
  tv_lo : int;
  tv_hi : int;
}

type rc_fault =
  | Inc_after_free
  | Dec_after_free
  | Double_free
  | Negative_count
  | Freed_referenced of int  (** the nonzero count at free time *)

type rc_violation = {
  rv_oid : int;
  rv_label : string;
  rv_core : int;
  rv_fault : rc_fault;
}

type label_census = {
  lc_label : string;
  lc_lines : int;
  lc_multi_writer : int;  (** lines written by >= 2 cores *)
  lc_reads : int;
  lc_writes : int;
  lc_max_writers : int;
}

(** {1 Queries} *)

val races : t -> race list
(** Cross-core accesses to write-shared lines with an empty lockset, in
    discovery order; at most one per line. *)

val cycles : t -> cycle list
(** One representative cycle per strongly-connected component of the
    lock-order graph. Empty means the acquisition order is a partial
    order — no potential deadlock was observed. A lock's very first
    acquisition records no edge: nascent objects are born locked before
    they are published (see [Radix.expand]), so nothing can wait on that
    acquisition and it cannot participate in a deadlock. *)

val multi_writer_lines : ?allow:string list -> t -> line_info list
(** Lines written by two or more cores whose label is not in [allow]. For
    a disjoint-region workload on RadixVM this must be empty with
    [~allow:radixvm_allow] — the paper's zero-sharing claim. *)

val census : t -> label_census list
(** Per-label sharing summary, sorted by label. *)

val tlb_violations : t -> tlb_violation list
(** Translations still cached by some core after the range's unmap (and
    its shootdown round) completed. *)

val rc_violations : t -> rc_violation list

val leaked_locks : t -> leaked_lock list
(** Locks still held according to the acquire/release stream. Meaningful
    at quiescence (every operation complete): a leaked lock means some
    exception path skipped its unlock — the checker that catches a VM
    operation whose rollback was skipped. *)

val rc_count : t -> oid:int -> int option
(** The ledger's current count for object [oid] (as returned by
    {!Refcnt.Refcache.oid}); [None] if its creation was not observed.
    Cross-validate against [Refcache.true_count]. *)

val accesses : t -> int
(** Total line accesses observed — every read, write, and lock operation.
    Equals the machine's [l1_hits + transfers + dram_fills] accumulated
    while attached (the checker and the cost model see the same stream). *)

val ok : ?allow:string list -> ?race_allow:string list -> t -> bool
(** No races outside [race_allow], no lock-order cycles, no stale TLB
    entries, no refcount violations, no leaked locks, and no multi-writer
    lines outside [allow]. [race_allow] names line {e labels} whose
    concurrency discipline the line-granular lockset analysis cannot
    express — e.g. the list range-lock backend's ordered list, which is
    traversed and spliced lock-free by design. Default: no filtering. *)

val radixvm_allow : string list
(** The documented allowlist for RadixVM on disjoint-region workloads:
    [["radix:node"]]. Radix-tree node {e refcount objects} are the one
    structure legitimately written from several cores — each core's
    used-slot deltas flush into the owning node's global count (taking its
    object lock) at Refcache epoch boundaries. That is O(1) traffic per
    core per epoch, off the operation fast path, and exactly the sharing
    the paper's design accepts. Slot lines, page-table lines, frame
    counts, and free lists must stay single-writer. *)

(** {1 Reporting} *)

val report :
  ?allow:string list -> ?race_allow:string list -> Format.formatter -> t ->
  unit
(** Human-readable report: access total, per-label census, then each
    analysis's findings and a PASS/FAIL verdict ([allow] as in
    {!multi_writer_lines}, [race_allow] as in {!ok}). *)

val pp_race : Format.formatter -> race -> unit
val pp_cycle : Format.formatter -> cycle -> unit
val pp_tlb_violation : Format.formatter -> tlb_violation -> unit
val pp_rc_violation : Format.formatter -> rc_violation -> unit
val pp_leaked_lock : Format.formatter -> leaked_lock -> unit
val pp_line_info : Format.formatter -> line_info -> unit
