open Ccsim

module Cow_index = struct
  include Structures.Cow_tree
end

(* Writers serialize on a mutex; readers are lock-free (RCU-style): the
   COW tree lets them traverse a consistent snapshot with no lock. *)
module Mutex_locking = struct
  type lk = Lock.t

  let create core = Lock.create ~label:"bonsai:aslock" core
  let read_lock _core _lk = ()
  let read_unlock _core _lk = ()
  let write_lock core lk = Lock.acquire core lk
  let write_unlock core lk = Lock.release core lk
end

include
  Region_vm.Make (Cow_index) (Mutex_locking)
    (struct
      let name = "bonsai"
    end)
