(** The conventional VM design shared by the paper's two baselines: a tree
    of VMA (virtual memory area) objects keyed by start page, one object
    per contiguous mapping; a single shared hardware page table holding the
    canonical page-to-frame bindings; broadcast TLB shootdowns to every
    core that ever used the address space (shared page tables give no usage
    information); and an address-space-wide lock.

    The functor parameters choose the index structure and the locking
    policy, yielding:
    - {!Linux_vm}: red-black tree, read-write lock — page faults take the
      read lock (whose cache line serializes them), mmap/munmap take the
      write lock;
    - {!Bonsai_vm}: COW balanced tree with lock-free lookups — page faults
      take no lock at all, while mmap/munmap serialize on a mutex
      (Clements et al., ASPLOS 2012). *)

open Ccsim

type vma = {
  start : int;
  len : int;
  prot : Vm.Vm_types.prot;
  backing : Vm.Vm_types.backing;
}

val vma_end : vma -> int

(** Index structures usable as a VMA tree. *)
module type INDEX = sig
  type 'v t

  val create : Core.t -> 'v t
  val insert : Core.t -> 'v t -> int -> 'v -> unit
  val remove : Core.t -> 'v t -> int -> bool
  val floor : Core.t -> 'v t -> int -> (int * 'v) option
  val ceiling : Core.t -> 'v t -> int -> (int * 'v) option
  val to_alist : 'v t -> (int * 'v) list
end

(** Address-space locking policies. *)
module type LOCKING = sig
  type lk

  val create : Core.t -> lk
  val read_lock : Core.t -> lk -> unit
  val read_unlock : Core.t -> lk -> unit
  val write_lock : Core.t -> lk -> unit
  val write_unlock : Core.t -> lk -> unit
end

module Make (_ : INDEX) (_ : LOCKING) (_ : sig
  val name : string
end) : sig
  include Vm.Vm_intf.S

  val mmu : t -> Vm.Mmu.t

  val access :
    t -> Core.t -> vpn:int -> write:bool -> Vm.Vm_types.access_result

  val vma_count : t -> int
  (** Live VMA objects (Table 2's "VMA tree" column). *)
end
