open Ccsim

module Rb_index = struct
  include Structures.Rbtree
end

module Rw_locking = struct
  type lk = Rwlock.t

  let create core = Rwlock.create ~label:"linux:aslock" core
  let read_lock core lk = Rwlock.read_acquire core lk
  let read_unlock core lk = Rwlock.read_release core lk
  let write_lock core lk = Rwlock.write_acquire core lk
  let write_unlock core lk = Rwlock.write_release core lk
end

include
  Region_vm.Make (Rb_index) (Rw_locking)
    (struct
      let name = "linux"
    end)
