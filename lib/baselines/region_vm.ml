(** The conventional VM design shared by the paper's two baselines: a tree
    of VMA (virtual memory area) objects keyed by start page, one object
    per contiguous mapping; a single shared hardware page table holding the
    canonical page-to-frame bindings; broadcast TLB shootdowns to every
    core that ever used the address space (shared page tables give no usage
    information); and an address-space-wide lock.

    The functor parameters choose the index structure and the locking
    policy, yielding:
    - {!Linux_vm}: red-black tree, read-write lock — page faults take the
      read lock (whose cache line serializes them), mmap/munmap take the
      write lock;
    - {!Bonsai_vm}: COW balanced tree with lock-free lookups — page faults
      take no lock at all, while mmap/munmap serialize on a mutex
      (Clements et al., ASPLOS 2012). *)

open Ccsim
module Vm_types = Vm.Vm_types
module Mmu = Vm.Mmu
module Page_table = Vm.Page_table

type vma = {
  start : int;
  len : int;
  prot : Vm_types.prot;
  backing : Vm_types.backing;
}

let vma_end v = v.start + v.len

(** Index structures usable as a VMA tree. *)
module type INDEX = sig
  type 'v t

  val create : Core.t -> 'v t
  val insert : Core.t -> 'v t -> int -> 'v -> unit
  val remove : Core.t -> 'v t -> int -> bool
  val floor : Core.t -> 'v t -> int -> (int * 'v) option
  val ceiling : Core.t -> 'v t -> int -> (int * 'v) option
  val to_alist : 'v t -> (int * 'v) list
end

(** Address-space locking policies. *)
module type LOCKING = sig
  type lk

  val create : Core.t -> lk
  val read_lock : Core.t -> lk -> unit
  val read_unlock : Core.t -> lk -> unit
  val write_lock : Core.t -> lk -> unit
  val write_unlock : Core.t -> lk -> unit
end

module Make (Ix : INDEX) (L : LOCKING) (Cfg : sig
  val name : string
end) =
struct
  type t = {
    machine : Machine.t;
    index : vma Ix.t;
    lock : L.lk;
    mmu : Mmu.t;
    ever_active : Bitset.t;
  }

  let name = Cfg.name

  let create machine =
    let core0 = Machine.core machine 0 in
    {
      machine;
      index = Ix.create core0;
      lock = L.create core0;
      mmu = Mmu.create machine Page_table.Shared;
      ever_active = Bitset.create (Machine.ncores machine);
    }

  let machine t = t.machine
  let mmu t = t.mmu

  (* Collect the VMAs overlapping [lo, hi); caller holds the write lock.
     A VMA starting strictly before [lo] can only be found by [floor];
     everything else starts in [lo, hi) and is enumerated with [ceiling]. *)
  let overlapping t core ~lo ~hi =
    let before =
      match Ix.floor core t.index lo with
      | Some (start, v) when start < lo && vma_end v > lo -> [ v ]
      | _ -> []
    in
    let rec scan pos acc =
      match Ix.ceiling core t.index pos with
      | Some (start, v) when start < hi -> scan (start + 1) (v :: acc)
      | _ -> List.rev acc
    in
    before @ scan lo []

  (* Remove [lo, hi) from the VMA index, splitting partial overlaps. *)
  let carve t core ~lo ~hi =
    let doomed = overlapping t core ~lo ~hi in
    List.iter
      (fun v ->
        ignore (Ix.remove core t.index v.start);
        if v.start < lo then
          Ix.insert core t.index v.start { v with len = lo - v.start };
        if vma_end v > hi then
          Ix.insert core t.index hi
            { v with start = hi; len = vma_end v - hi })
      doomed;
    doomed <> []

  (* Clear the shared page table and every active core's TLB for [lo, hi),
     broadcasting shootdown IPIs; returns the frames to free. Caller holds
     the write lock. *)
  let shootdown_range t (core : Core.t) ~lo ~hi =
    let removed = Page_table.clear_range (Mmu.page_table t.mmu) ~owner:0 ~lo ~hi in
    if removed = [] then []
    else begin
      let targets =
        Bitset.fold
          (fun c acc -> if c = core.Core.id then acc else c :: acc)
          t.ever_active []
      in
      Bitset.iter
        (fun c -> ignore (Mmu.drop_for_core t.mmu ~owner:c ~lo ~hi))
        t.ever_active;
      Core.tick core core.Core.params.Params.op_cost;
      if targets <> [] then Ipi.multicast t.machine core ~targets;
      List.map snd removed
    end

  (* The unmapped range's shootdown round is over (or there was nothing to
     shoot down): no core may still cache a translation for [lo, hi). *)
  let unmap_done t (core : Core.t) ~lo ~hi =
    let obs = Machine.obs t.machine in
    if Obs.active obs then
      Obs.emit obs
        (Obs.Unmap_done
           { core = core.Core.id; asid = Mmu.asid t.mmu; lo; hi })

  let free_frames t core frames =
    List.iter (fun pfn -> Physmem.free (Machine.physmem t.machine) core pfn) frames

  (* Insert a fresh VMA, merging with adjacent compatible neighbours the
     way Linux merges anonymous mappings. *)
  let insert_vma t core v =
    let v =
      match Ix.floor core t.index (v.start - 1) with
      | Some (_, p)
        when vma_end p = v.start && p.prot = v.prot && p.backing = v.backing
        ->
          ignore (Ix.remove core t.index p.start);
          { v with start = p.start; len = p.len + v.len }
      | _ -> v
    in
    let v =
      match Ix.ceiling core t.index (vma_end v) with
      | Some (start, n)
        when start = vma_end v && n.prot = v.prot && n.backing = v.backing ->
          ignore (Ix.remove core t.index start);
          { v with len = v.len + n.len }
      | _ -> v
    in
    Ix.insert core t.index v.start v

  let mmap t (core : Core.t) ~vpn ~npages ?(prot = Vm_types.Read_write)
      ?(backing = Vm_types.Anon) () =
    if npages <= 0 then invalid_arg (name ^ ".mmap: npages");
    let stats = core.Core.stats in
    stats.Stats.mmaps <- stats.Stats.mmaps + 1;
    Bitset.add t.ever_active core.Core.id;
    Core.tick core core.Core.params.Params.op_cost;
    let lo = vpn and hi = vpn + npages in
    L.write_lock core t.lock;
    let had_overlap = carve t core ~lo ~hi in
    let frames = if had_overlap then shootdown_range t core ~lo ~hi else [] in
    unmap_done t core ~lo ~hi;
    insert_vma t core { start = lo; len = npages; prot; backing };
    L.write_unlock core t.lock;
    free_frames t core frames

  let munmap t (core : Core.t) ~vpn ~npages =
    if npages <= 0 then invalid_arg (name ^ ".munmap: npages");
    let stats = core.Core.stats in
    stats.Stats.munmaps <- stats.Stats.munmaps + 1;
    Core.tick core core.Core.params.Params.op_cost;
    let lo = vpn and hi = vpn + npages in
    L.write_lock core t.lock;
    let had_overlap = carve t core ~lo ~hi in
    let frames = if had_overlap then shootdown_range t core ~lo ~hi else [] in
    unmap_done t core ~lo ~hi;
    L.write_unlock core t.lock;
    free_frames t core frames

  let pagefault t (core : Core.t) vpn ~write =
    let stats = core.Core.stats in
    stats.Stats.pagefaults <- stats.Stats.pagefaults + 1;
    L.read_lock core t.lock;
    match
      match Ix.floor core t.index vpn with
      | Some (_, v) when vma_end v > vpn ->
          if write && v.prot = Vm_types.Read_only then Vm_types.Segfault
          else begin
            let writable = v.prot = Vm_types.Read_write in
            (* Another core may have faulted this page between our
               translate miss and here; the shared page table is the
               truth. *)
            (match Page_table.peek (Mmu.page_table t.mmu) ~owner:0 ~vpn with
            | Some pte ->
                stats.Stats.fill_faults <- stats.Stats.fill_faults + 1;
                (* e.g. a stale read-only PTE after an mprotect upgrade *)
                if pte.Page_table.writable <> writable then
                  Mmu.install t.mmu core ~vpn ~pfn:pte.Page_table.pfn
                    ~writable
            | None ->
                stats.Stats.alloc_faults <- stats.Stats.alloc_faults + 1;
                let pfn = Physmem.alloc (Machine.physmem t.machine) core in
                Mmu.install t.mmu core ~vpn ~pfn ~writable);
            Vm_types.Ok
          end
      | _ -> Vm_types.Segfault
    with
    | result ->
        L.read_unlock core t.lock;
        result
    | exception Physmem.Out_of_frames ->
        (* Frame budget exhausted mid-fault: nothing was installed.
           Release the lock and report memory pressure instead of
           corrupting the address space. *)
        L.read_unlock core t.lock;
        Vm_types.Oom
    | exception e ->
        L.read_unlock core t.lock;
        raise e

  let access t (core : Core.t) ~vpn ~write =
    Bitset.add t.ever_active core.Core.id;
    match Mmu.translate t.mmu core ~vpn ~write with
    | Mmu.Hit _ ->
        Core.tick core core.Core.params.Params.l1_hit;
        Vm_types.Ok
    | Mmu.Miss | Mmu.Prot_fault _ -> pagefault t core vpn ~write

  let touch t core ~vpn = access t core ~vpn ~write:true
  let read t core ~vpn = access t core ~vpn ~write:false

  (* mprotect: update the VMAs (splitting at the boundaries), rewrite the
     affected PTEs with the new permission, and broadcast a shootdown so
     no stale writable translation survives a downgrade. *)
  let mprotect t (core : Core.t) ~vpn ~npages prot =
    if npages <= 0 then invalid_arg (name ^ ".mprotect: npages");
    Core.tick core core.Core.params.Params.op_cost;
    let lo = vpn and hi = vpn + npages in
    L.write_lock core t.lock;
    let affected = overlapping t core ~lo ~hi in
    List.iter
      (fun v ->
        ignore (Ix.remove core t.index v.start);
        if v.start < lo then
          Ix.insert core t.index v.start { v with len = lo - v.start };
        if vma_end v > hi then
          Ix.insert core t.index hi { v with start = hi; len = vma_end v - hi };
        let seg_lo = max v.start lo and seg_hi = min (vma_end v) hi in
        insert_vma t core
          { start = seg_lo; len = seg_hi - seg_lo; prot; backing = v.backing })
      affected;
    (* Rewrite present PTEs with the new permission. *)
    let pt = Mmu.page_table t.mmu in
    let writable = prot = Vm_types.Read_write in
    let present = Page_table.clear_range pt ~owner:0 ~lo ~hi in
    List.iter
      (fun (vpn, pfn) -> Page_table.install pt core ~vpn ~pfn ~writable)
      present;
    (* A downgrade must invalidate every TLB that may cache the old
       writable translation. *)
    if prot = Vm_types.Read_only && present <> [] then begin
      let targets =
        Bitset.fold
          (fun c acc -> if c = core.Core.id then acc else c :: acc)
          t.ever_active []
      in
      Bitset.iter
        (fun c -> Mmu.drop_tlb_range t.mmu ~owner:c ~lo ~hi)
        t.ever_active;
      if targets <> [] then Ipi.multicast t.machine core ~targets
    end;
    L.write_unlock core t.lock

  let mapped t ~vpn =
    List.exists
      (fun (_, v) -> v.start <= vpn && vpn < vma_end v)
      (Ix.to_alist t.index)

  let vma_count t = List.length (Ix.to_alist t.index)

  let vma_bytes = 200
  (* roughly sizeof(struct vm_area_struct) plus tree linkage *)

  let index_bytes t = vma_count t * vma_bytes
  let pt_bytes t = Page_table.bytes (Mmu.page_table t.mmu)
end
