(** Pluggable range-lock backends.

    RadixVM embeds range locks in the mapping index itself: per-slot lock
    bits in the radix tree ({!Radix.lock_range}), so disjoint operations
    touch disjoint cache lines. That is one point in a design space; this
    interface names the alternatives so the simulator can measure the
    crossover:

    - {!Radix_embedded} — the paper's design, implemented inside
      {!Radix}; this module only names it (there is no external state).
    - {!List_based} — a Kogan-style ordered list of locked [lo, hi)
      ranges ({!List_lock}): correct range granularity, but every
      acquisition walks and writes one shared list.
    - {!Global} — one lock over the whole address space (the classical
      [mmap_sem] strawman): every operation serializes.

    External backends ([List_based], [Global]) plug into
    {!Radix.lock_range}/[unlock_range]: acquisition goes through this
    interface and the tree is walked lock-free under its protection. The
    checker needs no special wiring — both are built from {!Ccsim.Lock},
    so lock-order, leaked-lock and lockset analysis see their
    acquire/release events like any other lock's. *)

type kind = Radix_embedded | List_based | Global

val all : kind list

val name : kind -> string
(** ["radix"], ["list"], ["global"]. *)

val of_string : string -> (kind, string) result
(** Inverse of {!name} (accepts ["embedded"] for [Radix_embedded] too). *)

val labels : kind -> string list
(** The line labels the backend introduces, for checker allowlists
    ([Check.ok]'s [race_allow] / zero-sharing [allow]): the list
    backend's head and node lines are traversed and spliced by every
    core — that sharing is its design (and its measured cost), not a
    bug; the global backend's one lock line likewise. Empty for
    {!Radix_embedded}. *)

type t
(** An instantiated external backend (one per address space). *)

type handle
(** A held range. *)

val create_external : Ccsim.Machine.t -> Ccsim.Core.t -> kind -> t option
(** Backend state for one address space; [None] for {!Radix_embedded},
    whose state lives in the radix tree. *)

val acquire : Ccsim.Core.t -> t -> lo:int -> hi:int -> handle
val release : Ccsim.Core.t -> t -> handle -> unit

val release_dead : Ccsim.Core.t -> t -> handle -> unit
(** Release a handle on behalf of a process that died holding it (the
    reap path, {!Radixvm.reap}): same semantics as {!release} — the range
    becomes available, waiters proceed — but the backend counts it, so
    chaos diagnostics can report how many locks recovery had to pry out
    of dead hands. Must run on the dead process's own core so the
    checker's per-core held-lock accounting balances. *)

val reaped : t -> int
(** Handles released through {!release_dead} over this backend's life. *)
