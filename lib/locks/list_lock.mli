(** A list-based range lock: an ordered list of locked [lo, hi) ranges
    (after Kogan, Dice & Issa, "Scalable Range Locks for Scalable Address
    Spaces and Beyond", arXiv 2006.12144).

    Instead of embedding lock bits in the index (the radix tree's plan),
    acquisition inserts a node describing the range into one shared sorted
    list and waits for every already-inserted overlapping range to be
    released. Disjoint ranges both acquire; overlapping ranges serialize.
    The cost model is the point: every acquire reads the shared list head
    and every outstanding node's cache line and publishes the new node with
    a write to its predecessor — so even perfectly disjoint operations
    contend on the list's lines, which is the scalability trade the
    crossover figure measures against the radix-embedded backend.

    Mutual exclusion is carried across operations by each node's lock
    timestamp, exactly like {!Ccsim.Lock}: an acquire whose range overlaps
    outstanding nodes waits until the latest of their release times.
    Released nodes stay in the list until every core's clock has passed
    their release time (no still-running operation may need to wait on
    them), then are recycled through a free pool. *)

type t

type handle
(** A held range: the inserted node. *)

val create : Ccsim.Machine.t -> Ccsim.Core.t -> t
(** One list per address space, its head line homed on [core]'s socket. *)

val acquire : Ccsim.Core.t -> t -> lo:int -> hi:int -> handle
(** Insert [lo, hi) ([lo < hi]) and wait for overlapping holders. Ranges
    must not be nested: acquiring a range overlapping one held by an
    operation still in flight on the {e same} core is a deadlock in the
    modeled system and raises [Invalid_argument]. *)

val release : Ccsim.Core.t -> t -> handle -> unit

(** {2 Introspection (uncharged, for tests)} *)

val outstanding : t -> int
(** Nodes currently in the list (held or not yet quiescent). *)

val pooled : t -> int
(** Recycled nodes available for reuse. *)
