open Ccsim

type kind = Radix_embedded | List_based | Global

let all = [ Radix_embedded; List_based; Global ]

let name = function
  | Radix_embedded -> "radix"
  | List_based -> "list"
  | Global -> "global"

let of_string = function
  | "radix" | "embedded" -> Ok Radix_embedded
  | "list" -> Ok List_based
  | "global" -> Ok Global
  | s ->
      Error
        (Printf.sprintf "unknown range-lock backend %S (radix|list|global)" s)

(* The line labels each backend introduces, for checker allowlists. The
   list backend's head and node lines are traversed and spliced by every
   faulting core — that sharing is the backend's design (and its cost),
   so checked runs admit it explicitly rather than calling it a bug. *)
let labels = function
  | Radix_embedded -> []
  | List_based -> [ "rangelock:head"; "rangelock:node" ]
  | Global -> [ "rangelock:global" ]

type backend_state = List_backend of List_lock.t | Global_backend of Lock.t

type t = {
  state : backend_state;
  mutable n_reaped : int;  (* handles force-released on behalf of the dead *)
}

type handle = H_list of List_lock.handle | H_global

let create_external machine core = function
  | Radix_embedded -> None
  | List_based ->
      Some { state = List_backend (List_lock.create machine core); n_reaped = 0 }
  | Global ->
      Some
        {
          state = Global_backend (Lock.create ~label:"rangelock:global" core);
          n_reaped = 0;
        }

let acquire core t ~lo ~hi =
  match t.state with
  | List_backend l -> H_list (List_lock.acquire core l ~lo ~hi)
  | Global_backend g ->
      Lock.acquire core g;
      H_global

let release core t h =
  match (t.state, h) with
  | List_backend l, H_list n -> List_lock.release core l n
  | Global_backend g, H_global -> Lock.release core g
  | List_backend _, H_global | Global_backend _, H_list _ ->
      invalid_arg "Range_lock.release: handle from a different backend"

let release_dead core t h =
  t.n_reaped <- t.n_reaped + 1;
  release core t h

let reaped t = t.n_reaped
