open Ccsim

(* A node is one cache line holding the range bounds, the next pointer and
   the lock word ([Lock.create_on] shares the line). Exclusion across
   operations is the lock's [free_time] timestamp; [n_busy] is host-side
   bookkeeping that marks a node acquired by an operation still in flight
   (the scheduler runs each operation atomically, so a busy node can only
   be observed by a nested acquisition — a modeled deadlock). *)
type node = {
  n_line : Line.t;
  n_lock : Lock.t;
  mutable n_lo : int;
  mutable n_hi : int;
  mutable n_busy : bool;
}

type t = {
  machine : Machine.t;
  head : Line.t;
  mutable nodes : node list;  (* sorted by [n_lo] *)
  mutable pool : node list;
}

type handle = node

let create machine (core : Core.t) =
  {
    machine;
    head =
      Line.create ~label:"rangelock:head" core.Core.params core.Core.stats
        ~home_socket:core.Core.socket;
    nodes = [];
    pool = [];
  }

let outstanding t = List.length t.nodes
let pooled t = List.length t.pool

(* A released node may be unlinked only once every core's clock has passed
   its release time: a core whose clock still trails it may yet issue an
   acquire (at its earlier simulated time) that must wait on the node.
   The same bound guarantees a recycled node's lock never makes its next
   [Lock.acquire] wait. Reading [clock] directly (not [Core.now]) is
   conservative: pending interrupt charges only push a core's time later. *)
let quiescent_before t =
  let cores = Machine.cores t.machine in
  let m = ref max_int in
  Array.iter
    (fun (c : Core.t) -> if c.Core.clock < !m then m := c.Core.clock)
    cores;
  !m

let overlaps n ~lo ~hi = n.n_lo < hi && lo < n.n_hi

let acquire (core : Core.t) t ~lo ~hi =
  if not (0 <= lo && lo < hi) then invalid_arg "List_lock.acquire: bad range";
  let stats = core.Core.stats in
  (* Entering the list: read the head pointer. *)
  Line.read core t.head;
  let horizon = quiescent_before t in
  (* Traverse: recycle quiescent nodes, read every surviving node's line,
     and collect the latest release time among overlapping holders. *)
  let wait = ref 0 in
  let live =
    List.filter
      (fun n ->
        if (not n.n_busy) && Lock.free_time n.n_lock <= horizon then begin
          t.pool <- n :: t.pool;
          false
        end
        else begin
          Line.read core n.n_line;
          if overlaps n ~lo ~hi then begin
            if n.n_busy then
              invalid_arg
                "List_lock.acquire: range overlaps one held by an operation \
                 still in flight (nested acquisition would deadlock)";
            let ft = Lock.free_time n.n_lock in
            if ft > !wait then wait := ft
          end;
          true
        end)
      t.nodes
  in
  let rec split before after =
    match after with
    | n :: rest when n.n_lo <= lo -> split (n :: before) rest
    | _ -> (before, after)
  in
  let before, after = split [] live in
  (* Publishing the node writes the predecessor's next pointer (the head
     for a front insert) — the list's serialization point. *)
  (match before with
  | p :: _ -> Line.write core p.n_line
  | [] -> Line.write core t.head);
  let node =
    match t.pool with
    | n :: rest ->
        t.pool <- rest;
        n
    | [] ->
        let line =
          Line.create ~label:"rangelock:node" core.Core.params core.Core.stats
            ~home_socket:core.Core.socket
        in
        { n_line = line; n_lock = Lock.create_on line; n_lo = lo; n_hi = hi;
          n_busy = false }
  in
  node.n_lo <- lo;
  node.n_hi <- hi;
  node.n_busy <- true;
  t.nodes <- List.rev_append before (node :: after);
  (* Wait out the overlapping holders, then take our own node's lock (its
     release will carry our exclusion interval). The recycling bound above
     guarantees the lock itself never adds waiting. *)
  let now = Core.now core in
  if !wait > now then begin
    stats.Stats.lock_contended <- stats.Stats.lock_contended + 1;
    stats.Stats.lock_wait_cycles <-
      stats.Stats.lock_wait_cycles + (!wait - now);
    core.Core.clock <- !wait
  end;
  Lock.acquire core node.n_lock;
  node

let release (core : Core.t) _t (node : handle) =
  node.n_busy <- false;
  Lock.release core node.n_lock
