(** The POSIX-flavoured syscall interface over RadixVM — the "syscall
    interface" component of the paper's Table 1, for a kernel in the sv6
    mold: processes with forked address spaces, a conventional layout
    (read-only text mapped from a file, a heap grown with sbrk, a stack),
    and the VM syscalls the paper's benchmarks exercise.

    Processes are passive objects driven by whichever simulated core makes
    the syscall (sv6 threads run on cores; the address space is the shared
    object). Every syscall charges a kernel-entry cost and validates its
    arguments before touching the VM. *)

type t
(** The kernel: process table, VFS, and the shared VM state (Refcache,
    frame counters, page cache). *)

type process

type errno = EINVAL | ENOENT | ESRCH | ECHILD | ENOMEM | EFAULT
(** [ENOMEM]: the machine's physical frame budget (fault injection /
    memory pressure) is exhausted. [EFAULT]: the VM operation was
    abandoned at a fault-injection point. Both are returned only after the
    VM layer rolled the operation back, so — like [EINVAL] — they mean the
    syscall was a no-op. *)

type 'a result = ('a, errno) Stdlib.result

val errno_to_string : errno -> string
(** Total over every [errno]. *)

(** {2 Boot and inspection} *)

val boot : Ccsim.Machine.t -> t
(** Create the kernel and the [init] process (pid 1, empty address
    space). *)

val vfs : t -> Vfs.t
val init_process : t -> process
val pid : process -> int
val parent_pid : process -> int
val alive : process -> bool
val process_count : t -> int
(** Live (non-reaped) processes, including zombies. *)

val vm : process -> Vm.Radixvm.Default.t
(** The process's address space (for white-box tests). *)

val brk : process -> int
(** Current heap end, in pages. *)

(** {2 Address-space layout} *)

val text_base : int
val heap_base : int
val stack_base : int
val stack_pages : int

(** {2 Syscalls} *)

val sys_fork : t -> Ccsim.Core.t -> process -> process result
(** Duplicate the calling process: COW address space, heap break copied. *)

val sys_exec : t -> Ccsim.Core.t -> process -> path:string -> unit result
(** Replace the address space: the named file's pages become the read-only
    text mapping, a fresh heap and stack are set up. [ENOENT] if the file
    does not exist. *)

val sys_exit : t -> Ccsim.Core.t -> process -> code:int -> unit
(** Release the address space (frames reclaimed through Refcache) and turn
    the process into a zombie holding its exit code. Orphans are reparented
    to init. *)

val sys_wait : t -> process -> (int * int) result
(** Reap one zombie child: [(pid, exit code)]. [ECHILD] if the process has
    no zombie children. *)

val sys_sbrk : t -> Ccsim.Core.t -> process -> pages:int -> int result
(** Grow (or shrink, with negative [pages]) the heap; returns the previous
    break. Growth maps fresh anonymous pages; shrinking unmaps (and the
    frames are reclaimed). [EINVAL] if the new break would cross the heap
    base or the stack. *)

val sys_mmap :
  t -> Ccsim.Core.t -> process -> vpn:int -> npages:int ->
  ?prot:Vm.Vm_types.prot -> ?populate:bool -> ?file:Vfs.fd -> unit ->
  unit result
(** Validated mmap: the range must be inside the address space and a file
    mapping must be within the file's size ([EINVAL] otherwise).

    [populate] (default false; MAP_POPULATE) eagerly faults every page of
    the fresh mapping, so frame exhaustion surfaces immediately as
    [ENOMEM] — with the mapping rolled back — instead of lazily at first
    touch. *)

val sys_munmap :
  t -> Ccsim.Core.t -> process -> vpn:int -> npages:int -> unit result

val sys_mprotect :
  t -> Ccsim.Core.t -> process -> vpn:int -> npages:int ->
  Vm.Vm_types.prot -> unit result

(** {2 User memory access (what user code does between syscalls)} *)

val store : t -> Ccsim.Core.t -> process -> vpn:int -> int ->
  Vm.Vm_types.access_result
(** [Oom] under frame exhaustion (and, degenerately, when an injected
    abort keeps firing past the bounded retry budget); never raises. *)

val load : t -> Ccsim.Core.t -> process -> vpn:int -> int option
(** [None] for a fatal fault {e or} frame exhaustion; never raises. *)
