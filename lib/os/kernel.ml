open Ccsim
module R = Vm.Radixvm.Default

type errno = EINVAL | ENOENT | ESRCH | ECHILD | ENOMEM | EFAULT

type 'a result = ('a, errno) Stdlib.result

let errno_to_string = function
  | EINVAL -> "EINVAL"
  | ENOENT -> "ENOENT"
  | ESRCH -> "ESRCH"
  | ECHILD -> "ECHILD"
  | ENOMEM -> "ENOMEM"
  | EFAULT -> "EFAULT"

(* Map VM-layer failures to errnos: frame exhaustion is ENOMEM; an
   operation abandoned at a fault-injection point was rolled back by the
   VM layer and reports EFAULT. Every syscall validates its arguments
   before calling into the VM, so EINVAL always means "nothing happened"
   — and thanks to the VM operations' exception safety, so do ENOMEM and
   EFAULT. *)
let trap_vm f =
  match f () with
  | v -> Ok v
  | exception Ccsim.Physmem.Out_of_frames -> Error ENOMEM
  | exception Ccsim.Fault.Injected_abort _ -> Error EFAULT

type state = Running | Zombie of int

type process = {
  pid : int;
  mutable vm : R.t;
  mutable brk : int;  (* heap end in pages; heap is [heap_base, brk) *)
  mutable text_pages : int;
  mutable state : state;
  mutable parent : int;
  mutable children : int list;
}

type t = {
  machine : Machine.t;
  vfs : Vfs.t;
  procs : (int, process) Hashtbl.t;
  mutable next_pid : int;
  init : process;
}

(* Conventional layout, in pages (the space covers 2^36 pages). *)
let text_base = 0x400
let heap_base = 0x100_000
let stack_pages = 64
let stack_base = (1 lsl 30) - stack_pages

(* Kernel entry: mode switch, register save, dispatch. *)
let syscall_entry (core : Core.t) =
  Core.tick core (3 * core.Core.params.Params.op_cost)

let boot machine =
  let core0 = Machine.core machine 0 in
  let init_vm = R.create machine in
  (* init gets a stack but no text: it exists to be forked from *)
  R.mmap init_vm core0 ~vpn:stack_base ~npages:stack_pages ();
  let init =
    {
      pid = 1;
      vm = init_vm;
      brk = heap_base;
      text_pages = 0;
      state = Running;
      parent = 1;
      children = [];
    }
  in
  let t =
    { machine; vfs = Vfs.create (); procs = Hashtbl.create 16; next_pid = 2; init }
  in
  Hashtbl.replace t.procs 1 init;
  t

let vfs t = t.vfs
let init_process t = t.init
let pid p = p.pid
let parent_pid p = p.parent
let alive p = p.state = Running
let process_count t = Hashtbl.length t.procs
let vm p = p.vm
let brk p = p.brk

let check_running p = if p.state <> Running then Error ESRCH else Ok ()

let sys_fork t core p =
  syscall_entry core;
  match check_running p with
  | Error _ as e -> e
  | Ok () -> (
    match trap_vm (fun () -> R.fork p.vm core) with
    | Error _ as e -> e
    | Ok child_vm ->
      let child =
        {
          pid = t.next_pid;
          vm = child_vm;
          brk = p.brk;
          text_pages = p.text_pages;
          state = Running;
          parent = p.pid;
          children = [];
        }
      in
      t.next_pid <- t.next_pid + 1;
      Hashtbl.replace t.procs child.pid child;
      p.children <- child.pid :: p.children;
      Ok child)

let sys_exec t core p ~path =
  syscall_entry core;
  match check_running p with
  | Error _ as e -> e
  | Ok () -> (
      match Vfs.open_file t.vfs path with
      | None -> Error ENOENT
      | Some fd ->
          let text_pages =
            match Vfs.size_pages t.vfs fd with Some n -> n | None -> 0
          in
          (* Tear down the old image; keep the kernel-shared state (page
             cache, counters) by building the replacement from it. Once
             teardown starts there is no image to return to, so — like
             exit — the rebuild runs with fault injection suppressed
             rather than leave a half-built process. (No frames are
             allocated here; mmap is lazy.) *)
          Fault.with_suppressed core.Core.fault (fun () ->
              let fresh = R.create_with ~share_state:p.vm t.machine in
              R.destroy p.vm core;
              p.vm <- fresh;
              R.mmap p.vm core ~vpn:text_base ~npages:text_pages
                ~prot:Vm.Vm_types.Read_only ~backing:(Vm.Vm_types.File fd) ();
              R.mmap p.vm core ~vpn:stack_base ~npages:stack_pages ();
              p.brk <- heap_base;
              p.text_pages <- text_pages;
              Ok ()))

let sys_exit t core p ~code =
  syscall_entry core;
  if p.state = Running then begin
    R.destroy p.vm core;
    p.state <- Zombie code;
    (* Orphans go to init. *)
    List.iter
      (fun cpid ->
        match Hashtbl.find_opt t.procs cpid with
        | Some c ->
            c.parent <- 1;
            t.init.children <- cpid :: t.init.children
        | None -> ())
      p.children;
    p.children <- []
  end

let sys_wait t p =
  let rec find = function
    | [] -> None
    | cpid :: rest -> (
        match Hashtbl.find_opt t.procs cpid with
        | Some { state = Zombie code; _ } -> Some (cpid, code, rest)
        | Some _ | None -> (
            match find rest with
            | Some (z, c, remaining) -> Some (z, c, cpid :: remaining)
            | None -> None))
  in
  if p.children = [] then Error ECHILD
  else
    match find p.children with
    | Some (zpid, code, remaining) ->
        p.children <- remaining;
        Hashtbl.remove t.procs zpid;
        Ok (zpid, code)
    | None -> Error ECHILD

let sys_sbrk _t core p ~pages =
  syscall_entry core;
  match check_running p with
  | Error e -> Error e
  | Ok () ->
      let old = p.brk in
      let next = old + pages in
      if next < heap_base || next > stack_base then Error EINVAL
      else begin
        match
          trap_vm (fun () ->
              if pages > 0 then R.mmap p.vm core ~vpn:old ~npages:pages ()
              else if pages < 0 then
                R.munmap p.vm core ~vpn:next ~npages:(-pages))
        with
        | Ok () ->
            p.brk <- next;
            Ok old
        | Error _ as e -> e
      end

let check_range p ~vpn ~npages =
  if npages <= 0 || vpn < 0 || vpn + npages > R.address_space_pages p.vm then
    Error EINVAL
  else Ok ()

(* Eagerly fault every page of a fresh MAP_POPULATE mapping. Errors roll
   up as errnos; the caller unmaps on failure. *)
let eager_populate core p ~vpn ~npages ~prot =
  let rec go q =
    if q >= vpn + npages then Ok ()
    else
      let r () =
        if prot = Vm.Vm_types.Read_only then R.read p.vm core ~vpn:q
        else R.touch p.vm core ~vpn:q
      in
      match trap_vm r with
      | Ok Vm.Vm_types.Ok -> go (q + 1)
      | Ok Vm.Vm_types.Oom | Error ENOMEM -> Error ENOMEM
      | Ok Vm.Vm_types.Segfault ->
          (* only possible if another core unmapped concurrently *)
          Error EFAULT
      | Error _ -> Error EFAULT
  in
  go vpn

let sys_mmap t core p ~vpn ~npages ?(prot = Vm.Vm_types.Read_write)
    ?(populate = false) ?file () =
  syscall_entry core;
  match (check_running p, check_range p ~vpn ~npages) with
  | (Error _ as e), _ | _, (Error _ as e) -> e
  | Ok (), Ok () -> (
      let backing =
        match file with
        | None -> Ok Vm.Vm_types.Anon
        | Some fd -> (
            match Vfs.size_pages t.vfs fd with
            | None -> Error EINVAL
            | Some size when npages > size -> Error EINVAL
            | Some _ -> Ok (Vm.Vm_types.File fd))
      in
      match backing with
      | Error _ as e -> e
      | Ok backing -> (
          match
            trap_vm (fun () -> R.mmap p.vm core ~vpn ~npages ~prot ~backing ())
          with
          | Error _ as e -> e
          | Ok () ->
              if not populate then Ok ()
              else (
                match eager_populate core p ~vpn ~npages ~prot with
                | Ok () -> Ok ()
                | Error _ as e ->
                    (* Roll the mapping back so the failed syscall is a
                       no-op; the rollback itself must not fail. *)
                    Fault.with_suppressed core.Core.fault (fun () ->
                        R.munmap p.vm core ~vpn ~npages);
                    e)))

let sys_munmap _t core p ~vpn ~npages =
  syscall_entry core;
  match (check_running p, check_range p ~vpn ~npages) with
  | (Error _ as e), _ | _, (Error _ as e) -> e
  | Ok (), Ok () -> trap_vm (fun () -> R.munmap p.vm core ~vpn ~npages)

let sys_mprotect _t core p ~vpn ~npages prot =
  syscall_entry core;
  match (check_running p, check_range p ~vpn ~npages) with
  | (Error _ as e), _ | _, (Error _ as e) -> e
  | Ok (), Ok () -> trap_vm (fun () -> R.mprotect p.vm core ~vpn ~npages prot)

(* User accesses degrade rather than raise: frame exhaustion surfaces as
   [Oom] (load: [None]), and an access that keeps hitting an injected
   abort point retries a bounded number of times — each attempt was rolled
   back, so retrying is sound — before giving up as a resource failure. *)
let access_retries = 64

let store _t core p ~vpn value =
  if p.state <> Running then Vm.Vm_types.Segfault
  else
    let rec go tries =
      match R.store p.vm core ~vpn value with
      | r -> r
      | exception Physmem.Out_of_frames -> Vm.Vm_types.Oom
      | exception Fault.Injected_abort _ ->
          if tries < access_retries then go (tries + 1) else Vm.Vm_types.Oom
    in
    go 0

let load _t core p ~vpn =
  if p.state <> Running then None
  else
    let rec go tries =
      match R.load p.vm core ~vpn with
      | r -> r
      | exception Physmem.Out_of_frames -> None
      | exception Fault.Injected_abort _ ->
          if tries < access_retries then go (tries + 1) else None
    in
    go 0
