type fd = int

type t = {
  by_name : (string, fd) Hashtbl.t;
  sizes : (fd, int) Hashtbl.t;
  mutable next_fd : int;
  mutable resize_hook : (fd -> old_pages:int -> new_pages:int -> unit) option;
}

let create () =
  {
    by_name = Hashtbl.create 16;
    sizes = Hashtbl.create 16;
    next_fd = 3;
    resize_hook = None;
  }

let create_file t ~name ~pages =
  if pages <= 0 then invalid_arg "Vfs.create_file";
  match Hashtbl.find_opt t.by_name name with
  | Some fd ->
      Hashtbl.replace t.sizes fd pages;
      fd
  | None ->
      let fd = t.next_fd in
      t.next_fd <- fd + 1;
      Hashtbl.replace t.by_name name fd;
      Hashtbl.replace t.sizes fd pages;
      fd

let open_file t name = Hashtbl.find_opt t.by_name name
let size_pages t fd = Hashtbl.find_opt t.sizes fd
let file_count t = Hashtbl.length t.sizes

let set_resize_hook t hook = t.resize_hook <- Some hook

let resize_file t fd ~pages =
  if pages < 0 then invalid_arg "Vfs.resize_file";
  match Hashtbl.find_opt t.sizes fd with
  | None -> None
  | Some old_pages ->
      Hashtbl.replace t.sizes fd pages;
      (match t.resize_hook with
      | Some hook when pages <> old_pages ->
          hook fd ~old_pages ~new_pages:pages
      | _ -> ());
      Some old_pages
