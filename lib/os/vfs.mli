(** A minimal in-memory file system: named files with fixed sizes whose
    page contents come from {!Vm.Page_cache.file_content}. Exists so the
    syscall layer can validate file-backed mmaps (bad fd, range beyond
    EOF) and share file pages between processes through the page cache. *)

type t
type fd = int

val create : unit -> t

val create_file : t -> name:string -> pages:int -> fd
(** Create (or truncate) a file of [pages] pages; returns its fd. *)

val open_file : t -> string -> fd option
val size_pages : t -> fd -> int option
(** [None] for an unknown fd. *)

val resize_file : t -> fd -> pages:int -> int option
(** Grow or truncate a file, returning the previous size ([None] for an
    unknown fd; [pages] may be 0). Fires the resize hook when the size
    actually changed, so the owner of the page cache can drop pages
    beyond the new EOF — the cache-serving workload's bulk-eviction
    path. The VFS itself holds no cache references; it only reports. *)

val set_resize_hook : t -> (fd -> old_pages:int -> new_pages:int -> unit) -> unit
(** Install the single resize observer (later calls replace it). Called
    with the file and both sizes after the size table is updated. *)

val file_count : t -> int
