open Ccsim

type 'v node = {
  key : int;
  mutable value : 'v option;  (* None only for the head sentinel *)
  next : 'v node option array;
  line : Line.t;
}

type 'v t = { head : 'v node; max_level : int; mutable length : int }

let fresh_line (core : Core.t) =
  Line.create ~label:"skiplist:node" core.Core.params core.Core.stats
    ~home_socket:core.Core.socket

let create ?(max_level = 16) core =
  if max_level < 1 then invalid_arg "Skiplist.create";
  {
    head =
      {
        key = min_int;
        value = None;
        next = Array.make max_level None;
        line = fresh_line core;
      };
    max_level;
    length = 0;
  }

(* Deterministic tower height: one plus the number of trailing one bits of
   a hash of the key — geometric(1/2), independent of insertion order. *)
let height_of t key =
  let h = key * 0x9E3779B1 land max_int in
  let rec count h acc = if h land 1 = 1 then count (h lsr 1) (acc + 1) else acc in
  min t.max_level (1 + count h 0)

(* Walk down from the top level, collecting the predecessor at each level.
   Every node whose line we inspect is charged as a read. *)
let find_preds core t key =
  let preds = Array.make t.max_level t.head in
  Line.read core t.head.line;
  let cur = ref t.head in
  for level = t.max_level - 1 downto 0 do
    let continue = ref true in
    while !continue do
      match !cur.next.(level) with
      | Some n when n.key < key ->
          Line.read core n.line;
          cur := n
      | Some n ->
          (* Peek at the successor's key: costs a read of its line. *)
          Line.read core n.line;
          continue := false
      | None -> continue := false
    done;
    preds.(level) <- !cur
  done;
  preds

let find core t key =
  let preds = find_preds core t key in
  match preds.(0).next.(0) with
  | Some n when n.key = key -> n.value
  | _ -> None

let mem core t key = find core t key <> None

let floor core t key =
  let preds = find_preds core t key in
  match preds.(0).next.(0) with
  | Some n when n.key = key -> Some (n.key, Option.get n.value)
  | _ ->
      let p = preds.(0) in
      if p == t.head then None else Some (p.key, Option.get p.value)

let insert core t key value =
  let preds = find_preds core t key in
  match preds.(0).next.(0) with
  | Some n when n.key = key ->
      (* Replacement writes the node itself. *)
      Line.write core n.line;
      n.value <- Some value
  | _ ->
      let h = height_of t key in
      let node =
        { key; value = Some value; next = Array.make h None; line = fresh_line core }
      in
      Line.write core node.line;
      for level = 0 to h - 1 do
        node.next.(level) <- preds.(level).next.(level);
        (* Linking in mutates the predecessor: the interior write that
           makes skip lists contend under unrelated inserts. *)
        Line.write core preds.(level).line;
        preds.(level).next.(level) <- Some node
      done;
      t.length <- t.length + 1

let remove core t key =
  let preds = find_preds core t key in
  match preds.(0).next.(0) with
  | Some n when n.key = key ->
      (* Logical delete marks the node, then unlinks at each level. *)
      Line.write core n.line;
      for level = 0 to Array.length n.next - 1 do
        if
          match preds.(level).next.(level) with
          | Some m -> m == n
          | None -> false
        then begin
          Line.write core preds.(level).line;
          preds.(level).next.(level) <- n.next.(level)
        end
      done;
      t.length <- t.length - 1;
      true
  | _ -> false

let length t = t.length

let to_alist t =
  let rec go acc = function
    | None -> List.rev acc
    | Some n -> go ((n.key, Option.get n.value) :: acc) n.next.(0)
  in
  go [] t.head.next.(0)

let check_invariants t =
  (* Level-0 keys strictly ascend; every higher level is a subsequence. *)
  let rec check_sorted prev = function
    | None -> ()
    | Some n ->
        if n.key <= prev then failwith "Skiplist: keys not ascending";
        check_sorted n.key n.next.(0)
  in
  check_sorted min_int t.head.next.(0);
  let count =
    let rec go acc = function None -> acc | Some n -> go (acc + 1) n.next.(0) in
    go 0 t.head.next.(0)
  in
  if count <> t.length then failwith "Skiplist: length mismatch";
  for level = 1 to t.max_level - 1 do
    let rec check = function
      | None -> ()
      | Some n ->
          (* every node at this level must be reachable at level - 1 *)
          let rec present = function
            | None -> false
            | Some m -> m == n || (m.key <= n.key && present m.next.(level - 1))
          in
          if not (present t.head.next.(level - 1)) then
            failwith "Skiplist: tower not grounded";
          check n.next.(level)
    in
    check t.head.next.(level)
  done
