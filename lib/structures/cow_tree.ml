open Ccsim

(* Weight-balanced tree parameters (delta, ratio) = (3, 2): the
   integer-safe pair proven correct for Haskell's Data.Map. *)
let delta = 3
let ratio = 2

type 'v tree =
  | Leaf
  | Node of {
      key : int;
      value : 'v;
      left : 'v tree;
      right : 'v tree;
      size : int;
      line : Line.t;
    }

type 'v t = { root : 'v tree Cell.t }

let create core = { root = Cell.make ~label:"bonsai:root" core Leaf }

let tsize = function Leaf -> 0 | Node n -> n.size

let rd core = function
  | Leaf -> ()
  | Node n -> Line.read core n.line

(* Build a node on a fresh line; the construction writes it (it is new, so
   the write is a core-local fill, no coherence traffic). *)
let node (core : Core.t) key value left right =
  let line =
    Line.create ~label:"bonsai:node" core.Core.params core.Core.stats
      ~home_socket:core.Core.socket
  in
  Line.write core line;
  Node { key; value; left; right; size = tsize left + tsize right + 1; line }

let single_left core k v l r =
  match r with
  | Node { key = rk; value = rv; left = rl; right = rr; _ } ->
      node core rk rv (node core k v l rl) rr
  | Leaf -> assert false

let double_left core k v l r =
  match r with
  | Node
      {
        key = rk;
        value = rv;
        left = Node { key = rlk; value = rlv; left = rll; right = rlr; _ };
        right = rr;
        _;
      } ->
      node core rlk rlv (node core k v l rll) (node core rk rv rlr rr)
  | _ -> assert false

let single_right core k v l r =
  match l with
  | Node { key = lk; value = lv; left = ll; right = lr; _ } ->
      node core lk lv ll (node core k v lr r)
  | Leaf -> assert false

let double_right core k v l r =
  match l with
  | Node
      {
        key = lk;
        value = lv;
        left = ll;
        right = Node { key = lrk; value = lrv; left = lrl; right = lrr; _ };
        _;
      } ->
      node core lrk lrv (node core lk lv ll lrl) (node core k v lrr r)
  | _ -> assert false

let balance core k v l r =
  let ls = tsize l and rs = tsize r in
  if ls + rs <= 1 then node core k v l r
  else if rs > delta * ls then
    match r with
    | Node { left = rl; right = rr; _ } ->
        if tsize rl < ratio * tsize rr then single_left core k v l r
        else double_left core k v l r
    | Leaf -> assert false
  else if ls > delta * rs then
    match l with
    | Node { left = ll; right = lr; _ } ->
        if tsize lr < ratio * tsize ll then single_right core k v l r
        else double_right core k v l r
    | Leaf -> assert false
  else node core k v l r

let rec insert_tree core key value = function
  | Leaf -> node core key value Leaf Leaf
  | Node n as t ->
      rd core t;
      if key = n.key then node core key value n.left n.right
      else if key < n.key then
        balance core n.key n.value (insert_tree core key value n.left) n.right
      else
        balance core n.key n.value n.left (insert_tree core key value n.right)

let rec remove_min core = function
  | Leaf -> invalid_arg "Cow_tree.remove_min"
  | Node { key; value; left = Leaf; right; _ } as t ->
      rd core t;
      (key, value, right)
  | Node n as t ->
      rd core t;
      let k, v, left' = remove_min core n.left in
      (k, v, balance core n.key n.value left' n.right)

let glue core l r =
  match (l, r) with
  | Leaf, t | t, Leaf -> t
  | _, _ ->
      let k, v, r' = remove_min core r in
      balance core k v l r'

let rec remove_tree core key = function
  | Leaf -> None
  | Node n as t ->
      rd core t;
      if key = n.key then Some (glue core n.left n.right)
      else if key < n.key then
        match remove_tree core key n.left with
        | None -> None
        | Some left' -> Some (balance core n.key n.value left' n.right)
      else
        match remove_tree core key n.right with
        | None -> None
        | Some right' -> Some (balance core n.key n.value n.left right')

let find core t key =
  let rec go = function
    | Leaf -> None
    | Node n as tr ->
        rd core tr;
        if key = n.key then Some n.value
        else if key < n.key then go n.left
        else go n.right
  in
  go (Cell.read core t.root)

let floor core t key =
  let rec go best = function
    | Leaf -> best
    | Node n as tr ->
        rd core tr;
        if key = n.key then Some (n.key, n.value)
        else if key < n.key then go best n.left
        else go (Some (n.key, n.value)) n.right
  in
  go None (Cell.read core t.root)

let ceiling core t key =
  let rec go best = function
    | Leaf -> best
    | Node n as tr ->
        rd core tr;
        if key = n.key then Some (n.key, n.value)
        else if key > n.key then go best n.right
        else go (Some (n.key, n.value)) n.left
  in
  go None (Cell.read core t.root)

let size core t = tsize (Cell.read core t.root)

let insert core t key value =
  let root = Cell.read core t.root in
  Cell.write core t.root (insert_tree core key value root)

let remove core t key =
  let root = Cell.read core t.root in
  match remove_tree core key root with
  | None -> false
  | Some root' ->
      Cell.write core t.root root';
      true

let to_alist t =
  let rec go acc = function
    | Leaf -> acc
    | Node n -> go ((n.key, n.value) :: go acc n.right) n.left
  in
  go [] (Cell.peek t.root)

let check_invariants t =
  let fail msg = failwith ("Cow_tree: " ^ msg) in
  let rec go lo hi = function
    | Leaf -> 0
    | Node n ->
        (match lo with Some l when n.key <= l -> fail "order" | _ -> ());
        (match hi with Some h when n.key >= h -> fail "order" | _ -> ());
        let ls = go lo (Some n.key) n.left in
        let rs = go (Some n.key) hi n.right in
        if ls + rs + 1 <> n.size then fail "size";
        if ls + rs > 1 && (ls > delta * rs || rs > delta * ls) then
          fail "balance";
        n.size
  in
  ignore (go None None (Cell.peek t.root))
