open Ccsim

type color = Red | Black

type 'v node = {
  key : int;
  mutable value : 'v option;  (* None only in the nil sentinel *)
  mutable left : 'v node;
  mutable right : 'v node;
  mutable parent : 'v node;
  mutable color : color;
  line : Line.t;
}

type 'v t = { nil : 'v node; mutable root : 'v node; mutable size : int }

let fresh_line (core : Core.t) =
  Line.create ~label:"linux:node" core.Core.params core.Core.stats
    ~home_socket:core.Core.socket

let rd core (n : 'v node) = Line.read core n.line
let wr core (n : 'v node) = Line.write core n.line

let create core =
  let line = fresh_line core in
  let rec nil =
    { key = 0; value = None; left = nil; right = nil; parent = nil;
      color = Black; line }
  in
  { nil; root = nil; size = 0 }

let size t = t.size
let is_empty t = t.size = 0

let find core t key =
  let rec go n =
    if n == t.nil then None
    else begin
      rd core n;
      if key = n.key then n.value
      else if key < n.key then go n.left
      else go n.right
    end
  in
  go t.root

let floor core t key =
  let rec go n best =
    if n == t.nil then best
    else begin
      rd core n;
      if key = n.key then Some (n.key, Option.get n.value)
      else if key < n.key then go n.left best
      else go n.right (Some (n.key, Option.get n.value))
    end
  in
  go t.root None

let ceiling core t key =
  let rec go n best =
    if n == t.nil then best
    else begin
      rd core n;
      if key = n.key then Some (n.key, Option.get n.value)
      else if key > n.key then go n.right best
      else go n.left (Some (n.key, Option.get n.value))
    end
  in
  go t.root None

let left_rotate core t x =
  let y = x.right in
  wr core x;
  wr core y;
  x.right <- y.left;
  if y.left != t.nil then begin
    wr core y.left;
    y.left.parent <- x
  end;
  y.parent <- x.parent;
  if x.parent == t.nil then t.root <- y
  else begin
    wr core x.parent;
    if x == x.parent.left then x.parent.left <- y else x.parent.right <- y
  end;
  y.left <- x;
  x.parent <- y

let right_rotate core t x =
  let y = x.left in
  wr core x;
  wr core y;
  x.left <- y.right;
  if y.right != t.nil then begin
    wr core y.right;
    y.right.parent <- x
  end;
  y.parent <- x.parent;
  if x.parent == t.nil then t.root <- y
  else begin
    wr core x.parent;
    if x == x.parent.right then x.parent.right <- y else x.parent.left <- y
  end;
  y.right <- x;
  x.parent <- y

let rec insert_fixup core t z =
  if z.parent.color = Red then begin
    rd core z.parent.parent;
    if z.parent == z.parent.parent.left then begin
      let y = z.parent.parent.right in
      rd core y;
      if y.color = Red then begin
        wr core z.parent;
        wr core y;
        wr core z.parent.parent;
        z.parent.color <- Black;
        y.color <- Black;
        z.parent.parent.color <- Red;
        insert_fixup core t z.parent.parent
      end
      else begin
        let z = if z == z.parent.right then begin
            let z' = z.parent in
            left_rotate core t z';
            z'
          end
          else z
        in
        wr core z.parent;
        wr core z.parent.parent;
        z.parent.color <- Black;
        z.parent.parent.color <- Red;
        right_rotate core t z.parent.parent;
        insert_fixup core t z
      end
    end
    else begin
      let y = z.parent.parent.left in
      rd core y;
      if y.color = Red then begin
        wr core z.parent;
        wr core y;
        wr core z.parent.parent;
        z.parent.color <- Black;
        y.color <- Black;
        z.parent.parent.color <- Red;
        insert_fixup core t z.parent.parent
      end
      else begin
        let z = if z == z.parent.left then begin
            let z' = z.parent in
            right_rotate core t z';
            z'
          end
          else z
        in
        wr core z.parent;
        wr core z.parent.parent;
        z.parent.color <- Black;
        z.parent.parent.color <- Red;
        left_rotate core t z.parent.parent;
        insert_fixup core t z
      end
    end
  end;
  t.root.color <- Black

exception Replaced

let insert core t key value =
  try
    let y = ref t.nil and x = ref t.root in
    while !x != t.nil do
      rd core !x;
      y := !x;
      if key = !x.key then begin
        wr core !x;
        !x.value <- Some value;
        raise Replaced
      end
      else if key < !x.key then x := !x.left
      else x := !x.right
    done;
    let z =
      { key; value = Some value; left = t.nil; right = t.nil; parent = !y;
        color = Red; line = fresh_line core }
    in
    wr core z;
    if !y == t.nil then t.root <- z
    else begin
      wr core !y;
      if key < !y.key then !y.left <- z else !y.right <- z
    end;
    t.size <- t.size + 1;
    insert_fixup core t z
  with Replaced -> ()

let transplant core t u v =
  if u.parent == t.nil then t.root <- v
  else begin
    wr core u.parent;
    if u == u.parent.left then u.parent.left <- v else u.parent.right <- v
  end;
  (* CLRS: assign parent unconditionally (nil's parent is scratch space). *)
  v.parent <- u.parent

let rec minimum core t n =
  rd core n;
  if n.left == t.nil then n else minimum core t n.left

let rec delete_fixup core t x =
  if x != t.root && x.color = Black then begin
    if x == x.parent.left then begin
      let w = ref x.parent.right in
      rd core !w;
      if !w.color = Red then begin
        wr core !w;
        wr core x.parent;
        !w.color <- Black;
        x.parent.color <- Red;
        left_rotate core t x.parent;
        w := x.parent.right
      end;
      rd core !w.left;
      rd core !w.right;
      if !w.left.color = Black && !w.right.color = Black then begin
        wr core !w;
        !w.color <- Red;
        delete_fixup core t x.parent
      end
      else begin
        if !w.right.color = Black then begin
          wr core !w.left;
          wr core !w;
          !w.left.color <- Black;
          !w.color <- Red;
          right_rotate core t !w;
          w := x.parent.right
        end;
        wr core !w;
        wr core x.parent;
        !w.color <- x.parent.color;
        x.parent.color <- Black;
        if !w.right != t.nil then begin
          wr core !w.right;
          !w.right.color <- Black
        end;
        left_rotate core t x.parent
        (* loop terminates: x = root *)
      end
    end
    else begin
      let w = ref x.parent.left in
      rd core !w;
      if !w.color = Red then begin
        wr core !w;
        wr core x.parent;
        !w.color <- Black;
        x.parent.color <- Red;
        right_rotate core t x.parent;
        w := x.parent.left
      end;
      rd core !w.left;
      rd core !w.right;
      if !w.right.color = Black && !w.left.color = Black then begin
        wr core !w;
        !w.color <- Red;
        delete_fixup core t x.parent
      end
      else begin
        if !w.left.color = Black then begin
          wr core !w.right;
          wr core !w;
          !w.right.color <- Black;
          !w.color <- Red;
          left_rotate core t !w;
          w := x.parent.left
        end;
        wr core !w;
        wr core x.parent;
        !w.color <- x.parent.color;
        x.parent.color <- Black;
        if !w.left != t.nil then begin
          wr core !w.left;
          !w.left.color <- Black
        end;
        right_rotate core t x.parent
      end
    end
  end
  else x.color <- Black

let remove core t key =
  let rec locate n =
    if n == t.nil then None
    else begin
      rd core n;
      if key = n.key then Some n
      else if key < n.key then locate n.left
      else locate n.right
    end
  in
  match locate t.root with
  | None -> false
  | Some z ->
      let y = ref z in
      let y_color = ref z.color in
      let x =
        if z.left == t.nil then begin
          let x = z.right in
          transplant core t z z.right;
          x
        end
        else if z.right == t.nil then begin
          let x = z.left in
          transplant core t z z.left;
          x
        end
        else begin
          y := minimum core t z.right;
          y_color := !y.color;
          let x = !y.right in
          if !y.parent == z then x.parent <- !y
          else begin
            transplant core t !y !y.right;
            wr core !y;
            !y.right <- z.right;
            !y.right.parent <- !y
          end;
          transplant core t z !y;
          wr core !y;
          !y.left <- z.left;
          !y.left.parent <- !y;
          !y.color <- z.color;
          x
        end
      in
      if !y_color = Black then delete_fixup core t x;
      t.size <- t.size - 1;
      true

let to_alist t =
  let rec go n acc =
    if n == t.nil then acc
    else go n.left ((n.key, Option.get n.value) :: go n.right acc)
  in
  go t.root []

let check_invariants t =
  let fail msg = failwith ("Rbtree: " ^ msg) in
  if t.root.color <> Black then fail "root not black";
  let rec go n lo hi =
    if n == t.nil then 1
    else begin
      (match lo with Some l when n.key <= l -> fail "order" | _ -> ());
      (match hi with Some h when n.key >= h -> fail "order" | _ -> ());
      if n.color = Red && (n.left.color = Red || n.right.color = Red) then
        fail "red-red";
      let bl = go n.left lo (Some n.key) in
      let br = go n.right (Some n.key) hi in
      if bl <> br then fail "black height";
      bl + (if n.color = Black then 1 else 0)
    end
  in
  ignore (go t.root None None);
  let count = List.length (to_alist t) in
  if count <> t.size then fail "size mismatch"
