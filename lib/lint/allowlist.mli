(** The committed suppression file ([lint.allow]): one
    [rule-id:Module.path # reason] entry per line. Entries are themselves
    checked — a malformed line or an entry matching no finding is an
    error, so the allowlist can only shrink as sites get fixed. *)

type entry = {
  a_rule : Finding.rule;
  a_site : string;
  a_reason : string;
  a_line : int;
  mutable a_used : bool;  (** set by {!apply} when the entry suppressed
                              at least one finding *)
}

type t = { file : string; entries : entry list }

val empty : t

val parse_string : file:string -> string -> t * Finding.t list
(** Parses allowlist text; the findings are [Allow_malformed] errors for
    unparseable lines. *)

val load : string -> t * Finding.t list
(** [parse_string] over a file's contents. Raises [Sys_error] if the file
    cannot be read. *)

val matches : entry -> Finding.t -> bool
(** Rule ids equal and the entry site equals the finding site or is a
    [.]-separated prefix of it. *)

val apply : t -> Finding.t list -> Finding.t list
(** Drops suppressed findings, then appends one [Allow_stale] finding per
    entry that suppressed nothing. *)
