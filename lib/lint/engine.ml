(* The typed-AST pass. Dune already emits a [.cmt] file (the typed tree,
   with resolved paths and inferred types) for every module it compiles;
   this engine reads them back with [Cmt_format], walks them with
   [Tast_iterator], and applies the rule families from [Finding]. Working
   on the typed tree rather than source text means [open]s, aliases, and
   operator sections cannot hide a banned identifier, and polymorphic
   comparisons can be judged by the type they were instantiated at. *)

open Types

type scope = {
  hot : bool;  (* hot-path hygiene rules apply *)
  artifact : bool;  (* output can reach an artifact or transcript *)
  float_emitter : bool;  (* the one module allowed to format floats *)
  toplevel_state : bool;  (* ds-toplevel-mutable applies *)
  shard_engine : bool;  (* ds-cross-shard exempt: may call delivery endpoints *)
  sim_core : bool;  (* det-wallclock applies: no host clock reads *)
}

type config = { classify : string -> scope; skip_dir : string -> bool }

(* ------------------------------------------------------------------ *)
(* Repo policy                                                         *)

let path_has sub path =
  let n = String.length sub and m = String.length path in
  let rec go i =
    i + n <= m && (String.equal (String.sub path i n) sub || go (i + 1))
  in
  go 0

let repo_classify path =
  let has sub = path_has sub path in
  let base = String.lowercase_ascii (Filename.basename path) in
  {
    hot =
      has "lib/ccsim/" || has "lib/check/" || has "lib/refcache/"
      || has "lib/core/" || has "lib/locks/";
    artifact =
      has "lib/harness/" || has "lib/fuzz/" || has "bench/" || has "bin/";
    float_emitter = has "lib/harness/" && String.equal base "harness__json.cmt";
    (* Tests build per-run state in their drivers; module-level mutable
       state only endangers code the domain pool can reach. *)
    toplevel_state = not (has "test/");
    (* The simulator owns the endpoints; the epoch-barrier engine
       (Harness.Shard) is the one sanctioned caller outside it. *)
    shard_engine = has "lib/ccsim/" || has "lib/harness/";
    (* Everything under lib/ is the deterministic core or its support
       libraries: wall budgets belong to bin/ drivers, which pass any
       elapsed time in as plain data. *)
    sim_core = has "lib/";
  }

let repo_config =
  {
    classify = repo_classify;
    skip_dir = (fun name -> String.equal name "lint_fixtures");
  }

(* ------------------------------------------------------------------ *)
(* Identifier classification                                           *)

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.equal (String.sub s 0 (String.length prefix)) prefix

(* "Stdlib__Hashtbl.replace" and "Stdlib.Hashtbl.replace" both become
   "Hashtbl.replace"; a bare "Stdlib.compare" becomes "compare". *)
let normalize name =
  if starts_with ~prefix:"Stdlib__" name then
    String.sub name 8 (String.length name - 8)
  else if starts_with ~prefix:"Stdlib." name then
    String.sub name 7 (String.length name - 7)
  else name

let is_stdlib name =
  starts_with ~prefix:"Stdlib." name || starts_with ~prefix:"Stdlib__" name

let entropy_idents =
  [
    "Random.self_init"; "Random.State.make_self_init"; "Sys.time";
    "Unix.gettimeofday"; "Unix.time";
  ]

(* The sharded world's delivery endpoints: each mutates a destination
   node's state directly (a core's pending-interrupt ledger, a channel, a
   machine's uplink hook) with no epoch buffering, so any caller outside
   the simulator and the epoch-barrier engine can bypass the canonical
   batch order and make results depend on shard layout. Everyone else
   sends with [Machine.uplink_send] and lets the barrier deliver. Matched
   in both the alias form (Ccsim.Machine.f) and the wrapped-library form
   (Ccsim__Machine.f) a resolved path can take. *)
let xshard_endpoints =
  [
    "Machine.deliver_interrupt"; "Machine.set_uplink"; "Channel.post";
    "Core.interrupt";
  ]

let xshard_endpoint n =
  List.exists
    (fun e -> String.equal n ("Ccsim." ^ e) || String.equal n ("Ccsim__" ^ e))
    xshard_endpoints

(* The subset of [entropy_idents] that reads the host wall clock. In a
   sim-core module these additionally fire [det-wallclock] — a separate
   id, so a [det-entropy] pin granted to a driver can never be copied
   onto a lib/ module without a second, deliberate pin. *)
let wallclock_idents = [ "Unix.gettimeofday"; "Unix.time" ]

(* Environment variables are configuration that never appears in a
   transcript, a seed, or a command line: two runs of "the same" command
   can behave differently depending on ambient shell state. Every knob
   must be an explicit flag threaded from the driver. *)
let getenv_idents =
  [
    "Sys.getenv"; "Sys.getenv_opt"; "Unix.getenv"; "Unix.environment";
    "Unix.unsafe_environment";
  ]

let order_idents =
  [
    "Hashtbl.iter"; "Hashtbl.fold"; "Hashtbl.to_seq"; "Hashtbl.to_seq_keys";
    "Hashtbl.to_seq_values";
  ]

let float_idents = [ "string_of_float"; "Float.to_string" ]
let poly_idents = [ "compare"; "="; "<>"; "<"; ">"; "<="; ">="; "min"; "max" ]

(* ------------------------------------------------------------------ *)
(* Type queries                                                        *)

(* Environments stored in a cmt are summaries; [Envaux] rebuilds a real
   one (needed to expand abbreviations and look up declarations), which
   in turn needs the load path the module was compiled with. Both
   reconstructions can fail on a partial load path — every user below
   degrades gracefully when they do. *)
let real_env env = try Envaux.env_of_only_summary env with _ -> env
let expand env ty = try Ctype.expand_head env ty with _ -> ty
let find_type_decl env p = try Some (Env.find_type p env) with _ -> None

(* Unboxed (immediate) types: comparisons are single instructions and
   [Hashtbl.hash] stays cheap. Type variables are immediate by fiat: at
   a [Tvar] the surrounding function is itself polymorphic and the
   instantiation happens at its callers, which are checked separately. *)
let immediate env ty =
  let ty = expand env ty in
  match get_desc ty with
  | Tvar _ | Tunivar _ -> true
  | Tconstr (p, _, _) -> (
      Path.same p Predef.path_int || Path.same p Predef.path_bool
      || Path.same p Predef.path_char
      || Path.same p Predef.path_unit
      ||
      match find_type_decl env p with
      | Some d -> (
          match d.type_immediate with
          | Type_immediacy.Always | Type_immediacy.Always_on_64bits -> true
          | Type_immediacy.Unknown -> false)
      | None -> false)
  | _ -> false

(* Types at which the native compiler specializes a polymorphic
   comparison away from [caml_compare]: immediates compile to an integer
   compare, and floats/strings/bytes/boxed ints to their dedicated
   primitives. Anything else — options, lists, records, tuples, variant
   payloads — walks the heap through [caml_compare]. *)
let specialized_compare env ty =
  let ty = expand env ty in
  immediate env ty
  ||
  match get_desc ty with
  | Tconstr (p, _, _) ->
      Path.same p Predef.path_float
      || Path.same p Predef.path_string
      || Path.same p Predef.path_bytes
      || Path.same p Predef.path_int32
      || Path.same p Predef.path_int64
      || Path.same p Predef.path_nativeint
  | _ -> false

let type_to_string ty =
  (* One line, bounded: findings are grep fodder, not documentation. *)
  let s = Format.asprintf "%a" Printtyp.type_expr ty in
  let s = String.map (fun c -> if c = '\n' then ' ' else c) s in
  if String.length s > 60 then String.sub s 0 57 ^ "..." else s

(* The mutable containers rule 1 recognizes by head constructor, even
   when the declaration itself cannot be looked up. *)
let mutable_heads =
  [
    ("ref", "a ref cell");
    ("Hashtbl.t", "a Hashtbl.t");
    ("Buffer.t", "a Buffer.t");
    ("Queue.t", "a Queue.t");
    ("Stack.t", "a Stack.t");
    ("bytes", "mutable bytes");
    ("Bytes.t", "mutable bytes");
  ]

let rec mutable_value env ty ~depth =
  let ty = expand env ty in
  match get_desc ty with
  | Tarrow _ -> None
  | Ttuple tys when depth = 0 ->
      List.fold_left
        (fun acc t ->
          match acc with Some _ -> acc | None -> mutable_value env t ~depth:1)
        None tys
  | Tconstr (p, _, _) -> (
      let n = normalize (Path.name p) in
      if String.equal n "Atomic.t" then None
      else if Path.same p Predef.path_array then Some "an array"
      else
        match List.assoc_opt n mutable_heads with
        | Some what -> Some what
        | None -> (
            match find_type_decl env p with
            | Some { type_kind = Type_record (lbls, _); _ }
              when List.exists (fun l -> l.ld_mutable = Mutable) lbls ->
                Some (Printf.sprintf "a record with mutable fields (%s)" n)
            | _ -> None))
  | _ -> None

(* ------------------------------------------------------------------ *)
(* The walk                                                            *)

let collect scope modname file_fallback str =
  let findings = ref [] in
  (* Innermost-first stack of enclosing binding names under [modname]. *)
  let site_stack = ref [] in
  let site () = String.concat "." (modname :: List.rev !site_stack) in
  let push name = site_stack := name :: !site_stack in
  let pop () = site_stack := List.tl !site_stack in
  let emit rule (loc : Location.t) msg =
    let p = loc.loc_start in
    let file =
      if String.equal p.pos_fname "" then file_fallback else p.pos_fname
    in
    findings :=
      Finding.v ~rule ~file ~line:p.pos_lnum ~site:(site ()) msg :: !findings
  in
  let check_poly_instantiation env loc name (ty : type_expr) =
    (* [Hashtbl.hash] is never specialized, so only immediate arguments
       are cheap there; comparisons get the compiler's full
       specialization set. *)
    let cheap =
      if String.equal name "Hashtbl.hash" then immediate
      else specialized_compare
    in
    match get_desc (expand env ty) with
    | Tarrow (_, arg, _, _) ->
        if not (cheap env arg) then
          emit Finding.Hot_polycompare loc
            (Printf.sprintf
               "polymorphic %s instantiated at %s — goes through \
                caml_compare; use a monomorphic comparison"
               (match name with
               | "compare" | "min" | "max" -> name
               | op -> "(" ^ op ^ ")")
               (type_to_string arg))
    | _ -> ()
  in
  let on_ident env loc path ty =
    (* Expand module aliases first: `module U = Unix` must not turn
       Unix.gettimeofday into an unrecognized U.gettimeofday. Degrades
       to the raw path when the rebuilt env can't resolve the alias. *)
    let path =
      match path with
      | Path.Pdot (p, s) -> (
          try Path.Pdot (Env.normalize_module_path None env p, s)
          with _ -> path)
      | _ -> path
    in
    let raw = Path.name path in
    let n = normalize raw in
    if (not scope.shard_engine) && xshard_endpoint n then
      emit Finding.Ds_cross_shard loc
        (Printf.sprintf
           "%s is a cross-shard delivery endpoint reserved to the \
            epoch-barrier engine; send with Machine.uplink_send and let \
            Harness.Shard deliver at the epoch boundary" n);
    if List.exists (String.equal n) entropy_idents then
      emit Finding.Det_entropy loc
        (Printf.sprintf
           "%s is run-to-run nondeterminism; thread a seed or take the clock \
            outside the deterministic core" n);
    if scope.sim_core && List.exists (String.equal n) wallclock_idents then
      emit Finding.Det_wallclock loc
        (Printf.sprintf
           "%s reads the host wall clock inside the simulator core (lib/); \
            budget wall time in the bin/ driver and pass elapsed seconds in \
            as data" n);
    if List.exists (String.equal n) getenv_idents then
      emit Finding.Det_getenv loc
        (Printf.sprintf
           "%s reads ambient environment state no transcript records; thread \
            an explicit flag from the driver instead" n);
    if scope.artifact && List.exists (String.equal n) order_idents then
      emit Finding.Det_hashtbl_order loc
        (Printf.sprintf
           "%s iterates in bucket order in an artifact-reaching module; sort \
            the keys (or use Int_table) before anything ordered escapes" n);
    if
      scope.artifact
      && (not scope.float_emitter)
      && List.exists (String.equal n) float_idents
    then
      emit Finding.Det_float_format loc
        (Printf.sprintf
           "%s formats floats outside Harness.Json's deterministic emitter" n);
    if scope.hot then begin
      if
        is_stdlib raw
        && starts_with ~prefix:"Hashtbl." n
        && not (String.equal n "Hashtbl.hash")
      then
        emit Finding.Hot_hashtbl loc
          (Printf.sprintf
             "stdlib %s in a hot module — it hashes, boxes and allocates per \
              probe; use Int_table/Bitset" n);
      if starts_with ~prefix:"Marshal." n then
        emit Finding.Hot_marshal loc (Printf.sprintf "%s in a hot module" n);
      if
        is_stdlib raw
        && (List.exists (String.equal n) poly_idents
           || String.equal n "Hashtbl.hash")
      then
        check_poly_instantiation env loc n ty
    end
  in
  let super = Tast_iterator.default_iterator in
  let expr self (e : Typedtree.expression) =
    (match e.exp_desc with
    | Texp_ident (p, lid, _) ->
        let env = real_env e.exp_env in
        on_ident env lid.loc p e.exp_type
    | Texp_construct (lid, cd, _) when scope.artifact && not scope.float_emitter
      -> (
        (* The type-checker lowers a "%f"-style literal into a
           CamlinternalFormatBasics tree before we ever see it; a [Float]
           constructor there is exactly a float conversion in some format
           string of this module. *)
        match get_desc cd.cstr_res with
        | Tconstr (p, _, _)
          when String.equal cd.cstr_name "Float"
               && path_has "CamlinternalFormatBasics" (Path.name p) ->
            emit Finding.Det_float_format lid.loc
              "float conversion in a format string outside Harness.Json's \
               deterministic emitter"
        | _ -> ())
    | _ -> ());
    super.Tast_iterator.expr self e
  in
  let value_binding self (vb : Typedtree.value_binding) =
    match vb.vb_pat.pat_desc with
    | Tpat_var (id, _) ->
        push (Ident.name id);
        super.Tast_iterator.value_binding self vb;
        pop ()
    | _ -> super.Tast_iterator.value_binding self vb
  in
  let module_binding self (mb : Typedtree.module_binding) =
    match mb.mb_id with
    | Some id ->
        push (Ident.name id);
        super.Tast_iterator.module_binding self mb;
        pop ()
    | None -> super.Tast_iterator.module_binding self mb
  in
  let iterator =
    { super with Tast_iterator.expr; value_binding; module_binding }
  in
  (* Rule 1 walks structure items by hand: [Tstr_value] only occurs at
     module level, which is exactly the scope where mutable state is
     reachable from every domain. *)
  let rec toplevel_item (it : Typedtree.structure_item) =
    match it.str_desc with
    | Tstr_value (_, vbs) ->
        List.iter
          (fun (vb : Typedtree.value_binding) ->
            let env = real_env vb.vb_pat.pat_env in
            match mutable_value env vb.vb_pat.pat_type ~depth:0 with
            | None -> ()
            | Some what ->
                let name =
                  match Typedtree.pat_bound_idents vb.vb_pat with
                  | id :: _ -> Ident.name id
                  | [] -> "_"
                in
                push name;
                emit Finding.Ds_toplevel_mutable vb.vb_pat.pat_loc
                  (Printf.sprintf
                     "top-level mutable state (%s) shared by every domain; \
                      make it Atomic.t, create it per run, or allowlist it \
                      with a reason" what);
                pop ())
          vbs
    | Tstr_module mb -> toplevel_module_binding mb
    | Tstr_recmodule mbs -> List.iter toplevel_module_binding mbs
    | Tstr_include incl -> toplevel_module_expr None incl.incl_mod
    | _ -> ()
  and toplevel_module_binding (mb : Typedtree.module_binding) =
    let name =
      match mb.mb_id with Some id -> Some (Ident.name id) | None -> None
    in
    toplevel_module_expr name mb.mb_expr
  and toplevel_module_expr name (me : Typedtree.module_expr) =
    match me.mod_desc with
    | Tmod_structure s ->
        (match name with Some n -> push n | None -> ());
        List.iter toplevel_item s.str_items;
        (match name with Some _ -> pop () | None -> ())
    | Tmod_constraint (inner, _, _, _) -> toplevel_module_expr name inner
    | _ -> ()
  in
  if scope.toplevel_state then List.iter toplevel_item str.Typedtree.str_items;
  site_stack := [];
  iterator.Tast_iterator.structure iterator str;
  !findings

(* ------------------------------------------------------------------ *)
(* cmt plumbing                                                        *)

(* "Ccsim__Int_table" / "Dune__exe__Simlint" -> "Int_table" / "Simlint":
   the dune wrapping prefix is a build detail, not a name anyone writes
   in an allowlist. *)
let display_modname m =
  let rec last_sep i acc =
    if i + 1 >= String.length m then acc
    else if m.[i] = '_' && m.[i + 1] = '_' then last_sep (i + 2) (i + 2)
    else last_sep (i + 1) acc
  in
  let i = last_sep 0 0 in
  String.capitalize_ascii (String.sub m i (String.length m - i))

let scan_cmt config path =
  let cmt = Cmt_format.read_cmt path in
  match cmt.Cmt_format.cmt_annots with
  | Cmt_format.Implementation str ->
      let scope = config.classify path in
      (* Give [Envaux] its best shot at rebuilding environments: the load
         path recorded at compile time (valid relative to the build root),
         the cmt's own directory, and the stdlib. *)
      Load_path.init ~auto_include:Load_path.no_auto_include
        ((Filename.dirname path :: cmt.Cmt_format.cmt_loadpath)
        @ [ Config.standard_library ]);
      Envaux.reset_cache ();
      let file_fallback =
        match cmt.Cmt_format.cmt_sourcefile with Some f -> f | None -> path
      in
      let modname = display_modname cmt.Cmt_format.cmt_modname in
      collect scope modname file_fallback str
  | _ -> []

let find_cmts config roots =
  let acc = ref [] in
  let rec walk dir =
    match Sys.readdir dir with
    | exception Sys_error _ -> ()
    | entries ->
        let entries = List.sort String.compare (Array.to_list entries) in
        List.iter
          (fun name ->
            let path = Filename.concat dir name in
            if Sys.is_directory path then begin
              if not (config.skip_dir name) then walk path
            end
            else if Filename.check_suffix name ".cmt" then acc := path :: !acc)
          entries
  in
  List.iter (fun root -> if Sys.file_exists root then walk root) roots;
  List.sort String.compare !acc

let run config ~allow ~roots =
  let cmts = find_cmts config roots in
  let findings = List.concat_map (scan_cmt config) cmts in
  let findings = Allowlist.apply allow findings in
  List.sort_uniq Finding.compare findings
