type entry = {
  a_rule : Finding.rule;
  a_site : string;
  a_reason : string;
  a_line : int;
  mutable a_used : bool;
}

type t = { file : string; entries : entry list }

let empty = { file = "<none>"; entries = [] }

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.equal (String.sub s 0 (String.length prefix)) prefix

(* One entry per line: [rule-id:Module.path # reason]. Blank lines and
   lines starting with [#] are comments. The reason is mandatory — a
   suppression nobody can explain is a suppression nobody can retire. *)
let parse_line ~file ~line_no line =
  let line = String.trim line in
  if String.equal line "" || line.[0] = '#' then Ok None
  else
    let malformed msg =
      Error
        (Finding.v ~rule:Finding.Allow_malformed ~file ~line:line_no
           ~site:line msg)
    in
    match String.index_opt line '#' with
    | None -> malformed "missing '# reason' — every suppression needs one"
    | Some h -> (
        let head = String.trim (String.sub line 0 h) in
        let reason =
          String.trim (String.sub line (h + 1) (String.length line - h - 1))
        in
        if String.equal reason "" then
          malformed "empty reason after '#'"
        else
          match String.index_opt head ':' with
          | None -> malformed "expected 'rule-id:Module.path # reason'"
          | Some c -> (
              let rid = String.trim (String.sub head 0 c) in
              let site =
                String.trim (String.sub head (c + 1) (String.length head - c - 1))
              in
              match Finding.rule_of_id rid with
              | None -> malformed (Printf.sprintf "unknown rule id %S" rid)
              | Some rule ->
                  if not (Finding.suppressible rule) then
                    malformed
                      (Printf.sprintf "rule %s cannot be allowlisted" rid)
                  else if String.equal site "" then
                    malformed "empty module path before '#'"
                  else
                    Ok
                      (Some
                         {
                           a_rule = rule;
                           a_site = site;
                           a_reason = reason;
                           a_line = line_no;
                           a_used = false;
                         })))

let parse_string ~file contents =
  let entries = ref [] and bad = ref [] in
  List.iteri
    (fun i line ->
      match parse_line ~file ~line_no:(i + 1) line with
      | Ok None -> ()
      | Ok (Some e) -> entries := e :: !entries
      | Error f -> bad := f :: !bad)
    (String.split_on_char '\n' contents);
  ({ file; entries = List.rev !entries }, List.rev !bad)

let load path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let contents = really_input_string ic n in
  close_in ic;
  parse_string ~file:path contents

(* An entry suppresses a finding when the rule matches and the entry's
   site is the finding's site or an enclosing prefix of it:
   [hot-hashtbl:Check.census] covers [Check.census] and
   [Check.census.bump], and a bare [Module] covers the whole module. *)
let matches e (f : Finding.t) =
  e.a_rule = f.rule
  && (String.equal e.a_site f.site || starts_with ~prefix:(e.a_site ^ ".") f.site)

let apply t findings =
  let kept =
    List.filter
      (fun f ->
        match List.find_opt (fun e -> matches e f) t.entries with
        | Some e ->
            e.a_used <- true;
            false
        | None -> true)
      findings
  in
  let stale =
    List.filter_map
      (fun e ->
        if e.a_used then None
        else
          Some
            (Finding.v ~rule:Finding.Allow_stale ~file:t.file ~line:e.a_line
               ~site:e.a_site
               (Printf.sprintf
                  "stale allowlist entry '%s:%s' matches no finding — delete \
                   it (the site was fixed or renamed)"
                  (Finding.rule_id e.a_rule) e.a_site)))
      t.entries
  in
  kept @ stale
