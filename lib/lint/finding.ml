type rule =
  | Ds_toplevel_mutable
  | Ds_cross_shard
  | Det_entropy
  | Det_wallclock
  | Det_getenv
  | Det_hashtbl_order
  | Det_float_format
  | Hot_hashtbl
  | Hot_polycompare
  | Hot_marshal
  | Allow_stale
  | Allow_malformed

let all_rules =
  [
    Ds_toplevel_mutable;
    Ds_cross_shard;
    Det_entropy;
    Det_wallclock;
    Det_getenv;
    Det_hashtbl_order;
    Det_float_format;
    Hot_hashtbl;
    Hot_polycompare;
    Hot_marshal;
    Allow_stale;
    Allow_malformed;
  ]

let rule_id = function
  | Ds_toplevel_mutable -> "ds-toplevel-mutable"
  | Ds_cross_shard -> "ds-cross-shard"
  | Det_entropy -> "det-entropy"
  | Det_wallclock -> "det-wallclock"
  | Det_getenv -> "det-getenv"
  | Det_hashtbl_order -> "det-hashtbl-order"
  | Det_float_format -> "det-float-format"
  | Hot_hashtbl -> "hot-hashtbl"
  | Hot_polycompare -> "hot-polycompare"
  | Hot_marshal -> "hot-marshal"
  | Allow_stale -> "allow-stale"
  | Allow_malformed -> "allow-malformed"

let rule_of_id id = List.find_opt (fun r -> String.equal (rule_id r) id) all_rules

(* [Allow_stale] and [Allow_malformed] are integrity errors about the
   allowlist itself; an allowlist entry naming them would be
   self-defeating, so they cannot be suppressed. *)
let suppressible = function
  | Allow_stale | Allow_malformed -> false
  | _ -> true

type t = { rule : rule; file : string; line : int; site : string; message : string }

let v ~rule ~file ~line ~site message = { rule; file; line; site; message }

let to_string f =
  Printf.sprintf "%s:%d: [%s] %s: %s" f.file f.line (rule_id f.rule) f.site
    f.message

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = String.compare (rule_id a.rule) (rule_id b.rule) in
      if c <> 0 then c
      else
        let c = String.compare a.site b.site in
        if c <> 0 then c else String.compare a.message b.message
