(** The typed-AST analysis over dune's [.cmt] output.

    A [config] decides, per cmt path, which rule families apply
    ({!scope}) and which directories the cmt walk skips; {!repo_config}
    encodes this repository's policy (hot = ccsim/check/refcache/core/
    locks, artifact-reaching = harness/fuzz/bench/bin, float emitter =
    [Harness.Json], fixtures skipped). *)

type scope = {
  hot : bool;  (** hot-path hygiene: no stdlib Hashtbl, no polymorphic
                   compare at non-immediate types, no Marshal *)
  artifact : bool;
      (** output can reach an artifact or transcript: no Hashtbl
          iteration order, no float formatting *)
  float_emitter : bool;
      (** the deterministic float emitter itself (exempt from
          [det-float-format]) *)
  toplevel_state : bool;  (** [ds-toplevel-mutable] applies *)
  shard_engine : bool;
      (** the simulator ([lib/ccsim/]) or the epoch-barrier engine
          ([lib/harness/]): the only code allowed to touch the sharded
          world's delivery endpoints ([ds-cross-shard] exempt) *)
  sim_core : bool;
      (** a simulator-core ([lib/]) module: host wall-clock reads
          additionally fire [det-wallclock] on top of [det-entropy] *)
}

type config = {
  classify : string -> scope;  (** from a cmt path *)
  skip_dir : string -> bool;  (** directory basenames to skip *)
}

val repo_config : config

val scan_cmt : config -> string -> Finding.t list
(** Findings for one [.cmt] file (unsorted). Interface-only and partial
    cmts yield []. Raises if the file is not a cmt. *)

val find_cmts : config -> string list -> string list
(** All [.cmt] files under the given roots, sorted; nonexistent roots are
    ignored. *)

val run : config -> allow:Allowlist.t -> roots:string list -> Finding.t list
(** Scan every cmt under [roots], apply the allowlist (suppressions plus
    stale-entry errors), and return findings in {!Finding.compare}
    order. *)
