(** A single static-analysis finding: one rule firing at one source
    location, in a machine-readable [file:line: [rule-id] site: message]
    format. *)

type rule =
  | Ds_toplevel_mutable
      (** Module-level mutable state that is not [Atomic.t] — the shared
          state a parallel sweep can race on. *)
  | Ds_cross_shard
      (** A call to one of the sharded world's delivery endpoints
          ([Machine.deliver_interrupt], [Machine.set_uplink],
          [Channel.post], [Core.interrupt]) outside the simulator and the
          epoch-barrier engine — direct mutation of another shard's state
          that bypasses the deterministic batch exchange. Send with
          [Machine.uplink_send] (or [Harness.Shard.post] from the engine)
          instead. *)
  | Det_entropy
      (** A source of run-to-run nondeterminism: wall clocks or
          self-seeded RNGs. *)
  | Det_wallclock
      (** A host wall-clock read ([Unix.gettimeofday]/[Unix.time]) inside
          a simulator-core ([lib/]) module. Fires in addition to
          [Det_entropy], under its own id, so a [det-entropy] allowlist
          pin on a driver can never quietly cover a clock leaking into
          the deterministic core — wall budgets belong to [bin/]. *)
  | Det_getenv
      (** Ambient environment-variable reads — configuration that does
          not appear in any transcript or seed, so two runs of "the same"
          command can diverge. Thread flags explicitly instead. *)
  | Det_hashtbl_order
      (** Stdlib [Hashtbl] iteration in a module whose output reaches an
          artifact or transcript. *)
  | Det_float_format
      (** Float formatting outside [Harness.Json]'s deterministic
          emitter. *)
  | Hot_hashtbl  (** Stdlib [Hashtbl] in a module tagged hot. *)
  | Hot_polycompare
      (** Polymorphic [compare]/[=]/[hash] instantiated at a
          non-immediate type in a module tagged hot. *)
  | Hot_marshal  (** [Marshal] in a module tagged hot. *)
  | Allow_stale  (** An allowlist entry that matches no finding. *)
  | Allow_malformed  (** An allowlist line that does not parse. *)

val all_rules : rule list

val rule_id : rule -> string
(** Stable kebab-case id used in output and in [lint.allow]. *)

val rule_of_id : string -> rule option

val suppressible : rule -> bool
(** Whether an allowlist entry may name this rule. *)

type t = {
  rule : rule;
  file : string;  (** workspace-relative source path *)
  line : int;
  site : string;  (** [Module.binding] path of the enclosing definition *)
  message : string;
}

val v : rule:rule -> file:string -> line:int -> site:string -> string -> t
val to_string : t -> string

val compare : t -> t -> int
(** Deterministic order: file, line, rule id, site, message. *)
