(** A minimal JSON tree, emitter, and parser — just enough for the
    benchmark harness's machine-readable artifacts ([BENCH_*.json]) and
    their validation, with no external dependencies.

    Emission is deterministic: object keys are written in the order given,
    floats through a fixed shortest-decimal formatter, so two runs that
    compute the same values produce byte-identical documents (the property
    the [--jobs] determinism guarantee is checked against). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?pretty:bool -> t -> string
(** Compact by default; [~pretty:true] puts each list element and object
    field on its own line (stable two-space indentation) so artifact diffs
    are line-oriented. Non-finite floats emit as [null]. *)

val to_file : ?pretty:bool -> string -> t -> unit
(** Write [to_string] plus a trailing newline to a file, atomically enough
    for our purposes (single [open]/[output]/[close]). *)

val of_string : string -> (t, string) result
(** Parse a complete JSON document; trailing garbage is an error. Numbers
    without [.], [e] or [E] parse as [Int], others as [Float]. *)

val of_file : string -> (t, string) result

val member : string -> t -> t option
(** Field lookup in an [Obj]; [None] on other constructors. *)
