type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Emission                                                            *)

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

(* [string_of_float] is deterministic but prints "1." for whole numbers,
   which is not valid JSON; non-finite values have no JSON spelling at
   all and degrade to null. *)
let float_repr f =
  match Float.classify_float f with
  | FP_nan | FP_infinite -> "null"
  | _ ->
      let s = string_of_float f in
      if String.length s > 0 && s.[String.length s - 1] = '.' then s ^ "0"
      else s

let to_string ?(pretty = false) t =
  let buf = Buffer.create 1024 in
  let indent depth =
    Buffer.add_char buf '\n';
    for _ = 1 to depth do
      Buffer.add_string buf "  "
    done
  in
  let rec emit depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_repr f)
    | String s ->
        Buffer.add_char buf '"';
        escape buf s;
        Buffer.add_char buf '"'
    | List [] -> Buffer.add_string buf "[]"
    | List l ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char buf ',';
            if pretty then indent (depth + 1);
            emit (depth + 1) x)
          l;
        if pretty then indent depth;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (key, x) ->
            if i > 0 then Buffer.add_char buf ',';
            if pretty then indent (depth + 1);
            Buffer.add_char buf '"';
            escape buf key;
            Buffer.add_string buf "\":";
            if pretty then Buffer.add_char buf ' ';
            emit (depth + 1) x)
          fields;
        if pretty then indent depth;
        Buffer.add_char buf '}'
  in
  emit 0 t;
  Buffer.contents buf

let to_file ?pretty path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string ?pretty t);
      output_char oc '\n')

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)

exception Parse_error of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let error fmt =
    Printf.ksprintf (fun m -> raise (Parse_error (Printf.sprintf "at %d: %s" !pos m))) fmt
  in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> error "expected %c, found %c" c c'
    | None -> error "expected %c, found end of input" c
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else error "invalid literal"
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> error "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | None -> error "unterminated escape"
          | Some c ->
              advance ();
              (match c with
              | '"' -> Buffer.add_char buf '"'
              | '\\' -> Buffer.add_char buf '\\'
              | '/' -> Buffer.add_char buf '/'
              | 'b' -> Buffer.add_char buf '\b'
              | 'f' -> Buffer.add_char buf '\012'
              | 'n' -> Buffer.add_char buf '\n'
              | 'r' -> Buffer.add_char buf '\r'
              | 't' -> Buffer.add_char buf '\t'
              | 'u' ->
                  if !pos + 4 > n then error "truncated \\u escape";
                  let hex = String.sub s !pos 4 in
                  pos := !pos + 4;
                  let code =
                    try int_of_string ("0x" ^ hex)
                    with _ -> error "bad \\u escape %s" hex
                  in
                  (* Artifacts only escape control characters, so a raw
                     byte is enough for everything we ever emit. *)
                  if code < 0x80 then Buffer.add_char buf (Char.chr code)
                  else Buffer.add_string buf (Printf.sprintf "\\u%s" hex)
              | c -> error "bad escape \\%c" c);
              loop ())
      | Some c ->
          advance ();
          Buffer.add_char buf c;
          loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    let lit = String.sub s start (!pos - start) in
    let is_float = String.exists (fun c -> c = '.' || c = 'e' || c = 'E') lit in
    if is_float then
      match float_of_string_opt lit with
      | Some f -> Float f
      | None -> error "bad number %s" lit
    else
      match int_of_string_opt lit with
      | Some i -> Int i
      | None -> error "bad number %s" lit
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> error "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec fields acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields ((key, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((key, v) :: acc)
            | _ -> error "expected , or } in object"
          in
          Obj (fields [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> error "expected , or ] in array"
          in
          List (elements [])
        end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> error "unexpected character %c" c
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then error "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error m -> Error m

let of_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | contents -> of_string (String.trim contents)
  | exception Sys_error m -> Error m

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None
