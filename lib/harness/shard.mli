(** Deterministic sharded worlds: many simulated machines ("nodes")
    advancing in parallel on host domains, interacting only through
    epoch-quantized batches of cross-shard events.

    A {e world} is an array of nodes, each its own {!Ccsim.Machine} (own
    cores, stats, observation stream, physical memory) hosting its own
    address spaces. Nodes simulate independently up to a virtual-time
    horizon (one {e epoch}); at the epoch barrier the engine gathers
    every node's outbox of cross-shard events — remote IPI shootdowns
    ({!Ccsim.Ipi.remote}), shared-frame refcount flushes, fork/reap
    messages — sorts the batch into the canonical (send time, source
    node, sequence) order, delivers it, and advances the horizon.

    The load-bearing property: cross-shard sends are {e always} buffered
    into the epoch batch, never delivered immediately, even when the
    whole world runs on one domain. World semantics are therefore a
    function of the node topology and epoch length only — the shard
    width [~shards] (how many host domains execute the per-node run
    loops) is a pure execution mapping, and every artifact derived from
    a world is byte-identical at any width. The golden tests pin this at
    widths 1, 2, and 4.

    Determinism rules enforced around this module:
    - A node's state may only be mutated by its own run loop, or by the
      engine's {!exchange} at a barrier. The simlint rule
      [ds-cross-shard] statically flags the delivery endpoints
      ({!Ccsim.Machine.deliver_interrupt}, {!Ccsim.Channel.post},
      {!Ccsim.Core.interrupt}) outside this engine.
    - Message handlers run at the barrier, in canonical batch order, on
      the coordinating worker; they may mutate their own node and send
      further events (delivered one epoch later). *)

type t
type node

type delivery = {
  d_epoch : int;  (** epoch in which the event was delivered *)
  d_src : int;
  d_dst : int;
  d_sent : int;  (** sender-side virtual send time *)
  d_time : int;  (** delivery time: the epoch-boundary virtual time *)
  d_payload : Ccsim.Machine.xpayload;
}

val create : ?keep_log:bool -> epoch:int -> Ccsim.Params.t list -> t
(** One machine per params entry, node ids in list order, each with its
    uplink installed. [epoch] is the barrier period in simulated cycles —
    cross-shard latency is quantized up to the next boundary, so pick it
    comparable to (or above) the modeled IPI delivery latency.
    [keep_log] records every delivery for tests ({!log}). *)

val nodes : t -> int
val node : t -> int -> node
val machine : node -> Ccsim.Machine.t
val node_id : node -> int

val on_message : node ->
  (time:int -> src:int -> Ccsim.Machine.xpayload -> unit) -> unit
(** Install the node's handler for [Xrc]/[Xmsg] payloads ([Xshootdown]
    is delivered by the engine itself). Called at epoch barriers in
    canonical batch order; [time] is the boundary's virtual time. Events
    arriving on a node with no handler are counted in {!dropped}. *)

val post : node -> 'a Ccsim.Channel.t -> 'a -> time:int -> unit
(** For use inside an {!on_message} handler: hand a message to one of
    the node's own workload channels, ready at the delivery time. This is
    the sanctioned wrapper around {!Ccsim.Channel.post} — calling the
    raw endpoint outside the engine trips simlint's [ds-cross-shard]. *)

val run : ?clamp:bool -> ?shards:int -> ?stop:(t -> bool) -> t -> unit
(** Run the epoch loop until every node is idle and no events are
    pending (or [stop] answers true, checked once per barrier).
    [shards] host domains execute the per-node run loops, node [i] on
    domain [i mod shards] (clamped to the node count); [1] — the
    default — runs everything on the calling domain. Any value yields
    bit-identical simulation results. With [clamp] (the default) the
    execution width is additionally bounded by {!Pool.default_jobs} so a
    wide world never oversubscribes the host — pass [~clamp:false] to
    force the requested layout (tests exercising genuinely multi-domain
    execution on small hosts). *)

val exchange : t -> time:int -> unit
(** Deliver the buffered batch at virtual time [time] and leave the
    epoch counter untouched: the manual barrier for op-driven drivers
    (the sharded fuzzer) that advance nodes themselves. {!run} calls
    this internally at each boundary. *)

val epoch : t -> int
(** Completed epochs. *)

val epoch_cycles : t -> int

val pending : t -> bool
(** Some node has buffered, undelivered cross-shard events. *)

val world_idle : t -> bool
(** Every node's machine is idle ({!Ccsim.Machine.idle}). *)

val sent : t -> int
(** Cross-shard events gathered into batches so far. *)

val delivered : t -> int
(** Events actually delivered (shootdowns + handled messages). *)

val dropped : t -> int
(** [Xrc]/[Xmsg] events that arrived on a node without a handler. *)

val log : t -> delivery list
(** Delivery log in delivery order; empty unless [~keep_log:true]. *)

val total_stats : t -> Ccsim.Stats.t
(** Fresh accumulator: every node's counters summed in node order. *)

val elapsed : t -> int
(** Largest node-machine elapsed time. *)
