type 'a job = { name : string; run : unit -> 'a }

let job ~name run = { name; run }

exception Job_failed of string * exn

let default_jobs ?(per_job = 1) () =
  max 1 (Domain.recommended_domain_count () / max 1 per_job)

let clamp_jobs ?(per_job = 1) jobs =
  max 1 (min jobs (default_jobs ~per_job ()))

(* Each result slot is written by exactly one worker (slots are claimed
   through the atomic cursor), and [Domain.join] publishes those writes to
   the collecting domain, so the plain array needs no further
   synchronization. *)
let run ?jobs js =
  let items = Array.of_list js in
  let n = Array.length items in
  let jobs =
    match jobs with Some j -> j | None -> default_jobs ()
  in
  let jobs = max 1 (min jobs n) in
  if jobs = 1 then
    List.map (fun j -> try j.run () with e -> raise (Job_failed (j.name, e))) js
  else begin
    let results = Array.make n None in
    let cursor = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add cursor 1 in
        if i < n then begin
          let r = try Ok (items.(i).run ()) with e -> Error e in
          results.(i) <- Some r;
          loop ()
        end
      in
      loop ()
    in
    let workers = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join workers;
    Array.to_list
      (Array.mapi
         (fun i r ->
           match r with
           | Some (Ok v) -> v
           | Some (Error e) -> raise (Job_failed (items.(i).name, e))
           | None -> assert false)
         results)
  end
