module Machine = Ccsim.Machine
module Stats = Ccsim.Stats
module Channel = Ccsim.Channel

type node = {
  id : int;
  machine : Machine.t;
  mutable outbox : (Machine.xevent * int) list;  (* newest first, with seq *)
  mutable seq : int;
  mutable handler : (time:int -> src:int -> Machine.xpayload -> unit) option;
}

type delivery = {
  d_epoch : int;
  d_src : int;
  d_dst : int;
  d_sent : int;
  d_time : int;
  d_payload : Machine.xpayload;
}

type t = {
  nodes : node array;
  epoch_cycles : int;
  mutable epoch : int;
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable log : delivery list;  (* newest first *)
  keep_log : bool;
}

let create ?(keep_log = false) ~epoch params_list =
  if epoch <= 0 then invalid_arg "Shard.create: epoch";
  if params_list = [] then invalid_arg "Shard.create: no nodes";
  let nodes =
    Array.of_list
      (List.mapi
         (fun id params ->
           {
             id;
             machine = Machine.create params;
             outbox = [];
             seq = 0;
             handler = None;
           })
         params_list)
  in
  Array.iter
    (fun nd ->
      Machine.set_uplink nd.machine ~node:nd.id (fun (ev : Machine.xevent) ->
          if ev.Machine.xdst < 0 || ev.Machine.xdst >= Array.length nodes then
            invalid_arg "Shard: event to unknown node";
          nd.outbox <- (ev, nd.seq) :: nd.outbox;
          nd.seq <- nd.seq + 1))
    nodes;
  {
    nodes;
    epoch_cycles = epoch;
    epoch = 0;
    sent = 0;
    delivered = 0;
    dropped = 0;
    log = [];
    keep_log;
  }

let nodes t = Array.length t.nodes
let node t i = t.nodes.(i)
let machine nd = nd.machine
let node_id nd = nd.id
let epoch t = t.epoch
let epoch_cycles t = t.epoch_cycles
let sent t = t.sent
let delivered t = t.delivered
let dropped t = t.dropped
let on_message nd fn = nd.handler <- Some fn
let log t = List.rev t.log

let pending t =
  Array.exists (fun nd -> nd.outbox <> []) t.nodes

let world_idle t =
  Array.for_all (fun nd -> Machine.idle nd.machine) t.nodes

(* Deliver every buffered cross-shard event sent before virtual time
   [time] (an epoch boundary), in the canonical (send time, source node,
   sequence) order. An event whose send time already overshot the
   boundary (a single workload step can run past the horizon) is held
   for the boundary of the epoch it was really sent in, so delivery is
   always quantized to the first boundary after the send. Batch content
   and order are thus a pure function of each node's own simulation —
   independent of how nodes are laid out over host domains. *)
let exchange t ~time =
  let batch = ref [] in
  Array.iter
    (fun nd ->
      let deliver, keep =
        List.partition
          (fun ((ev : Machine.xevent), _) -> ev.Machine.xsent < time)
          (List.rev nd.outbox)
      in
      List.iter (fun (ev, seq) -> batch := (ev, nd.id, seq) :: !batch) deliver;
      nd.outbox <- List.rev keep)
    t.nodes;
  let batch =
    List.sort
      (fun ((a : Machine.xevent), sa, qa) ((b : Machine.xevent), sb, qb) ->
        let c = Int.compare a.Machine.xsent b.Machine.xsent in
        if c <> 0 then c
        else
          let c = Int.compare sa sb in
          if c <> 0 then c else Int.compare qa qb)
      (List.rev !batch)
  in
  List.iter
    (fun ((ev : Machine.xevent), src, _seq) ->
      let dst = t.nodes.(ev.Machine.xdst) in
      t.sent <- t.sent + 1;
      (match ev.Machine.xpayload with
      | Machine.Xshootdown { core; handler } ->
          Machine.deliver_interrupt dst.machine ~core ~cycles:handler;
          t.delivered <- t.delivered + 1
      | Machine.Xrc _ | Machine.Xmsg _ -> (
          match dst.handler with
          | Some fn ->
              fn ~time ~src ev.Machine.xpayload;
              t.delivered <- t.delivered + 1
          | None -> t.dropped <- t.dropped + 1));
      if t.keep_log then
        t.log <-
          {
            d_epoch = t.epoch;
            d_src = src;
            d_dst = ev.Machine.xdst;
            d_sent = ev.Machine.xsent;
            d_time = time;
            d_payload = ev.Machine.xpayload;
          }
          :: t.log)
    batch

let post (_ : node) ch v ~time = Channel.post ch v ~ready:time

(* A reusable sense-reversing barrier: [await] blocks until all [total]
   participants arrive, then releases the round together. The mutex
   establishes the happens-before edges that make the coordinator's
   exchange (and its writes to t.epoch / the stop flag) visible to every
   worker in the next round. *)
type barrier = {
  mutex : Mutex.t;
  cond : Condition.t;
  total : int;
  mutable arrived : int;
  mutable phase : int;
}

let barrier total =
  { mutex = Mutex.create (); cond = Condition.create (); total; arrived = 0;
    phase = 0 }

let await b =
  Mutex.lock b.mutex;
  let phase = b.phase in
  b.arrived <- b.arrived + 1;
  if b.arrived = b.total then begin
    b.arrived <- 0;
    b.phase <- phase + 1;
    Condition.broadcast b.cond
  end
  else
    while b.phase = phase do
      Condition.wait b.cond b.mutex
    done;
  Mutex.unlock b.mutex

let run ?(clamp = true) ?(shards = 1) ?(stop = fun _ -> false) t =
  let n = Array.length t.nodes in
  let shards = max 1 (min shards n) in
  (* Oversubscribing host domains is never faster (on a small host the
     stop-the-world GC pauses serialize the time-sliced domains), so by
     default the execution width is additionally clamped to the host's
     useful parallelism. Simulation results do not depend on the
     effective width, so the clamp is invisible to everything but the
     wall clock; tests pass [~clamp:false] to force genuinely
     multi-domain layouts. *)
  let shards = if clamp then min shards (Pool.default_jobs ()) else shards in
  let boundary () = (t.epoch + 1) * t.epoch_cycles in
  let finished () = (world_idle t && not (pending t)) || stop t in
  if shards = 1 then
    while not (finished ()) do
      let horizon = boundary () in
      Array.iter
        (fun nd -> Machine.run_for nd.machine ~cycles:horizon)
        t.nodes;
      exchange t ~time:horizon;
      t.epoch <- t.epoch + 1
    done
  else begin
    (* Worker [w] owns nodes with id mod shards = w; between the two
       barriers of a round only worker 0 touches shared world state. *)
    let b = barrier shards in
    let running = ref true in
    let worker w =
      while !running do
        let horizon = boundary () in
        Array.iter
          (fun nd ->
            if nd.id mod shards = w then
              Machine.run_for nd.machine ~cycles:horizon)
          t.nodes;
        await b;
        if w = 0 then begin
          exchange t ~time:horizon;
          t.epoch <- t.epoch + 1;
          if finished () then running := false
        end;
        await b
      done
    in
    if finished () then ()
    else begin
      let domains =
        Array.init (shards - 1) (fun k -> Domain.spawn (fun () -> worker (k + 1)))
      in
      worker 0;
      Array.iter Domain.join domains
    end
  end

let total_stats t =
  let acc = Stats.create () in
  Array.iter
    (fun nd -> Stats.add ~into:acc (Machine.stats nd.machine))
    t.nodes;
  acc

let elapsed t =
  Array.fold_left (fun m nd -> max m (Machine.elapsed nd.machine)) 0 t.nodes
