(** A Domains-backed worker pool for embarrassingly parallel benchmark
    sweeps.

    Every (system, core-count) simulation in the evaluation is independent
    and deterministic, so the harness can run them on however many host
    cores are available without changing a single result. A sweep is
    expressed as a list of {!job}s — [(name, thunk)] pairs producing one
    result row each — and {!run} returns the rows {e in submission order}
    regardless of completion order, so tables and JSON artifacts are
    byte-identical for any [~jobs].

    Jobs must not print and must not share mutable state (each builds its
    own simulated machine); the process-global id counters in {!Ccsim.Obs}
    and {!Refcnt.Refcache} are atomic precisely so concurrent jobs cannot
    corrupt each other's event streams. *)

type 'a job = { name : string; run : unit -> 'a }

val job : name:string -> (unit -> 'a) -> 'a job

exception Job_failed of string * exn
(** Raised by {!run} when a job raises: carries the job's name and the
    original exception. The first failing job in submission order wins. *)

val default_jobs : ?per_job:int -> unit -> int
(** The host's useful parallelism for a sweep whose every job itself
    spawns [per_job] domains (a sharded world runs one domain per shard):
    [Domain.recommended_domain_count () / per_job], at least 1. The
    default [per_job = 1] is the legacy behaviour —
    [Domain.recommended_domain_count ()] itself. *)

val clamp_jobs : ?per_job:int -> int -> int
(** [clamp_jobs ~per_job j] bounds an explicitly requested [--jobs j] so
    that [j * per_job] worker domains never oversubscribe the host:
    the result is [min j (default_jobs ~per_job ())], at least 1. Drivers
    combining [--jobs] with [--shards] route the requested value through
    this instead of spawning J×S domains. *)

val run : ?jobs:int -> 'a job list -> 'a list
(** [run ~jobs js] executes every job and returns their results in the
    order the jobs were given. [jobs <= 1] (or a single-job list) runs
    everything serially in the calling domain — exactly the pre-pool
    behaviour; larger values spawn [jobs - 1] worker domains (the caller
    participates as the last worker) pulling jobs off a shared atomic
    cursor. [jobs] defaults to {!default_jobs}, and is clamped to the
    number of jobs. *)
