open Ccsim
module Refcache = Refcnt.Refcache

type 'v slot = Empty | Folded of 'v | Child of 'v node

and 'v node = {
  level : int;  (* 0 = leaf *)
  base : int;  (* first vpn covered by this node *)
  slots : 'v slot array;
  lines : Line.t array;  (* slot i lives on line (i / slots_per_line) *)
  locks : Lock.t array;  (* the per-slot lock bit, on the slot's line *)
  obj : Refcache.obj;  (* used-slot count (plus traversal pins) *)
  weak : Refcache.weakref;
  mutable parent : ('v node * int) option;
  mutable dead : bool;
}

(* How ranges are locked. [Embedded] is the paper's design: per-slot lock
   bits walked by [lock_range], optionally with DragonFly-style
   partitioning of huge folds. [External] delegates the whole range to a
   pluggable backend ({!Locks.Range_lock}) and walks the tree lock-free
   under its protection. *)
type backend =
  | Embedded of { partition : int option }
  | External of Locks.Range_lock.t

type 'v t = {
  rc : Refcache.t;
  fanout : int;
  levels : int;
  collapse : bool;
  backend : backend;
  pages_per_slot : int array;  (* indexed by level: fanout^level *)
  mutable root : 'v node option;  (* None only while [create] runs *)
  mutable nodes : int;
}

let root t =
  match t.root with
  | Some node -> node
  | None -> invalid_arg "Radix: tree not initialized"


type 'v locked = {
  lk_lo : int;
  lk_hi : int;
  mutable spans : ('v node * int * int) list;
  mutable pins : 'v node list;
  mutable ext : Locks.Range_lock.handle option;  (* [External] backends *)
}

(* Interior slots are pointer-sized, eight per 64-byte line (false sharing
   between neighbouring slots is real and modeled). Leaf slots hold the
   per-page mapping metadata inline (~40-64 bytes in sv6, Figure 3), so
   each leaf slot occupies its own line — page faults on adjacent pages
   do not share cache lines. *)
let slots_per_line level = if level = 0 then 1 else 8

let line_of node i = node.lines.(i / slots_per_line node.level)
let max_vpn t = t.pages_per_slot.(t.levels - 1) * t.fanout

let read_slot core node i =
  Line.read core (line_of node i);
  node.slots.(i)

(* Write a slot and maintain the node's used-slot count through Refcache. *)
let write_slot t core node i v =
  Line.write core (line_of node i);
  let old = node.slots.(i) in
  node.slots.(i) <- v;
  match (old, v) with
  | Empty, Empty -> ()
  | Empty, _ -> Refcache.inc t.rc core node.obj
  | _, Empty -> Refcache.dec t.rc core node.obj
  | _, _ -> ()

(* Collapse: called by Refcache when a node's count reaches a stable zero
   (only reachable when [collapse] is on — otherwise the permanent anchor
   reference keeps every node alive). Unlinks the node from its parent. *)
let on_node_free t core node =
  node.dead <- true;
  t.nodes <- t.nodes - 1;
  match node.parent with
  | None -> ()
  | Some (p, i) ->
      Lock.acquire core p.locks.(i);
      (match p.slots.(i) with
      | Child n when n == node -> write_slot t core p i Empty
      | Empty | Folded _ | Child _ -> ());
      Lock.release core p.locks.(i)

let alloc_node t (core : Core.t) ~level ~base ~content =
  let fanout = t.fanout in
  let spl = slots_per_line level in
  let nlines = (fanout + spl - 1) / spl in
  let lines =
    Array.init nlines (fun _ ->
        Line.create ~label:"radix:slot" core.Core.params core.Core.stats
          ~home_socket:core.Core.socket)
  in
  let used = match content with Empty -> 0 | Folded _ | Child _ -> fanout in
  let anchor = if t.collapse then 0 else 1 in
  let node_ref = ref None in
  let free c = match !node_ref with Some n -> on_node_free t c n | None -> () in
  let obj, weak =
    Refcache.make_weak_obj ~label:"radix:node" t.rc core
      ~init:(used + anchor) ~free
  in
  let node =
    {
      level;
      base;
      slots = Array.make fanout content;
      lines;
      locks = Array.init fanout (fun i -> Lock.create_on lines.(i / spl));
      obj;
      weak;
      parent = None;
      dead = false;
    }
  in
  node_ref := Some node;
  t.nodes <- t.nodes + 1;
  (* Allocating and initializing a node costs about a page of writes. *)
  Core.tick core core.Core.params.Params.page_zero;
  node

let create ?(bits = 9) ?(levels = 4) ?(collapse = false)
    ?(backend = Locks.Range_lock.Radix_embedded) ?partition machine rc core =
  if bits < 1 || bits > 9 then invalid_arg "Radix.create: bits";
  if levels < 1 then invalid_arg "Radix.create: levels";
  (match partition with
  | Some p when p < 1 -> invalid_arg "Radix.create: partition"
  | _ -> ());
  let backend =
    match Locks.Range_lock.create_external machine core backend with
    | None -> Embedded { partition }
    | Some rl ->
        if collapse then
          invalid_arg
            "Radix.create: external range-lock backends require \
             collapse=false (collapse unlinks nodes under per-slot locks)";
        if Option.is_some partition then
          invalid_arg
            "Radix.create: ~partition applies only to the embedded backend";
        External rl
  in
  let fanout = 1 lsl bits in
  let pages_per_slot =
    Array.init levels (fun l ->
        let rec pow acc k = if k = 0 then acc else pow (acc * fanout) (k - 1) in
        pow 1 l)
  in
  let t =
    {
      rc;
      fanout;
      levels;
      collapse;
      backend;
      pages_per_slot;
      root = None;
      nodes = 0;
    }
  in
  let root = alloc_node t core ~level:(levels - 1) ~base:0 ~content:Empty in
  (* The root must never be collapsed: give it a permanent reference even
     when collapsing is enabled. *)
  if collapse then Refcache.inc rc core root.obj;
  t.root <- Some root;
  t

(* Expand a locked interior slot one level: the child replicates the slot's
   folded content and is born with every slot locked by the expanding
   operation (the paper's lock-bit propagation). Under an external
   range-lock backend the tree carries no lock bits, so the child is born
   unlocked and no span is recorded. *)
let expand t core parent i content lk =
  assert (parent.level > 0);
  let span = t.pages_per_slot.(parent.level) in
  let child =
    alloc_node t core ~level:(parent.level - 1)
      ~base:(parent.base + (i * span))
      ~content
  in
  child.parent <- Some (parent, i);
  (match t.backend with
  | Embedded _ ->
      for j = 0 to t.fanout - 1 do
        Lock.acquire core child.locks.(j)
      done;
      lk.spans <- (child, 0, t.fanout - 1) :: lk.spans
  | External _ -> ());
  write_slot t core parent i (Child child);
  child

(* DragonFly's partitioning trick (their vm_map splits reservations above
   a 32 MB threshold): a huge folded run only partially covered by the
   range being locked is split one level before locking, so concurrent
   faults into one big mapping take locks on disjoint finer slots instead
   of serializing on the single covering slot. The parent slot lock is
   held only for the split itself; the caller then descends into the
   child. Refcounts match [expand]: the child is born with every slot
   folded (count [fanout] + anchor) and the parent slot's Folded->Child
   rewrite leaves its used count unchanged. *)
let split_fold t core parent i v =
  assert (parent.level > 0);
  let span = t.pages_per_slot.(parent.level) in
  let child =
    alloc_node t core ~level:(parent.level - 1)
      ~base:(parent.base + (i * span))
      ~content:(Folded v)
  in
  child.parent <- Some (parent, i);
  write_slot t core parent i (Child child)

let slot_bounds t node i =
  let span = t.pages_per_slot.(node.level) in
  let lo = node.base + (i * span) in
  (lo, lo + span)

let clamp lo hi slot_lo slot_hi = (max lo slot_lo, min hi slot_hi)

let lock_range t core ~lo ~hi =
  if not (0 <= lo && lo < hi && hi <= max_vpn t) then
    invalid_arg "Radix.lock_range: bad range";
  let lk = { lk_lo = lo; lk_hi = hi; spans = []; pins = []; ext = None } in
  match t.backend with
  | External rl ->
      lk.ext <- Some (Locks.Range_lock.acquire core rl ~lo ~hi);
      lk
  | Embedded { partition } ->
      let rec go node lo hi =
        let span = t.pages_per_slot.(node.level) in
        let first = (lo - node.base) / span in
        let last = (hi - 1 - node.base) / span in
        if node.level = 0 then begin
          for i = first to last do
            Lock.acquire core node.locks.(i)
          done;
          lk.spans <- (node, first, last) :: lk.spans
        end
        else
          let rec do_slot i =
            let slot_lo, slot_hi = slot_bounds t node i in
            match read_slot core node i with
            | Child n -> (
                match Refcache.tryget t.rc core n.weak with
                | Some _ ->
                    lk.pins <- n :: lk.pins;
                    let l, h = clamp lo hi slot_lo slot_hi in
                    go n l h
                | None ->
                    (* The child was collapsed under us; clean up, retry. *)
                    Lock.acquire core node.locks.(i);
                    (match node.slots.(i) with
                    | Child n' when n'.dead -> write_slot t core node i Empty
                    | Empty | Folded _ | Child _ -> ());
                    Lock.release core node.locks.(i);
                    do_slot i)
            | Folded _
              when (match partition with
                   | Some p -> span > p && not (lo <= slot_lo && slot_hi <= hi)
                   | None -> false) ->
                (* Partitioning: split the huge fold rather than lock it
                   whole. Taking the slot lock briefly serializes racing
                   splitters of this one slot; after the split both descend
                   into disjoint parts of the child. *)
                Lock.acquire core node.locks.(i);
                (match node.slots.(i) with
                | Folded v' -> split_fold t core node i v'
                | Empty | Child _ -> ());
                Lock.release core node.locks.(i);
                do_slot i
            | Empty | Folded _ ->
                (* Lock at interior granularity; expansion, if needed,
                   happens later under this lock. *)
                Lock.acquire core node.locks.(i);
                lk.spans <- (node, i, i) :: lk.spans
          in
          for i = first to last do
            do_slot i
          done
      in
      go (root t) lo hi;
      lk

let unlock_range ?(dead = false) t core lk =
  (* Spans are prepended as they are locked, so walking the list releases
     in reverse acquisition order; releasing each span back-to-front makes
     the whole sequence LIFO (and keeps the checker's held-lock stack pops
     at the top instead of scanning). [dead] marks a reap-path release —
     the owner died holding the range ({!Radixvm.reap}); external backends
     count those separately. *)
  List.iter
    (fun (node, i0, i1) ->
      for i = i1 downto i0 do
        Lock.release core node.locks.(i)
      done)
    lk.spans;
  List.iter (fun node -> Refcache.dec t.rc core node.obj) lk.pins;
  (match lk.ext with
  | None -> ()
  | Some h ->
      (match t.backend with
      | External rl ->
          if dead then Locks.Range_lock.release_dead core rl h
          else Locks.Range_lock.release core rl h
      | Embedded _ -> assert false);
      lk.ext <- None);
  lk.spans <- [];
  lk.pins <- []

let check_in_range lk ~lo ~hi op =
  if lo < lk.lk_lo || hi > lk.lk_hi then
    invalid_arg (op ^ ": outside the locked range")

let fill_range t core lk v =
  let lo = lk.lk_lo and hi = lk.lk_hi in
  let rec fill node lo hi =
    let span = t.pages_per_slot.(node.level) in
    let first = (lo - node.base) / span in
    let last = (hi - 1 - node.base) / span in
    for i = first to last do
      let slot_lo, slot_hi = slot_bounds t node i in
      let full = lo <= slot_lo && slot_hi <= hi in
      if node.level = 0 then begin
        (match node.slots.(i) with
        | Empty -> ()
        | Folded _ | Child _ -> invalid_arg "Radix.fill_range: page mapped");
        write_slot t core node i (Folded v)
      end
      else
        match read_slot core node i with
        | Child n ->
            let l, h = clamp lo hi slot_lo slot_hi in
            fill n l h
        | Folded _ -> invalid_arg "Radix.fill_range: range mapped"
        | Empty ->
            if full then write_slot t core node i (Folded v)
            else begin
              let child = expand t core node i Empty lk in
              let l, h = clamp lo hi slot_lo slot_hi in
              fill child l h
            end
    done
  in
  fill (root t) lo hi

let clear_range t core lk =
  let lo = lk.lk_lo and hi = lk.lk_hi in
  let acc = ref [] in
  let rec clear node lo hi =
    let span = t.pages_per_slot.(node.level) in
    let first = (lo - node.base) / span in
    let last = (hi - 1 - node.base) / span in
    for i = first to last do
      let slot_lo, slot_hi = slot_bounds t node i in
      let full = lo <= slot_lo && slot_hi <= hi in
      if node.level = 0 then (
        match read_slot core node i with
        | Empty -> ()
        | Folded v ->
            acc := (node.base + i, 1, v) :: !acc;
            write_slot t core node i Empty
        | Child _ -> assert false)
      else
        match read_slot core node i with
        | Empty -> ()
        | Child n ->
            let l, h = clamp lo hi slot_lo slot_hi in
            clear n l h
        | Folded v ->
            if full then begin
              acc := (slot_lo, span, v) :: !acc;
              write_slot t core node i Empty
            end
            else begin
              (* Partially unmapping a folded run: expand so the surviving
                 part keeps its mapping. *)
              let child = expand t core node i (Folded v) lk in
              let l, h = clamp lo hi slot_lo slot_hi in
              clear child l h
            end
    done
  in
  clear (root t) lo hi;
  List.rev !acc

let update_range t core lk ~f =
  let lo = lk.lk_lo and hi = lk.lk_hi in
  let rec update node lo hi =
    let span = t.pages_per_slot.(node.level) in
    let first = (lo - node.base) / span in
    let last = (hi - 1 - node.base) / span in
    for i = first to last do
      let slot_lo, slot_hi = slot_bounds t node i in
      let full = lo <= slot_lo && slot_hi <= hi in
      if node.level = 0 then (
        match read_slot core node i with
        | Empty -> ()
        | Folded v -> write_slot t core node i (Folded (f v))
        | Child _ -> assert false)
      else
        match read_slot core node i with
        | Empty -> ()
        | Child n ->
            let l, h = clamp lo hi slot_lo slot_hi in
            update n l h
        | Folded v ->
            if full then write_slot t core node i (Folded (f v))
            else begin
              let child = expand t core node i (Folded v) lk in
              let l, h = clamp lo hi slot_lo slot_hi in
              update child l h
            end
    done
  in
  update (root t) lo hi

let get_page t core lk vpn =
  check_in_range lk ~lo:vpn ~hi:(vpn + 1) "Radix.get_page";
  let rec get node =
    let span = t.pages_per_slot.(node.level) in
    let i = (vpn - node.base) / span in
    match read_slot core node i with
    | Empty -> None
    | Folded v -> Some v
    | Child n -> get n
  in
  get (root t)

let set_page t core lk vpn v =
  check_in_range lk ~lo:vpn ~hi:(vpn + 1) "Radix.set_page";
  let rec set node =
    let span = t.pages_per_slot.(node.level) in
    let i = (vpn - node.base) / span in
    if node.level = 0 then write_slot t core node i (Folded v)
    else
      match read_slot core node i with
      | Child n -> set n
      | (Empty | Folded _) as content ->
          let child = expand t core node i content lk in
          set child
  in
  set (root t)

let lookup t core vpn =
  if vpn < 0 || vpn >= max_vpn t then invalid_arg "Radix.lookup";
  let rec look node =
    let span = t.pages_per_slot.(node.level) in
    let i = (vpn - node.base) / span in
    match read_slot core node i with
    | Empty -> None
    | Folded v -> Some v
    | Child n -> (
        match Refcache.tryget t.rc core n.weak with
        | Some _ ->
            let r = look n in
            Refcache.dec t.rc core n.obj;
            r
        | None -> None)
  in
  look (root t)

let node_count t = t.nodes

let approx_bytes t =
  (* slots + lock bits + header, per node *)
  let node_bytes = (t.fanout * 8) + 64 in
  t.nodes * node_bytes

let peek t vpn =
  let rec look node =
    let span = t.pages_per_slot.(node.level) in
    let i = (vpn - node.base) / span in
    match node.slots.(i) with
    | Empty -> None
    | Folded v -> Some v
    | Child n -> look n
  in
  if vpn < 0 || vpn >= max_vpn t then None else look (root t)

let fold_mapped t ~init ~f =
  let rec walk node acc =
    let span = t.pages_per_slot.(node.level) in
    let acc = ref acc in
    for i = 0 to t.fanout - 1 do
      match node.slots.(i) with
      | Empty -> ()
      | Child n -> acc := walk n !acc
      | Folded v ->
          let base = node.base + (i * span) in
          for p = base to base + span - 1 do
            acc := f !acc p v
          done
    done;
    !acc
  in
  walk (root t) init

let check_invariants t =
  let fail fmt = Format.kasprintf failwith fmt in
  let rec walk node =
    if node.dead then fail "live tree references dead node at %d" node.base;
    let used = ref 0 in
    Array.iteri
      (fun i s ->
        match s with
        | Empty -> ()
        | Folded _ -> incr used
        | Child n ->
            incr used;
            if node.level = 0 then fail "leaf node has a child slot";
            if n.level <> node.level - 1 then fail "child level mismatch";
            let span = t.pages_per_slot.(node.level) in
            if n.base <> node.base + (i * span) then fail "child base mismatch";
            (match n.parent with
            | Some (p, j) when p == node && j = i -> ()
            | _ -> fail "child parent link mismatch");
            walk n)
      node.slots;
    let anchor =
      if node == root t then 1 else if t.collapse then 0 else 1
    in
    let expected = !used + anchor in
    let actual = Refcache.true_count t.rc node.obj in
    if actual <> expected then
      fail "node at %d (level %d): used=%d anchor=%d but true count=%d"
        node.base node.level !used anchor actual
  in
  walk (root t)
