(** The compressed radix tree of mapping metadata (section 3.2).

    A fixed-depth radix tree indexed by virtual page number, like a
    hardware page table: by default four levels of 9 bits each (36-bit
    VPNs, 4 KB pages). Each node slot is [Empty], a [Folded] value standing
    for every page in the slot's subtree, or a link to a child node. Any
    subtree whose pages would all carry the same value is folded into a
    single slot, so vast unused ranges cost nothing and large uniform
    mappings are created in O(levels) writes.

    Concurrency follows the paper's plan exactly:
    - every slot carries a lock bit; operations lock the slots covering
      their range from left to right, so operations on overlapping ranges
      serialize at the leftmost overlapping page while operations on
      disjoint ranges touch disjoint cache lines (8 slots per line, so
      false sharing at range edges is modeled too);
    - locking an unexpanded region locks the covering interior slot;
      expansion (driven by writes that need finer granularity) creates a
      child whose slots are all locked by the expanding operation and whose
      contents replicate the folded value;
    - node liveness is tracked with Refcache: each node's count is its
      number of used slots plus transient traversal pins taken through the
      parent's weak reference ({!Refcache.tryget}), so an emptied node is
      reclaimed only after two quiescent epochs and can be revived in
      between. Collapsing (unlinking emptied nodes) is implemented behind
      [~collapse]; the paper's prototype ran with it off, and that is the
      default.

    Values are shared when folded: callers must treat a value read from the
    tree as immutable until they have replaced the page's slot with a fresh
    record ({!set_page}); after that the record is page-private and may be
    mutated in place. This is how the VM layer gives every page its own
    mapping metadata, as the paper prescribes.

    One deviation from the paper's locking fine print: after expanding a
    locked interior slot we keep the parent slot locked for the rest of the
    operation instead of handing the lock off to the child's slots and
    releasing the parent. This is strictly more conservative (it can only
    serialize racing operations that target the same expanding subtree,
    which the paper serializes anyway) and keeps unlock bookkeeping
    simple. *)

type 'v t

type 'v locked
(** A held range lock, returned by {!lock_range}. *)

val create :
  ?bits:int -> ?levels:int -> ?collapse:bool ->
  ?backend:Locks.Range_lock.kind -> ?partition:int ->
  Ccsim.Machine.t -> Refcnt.Refcache.t -> Ccsim.Core.t -> 'v t
(** [create machine rc core] builds an empty tree whose root is allocated
    by [core]. [bits] is the index width per level (default 9), [levels]
    the depth (default 4); the tree covers VPNs [0, 2^(bits*levels)).

    [backend] selects how {!lock_range} acquires (default
    [Radix_embedded], the paper's per-slot lock bits; [List_based] and
    [Global] delegate to {!Locks.Range_lock} and walk the tree lock-free
    under the external lock — these require [collapse = false]).

    [partition] (embedded backend only) enables DragonFly-style
    partitioning: a folded run whose slot spans more than [partition]
    pages and is only partially covered by the range being locked is
    split one level before locking, so concurrent faults into one huge
    mapping lock disjoint slots instead of serializing on the covering
    slot. [None] (the default) reproduces the paper's behavior exactly. *)

val max_vpn : 'v t -> int
(** One past the largest representable VPN. *)

val lock_range : 'v t -> Ccsim.Core.t -> lo:int -> hi:int -> 'v locked
(** Lock [lo, hi) (VPNs, [lo < hi]), left to right. Unexpanded subranges
    are locked at interior-slot granularity. *)

val unlock_range : ?dead:bool -> 'v t -> Ccsim.Core.t -> 'v locked -> unit
(** Release a held range. [~dead:true] marks a reap-path release — the
    owning process died holding the range and {!Radixvm.reap} is freeing
    it on the dead core's behalf; external backends count such releases
    ({!Locks.Range_lock.reaped}). Default [false]. *)

val fill_range : 'v t -> Ccsim.Core.t -> 'v locked -> 'v -> unit
(** Set every page in the locked range to the (shared, folded) value.
    Requires the range to contain no mapped pages — the VM layer unmaps
    first ({!clear_range}), preserving munmap's TLB invariants. *)

val clear_range :
  'v t -> Ccsim.Core.t -> 'v locked -> (int * int * 'v) list
(** Unmap every page in the locked range. Returns the removed runs as
    [(first_vpn, page_count, value)] triples in ascending order — a folded
    run comes back as one triple, per-page entries as single-page runs. *)

val update_range : 'v t -> Ccsim.Core.t -> 'v locked -> f:('v -> 'v) -> unit
(** Replace every mapped page's value in the locked range: folded slots
    are rewritten in one slot write (with [f] applied once per slot),
    per-page slots individually. Partially covered folds are expanded
    first. Used by mprotect-style operations that transform metadata
    without unmapping. *)

val get_page : 'v t -> Ccsim.Core.t -> 'v locked -> int -> 'v option
(** The value covering one page of the locked range (folded or private). *)

val set_page : 'v t -> Ccsim.Core.t -> 'v locked -> int -> 'v -> unit
(** Give one page of the locked range its own value, expanding any folds
    down to the leaf so the page's slot is private. *)

val lookup : 'v t -> Ccsim.Core.t -> int -> 'v option
(** Lockless point query (the paper's lookup benchmark, Figure 7): charged
    reads down the tree, pinning nodes through their weak references. *)

val node_count : 'v t -> int
(** Allocated nodes (root included) — the Table 2 space metric. *)

val approx_bytes : 'v t -> int
(** Modeled tree memory: nodes times node size. *)

(** {2 Test support (uncharged)} *)

val peek : 'v t -> int -> 'v option
(** Uncharged lookup for oracles. *)

val fold_mapped : 'v t -> init:'a -> f:('a -> int -> 'v -> 'a) -> 'a
(** Uncharged fold over every mapped page in VPN order. *)

val check_invariants : 'v t -> unit
(** Raise [Failure] if structural invariants are violated: slot-use counts
    match Refcache true counts, no child appears in a leaf, folded slots
    have no children, every node's base/level are consistent. *)
