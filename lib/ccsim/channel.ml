type 'a t = { q : ('a * int) Queue.t; line : Line.t }

let create (core : Core.t) =
  let line =
    Line.create ~label:"channel" core.Core.params core.Core.stats
      ~home_socket:core.Core.socket
  in
  { q = Queue.create (); line }

(* A channel is itself a synchronization primitive: its queue updates model
   atomic operations on the queue head, so they are tagged [Atomic] rather
   than racing plain accesses. *)
let send core t v =
  Line.write_atomic core t.line;
  Queue.push (v, Core.now core) t.q

let recv core t =
  Line.read_atomic core t.line;
  match Queue.peek_opt t.q with
  | None -> None
  | Some (v, ready) ->
      if ready > Core.now core then None
      else begin
        ignore (Queue.pop t.q);
        (* Taking the message dirties the queue's line. *)
        Line.write_atomic core t.line;
        Some v
      end

(* Barrier-side injection: the epoch-barrier engine is not a simulated
   core, so posting pays no line traffic here — the receiver pays the
   usual atomic read/write when it takes the message. *)
let post t v ~ready = Queue.push (v, ready) t.q

let length t = Queue.length t.q
