(** Open-addressed map over nonnegative int keys.

    A leaner replacement for [(int, 'a) Hashtbl.t] on simulator hot paths:
    no hashing call, no bucket allocation, no option boxing on lookup.
    Keys must be nonnegative (negative keys are rejected by [set] and
    treated as absent elsewhere). *)

type 'a t

val create : ?size_hint:int -> 'a -> 'a t
(** [create dummy] is an empty table. [dummy] seeds the value array and is
    never returned by lookups. [size_hint] is the expected entry count. *)

val set : 'a t -> int -> 'a -> unit
(** Insert or replace. *)

val find_default : 'a t -> int -> 'a -> 'a
(** [find_default t k d] is the binding of [k], or [d] when absent.
    Allocation-free. *)

val mem : 'a t -> int -> bool

val remove : 'a t -> int -> unit
(** No-op when absent. *)

val length : 'a t -> int

val iter : (int -> 'a -> unit) -> 'a t -> unit
(** Ascending slot order — arbitrary but deterministic for a given
    insertion history. *)

val fold : (int -> 'a -> 'b -> 'b) -> 'a t -> 'b -> 'b
