(** A simulated CPU core.

    A core is a clock plus identity: the scheduler in {!Machine} always runs
    the ready core with the smallest clock, and every simulated memory
    access, lock operation, or IPI advances the acting core's clock by its
    modeled cost. *)

type t = {
  id : int;
  socket : int;
  params : Params.t;
  stats : Stats.t;
  obs : Obs.t;  (** the machine's instrumentation stream (shared) *)
  mutable clock : int;  (** local time in cycles *)
  mutable pending_intr : int;
      (** interrupt-handler cycles charged by IPIs received while this core
          was logically behind; folded into [clock] at its next step *)
  rng : Random.State.t;  (** deterministic per-core randomness *)
  mutable fault : Fault.t option;
      (** the machine's fault-injection plan, if one is attached
          ({!Machine.set_fault}); consulted by {!Lock} and the VM layers'
          injection points *)
}

val create : ?obs:Obs.t -> Params.t -> Stats.t -> id:int -> t
(** [obs] defaults to a fresh (sink-less) stream; {!Machine.create} passes
    one shared stream to every core. *)

val tick : t -> int -> unit
(** [tick c n] advances [c]'s clock by [n] cycles ([n >= 0]). *)

val now : t -> int
(** Current local clock, after folding in any pending interrupt cost. *)

val interrupt : t -> cycles:int -> unit
(** Charge [cycles] of interrupt-handler time to this core: the cost is
    accumulated in [pending_intr] and folded into the clock at the core's
    next step, exactly as for a locally delivered IPI. This is a delivery
    endpoint — outside the simulator it may only be called by the
    epoch-barrier engine ({!Harness.Shard}); simlint's [ds-cross-shard]
    rule enforces that. *)

val pp : Format.formatter -> t -> unit
