(** Timestamped cross-core FIFO queues.

    Used by workloads that hand work between cores (e.g. the pipeline
    microbenchmark passing a mapped region to the next thread). A message
    carries its send time; a receiver cannot observe it earlier. Receiving
    is non-blocking — a workload step that finds the channel empty should
    call {!Machine.wait_hint} and retry on its next step. *)

type 'a t

val create : Core.t -> 'a t
val send : Core.t -> 'a t -> 'a -> unit
val recv : Core.t -> 'a t -> 'a option

val post : 'a t -> 'a -> ready:int -> unit
(** Inject a message with an explicit ready time and no sending core: no
    cache-line traffic is modeled on the posting side (the receiver pays
    the usual costs on {!recv}). A delivery endpoint reserved to the
    epoch-barrier engine ({!Harness.Shard}) for handing cross-shard
    messages to a destination node's workload at an epoch boundary;
    simlint's [ds-cross-shard] rule flags any other caller. *)

val length : 'a t -> int
