(** Instrumentation event stream for dynamic analysis over the simulator.

    One [Obs.t] per machine, shared by every core. When no sink is
    installed the hooks in {!Line}, {!Lock}, {!Rwlock}, {!Tlb}, and the
    higher layers cost one branch each ([active] is false and no event is
    allocated), so instrumentation is free for ordinary runs. A checker
    (see the [check] library) installs a sink with [set_sink] and receives
    every shared-memory access, lock transition, TLB fill/drop, unmap
    completion, and reference-count transition in simulated-time order —
    the scheduler runs one core at a time, so the stream is a legal
    interleaving of the run.

    Events carry integer identities plus the human label given at
    creation ([Line.create ~label], [Lock.create ~label], ...), so
    reports can name the owning subsystem ("radix:slot", "pt:shared",
    "linux:aslock") without the checker knowing any data-structure
    types. *)

(** How an access participates in the concurrency discipline:
    - [Plain] — an ordinary load/store; racing plain accesses are bugs.
    - [Atomic] — a modeled hardware atomic (cmpxchg, fetch-add, a
      lock-free free-list push). Pays full coherence cost but cannot
      race by itself.
    - [Sync] — internal traffic of a synchronization primitive (a failed
      [try_acquire]'s line write). Counts as cache-line movement only. *)
type kind = Plain | Atomic | Sync

type event =
  | Read of { core : int; line : int; label : string; kind : kind }
  | Write of { core : int; line : int; label : string; kind : kind }
  | Acquire of { core : int; lock : int; line : int; label : string; rd : bool }
      (** [rd] marks a read-side (shared-mode) acquisition of an rwlock. *)
  | Release of { core : int; lock : int; line : int; label : string; rd : bool }
  | Tlb_fill of { core : int; asid : int; vpn : int }
      (** [asid] names the address space (from {!fresh_asid}): each MMU has
          its own per-core TLB instances, and two address spaces caching
          the same vpn on the same core are unrelated translations. *)
  | Tlb_drop of { core : int; asid : int; vpn : int }
  | Unmap_done of { core : int; asid : int; lo : int; hi : int }
      (** A VM implementation finished removing \[lo,hi) from address
          space [asid] — including its shootdown round. Emitted by
          [Radixvm] and [Region_vm]; the TLB checker validates that no
          core still caches a translation for the range in that space. *)
  | Rc_make of { core : int; oid : int; init : int; label : string }
  | Rc_inc of { core : int; oid : int; label : string }
  | Rc_dec of { core : int; oid : int; label : string }
  | Rc_free of { core : int; oid : int; label : string }

type t

val create : unit -> t

val set_sink : t -> (event -> unit) option -> unit
(** Install (or remove) the single event consumer. *)

val active : t -> bool
(** A sink is installed and emission is not suppressed — check this before
    allocating an event. *)

val emit : t -> event -> unit

val quiet_incr : t -> unit
(** Suppress emission (nestable). {!Lock} and {!Rwlock} wrap their internal
    line writes with this so one logical lock operation produces one
    [Acquire]/[Release] event rather than a spurious data [Write]. *)

val quiet_decr : t -> unit

val fresh_line_id : unit -> int
val fresh_lock_id : unit -> int

val fresh_asid : unit -> int
(** A process-unique address-space id for TLB events; one per MMU. *)

val pp_event : Format.formatter -> event -> unit
