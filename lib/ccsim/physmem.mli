(** Simulated physical memory: a frame allocator with per-core free lists.

    Frames are small integers. Each frame has a home core (its first
    allocator); freeing returns it to the home core's free list, touching
    that list's cache line — so cross-core frees generate the coherence
    traffic the paper observes when the pipeline benchmark "returns freed
    pages to their home nodes". Allocation of a fresh or recycled frame
    charges the page-zeroing cost (the dominant per-iteration cache-miss
    source in section 5.3). *)

type t

exception Out_of_frames
(** Raised by {!alloc} when an attached fault plan's frame budget
    ({!Fault.set_frame_budget}) is exhausted. Never raised otherwise —
    without a budget, simulated memory is unbounded. *)

exception Double_free of int
(** Raised by {!free} for a frame that is not currently allocated: the
    payload is the frame number. (Freeing a frame twice would otherwise
    silently put it on the free list twice, so two later allocations
    would share it.) *)

val create : Params.t -> Stats.t -> t

val set_fault : t -> Fault.t option -> unit
(** Attach (or detach) the fault plan consulted by {!alloc}; installed by
    {!Machine.set_fault}. *)

val alloc : t -> Core.t -> int
(** Allocate (and zero) a frame for [core].
    @raise Out_of_frames when a fault plan's frame budget is exhausted. *)

val try_alloc : t -> Core.t -> int option
(** [alloc] returning [None] instead of raising {!Out_of_frames}. *)

val free : t -> Core.t -> int -> unit
(** Return a frame to its home core's free list.
    @raise Double_free if the frame is not currently allocated.
    @raise Invalid_argument if the frame was never allocated at all. *)

val is_live : t -> int -> bool
(** Is the frame currently allocated? (Uncharged; for tests.) *)

val live_frames : t -> int
(** Frames currently allocated (for leak tests and memory accounting). *)

val total_frames : t -> int
(** Frames ever created. *)

val set_content : t -> int -> int -> unit
(** [set_content t frame v] records a one-word summary of the frame's
    contents — enough to test copy-on-write and page-cache sharing
    end-to-end on real values. Access costs are charged by the VM layer's
    load/store paths, not here. *)

val get_content : t -> int -> int
(** The frame's content word (0 for a freshly allocated frame). *)
