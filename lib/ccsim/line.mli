(** Cache lines with a MESI-style directory and timed serialization.

    This is the heart of the simulator's cost model. Every shared datum in
    the simulated system lives on some line. An access by a core that
    already holds the line in a suitable state costs an L1 hit; any other
    access is a miss that (a) pays a distance-dependent transfer latency and
    (b) serializes at the line: concurrent missing cores queue behind each
    other through the line's [free_at] timestamp. A line written from many
    cores therefore bounds aggregate throughput at one transfer per latency
    — the scalability cliff the paper designs around — while a line private
    to one core costs an L1 hit forever. *)

type t

val create : ?label:string -> Params.t -> Stats.t -> home_socket:int -> t
(** A fresh line, present in no cache; its backing DRAM lives on
    [home_socket]. [label] names the owning subsystem in checker reports
    (e.g. ["radix:slot"]); it has no effect on the cost model. *)

val read : Core.t -> t -> unit
(** Charge [core] for a load from the line and update the directory. *)

val write : Core.t -> t -> unit
(** Charge [core] for a store to the line (invalidating other holders) and
    update the directory. *)

val read_atomic : Core.t -> t -> unit
(** Like {!read} but tagged [Atomic] in the instrumentation stream: part of
    a modeled hardware atomic, so excluded from race detection. Identical
    cost to {!read}. *)

val write_atomic : Core.t -> t -> unit
(** Like {!write} but tagged [Atomic] (cmpxchg, fetch-add, lock-free list
    push). Identical cost to {!write}. *)

val write_sync : Core.t -> t -> unit
(** Like {!write} but tagged [Sync]: internal traffic of a synchronization
    primitive (e.g. a failed [try_acquire]). Identical cost to {!write}. *)

val id : t -> int
(** Stable identity used to correlate instrumentation events. *)

val label : t -> string

val holder : t -> int option
(** Exclusive owner, if any (for tests). *)

val sharers : t -> int list
(** Cores holding the line in shared state (for tests). *)

val free_at : t -> int
(** Time the line next becomes available (for tests). *)
