type maint = { period : int; fn : Core.t -> unit; next : int array }

(* Cross-shard traffic (see Harness.Shard): a machine that is one node of
   a sharded world sends to remote nodes through its uplink, and the
   epoch-barrier engine delivers the batched events at the next epoch
   boundary. The payloads are deliberately tiny and integer-only so a
   canonical order over them is trivial. *)
type xpayload =
  | Xshootdown of { core : int; handler : int }
      (** interrupt [core] on the destination node, charging [handler]
          cycles (the IPI handler cost drawn on the sending node) *)
  | Xrc of { oid : int; delta : int }
      (** shared-frame refcount flush: apply [delta] to object [oid]'s
          ledger on its home node *)
  | Xmsg of { tag : int; a : int; b : int }
      (** workload-defined message (fork/reap requests and the like),
          interpreted by the destination node's handler *)

type xevent = { xdst : int; xsent : int; xpayload : xpayload }

type t = {
  params : Params.t;
  stats : Stats.t;
  obs : Obs.t;
  cores : Core.t array;
  physmem : Physmem.t;
  workloads : (unit -> bool) option array;
  mutable maints : maint list;
  maint_min : int array;
      (* per core: earliest pending maintenance time over [maints], or
         [max_int] when none are registered. The scheduler's inner loop
         reads this instead of folding the hook list, and the common
         "nothing due" case in [run_due_maint] is one integer compare. *)
  mutable ipi_free : int;
  mutable fault : Fault.t option;
  mutable node : int;
      (* this machine's node id when it is part of a sharded world
         (Harness.Shard); 0 for a standalone machine *)
  mutable uplink : (xevent -> unit) option;
      (* outbox hook installed by the shard engine: cross-shard sends are
         buffered here instead of delivered immediately *)
}

let create params =
  let stats = Stats.create () in
  let obs = Obs.create () in
  {
    params;
    stats;
    obs;
    cores =
      Array.init params.Params.ncores (fun id ->
          Core.create ~obs params stats ~id);
    physmem = Physmem.create params stats;
    workloads = Array.make params.Params.ncores None;
    maints = [];
    maint_min = Array.make params.Params.ncores max_int;
    ipi_free = 0;
    fault = None;
    node = 0;
    uplink = None;
  }

let set_fault t f =
  t.fault <- f;
  Array.iter (fun (c : Core.t) -> c.Core.fault <- f) t.cores;
  Physmem.set_fault t.physmem f

let fault t = t.fault
let params t = t.params
let stats t = t.stats
let obs t = t.obs
let physmem t = t.physmem
let ncores t = Array.length t.cores
let core t i = t.cores.(i)
let cores t = t.cores
let set_workload t i step = t.workloads.(i) <- Some step

let refresh_maint_min t i =
  let acc = ref max_int in
  List.iter (fun m -> if m.next.(i) < !acc then acc := m.next.(i)) t.maints;
  t.maint_min.(i) <- !acc

let add_maintenance t ~period fn =
  if period <= 0 then invalid_arg "Machine.add_maintenance";
  (* Stagger the first firing per core: real kernels run per-core
     maintenance off independent timers, and synchronizing every core's
     flush to the same instant would manufacture convoys on shared
     objects that do not exist on real hardware. *)
  let n = ncores t in
  let next =
    Array.init n (fun i -> period + (i * period / (4 * max 1 n)))
  in
  t.maints <- { period; fn; next } :: t.maints;
  for i = 0 to n - 1 do
    if next.(i) < t.maint_min.(i) then t.maint_min.(i) <- next.(i)
  done

let eff_clock (c : Core.t) = c.Core.clock + c.Core.pending_intr

(* Fire every maintenance hook due on [core] given its current clock. *)
let run_due_maint t (core : Core.t) =
  let i = core.Core.id in
  if Array.unsafe_get t.maint_min i <= eff_clock core then begin
    List.iter
      (fun m ->
        while m.next.(i) <= eff_clock core do
          m.fn core;
          m.next.(i) <- m.next.(i) + m.period
        done)
      t.maints;
    refresh_maint_min t i
  end

(* One scheduling decision: the next thing to run is either the step of the
   earliest active core, or an overdue maintenance event on an idle core
   (idle cores may not run ahead of every active core). *)
type pick = Step of int | Idle_maint of int * int | Nothing

(* One ascending pass with the same strict-< update the original
   two-pass scan used, so ties resolve to the identical (time, lowest
   core id) choice. The historical [m <= max_active_clock] gate on idle
   maintenance is implied: a candidate above every active clock can
   never beat the earliest active core, so it only needs enforcing when
   there is no active core at all — in which case the scheduler stops. *)
let pick_next t =
  let n = Array.length t.cores in
  let best_time = ref max_int in
  let best = ref Nothing in
  let any_active = ref false in
  for i = 0 to n - 1 do
    match Array.unsafe_get t.workloads i with
    | Some _ ->
        any_active := true;
        let c = Array.unsafe_get t.cores i in
        let e = c.Core.clock + c.Core.pending_intr in
        if e < !best_time then begin
          best_time := e;
          best := Step i
        end
    | None ->
        let m = Array.unsafe_get t.maint_min i in
        if m < !best_time then begin
          best_time := m;
          best := Idle_maint (i, m)
        end
  done;
  if not !any_active then Nothing else !best

let run_pick t = function
  | Nothing -> false
  | Step i ->
      let core = t.cores.(i) in
      run_due_maint t core;
      (match t.workloads.(i) with
      | Some step -> if not (step ()) then t.workloads.(i) <- None
      | None -> ());
      true
  | Idle_maint (i, time) ->
      let core = t.cores.(i) in
      core.Core.clock <- max core.Core.clock time;
      run_due_maint t core;
      true

let run t =
  let continue = ref true in
  while !continue do
    continue := run_pick t (pick_next t)
  done

let run_for t ~cycles =
  (* Stop once the earliest active core passes the horizon (workloads stay
     installed, so a later [run_for] with a larger horizon resumes). *)
  let continue = ref true in
  while !continue do
    match pick_next t with
    | Step i when eff_clock t.cores.(i) >= cycles -> continue := false
    | Nothing -> continue := false
    | pick -> continue := run_pick t pick
  done

let elapsed t =
  Array.fold_left (fun acc c -> max acc (eff_clock c)) 0 t.cores

let drain t ~cycles =
  let target = elapsed t + cycles in
  let continue = ref true in
  while !continue do
    (* Earliest maintenance event at or before [target], across all cores. *)
    let best = ref None in
    List.iter
      (fun m ->
        Array.iteri
          (fun i next ->
            if next <= target then
              match !best with
              | Some (_, _, bt) when bt <= next -> ()
              | _ -> best := Some (m, i, next))
          m.next)
      t.maints;
    match !best with
    | None -> continue := false
    | Some (m, i, time) ->
        let core = t.cores.(i) in
        core.Core.clock <- max core.Core.clock time;
        m.fn core;
        m.next.(i) <- m.next.(i) + m.period;
        refresh_maint_min t i
  done;
  Array.iter
    (fun (c : Core.t) -> c.Core.clock <- max c.Core.clock target)
    t.cores

let seconds t cycles = float_of_int cycles /. t.params.Params.clock_hz

let wait_hint t (core : Core.t) =
  let n = Array.length t.cores in
  let earliest_other = ref max_int in
  for i = 0 to n - 1 do
    if i <> core.Core.id then
      match Array.unsafe_get t.workloads i with
      | Some _ ->
          let c = Array.unsafe_get t.cores i in
          let e = c.Core.clock + c.Core.pending_intr in
          if e < !earliest_other then earliest_other := e
      | None -> ()
  done;
  (* Poll roughly every microsecond of simulated time: fine enough that
     cross-core events are observed promptly relative to phase lengths,
     coarse enough that waiting cores do not flood the scheduler with
     cycle-sized steps. *)
  let poll = core.Core.clock + (16 * t.params.Params.op_cost) in
  if !earliest_other = max_int then core.Core.clock <- poll
  else core.Core.clock <- max poll (!earliest_other + 1)

let ipi_free_at t = t.ipi_free
let set_ipi_free_at t v = t.ipi_free <- v

let idle t = Array.for_all Option.is_none t.workloads
let node t = t.node

let set_uplink t ~node fn =
  t.node <- node;
  t.uplink <- Some fn

let uplinked t = Option.is_some t.uplink

let uplink_send t ~dst ~sent payload =
  match t.uplink with
  | None -> invalid_arg "Machine.uplink_send: no uplink installed"
  | Some fn -> fn { xdst = dst; xsent = sent; xpayload = payload }

let deliver_interrupt t ~core ~cycles =
  let c = t.cores.(core) in
  Core.interrupt c ~cycles;
  (* The interrupt is accounted where it lands: the receiving node's
     stats count one IPI per delivered cross-shard shootdown (the sender
     counted the shootdown round and its targets at send time). *)
  t.stats.Stats.ipis <- t.stats.Stats.ipis + 1
