type maint = { period : int; fn : Core.t -> unit; next : int array }

type t = {
  params : Params.t;
  stats : Stats.t;
  obs : Obs.t;
  cores : Core.t array;
  physmem : Physmem.t;
  workloads : (unit -> bool) option array;
  mutable maints : maint list;
  mutable ipi_free : int;
  mutable fault : Fault.t option;
}

let create params =
  let stats = Stats.create () in
  let obs = Obs.create () in
  {
    params;
    stats;
    obs;
    cores =
      Array.init params.Params.ncores (fun id ->
          Core.create ~obs params stats ~id);
    physmem = Physmem.create params stats;
    workloads = Array.make params.Params.ncores None;
    maints = [];
    ipi_free = 0;
    fault = None;
  }

let set_fault t f =
  t.fault <- f;
  Array.iter (fun (c : Core.t) -> c.Core.fault <- f) t.cores;
  Physmem.set_fault t.physmem f

let fault t = t.fault
let params t = t.params
let stats t = t.stats
let obs t = t.obs
let physmem t = t.physmem
let ncores t = Array.length t.cores
let core t i = t.cores.(i)
let cores t = t.cores
let set_workload t i step = t.workloads.(i) <- Some step

let add_maintenance t ~period fn =
  if period <= 0 then invalid_arg "Machine.add_maintenance";
  (* Stagger the first firing per core: real kernels run per-core
     maintenance off independent timers, and synchronizing every core's
     flush to the same instant would manufacture convoys on shared
     objects that do not exist on real hardware. *)
  let n = ncores t in
  let next =
    Array.init n (fun i -> period + (i * period / (4 * max 1 n)))
  in
  t.maints <- { period; fn; next } :: t.maints

let eff_clock (c : Core.t) = c.Core.clock + c.Core.pending_intr

(* Fire every maintenance hook due on [core] given its current clock. *)
let run_due_maint t (core : Core.t) =
  List.iter
    (fun m ->
      while m.next.(core.Core.id) <= eff_clock core do
        m.fn core;
        m.next.(core.Core.id) <- m.next.(core.Core.id) + m.period
      done)
    t.maints

(* Earliest pending maintenance time for core [i], if any hooks exist. *)
let min_maint_time t i =
  List.fold_left
    (fun acc m ->
      match acc with
      | None -> Some m.next.(i)
      | Some v -> Some (min v m.next.(i)))
    None t.maints

let max_active_clock t =
  let acc = ref None in
  Array.iteri
    (fun i w ->
      match w with
      | Some _ ->
          let c = eff_clock t.cores.(i) in
          acc := Some (match !acc with None -> c | Some v -> max v c)
      | None -> ())
    t.workloads;
  !acc

(* One scheduling decision: the next thing to run is either the step of the
   earliest active core, or an overdue maintenance event on an idle core
   (idle cores may not run ahead of every active core). *)
type pick = Step of int | Idle_maint of int * int | Nothing

let pick_next t =
  match max_active_clock t with
  | None -> Nothing
  | Some horizon ->
      let best = ref Nothing and best_time = ref max_int in
      Array.iteri
        (fun i w ->
          match w with
          | Some _ ->
              let c = eff_clock t.cores.(i) in
              if c < !best_time then begin
                best := Step i;
                best_time := c
              end
          | None -> (
              match min_maint_time t i with
              | Some m when m <= horizon && m < !best_time ->
                  best := Idle_maint (i, m);
                  best_time := m
              | _ -> ()))
        t.workloads;
      !best

let run_pick t = function
  | Nothing -> false
  | Step i ->
      let core = t.cores.(i) in
      run_due_maint t core;
      (match t.workloads.(i) with
      | Some step -> if not (step ()) then t.workloads.(i) <- None
      | None -> ());
      true
  | Idle_maint (i, time) ->
      let core = t.cores.(i) in
      core.Core.clock <- max core.Core.clock time;
      run_due_maint t core;
      true

let run t =
  let continue = ref true in
  while !continue do
    continue := run_pick t (pick_next t)
  done

let run_for t ~cycles =
  (* Stop once the earliest active core passes the horizon (workloads stay
     installed, so a later [run_for] with a larger horizon resumes). *)
  let continue = ref true in
  while !continue do
    match pick_next t with
    | Step i when eff_clock t.cores.(i) >= cycles -> continue := false
    | Nothing -> continue := false
    | pick -> continue := run_pick t pick
  done

let elapsed t =
  Array.fold_left (fun acc c -> max acc (eff_clock c)) 0 t.cores

let drain t ~cycles =
  let target = elapsed t + cycles in
  let continue = ref true in
  while !continue do
    (* Earliest maintenance event at or before [target], across all cores. *)
    let best = ref None in
    List.iter
      (fun m ->
        Array.iteri
          (fun i next ->
            if next <= target then
              match !best with
              | Some (_, _, bt) when bt <= next -> ()
              | _ -> best := Some (m, i, next))
          m.next)
      t.maints;
    match !best with
    | None -> continue := false
    | Some (m, i, time) ->
        let core = t.cores.(i) in
        core.Core.clock <- max core.Core.clock time;
        m.fn core;
        m.next.(i) <- m.next.(i) + m.period
  done;
  Array.iter
    (fun (c : Core.t) -> c.Core.clock <- max c.Core.clock target)
    t.cores

let seconds t cycles = float_of_int cycles /. t.params.Params.clock_hz

let wait_hint t (core : Core.t) =
  let earliest_other = ref None in
  Array.iteri
    (fun i w ->
      if i <> core.Core.id && w <> None then
        let c = eff_clock t.cores.(i) in
        earliest_other :=
          Some (match !earliest_other with None -> c | Some v -> min v c))
    t.workloads;
  (* Poll roughly every microsecond of simulated time: fine enough that
     cross-core events are observed promptly relative to phase lengths,
     coarse enough that waiting cores do not flood the scheduler with
     cycle-sized steps. *)
  let poll = core.Core.clock + (16 * t.params.Params.op_cost) in
  match !earliest_other with
  | None -> core.Core.clock <- poll
  | Some other -> core.Core.clock <- max poll (other + 1)

let ipi_free_at t = t.ipi_free
let set_ipi_free_at t v = t.ipi_free <- v
