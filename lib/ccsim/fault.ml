type ipi_response = Prompt | Delayed of int | Stalled

exception Injected_abort of { op : string; point : string }
exception Injected_crash of { op : string; point : string }

type abort_rule = { a_op : string; a_point : string option; a_prob : float }

type t = {
  fseed : int;
  rng : Random.State.t;
  mutable budget : int option;
  ipi : ipi_response Int_table.t;  (* core -> response; absent = Prompt *)
  mutable lock_rules : (string * float) list;  (* label -> probability *)
  mutable abort_rules : abort_rule list;
  mutable crash_rules : abort_rule list;
  mutable suppress : int;  (* re-entrant suppression depth *)
  mutable broken : bool;
  mutable n_oom : int;
  mutable n_aborts : int;
  mutable n_crashes : int;
  mutable n_lock_timeouts : int;
  mutable n_ipi_delays : int;
  mutable n_ipi_abandoned : int;
}

let create ?(seed = 0) () =
  {
    fseed = seed;
    rng = Random.State.make [| 0xfa_017; seed |];
    budget = None;
    ipi = Int_table.create ~size_hint:8 Prompt;
    lock_rules = [];
    abort_rules = [];
    crash_rules = [];
    suppress = 0;
    broken = false;
    n_oom = 0;
    n_aborts = 0;
    n_crashes = 0;
    n_lock_timeouts = 0;
    n_ipi_delays = 0;
    n_ipi_abandoned = 0;
  }

let seed t = t.fseed

(* ------------------------------------------------------------------ *)
(* Configuration                                                       *)

let set_frame_budget t b =
  (match b with
  | Some n when n < 0 -> invalid_arg "Fault.set_frame_budget"
  | _ -> ());
  t.budget <- b

let frame_budget t = t.budget

let delay_ipi t ~core ~cycles =
  if cycles < 0 then invalid_arg "Fault.delay_ipi";
  Int_table.set t.ipi core (Delayed cycles)

let stall_ipi t ~core = Int_table.set t.ipi core Stalled
let clear_ipi t ~core = Int_table.remove t.ipi core
let ipi_response t ~core = Int_table.find_default t.ipi core Prompt
let ipi_faults_active t = Int_table.length t.ipi > 0

let check_prob ~fn p =
  if not (p >= 0.0 && p <= 1.0) then invalid_arg ("Fault." ^ fn)

let timeout_locks t ~label ~prob =
  check_prob ~fn:"timeout_locks" prob;
  t.lock_rules <- (label, prob) :: List.remove_assoc label t.lock_rules

let abort_ops t ~op ?point ~prob () =
  check_prob ~fn:"abort_ops" prob;
  t.abort_rules <- { a_op = op; a_point = point; a_prob = prob } :: t.abort_rules

let crash_ops t ~op ?point ~prob () =
  check_prob ~fn:"crash_ops" prob;
  t.crash_rules <- { a_op = op; a_point = point; a_prob = prob } :: t.crash_rules

(* ------------------------------------------------------------------ *)
(* Hot-path queries                                                    *)

let suppressed t = t.suppress > 0

let rule_fires t r ~op ~point =
  r.a_op = op
  && (match r.a_point with None -> true | Some p -> p = point)
  && Random.State.float t.rng 1.0 < r.a_prob

let abort_now t ~op ~point =
  if t.suppress = 0 then begin
    List.iter
      (fun r ->
        if rule_fires t r ~op ~point then begin
          t.n_aborts <- t.n_aborts + 1;
          raise (Injected_abort { op; point })
        end)
      t.abort_rules;
    (* Crash rules are consulted after abort rules so plans with no
       configured crashes draw exactly the legacy rng sequence. *)
    List.iter
      (fun r ->
        if rule_fires t r ~op ~point then begin
          t.n_crashes <- t.n_crashes + 1;
          raise (Injected_crash { op; point })
        end)
      t.crash_rules
  end

let forced_lock_timeout t ~label =
  t.suppress = 0
  && (match List.assoc_opt label t.lock_rules with
     | None -> false
     | Some p ->
         Random.State.float t.rng 1.0 < p
         && begin
              t.n_lock_timeouts <- t.n_lock_timeouts + 1;
              true
            end)

let with_suppressed fo f =
  match fo with
  | None -> f ()
  | Some t ->
      t.suppress <- t.suppress + 1;
      Fun.protect ~finally:(fun () -> t.suppress <- t.suppress - 1) f

(* ------------------------------------------------------------------ *)
(* Known-bad mode and counters                                         *)

let set_break_rollback t b = t.broken <- b
let rollback_broken t = t.broken
let note_oom t = t.n_oom <- t.n_oom + 1
let injected_oom t = t.n_oom
let injected_aborts t = t.n_aborts
let injected_crashes t = t.n_crashes
let injected_lock_timeouts t = t.n_lock_timeouts
let note_ipi_delay t = t.n_ipi_delays <- t.n_ipi_delays + 1
let ipi_delays t = t.n_ipi_delays
let note_ipi_abandoned t = t.n_ipi_abandoned <- t.n_ipi_abandoned + 1
let ipi_abandoned t = t.n_ipi_abandoned

let pp ppf t =
  let budget =
    match t.budget with Some n -> string_of_int n | None -> "none"
  in
  (* Configured plan on the left of the bar, one counter per injector on
     the right — same order both sides so the summary reads as a ledger:
     every injector (oom, aborts, crashes, lock timeouts, ipi
     delays/abandoned) reports exactly once. *)
  Format.fprintf ppf
    "fault<seed=%d budget=%s aborts=%d crashes=%d locks=%d ipi=%d | oom=%d \
     abort=%d crash=%d lk-timeout=%d ipi-delay=%d ipi-abandoned=%d>"
    t.fseed budget
    (List.length t.abort_rules)
    (List.length t.crash_rules)
    (List.length t.lock_rules)
    (Int_table.length t.ipi) t.n_oom t.n_aborts t.n_crashes t.n_lock_timeouts
    t.n_ipi_delays t.n_ipi_abandoned
