(** The simulated machine: cores, scheduler, and shared resources.

    Workloads are per-core step functions. The scheduler repeatedly runs the
    ready core with the smallest local clock, so cross-core causality is
    respected at step granularity; each step executes atomically and
    advances its core's clock through the cost model. A step returning
    [false] retires its core's workload.

    Maintenance hooks (used for Refcache epoch flushes) fire on every core
    with a fixed period of simulated time, including on cores whose
    workloads have already retired — the paper's epoch barrier needs every
    core to keep flushing. *)

type t

(** Cross-shard event payloads (see {!Harness.Shard}): when a machine is
    one node of a sharded world, sends to remote nodes are buffered
    through its uplink and delivered by the epoch-barrier engine in a
    canonical (send time, source node, sequence) order at the next epoch
    boundary, never immediately. *)
type xpayload =
  | Xshootdown of { core : int; handler : int }
      (** interrupt [core] on the destination node for [handler] cycles *)
  | Xrc of { oid : int; delta : int }
      (** shared-frame refcount flush for object [oid]'s home node *)
  | Xmsg of { tag : int; a : int; b : int }
      (** workload-defined; interpreted by the destination node's handler *)

type xevent = { xdst : int; xsent : int; xpayload : xpayload }

val create : Params.t -> t
val params : t -> Params.t
val stats : t -> Stats.t

val obs : t -> Obs.t
(** The machine-wide instrumentation stream, shared by every core. Sink-less
    (and therefore free) unless a checker attaches. *)

val physmem : t -> Physmem.t
val ncores : t -> int
val core : t -> int -> Core.t
val cores : t -> Core.t array

val set_fault : t -> Fault.t option -> unit
(** Attach a fault-injection plan (or detach with [None]): the plan is
    propagated to every core and to physical memory, and from there
    consulted by {!Physmem.alloc}, {!Ipi.multicast}, {!Lock.try_acquire},
    and the VM layers' injection points. No plan attached (the default)
    means the fault machinery costs nothing. *)

val fault : t -> Fault.t option

val set_workload : t -> int -> (unit -> bool) -> unit
(** [set_workload t i step] installs [step] on core [i]. *)

val add_maintenance : t -> period:int -> (Core.t -> unit) -> unit
(** Register a hook to run on every core once per [period] cycles. *)

val run : t -> unit
(** Run until every workload has retired. *)

val run_for : t -> cycles:int -> unit
(** Run until every workload has retired or passed the absolute time
    [cycles]; cores past the horizon are retired without further steps. *)

val drain : t -> cycles:int -> unit
(** Advance simulated time by [cycles] on all cores, firing only
    maintenance hooks (used to let Refcache epochs settle after a run). *)

val elapsed : t -> int
(** Largest core clock (total simulated time so far). *)

val seconds : t -> int -> float
(** Convert cycles to seconds at the machine's clock rate. *)

val wait_hint : t -> Core.t -> unit
(** Advance [core]'s clock just past the earliest other active core — used
    by workloads polling for cross-core events (channel receive, barrier). *)

(* Shared IPI interconnect state; used by {!Ipi}. *)
val ipi_free_at : t -> int
val set_ipi_free_at : t -> int -> unit

val idle : t -> bool
(** Every workload has retired ([run] would return immediately). *)

val node : t -> int
(** This machine's node id within a sharded world; [0] standalone. *)

val set_uplink : t -> node:int -> (xevent -> unit) -> unit
(** Install the shard engine's outbox hook and this machine's node id.
    Reserved to {!Harness.Shard} (enforced by simlint [ds-cross-shard]). *)

val uplinked : t -> bool
(** An uplink is installed, i.e. this machine is a node of a sharded
    world and {!uplink_send} may be used. *)

val uplink_send : t -> dst:int -> sent:int -> xpayload -> unit
(** Buffer one cross-shard event into the epoch batch. [sent] is the
    sending core's virtual time; delivery happens at the destination no
    earlier than the next epoch boundary. @raise Invalid_argument when no
    uplink is installed. *)

val deliver_interrupt : t -> core:int -> cycles:int -> unit
(** Deliver a cross-shard shootdown: charge [cycles] of handler time to
    [core] (folded into its clock at its next step) and count one IPI on
    this machine's stats. A delivery endpoint reserved to the
    epoch-barrier engine — simlint's [ds-cross-shard] rule flags any
    other caller. *)
