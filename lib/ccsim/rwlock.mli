(** Timed reader-writer lock.

    Models the single read-write lock per address space used by Linux and
    similar kernels (section 2 of the paper). Readers do not exclude each
    other in time, but every reader acquire and release performs an atomic
    update of the lock word's cache line — so with many concurrent readers
    the lock line itself serializes them, which is exactly why concurrent
    page faults fail to scale on Linux even though they only "read". *)

type t

val create : ?label:string -> Core.t -> t

val id : t -> int
(** Stable identity used to correlate instrumentation events. *)

val label : t -> string
val read_acquire : Core.t -> t -> unit
val read_release : Core.t -> t -> unit
val write_acquire : Core.t -> t -> unit
val write_release : Core.t -> t -> unit
