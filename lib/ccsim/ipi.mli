(** Inter-processor interrupts over a serializing interconnect.

    Models the x86 APIC behaviour the paper measures: IPIs are delivered
    through a shared channel whose per-message occupancy serializes
    concurrent senders ("the protocol used by the APIC hardware ... appears
    to be non-scalable"), each targeted core pays an interrupt-handler cost,
    and the sender waits for all acknowledgments. A shootdown round to many
    cores therefore costs hundreds of thousands of cycles, while a round
    with no remote targets costs nothing. *)

val multicast : Machine.t -> Core.t -> targets:int list -> unit
(** [multicast m sender ~targets] sends one IPI to each core in [targets]
    (the sender itself is skipped if listed) and blocks the sender until the
    last acknowledgment. Counts one shootdown event even when [targets] is
    empty or self-only.

    When the machine's fault plan delays or stalls acknowledgments
    ({!Fault.delay_ipi}, {!Fault.stall_ipi}), the sender instead waits at
    most [Params.ipi_ack_timeout] cycles per target (doubling per retry,
    counted in [Stats.shootdown_retries]) and abandons a target after
    [Params.ipi_max_retries] attempts — safe because the invalidations
    themselves happen before the IPI; only the handshake is lost. Without
    such a plan the wait is unbounded, exactly the legacy timing. *)
