(** Inter-processor interrupts over a serializing interconnect.

    Models the x86 APIC behaviour the paper measures: IPIs are delivered
    through a shared channel whose per-message occupancy serializes
    concurrent senders ("the protocol used by the APIC hardware ... appears
    to be non-scalable"), each targeted core pays an interrupt-handler cost,
    and the sender waits for all acknowledgments. A shootdown round to many
    cores therefore costs hundreds of thousands of cycles, while a round
    with no remote targets costs nothing. *)

val multicast : Machine.t -> Core.t -> targets:int list -> unit
(** [multicast m sender ~targets] sends one IPI to each core in [targets]
    (the sender itself is skipped if listed) and blocks the sender until the
    last acknowledgment. Counts one shootdown event even when [targets] is
    empty or self-only.

    When the machine's fault plan delays or stalls acknowledgments
    ({!Fault.delay_ipi}, {!Fault.stall_ipi}), the sender instead waits at
    most [Params.ipi_ack_timeout] cycles per target (doubling per retry,
    counted in [Stats.shootdown_retries]) and abandons a target after
    [Params.ipi_max_retries] attempts — safe because the invalidations
    themselves happen before the IPI; only the handshake is lost. Without
    such a plan the wait is unbounded, exactly the legacy timing. *)

val remote : Machine.t -> Core.t -> targets:(int * int) list -> unit
(** [remote m sender ~targets] sends one cross-shard shootdown IPI to
    each [(node, core)] in [targets] (entries naming the sender's own
    node are skipped — use {!multicast} for those). The sender pays the
    serialized per-target APIC send cost and counts the round and its
    targets, but does {e not} block for acknowledgments: each event is
    buffered into the machine's epoch batch ({!Machine.uplink_send}) and
    the handler cost lands on the remote core at the next epoch boundary,
    at the same virtual time regardless of how nodes are laid out over
    host domains. Requires an uplink ({!Machine.set_uplink}); raises
    [Invalid_argument] on a standalone machine. *)
