let multicast machine (sender : Core.t) ~targets =
  let p = Machine.params machine and stats = Machine.stats machine in
  stats.Stats.shootdown_events <- stats.Stats.shootdown_events + 1;
  let fault = Machine.fault machine in
  let faulty =
    match fault with Some f -> Fault.ipi_faults_active f | None -> false
  in
  (* One IPI to [target]: returns the send completion time and the time
     the target's handler would acknowledge. *)
  let send_one (target : Core.t) =
    (* The interconnect briefly serializes every IPI machine-wide;
       the dominant cost is the sender's own APIC protocol, paid
       serially per target. *)
    let start = max (Core.now sender) (Machine.ipi_free_at machine) in
    Machine.set_ipi_free_at machine (start + p.Params.ipi_channel);
    let sent = start + p.Params.ipi_send in
    sender.Core.clock <- sent;
    let deliver = sent + p.Params.ipi_deliver in
    let begun = max (target.Core.clock + target.Core.pending_intr) deliver in
    let ack = begun + p.Params.ipi_handler in
    Core.interrupt target ~cycles:p.Params.ipi_handler;
    stats.Stats.ipis <- stats.Stats.ipis + 1;
    stats.Stats.shootdown_targets <- stats.Stats.shootdown_targets + 1;
    (sent, ack)
  in
  let ack_max = ref 0 in
  List.iter
    (fun id ->
      if id <> sender.Core.id then begin
        let target = Machine.core machine id in
        if not faulty then begin
          let _, ack = send_one target in
          ack_max := max !ack_max ack
        end
        else begin
          (* Sender-side timeout with bounded retry and exponential
             backoff: a target whose acknowledgment is late gets
             re-interrupted with a doubled wait budget; a target that
             never responds is abandoned after [ipi_max_retries] rounds.
             Correctness is unaffected — the page-table and TLB
             invalidations happened synchronously before the IPI; only
             the completion handshake is missing — so the sender may
             proceed rather than hang the address space. *)
          let f = Option.get fault in
          let rec attempt try_no =
            let sent, ack = send_one target in
            let timeout = p.Params.ipi_ack_timeout lsl try_no in
            let acked =
              match Fault.ipi_response f ~core:id with
              | Fault.Prompt -> Some ack
              | Fault.Delayed d ->
                  Fault.note_ipi_delay f;
                  if ack + d - sent <= timeout then Some (ack + d) else None
              | Fault.Stalled ->
                  Fault.note_ipi_delay f;
                  None
            in
            match acked with
            | Some ack -> ack_max := max !ack_max ack
            | None ->
                stats.Stats.shootdown_retries <-
                  stats.Stats.shootdown_retries + 1;
                (* The sender spun the whole timeout on this target. *)
                sender.Core.clock <- max sender.Core.clock (sent + timeout);
                if try_no + 1 < p.Params.ipi_max_retries then
                  attempt (try_no + 1)
                else Fault.note_ipi_abandoned f
          in
          attempt 0
        end
      end)
    targets;
  if !ack_max > 0 then begin
    let now = Core.now sender in
    if !ack_max > now then begin
      stats.Stats.shootdown_wait_cycles <-
        stats.Stats.shootdown_wait_cycles + (!ack_max - now);
      sender.Core.clock <- !ack_max
    end
  end

let remote machine (sender : Core.t) ~targets =
  let p = Machine.params machine and stats = Machine.stats machine in
  stats.Stats.shootdown_events <- stats.Stats.shootdown_events + 1;
  let self = Machine.node machine in
  List.iter
    (fun (node, core) ->
      if node <> self then begin
        (* The sender pays the same serialized APIC send cost as for a
           local target, but does not wait for an acknowledgment: the
           page-table and TLB invalidations happened synchronously before
           the IPI, and the completion handshake is deferred to the next
           epoch boundary, where the shard engine delivers the handler
           cost to the remote core. *)
        let start = max (Core.now sender) (Machine.ipi_free_at machine) in
        Machine.set_ipi_free_at machine (start + p.Params.ipi_channel);
        let sent = start + p.Params.ipi_send in
        sender.Core.clock <- sent;
        stats.Stats.shootdown_targets <- stats.Stats.shootdown_targets + 1;
        Machine.uplink_send machine ~dst:node ~sent
          (Machine.Xshootdown { core; handler = p.Params.ipi_handler })
      end)
    targets
