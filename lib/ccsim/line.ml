type t = {
  params : Params.t;
  stats : Stats.t;
  id : int;
  label : string;
  home_socket : int;
  mutable owner : int;  (* core id holding Modified/Exclusive; -1 if none *)
  sharers : Bitset.t;
  mutable free_at : int;
}

let create ?(label = "line") params stats ~home_socket =
  {
    params;
    stats;
    id = Obs.fresh_line_id ();
    label;
    home_socket;
    owner = -1;
    sharers = Bitset.create params.Params.ncores;
    free_at = 0;
  }

let id t = t.id
let label t = t.label
let holder t = if t.owner >= 0 then Some t.owner else None
let sharers t = Bitset.elements t.sharers
let free_at t = t.free_at

let holds_for_read t core_id =
  (* Core ids are always < ncores = the sharer set's capacity. *)
  t.owner = core_id || Bitset.unsafe_mem t.sharers core_id

(* Latency of fetching the line into [core]'s cache, given current holders
   (excluding [core] itself). *)
let miss_latency t (core : Core.t) =
  let p = t.params in
  let socket_of = Params.socket_of_core p in
  if t.owner >= 0 && t.owner <> core.Core.id then
    if socket_of t.owner = core.Core.socket then
      (p.Params.local_transfer, `Local)
    else (p.Params.remote_transfer, `Remote)
  else if Bitset.exists_other t.sharers core.Core.id then
    (* Same classification the member walk produced: a sharer on my
       socket ⇔ a member of my socket's core-id range other than me. *)
    let cps = p.Params.cores_per_socket in
    let lo = core.Core.socket * cps in
    let hi = min (Bitset.capacity t.sharers) (lo + cps) in
    if Bitset.mem_range_other t.sharers ~lo ~hi core.Core.id then
      (p.Params.local_transfer, `Local)
    else (p.Params.remote_transfer, `Remote)
  else if t.home_socket = core.Core.socket then (p.Params.dram_local, `Dram)
  else (p.Params.dram_remote, `Dram)

let charge_miss t (core : Core.t) =
  let latency, kind = miss_latency t core in
  (match kind with
  | `Local -> t.stats.Stats.transfers_local <- t.stats.Stats.transfers_local + 1
  | `Remote ->
      t.stats.Stats.transfers_remote <- t.stats.Stats.transfers_remote + 1
  | `Dram -> t.stats.Stats.dram_fills <- t.stats.Stats.dram_fills + 1);
  let now = Core.now core in
  let start = max now t.free_at in
  t.stats.Stats.line_stall_cycles <-
    t.stats.Stats.line_stall_cycles + (start - now);
  let finish = start + latency in
  t.free_at <- finish;
  core.Core.clock <- finish

let read_k kind core t =
  if holds_for_read t core.Core.id then begin
    t.stats.Stats.l1_hits <- t.stats.Stats.l1_hits + 1;
    Core.tick core t.params.Params.l1_hit
  end
  else begin
    charge_miss t core;
    if t.owner >= 0 then begin
      Bitset.add t.sharers t.owner;
      t.owner <- -1
    end;
    Bitset.add t.sharers core.Core.id
  end;
  let obs = core.Core.obs in
  if Obs.active obs then
    Obs.emit obs
      (Obs.Read { core = core.Core.id; line = t.id; label = t.label; kind })

let write_k kind core t =
  if t.owner = core.Core.id then begin
    t.stats.Stats.l1_hits <- t.stats.Stats.l1_hits + 1;
    Core.tick core t.params.Params.l1_hit
  end
  else begin
    charge_miss t core;
    Bitset.clear t.sharers;
    t.owner <- core.Core.id
  end;
  let obs = core.Core.obs in
  if Obs.active obs then
    Obs.emit obs
      (Obs.Write { core = core.Core.id; line = t.id; label = t.label; kind })

let read core t = read_k Obs.Plain core t
let write core t = write_k Obs.Plain core t
let read_atomic core t = read_k Obs.Atomic core t
let write_atomic core t = write_k Obs.Atomic core t
let write_sync core t = write_k Obs.Sync core t
