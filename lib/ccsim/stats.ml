type t = {
  mutable l1_hits : int;
  mutable transfers_local : int;
  mutable transfers_remote : int;
  mutable dram_fills : int;
  mutable line_stall_cycles : int;
  mutable lock_acquires : int;
  mutable lock_contended : int;
  mutable lock_wait_cycles : int;
  mutable ipis : int;
  mutable shootdown_events : int;
  mutable shootdown_targets : int;
  mutable shootdown_retries : int;
  mutable shootdown_wait_cycles : int;
  mutable tlb_hits : int;
  mutable tlb_misses : int;
  mutable hw_walks : int;
  mutable pagefaults : int;
  mutable fill_faults : int;
  mutable alloc_faults : int;
  mutable frames_allocated : int;
  mutable frames_freed : int;
  mutable mmaps : int;
  mutable munmaps : int;
}

let create () =
  {
    l1_hits = 0;
    transfers_local = 0;
    transfers_remote = 0;
    dram_fills = 0;
    line_stall_cycles = 0;
    lock_acquires = 0;
    lock_contended = 0;
    lock_wait_cycles = 0;
    ipis = 0;
    shootdown_events = 0;
    shootdown_targets = 0;
    shootdown_retries = 0;
    shootdown_wait_cycles = 0;
    tlb_hits = 0;
    tlb_misses = 0;
    hw_walks = 0;
    pagefaults = 0;
    fill_faults = 0;
    alloc_faults = 0;
    frames_allocated = 0;
    frames_freed = 0;
    mmaps = 0;
    munmaps = 0;
  }

let reset t =
  t.l1_hits <- 0;
  t.transfers_local <- 0;
  t.transfers_remote <- 0;
  t.dram_fills <- 0;
  t.line_stall_cycles <- 0;
  t.lock_acquires <- 0;
  t.lock_contended <- 0;
  t.lock_wait_cycles <- 0;
  t.ipis <- 0;
  t.shootdown_events <- 0;
  t.shootdown_targets <- 0;
  t.shootdown_retries <- 0;
  t.shootdown_wait_cycles <- 0;
  t.tlb_hits <- 0;
  t.tlb_misses <- 0;
  t.hw_walks <- 0;
  t.pagefaults <- 0;
  t.fill_faults <- 0;
  t.alloc_faults <- 0;
  t.frames_allocated <- 0;
  t.frames_freed <- 0;
  t.mmaps <- 0;
  t.munmaps <- 0

let add ~into:a b =
  a.l1_hits <- a.l1_hits + b.l1_hits;
  a.transfers_local <- a.transfers_local + b.transfers_local;
  a.transfers_remote <- a.transfers_remote + b.transfers_remote;
  a.dram_fills <- a.dram_fills + b.dram_fills;
  a.line_stall_cycles <- a.line_stall_cycles + b.line_stall_cycles;
  a.lock_acquires <- a.lock_acquires + b.lock_acquires;
  a.lock_contended <- a.lock_contended + b.lock_contended;
  a.lock_wait_cycles <- a.lock_wait_cycles + b.lock_wait_cycles;
  a.ipis <- a.ipis + b.ipis;
  a.shootdown_events <- a.shootdown_events + b.shootdown_events;
  a.shootdown_targets <- a.shootdown_targets + b.shootdown_targets;
  a.shootdown_retries <- a.shootdown_retries + b.shootdown_retries;
  a.shootdown_wait_cycles <- a.shootdown_wait_cycles + b.shootdown_wait_cycles;
  a.tlb_hits <- a.tlb_hits + b.tlb_hits;
  a.tlb_misses <- a.tlb_misses + b.tlb_misses;
  a.hw_walks <- a.hw_walks + b.hw_walks;
  a.pagefaults <- a.pagefaults + b.pagefaults;
  a.fill_faults <- a.fill_faults + b.fill_faults;
  a.alloc_faults <- a.alloc_faults + b.alloc_faults;
  a.frames_allocated <- a.frames_allocated + b.frames_allocated;
  a.frames_freed <- a.frames_freed + b.frames_freed;
  a.mmaps <- a.mmaps + b.mmaps;
  a.munmaps <- a.munmaps + b.munmaps

let total_transfers t = t.transfers_local + t.transfers_remote

let pp ppf t =
  Format.fprintf ppf
    "@[<v>l1 hits          %d@,\
     transfers local  %d@,\
     transfers remote %d@,\
     dram fills       %d@,\
     line stall cyc   %d@,\
     lock acq/cont    %d/%d (wait %d cyc)@,\
     ipis             %d (%d rounds, %d targets, %d retries, wait %d cyc)@,\
     tlb hit/miss     %d/%d (hw walks %d)@,\
     faults           %d (fill %d, alloc %d)@,\
     frames +/-       %d/%d@,\
     mmap/munmap      %d/%d@]"
    t.l1_hits t.transfers_local t.transfers_remote t.dram_fills
    t.line_stall_cycles t.lock_acquires t.lock_contended t.lock_wait_cycles
    t.ipis t.shootdown_events t.shootdown_targets t.shootdown_retries
    t.shootdown_wait_cycles
    t.tlb_hits t.tlb_misses t.hw_walks t.pagefaults t.fill_faults
    t.alloc_faults t.frames_allocated t.frames_freed t.mmaps t.munmaps
