type entry = { pfn : int; writable : bool }

type t = {
  capacity : int;
  tbl : (int, entry) Hashtbl.t;
  fifo : int Queue.t;  (* insertion order; may contain stale vpns *)
  obs : Obs.t option;
  core : int;  (* owning core id for instrumentation; -1 if unknown *)
  asid : int;  (* owning address space's id; -1 if unknown *)
}

let create ?obs ?(core = -1) ?(asid = -1) ~capacity () =
  if capacity <= 0 then invalid_arg "Tlb.create";
  {
    capacity;
    tbl = Hashtbl.create (2 * capacity);
    fifo = Queue.create ();
    obs;
    core;
    asid;
  }

let lookup t vpn = Hashtbl.find_opt t.tbl vpn
let mem t vpn = Hashtbl.mem t.tbl vpn
let size t = Hashtbl.length t.tbl

(* Every membership change is reported, including silent FIFO evictions, so
   a checker's mirror of the TLB contents is exact. *)
let note_fill t vpn =
  match t.obs with
  | Some obs when Obs.active obs ->
      Obs.emit obs (Obs.Tlb_fill { core = t.core; asid = t.asid; vpn })
  | _ -> ()

let note_drop t vpn =
  match t.obs with
  | Some obs when Obs.active obs ->
      Obs.emit obs (Obs.Tlb_drop { core = t.core; asid = t.asid; vpn })
  | _ -> ()

(* Pop stale queue entries until a live one is evicted. *)
let rec evict_one t =
  match Queue.take_opt t.fifo with
  | None -> ()
  | Some vpn ->
      if Hashtbl.mem t.tbl vpn then begin
        Hashtbl.remove t.tbl vpn;
        note_drop t vpn
      end
      else evict_one t

(* Invalidation removes vpns from [tbl] but leaves them queued; without a
   bound, munmap-heavy runs grow the queue forever (stale entries only
   drained on insert-at-capacity). When stale entries dominate — the live
   count is [Hashtbl.length tbl], at most [capacity] — rebuild the queue
   keeping only the first (oldest) occurrence of each live vpn, which is
   exactly the entry [evict_one] would act on. Rebuilding costs one pass
   over the queue and is triggered only after at least [capacity]
   invalidations, so eviction stays O(1) amortized. *)
let compact t =
  if Queue.length t.fifo > 2 * t.capacity then begin
    let keep = Queue.create () in
    let seen = Hashtbl.create (2 * Hashtbl.length t.tbl) in
    Queue.iter
      (fun vpn ->
        if Hashtbl.mem t.tbl vpn && not (Hashtbl.mem seen vpn) then begin
          Hashtbl.add seen vpn ();
          Queue.push vpn keep
        end)
      t.fifo;
    Queue.clear t.fifo;
    Queue.transfer keep t.fifo
  end

let insert t ~vpn ~pfn ~writable =
  let entry = { pfn; writable } in
  if Hashtbl.mem t.tbl vpn then Hashtbl.replace t.tbl vpn entry
  else begin
    if Hashtbl.length t.tbl >= t.capacity then evict_one t;
    Hashtbl.replace t.tbl vpn entry;
    Queue.push vpn t.fifo;
    note_fill t vpn
  end

let invalidate t vpn =
  if Hashtbl.mem t.tbl vpn then begin
    Hashtbl.remove t.tbl vpn;
    note_drop t vpn;
    compact t
  end

let invalidate_range t ~lo ~hi =
  if hi - lo < Hashtbl.length t.tbl then
    for vpn = lo to hi - 1 do
      invalidate t vpn
    done
  else begin
    let doomed =
      Hashtbl.fold
        (fun vpn _ acc -> if vpn >= lo && vpn < hi then vpn :: acc else acc)
        t.tbl []
    in
    List.iter (invalidate t) doomed
  end

let queue_length t = Queue.length t.fifo

let flush t =
  (match t.obs with
  | Some obs when Obs.active obs ->
      Hashtbl.iter (fun vpn _ -> Obs.emit obs (Obs.Tlb_drop { core = t.core; asid = t.asid; vpn })) t.tbl
  | _ -> ());
  Hashtbl.reset t.tbl;
  Queue.clear t.fifo
