type entry = { pfn : int; writable : bool }

(* Open-addressed linear-probe table over ints: [keys.(s)] holds the vpn,
   [-1] for an empty slot, [-2] for a tombstone left by invalidation;
   [vals.(s)] packs the translation as [pfn lsl 1 lor writable]. A TLB
   lookup happens on every simulated memory access, so both the lookup and
   the fill path must run without allocating — the stdlib [Hashtbl] boxes
   an entry record per insert and an option per probe.

   The table is sized at four times the capacity (live entries never
   exceed [capacity]), and rebuilt in place once tombstones plus live
   entries fill half of it, which keeps probe chains short: each rebuild
   clears at least [size/4] tombstones, paid for by the removals that
   created them. Vpns are nonnegative (they share the key space with the
   two sentinels). *)

type t = {
  capacity : int;
  mutable keys : int array;
  mutable vals : int array;
  mutable live : int;  (* slots holding a current translation *)
  mutable occupied : int;  (* live + tombstones *)
  (* FIFO insertion order as a growable int ring; may contain stale vpns. *)
  mutable ring : int array;
  mutable head : int;
  mutable len : int;
  obs : Obs.t option;
  core : int;  (* owning core id for instrumentation; -1 if unknown *)
  asid : int;  (* owning address space's id; -1 if unknown *)
}

let next_pow2 n =
  let k = ref 1 in
  while !k < n do
    k := !k * 2
  done;
  !k

let create ?obs ?(core = -1) ?(asid = -1) ~capacity () =
  if capacity <= 0 then invalid_arg "Tlb.create";
  let size = next_pow2 (4 * capacity) in
  {
    capacity;
    keys = Array.make size (-1);
    vals = Array.make size 0;
    live = 0;
    occupied = 0;
    ring = Array.make (next_pow2 ((2 * capacity) + 2)) (-1);
    head = 0;
    len = 0;
    obs;
    core;
    asid;
  }

(* Slot holding [vpn], or [-1]. Callers guard against negative vpns (they
   would collide with the sentinels). Probing skips tombstones; an empty
   slot always exists because occupancy is capped at half the table. *)
let find_slot t vpn =
  let keys = t.keys in
  let mask = Array.length keys - 1 in
  let s = ref (vpn * 0x9E3779B1 land mask) in
  let k = ref (Array.unsafe_get keys !s) in
  while !k <> vpn && !k <> -1 do
    s := (!s + 1) land mask;
    k := Array.unsafe_get keys !s
  done;
  if !k = vpn then !s else -1

(* Insert into a table known not to contain [vpn] or any tombstone. *)
let raw_add keys vals vpn packed =
  let mask = Array.length keys - 1 in
  let s = ref (vpn * 0x9E3779B1 land mask) in
  while Array.unsafe_get keys !s <> -1 do
    s := (!s + 1) land mask
  done;
  Array.unsafe_set keys !s vpn;
  Array.unsafe_set vals !s packed

(* Rebuild at the same size, shedding tombstones. *)
let rebuild t =
  let size = Array.length t.keys in
  let old_keys = t.keys and old_vals = t.vals in
  t.keys <- Array.make size (-1);
  t.vals <- Array.make size 0;
  for s = 0 to size - 1 do
    let k = Array.unsafe_get old_keys s in
    if k >= 0 then raw_add t.keys t.vals k (Array.unsafe_get old_vals s)
  done;
  t.occupied <- t.live

(* Insert [vpn] (known absent), reusing a tombstone when the probe chain
   ends on one. *)
let add_slot t vpn packed =
  let keys = t.keys in
  let mask = Array.length keys - 1 in
  let s = ref (vpn * 0x9E3779B1 land mask) in
  let k = ref (Array.unsafe_get keys !s) in
  while !k <> -1 && !k <> -2 do
    s := (!s + 1) land mask;
    k := Array.unsafe_get keys !s
  done;
  if !k = -1 then t.occupied <- t.occupied + 1;
  keys.(!s) <- vpn;
  t.vals.(!s) <- packed;
  t.live <- t.live + 1;
  if t.occupied * 2 > Array.length keys then rebuild t

let remove_slot t s =
  t.keys.(s) <- -2;
  t.live <- t.live - 1

let ring_push t vpn =
  (if t.len = Array.length t.ring then begin
     (* Grow, unrolling so the queue starts at index 0. *)
     let cap = Array.length t.ring in
     let bigger = Array.make (2 * cap) (-1) in
     for k = 0 to t.len - 1 do
       bigger.(k) <- t.ring.((t.head + k) land (cap - 1))
     done;
     t.ring <- bigger;
     t.head <- 0
   end);
  t.ring.((t.head + t.len) land (Array.length t.ring - 1)) <- vpn;
  t.len <- t.len + 1

(* Precondition: [t.len > 0]. *)
let ring_take t =
  let v = t.ring.(t.head) in
  t.head <- (t.head + 1) land (Array.length t.ring - 1);
  t.len <- t.len - 1;
  v

let lookup t vpn =
  if vpn < 0 then None
  else
    let s = find_slot t vpn in
    if s < 0 then None
    else
      let packed = t.vals.(s) in
      Some { pfn = packed lsr 1; writable = packed land 1 = 1 }

let lookup_packed t vpn =
  if vpn < 0 then -1
  else
    let s = find_slot t vpn in
    if s < 0 then -1 else Array.unsafe_get t.vals s

let mem t vpn = vpn >= 0 && find_slot t vpn >= 0
let size t = t.live

(* Every membership change is reported, including silent FIFO evictions, so
   a checker's mirror of the TLB contents is exact. *)
let note_fill t vpn =
  match t.obs with
  | Some obs when Obs.active obs ->
      Obs.emit obs (Obs.Tlb_fill { core = t.core; asid = t.asid; vpn })
  | _ -> ()

let note_drop t vpn =
  match t.obs with
  | Some obs when Obs.active obs ->
      Obs.emit obs (Obs.Tlb_drop { core = t.core; asid = t.asid; vpn })
  | _ -> ()

(* Pop stale queue entries until a live one is evicted. *)
let rec evict_one t =
  if t.len > 0 then begin
    let vpn = ring_take t in
    let s = find_slot t vpn in
    if s >= 0 then begin
      remove_slot t s;
      note_drop t vpn
    end
    else evict_one t
  end

(* Invalidation removes vpns from the table but leaves them queued; without
   a bound, munmap-heavy runs grow the queue forever (stale entries only
   drained on insert-at-capacity). When stale entries dominate — the live
   count is at most [capacity] — rebuild the queue keeping only the first
   (oldest) occurrence of each live vpn, which is exactly the entry
   [evict_one] would act on. Rebuilding costs one pass over the queue and
   is triggered only after at least [capacity] invalidations, so eviction
   stays O(1) amortized. *)
let compact t =
  if t.len > 2 * t.capacity then begin
    let seen = Int_table.create ~size_hint:(2 * t.live) false in
    let keep = Array.make t.len (-1) in
    let kept = ref 0 in
    let cap = Array.length t.ring in
    for k = 0 to t.len - 1 do
      let vpn = t.ring.((t.head + k) land (cap - 1)) in
      if find_slot t vpn >= 0 && not (Int_table.mem seen vpn) then begin
        Int_table.set seen vpn true;
        keep.(!kept) <- vpn;
        incr kept
      end
    done;
    Array.blit keep 0 t.ring 0 !kept;
    t.head <- 0;
    t.len <- !kept
  end

let insert t ~vpn ~pfn ~writable =
  if vpn < 0 then invalid_arg "Tlb.insert: negative vpn";
  let packed = (pfn lsl 1) lor if writable then 1 else 0 in
  let s = find_slot t vpn in
  if s >= 0 then t.vals.(s) <- packed
  else begin
    if t.live >= t.capacity then evict_one t;
    add_slot t vpn packed;
    ring_push t vpn;
    note_fill t vpn
  end

let invalidate t vpn =
  if vpn >= 0 then begin
    let s = find_slot t vpn in
    if s >= 0 then begin
      remove_slot t s;
      note_drop t vpn;
      compact t
    end
  end

let invalidate_range t ~lo ~hi =
  (* Probe per vpn while the range is narrower than the capacity (each
     probe is a word or two); scan the slots — bounded by [4 * capacity] —
     only for wide ranges. Either branch drops the same entries; drop
     order carries no cost and no stats. *)
  if hi - lo <= t.capacity then
    for vpn = lo to hi - 1 do
      invalidate t vpn
    done
  else begin
    let keys = t.keys in
    for s = 0 to Array.length keys - 1 do
      let k = Array.unsafe_get keys s in
      if k >= 0 && k >= lo && k < hi then begin
        remove_slot t s;
        note_drop t k;
        compact t
      end
    done
  end

let queue_length t = t.len

let flush t =
  (match t.obs with
  | Some obs when Obs.active obs ->
      let keys = t.keys in
      for s = 0 to Array.length keys - 1 do
        let k = Array.unsafe_get keys s in
        if k >= 0 then
          Obs.emit obs (Obs.Tlb_drop { core = t.core; asid = t.asid; vpn = k })
      done
  | _ -> ());
  Array.fill t.keys 0 (Array.length t.keys) (-1);
  t.live <- 0;
  t.occupied <- 0;
  t.head <- 0;
  t.len <- 0
