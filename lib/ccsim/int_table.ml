(* Open-addressed linear-probe map over nonnegative int keys. The stdlib
   [Hashtbl] costs a [caml_hash] call, a bucket-list walk, and an
   allocation per insert; simulator structures keyed by vpn or frame
   number sit on the per-access hot path and need none of that.

   [keys.(s)] is [-1] for an empty slot, [-2] for a tombstone left by
   [remove]. Values live in a parallel array seeded with a caller-provided
   dummy (never returned: absent keys take the caller's default). The
   table doubles when live entries pass a quarter of the slots and
   rebuilds in place when tombstones accumulate, so probe chains stay
   short under churn. *)

type 'a t = {
  mutable keys : int array;
  mutable vals : 'a array;
  mutable live : int;
  mutable occupied : int;  (* live + tombstones *)
  dummy : 'a;
}

let create ?(size_hint = 16) dummy =
  let size = ref 8 in
  while !size < 4 * size_hint do
    size := !size * 2
  done;
  {
    keys = Array.make !size (-1);
    vals = Array.make !size dummy;
    live = 0;
    occupied = 0;
    dummy;
  }

let length t = t.live

let find_slot t key =
  let keys = t.keys in
  let mask = Array.length keys - 1 in
  let s = ref (key * 0x9E3779B1 land mask) in
  let k = ref (Array.unsafe_get keys !s) in
  while !k <> key && !k <> -1 do
    s := (!s + 1) land mask;
    k := Array.unsafe_get keys !s
  done;
  if !k = key then !s else -1

let raw_add keys vals key v =
  let mask = Array.length keys - 1 in
  let s = ref (key * 0x9E3779B1 land mask) in
  while Array.unsafe_get keys !s <> -1 do
    s := (!s + 1) land mask
  done;
  Array.unsafe_set keys !s key;
  Array.unsafe_set vals !s v

(* Grow when genuinely full, rebuild at the same size when tombstones are
   the problem. *)
let rebuild t =
  let old_size = Array.length t.keys in
  let size = if t.live * 4 > old_size then old_size * 2 else old_size in
  let old_keys = t.keys and old_vals = t.vals in
  t.keys <- Array.make size (-1);
  t.vals <- Array.make size t.dummy;
  for s = 0 to old_size - 1 do
    let k = Array.unsafe_get old_keys s in
    if k >= 0 then raw_add t.keys t.vals k (Array.unsafe_get old_vals s)
  done;
  t.occupied <- t.live

let set t key v =
  if key < 0 then invalid_arg "Int_table.set: negative key";
  let s = find_slot t key in
  if s >= 0 then t.vals.(s) <- v
  else begin
    (* Absent: claim the first reusable slot (a tombstone mid-chain is
       safe to take once absence is established). *)
    let keys = t.keys in
    let mask = Array.length keys - 1 in
    let s = ref (key * 0x9E3779B1 land mask) in
    let k = ref (Array.unsafe_get keys !s) in
    while !k <> -1 && !k <> -2 do
      s := (!s + 1) land mask;
      k := Array.unsafe_get keys !s
    done;
    if !k = -1 then t.occupied <- t.occupied + 1;
    keys.(!s) <- key;
    t.vals.(!s) <- v;
    t.live <- t.live + 1;
    if t.occupied * 2 > Array.length keys then rebuild t
  end

let find_default t key default =
  if key < 0 then default
  else
    let s = find_slot t key in
    if s < 0 then default else Array.unsafe_get t.vals s

let mem t key = key >= 0 && find_slot t key >= 0

let remove t key =
  if key >= 0 then begin
    let s = find_slot t key in
    if s >= 0 then begin
      t.keys.(s) <- -2;
      t.vals.(s) <- t.dummy;
      t.live <- t.live - 1
    end
  end

(* Ascending slot order (arbitrary but deterministic for a given insertion
   history). *)
let iter f t =
  let keys = t.keys in
  for s = 0 to Array.length keys - 1 do
    let k = Array.unsafe_get keys s in
    if k >= 0 then f k (Array.unsafe_get t.vals s)
  done

let fold f t init =
  let acc = ref init in
  iter (fun k v -> acc := f k v !acc) t;
  !acc
