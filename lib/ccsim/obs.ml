type kind = Plain | Atomic | Sync

type event =
  | Read of { core : int; line : int; label : string; kind : kind }
  | Write of { core : int; line : int; label : string; kind : kind }
  | Acquire of { core : int; lock : int; line : int; label : string; rd : bool }
  | Release of { core : int; lock : int; line : int; label : string; rd : bool }
  | Tlb_fill of { core : int; asid : int; vpn : int }
  | Tlb_drop of { core : int; asid : int; vpn : int }
  | Unmap_done of { core : int; asid : int; lo : int; hi : int }
  | Rc_make of { core : int; oid : int; init : int; label : string }
  | Rc_inc of { core : int; oid : int; label : string }
  | Rc_dec of { core : int; oid : int; label : string }
  | Rc_free of { core : int; oid : int; label : string }

(* [hot] caches [quiet = 0 && sink <> None]: it is read before every
   potential event allocation — several times per simulated memory access,
   the single most executed branch in the simulator — so it must be one
   immediate-field load, not an option comparison. The three writers
   ([set_sink], [quiet_incr], [quiet_decr]) keep it in sync. *)
type t = {
  mutable sink : (event -> unit) option;
  mutable quiet : int;
  mutable hot : bool;
}

let refresh t =
  t.hot <- (t.quiet = 0 && match t.sink with Some _ -> true | None -> false)

let create () = { sink = None; quiet = 0; hot = false }

let set_sink t sink =
  t.sink <- sink;
  refresh t

let active t = t.hot

let emit t ev =
  if t.quiet = 0 then match t.sink with Some f -> f ev | None -> ()

let quiet_incr t =
  t.quiet <- t.quiet + 1;
  t.hot <- false

let quiet_decr t =
  t.quiet <- t.quiet - 1;
  refresh t

(* Identity spaces for lines and locks. Ids are only used to correlate
   events and name findings in reports; they never feed back into the cost
   model, so a process-wide counter keeps creation sites untouched by
   plumbing. The counters are atomic because the benchmark harness runs
   independent simulations on concurrent domains: ids from simultaneous
   jobs interleave (no longer dense per machine), but uniqueness — the
   only property the checkers' ledgers rely on — always holds. *)
let line_ids = Atomic.make 0
let fresh_line_id () = Atomic.fetch_and_add line_ids 1
let lock_ids = Atomic.make 0
let fresh_lock_id () = Atomic.fetch_and_add lock_ids 1

(* Address-space ids distinguish the TLB events of different MMUs: every
   address space has its own per-core TLB instances, so "core 1 caches
   vpn 101" is only meaningful relative to an address space. *)
let asids = Atomic.make 0
let fresh_asid () = Atomic.fetch_and_add asids 1

let pp_kind ppf = function
  | Plain -> Format.pp_print_string ppf "plain"
  | Atomic -> Format.pp_print_string ppf "atomic"
  | Sync -> Format.pp_print_string ppf "sync"

let pp_event ppf = function
  | Read { core; line; label; kind } ->
      Format.fprintf ppf "read  core%d line%d(%s) %a" core line label pp_kind
        kind
  | Write { core; line; label; kind } ->
      Format.fprintf ppf "write core%d line%d(%s) %a" core line label pp_kind
        kind
  | Acquire { core; lock; line; label; rd } ->
      Format.fprintf ppf "%s core%d lock%d(%s) line%d"
        (if rd then "racq " else "acq  ")
        core lock label line
  | Release { core; lock; line; label; rd } ->
      Format.fprintf ppf "%s core%d lock%d(%s) line%d"
        (if rd then "rrel " else "rel  ")
        core lock label line
  | Tlb_fill { core; asid; vpn } ->
      Format.fprintf ppf "tlb+  core%d as%d vpn%d" core asid vpn
  | Tlb_drop { core; asid; vpn } ->
      Format.fprintf ppf "tlb-  core%d as%d vpn%d" core asid vpn
  | Unmap_done { core; asid; lo; hi } ->
      Format.fprintf ppf "unmap core%d as%d [%d,%d)" core asid lo hi
  | Rc_make { core; oid; init; label } ->
      Format.fprintf ppf "rcnew core%d obj%d(%s)=%d" core oid label init
  | Rc_inc { core; oid; label } ->
      Format.fprintf ppf "rcinc core%d obj%d(%s)" core oid label
  | Rc_dec { core; oid; label } ->
      Format.fprintf ppf "rcdec core%d obj%d(%s)" core oid label
  | Rc_free { core; oid; label } ->
      Format.fprintf ppf "rcfree core%d obj%d(%s)" core oid label
