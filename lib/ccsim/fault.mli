(** Seeded, deterministic fault injection.

    A fault plan is attached to a {!Machine} ({!Machine.set_fault}) and is
    consulted from the hot paths it perturbs: {!Physmem.alloc} (finite
    frame budget), {!Ipi.multicast} (delayed or stalled acknowledgments),
    {!Lock.try_acquire} (forced timeouts on labeled locks), and the VM
    operations' injection points (mid-critical-section aborts). With no
    plan attached ([None] everywhere) every query short-circuits on an
    option match — the fault machinery costs nothing when absent.

    All randomized decisions come from one private [Random.State] seeded
    at {!create}: the same seed against the same (deterministic) simulated
    run replays the same faults at the same points, which is what makes
    fuzzer transcripts byte-identical across replays. *)

type t

(** How a target core responds to an IPI under the plan. *)
type ipi_response =
  | Prompt  (** normal acknowledgment *)
  | Delayed of int  (** acknowledgment arrives [cycles] late *)
  | Stalled  (** the core never acknowledges (e.g. spinning with
                 interrupts disabled) *)

exception Injected_abort of { op : string; point : string }
(** Raised by {!abort_now} when an {!abort_ops} rule fires: the named VM
    operation abandons its critical section at the named injection point.
    VM layers catch this (and roll back) — it must never escape to user
    code. *)

exception Injected_crash of { op : string; point : string }
(** Raised by {!abort_now} when a {!crash_ops} rule fires: the process
    executing the named VM operation dies on the spot, mid-critical-section.
    Unlike {!Injected_abort}, the VM layers must NOT unwind it — no
    rollback, no unlock. The operation records enough context for a later
    {!Radixvm.reap} to repair the half-done work, and the exception
    propagates to the session driver, which models the kernel noticing the
    dead process and reaping it. *)

val create : ?seed:int -> unit -> t
(** A fresh plan with no faults configured. [seed] (default 0) fixes every
    probabilistic decision the plan will ever make. *)

val seed : t -> int

(** {1 Configuring faults} *)

val set_frame_budget : t -> int option -> unit
(** [set_frame_budget t (Some n)] caps live physical frames at [n]:
    {!Physmem.alloc} raises {!Physmem.Out_of_frames} while [n] frames are
    live. [None] removes the cap. *)

val frame_budget : t -> int option

val delay_ipi : t -> core:int -> cycles:int -> unit
(** Make [core] acknowledge IPIs [cycles] late. *)

val stall_ipi : t -> core:int -> unit
(** Make [core] never acknowledge IPIs. *)

val clear_ipi : t -> core:int -> unit
(** Restore prompt acknowledgment for [core]. *)

val ipi_response : t -> core:int -> ipi_response

val ipi_faults_active : t -> bool
(** Any core configured to delay or stall? {!Ipi.multicast} engages its
    timeout/retry machinery only when this is true, so fault-free runs
    keep the exact legacy timing. *)

val timeout_locks : t -> label:string -> prob:float -> unit
(** Make [Lock.try_acquire ~timeout] on locks labeled [label] fail
    spuriously with probability [prob] per attempt. *)

val abort_ops : t -> op:string -> ?point:string -> prob:float -> unit -> unit
(** Make VM operation [op] ("mmap", "munmap", "mprotect", "pagefault")
    abort with probability [prob] at each of its injection points — or
    only at [point] ("locked", "cleared", "filled") when given. *)

val crash_ops : t -> op:string -> ?point:string -> prob:float -> unit -> unit
(** Like {!abort_ops}, but the rule raises {!Injected_crash}: the process
    dies mid-critical-section instead of unwinding gracefully. Crash rules
    are drawn after abort rules at each injection point, so adding crash
    rules never perturbs the rng stream of an abort-only plan. *)

(** {1 Hot-path queries} *)

val abort_now : t -> op:string -> point:string -> unit
(** Draw against every matching {!abort_ops} entry (raises
    {!Injected_abort} if one fires), then every matching {!crash_ops}
    entry (raises {!Injected_crash}). No-op while suppressed. *)

val forced_lock_timeout : t -> label:string -> bool
(** Draw against the {!timeout_locks} entry for [label]; [true] means the
    attempt must be reported as timed out. No-op ([false]) while
    suppressed. *)

(** {1 Suppression}

    Teardown paths (process exit, address-space destroy, rollback of a
    failed syscall) must not themselves fail — like a real kernel's exit
    path, they run with injection suppressed. The frame budget stays in
    force (it models a resource, not an injected event), but teardown only
    releases frames. *)

val with_suppressed : t option -> (unit -> 'a) -> 'a
(** Run the thunk with abort and lock-timeout injection disabled (re-entrant;
    exception-safe). [None] just runs the thunk. *)

val suppressed : t -> bool

(** {1 Known-bad mode (tests only)} *)

val set_break_rollback : t -> bool -> unit
(** Deliberately skip the VM layers' rollback-and-unlock handling when an
    injected abort fires. Exists so tests can prove the checkers (leaked
    locks, frame leaks) actually catch a missing rollback. *)

val rollback_broken : t -> bool

(** {1 Injection counters} *)

val note_oom : t -> unit
val injected_oom : t -> int
(** Allocation attempts refused by the frame budget. *)

val injected_aborts : t -> int

val injected_crashes : t -> int
(** Crash rules fired (processes killed mid-critical-section). *)

val injected_lock_timeouts : t -> int

val note_ipi_delay : t -> unit
val ipi_delays : t -> int
(** IPI acknowledgments perturbed (delayed or stalled). *)

val note_ipi_abandoned : t -> unit
val ipi_abandoned : t -> int
(** Shootdown targets given up on after the retry budget. *)

val pp : Format.formatter -> t -> unit
(** One-line summary of the configured plan and its counters. *)
