type t = {
  id : int;
  label : string;
  line : Line.t;
  mutable free_time : int;
}

let create ?(label = "lock") (core : Core.t) =
  let line =
    Line.create ~label core.Core.params core.Core.stats
      ~home_socket:core.Core.socket
  in
  { id = Obs.fresh_lock_id (); label; line; free_time = 0 }

let create_on ?label line =
  let label = match label with Some l -> l | None -> Line.label line in
  { id = Obs.fresh_lock_id (); label; line; free_time = 0 }

let id t = t.id
let label t = t.label

(* The line write inside a lock operation is the primitive's own traffic:
   suppress its [Write] event and emit one [Acquire]/[Release] (carrying the
   line id, so census still attributes the movement to the line) instead. *)
let quiet_write core t =
  let obs = (core : Core.t).Core.obs in
  Obs.quiet_incr obs;
  Line.write core t.line;
  Obs.quiet_decr obs

let emit core ev =
  let obs = (core : Core.t).Core.obs in
  if Obs.active obs then Obs.emit obs ev

let acquire (core : Core.t) t =
  let stats = core.Core.stats in
  stats.Stats.lock_acquires <- stats.Stats.lock_acquires + 1;
  quiet_write core t;
  let now = Core.now core in
  if t.free_time > now then begin
    stats.Stats.lock_contended <- stats.Stats.lock_contended + 1;
    stats.Stats.lock_wait_cycles <-
      stats.Stats.lock_wait_cycles + (t.free_time - now);
    core.Core.clock <- t.free_time
  end;
  emit core
    (Obs.Acquire
       {
         core = core.Core.id;
         lock = t.id;
         line = Line.id t.line;
         label = t.label;
         rd = false;
       })

let release (core : Core.t) t =
  quiet_write core t;
  t.free_time <- Core.now core;
  emit core
    (Obs.Release
       {
         core = core.Core.id;
         lock = t.id;
         line = Line.id t.line;
         label = t.label;
         rd = false;
       })

let try_acquire ?(timeout = 0) (core : Core.t) t =
  if timeout < 0 then invalid_arg "Lock.try_acquire: timeout";
  let stats = core.Core.stats in
  stats.Stats.lock_acquires <- stats.Stats.lock_acquires + 1;
  quiet_write core t;
  let now = Core.now core in
  (* A failed timed attempt spins its whole budget before giving up;
     the legacy [timeout = 0] attempt is an instantaneous test-and-set. *)
  let fail ~spin =
    stats.Stats.lock_contended <- stats.Stats.lock_contended + 1;
    Core.tick core spin;
    emit core
      (Obs.Write
         {
           core = core.Core.id;
           line = Line.id t.line;
           label = t.label;
           kind = Obs.Sync;
         });
    false
  in
  let forced =
    match core.Core.fault with
    | Some f -> Fault.forced_lock_timeout f ~label:t.label
    | None -> false
  in
  if forced then fail ~spin:timeout
  else if t.free_time > now + timeout then fail ~spin:timeout
  else begin
    if t.free_time > now then begin
      stats.Stats.lock_contended <- stats.Stats.lock_contended + 1;
      stats.Stats.lock_wait_cycles <-
        stats.Stats.lock_wait_cycles + (t.free_time - now);
      core.Core.clock <- t.free_time
    end;
    emit core
      (Obs.Acquire
         {
           core = core.Core.id;
           lock = t.id;
           line = Line.id t.line;
           label = t.label;
           rd = false;
         });
    true
  end

let free_time t = t.free_time
