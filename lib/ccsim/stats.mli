(** Machine-wide event counters.

    One [Stats.t] per simulated machine. Counters are plain mutable fields
    updated by the cost model; benchmarks read them to report cache-line
    movement, shootdowns, fault mixes, and so on (the paper reports several
    of these directly, e.g. L2/L3 misses per iteration in section 5.3). *)

type t = {
  mutable l1_hits : int;  (** accesses satisfied by the local cache *)
  mutable transfers_local : int;  (** same-socket cache-to-cache transfers *)
  mutable transfers_remote : int;  (** cross-socket transfers *)
  mutable dram_fills : int;  (** misses served from DRAM *)
  mutable line_stall_cycles : int;  (** cycles spent queued on busy lines *)
  mutable lock_acquires : int;
  mutable lock_contended : int;  (** acquires that had to wait *)
  mutable lock_wait_cycles : int;
  mutable ipis : int;  (** individual inter-processor interrupts *)
  mutable shootdown_events : int;  (** shootdown rounds (one per munmap) *)
  mutable shootdown_targets : int;  (** total cores targeted *)
  mutable shootdown_retries : int;
      (** targets re-interrupted after an acknowledgment timeout (only
          nonzero under fault injection) *)
  mutable shootdown_wait_cycles : int;
  mutable tlb_hits : int;
  mutable tlb_misses : int;
  mutable hw_walks : int;  (** TLB fills from a page table, no VM entry *)
  mutable pagefaults : int;  (** software faults into the VM system *)
  mutable fill_faults : int;  (** faults that found an existing frame *)
  mutable alloc_faults : int;  (** faults that allocated a fresh frame *)
  mutable frames_allocated : int;
  mutable frames_freed : int;
  mutable mmaps : int;
  mutable munmaps : int;
}

val create : unit -> t
val reset : t -> unit

val add : into:t -> t -> unit
(** [add ~into:acc s] accumulates every counter of [s] into [acc] — used
    by the shard engine to merge per-node stats into one world total, in
    node order, so the merged counters are identical at any shard
    width. *)

val total_transfers : t -> int
(** Cache-line transfers of any distance (the "cache-line movement" the
    paper's design minimizes). *)

val pp : Format.formatter -> t -> unit
