(** Machine and cost-model parameters for the cache-coherent multicore
    simulator.

    All latencies are in simulated CPU cycles. Defaults approximate the
    paper's testbed: an 80-core machine built from eight 10-core 2.4 GHz
    Intel E7-8870 sockets. The exact values are calibration knobs; the
    experiments in the paper depend on their relative magnitudes (an L1 hit
    is tens of times cheaper than a cross-socket cache-line transfer, an IPI
    is hundreds of times more expensive still), not on their absolute
    values. *)

type t = {
  ncores : int;  (** number of simulated cores *)
  cores_per_socket : int;  (** cores per socket, for distance costs *)
  l1_hit : int;  (** access to a line already held by this core *)
  local_transfer : int;  (** cache-to-cache transfer within a socket *)
  remote_transfer : int;  (** cache-to-cache transfer across sockets *)
  dram_local : int;  (** miss served from the home socket's DRAM *)
  dram_remote : int;  (** miss served from a remote socket's DRAM *)
  ipi_send : int;
      (** sender-side cost per IPI target (the slow APIC ICR protocol:
          writing the command register and waiting for it to clear) *)
  ipi_channel : int;
      (** global interconnect occupancy per IPI — small, but makes
          machine-wide shootdown storms queue *)
  ipi_deliver : int;  (** latency from send to remote delivery *)
  ipi_handler : int;  (** remote interrupt-handler execution cost *)
  ipi_ack_timeout : int;
      (** sender-side wait per shootdown target before re-interrupting it;
          doubles per retry. Only consulted when an attached fault plan
          delays or stalls acknowledgments ({!Fault.delay_ipi}) — fault-free
          senders wait unboundedly, as real shootdown code does *)
  ipi_max_retries : int;
      (** re-interrupt attempts per target before the sender abandons it *)
  tlb_hit : int;  (** access through a cached translation *)
  tlb_entries : int;  (** per-core TLB capacity *)
  hw_walk_base : int;  (** fixed cost of a hardware page-table walk *)
  page_zero : int;  (** cost of zero-filling a fresh 4 KB frame *)
  disk_read : int;  (** cost of reading a 4 KB page from backing store *)
  op_cost : int;  (** nominal cost of non-memory bookkeeping per op *)
  clock_hz : float;  (** simulated clock rate, for cycles -> seconds *)
  epoch_cycles : int;  (** Refcache maintenance period per core *)
}

val default : ?ncores:int -> ?epoch_cycles:int -> unit -> t
(** [default ()] is the 80-core, 10-cores-per-socket configuration.
    [ncores] overrides the core count; [epoch_cycles] overrides the
    Refcache epoch length (the paper uses 10 ms; tests use much shorter
    epochs to exercise many epoch transitions quickly). *)

val socket_of_core : t -> int -> int
(** [socket_of_core t c] is the socket housing core [c]. *)

val pp : Format.formatter -> t -> unit
