(** Fixed-capacity mutable bit sets.

    Used for cache-line sharer sets and per-page TLB core sets. Capacity is
    fixed at creation; membership operations on out-of-range indices raise
    [Invalid_argument]. *)

type t

val create : int -> t
(** [create n] is an empty set over universe [0 .. n-1]. *)

val capacity : t -> int
val add : t -> int -> unit
val remove : t -> int -> unit
val mem : t -> int -> bool

(** {!mem} without the bounds check — the caller must guarantee
    [0 <= i < capacity] (e.g. a core id against a set sized [ncores]). *)
val unsafe_mem : t -> int -> bool
val clear : t -> unit
val is_empty : t -> bool
val cardinal : t -> int
val iter : (int -> unit) -> t -> unit
val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
val elements : t -> int list
val copy : t -> t
val choose : t -> int option
(** [choose t] is the smallest member, if any. *)

val exists_other : t -> int -> bool
(** [exists_other t i] is [true] iff the set has a member other than [i]
    ([i] itself need not be a member). One mask pass over the words — the
    line-directory miss path's "any other sharer?" query. *)

val mem_range_other : t -> lo:int -> hi:int -> int -> bool
(** [mem_range_other t ~lo ~hi i]: does the set have a member in
    [\[lo, hi)] other than [i]? Mask arithmetic only — the miss path's
    "any other sharer on my socket?" query. *)

val union_into : dst:t -> t -> unit
(** [union_into ~dst src] adds every member of [src] to [dst]. The two sets
    must have the same capacity. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
