type t = {
  ncores : int;
  cores_per_socket : int;
  l1_hit : int;
  local_transfer : int;
  remote_transfer : int;
  dram_local : int;
  dram_remote : int;
  ipi_send : int;
  ipi_channel : int;
  ipi_deliver : int;
  ipi_handler : int;
  ipi_ack_timeout : int;
  ipi_max_retries : int;
  tlb_hit : int;
  tlb_entries : int;
  hw_walk_base : int;
  page_zero : int;
  disk_read : int;
  op_cost : int;
  clock_hz : float;
  epoch_cycles : int;
}

let default ?(ncores = 80) ?(epoch_cycles = 1_000_000) () =
  {
    ncores;
    cores_per_socket = 10;
    l1_hit = 4;
    local_transfer = 120;
    remote_transfer = 300;
    dram_local = 200;
    dram_remote = 350;
    ipi_send = 6_000;
    ipi_channel = 100;
    ipi_deliver = 1_500;
    ipi_handler = 2_500;
    ipi_ack_timeout = 250_000;
    ipi_max_retries = 5;
    tlb_hit = 1;
    tlb_entries = 512;
    hw_walk_base = 40;
    page_zero = 12_000;
    disk_read = 80_000;
    op_cost = 60;
    clock_hz = 2.4e9;
    epoch_cycles;
  }

let socket_of_core t c = c / t.cores_per_socket

let pp ppf t =
  Format.fprintf ppf "machine<%d cores, %d/socket, %.1f GHz>" t.ncores
    t.cores_per_socket (t.clock_hz /. 1e9)
