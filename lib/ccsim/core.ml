type t = {
  id : int;
  socket : int;
  params : Params.t;
  stats : Stats.t;
  obs : Obs.t;
  mutable clock : int;
  mutable pending_intr : int;
  rng : Random.State.t;
  mutable fault : Fault.t option;
}

let create ?obs params stats ~id =
  {
    id;
    socket = Params.socket_of_core params id;
    params;
    stats;
    obs = (match obs with Some o -> o | None -> Obs.create ());
    clock = 0;
    pending_intr = 0;
    rng = Random.State.make [| 0x5eed; id |];
    fault = None;
  }

let tick c n =
  assert (n >= 0);
  c.clock <- c.clock + n

let now c =
  if c.pending_intr > 0 then begin
    c.clock <- c.clock + c.pending_intr;
    c.pending_intr <- 0
  end;
  c.clock

let interrupt c ~cycles =
  if cycles < 0 then invalid_arg "Core.interrupt";
  c.pending_intr <- c.pending_intr + cycles

let pp ppf c = Format.fprintf ppf "core%d@%d" c.id c.clock
