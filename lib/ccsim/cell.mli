(** Typed simulated memory cells.

    A cell is an OCaml mutable value bound to a simulated cache {!Line}:
    reading or writing it through this interface charges the acting core
    according to the coherence cost model. Several cells may share one line
    to model false sharing (e.g. eight 8-byte slots per 64-byte line).

    [peek]/[poke] bypass the cost model; they are for tests and for
    initialization that is not part of a measured run. *)

type 'a t

val make : ?label:string -> Core.t -> 'a -> 'a t
(** [make core v] is a cell on a fresh private line homed on [core]'s
    socket. [label] names the line in checker reports. *)

val make_on : Line.t -> 'a -> 'a t
(** A cell placed on an existing line (false sharing). *)

val line : 'a t -> Line.t
val read : Core.t -> 'a t -> 'a
val write : Core.t -> 'a t -> 'a -> unit

val write_atomic : Core.t -> 'a t -> 'a -> unit
(** Atomic store (e.g. a release-publish in a lock-free protocol). Costs
    the same as {!write} but is tagged [Atomic] in the event stream, so a
    race checker knows it is part of a synchronization protocol rather
    than an unprotected plain store. *)

val cas : Core.t -> 'a t -> expect:'a -> update:'a -> bool
(** Atomic compare-and-swap; always charges a write access (x86 semantics:
    the line is taken exclusive whether or not the CAS succeeds).
    Equality is structural. *)

val fetch_add : Core.t -> int t -> int -> int
(** Atomic add returning the previous value; charges a write access. *)

val peek : 'a t -> 'a
val poke : 'a t -> 'a -> unit
