(** Timed spinlocks.

    A lock is a serializing resource: acquiring it performs one write access
    to the lock's cache line (so contended locks also generate cache-line
    movement) and then waits, if necessary, until the previous holder's
    release time. Because the scheduler executes each simulated operation
    atomically, critical sections are expressed as
    [acquire; ...accesses...; release] within one operation; the lock's
    [free_time] timestamp carries mutual exclusion across operations. *)

type t

val create : ?label:string -> Core.t -> t
(** A fresh unlocked lock on its own cache line. [label] names the lock in
    checker reports; no effect on the cost model. *)

val create_on : ?label:string -> Line.t -> t
(** A lock sharing an existing line (e.g. a per-slot lock bit living in the
    slot's line, as in the radix tree). [label] defaults to the line's. *)

val id : t -> int
(** Stable identity used to correlate instrumentation events. *)

val label : t -> string

val acquire : Core.t -> t -> unit
val release : Core.t -> t -> unit

val try_acquire : ?timeout:int -> Core.t -> t -> bool
(** [try_acquire c t] acquires if the lock is free at [c]'s current time;
    otherwise charges the failed attempt and returns [false].

    With [~timeout] (cycles, default 0) the attempt also succeeds if the
    lock frees within the budget — the caller waits until the release —
    and a failed attempt spins the whole budget. An attached fault plan
    ({!Fault.timeout_locks}) can force a timed attempt on a matching
    label to fail spuriously even when the lock is free. *)

val free_time : t -> int
(** Time of the last release (for tests). *)
