type t = {
  id : int;
  label : string;
  line : Line.t;
  mutable writer_free : int;  (* time the last writer released *)
  mutable readers_free : int;  (* latest reader release time *)
}

let create ?(label = "rwlock") (core : Core.t) =
  let line =
    Line.create ~label core.Core.params core.Core.stats
      ~home_socket:core.Core.socket
  in
  { id = Obs.fresh_lock_id (); label; line; writer_free = 0; readers_free = 0 }

let id t = t.id
let label t = t.label

let quiet_write (core : Core.t) t =
  let obs = core.Core.obs in
  Obs.quiet_incr obs;
  Line.write core t.line;
  Obs.quiet_decr obs

let emit (core : Core.t) ev =
  let obs = core.Core.obs in
  if Obs.active obs then Obs.emit obs ev

let charge_acquire (core : Core.t) t wait_until =
  let stats = core.Core.stats in
  stats.Stats.lock_acquires <- stats.Stats.lock_acquires + 1;
  quiet_write core t;
  let now = Core.now core in
  if wait_until > now then begin
    stats.Stats.lock_contended <- stats.Stats.lock_contended + 1;
    stats.Stats.lock_wait_cycles <-
      stats.Stats.lock_wait_cycles + (wait_until - now);
    core.Core.clock <- wait_until
  end

let read_acquire (core : Core.t) t =
  charge_acquire core t t.writer_free;
  emit core
    (Obs.Acquire
       {
         core = core.Core.id;
         lock = t.id;
         line = Line.id t.line;
         label = t.label;
         rd = true;
       })

let read_release (core : Core.t) t =
  quiet_write core t;
  t.readers_free <- max t.readers_free (Core.now core);
  emit core
    (Obs.Release
       {
         core = core.Core.id;
         lock = t.id;
         line = Line.id t.line;
         label = t.label;
         rd = true;
       })

let write_acquire (core : Core.t) t =
  charge_acquire core t (max t.writer_free t.readers_free);
  emit core
    (Obs.Acquire
       {
         core = core.Core.id;
         lock = t.id;
         line = Line.id t.line;
         label = t.label;
         rd = false;
       })

let write_release (core : Core.t) t =
  quiet_write core t;
  t.writer_free <- Core.now core;
  emit core
    (Obs.Release
       {
         core = core.Core.id;
         lock = t.id;
         line = Line.id t.line;
         label = t.label;
         rd = false;
       })
