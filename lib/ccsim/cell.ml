type 'a t = { mutable v : 'a; line : Line.t }

let make ?(label = "cell") (core : Core.t) v =
  let line =
    Line.create ~label core.Core.params core.Core.stats
      ~home_socket:core.Core.socket
  in
  { v; line }

let make_on line v = { v; line }
let line t = t.line

let read core t =
  Line.read core t.line;
  t.v

let write core t v =
  Line.write core t.line;
  t.v <- v

let write_atomic core t v =
  Line.write_atomic core t.line;
  t.v <- v

let cas core t ~expect ~update =
  Line.write_atomic core t.line;
  if t.v = expect then begin
    t.v <- update;
    true
  end
  else false

let fetch_add core t n =
  Line.write_atomic core t.line;
  let old = t.v in
  t.v <- old + n;
  old

let peek t = t.v
let poke t v = t.v <- v
