exception Out_of_frames
exception Double_free of int

type t = {
  params : Params.t;
  stats : Stats.t;
  mutable next : int;
  free_lists : int list array;  (* per home core *)
  list_lines : Line.t array;  (* cache line of each free-list head *)
  home : (int, int) Hashtbl.t;  (* frame -> home core *)
  content : (int, int) Hashtbl.t;  (* frame -> one-word content summary *)
  allocated : (int, unit) Hashtbl.t;  (* liveness: frames currently out *)
  mutable live : int;
  mutable fault : Fault.t option;
}

let create params stats =
  let n = params.Params.ncores in
  {
    params;
    stats;
    next = 0;
    free_lists = Array.make n [];
    list_lines =
      Array.init n (fun i ->
          Line.create ~label:"physmem:freelist" params stats
            ~home_socket:(Params.socket_of_core params i));
    home = Hashtbl.create 4096;
    content = Hashtbl.create 4096;
    allocated = Hashtbl.create 4096;
    live = 0;
    fault = None;
  }

let set_fault t f = t.fault <- f

let alloc t (core : Core.t) =
  (match t.fault with
  | Some f -> (
      match Fault.frame_budget f with
      | Some budget when t.live >= budget ->
          Fault.note_oom f;
          raise Out_of_frames
      | Some _ | None -> ())
  | None -> ());
  let id = core.Core.id in
  (* Modeled lock-free per-core free list: pops and remote pushes are
     hardware atomics on the list-head line. *)
  Line.write_atomic core t.list_lines.(id);
  let frame =
    match t.free_lists.(id) with
    | f :: rest ->
        t.free_lists.(id) <- rest;
        f
    | [] ->
        let f = t.next in
        t.next <- t.next + 1;
        Hashtbl.replace t.home f id;
        f
  in
  t.stats.Stats.frames_allocated <- t.stats.Stats.frames_allocated + 1;
  t.live <- t.live + 1;
  Hashtbl.replace t.allocated frame ();
  (* zero-fill *)
  Hashtbl.replace t.content frame 0;
  Core.tick core t.params.Params.page_zero;
  frame

let try_alloc t core =
  match alloc t core with f -> Some f | exception Out_of_frames -> None

let free t (core : Core.t) frame =
  let home =
    match Hashtbl.find_opt t.home frame with
    | Some h -> h
    | None -> invalid_arg "Physmem.free: unknown frame"
  in
  (* A frame that is known but not live is being freed twice. Without the
     liveness check the second free would silently push the frame onto the
     free list again — two later allocs would hand out the same frame —
     and [live] would go negative. *)
  if not (Hashtbl.mem t.allocated frame) then raise (Double_free frame);
  Hashtbl.remove t.allocated frame;
  Line.write_atomic core t.list_lines.(home);
  t.free_lists.(home) <- frame :: t.free_lists.(home);
  t.stats.Stats.frames_freed <- t.stats.Stats.frames_freed + 1;
  t.live <- t.live - 1

let is_live t frame = Hashtbl.mem t.allocated frame

let set_content t frame v = Hashtbl.replace t.content frame v

let get_content t frame =
  match Hashtbl.find_opt t.content frame with Some v -> v | None -> 0

let live_frames t = t.live
let total_frames t = t.next
