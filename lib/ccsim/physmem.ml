exception Out_of_frames
exception Double_free of int

type t = {
  params : Params.t;
  stats : Stats.t;
  mutable next : int;
  free_lists : int list array;  (* per home core *)
  list_lines : Line.t array;  (* cache line of each free-list head *)
  (* Frame numbers are dense (0 .. next-1), so per-frame metadata lives in
     flat arrays grown geometrically — the alloc/free/content paths run on
     every page fault and must not hash. *)
  mutable home : int array;  (* frame -> home core *)
  mutable content : int array;  (* frame -> one-word content summary *)
  mutable allocated : Bytes.t;  (* liveness: frames currently out *)
  mutable live : int;
  mutable fault : Fault.t option;
}

let create params stats =
  let n = params.Params.ncores in
  {
    params;
    stats;
    next = 0;
    free_lists = Array.make n [];
    list_lines =
      Array.init n (fun i ->
          Line.create ~label:"physmem:freelist" params stats
            ~home_socket:(Params.socket_of_core params i));
    home = Array.make 4096 (-1);
    content = Array.make 4096 0;
    allocated = Bytes.make 4096 '\000';
    live = 0;
    fault = None;
  }

let set_fault t f = t.fault <- f

let ensure_frame t frame =
  let cap = Array.length t.home in
  if frame >= cap then begin
    let ncap = ref (cap * 2) in
    while frame >= !ncap do
      ncap := !ncap * 2
    done;
    let home = Array.make !ncap (-1) in
    Array.blit t.home 0 home 0 cap;
    t.home <- home;
    let content = Array.make !ncap 0 in
    Array.blit t.content 0 content 0 cap;
    t.content <- content;
    let allocated = Bytes.make !ncap '\000' in
    Bytes.blit t.allocated 0 allocated 0 cap;
    t.allocated <- allocated
  end

let alloc t (core : Core.t) =
  (match t.fault with
  | Some f -> (
      match Fault.frame_budget f with
      | Some budget when t.live >= budget ->
          Fault.note_oom f;
          raise Out_of_frames
      | Some _ | None -> ())
  | None -> ());
  let id = core.Core.id in
  (* Modeled lock-free per-core free list: pops and remote pushes are
     hardware atomics on the list-head line. *)
  Line.write_atomic core t.list_lines.(id);
  let frame =
    match t.free_lists.(id) with
    | f :: rest ->
        t.free_lists.(id) <- rest;
        f
    | [] ->
        let f = t.next in
        t.next <- t.next + 1;
        ensure_frame t f;
        t.home.(f) <- id;
        f
  in
  t.stats.Stats.frames_allocated <- t.stats.Stats.frames_allocated + 1;
  t.live <- t.live + 1;
  Bytes.unsafe_set t.allocated frame '\001';
  (* zero-fill *)
  t.content.(frame) <- 0;
  Core.tick core t.params.Params.page_zero;
  frame

let try_alloc t core =
  match alloc t core with f -> Some f | exception Out_of_frames -> None

let free t (core : Core.t) frame =
  if frame < 0 || frame >= t.next then
    invalid_arg "Physmem.free: unknown frame";
  let home = t.home.(frame) in
  (* A frame that is known but not live is being freed twice. Without the
     liveness check the second free would silently push the frame onto the
     free list again — two later allocs would hand out the same frame —
     and [live] would go negative. *)
  if Bytes.get t.allocated frame = '\000' then raise (Double_free frame);
  Bytes.set t.allocated frame '\000';
  Line.write_atomic core t.list_lines.(home);
  t.free_lists.(home) <- frame :: t.free_lists.(home);
  t.stats.Stats.frames_freed <- t.stats.Stats.frames_freed + 1;
  t.live <- t.live - 1

let is_live t frame =
  frame >= 0 && frame < t.next && Bytes.get t.allocated frame = '\001'

let set_content t frame v =
  if frame < 0 || frame >= t.next then
    invalid_arg "Physmem.set_content: unknown frame";
  t.content.(frame) <- v

let get_content t frame =
  if frame >= 0 && frame < t.next then t.content.(frame) else 0

let live_frames t = t.live
let total_frames t = t.next
