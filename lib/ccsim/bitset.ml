type t = { words : int array; n : int }

(* 32 bits per word: a power of two, so the index split [i lsr 5] /
   [i land 31] is two shift-class instructions — with [Sys.int_size] (63,
   not a power of two) every membership test pays a hardware division.
   The top half of each int is unused; sets here are small (core sets),
   so the space cost is nil. *)
let bits_per_word = 32

let create n =
  if n < 0 then invalid_arg "Bitset.create";
  { words = Array.make ((n + bits_per_word - 1) / bits_per_word) 0; n }

let capacity t = t.n

let check t i =
  if i < 0 || i >= t.n then invalid_arg "Bitset: index out of range"

let add t i =
  check t i;
  let w = i lsr 5 and b = i land 31 in
  t.words.(w) <- t.words.(w) lor (1 lsl b)

let remove t i =
  check t i;
  let w = i lsr 5 and b = i land 31 in
  t.words.(w) <- t.words.(w) land lnot (1 lsl b)

let mem t i =
  check t i;
  let w = i lsr 5 and b = i land 31 in
  t.words.(w) land (1 lsl b) <> 0

(* No bounds check: for callers that guarantee [0 <= i < capacity]
   structurally (core ids against a set sized [ncores]). *)
let unsafe_mem t i =
  Array.unsafe_get t.words (i lsr 5) land (1 lsl (i land 31)) <> 0

let clear t = Array.fill t.words 0 (Array.length t.words) 0

let is_empty t =
  let rec go k =
    k = Array.length t.words || (Array.unsafe_get t.words k = 0 && go (k + 1))
  in
  go 0

(* SWAR popcount on OCaml's 63-bit immediates: the usual 64-bit masks
   work unchanged because the (always zero) sign bit contributes
   nothing. *)
let popcount w =
  let w = w - ((w lsr 1) land 0x5555555555555555) in
  let w = (w land 0x3333333333333333) + ((w lsr 2) land 0x3333333333333333) in
  let w = (w + (w lsr 4)) land 0x0F0F0F0F0F0F0F0F in
  (w * 0x0101010101010101) lsr 56

let cardinal t =
  let acc = ref 0 in
  for k = 0 to Array.length t.words - 1 do
    acc := !acc + popcount (Array.unsafe_get t.words k)
  done;
  !acc

(* Index of the single set bit of [x] (a power of two), by binary
   search — no hardware ctz from OCaml, and the de Bruijn trick needs
   mod-2^64 wraparound that 63-bit ints do not provide. *)
let bit_index x =
  let n = ref 0 and x = ref x in
  if !x land 0xFFFFFFFF = 0 then begin n := 32; x := !x lsr 32 end;
  if !x land 0xFFFF = 0 then begin n := !n + 16; x := !x lsr 16 end;
  if !x land 0xFF = 0 then begin n := !n + 8; x := !x lsr 8 end;
  if !x land 0xF = 0 then begin n := !n + 4; x := !x lsr 4 end;
  if !x land 0x3 = 0 then begin n := !n + 2; x := !x lsr 2 end;
  if !x land 0x1 = 0 then n := !n + 1;
  !n

(* Ascending order, isolating one set bit at a time ([w land -w]), so the
   cost is per member rather than per universe bit — sharer sets are
   almost always sparse. *)
let iter f t =
  for k = 0 to Array.length t.words - 1 do
    let w = ref (Array.unsafe_get t.words k) in
    if !w <> 0 then begin
      let base = k * bits_per_word in
      while !w <> 0 do
        let lsb = !w land (- !w) in
        f (base + bit_index lsb);
        w := !w lxor lsb
      done
    end
  done

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

let elements t = List.rev (fold (fun i acc -> i :: acc) t [])
let copy t = { words = Array.copy t.words; n = t.n }

let choose t =
  let exception Found of int in
  try
    iter (fun i -> raise (Found i)) t;
    None
  with Found i -> Some i

(* The two queries of the line-directory miss path ("is any core but me
   sharing?", "is any core of my socket but me sharing?"): straight mask
   arithmetic, so classifying a miss never walks the members. *)

let exists_other t i =
  check t i;
  let wi = i lsr 5 and b = i land 31 in
  let rec go k =
    if k = Array.length t.words then false
    else
      let w = Array.unsafe_get t.words k in
      let w = if k = wi then w land lnot (1 lsl b) else w in
      w <> 0 || go (k + 1)
  in
  go 0

let mem_range_other t ~lo ~hi i =
  if lo < 0 || hi > t.n || lo > hi then invalid_arg "Bitset.mem_range_other";
  if lo >= hi then false
  else begin
    let wi = i lsr 5 and bi = i land 31 in
    let wlo = lo lsr 5 and whi = (hi - 1) lsr 5 in
    let found = ref false in
    for k = wlo to whi do
      if not !found then begin
        let w = Array.unsafe_get t.words k in
        (* Restrict to [lo, hi) within this word, then drop bit [i]. *)
        let w =
          if k = wlo then w land (-1 lsl (lo land 31)) else w
        in
        let w =
          if k = whi then
            let top = (hi - 1) land 31 in
            if top = bits_per_word - 1 then w
            else w land ((1 lsl (top + 1)) - 1)
          else w
        in
        let w = if k = wi then w land lnot (1 lsl bi) else w in
        if w <> 0 then found := true
      end
    done;
    !found
  end

let union_into ~dst src =
  if dst.n <> src.n then invalid_arg "Bitset.union_into: capacity mismatch";
  for w = 0 to Array.length dst.words - 1 do
    dst.words.(w) <- dst.words.(w) lor src.words.(w)
  done

let equal a b =
  a.n = b.n
  &&
  let rec words_eq i =
    i >= Array.length a.words
    || (a.words.(i) = b.words.(i) && words_eq (i + 1))
  in
  words_eq 0

let pp ppf t =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Format.pp_print_int)
    (elements t)
