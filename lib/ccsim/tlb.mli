(** Per-core translation lookaside buffer.

    A bounded map from virtual page number to physical frame number with
    FIFO replacement. The TLB itself is core-private hardware, so its
    operations cost nothing in the coherence model; callers charge the
    appropriate [tlb_hit] / walk / fault costs. What matters for the paper
    is *when* entries must be removed: x86 hardware gives no notice of what
    a TLB caches, so the kernel must shoot down remote TLBs explicitly. *)

type entry = { pfn : int; writable : bool }

type t

val create : ?obs:Obs.t -> ?core:int -> ?asid:int -> capacity:int -> unit -> t
(** [obs]/[core]/[asid] wire the TLB into the instrumentation stream: every
    membership change (fill, invalidation, silent FIFO eviction, flush) is
    reported as a [Tlb_fill]/[Tlb_drop] on [core] in address space [asid]
    (from {!Obs.fresh_asid}; distinguishes the TLBs of different MMUs),
    letting a checker keep an exact mirror of the contents. Omit all three
    for an unobserved TLB. *)

val lookup : t -> int -> entry option
(** [lookup t vpn] is the cached translation for [vpn], if present. *)

val lookup_packed : t -> int -> int
(** Allocation-free variant of {!lookup} for the MMU fast path: [-1] when
    absent, otherwise [pfn lsl 1 lor writable]. *)

val insert : t -> vpn:int -> pfn:int -> writable:bool -> unit
(** Insert a translation, evicting the oldest entry if full. *)

val invalidate : t -> int -> unit
(** Drop the entry for one vpn (no-op if absent). *)

val invalidate_range : t -> lo:int -> hi:int -> unit
(** Drop entries for vpns in [lo, hi). *)

val flush : t -> unit
(** Drop everything (full TLB flush). *)

val size : t -> int
val mem : t -> int -> bool

val queue_length : t -> int
(** Length of the internal FIFO replacement queue, including entries made
    stale by invalidation. Bounded by roughly twice the capacity — stale
    entries are compacted away once they dominate — which is the invariant
    the leak-regression tests assert. *)
