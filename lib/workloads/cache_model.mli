(** The pure reference model for the cache-serving workload: a
    slot-array map plus an intrusive LRU list, mirroring a
    cache-fastmmap-style page-granular hash cache. Each key hashes to
    exactly one slot ([slot_of_key]); a set steals the slot from a
    colliding key (direct-mapped, like one-entry buckets). No simulation
    types anywhere — the workload replays every observable operation
    against this model and reports divergences. *)

type t

val create : slots:int -> t
(** @raise Invalid_argument if [slots <= 0]. *)

val slots : t -> int
val slot_of_key : t -> int -> int

val get : t -> key:int -> int option
(** [Some value] iff the key's slot holds exactly this key; bumps the
    slot to most-recently-used on a hit. *)

val peek : t -> key:int -> int option
(** [get] without the recency bump (for presence checks that must not
    perturb the LRU order). *)

val set : t -> key:int -> value:int -> unit
(** Occupy the key's slot (evicting any colliding key) and bump it. *)

val delete : t -> key:int -> bool
(** Remove the key if its slot holds it; [true] iff it did. *)

val coldest : t -> n:int -> int list
(** Up to [n] resident slots, least-recently-used first — the eviction
    candidates an LRU sweep would pick. *)

val hottest : t -> int option
(** The most-recently-used resident slot (the resize target). *)

val evict_slot : t -> int -> unit
(** Forget the slot's entry, if any (mirror of a page eviction). *)

val clear : t -> unit
(** Forget everything (mirror of a truncate-to-zero compaction). *)

val resident : t -> int
