open Ccsim

type result = {
  name : string;
  ncores : int;
  page_writes : int;
  cycles : int;
  writes_per_sec : float;
  ipis : int;
  shootdown_events : int;
  transfers : int;
  lock_wait : int;
  shootdown_wait : int;
  line_stall : int;
}

let pp_result ppf r =
  Format.fprintf ppf
    "%-10s %3d cores: %10.0f pages/sec (%d writes, %d ipis, lockwait %d, sdwait %d, stall %d)"
    r.name r.ncores r.writes_per_sec r.page_writes r.ipis r.lock_wait
    r.shootdown_wait r.line_stall

let make_machine ncores =
  Machine.create (Params.default ~ncores ())

(* Run the warmup window, discard its counters, then measure the steady
   state over [duration] — the paper reports steady-state averages. *)
let measure ~warmup ~duration ~on_measure machine (writes : int ref) =
  Machine.run_for machine ~cycles:warmup;
  let writes0 = !writes in
  Stats.reset (Machine.stats machine);
  (* Same boundary for an attached checker (Check.reset_window). *)
  on_measure ();
  Machine.run_for machine ~cycles:(warmup + duration);
  !writes - writes0

(* [debug] is an explicit caller-threaded flag (radixvm-bench's
   --debug-stats), not ambient environment state: benchmark behavior must
   be a pure function of the configuration (simlint's det-getenv rule). *)
let finish ~name ~ncores ~duration ~debug machine page_writes =
  let s = Machine.stats machine in
  if debug then Format.eprintf "[%s/%d] %a@." name ncores Stats.pp s;
  {
    name;
    ncores;
    page_writes;
    cycles = duration;
    writes_per_sec =
      float_of_int page_writes /. Machine.seconds machine duration;
    ipis = s.Stats.ipis;
    shootdown_events = s.Stats.shootdown_events;
    transfers = Stats.total_transfers s;
    lock_wait = s.Stats.lock_wait_cycles;
    shootdown_wait = s.Stats.shootdown_wait_cycles;
    line_stall = s.Stats.line_stall_cycles;
  }

module Make (V : Vm.Vm_intf.S) = struct
  (* Cores' regions are spaced a full leaf node apart so the benchmark
     measures the design, not accidental false sharing between
     neighbouring slots (allocators place per-thread pools far apart). *)
  let local_spacing = 4096

  let local ?(warmup = 4_000_000) ?(region_pages = 1) ?(on_machine = ignore)
      ?(on_measure = ignore) ?(debug = false) ~ncores ~duration make_vm =
    let machine = make_machine ncores in
    on_machine machine;
    let vm = make_vm machine in
    let writes = ref 0 in
    for c = 0 to ncores - 1 do
      let core = Machine.core machine c in
      let vpn = c * local_spacing in
      Machine.set_workload machine c (fun () ->
          V.mmap vm core ~vpn ~npages:region_pages ();
          for p = vpn to vpn + region_pages - 1 do
            (match V.touch vm core ~vpn:p with
            | Vm.Vm_types.Ok -> ()
            | Vm.Vm_types.Segfault -> failwith "local: unexpected segfault"
            | Vm.Vm_types.Oom -> failwith "local: out of frames");
            incr writes
          done;
          V.munmap vm core ~vpn ~npages:region_pages;
          true)
    done;
    let measured = measure ~warmup ~duration ~on_measure machine writes in
    finish ~name:"local" ~ncores ~duration ~debug machine measured

  (* Pipeline: a ring. Each core owns [nbuf] buffer slots in its own part
     of the address space; it maps a slot, writes it, and sends it to the
     next core, which writes it again, unmaps it, and returns the slot to
     its owner through an ack channel. *)
  type pipe_msg = { owner : int; slot : int; vpn : int; pages : int }

  let pipeline ?(warmup = 4_000_000) ?(region_pages = 1) ?(on_machine = ignore)
      ?(on_measure = ignore) ?(debug = false) ~ncores ~duration make_vm =
    if ncores < 2 then invalid_arg "Microbench.pipeline: needs >= 2 cores";
    let machine = make_machine ncores in
    on_machine machine;
    let vm = make_vm machine in
    let writes = ref 0 in
    let nbuf = 4 in
    let slot_spacing = 16 in
    let data_ch =
      Array.init ncores (fun c -> Channel.create (Machine.core machine c))
    in
    let ack_ch =
      Array.init ncores (fun c -> Channel.create (Machine.core machine c))
    in
    for c = 0 to ncores - 1 do
      let core = Machine.core machine c in
      let base = c * local_spacing in
      let free_slots = ref (List.init nbuf (fun i -> i)) in
      let next = (c + 1) mod ncores in
      let touch_range vpn =
        for p = vpn to vpn + region_pages - 1 do
          (match V.touch vm core ~vpn:p with
          | Vm.Vm_types.Ok -> ()
          | Vm.Vm_types.Segfault -> failwith "pipeline: unexpected segfault"
          | Vm.Vm_types.Oom -> failwith "pipeline: out of frames");
          incr writes
        done
      in
      Machine.set_workload machine c (fun () ->
          (* Reclaim slots the downstream core has finished with. *)
          let rec drain_acks () =
            match Channel.recv core ack_ch.(c) with
            | Some slot ->
                free_slots := slot :: !free_slots;
                drain_acks ()
            | None -> ()
          in
          drain_acks ();
          (* Prefer consuming (bounds queue depth), then producing. *)
          (match Channel.recv core data_ch.(c) with
          | Some msg ->
              touch_range msg.vpn;
              V.munmap vm core ~vpn:msg.vpn ~npages:msg.pages;
              Channel.send core ack_ch.(msg.owner) msg.slot
          | None -> (
              match !free_slots with
              | slot :: rest ->
                  free_slots := rest;
                  let vpn = base + (slot * slot_spacing) in
                  V.mmap vm core ~vpn ~npages:region_pages ();
                  touch_range vpn;
                  Channel.send core data_ch.(next)
                    { owner = c; slot; vpn; pages = region_pages }
              | [] -> Machine.wait_hint machine core));
          true)
    done;
    let measured = measure ~warmup ~duration ~on_measure machine writes in
    finish ~name:"pipeline" ~ncores ~duration ~debug machine measured

  (* Global: iterate map-slice / write-everything / unmap-slice with
     barriers between the phases. Page accesses happen in a per-core
     shuffled order, a chunk per step. *)
  type global_state =
    | Mapping
    | Writing of int array * int  (* shuffled pages, position *)
    | Waiting_write of int
    | Unmapping
    | Waiting_next of int

  let global ?(warmup = 4_000_000) ?(slice_pages = 64) ?(on_machine = ignore)
      ?(on_measure = ignore) ?(debug = false) ~ncores ~duration make_vm =
    let machine = make_machine ncores in
    on_machine machine;
    let vm = make_vm machine in
    let writes = ref 0 in
    let region_base = 0 in
    let total_pages = ncores * slice_pages in
    let barrier = Barrier.create (Machine.core machine 0) ~parties:ncores in
    (* Small chunks keep scheduler steps fine-grained: a step must be much
       shorter than the measurement window. *)
    let chunk = 16 in
    for c = 0 to ncores - 1 do
      let core = Machine.core machine c in
      let state = ref Mapping in
      let shuffled () =
        let a = Array.init total_pages (fun i -> region_base + i) in
        let rng = core.Core.rng in
        for i = total_pages - 1 downto 1 do
          let j = Random.State.int rng (i + 1) in
          let tmp = a.(i) in
          a.(i) <- a.(j);
          a.(j) <- tmp
        done;
        a
      in
      Machine.set_workload machine c (fun () ->
          (match !state with
          | Mapping ->
              V.mmap vm core ~vpn:(region_base + (c * slice_pages))
                ~npages:slice_pages ();
              let gen = Barrier.arrive core barrier in
              state := Waiting_write gen
          | Waiting_write gen ->
              if Barrier.passed core barrier gen then
                state := Writing (shuffled (), 0)
              else Machine.wait_hint machine core
          | Writing (pages, pos) ->
              let stop = min (pos + chunk) total_pages in
              for i = pos to stop - 1 do
                (match V.touch vm core ~vpn:pages.(i) with
                | Vm.Vm_types.Ok -> ()
                | Vm.Vm_types.Segfault ->
                    failwith "global: unexpected segfault"
                | Vm.Vm_types.Oom -> failwith "global: out of frames");
                incr writes
              done;
              if stop = total_pages then begin
                let gen = Barrier.arrive core barrier in
                state := Waiting_next gen
              end
              else state := Writing (pages, stop)
          | Waiting_next gen ->
              if Barrier.passed core barrier gen then state := Unmapping
              else Machine.wait_hint machine core
          | Unmapping ->
              V.munmap vm core ~vpn:(region_base + (c * slice_pages))
                ~npages:slice_pages;
              state := Mapping);
          true)
    done;
    let measured = measure ~warmup ~duration ~on_measure machine writes in
    finish ~name:"global" ~ncores ~duration ~debug machine measured
end
