(** The range-lock crossover workload ("bigmap"): concurrent page faults
    on disjoint stripes of one huge mapping, remapped each round so the
    mapping is always freshly folded.

    This is the workload on which the range-lock backends diverge
    hardest: an ideal range lock admits every fault in parallel (the
    stripes are disjoint), the embedded backend pays lock propagation
    when the first fault expands the fold, the partitioned variant
    splits instead of propagating, the list backend funnels every fault
    through one shared ordered list, and the global backend serializes
    outright. See DESIGN.md section 12 and the [rangelock] bench
    target. *)

module Make (V : Vm.Vm_intf.S) : sig
  val bigmap :
    ?warmup:int ->
    ?region_pages:int ->
    ?on_machine:(Ccsim.Machine.t -> unit) ->
    ?on_measure:(unit -> unit) ->
    ?debug:bool ->
    ncores:int ->
    duration:int ->
    (Ccsim.Machine.t -> V.t) ->
    Microbench.result
  (** [bigmap ~ncores ~duration make_vm] runs rounds of map / barrier /
      fault-stripes / barrier / unmap over a [region_pages] region
      (default 512 — exactly one folded interior slot at the default
      9-bit radix geometry) and reports total page writes per second of
      simulated time. Optional arguments as in {!Microbench.Make}. *)
end
