open Ccsim

type t = {
  parties : int;
  count : int Cell.t;
  generation : int Cell.t;
}

let create core ~parties =
  if parties <= 0 then invalid_arg "Barrier.create";
  {
    parties;
    count = Cell.make ~label:"barrier" core 0;
    generation = Cell.make ~label:"barrier" core 0;
  }

let arrive core t =
  let gen = Cell.read core t.generation in
  let arrived = Cell.fetch_add core t.count 1 + 1 in
  if arrived = t.parties then begin
    (* The last arriver's reset and generation-publish are release stores
       in the lock-free protocol, not unprotected plain writes. *)
    Cell.write_atomic core t.count 0;
    Cell.write_atomic core t.generation (gen + 1)
  end;
  gen

let passed core t gen = Cell.read core t.generation > gen
