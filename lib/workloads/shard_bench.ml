open Ccsim

module Shard = Harness.Shard

type config = {
  nodes : int;  (** simulated machines in the world *)
  cores : int;  (** cores per node *)
  shards : int;  (** host domains executing the world *)
  clamp : bool;
      (** clamp the execution width to the host's parallelism
          ({!Harness.Shard.run}); [false] forces the requested layout *)
  duration : int;  (** simulated cycles each node runs for *)
  epoch : int;  (** barrier period in simulated cycles *)
}

type result = {
  scenario : string;
  nodes : int;
  cores : int;
  shards : int;
  ops : int;  (** total scenario operations (page writes) *)
  remote_acks : int;  (** fork/reap round trips completed (fork scenario) *)
  epochs : int;
  xs_sent : int;
  xs_delivered : int;
  sim_cycles : int;
  ipis : int;
  shootdown_events : int;
  digest : string;
      (** MD5 over per-node progress and the merged stats: identical for
          any [shards], which the determinism tests assert *)
}

let scenarios = [ "disjoint"; "fork"; "shared" ]

module Make (V : Vm.Vm_intf.S) = struct
  let spacing = 4096

  (* Build the world, let [setup] install each node's workloads and
     handlers, run to completion, and fold the counters into one
     layout-independent result. *)
  let run_world (cfg : config) ~scenario ~setup =
    if cfg.nodes < 1 || cfg.cores < 1 then invalid_arg "Shard_bench";
    let params =
      List.init cfg.nodes (fun _ -> Params.default ~ncores:cfg.cores ())
    in
    let w = Shard.create ~epoch:cfg.epoch params in
    let ops = Array.make cfg.nodes 0 in
    let acks = Array.make cfg.nodes 0 in
    for n = 0 to cfg.nodes - 1 do
      setup w cfg (Shard.node w n) ~ops ~acks
    done;
    Shard.run ~clamp:cfg.clamp ~shards:cfg.shards w;
    let stats = Shard.total_stats w in
    let total a = Array.fold_left ( + ) 0 a in
    let buf = Buffer.create 256 in
    Buffer.add_string buf scenario;
    for n = 0 to cfg.nodes - 1 do
      Buffer.add_string buf
        (Printf.sprintf " %d:%d:%d:%d" n
           (Machine.elapsed (Shard.machine (Shard.node w n)))
           ops.(n) acks.(n))
    done;
    Buffer.add_string buf
      (Printf.sprintf " x%d/%d " (Shard.sent w) (Shard.delivered w));
    Buffer.add_string buf (Format.asprintf "%a" Stats.pp stats);
    {
      scenario;
      nodes = cfg.nodes;
      cores = cfg.cores;
      shards = cfg.shards;
      ops = total ops;
      remote_acks = total acks;
      epochs = Shard.epoch w;
      xs_sent = Shard.sent w;
      xs_delivered = Shard.delivered w;
      sim_cycles = Shard.elapsed w;
      ipis = stats.Stats.ipis;
      shootdown_events = stats.Stats.shootdown_events;
      digest = Digest.to_hex (Digest.string (Buffer.contents buf));
    }

  let expect_ok what = function
    | Vm.Vm_types.Ok -> ()
    | Vm.Vm_types.Segfault -> failwith (what ^ ": unexpected segfault")
    | Vm.Vm_types.Oom -> failwith (what ^ ": out of frames")

  (* Each core of each node mmaps, touches, and munmaps its own private
     region: the RadixVM best case. Zero cross-shard traffic, so the
     world decomposes perfectly over shards. *)
  let disjoint_pages = 4

  let setup_disjoint_core (cfg : config) nd ~ops c =
    let machine = Shard.machine nd in
    let n = Shard.node_id nd in
    let vm = V.create machine in
    let core = Machine.core machine c in
    let vpn = c * spacing in
    Machine.set_workload machine c (fun () ->
        if Core.now core >= cfg.duration then false
        else begin
          V.mmap vm core ~vpn ~npages:disjoint_pages ();
          for p = vpn to vpn + disjoint_pages - 1 do
            expect_ok "disjoint" (V.touch vm core ~vpn:p);
            ops.(n) <- ops.(n) + 1
          done;
          V.munmap vm core ~vpn ~npages:disjoint_pages;
          true
        end)

  let setup_disjoint _w (cfg : config) nd ~ops ~acks:_ =
    for c = 0 to cfg.cores - 1 do
      setup_disjoint_core cfg nd ~ops c
    done

  (* Fork-heavy: core 0 of each node builds and tears down short-lived
     address spaces; every [fork_remote_period]-th iteration it asks the
     next node to spawn one instead (an epoch-batched Xmsg), whose
     spawner core answers with a reap acknowledgment one epoch later.
     Remaining cores run the disjoint filler. *)
  let fork_pages = 8
  let fork_remote_period = 2
  let tag_spawn = 1
  let tag_reap = 2

  let setup_fork w (cfg : config) nd ~ops ~acks =
    let machine = Shard.machine nd in
    let n = Shard.node_id nd in
    let spawn_ch = Channel.create (Machine.core machine (min 1 (cfg.cores - 1))) in
    Shard.on_message nd (fun ~time ~src payload ->
        match payload with
        | Machine.Xmsg { tag; _ } when tag = tag_spawn ->
            Shard.post nd spawn_ch src ~time
        | Machine.Xmsg { tag; _ } when tag = tag_reap ->
            acks.(n) <- acks.(n) + 1
        | _ -> ());
    let spawn_one core base =
      let vm = V.create machine in
      V.mmap vm core ~vpn:base ~npages:fork_pages ();
      for p = base to base + fork_pages - 1 do
        expect_ok "fork" (V.touch vm core ~vpn:p);
        ops.(n) <- ops.(n) + 1
      done;
      V.munmap vm core ~vpn:base ~npages:fork_pages
    in
    let core0 = Machine.core machine 0 in
    let iter = ref 0 in
    Machine.set_workload machine 0 (fun () ->
        if Core.now core0 >= cfg.duration then false
        else begin
          spawn_one core0 0;
          incr iter;
          if cfg.nodes > 1 && !iter mod fork_remote_period = 0 then
            Machine.uplink_send machine
              ~dst:((n + 1) mod cfg.nodes)
              ~sent:(Core.now core0)
              (Machine.Xmsg { tag = tag_spawn; a = n; b = !iter });
          true
        end);
    if cfg.cores > 1 then begin
      let core1 = Machine.core machine 1 in
      Machine.set_workload machine 1 (fun () ->
          if Core.now core1 >= cfg.duration then false
          else begin
            (match Channel.recv core1 spawn_ch with
            | Some src ->
                spawn_one core1 spacing;
                Machine.uplink_send machine ~dst:src ~sent:(Core.now core1)
                  (Machine.Xmsg { tag = tag_reap; a = n; b = 0 })
            | None -> Machine.wait_hint machine core1);
            true
          end)
    end;
    ignore w;
    for c = 2 to cfg.cores - 1 do
      setup_disjoint_core cfg nd ~ops c
    done

  (* Shared-cache style: every node maps the same [file_pages]-page file;
     reads touch the local mapping, writes additionally shoot down every
     other node's mapping of the page (remote IPIs through the epoch
     batch) and flush a refcount delta to the page's home node, which
     keeps the authoritative per-page ledger. *)
  let file_pages = 64
  let chunk = 8

  let setup_shared w (cfg : config) nd ~ops ~acks:_ =
    let machine = Shard.machine nd in
    let n = Shard.node_id nd in
    let vm = V.create machine in
    let ledger = Array.make file_pages 0 in
    Shard.on_message nd (fun ~time:_ ~src:_ payload ->
        match payload with
        | Machine.Xrc { oid; delta } ->
            ledger.(oid) <- ledger.(oid) + delta
        | _ -> ());
    (* The whole file is mapped up front on core 0 (setup time, before
       the world runs). *)
    V.mmap vm (Machine.core machine 0) ~vpn:0 ~npages:file_pages ();
    let others =
      List.filter (fun m -> m <> n) (List.init cfg.nodes (fun m -> m))
    in
    for c = 0 to cfg.cores - 1 do
      let core = Machine.core machine c in
      Machine.set_workload machine c (fun () ->
          if Core.now core >= cfg.duration then false
          else begin
            for _ = 1 to chunk do
              let rng = core.Core.rng in
              let page =
                if Random.State.int rng 4 < 3 then Random.State.int rng 8
                else Random.State.int rng file_pages
              in
              expect_ok "shared" (V.touch vm core ~vpn:page);
              ops.(n) <- ops.(n) + 1;
              if Random.State.int rng 4 = 0 && cfg.nodes > 1 then begin
                Ipi.remote machine core
                  ~targets:
                    (List.map (fun m -> (m, page mod cfg.cores)) others);
                Machine.uplink_send machine ~dst:(page mod cfg.nodes)
                  ~sent:(Core.now core)
                  (Machine.Xrc { oid = page; delta = 1 })
              end
            done;
            true
          end)
    done;
    ignore w

  let run cfg ~scenario =
    let setup =
      match scenario with
      | "disjoint" -> setup_disjoint
      | "fork" -> setup_fork
      | "shared" -> setup_shared
      | s -> invalid_arg ("Shard_bench.run: unknown scenario " ^ s)
    in
    run_world cfg ~scenario ~setup
end
