(** The three section-5.3 microbenchmarks — local, pipeline, global —
    runnable against any VM system (Figure 5) and any MMU configuration
    (Figure 9).

    - {b local}: each core mmaps a private 4 KB region, writes it, and
      munmaps it, in a loop — the per-thread memory-pool pattern.
    - {b pipeline}: each core mmaps a region, writes it, and passes it to
      the next core, which writes it again and munmaps it — the
      producer/consumer pattern (each munmap needs exactly one remote
      shootdown under targeted tracking).
    - {b global}: each core mmaps a slice of one large shared region
      (256 KB/core by default, giving the paper's 20 MB region at 80
      cores), all cores write every page of the whole region in shuffled
      order, then each core munmaps its slice — the
      shared-data-structure pattern.

    Results are reported as total page writes per second of simulated time,
    the paper's Figure 5 metric. *)

type result = {
  name : string;
  ncores : int;
  page_writes : int;
  cycles : int;  (** simulated duration *)
  writes_per_sec : float;
  ipis : int;
  shootdown_events : int;
  transfers : int;  (** cache-line transfers during the run *)
  lock_wait : int;  (** cycles spent waiting on locks *)
  shootdown_wait : int;  (** cycles senders waited for shootdown acks *)
  line_stall : int;  (** cycles queued on busy cache lines *)
}

val pp_result : Format.formatter -> result -> unit

module Make (V : Vm.Vm_intf.S) : sig
  val local :
    ?warmup:int -> ?region_pages:int -> ?on_machine:(Ccsim.Machine.t -> unit) ->
    ?on_measure:(unit -> unit) -> ?debug:bool ->
    ncores:int -> duration:int ->
    (Ccsim.Machine.t -> V.t) -> result
  (** [local ~ncores ~duration make_vm] builds a fresh machine with
      [ncores] cores and the VM via [make_vm], runs [warmup] cycles
      (default 4M) to reach steady state — initial radix expansion and the
      first Refcache epochs are startup effects the paper's steady-state
      averages exclude — then measures for [duration] cycles.
      [on_machine] runs on the fresh machine before the VM is built —
      the hook used to attach a [Check] instance; [on_measure] runs at
      the warmup/measure boundary, right after the stats reset (the hook
      for [Check.reset_window], so sharing is judged over the same
      steady-state window as the cost model's counters). [debug] (default
      false) dumps the machine's stat counters to stderr when the run
      finishes — an explicit flag, threaded from radixvm-bench's
      --debug-stats, never ambient environment state. *)

  val pipeline :
    ?warmup:int -> ?region_pages:int -> ?on_machine:(Ccsim.Machine.t -> unit) ->
    ?on_measure:(unit -> unit) -> ?debug:bool ->
    ncores:int -> duration:int ->
    (Ccsim.Machine.t -> V.t) -> result

  val global :
    ?warmup:int -> ?slice_pages:int -> ?on_machine:(Ccsim.Machine.t -> unit) ->
    ?on_measure:(unit -> unit) -> ?debug:bool ->
    ncores:int -> duration:int ->
    (Ccsim.Machine.t -> V.t) -> result
end
