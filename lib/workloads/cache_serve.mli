(** The shared-memory cache serving workload ("mmap in anger").

    The production pattern of mmap-backed caches like cache-fastmmap: many
    serving cores — optionally many forked processes — map one shared
    region over a page-cache-backed file, hash keys to page-granular
    slots, and run a Zipf-skewed get/set/delete mix. An LRU sweep
    periodically munmaps + remaps cold slots and drops them from the page
    cache (real targeted shootdowns plus Refcache-deferred frame
    reclamation under live traffic), with occasional slot-resize
    mprotects. Unlike the microbenchmarks, every VM operation here is on
    the workload's own hot path: the figure this produces is
    throughput-per-core of the *service*, not of mmap itself.

    Three entry points share the machinery:
    - {!Make.serve}: the concurrent throughput run, generic over the VM
      system (RadixVM, Linux-like, Bonsai) — one multithreaded process.
    - {!Procs.serve}: the concurrent throughput run as one forked process
      per core through {!Os.Kernel} syscalls (RadixVM only).
    - {!Session.run}: the sequential, model-checked correctness oracle —
      every observable operation is cross-checked against {!Cache_model},
      with multi-process fork, page-cache eviction, VFS truncate
      compaction, ENOMEM tolerance, and crash-reap recovery. *)

type result = {
  name : string;
  system : string;
  ncores : int;
  ops : int;  (* operations completed in the measured window *)
  gets : int;
  sets : int;
  dels : int;
  lost : int;  (* accesses that faulted on a slot mid-eviction *)
  evictions : int;
  writebacks : int;  (* dirty slots written back before eviction *)
  resizes : int;  (* slot-resize mprotect round-trips *)
  ops_per_sec : float;
  ops_per_core : float;
  cycles : int;
  ipis : int;
  shootdown_events : int;
  lock_wait : int;
  shootdown_wait : int;
  line_stall : int;
}

val pp_result : Format.formatter -> result -> unit

(** The page-cache hooks a VM system may provide. The generic serve loop
    cannot name RadixVM's page cache, so callers inject the three
    operations the sweep needs; [None] (the baselines) means eviction is
    munmap + remap only and writeback accounting is off. *)
type 'vm cache_ops = {
  co_evict : 'vm -> Ccsim.Core.t -> page:int -> unit;
  co_mark_dirty : 'vm -> Ccsim.Core.t -> page:int -> unit;
  co_dirty : 'vm -> page:int -> bool;
  co_clear_dirty : 'vm -> Ccsim.Core.t -> page:int -> unit;
}

module Make (V : Vm.Vm_intf.S) : sig
  val serve :
    ?name:string ->
    ?warmup:int ->
    ?slots:int ->
    ?keys:int ->
    ?zipf_s:float ->
    ?evict_every:int ->
    ?resize_every:int ->
    ?seed:int ->
    ?file:int ->
    ?cache_ops:V.t cache_ops ->
    ?on_machine:(Ccsim.Machine.t -> unit) ->
    ?on_measure:(unit -> unit) ->
    ncores:int ->
    duration:int ->
    (Ccsim.Machine.t -> V.t) ->
    result
  (** One shared address space, every core serving. [file] backs the
      region with that fd (shared through the page cache on RadixVM);
      absent, the region is anonymous. Core 0 runs the LRU sweep every
      [evict_every] of its own operations and a slot-resize mprotect
      every [resize_every] sweeps. [keys] defaults to [2 * slots] (so
      distinct keys collide in slots, as in a real direct-mapped page
      cache). *)
end

module Procs : sig
  val serve :
    ?name:string ->
    ?warmup:int ->
    ?slots:int ->
    ?keys:int ->
    ?zipf_s:float ->
    ?evict_every:int ->
    ?resize_every:int ->
    ?seed:int ->
    ?on_machine:(Ccsim.Machine.t -> unit) ->
    ?on_measure:(unit -> unit) ->
    ncores:int ->
    duration:int ->
    unit ->
    result
  (** The multi-process shape: boot {!Os.Kernel}, [Kernel.sys_fork] one
      process per core from init, each mapping the cache file with
      [sys_mmap]; every serving operation and every sweep munmap/remap
      goes through the syscall layer. Each sweep [resize_every] rounds
      additionally truncates the file to zero and back ({!Os.Vfs}'s
      resize hook drops every cached page) — bulk memory pressure. *)
end

module Session : sig
  type outcome = {
    ops_done : int;
    gets : int;
    hits : int;
    misses : int;
    sets : int;
    dels : int;
    evictions : int;
    writebacks : int;
    compactions : int;
    resizes : int;
    enomem : int;  (* operations refused under a frame budget *)
    aborts : int;  (* operations refused at an injected abort point *)
    crashes_reaped : int;
    served_after_crash : bool;  (* a sibling completed a get/set after a crash *)
    divergences : string list;  (* observable mismatches vs Cache_model *)
    history : string;  (* one line per observable operation *)
  }

  val run :
    ?ncores:int ->
    ?procs:int ->
    ?via_kernel:bool ->
    ?slots:int ->
    ?keys:int ->
    ?zipf_s:float ->
    ?evict_every:int ->
    ?resize_every:int ->
    ?compact_every:int ->
    ?rangelock:Locks.Range_lock.kind ->
    ?seed:int ->
    ?ops:int ->
    ?on_machine:(Ccsim.Machine.t -> unit) ->
    ?arm:(unit -> unit) ->
    unit ->
    outcome
  (** The correctness oracle: a sequential driver applies [ops]
      operations across [procs] forked address spaces (direct
      {!Vm.Radixvm} forks by default; [via_kernel] boots {!Os.Kernel} and
      uses [sys_fork]/[sys_mmap]/user access instead), rotating the
      driving core, and cross-checks every get/set/delete against
      {!Cache_model}. Every [evict_every] operations the model's coldest
      slots are written back if dirty, munmapped from every live address
      space, dropped from the page cache, remapped, and drained — so the
      next access is a genuine reload and its emptiness is exactly
      predicted by the model. [compact_every > 0] adds whole-file
      truncate-to-zero compactions through the VFS resize hook. A
      divergence-free run's [history] is a pure function of the
      configuration — byte-identical across range-lock backends.

      Fault tolerant: ENOMEM and injected aborts are counted and leave
      the model consistent; an injected crash reaps exactly the crashed
      address space while siblings keep serving. [arm] runs after setup
      (initial mmap + forks) and before the first operation — the place
      to turn on a fault plan so setup itself stays clean. *)
end
