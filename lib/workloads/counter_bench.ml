open Ccsim

type result = {
  scheme : string;
  ncores : int;
  iterations : int;
  iters_per_sec : float;
  transfers : int;
}

let pp_result ppf r =
  Format.fprintf ppf "%-12s %3d cores: %12.0f iters/sec" r.scheme r.ncores
    r.iters_per_sec

module Make (C : Refcnt.Counter_intf.S) = struct
  module R = Vm.Radixvm.Make (C)

  let run ?(warmup = 1_000_000) ?(on_machine = ignore) ?(on_measure = ignore)
      ~ncores ~duration () =
    let machine = Machine.create (Params.default ~ncores ()) in
    on_machine machine;
    let vm = R.create machine in
    let core0 = Machine.core machine 0 in
    (* The one shared physical page; the benchmark holds a base reference
       so it is never actually freed. *)
    let pfn = Physmem.alloc (Machine.physmem machine) core0 in
    let handle = C.make (R.counters vm) core0 ~init:1 ~on_free:(fun _ -> ()) in
    (* start measurement from the post-setup clock *)
    let start = Machine.elapsed machine in
    Array.iter
      (fun (c : Core.t) -> c.Core.clock <- max c.Core.clock start)
      (Machine.cores machine);
    let iters = ref 0 in
    for c = 0 to ncores - 1 do
      let core = Machine.core machine c in
      let vpn = (c + 1) * 4096 in
      Machine.set_workload machine c (fun () ->
          R.mmap_shared_frame vm core ~vpn ~npages:1 ~pfn handle;
          R.munmap vm core ~vpn ~npages:1;
          incr iters;
          true)
    done;
    (* Warm up (initial radix expansion, first Refcache epochs), then
       measure the steady state. *)
    Machine.run_for machine ~cycles:(start + warmup);
    let iters0 = !iters in
    Stats.reset (Machine.stats machine);
    on_measure ();
    Machine.run_for machine ~cycles:(start + warmup + duration);
    {
      scheme = C.name;
      ncores;
      iterations = !iters - iters0;
      iters_per_sec =
        float_of_int (!iters - iters0) /. Machine.seconds machine duration;
      transfers = Stats.total_transfers (Machine.stats machine);
    }
end
