open Ccsim

type profile = { name : string; vma_count : int; rss_pages : int; seed : int }

(* VMA counts are the paper's "VMA tree" bytes divided by ~200 bytes per
   VMA; resident sets are the paper's RSS column. *)
let firefox = { name = "Firefox"; vma_count = 585; rss_pages = 90_112; seed = 11 }
let chrome = { name = "Chrome"; vma_count = 620; rss_pages = 38_912; seed = 22 }
let apache = { name = "Apache"; vma_count = 220; rss_pages = 4_096; seed = 33 }
let mysql = { name = "MySQL"; vma_count = 90; rss_pages = 21_504; seed = 44 }
let all = [ firefox; chrome; apache; mysql ]

type row = {
  profile : profile;
  rss_bytes : int;
  linux_vma_bytes : int;
  linux_pt_bytes : int;
  radix_bytes : int;
  ratio : float;
}

(* Generate a realistic layout: mostly small mappings (libraries' text and
   data segments, thread stacks), a few large ones (heaps, mapped caches),
   separated by guard gaps. Returns (start, npages, resident) triples with
   total resident equal to the profile's RSS. Resident pages are spread
   across each mapping (stride sampling) rather than packed at the front —
   real heaps fault scattered pages, which is what makes hardware page
   tables sparse. *)
let layout p =
  let rng = Random.State.make [| p.seed |] in
  let sizes =
    List.init p.vma_count (fun _ ->
        match Random.State.int rng 100 with
        | n when n < 70 -> 1 + Random.State.int rng 16
        | n when n < 95 -> 17 + Random.State.int rng 240
        | _ -> 257 + Random.State.int rng 4096)
  in
  let total = List.fold_left ( + ) 0 sizes in
  (* Applications map far more than they keep resident (lazy heaps, mapped
     files): target about 3x RSS of mapped space, growing the large
     mappings if the random layout came up short. *)
  let target = 3 * p.rss_pages in
  let sizes =
    if total >= target then sizes
    else
      let deficit = target - total in
      let boost = (deficit / max 1 (p.vma_count / 10)) + 1 in
      List.mapi (fun i s -> if i mod 10 = 0 then s + boost else s) sizes
  in
  let total = List.fold_left ( + ) 0 sizes in
  let remaining = ref p.rss_pages in
  let cursor = ref 4096 in
  List.map
    (fun npages ->
      let start = !cursor in
      cursor := start + npages + 8 + Random.State.int rng 56;
      let resident =
        min !remaining (min npages (npages * p.rss_pages / max 1 total))
      in
      remaining := !remaining - resident;
      (start, npages, resident))
    sizes

(* Fault [resident] of the mapping's pages, spread by stride sampling. *)
let iter_resident ~start ~npages ~resident f =
  if resident >= npages then
    for vpn = start to start + npages - 1 do
      f vpn
    done
  else if resident > 0 then
    for i = 0 to resident - 1 do
      f (start + (i * npages / resident))
    done

module R = Vm.Radixvm.Default

let measure p =
  let vmas = layout p in
  (* Linux representation *)
  let m_linux = Machine.create (Params.default ~ncores:1 ()) in
  let linux = Baselines.Linux_vm.create m_linux in
  let c = Machine.core m_linux 0 in
  List.iter
    (fun (start, npages, resident) ->
      Baselines.Linux_vm.mmap linux c ~vpn:start ~npages ();
      iter_resident ~start ~npages ~resident (fun vpn ->
          match Baselines.Linux_vm.touch linux c ~vpn with
          | Vm.Vm_types.Ok -> ()
          | Vm.Vm_types.Segfault -> failwith "snapshot: segfault (linux)"
          | Vm.Vm_types.Oom -> failwith "snapshot: out of frames (linux)"))
    vmas;
  (* RadixVM representation *)
  let m_radix = Machine.create (Params.default ~ncores:1 ()) in
  let radix = R.create m_radix in
  let c = Machine.core m_radix 0 in
  List.iter
    (fun (start, npages, resident) ->
      R.mmap radix c ~vpn:start ~npages ();
      iter_resident ~start ~npages ~resident (fun vpn ->
          match R.touch radix c ~vpn with
          | Vm.Vm_types.Ok -> ()
          | Vm.Vm_types.Segfault -> failwith "snapshot: segfault (radix)"
          | Vm.Vm_types.Oom -> failwith "snapshot: out of frames (radix)"))
    vmas;
  let linux_vma_bytes = Baselines.Linux_vm.index_bytes linux in
  let linux_pt_bytes = Baselines.Linux_vm.pt_bytes linux in
  let radix_bytes = R.index_bytes radix in
  {
    profile = p;
    rss_bytes = p.rss_pages * Vm.Vm_types.page_size;
    linux_vma_bytes;
    linux_pt_bytes;
    radix_bytes;
    ratio =
      float_of_int radix_bytes
      /. float_of_int (linux_vma_bytes + linux_pt_bytes);
  }

let mb bytes = float_of_int bytes /. (1024. *. 1024.)
let kb bytes = float_of_int bytes /. 1024.

let pp_row ppf r =
  Format.fprintf ppf
    "%-8s RSS %6.0f MB | VMA tree %6.0f KB | page table %8.0f KB | radix %8.0f KB (%.1fx)"
    r.profile.name (mb r.rss_bytes) (kb r.linux_vma_bytes)
    (kb r.linux_pt_bytes) (kb r.radix_bytes) r.ratio
