open Ccsim

type result = {
  structure : string;
  readers : int;
  writers : int;
  lookups : int;
  lookups_per_sec : float;
  write_pairs : int;
  write_pairs_per_sec : float;
}

let pp_result ppf r =
  Format.fprintf ppf
    "%-8s %3d readers / %2d writers: %12.0f lookups/sec, %10.0f pairs/sec"
    r.structure r.readers r.writers r.lookups_per_sec r.write_pairs_per_sec

let regions = 1_000
let key_stride = 211

let present_key i = i * key_stride

(* Writers pick random keys inside private subspaces disjoint from the
   present keys and from each other, so readers and writers never operate
   on the same key — any slowdown is pure cache-line interference. *)
let writer_key w (rng : Random.State.t) =
  ((w + 1) lsl 20) + Random.State.int rng (1 lsl 18)

(* Setup (populating the structure) happens in simulated time too; start
   every core at the post-setup instant so measurement begins from a
   consistent clock. *)
let align_clocks machine =
  let t = Machine.elapsed machine in
  Array.iter (fun (c : Core.t) -> c.Core.clock <- t) (Machine.cores machine);
  t

(* [debug] is an explicit caller-threaded flag (radixvm-bench's
   --debug-stats), not ambient environment state: benchmark behavior must
   be a pure function of the configuration (simlint's det-getenv rule). *)
let finish ~structure ~readers ~writers ~duration ~debug machine lookups pairs =
  if debug then
    Format.eprintf "[%s r=%d w=%d] %a@." structure readers writers Stats.pp
      (Machine.stats machine);
  let secs = float_of_int duration /. (Params.default ()).Params.clock_hz in
  {
    structure;
    readers;
    writers;
    lookups;
    lookups_per_sec = float_of_int lookups /. secs;
    write_pairs = pairs;
    write_pairs_per_sec = float_of_int pairs /. secs;
  }

let skiplist ?(debug = false) ~readers ~writers ~duration () =
  let ncores = max 1 (readers + writers) in
  let machine = Machine.create (Params.default ~ncores ()) in
  let core0 = Machine.core machine 0 in
  let t = Structures.Skiplist.create core0 in
  for i = 0 to regions - 1 do
    Structures.Skiplist.insert core0 t (present_key i) i
  done;
  let start = align_clocks machine in
  let lookups = ref 0 and pairs = ref 0 in
  for c = 0 to readers - 1 do
    let core = Machine.core machine c in
    Machine.set_workload machine c (fun () ->
        Core.tick core core.Core.params.Params.op_cost;
        let i = Random.State.int core.Core.rng regions in
        (match Structures.Skiplist.find core t (present_key i) with
        | Some _ -> incr lookups
        | None -> failwith "skiplist bench: present key missing");
        true)
  done;
  for w = 0 to writers - 1 do
    let c = readers + w in
    let core = Machine.core machine c in
    Machine.set_workload machine c (fun () ->
        Core.tick core core.Core.params.Params.op_cost;
        let k = writer_key w core.Core.rng in
        Structures.Skiplist.insert core t k w;
        ignore (Structures.Skiplist.remove core t k);
        incr pairs;
        true)
  done;
  Machine.run_for machine ~cycles:(start + duration);
  finish ~structure:"skiplist" ~readers ~writers ~duration ~debug machine
    !lookups !pairs

let radix ?(debug = false) ~readers ~writers ~duration () =
  let ncores = max 1 (readers + writers) in
  let machine = Machine.create (Params.default ~ncores ()) in
  let rc = Refcnt.Refcache.create machine in
  let core0 = Machine.core machine 0 in
  (* Three levels of 9 bits cover the key range comfortably. *)
  let t = Radix.create ~bits:9 ~levels:3 machine rc core0 in
  for i = 0 to regions - 1 do
    let k = present_key i in
    let lk = Radix.lock_range t core0 ~lo:k ~hi:(k + 1) in
    Radix.fill_range t core0 lk i;
    Radix.unlock_range t core0 lk
  done;
  let start = align_clocks machine in
  let lookups = ref 0 and pairs = ref 0 in
  for c = 0 to readers - 1 do
    let core = Machine.core machine c in
    Machine.set_workload machine c (fun () ->
        Core.tick core core.Core.params.Params.op_cost;
        let i = Random.State.int core.Core.rng regions in
        (match Radix.lookup t core (present_key i) with
        | Some _ -> incr lookups
        | None -> failwith "radix bench: present key missing");
        true)
  done;
  for w = 0 to writers - 1 do
    let c = readers + w in
    let core = Machine.core machine c in
    Machine.set_workload machine c (fun () ->
        Core.tick core core.Core.params.Params.op_cost;
        let k = writer_key w core.Core.rng in
        let lk = Radix.lock_range t core ~lo:k ~hi:(k + 1) in
        Radix.fill_range t core lk w;
        Radix.unlock_range t core lk;
        let lk = Radix.lock_range t core ~lo:k ~hi:(k + 1) in
        ignore (Radix.clear_range t core lk);
        Radix.unlock_range t core lk;
        incr pairs;
        true)
  done;
  Machine.run_for machine ~cycles:(start + duration);
  finish ~structure:"radix" ~readers ~writers ~duration ~debug machine !lookups
    !pairs
