type t = {
  slots : int;
  key : int array;  (* -1 = empty slot *)
  value : int array;
  (* Intrusive doubly-linked recency list over resident slots; -1 = nil.
     Head is most-recently-used. *)
  prev : int array;
  next : int array;
  mutable head : int;
  mutable tail : int;
  mutable resident : int;
}

let create ~slots =
  if slots <= 0 then invalid_arg "Cache_model.create";
  {
    slots;
    key = Array.make slots (-1);
    value = Array.make slots 0;
    prev = Array.make slots (-1);
    next = Array.make slots (-1);
    head = -1;
    tail = -1;
    resident = 0;
  }

let slots t = t.slots
let slot_of_key t key = key mod t.slots
let resident t = t.resident

let unlink t s =
  let p = t.prev.(s) and n = t.next.(s) in
  if p >= 0 then t.next.(p) <- n else t.head <- n;
  if n >= 0 then t.prev.(n) <- p else t.tail <- p;
  t.prev.(s) <- -1;
  t.next.(s) <- -1

let push_front t s =
  t.prev.(s) <- -1;
  t.next.(s) <- t.head;
  if t.head >= 0 then t.prev.(t.head) <- s else t.tail <- s;
  t.head <- s

let touch t s =
  if t.head <> s then begin
    unlink t s;
    push_front t s
  end

let peek t ~key =
  let s = slot_of_key t key in
  if t.key.(s) = key then Some t.value.(s) else None

let get t ~key =
  let s = slot_of_key t key in
  if t.key.(s) = key then begin
    touch t s;
    Some t.value.(s)
  end
  else None

let set t ~key ~value =
  let s = slot_of_key t key in
  if t.key.(s) = -1 then begin
    t.resident <- t.resident + 1;
    push_front t s
  end
  else touch t s;
  t.key.(s) <- key;
  t.value.(s) <- value

let drop t s =
  unlink t s;
  t.key.(s) <- -1;
  t.resident <- t.resident - 1

let delete t ~key =
  let s = slot_of_key t key in
  if t.key.(s) = key then begin
    drop t s;
    true
  end
  else false

let evict_slot t s = if t.key.(s) >= 0 then drop t s

let coldest t ~n =
  let rec walk acc s n =
    if s < 0 || n = 0 then List.rev acc
    else walk (s :: acc) t.prev.(s) (n - 1)
  in
  walk [] t.tail n

let hottest t = if t.head >= 0 then Some t.head else None

let clear t =
  Array.fill t.key 0 t.slots (-1);
  Array.fill t.prev 0 t.slots (-1);
  Array.fill t.next 0 t.slots (-1);
  t.head <- -1;
  t.tail <- -1;
  t.resident <- 0
