open Ccsim

(* The range-lock crossover workload: a fault storm on one huge mapping.

   Core 0 maps a [region_pages] region with a single mmap — at the
   default radix geometry (9 bits) 512 aligned pages collapse into one
   folded interior slot. Every core then fault-writes its own disjoint
   stripe of the region, and once all stripes are faulted core 0 unmaps
   and remaps the whole region so the next round starts from a fresh
   fold. Stripes are disjoint, so an ideal range lock would let all
   faults proceed in parallel; what actually happens depends on the
   backend:

   - embedded: the first fault must expand the fold, and expansion
     propagates the range lock to every slot of the new node — one core
     briefly holds all 512 pages, and the other cores' faults pile up on
     their born-locked slots each round.
   - embedded + partition: expansion-by-splitting replaces propagation
     (DragonFly's trick); faults on distinct pages never share a lock.
   - list: no tree locks at all, but every fault walks and splices the
     one shared ordered list.
   - global: every fault serializes on the whole-address-space lock.

   The result reuses [Microbench.result] (total page writes per second),
   so the crossover figure renders with the same machinery as Figure 5. *)

module Make (V : Vm.Vm_intf.S) = struct
  type state =
    | Mapping
    | Wait_mapped of int
    | Faulting of int  (* next vpn within this core's stripe *)
    | Wait_faulted of int
    | Unmapping

  let bigmap ?(warmup = 4_000_000) ?(region_pages = 512) ?(on_machine = ignore)
      ?(on_measure = ignore) ?(debug = false) ~ncores ~duration make_vm =
    if region_pages < ncores then
      invalid_arg "Rangelock_bench.bigmap: fewer pages than cores";
    let machine = Machine.create (Params.default ~ncores ()) in
    on_machine machine;
    let vm = make_vm machine in
    let writes = ref 0 in
    let barrier = Barrier.create (Machine.core machine 0) ~parties:ncores in
    let stripe = region_pages / ncores in
    (* The last core absorbs the remainder so every page is faulted. *)
    let stripe_lo c = c * stripe in
    let stripe_hi c = if c = ncores - 1 then region_pages else (c + 1) * stripe in
    let chunk = 16 in
    for c = 0 to ncores - 1 do
      let core = Machine.core machine c in
      let state = ref Mapping in
      Machine.set_workload machine c (fun () ->
          (match !state with
          | Mapping ->
              if c = 0 then V.mmap vm core ~vpn:0 ~npages:region_pages ();
              state := Wait_mapped (Barrier.arrive core barrier)
          | Wait_mapped gen ->
              if Barrier.passed core barrier gen then
                state := Faulting (stripe_lo c)
              else Machine.wait_hint machine core
          | Faulting pos ->
              let stop = min (pos + chunk) (stripe_hi c) in
              for p = pos to stop - 1 do
                (match V.touch vm core ~vpn:p with
                | Vm.Vm_types.Ok -> ()
                | Vm.Vm_types.Segfault -> failwith "bigmap: unexpected segfault"
                | Vm.Vm_types.Oom -> failwith "bigmap: out of frames");
                incr writes
              done;
              if stop = stripe_hi c then
                state := Wait_faulted (Barrier.arrive core barrier)
              else state := Faulting stop
          | Wait_faulted gen ->
              if Barrier.passed core barrier gen then state := Unmapping
              else Machine.wait_hint machine core
          | Unmapping ->
              if c = 0 then V.munmap vm core ~vpn:0 ~npages:region_pages;
              state := Mapping);
          true)
    done;
    Machine.run_for machine ~cycles:warmup;
    let writes0 = !writes in
    Stats.reset (Machine.stats machine);
    on_measure ();
    Machine.run_for machine ~cycles:(warmup + duration);
    let page_writes = !writes - writes0 in
    let s = Machine.stats machine in
    if debug then Format.eprintf "[bigmap/%d] %a@." ncores Stats.pp s;
    {
      Microbench.name = "bigmap";
      ncores;
      page_writes;
      cycles = duration;
      writes_per_sec =
        float_of_int page_writes /. Machine.seconds machine duration;
      ipis = s.Stats.ipis;
      shootdown_events = s.Stats.shootdown_events;
      transfers = Stats.total_transfers s;
      lock_wait = s.Stats.lock_wait_cycles;
      shootdown_wait = s.Stats.shootdown_wait_cycles;
      line_stall = s.Stats.line_stall_cycles;
    }
end
