open Ccsim
module T = Vm.Vm_types
module R = Vm.Radixvm.Default
module PC = Vm.Page_cache.Make (Refcnt.Refcache_counter)
module K = Os.Kernel

type result = {
  name : string;
  system : string;
  ncores : int;
  ops : int;
  gets : int;
  sets : int;
  dels : int;
  lost : int;
  evictions : int;
  writebacks : int;
  resizes : int;
  ops_per_sec : float;
  ops_per_core : float;
  cycles : int;
  ipis : int;
  shootdown_events : int;
  lock_wait : int;
  shootdown_wait : int;
  line_stall : int;
}

let pp_result ppf r =
  Format.fprintf ppf
    "@[<v>%s [%s]: %d cores, %.0f ops/s (%.0f per core)@,\
     ops %d (get %d / set %d / del %d, lost %d)@,\
     evictions %d, writebacks %d, resizes %d@,\
     ipis %d, shootdowns %d, lock wait %d, shootdown wait %d@]"
    r.name r.system r.ncores r.ops_per_sec r.ops_per_core r.ops r.gets r.sets
    r.dels r.lost r.evictions r.writebacks r.resizes r.ipis r.shootdown_events
    r.lock_wait r.shootdown_wait

type 'vm cache_ops = {
  co_evict : 'vm -> Ccsim.Core.t -> page:int -> unit;
  co_mark_dirty : 'vm -> Ccsim.Core.t -> page:int -> unit;
  co_dirty : 'vm -> page:int -> bool;
  co_clear_dirty : 'vm -> Ccsim.Core.t -> page:int -> unit;
}

(* Live counters shared by every serving core (plain OCaml state: the
   simulation interleaves deterministically, and the counters are not
   part of the simulated machine). The measured window is a delta
   against a snapshot taken when Stats resets. *)
type counters = {
  mutable c_ops : int;
  mutable c_gets : int;
  mutable c_sets : int;
  mutable c_dels : int;
  mutable c_lost : int;
  mutable c_evictions : int;
  mutable c_writebacks : int;
  mutable c_resizes : int;
}

let fresh_counters () =
  {
    c_ops = 0;
    c_gets = 0;
    c_sets = 0;
    c_dels = 0;
    c_lost = 0;
    c_evictions = 0;
    c_writebacks = 0;
    c_resizes = 0;
  }

let snapshot c = { c with c_ops = c.c_ops }

let build_result ~name ~system ~ncores ~duration machine c base =
  let s = Machine.stats machine in
  let ops = c.c_ops - base.c_ops in
  let per_sec = float_of_int ops /. Machine.seconds machine duration in
  {
    name;
    system;
    ncores;
    ops;
    gets = c.c_gets - base.c_gets;
    sets = c.c_sets - base.c_sets;
    dels = c.c_dels - base.c_dels;
    lost = c.c_lost - base.c_lost;
    evictions = c.c_evictions - base.c_evictions;
    writebacks = c.c_writebacks - base.c_writebacks;
    resizes = c.c_resizes - base.c_resizes;
    ops_per_sec = per_sec;
    ops_per_core = per_sec /. float_of_int ncores;
    cycles = duration;
    ipis = s.Stats.ipis;
    shootdown_events = s.Stats.shootdown_events;
    lock_wait = s.Stats.lock_wait_cycles;
    shootdown_wait = s.Stats.shootdown_wait_cycles;
    line_stall = s.Stats.line_stall_cycles;
  }

(* ------------------------------------------------------------------ *)
(* The concurrent throughput run, generic over the VM system           *)

module Make (V : Vm.Vm_intf.S) = struct
  (* Core 0 doubles as the LRU sweeper. Eviction is deliberately spread
     over several scheduler steps (one victim munmapped per step, then
     remapped the next) so other cores genuinely race their faults
     against the teardown — an access landing in the window segfaults
     and is counted as [lost], exactly like a reader hitting a page a
     real cache is expunging. *)
  type state =
    | Mapping
    | Wait_mapped of int
    | Serving
    | Evict_unmap of int list
    | Evict_remap of int * int list
    | Resize_ro
    | Resize_rw of int

  let serve ?(name = "cacheserve") ?(warmup = 1_000_000) ?(slots = 128)
      ?(keys = 0) ?(zipf_s = 1.1) ?(evict_every = 512) ?(resize_every = 8)
      ?(seed = 1) ?file ?cache_ops ?(on_machine = ignore)
      ?(on_measure = ignore) ~ncores ~duration make_vm =
    if slots <= 0 then invalid_arg "Cache_serve.serve";
    let keys = if keys <= 0 then 2 * slots else keys in
    let machine = Machine.create (Params.default ~ncores ()) in
    on_machine machine;
    let vm = make_vm machine in
    let backing = Option.map (fun fd -> T.File fd) file in
    let c = fresh_counters () in
    let last_access = Array.make slots 0 in
    let barrier = Barrier.create (Machine.core machine 0) ~parties:ncores in
    let writeback_if_dirty core s =
      match cache_ops with
      | Some co when co.co_dirty vm ~page:s ->
          Core.tick core core.Core.params.Params.disk_read;
          co.co_clear_dirty vm core ~page:s;
          c.c_writebacks <- c.c_writebacks + 1
      | _ -> ()
    in
    let rounds = ref 0 in
    (* The n coldest slots by recency, ties broken by slot index — what
       an LRU cache under steady memory pressure expels each sweep. *)
    let pick_victims () =
      let idx = Array.init slots (fun s -> s) in
      Array.sort
        (fun a b ->
          let c = compare last_access.(a) last_access.(b) in
          if c <> 0 then c else compare a b)
        idx;
      Array.to_list (Array.sub idx 0 (max 1 (slots / 8)))
    in
    let hottest () =
      let hot = ref 0 in
      for s = 1 to slots - 1 do
        if last_access.(s) > last_access.(!hot) then hot := s
      done;
      !hot
    in
    (* File-backed misses cost a disk read (80k cycles); keep callbacks
       short so cores stay inside the measured window even when a batch
       hits several cold slots. *)
    let batch_ops = match backing with Some _ -> 2 | None -> 8 in
    for cid = 0 to ncores - 1 do
      let core = Machine.core machine cid in
      let z = Zipf.create ~n:keys ~s:zipf_s ~seed:(seed + cid) in
      let state = ref Mapping in
      let e_ops = ref 0 in
      Machine.set_workload machine cid (fun () ->
          (match !state with
          | Mapping ->
              if cid = 0 then V.mmap vm core ~vpn:0 ~npages:slots ?backing ();
              state := Wait_mapped (Barrier.arrive core barrier)
          | Wait_mapped gen ->
              if Barrier.passed core barrier gen then state := Serving
              else Machine.wait_hint machine core
          | Serving ->
              for _ = 1 to batch_ops do
                let k = Zipf.next z in
                let s = k mod slots in
                let roll = Random.State.int core.Core.rng 100 in
                (if roll < 70 then
                   match V.read vm core ~vpn:s with
                   | T.Ok -> c.c_gets <- c.c_gets + 1
                   | T.Segfault -> c.c_lost <- c.c_lost + 1
                   | T.Oom -> failwith "cache_serve: out of frames"
                 else
                   match V.touch vm core ~vpn:s with
                   | T.Ok ->
                       (match cache_ops with
                       | Some co -> co.co_mark_dirty vm core ~page:s
                       | None -> ());
                       if roll < 95 then c.c_sets <- c.c_sets + 1
                       else c.c_dels <- c.c_dels + 1
                   | T.Segfault -> c.c_lost <- c.c_lost + 1
                   | T.Oom -> failwith "cache_serve: out of frames");
                last_access.(s) <- Core.now core;
                c.c_ops <- c.c_ops + 1
              done;
              if cid = 0 then begin
                e_ops := !e_ops + batch_ops;
                if !e_ops >= evict_every then begin
                  e_ops := 0;
                  incr rounds;
                  match pick_victims () with
                  | [] ->
                      if !rounds mod resize_every = 0 then state := Resize_ro
                  | v :: rest -> state := Evict_unmap (v :: rest)
                end
              end
          | Evict_unmap (s :: rest) ->
              writeback_if_dirty core s;
              V.munmap vm core ~vpn:s ~npages:1;
              (match cache_ops with
              | Some co -> co.co_evict vm core ~page:s
              | None -> ());
              state := Evict_remap (s, rest)
          | Evict_unmap [] -> state := Serving
          | Evict_remap (s, rest) ->
              V.mmap vm core ~vpn:s ~npages:1 ?backing ();
              c.c_evictions <- c.c_evictions + 1;
              state :=
                (match rest with
                | [] ->
                    if !rounds mod resize_every = 0 then Resize_ro else Serving
                | _ -> Evict_unmap rest)
          | Resize_ro ->
              let hot = hottest () in
              V.mprotect vm core ~vpn:hot ~npages:1 T.Read_only;
              state := Resize_rw hot
          | Resize_rw hot ->
              V.mprotect vm core ~vpn:hot ~npages:1 T.Read_write;
              c.c_resizes <- c.c_resizes + 1;
              state := Serving);
          true)
    done;
    Machine.run_for machine ~cycles:warmup;
    let base = snapshot c in
    Stats.reset (Machine.stats machine);
    on_measure ();
    Machine.run_for machine ~cycles:(warmup + duration);
    build_result ~name ~system:V.name ~ncores ~duration machine c base
end

(* ------------------------------------------------------------------ *)
(* The multi-process shape: one forked process per core, via syscalls  *)

module Procs = struct
  type state =
    | Serving
    | Evict_unmap of int list
    | Evict_remap of int * int list
    | Resize_ro
    | Resize_rw of int

  let serve ?(name = "cacheserve-procs") ?(warmup = 1_000_000) ?(slots = 128)
      ?(keys = 0) ?(zipf_s = 1.1) ?(evict_every = 512) ?(resize_every = 8)
      ?(seed = 1) ?(on_machine = ignore) ?(on_measure = ignore) ~ncores
      ~duration () =
    if slots <= 0 then invalid_arg "Cache_serve.Procs.serve";
    let keys = if keys <= 0 then 2 * slots else keys in
    let base = 0x800 in
    let machine = Machine.create (Params.default ~ncores ()) in
    on_machine machine;
    let kern = K.boot machine in
    let c0 = Machine.core machine 0 in
    let vfs = K.vfs kern in
    let fd = Os.Vfs.create_file vfs ~name:"cache.mmap" ~pages:(base + slots) in
    let init = K.init_process kern in
    let pc = R.page_cache (K.vm init) in
    (* Truncation drops every cached page beyond the new EOF. Keys in the
       page cache are vpns, so the sweep starts at the region base. *)
    Os.Vfs.set_resize_hook vfs (fun f ~old_pages ~new_pages ->
        if f = fd && new_pages < old_pages then
          for p = max new_pages base to old_pages - 1 do
            R.evict_file_page (K.vm init) c0 ~file:fd ~page:p
          done);
    let expect what = function
      | Ok v -> v
      | Error e ->
          failwith
            (Printf.sprintf "cache_serve procs: %s: %s" what
               (K.errno_to_string e))
    in
    let procs =
      Array.init ncores (fun _ -> expect "fork" (K.sys_fork kern c0 init))
    in
    Array.iter
      (fun p ->
        expect "mmap"
          (K.sys_mmap kern c0 p ~vpn:base ~npages:slots ~file:fd ()))
      procs;
    let c = fresh_counters () in
    let last_access = Array.make slots 0 in
    let rounds = ref 0 in
    let pick_victims () =
      let idx = Array.init slots (fun s -> s) in
      Array.sort
        (fun a b ->
          let c = compare last_access.(a) last_access.(b) in
          if c <> 0 then c else compare a b)
        idx;
      Array.to_list (Array.sub idx 0 (max 1 (slots / 8)))
    in
    let batch_ops = 2 in
    for cid = 0 to ncores - 1 do
      let core = Machine.core machine cid in
      let z = Zipf.create ~n:keys ~s:zipf_s ~seed:(seed + cid) in
      let state = ref Serving in
      let e_ops = ref 0 in
      let proc = procs.(cid) in
      Machine.set_workload machine cid (fun () ->
          (match !state with
          | Serving ->
              for _ = 1 to batch_ops do
                let k = Zipf.next z in
                let s = k mod slots in
                let vpn = base + s in
                let roll = Random.State.int core.Core.rng 100 in
                (if roll < 70 then
                   match K.load kern core proc ~vpn with
                   | Some _ -> c.c_gets <- c.c_gets + 1
                   | None -> c.c_lost <- c.c_lost + 1
                 else
                   match K.store kern core proc ~vpn (k lor (1 lsl 40)) with
                   | T.Ok ->
                       PC.set_dirty pc core ~file:fd ~page:vpn;
                       if roll < 95 then c.c_sets <- c.c_sets + 1
                       else c.c_dels <- c.c_dels + 1
                   | T.Segfault -> c.c_lost <- c.c_lost + 1
                   | T.Oom -> failwith "cache_serve procs: out of frames");
                last_access.(s) <- Core.now core;
                c.c_ops <- c.c_ops + 1
              done;
              if cid = 0 then begin
                e_ops := !e_ops + batch_ops;
                if !e_ops >= evict_every then begin
                  e_ops := 0;
                  incr rounds;
                  (* Every few sweeps, bulk memory pressure: truncate the
                     file to zero and back; the VFS hook evicts every
                     cached page while the other processes keep their
                     mapped frames alive. *)
                  if !rounds mod (4 * resize_every) = 0 then begin
                    ignore (Os.Vfs.resize_file vfs fd ~pages:0);
                    ignore (Os.Vfs.resize_file vfs fd ~pages:(base + slots))
                  end;
                  match pick_victims () with
                  | [] ->
                      if !rounds mod resize_every = 0 then state := Resize_ro
                  | v :: rest -> state := Evict_unmap (v :: rest)
                end
              end
          | Evict_unmap (s :: rest) ->
              let vpn = base + s in
              if PC.dirty pc ~file:fd ~page:vpn then begin
                Core.tick core core.Core.params.Params.disk_read;
                PC.clear_dirty pc core ~file:fd ~page:vpn;
                c.c_writebacks <- c.c_writebacks + 1
              end;
              ignore (K.sys_munmap kern core proc ~vpn ~npages:1);
              R.evict_file_page (K.vm init) core ~file:fd ~page:vpn;
              state := Evict_remap (s, rest)
          | Evict_unmap [] -> state := Serving
          | Evict_remap (s, rest) ->
              ignore
                (K.sys_mmap kern core proc ~vpn:(base + s) ~npages:1 ~file:fd
                   ());
              c.c_evictions <- c.c_evictions + 1;
              state :=
                (match rest with
                | [] ->
                    if !rounds mod resize_every = 0 then Resize_ro else Serving
                | _ -> Evict_unmap rest)
          | Resize_ro ->
              let hot = ref 0 in
              for s = 1 to slots - 1 do
                if last_access.(s) > last_access.(!hot) then hot := s
              done;
              ignore
                (K.sys_mprotect kern core proc ~vpn:(base + !hot) ~npages:1
                   T.Read_only);
              state := Resize_rw !hot
          | Resize_rw hot ->
              ignore
                (K.sys_mprotect kern core proc ~vpn:(base + hot) ~npages:1
                   T.Read_write);
              c.c_resizes <- c.c_resizes + 1;
              state := Serving);
          true)
    done;
    Machine.run_for machine ~cycles:warmup;
    let basec = snapshot c in
    Stats.reset (Machine.stats machine);
    on_measure ();
    Machine.run_for machine ~cycles:(warmup + duration);
    build_result ~name ~system:"RadixVM-procs" ~ncores ~duration machine c
      basec
end

(* ------------------------------------------------------------------ *)
(* The sequential, model-checked correctness oracle                    *)

module Session = struct
  type outcome = {
    ops_done : int;
    gets : int;
    hits : int;
    misses : int;
    sets : int;
    dels : int;
    evictions : int;
    writebacks : int;
    compactions : int;
    resizes : int;
    enomem : int;
    aborts : int;
    crashes_reaped : int;
    served_after_crash : bool;
    divergences : string list;
    history : string;
  }

  (* A slot word is tagged so a fresh page (whose content is
     {!Vm.Page_cache.file_content}, never tag-bearing for small files)
     reads back as "empty". *)
  let tag = 1 lsl 62
  let encode ~key ~value =
    tag lor ((key land 0x3FFF_FFFF) lsl 32) lor (value land 0xFFFF_FFFF)

  let decode w =
    if w land tag <> 0 then Some ((w lsr 32) land 0x3FFF_FFFF, w land 0xFFFF_FFFF)
    else None

  type load_step = [ `Val of int | `Absent | `Nomem | `Abort | `Crashed ]
  type acc_step = [ `Ok | `Seg | `Nomem | `Abort | `Crashed ]
  type unit_step = [ `Ok | `Nomem | `Abort | `Crashed ]

  (* The two process shapes (direct Radixvm forks / Os.Kernel syscalls)
     behind one closure record, so the driver is written once. *)
  type target = {
    t_load : int -> Core.t -> vpn:int -> load_step;
    t_store : int -> Core.t -> vpn:int -> int -> acc_step;
    t_munmap : int -> Core.t -> vpn:int -> npages:int -> unit_step;
    t_map : int -> Core.t -> vpn:int -> npages:int -> unit_step;
    t_mprotect : int -> Core.t -> vpn:int -> T.prot -> unit_step;
    t_evict : Core.t -> page:int -> unit;
    t_dirty : page:int -> bool;
    t_mark : Core.t -> page:int -> unit;
    t_clean : Core.t -> page:int -> unit;
    t_compact : Core.t -> unit;
    t_reap : int -> Core.t -> unit;
    t_destroy : int -> Core.t -> unit;
  }

  let of_unit = function
    | Ok () -> `Ok
    | Error T.Enomem -> `Nomem
    | Error (T.Aborted _) -> `Abort

  let of_acc = function
    | Ok T.Ok -> `Ok
    | Ok T.Segfault -> `Seg
    | Ok T.Oom -> `Nomem
    | Error T.Enomem -> `Nomem
    | Error (T.Aborted _) -> `Abort

  let of_load = function
    | Ok (Some w) -> `Val w
    | Ok None -> `Absent
    | Error T.Enomem -> `Nomem
    | Error (T.Aborted _) -> `Abort

  let of_errno = function
    | Ok () -> `Ok
    | Error K.ENOMEM -> `Nomem
    | Error _ -> `Abort

  let mk_direct m ~rangelock ~slots ~procs =
    let c0 = Machine.core m 0 in
    let vfs = Os.Vfs.create () in
    let fd = Os.Vfs.create_file vfs ~name:"cache.mmap" ~pages:slots in
    let root = R.create_with ~rangelock m in
    (match R.mmap_result root c0 ~vpn:0 ~npages:slots ~backing:(T.File fd) ()
     with
    | Ok () -> ()
    | Error e ->
        failwith
          (Format.asprintf "cache_serve session: initial mmap: %a"
             T.pp_vm_error e));
    let vms = Array.init procs (fun i -> if i = 0 then root else R.fork root c0) in
    let pc = R.page_cache root in
    Os.Vfs.set_resize_hook vfs (fun f ~old_pages ~new_pages ->
        if f = fd && new_pages < old_pages then
          for p = new_pages to old_pages - 1 do
            R.evict_file_page root c0 ~file:fd ~page:p
          done);
    ( 0,
      {
        t_load = (fun p core ~vpn -> of_load (R.load_result vms.(p) core ~vpn));
        t_store =
          (fun p core ~vpn w -> of_acc (R.store_result vms.(p) core ~vpn w));
        t_munmap =
          (fun p core ~vpn ~npages ->
            of_unit (R.munmap_result vms.(p) core ~vpn ~npages));
        t_map =
          (fun p core ~vpn ~npages ->
            of_unit
              (R.mmap_result vms.(p) core ~vpn ~npages ~backing:(T.File fd) ()));
        t_mprotect =
          (fun p core ~vpn prot ->
            of_unit (R.mprotect_result vms.(p) core ~vpn ~npages:1 prot));
        t_evict = (fun core ~page -> R.evict_file_page root core ~file:fd ~page);
        t_dirty = (fun ~page -> PC.dirty pc ~file:fd ~page);
        t_mark = (fun core ~page -> PC.set_dirty pc core ~file:fd ~page);
        t_clean = (fun core ~page -> PC.clear_dirty pc core ~file:fd ~page);
        t_compact =
          (fun _core ->
            ignore (Os.Vfs.resize_file vfs fd ~pages:0);
            ignore (Os.Vfs.resize_file vfs fd ~pages:slots));
        t_reap = (fun p core -> R.reap vms.(p) core);
        t_destroy = (fun p core -> R.destroy vms.(p) core);
      } )

  let mk_kernel m ~slots ~procs =
    let c0 = Machine.core m 0 in
    let kern = K.boot m in
    let vfs = K.vfs kern in
    let base = 0x800 in
    let fd = Os.Vfs.create_file vfs ~name:"cache.mmap" ~pages:(base + slots) in
    let init = K.init_process kern in
    let expect what = function
      | Ok v -> v
      | Error e ->
          failwith
            (Printf.sprintf "cache_serve session: %s: %s" what
               (K.errno_to_string e))
    in
    let ps = Array.init procs (fun _ -> expect "fork" (K.sys_fork kern c0 init)) in
    Array.iter
      (fun p ->
        expect "mmap"
          (K.sys_mmap kern c0 p ~vpn:base ~npages:slots ~file:fd ()))
      ps;
    let pc = R.page_cache (K.vm init) in
    Os.Vfs.set_resize_hook vfs (fun f ~old_pages ~new_pages ->
        if f = fd && new_pages < old_pages then
          for p = max new_pages base to old_pages - 1 do
            R.evict_file_page (K.vm init) c0 ~file:fd ~page:p
          done);
    ( base,
      {
        t_load =
          (fun p core ~vpn ->
            match K.load kern core ps.(p) ~vpn with
            | Some w -> `Val w
            | None -> `Absent);
        t_store =
          (fun p core ~vpn w ->
            match K.store kern core ps.(p) ~vpn w with
            | T.Ok -> `Ok
            | T.Segfault -> `Seg
            | T.Oom -> `Nomem);
        t_munmap =
          (fun p core ~vpn ~npages ->
            of_errno (K.sys_munmap kern core ps.(p) ~vpn ~npages));
        t_map =
          (fun p core ~vpn ~npages ->
            of_errno (K.sys_mmap kern core ps.(p) ~vpn ~npages ~file:fd ()));
        t_mprotect =
          (fun p core ~vpn prot ->
            of_errno (K.sys_mprotect kern core ps.(p) ~vpn ~npages:1 prot));
        t_evict =
          (fun core ~page -> R.evict_file_page (K.vm init) core ~file:fd ~page);
        t_dirty = (fun ~page -> PC.dirty pc ~file:fd ~page);
        t_mark = (fun core ~page -> PC.set_dirty pc core ~file:fd ~page);
        t_clean = (fun core ~page -> PC.clear_dirty pc core ~file:fd ~page);
        t_compact =
          (fun _core ->
            ignore (Os.Vfs.resize_file vfs fd ~pages:0);
            ignore (Os.Vfs.resize_file vfs fd ~pages:(base + slots)));
        t_reap = (fun p core -> R.reap (K.vm ps.(p)) core);
        t_destroy = (fun p core -> K.sys_exit kern core ps.(p) ~code:0);
      } )

  let run ?(ncores = 4) ?(procs = 1) ?(via_kernel = false) ?(slots = 64)
      ?(keys = 0) ?(zipf_s = 1.1) ?(evict_every = 256) ?(resize_every = 4)
      ?(compact_every = 0) ?(rangelock = Locks.Range_lock.Radix_embedded)
      ?(seed = 42) ?(ops = 2_000) ?(on_machine = ignore) ?(arm = ignore) () =
    if slots <= 0 || procs <= 0 || ncores <= 0 then
      invalid_arg "Cache_serve.Session.run";
    let keys = if keys <= 0 then 2 * slots else keys in
    let epoch = 10_000 in
    let m = Machine.create (Params.default ~ncores ~epoch_cycles:epoch ()) in
    on_machine m;
    let base, t =
      if via_kernel then mk_kernel m ~slots ~procs
      else mk_direct m ~rangelock ~slots ~procs
    in
    arm ();
    let model = Cache_model.create ~slots in
    let z = Zipf.create ~n:keys ~s:zipf_s ~seed in
    let rng = Random.State.make [| 0xCAC4E; seed |] in
    let alive = Array.make procs true in
    let tainted = Array.make slots false in
    let history = Buffer.create 4096 in
    let gets = ref 0 and hits = ref 0 and misses = ref 0 in
    let sets = ref 0 and dels = ref 0 in
    let evictions = ref 0 and writebacks = ref 0 in
    let compactions = ref 0 and resizes = ref 0 in
    let enomem = ref 0 and aborts = ref 0 and crashes = ref 0 in
    let done_ops = ref 0 and rounds = ref 0 in
    let served_after_crash = ref false in
    let divergences = ref [] and ndiv = ref 0 in
    let i = ref 0 in
    let diverge fmt =
      Printf.ksprintf
        (fun s ->
          incr ndiv;
          if !ndiv <= 32 then divergences := s :: !divergences)
        fmt
    in
    let line fmt =
      Printf.ksprintf
        (fun s ->
          Buffer.add_string history s;
          Buffer.add_char history '\n')
        fmt
    in
    let crash p core =
      t.t_reap p core;
      alive.(p) <- false;
      incr crashes
    in
    let protect p core f =
      try f () with Fault.Injected_crash _ -> crash p core; `Crashed
    in
    let pick start =
      let rec go j n =
        if n = 0 then None
        else if alive.(j mod procs) then Some (j mod procs)
        else go (j + 1) (n - 1)
      in
      go start procs
    in
    let each_alive f =
      for q = 0 to procs - 1 do
        if alive.(q) then f q
      done
    in
    (* A slot is tainted when faults left its content unknown (a crashed
       store, a failed post-eviction remap): the model stops predicting it
       until a successful set — or a tombstone — re-establishes it. *)
    let show = function Some v -> string_of_int v | None -> "miss" in
    (* A segfaulting store may mean the slot is stuck read-only (a resize
       that crashed between its two mprotects) or unmapped (a remap that
       hit the frame budget): restore protection and mapping, retry once.
       Content survives the remap — the page-cache entry is still resident
       while any mapping holds the frame. *)
    let heal p core vpn =
      match protect p core (fun () -> t.t_mprotect p core ~vpn T.Read_write)
      with
      | `Crashed -> false
      | _ -> (
          match protect p core (fun () -> t.t_map p core ~vpn ~npages:1) with
          | `Crashed -> false
          | _ -> true)
    in
    let store_step p core vpn w =
      match protect p core (fun () -> t.t_store p core ~vpn w) with
      | `Seg ->
          if heal p core vpn then
            protect p core (fun () -> t.t_store p core ~vpn w)
          else `Crashed
      | r -> r
    in
    let do_get p core key s vpn =
      match protect p core (fun () -> t.t_load p core ~vpn) with
      | `Val w ->
          incr gets;
          if !crashes > 0 then served_after_crash := true;
          if tainted.(s) then line "%04d get %d -> cold" !i key
          else begin
            let obs =
              match decode w with
              | Some (k', v) when k' = key -> Some v
              | _ -> None
            in
            let expected = Cache_model.get model ~key in
            (match (obs, expected) with
            | Some a, Some b when a = b -> incr hits
            | None, None -> incr misses
            | _ ->
                diverge "op %d: get %d observed %s, model %s" !i key (show obs)
                  (show expected));
            line "%04d get %d -> %s" !i key (show obs)
          end
      | `Absent ->
          incr gets;
          if tainted.(s) then line "%04d get %d -> cold" !i key
          else diverge "op %d: get %d faulted fatally" !i key
      | `Nomem ->
          incr enomem;
          line "%04d get %d -> !nomem" !i key
      | `Abort ->
          incr aborts;
          line "%04d get %d -> !abort" !i key
      | `Crashed ->
          tainted.(s) <- true;
          line "%04d get %d -> !crash" !i key
    in
    let do_set p core key s vpn v =
      match store_step p core vpn (encode ~key ~value:v) with
      | `Ok ->
          Cache_model.set model ~key ~value:v;
          t.t_mark core ~page:vpn;
          tainted.(s) <- false;
          incr sets;
          if !crashes > 0 then served_after_crash := true;
          line "%04d set %d = %d" !i key v
      | `Seg ->
          if tainted.(s) then begin
            Cache_model.evict_slot model s;
            line "%04d set %d -> !lost" !i key
          end
          else diverge "op %d: set %d segfaulted on a healthy slot" !i key
      | `Nomem ->
          incr enomem;
          line "%04d set %d -> !nomem" !i key
      | `Abort ->
          incr aborts;
          line "%04d set %d -> !abort" !i key
      | `Crashed ->
          tainted.(s) <- true;
          line "%04d set %d -> !crash" !i key
    in
    let do_del p core key s vpn =
      match protect p core (fun () -> t.t_load p core ~vpn) with
      | `Val w ->
          if tainted.(s) then begin
            (* resolve the unknown slot with a tombstone *)
            match store_step p core vpn 0 with
            | `Ok ->
                Cache_model.evict_slot model s;
                tainted.(s) <- false;
                incr dels;
                line "%04d del %d -> cold" !i key
            | _ -> line "%04d del %d -> !lost" !i key
          end
          else begin
            let present =
              match decode w with Some (k', _) -> k' = key | None -> false
            in
            let expected = Cache_model.peek model ~key <> None in
            if present <> expected then
              diverge "op %d: del %d observed %b, model %b" !i key present
                expected;
            if present then begin
              match store_step p core vpn 0 with
              | `Ok ->
                  ignore (Cache_model.delete model ~key);
                  t.t_mark core ~page:vpn;
                  incr dels;
                  if !crashes > 0 then served_after_crash := true;
                  line "%04d del %d -> hit" !i key
              | `Seg -> diverge "op %d: del %d segfaulted on a healthy slot" !i key
              | `Nomem ->
                  incr enomem;
                  line "%04d del %d -> !nomem" !i key
              | `Abort ->
                  incr aborts;
                  line "%04d del %d -> !abort" !i key
              | `Crashed ->
                  tainted.(s) <- true;
                  line "%04d del %d -> !crash" !i key
            end
            else begin
              incr dels;
              line "%04d del %d -> miss" !i key
            end
          end
      | `Absent ->
          if tainted.(s) then line "%04d del %d -> cold" !i key
          else diverge "op %d: del %d faulted fatally" !i key
      | `Nomem ->
          incr enomem;
          line "%04d del %d -> !nomem" !i key
      | `Abort ->
          incr aborts;
          line "%04d del %d -> !abort" !i key
      | `Crashed ->
          tainted.(s) <- true;
          line "%04d del %d -> !crash" !i key
    in
    let do_evict core =
      let victims = Cache_model.coldest model ~n:(max 1 (slots / 8)) in
      if victims <> [] then begin
        List.iter
          (fun s ->
            let vpn = base + s in
            if t.t_dirty ~page:vpn then begin
              Core.tick core core.Core.params.Params.disk_read;
              t.t_clean core ~page:vpn;
              incr writebacks
            end;
            let ok = ref true in
            each_alive (fun q ->
                match
                  protect q core (fun () -> t.t_munmap q core ~vpn ~npages:1)
                with
                | `Ok | `Crashed -> ()
                | `Nomem | `Abort -> ok := false);
            t.t_evict core ~page:vpn;
            each_alive (fun q ->
                match
                  protect q core (fun () -> t.t_map q core ~vpn ~npages:1)
                with
                | `Ok | `Crashed -> ()
                | `Nomem | `Abort -> ok := false);
            Cache_model.evict_slot model s;
            if not !ok then tainted.(s) <- true;
            incr evictions)
          victims;
        line "%04d evict [%s]" !i
          (String.concat ";" (List.map string_of_int victims));
        (* Close the Refcache deferred-free window: after the drain the
           evicted frames are truly freed, so the next access reloads
           file content deterministically. *)
        Machine.drain m ~cycles:(4 * epoch)
      end
    in
    let do_compact core =
      each_alive (fun q ->
          ignore
            (protect q core (fun () ->
                 t.t_munmap q core ~vpn:base ~npages:slots)));
      t.t_compact core;
      Machine.drain m ~cycles:(4 * epoch);
      each_alive (fun q ->
          ignore
            (protect q core (fun () -> t.t_map q core ~vpn:base ~npages:slots)));
      Cache_model.clear model;
      Array.fill tainted 0 slots false;
      incr compactions;
      line "%04d compact" !i
    in
    let do_resize core =
      match Cache_model.hottest model with
      | None -> ()
      | Some s -> (
          let vpn = base + s in
          match pick 0 with
          | None -> ()
          | Some p -> (
              match
                protect p core (fun () -> t.t_mprotect p core ~vpn T.Read_only)
              with
              | `Ok -> (
                  match
                    protect p core (fun () ->
                        t.t_mprotect p core ~vpn T.Read_write)
                  with
                  | `Ok ->
                      incr resizes;
                      line "%04d resize %d" !i s
                  | `Crashed -> ()
                  | `Nomem | `Abort ->
                      (* stuck read-only: the next store heals on demand *)
                      line "%04d resize %d -> !stuck" !i s)
              | `Crashed | `Nomem | `Abort -> ()))
    in
    let stop = ref false in
    while !i < ops && not !stop do
      (match pick (!i mod procs) with
      | None -> stop := true
      | Some p ->
          let core = Machine.core m (!i mod ncores) in
          let key = Zipf.next z in
          let s = Cache_model.slot_of_key model key in
          let vpn = base + s in
          let roll = Random.State.int rng 100 in
          if roll < 60 then do_get p core key s vpn
          else if roll < 90 then do_set p core key s vpn (!i land 0xFFFF_FFFF)
          else do_del p core key s vpn;
          incr done_ops;
          if compact_every > 0 && (!i + 1) mod compact_every = 0 then
            do_compact core
          else if evict_every > 0 && (!i + 1) mod evict_every = 0 then begin
            do_evict core;
            incr rounds;
            if resize_every > 0 && !rounds mod resize_every = 0 then
              do_resize core
          end);
      incr i
    done;
    (* Teardown: every surviving address space exits, then the file is
       truncated so the page cache drops its base references — after the
       drain no frame is live. *)
    let c0 = Machine.core m 0 in
    each_alive (fun p -> t.t_destroy p c0);
    t.t_compact c0;
    Machine.drain m ~cycles:(8 * epoch);
    {
      ops_done = !done_ops;
      gets = !gets;
      hits = !hits;
      misses = !misses;
      sets = !sets;
      dels = !dels;
      evictions = !evictions;
      writebacks = !writebacks;
      compactions = !compactions;
      resizes = !resizes;
      enomem = !enomem;
      aborts = !aborts;
      crashes_reaped = !crashes;
      served_after_crash = !served_after_crash;
      divergences = List.rev !divergences;
      history = Buffer.contents history;
    }
end
