(** Multi-address-space worlds for the shard-scaling figure.

    Three scenarios over a {!Harness.Shard} world of [nodes] machines ×
    [cores] cores each, all running until a fixed virtual duration:

    - ["disjoint"] — every core mmaps/touches/munmaps its own private
      region; zero cross-shard traffic (the scaling best case).
    - ["fork"] — core 0 of each node churns short-lived address spaces
      and periodically asks the next node to spawn one (epoch-batched
      fork request, answered by a reap acknowledgment one epoch later).
    - ["shared"] — all nodes map one shared file; writes shoot down the
      other nodes' mappings through {!Ccsim.Ipi.remote} and flush a
      refcount delta to the page's home node (high cross-shard rate).

    Every field of {!result} except nothing — including the [digest]
    folding per-node progress and merged stats — is a pure function of
    the configuration: running the same config at a different [shards]
    width yields the identical result, which the determinism tests
    assert at widths 1, 2, and 4. *)

type config = {
  nodes : int;
  cores : int;
  shards : int;
  clamp : bool;  (** clamp execution width to host parallelism *)
  duration : int;  (** simulated cycles each node runs for *)
  epoch : int;  (** barrier period in simulated cycles *)
}

type result = {
  scenario : string;
  nodes : int;
  cores : int;
  shards : int;
  ops : int;
  remote_acks : int;
  epochs : int;
  xs_sent : int;
  xs_delivered : int;
  sim_cycles : int;
  ipis : int;
  shootdown_events : int;
  digest : string;
}

val scenarios : string list
(** [["disjoint"; "fork"; "shared"]]. *)

module Make (_ : Vm.Vm_intf.S) : sig
  val run : config -> scenario:string -> result
  (** @raise Invalid_argument on an unknown scenario name. *)
end
