type t = { n : int; cdf : float array; mutable state : int64 }

(* splitmix64: a tiny, well-mixed generator with one word of explicit
   state. The weights are normalized in rank order and summed left to
   right, so the table is a pure function of (n, s) — identical floats on
   every host. *)

let gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create ~n ~s ~seed =
  if n <= 0 then invalid_arg "Zipf.create";
  let weights = Array.init n (fun i -> 1.0 /. (float_of_int (i + 1) ** s)) in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i w ->
      acc := !acc +. (w /. total);
      cdf.(i) <- !acc)
    weights;
  (* Guard against the partial sums topping out below 1.0: the last rank
     absorbs the rounding so every u in [0,1) maps to a valid rank. *)
  cdf.(n - 1) <- 1.0;
  { n; cdf; state = mix (Int64.of_int seed) }

let n t = t.n

let uniform t =
  t.state <- Int64.add t.state gamma;
  let bits = Int64.shift_right_logical (mix t.state) 11 in
  Int64.to_float bits *. 0x1p-53

let sample_u t u =
  let lo = ref 0 and hi = ref (t.n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if u < t.cdf.(mid) then hi := mid else lo := mid + 1
  done;
  !lo

let next t = sample_u t (uniform t)
let cdf t i = t.cdf.(i)
