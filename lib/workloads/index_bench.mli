(** The Figures 6 and 7 workload: concurrent index lookups contending with
    inserts and deletes on disjoint keys.

    An address space with 1,000 mapped regions is simulated. Reader cores
    continuously look up a random present key (like a page fault); writer
    cores continuously insert a random absent key and delete it again (like
    an mmap/munmap pair). Readers and writers never touch the same keys —
    any slowdown is pure cache-line interference, which is the point:
    the skip list's interior writes degrade readers (Figure 6) while the
    radix tree's initialized interior is never written (Figure 7). *)

type result = {
  structure : string;
  readers : int;
  writers : int;
  lookups : int;
  lookups_per_sec : float;
  write_pairs : int;  (** insert+delete pairs completed *)
  write_pairs_per_sec : float;
}

val pp_result : Format.formatter -> result -> unit

val skiplist :
  ?debug:bool -> readers:int -> writers:int -> duration:int -> unit -> result

val radix :
  ?debug:bool -> readers:int -> writers:int -> duration:int -> unit -> result
(** [debug] (default false) dumps the machine's stat counters to stderr
    when the run finishes — an explicit flag, threaded from radixvm-bench's
    [--debug-stats], never ambient environment state. *)
