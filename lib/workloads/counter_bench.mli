(** The Figure 8 workload: page sharing throughput under different
    reference-counting schemes. One physical page is repeatedly mmapped
    into the shared address space and munmapped by every core (at disjoint
    virtual addresses), driving the page's reference count up and down
    concurrently from n cores. The VM is RadixVM instantiated over the
    scheme under test — the paper's "three different versions of
    RadixVM". *)

type result = {
  scheme : string;
  ncores : int;
  iterations : int;
  iters_per_sec : float;
  transfers : int;
}

val pp_result : Format.formatter -> result -> unit

module Make (_ : Refcnt.Counter_intf.S) : sig
  val run :
    ?warmup:int -> ?on_machine:(Ccsim.Machine.t -> unit) ->
    ?on_measure:(unit -> unit) ->
    ncores:int -> duration:int -> unit -> result
  (** Fresh machine, [warmup] cycles (default 1M) discarded, then
      [duration] cycles measured. [on_machine] runs on the fresh machine
      before the VM is built (used to attach a [Check]); [on_measure]
      runs right after the warmup-boundary stats reset (used for
      [Check.reset_window]). *)
end
