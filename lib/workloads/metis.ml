open Ccsim

type report = {
  vm_name : string;
  ncores : int;
  unit_pages : int;
  job_cycles : int;
  jobs_per_hour : float;
  mmaps : int;
  pagefaults : int;
  ipis : int;
}

let pp_report ppf r =
  Format.fprintf ppf
    "%-8s %3d cores, unit %4d pages: %8.1f jobs/hour (%d mmaps, %d faults)"
    r.vm_name r.ncores r.unit_pages r.jobs_per_hour r.mmaps r.pagefaults

(* One intermediate bucket per (mapper, reducer) pair. The header is
   written only by its mapper during Map and read by one reducer during
   Reduce — pairwise sharing, as in the paper. *)
type bucket = {
  mutable pages : int list;  (* chunk VPNs, oldest first at the end *)
  mutable entries : int;
  mutable room : int;  (* free entry slots in the newest page *)
  line : Line.t;
}

type phase =
  | Map of int  (* words remaining *)
  | Map_barrier of int
  | Reduce of int * int list option
      (* mapper index; [None] = that mapper's bucket not yet opened,
         [Some pages] = its chunk pages still to walk *)
  | Output of int  (* output pages still to allocate and write *)
  | Done

module Make (V : Vm.Vm_intf.S) = struct
  module Alloc = Block_alloc.Make (V)

  let hash_word_cost = 25
  let merge_entry_cost = 8

  let run ?(total_words = 200_000) ?(bytes_per_entry = 16) ~unit_pages
      ~ncores make_vm =
    let machine = Machine.create (Params.default ~ncores ()) in
    let vm = make_vm machine in
    let alloc = Alloc.create vm ~unit_pages ~ncores in
    let entries_per_page = Vm.Vm_types.page_size / bytes_per_entry in
    let words_per_worker = total_words / ncores in
    let fresh_line c =
      Line.create ~label:"metis" c.Core.params c.Core.stats
        ~home_socket:c.Core.socket
    in
    let buckets =
      Array.init ncores (fun m ->
          Array.init ncores (fun _r ->
              {
                pages = [];
                entries = 0;
                room = 0;
                line = fresh_line (Machine.core machine m);
              }))
    in
    let barrier = Barrier.create (Machine.core machine 0) ~parties:ncores in
    let touch core vpn =
      match V.touch vm core ~vpn with
      | Vm.Vm_types.Ok -> ()
      | Vm.Vm_types.Segfault -> failwith "metis: unexpected segfault"
      | Vm.Vm_types.Oom -> failwith "metis: out of frames"
    in
    let map_batch = 200 in
    for w = 0 to ncores - 1 do
      let core = Machine.core machine w in
      let state = ref (Map words_per_worker) in
      Machine.set_workload machine w (fun () ->
          (match !state with
          | Map remaining ->
              let n = min map_batch remaining in
              for _ = 1 to n do
                Core.tick core hash_word_cost;
                let r = Random.State.int core.Core.rng ncores in
                let b = buckets.(w).(r) in
                Line.write core b.line;
                if b.room = 0 then begin
                  let vpn = Alloc.alloc_pages alloc core 1 in
                  b.pages <- vpn :: b.pages;
                  b.room <- entries_per_page
                end;
                (* append the (word, position) entry *)
                (match b.pages with
                | vpn :: _ -> touch core vpn
                | [] -> assert false);
                b.entries <- b.entries + 1;
                b.room <- b.room - 1
              done;
              if remaining - n = 0 then
                state := Map_barrier (Barrier.arrive core barrier)
              else state := Map (remaining - n)
          | Map_barrier gen ->
              if Barrier.passed core barrier gen then state := Reduce (0, None)
              else Machine.wait_hint machine core
          | Reduce (m, None) ->
              if m >= ncores then begin
                (* size the output table: one page per
                   [entries_per_page] merged entries *)
                let total =
                  Array.fold_left (fun acc bs -> acc + bs.(w).entries) 0 buckets
                in
                let pages =
                  (total + entries_per_page - 1) / entries_per_page
                in
                state := Output pages
              end
              else begin
                let b = buckets.(m).(w) in
                Line.read core b.line;
                state := Reduce (m, Some (List.rev b.pages))
              end
          | Reduce (m, Some []) -> state := Reduce (m + 1, None)
          | Reduce (m, Some (vpn :: rest)) ->
              (* walk one intermediate page: fault it in (it was faulted
                 by mapper [m]) and merge its entries *)
              touch core vpn;
              let b = buckets.(m).(w) in
              let full_pages = List.length b.pages in
              let entries_here =
                if rest = [] && full_pages > 0 then
                  b.entries - ((full_pages - 1) * entries_per_page)
                else entries_per_page
              in
              Core.tick core (merge_entry_cost * max 1 entries_here);
              state := Reduce (m, Some rest)
          | Output remaining ->
              if remaining = 0 then state := Done
              else begin
                let vpn = Alloc.alloc_pages alloc core 1 in
                touch core vpn;
                Core.tick core (merge_entry_cost * entries_per_page);
                state := Output (remaining - 1)
              end
          | Done -> ());
          !state <> Done)
    done;
    Machine.run machine;
    let s = Machine.stats machine in
    let job_cycles = Machine.elapsed machine in
    {
      vm_name = V.name;
      ncores;
      unit_pages;
      job_cycles;
      jobs_per_hour = 3600.0 /. Machine.seconds machine job_cycles;
      mmaps = s.Stats.mmaps;
      pagefaults = s.Stats.pagefaults;
      ipis = s.Stats.ipis;
    }
end
