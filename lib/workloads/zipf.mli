(** A deterministic Zipf(s) sampler over ranks [0, n).

    The cache-serving workload draws keys from this distribution: rank 0
    is the hottest key, and weight falls off as 1/(rank+1)^s. Sampling is
    inverse-CDF over a precomputed table, driven by an explicit
    splitmix64 state — no global [Random], no wall clock — so a sampler
    created with the same [(n, s, seed)] emits the same stream on any
    host, in any domain, at any shard width. *)

type t

val create : n:int -> s:float -> seed:int -> t
(** [n] ranks with skew [s] (s = 0 is uniform; larger is more skewed).
    @raise Invalid_argument if [n <= 0]. *)

val n : t -> int

val next : t -> int
(** The next rank: [sample_u t (uniform t)]. *)

val uniform : t -> float
(** The next raw uniform draw in [0, 1), advancing the state. Exposed so
    tests can feed the exact same draws to a reference implementation. *)

val sample_u : t -> float -> int
(** Pure inverse-CDF lookup: the smallest rank [i] with [u < cdf i].
    Does not advance the state. *)

val cdf : t -> int -> float
(** The cumulative weight of ranks [0..i] (for the test reference;
    [cdf (n-1) = 1.0] exactly). *)
