(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (section 5). Run with no arguments for everything, or pass
   target names: table1 fig4 fig5 table2 pt-overhead fig6 fig7 fig8 fig9
   wallclock. `--quick` shrinks sweeps for smoke testing; `--check`
   attaches the dynamic checker to every microbenchmark run and prints a
   verdict summary (zero-sharing, races, lock order, TLB, refcounts)
   after each figure. *)

module Radixvm = Vm.Radixvm.Default
module MB_radix = Workloads.Microbench.Make (Vm.Radixvm.Default)
module MB_linux = Workloads.Microbench.Make (Baselines.Linux_vm)
module MB_bonsai = Workloads.Microbench.Make (Baselines.Bonsai_vm)
module Metis_radix = Workloads.Metis.Make (Vm.Radixvm.Default)
module Metis_linux = Workloads.Metis.Make (Baselines.Linux_vm)
module Metis_bonsai = Workloads.Metis.Make (Baselines.Bonsai_vm)
module CB_refcache = Workloads.Counter_bench.Make (Refcnt.Refcache_counter)
module CB_shared = Workloads.Counter_bench.Make (Refcnt.Shared_counter)
module CB_snzi = Workloads.Counter_bench.Make (Refcnt.Snzi)
module CB_dist = Workloads.Counter_bench.Make (Refcnt.Distributed_counter)

let quick = ref false
let check = ref false

(* With --check every instrumented run records a verdict; a figure calls
   [report_checks] once its table is printed so the summary does not
   interleave with the rows. The sharing window opens at the
   warmup/measure boundary (the [on_measure] hook), so startup handoffs
   are excluded exactly as they are from the throughput numbers. *)
let check_results : (string * bool) list ref = ref []

let checked ~name ~allow run =
  if not !check then run ~on_machine:ignore ~on_measure:ignore
  else begin
    let chk = ref None in
    let r =
      run
        ~on_machine:(fun m -> chk := Some (Check.attach m))
        ~on_measure:(fun () -> Option.iter Check.reset_window !chk)
    in
    (match !chk with
    | Some c -> check_results := (name, Check.ok ~allow c) :: !check_results
    | None -> ());
    r
  end

let report_checks () =
  if !check then begin
    let total = List.length !check_results in
    let bad = List.filter (fun (_, ok) -> not ok) !check_results in
    Printf.printf
      "\ncheck: %d instrumented runs, %d clean, %d with findings\n" total
      (total - List.length bad)
      (List.length bad);
    List.iter
      (fun (n, _) -> Printf.printf "  findings: %s\n" n)
      (List.rev bad);
    check_results := [];
    flush stdout
  end

let core_counts () = if !quick then [ 1; 4; 16 ] else [ 1; 10; 20; 40; 60; 80 ]
let micro_duration () = if !quick then 400_000 else 2_000_000

(* The global benchmark's iteration (every core writes every page, then a
   machine-wide shootdown storm) grows with core count; size its windows
   so several iterations fit. *)
let global_duration n = if !quick then 2_000_000 else max 8_000_000 (n * 500_000)

(* Startup transients (initial radix expansion, first Refcache epochs,
   channel priming) lengthen with core count; warm up accordingly. *)
let micro_warmup n = if !quick then 1_000_000 else max 4_000_000 (n * 150_000)
let index_duration () = if !quick then 200_000 else 800_000
let counter_duration () = if !quick then 200_000 else 1_000_000
let metis_words () = if !quick then 40_000 else 400_000

let header title =
  Printf.printf "\n================ %s ================\n%!" title

let row_header name cols =
  Printf.printf "%-24s" name;
  List.iter (fun c -> Printf.printf "%14s" c) cols;
  print_newline ()

let row name cells =
  Printf.printf "%-24s" name;
  List.iter (fun v -> Printf.printf "%14s" v) cells;
  print_newline ();
  flush stdout

let k v =
  if v >= 1e9 then Printf.sprintf "%.2fG" (v /. 1e9)
  else if v >= 1e6 then Printf.sprintf "%.2fM" (v /. 1e6)
  else if v >= 1e3 then Printf.sprintf "%.1fk" (v /. 1e3)
  else Printf.sprintf "%.0f" v

(* ------------------------------------------------------------------ *)
(* Table 1: major RadixVM components (line counts of this repo)        *)

let count_lines dir =
  let rec walk acc path =
    if Sys.is_directory path then
      Array.fold_left
        (fun acc entry -> walk acc (Filename.concat path entry))
        acc (Sys.readdir path)
    else if Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli"
    then begin
      let ic = open_in path in
      let n = ref 0 in
      (try
         while true do
           ignore (input_line ic);
           incr n
         done
       with End_of_file -> close_in ic);
      acc + !n
    end
    else acc
  in
  try walk 0 dir with Sys_error _ -> 0

let table1 () =
  header "Table 1: major RadixVM components (lines of code)";
  Printf.printf "%-28s %10s %16s\n" "Component" "this repo" "paper (sv6 C++)";
  let comp name dirs paper =
    let lines = List.fold_left (fun acc d -> acc + count_lines d) 0 dirs in
    Printf.printf "%-28s %10d %16s\n" name lines paper
  in
  comp "Radix tree" [ "lib/radix" ] "1,376";
  comp "Refcache" [ "lib/refcache" ] "932";
  comp "MMU abstraction + VM ops" [ "lib/core" ] "889 + 632";
  comp "Machine substrate (ccsim)" [ "lib/ccsim" ] "(kernel infra)";
  comp "Baselines + structures" [ "lib/baselines"; "lib/structures" ] "-";
  comp "Workloads" [ "lib/workloads" ] "-"

(* ------------------------------------------------------------------ *)
(* Figure 4: Metis scalability                                         *)

let fig4 () =
  header "Figure 4: Metis throughput (jobs/hour), word-position index";
  let units = [ ("8MB", 2048); ("64KB", 16) ] in
  let systems =
    [
      ( "RadixVM",
        fun ~unit_pages ~ncores ->
          (Metis_radix.run ~total_words:(metis_words ()) ~unit_pages ~ncores
             Radixvm.create)
            .jobs_per_hour );
      ( "Bonsai",
        fun ~unit_pages ~ncores ->
          (Metis_bonsai.run ~total_words:(metis_words ()) ~unit_pages ~ncores
             Baselines.Bonsai_vm.create)
            .jobs_per_hour );
      ( "Linux",
        fun ~unit_pages ~ncores ->
          (Metis_linux.run ~total_words:(metis_words ()) ~unit_pages ~ncores
             Baselines.Linux_vm.create)
            .jobs_per_hour );
    ]
  in
  List.iter
    (fun (uname, unit_pages) ->
      Printf.printf "\n-- allocation unit %s --\n" uname;
      row_header "cores" (List.map string_of_int (core_counts ()));
      List.iter
        (fun (sysname, run) ->
          let cells =
            List.map (fun n -> k (run ~unit_pages ~ncores:n)) (core_counts ())
          in
          row (sysname ^ "/" ^ uname) cells)
        systems)
    units

(* ------------------------------------------------------------------ *)
(* Figure 5: microbenchmarks across VM systems                         *)

type micro_sys = {
  ms_name : string;
  ms_local : ncores:int -> duration:int -> Workloads.Microbench.result;
  ms_pipeline : ncores:int -> duration:int -> Workloads.Microbench.result;
  ms_global : ncores:int -> duration:int -> Workloads.Microbench.result;
}

let micro_systems () =
  [
    {
      ms_name = "RadixVM";
      ms_local =
        (fun ~ncores ~duration ->
          checked
            ~name:(Printf.sprintf "RadixVM local %d cores" ncores)
            ~allow:Check.radixvm_allow
            (fun ~on_machine ~on_measure ->
              MB_radix.local ~on_machine ~on_measure
                ~warmup:(micro_warmup ncores) ~ncores ~duration Radixvm.create));
      ms_pipeline =
        (fun ~ncores ~duration ->
          checked
            ~name:(Printf.sprintf "RadixVM pipeline %d cores" ncores)
            ~allow:Check.radixvm_allow
            (fun ~on_machine ~on_measure ->
              MB_radix.pipeline ~on_machine ~on_measure
                ~warmup:(micro_warmup ncores) ~ncores ~duration Radixvm.create));
      ms_global =
        (fun ~ncores ~duration:_ ->
          let d = global_duration ncores in
          checked
            ~name:(Printf.sprintf "RadixVM global %d cores" ncores)
            ~allow:Check.radixvm_allow
            (fun ~on_machine ~on_measure ->
              MB_radix.global ~on_machine ~on_measure ~warmup:d ~ncores
                ~duration:d Radixvm.create));
    };
    {
      ms_name = "Bonsai";
      ms_local =
        (fun ~ncores ~duration ->
          checked
            ~name:(Printf.sprintf "Bonsai local %d cores" ncores)
            ~allow:[]
            (fun ~on_machine ~on_measure ->
              MB_bonsai.local ~on_machine ~on_measure
                ~warmup:(micro_warmup ncores) ~ncores ~duration
                Baselines.Bonsai_vm.create));
      ms_pipeline =
        (fun ~ncores ~duration ->
          checked
            ~name:(Printf.sprintf "Bonsai pipeline %d cores" ncores)
            ~allow:[]
            (fun ~on_machine ~on_measure ->
              MB_bonsai.pipeline ~on_machine ~on_measure
                ~warmup:(micro_warmup ncores) ~ncores ~duration
                Baselines.Bonsai_vm.create));
      ms_global =
        (fun ~ncores ~duration:_ ->
          let d = global_duration ncores in
          checked
            ~name:(Printf.sprintf "Bonsai global %d cores" ncores)
            ~allow:[]
            (fun ~on_machine ~on_measure ->
              MB_bonsai.global ~on_machine ~on_measure ~warmup:d ~ncores
                ~duration:d Baselines.Bonsai_vm.create));
    };
    {
      ms_name = "Linux";
      ms_local =
        (fun ~ncores ~duration ->
          checked
            ~name:(Printf.sprintf "Linux local %d cores" ncores)
            ~allow:[]
            (fun ~on_machine ~on_measure ->
              MB_linux.local ~on_machine ~on_measure
                ~warmup:(micro_warmup ncores) ~ncores ~duration
                Baselines.Linux_vm.create));
      ms_pipeline =
        (fun ~ncores ~duration ->
          checked
            ~name:(Printf.sprintf "Linux pipeline %d cores" ncores)
            ~allow:[]
            (fun ~on_machine ~on_measure ->
              MB_linux.pipeline ~on_machine ~on_measure
                ~warmup:(micro_warmup ncores) ~ncores ~duration
                Baselines.Linux_vm.create));
      ms_global =
        (fun ~ncores ~duration:_ ->
          let d = global_duration ncores in
          checked
            ~name:(Printf.sprintf "Linux global %d cores" ncores)
            ~allow:[]
            (fun ~on_machine ~on_measure ->
              MB_linux.global ~on_machine ~on_measure ~warmup:d ~ncores
                ~duration:d Baselines.Linux_vm.create));
    };
  ]

let run_micro_table title pick =
  Printf.printf "\n-- %s (total page writes/sec) --\n" title;
  row_header "cores" (List.map string_of_int (core_counts ()));
  List.iter
    (fun sys ->
      let cells =
        List.map
          (fun n ->
            let ncores = if title = "pipeline" then max 2 n else n in
            let r = pick sys ~ncores ~duration:(micro_duration ()) in
            k r.Workloads.Microbench.writes_per_sec)
          (core_counts ())
      in
      row sys.ms_name cells)
    (micro_systems ())

let fig5 () =
  header "Figure 5: local / pipeline / global microbenchmarks";
  run_micro_table "local" (fun s -> s.ms_local);
  run_micro_table "pipeline" (fun s -> s.ms_pipeline);
  run_micro_table "global" (fun s -> s.ms_global);
  report_checks ()

(* ------------------------------------------------------------------ *)
(* Table 2: memory overhead                                            *)

let table2 () =
  header "Table 2: memory usage for alternate VM representations";
  List.iter
    (fun p ->
      let r = Workloads.Snapshots.measure p in
      Format.printf "%a@." Workloads.Snapshots.pp_row r)
    Workloads.Snapshots.all;
  Printf.printf "(paper: Firefox 2.4x, Chrome 2.0x, Apache 1.5x, MySQL 2.7x)\n"

(* ------------------------------------------------------------------ *)
(* Section 5.4: per-core page table overhead for Metis                 *)

let pt_overhead () =
  header "Section 5.4: Metis page-table overhead, per-core vs shared";
  let ncores = if !quick then 16 else 80 in
  let run mmu =
    let captured = ref None in
    let make machine =
      let vm = Radixvm.create_with ~mmu machine in
      captured := Some vm;
      vm
    in
    let _metis =
      Metis_radix.run ~total_words:(metis_words ()) ~unit_pages:16 ~ncores make
    in
    match !captured with
    | Some vm ->
        let pt = Radixvm.pt_bytes vm in
        let rss =
          Ccsim.Physmem.live_frames (Ccsim.Machine.physmem (Radixvm.machine vm))
          * Vm.Vm_types.page_size
        in
        (pt, rss)
    | None -> assert false
  in
  let pt_per_core, rss = run Vm.Page_table.Per_core in
  let pt_shared, _ = run Vm.Page_table.Shared in
  Printf.printf
    "Metis at %d cores: app memory %s, shared PT %s (%.1f%%), per-core PT %s (%.1f%%), ratio %.1fx\n"
    ncores
    (k (float_of_int rss))
    (k (float_of_int pt_shared))
    (100. *. float_of_int pt_shared /. float_of_int rss)
    (k (float_of_int pt_per_core))
    (100. *. float_of_int pt_per_core /. float_of_int rss)
    (float_of_int pt_per_core /. float_of_int (max 1 pt_shared));
  Printf.printf "(paper: shared 0.3%% of app memory, per-core 3.6%%, 13x)\n"

(* ------------------------------------------------------------------ *)
(* Figures 6 and 7: index structure lookups vs writers                 *)

let fig_index ~title ~writer_counts run =
  header title;
  row_header "reader cores" (List.map string_of_int (core_counts ()));
  List.iter
    (fun writers ->
      let cells =
        List.map
          (fun readers ->
            let r = run ~readers ~writers ~duration:(index_duration ()) in
            k r.Workloads.Index_bench.lookups_per_sec)
          (core_counts ())
      in
      row (Printf.sprintf "%d writers" writers) cells)
    writer_counts

let fig6 () =
  fig_index
    ~title:"Figure 6: skip list lookups under concurrent inserts/deletes"
    ~writer_counts:[ 0; 1; 5 ] Workloads.Index_bench.skiplist

let fig7 () =
  fig_index
    ~title:"Figure 7: radix tree lookups under concurrent inserts/deletes"
    ~writer_counts:[ 0; 10; 40 ] Workloads.Index_bench.radix

(* ------------------------------------------------------------------ *)
(* Figure 8: reference counting schemes                                *)

let fig8 () =
  header "Figure 8: page-sharing throughput by refcount scheme (iters/sec)";
  row_header "cores" (List.map string_of_int (core_counts ()));
  let schemes =
    [
      ("Refcache", fun ~ncores ~duration -> CB_refcache.run ~ncores ~duration ());
      ("SNZI", fun ~ncores ~duration -> CB_snzi.run ~ncores ~duration ());
      ("Shared counter", fun ~ncores ~duration -> CB_shared.run ~ncores ~duration ());
      ("Distributed", fun ~ncores ~duration -> CB_dist.run ~ncores ~duration ());
    ]
  in
  List.iter
    (fun (name, run) ->
      let cells =
        List.map
          (fun n ->
            let r = run ~ncores:n ~duration:(counter_duration ()) in
            k r.Workloads.Counter_bench.iters_per_sec)
          (core_counts ())
      in
      row name cells)
    schemes

(* ------------------------------------------------------------------ *)
(* Figure 9: per-core vs shared page tables                            *)

let fig9 () =
  header "Figure 9: per-core vs shared page tables (RadixVM)";
  let make_per_core = Radixvm.create in
  let make_shared m = Radixvm.create_with ~mmu:Vm.Page_table.Shared m in
  let benches =
    [
      ( "local",
        fun ~pt make ~ncores ->
          checked
            ~name:(Printf.sprintf "RadixVM/%s local %d cores" pt ncores)
            ~allow:Check.radixvm_allow
            (fun ~on_machine ~on_measure ->
              MB_radix.local ~on_machine ~on_measure
                ~warmup:(micro_warmup ncores) ~ncores
                ~duration:(micro_duration ()) make) );
      ( "pipeline",
        fun ~pt make ~ncores ->
          checked
            ~name:(Printf.sprintf "RadixVM/%s pipeline %d cores" pt ncores)
            ~allow:Check.radixvm_allow
            (fun ~on_machine ~on_measure ->
              MB_radix.pipeline ~on_machine ~on_measure
                ~warmup:(micro_warmup ncores) ~ncores:(max 2 ncores)
                ~duration:(micro_duration ()) make) );
      ( "global",
        fun ~pt make ~ncores ->
          let d = global_duration ncores in
          checked
            ~name:(Printf.sprintf "RadixVM/%s global %d cores" pt ncores)
            ~allow:Check.radixvm_allow
            (fun ~on_machine ~on_measure ->
              MB_radix.global ~on_machine ~on_measure ~warmup:d ~ncores
                ~duration:d make) );
    ]
  in
  List.iter
    (fun (bname, run) ->
      Printf.printf "\n-- %s (total page writes/sec) --\n" bname;
      row_header "cores" (List.map string_of_int (core_counts ()));
      let cells_of ~pt make =
        List.map
          (fun n ->
            k (run ~pt make ~ncores:n).Workloads.Microbench.writes_per_sec)
          (core_counts ())
      in
      row "Per-core" (cells_of ~pt:"per-core" make_per_core);
      row "Shared" (cells_of ~pt:"shared" make_shared))
    benches;
  report_checks ()

(* ------------------------------------------------------------------ *)
(* Ablation D lives in [ablations] too: fork cost vs address-space size *)

let ablation_fork () =
  Printf.printf
    "\n-- D. fork cost vs faulted pages (COW: no frames are copied) --\n";
  List.iter
    (fun npages ->
      let machine = Ccsim.Machine.create (Ccsim.Params.default ~ncores:2 ()) in
      let vm = Radixvm.create machine in
      let core = Ccsim.Machine.core machine 0 in
      Radixvm.mmap vm core ~vpn:0 ~npages ();
      for p = 0 to npages - 1 do
        ignore (Radixvm.touch vm core ~vpn:p)
      done;
      let t0 = Ccsim.Core.now core in
      let child = Radixvm.fork vm core in
      let cycles = Ccsim.Core.now core - t0 in
      ignore child;
      let eager =
        npages * (Ccsim.Machine.params machine).Ccsim.Params.page_zero
      in
      Printf.printf
        "%6d pages: fork %9d cycles (%5d/page) | eager copy would cost >= %9d\n%!"
        npages cycles (cycles / max 1 npages) eager)
    [ 64; 512; 4096 ]

(* ------------------------------------------------------------------ *)
(* Ablations: design knobs the paper discusses but does not plot        *)

let ablations () =
  header "Ablations: design knobs beyond the paper's figures";

  (* A. MMU policy: the paper suggests sharing page tables between small
     groups of cores as a memory/scalability compromise (section 3.3). *)
  Printf.printf "\n-- A. MMU policy, local benchmark (page writes/sec) --\n";
  row_header "cores" (List.map string_of_int (core_counts ()));
  List.iter
    (fun (name, mmu) ->
      let cells =
        List.map
          (fun n ->
            let r =
              MB_radix.local ~warmup:(micro_warmup n) ~ncores:n
                ~duration:(micro_duration ())
                (fun m -> Radixvm.create_with ~mmu m)
            in
            k r.Workloads.Microbench.writes_per_sec)
          (core_counts ())
      in
      row name cells)
    [
      ("Per-core", Vm.Page_table.Per_core);
      ("Per-socket (10)", Vm.Page_table.Grouped 10);
      ("Shared", Vm.Page_table.Shared);
    ];

  (* B. Refcache delta-cache size: the paper notes the conflict rate is
     the space/scalability knob. A hot multi-core working set of counters
     with a tiny cache evicts constantly (writing shared global counts);
     a big cache keeps all deltas local. *)
  Printf.printf
    "\n-- B. Refcache delta-cache size (16 cores, 256 hot objects; ops/sec) --\n";
  List.iter
    (fun slots ->
      let machine = Ccsim.Machine.create (Ccsim.Params.default ~ncores:16 ()) in
      let rc = Refcnt.Refcache.create ~cache_slots:slots machine in
      let core0 = Ccsim.Machine.core machine 0 in
      let objs =
        Array.init 256 (fun _ ->
            Refcnt.Refcache.make_obj rc core0 ~init:1 ~free:(fun _ -> ()))
      in
      let ops = ref 0 in
      for c = 0 to 15 do
        let core = Ccsim.Machine.core machine c in
        (* Hold references across operations so deltas stay cached between
           steps: cache conflicts then evict live deltas to the shared
           global counts. *)
        let held = Queue.create () in
        Ccsim.Machine.set_workload machine c (fun () ->
            if Queue.length held >= 8 then
              Refcnt.Refcache.dec rc core (Queue.pop held);
            let o = objs.(Random.State.int core.Ccsim.Core.rng 256) in
            Refcnt.Refcache.inc rc core o;
            Queue.push o held;
            incr ops;
            true)
      done;
      let duration = if !quick then 200_000 else 1_000_000 in
      Ccsim.Machine.run_for machine ~cycles:duration;
      Printf.printf "%6d slots: %12s ops/sec\n%!" slots
        (k (float_of_int !ops /. Ccsim.Machine.seconds machine duration)))
    [ 8; 32; 256; 4096 ];

  (* C. Epoch length: Refcache trades reclamation latency for scalability;
     measure cycles from munmap to the frames actually returning. *)
  Printf.printf "\n-- C. Refcache epoch length vs frame reclamation latency --\n";
  List.iter
    (fun epoch ->
      let machine =
        Ccsim.Machine.create
          (Ccsim.Params.default ~ncores:2 ~epoch_cycles:epoch ())
      in
      let vm = Radixvm.create machine in
      let core = Ccsim.Machine.core machine 0 in
      Radixvm.mmap vm core ~vpn:0 ~npages:16 ();
      for p = 0 to 15 do
        ignore (Radixvm.touch vm core ~vpn:p)
      done;
      (* Settle the maintenance backlog accumulated during setup so the
         measurement starts from a clean epoch boundary. *)
      Ccsim.Machine.drain machine ~cycles:1;
      Radixvm.munmap vm core ~vpn:0 ~npages:16;
      let unmapped_at = Ccsim.Machine.elapsed machine in
      let pm = Ccsim.Machine.physmem machine in
      let freed_at = ref None in
      let guard = ref 0 in
      while !freed_at = None && !guard < 1000 do
        incr guard;
        Ccsim.Machine.drain machine ~cycles:(epoch / 4);
        if Ccsim.Physmem.live_frames pm = 0 then
          freed_at := Some (Ccsim.Machine.elapsed machine)
      done;
      (match !freed_at with
      | Some t ->
          Printf.printf
            "epoch %8d cycles: frames reclaimed %8d cycles after munmap (%.1f epochs)\n%!"
            epoch (t - unmapped_at)
            (float_of_int (t - unmapped_at) /. float_of_int epoch)
      | None -> Printf.printf "epoch %8d cycles: frames never reclaimed!\n" epoch))
    [ 100_000; 1_000_000; 10_000_000 ];
  ablation_fork ()

(* ------------------------------------------------------------------ *)
(* Wall-clock microbenchmarks of the real data structures (Bechamel)   *)

let wallclock () =
  header "Wall-clock microbenchmarks (Bechamel, real time not simulated)";
  let open Bechamel in
  let open Toolkit in
  let machine = Ccsim.Machine.create (Ccsim.Params.default ~ncores:4 ()) in
  let rc = Refcnt.Refcache.create machine in
  let core = Ccsim.Machine.core machine 0 in
  let tree = Radix.create ~bits:9 ~levels:3 machine rc core in
  let lk = Radix.lock_range tree core ~lo:0 ~hi:4096 in
  Radix.fill_range tree core lk 42;
  Radix.unlock_range tree core lk;
  let obj = Refcnt.Refcache.make_obj rc core ~init:1 ~free:(fun _ -> ()) in
  let sl = Structures.Skiplist.create core in
  for i = 0 to 999 do
    Structures.Skiplist.insert core sl (i * 17) i
  done;
  let counter = ref 0 in
  let tests =
    Test.make_grouped ~name:"radixvm" ~fmt:"%s %s"
      [
        Test.make ~name:"radix lookup"
          (Staged.stage (fun () ->
               incr counter;
               ignore (Radix.lookup tree core (!counter * 7 mod 4096))));
        Test.make ~name:"refcache inc/dec"
          (Staged.stage (fun () ->
               Refcnt.Refcache.inc rc core obj;
               Refcnt.Refcache.dec rc core obj));
        Test.make ~name:"skiplist find"
          (Staged.stage (fun () ->
               incr counter;
               ignore
                 (Structures.Skiplist.find core sl (!counter * 17 mod 17000))));
      ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let raw_results = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw_results in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> Printf.printf "%-32s %10.1f ns/op\n" name est
      | _ -> Printf.printf "%-32s (no estimate)\n" name)
    results

(* ------------------------------------------------------------------ *)

let targets =
  [
    ("table1", table1);
    ("fig4", fig4);
    ("fig5", fig5);
    ("table2", table2);
    ("pt-overhead", pt_overhead);
    ("fig6", fig6);
    ("fig7", fig7);
    ("fig8", fig8);
    ("fig9", fig9);
    ("ablations", ablations);
    ("wallclock", wallclock);
  ]

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let args =
    List.filter
      (fun a ->
        if a = "--quick" then begin
          quick := true;
          false
        end
        else if a = "--check" then begin
          check := true;
          false
        end
        else true)
      args
  in
  let selected =
    match args with
    | [] | [ "all" ] -> List.map fst targets
    | names -> names
  in
  List.iter
    (fun name ->
      match List.assoc_opt name targets with
      | Some f -> f ()
      | None ->
          Printf.eprintf "unknown target %s; available: %s\n" name
            (String.concat " " (List.map fst targets));
          exit 1)
    selected
