(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (section 5). Run with no arguments for everything, or pass
   target names: table1 fig4 fig5 table2 pt-overhead fig6 fig7 fig8 fig9
   ablations wallclock.

   Flags:
     --quick      shrink sweeps for smoke testing
     --check      attach the dynamic checker to every instrumented run and
                  print a verdict summary after each figure
     --strict     exit nonzero if any checker verdict is not clean
     --jobs N     run the per-(system, core-count) simulations on N host
                  domains (default: Domain.recommended_domain_count; 1 =
                  serial). Results are deterministic and identically
                  ordered for any N.
     --shards N   widest execution width for the shard target's worlds
                  (default 4). Combined with --jobs, the pool width is
                  clamped so jobs x shards never oversubscribes the host.
     --out-dir D  where to write the BENCH_*.json artifacts (default .)

   Every selected target writes a machine-readable artifact
   (BENCH_<target>.json) next to a BENCH_meta.json that records
   wall-clock, job count, and the git commit, so perf trajectories can be
   tracked run over run. *)

module Json = Harness.Json

let usage () =
  Printf.eprintf
    "usage: main.exe [--quick] [--check] [--strict] [--jobs N] [--shards N] [--out-dir D] [targets...]\n\
     targets: %s\n"
    (String.concat " " Figures.target_names);
  exit 1

(* The commit the artifacts were generated from, for BENCH_meta.json.
   Read straight from .git so the harness needs no subprocess and no
   libraries; "unknown" outside a work tree (e.g. a dune sandbox). *)
let git_commit () =
  let read_line path =
    try
      let ic = open_in path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> Some (String.trim (input_line ic)))
    with Sys_error _ | End_of_file -> None
  in
  match read_line ".git/HEAD" with
  | None -> "unknown"
  | Some head ->
      if String.length head > 5 && String.sub head 0 5 = "ref: " then
        let r = String.sub head 5 (String.length head - 5) in
        (match read_line (Filename.concat ".git" r) with
        | Some hash -> hash
        | None -> "unknown")
      else head

let artifact_name target =
  "BENCH_" ^ String.map (fun c -> if c = '-' then '_' else c) target ^ ".json"

let () =
  let quick = ref false
  and check = ref false
  and strict = ref false
  and jobs = ref 0
  and shards = ref 4
  and out_dir = ref "." in
  let rec parse acc = function
    | [] -> List.rev acc
    | "--quick" :: rest ->
        quick := true;
        parse acc rest
    | "--check" :: rest ->
        check := true;
        parse acc rest
    | "--strict" :: rest ->
        strict := true;
        parse acc rest
    | "--jobs" :: n :: rest -> (
        match int_of_string_opt n with
        | Some n when n >= 1 ->
            jobs := n;
            parse acc rest
        | _ -> usage ())
    | "--shards" :: n :: rest -> (
        match int_of_string_opt n with
        | Some n when n >= 1 ->
            shards := n;
            parse acc rest
        | _ -> usage ())
    | "--out-dir" :: d :: rest ->
        out_dir := d;
        parse acc rest
    | ("--jobs" | "--shards" | "--out-dir") :: [] -> usage ()
    | a :: _ when String.length a > 0 && a.[0] = '-' -> usage ()
    | a :: rest -> parse (a :: acc) rest
  in
  let args = parse [] (List.tl (Array.to_list Sys.argv)) in
  let selected =
    match args with [] | [ "all" ] -> Figures.target_names | names -> names
  in
  (* A shard-figure world already runs up to --shards domains of its own,
     so when the shard target is part of the run an explicit --jobs is
     clamped to jobs x shards <= the host's parallelism
     (Pool.clamp_jobs); other targets keep the requested width. *)
  let per_job = if List.mem "shard" selected then !shards else 1 in
  let jobs =
    if !jobs = 0 then Harness.Pool.default_jobs ()
    else Harness.Pool.clamp_jobs ~per_job !jobs
  in
  let ctx =
    {
      Figures.quick = !quick;
      check = !check;
      jobs;
      shards = !shards;
      ppf = Format.std_formatter;
    }
  in
  let t0 = Unix.gettimeofday () in
  let all_checks = ref [] in
  let target_walls = ref [] in
  List.iter
    (fun name ->
      let t_target = Unix.gettimeofday () in
      match Figures.run_target ctx name with
      | None ->
          Printf.eprintf "unknown target %s; available: %s\n" name
            (String.concat " " Figures.target_names);
          exit 1
      | Some out ->
          all_checks := !all_checks @ out.Figures.checks;
          target_walls :=
            (name, Unix.gettimeofday () -. t_target) :: !target_walls;
          Json.to_file ~pretty:true
            (Filename.concat !out_dir (artifact_name name))
            out.Figures.json)
    selected;
  let wall = Unix.gettimeofday () -. t0 in
  Json.to_file ~pretty:true
    (Filename.concat !out_dir "BENCH_meta.json")
    (Json.Obj
       [
         ("schema_version", Json.Int 1);
         ("targets", Json.List (List.map (fun t -> Json.String t) selected));
         ("quick", Json.Bool !quick);
         ("check", Json.Bool !check);
         ("jobs", Json.Int jobs);
         ("host_domains", Json.Int (Harness.Pool.default_jobs ()));
         ("wall_clock_seconds", Json.Float wall);
         ( "target_wall_clock_seconds",
           Json.Obj
             (List.rev_map
                (fun (name, s) -> (name, Json.Float s))
                !target_walls) );
         ("generated_at", Json.Float t0);
         ("commit", Json.String (git_commit ()));
         ( "instrumented_runs",
           Json.List
             (List.map
                (fun (n, ok) ->
                  Json.Obj
                    [ ("name", Json.String n); ("clean", Json.Bool ok) ])
                !all_checks) );
       ]);
  if !strict then begin
    let bad = List.filter (fun (_, ok) -> not ok) !all_checks in
    if bad <> [] then begin
      Printf.eprintf "strict: %d instrumented runs with findings\n"
        (List.length bad);
      exit 1
    end
  end
