(* Self-performance regression gate: diff a fresh BENCH_selfperf.json
   against the committed baseline, with tolerance bands.

     compare.exe [--tolerance FRAC] baseline.json current.json

   Every metric in the baseline must exist in the current artifact and be
   no worse than baseline * (1 + band) (for lower-is-better metrics; the
   reciprocal for higher-is-better ones). Host wall-clock is noisy — the
   default band is deliberately wide (50%) so the gate catches order-of-
   magnitude slips (an accidental O(n^2), a debug build) rather than
   scheduler jitter. A metric object in the baseline may carry its own
   "tolerance" field to widen or tighten its band.

   Exits 1 listing each regressed metric; improvements only print. *)

module Json = Harness.Json

let fail fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt

let metrics path json =
  match Json.member "metrics" json with
  | Some (Json.List rows) ->
      List.filter_map
        (fun row ->
          match Json.member "name" row with
          | Some (Json.String name) -> Some (name, row)
          | _ -> None)
        rows
  | _ -> fail "%s: no metrics array" path

let number = function
  | Some (Json.Float f) -> Some f
  | Some (Json.Int i) -> Some (float_of_int i)
  | _ -> None

let () =
  let tolerance = ref 0.5 in
  let paths = ref [] in
  let rec parse = function
    | [] -> ()
    | "--tolerance" :: f :: rest -> (
        match float_of_string_opt f with
        | Some f when f >= 0.0 ->
            tolerance := f;
            parse rest
        | _ -> fail "compare: bad --tolerance %s" f)
    | p :: rest ->
        paths := p :: !paths;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let base_path, cur_path =
    match List.rev !paths with
    | [ b; c ] -> (b, c)
    | _ -> fail "usage: compare.exe [--tolerance FRAC] baseline.json current.json"
  in
  let load path =
    match Json.of_file path with
    | Ok j -> j
    | Error m -> fail "%s: %s" path m
  in
  let base = metrics base_path (load base_path) in
  let cur = metrics cur_path (load cur_path) in
  let regressions = ref 0 in
  List.iter
    (fun (name, brow) ->
      match number (Json.member "value" brow) with
      | None -> ()  (* baseline had no estimate: nothing to hold against *)
      | Some bv -> (
          let band =
            match number (Json.member "tolerance" brow) with
            | Some t -> t
            | None -> !tolerance
          in
          let higher_better =
            match Json.member "better" brow with
            | Some (Json.String "higher") -> true
            | _ -> false
          in
          match List.assoc_opt name cur with
          | None ->
              incr regressions;
              Printf.printf "FAIL %-28s missing from %s\n" name cur_path
          | Some crow -> (
              match number (Json.member "value" crow) with
              | None ->
                  incr regressions;
                  Printf.printf "FAIL %-28s lost its estimate\n" name
              | Some cv ->
                  let worse =
                    if higher_better then cv < bv /. (1.0 +. band)
                    else cv > bv *. (1.0 +. band)
                  in
                  let ratio = if bv = 0.0 then 1.0 else cv /. bv in
                  if worse then begin
                    incr regressions;
                    Printf.printf
                      "FAIL %-28s %10.2f -> %10.2f  (%.2fx, band %.0f%%)\n"
                      name bv cv ratio (band *. 100.0)
                  end
                  else
                    Printf.printf "ok   %-28s %10.2f -> %10.2f  (%.2fx)\n" name
                      bv cv ratio)))
    base;
  if !regressions > 0 then begin
    Printf.printf "compare: %d metric(s) regressed beyond tolerance\n"
      !regressions;
    exit 1
  end;
  Printf.printf "compare: %d metrics within tolerance\n" (List.length base)
