(* Figure drivers for the paper's evaluation (section 5), refactored from
   print-as-you-go to build-rows-then-render: every figure first describes
   its sweep as a list of independent [(name, config) -> row] jobs, runs
   them on a {!Harness.Pool} (each job builds its own simulated machine,
   so jobs are deterministic and mutually independent), then renders the
   human-readable table from the ordered rows *and* returns a
   machine-readable JSON artifact. Result ordering is submission order
   regardless of worker count, so tables and artifacts are byte-identical
   for any [--jobs]. *)

module Json = Harness.Json
module Pool = Harness.Pool
module Radixvm = Vm.Radixvm.Default
module MB_radix = Workloads.Microbench.Make (Vm.Radixvm.Default)
module MB_linux = Workloads.Microbench.Make (Baselines.Linux_vm)
module MB_bonsai = Workloads.Microbench.Make (Baselines.Bonsai_vm)
module RL_bigmap = Workloads.Rangelock_bench.Make (Vm.Radixvm.Default)
module Metis_radix = Workloads.Metis.Make (Vm.Radixvm.Default)
module Metis_linux = Workloads.Metis.Make (Baselines.Linux_vm)
module Metis_bonsai = Workloads.Metis.Make (Baselines.Bonsai_vm)
module CB_refcache = Workloads.Counter_bench.Make (Refcnt.Refcache_counter)
module CB_shared = Workloads.Counter_bench.Make (Refcnt.Shared_counter)
module CB_snzi = Workloads.Counter_bench.Make (Refcnt.Snzi)
module CB_dist = Workloads.Counter_bench.Make (Refcnt.Distributed_counter)
module SB_shard = Workloads.Shard_bench.Make (Vm.Radixvm.Default)
module PCache = Vm.Page_cache.Make (Refcnt.Refcache_counter)
module CS_radix = Workloads.Cache_serve.Make (Vm.Radixvm.Default)
module CS_linux = Workloads.Cache_serve.Make (Baselines.Linux_vm)
module CS_bonsai = Workloads.Cache_serve.Make (Baselines.Bonsai_vm)

type ctx = {
  quick : bool;  (* shrink sweeps for smoke testing *)
  check : bool;  (* attach the dynamic checker to instrumented runs *)
  jobs : int;  (* worker domains; 1 = serial *)
  shards : int;  (* widest world execution width for the shard figure *)
  ppf : Format.formatter;  (* table output; jobs themselves never print *)
}

let default_ctx =
  { quick = false; check = false; jobs = 1; shards = 4;
    ppf = Format.std_formatter }

type output = {
  json : Json.t;  (* the BENCH_<target>.json payload *)
  checks : (string * bool) list;  (* checker verdicts, in job order *)
}

(* ------------------------------------------------------------------ *)
(* Sweep parameters (unchanged from the serial harness)                *)

let core_counts ctx = if ctx.quick then [ 1; 4; 16 ] else [ 1; 10; 20; 40; 60; 80 ]
let micro_duration ctx = if ctx.quick then 400_000 else 2_000_000

(* The global benchmark's iteration (every core writes every page, then a
   machine-wide shootdown storm) grows with core count; size its windows
   so several iterations fit. *)
let global_duration ctx n =
  if ctx.quick then 2_000_000 else max 8_000_000 (n * 500_000)

(* Startup transients (initial radix expansion, first Refcache epochs,
   channel priming) lengthen with core count; warm up accordingly. *)
let micro_warmup ctx n = if ctx.quick then 1_000_000 else max 4_000_000 (n * 150_000)
let index_duration ctx = if ctx.quick then 200_000 else 800_000
let counter_duration ctx = if ctx.quick then 200_000 else 1_000_000
let metis_words ctx = if ctx.quick then 40_000 else 400_000

(* ------------------------------------------------------------------ *)
(* Rendering helpers                                                   *)

let header ctx title =
  Format.fprintf ctx.ppf "\n================ %s ================\n" title;
  Format.pp_print_flush ctx.ppf ()

let row_header ctx name cols =
  Format.fprintf ctx.ppf "%-24s" name;
  List.iter (fun c -> Format.fprintf ctx.ppf "%14s" c) cols;
  Format.pp_print_newline ctx.ppf ()

let row ctx name cells =
  Format.fprintf ctx.ppf "%-24s" name;
  List.iter (fun v -> Format.fprintf ctx.ppf "%14s" v) cells;
  Format.pp_print_newline ctx.ppf ();
  Format.pp_print_flush ctx.ppf ()

let k v =
  if v >= 1e9 then Printf.sprintf "%.2fG" (v /. 1e9)
  else if v >= 1e6 then Printf.sprintf "%.2fM" (v /. 1e6)
  else if v >= 1e3 then Printf.sprintf "%.1fk" (v /. 1e3)
  else Printf.sprintf "%.0f" v

let report_checks ctx checks =
  if ctx.check then begin
    let total = List.length checks in
    let bad = List.filter (fun (_, ok) -> not ok) checks in
    Format.fprintf ctx.ppf
      "\ncheck: %d instrumented runs, %d clean, %d with findings\n" total
      (total - List.length bad)
      (List.length bad);
    List.iter (fun (n, _) -> Format.fprintf ctx.ppf "  findings: %s\n" n) bad;
    Format.pp_print_flush ctx.ppf ()
  end

(* Each instrumented run carries its verdict in its own row (rather than
   pushing onto a process-global list), so `--check` output is identical
   under any `--jobs N`: verdicts aggregate in job-submission order.

   The verdict asserts what the run actually claims. Lock-order cycles,
   stale TLB entries and refcount faults are hard invariants for every
   system on every workload. Race reports are filtered through
   [race_allow], the per-system list of line labels whose concurrency
   discipline the line-granular lockset analysis cannot express: the
   baselines' shared page table and Bonsai's RCU-style root are written
   or read lock-free by design (that sharing IS the figure), and RadixVM
   interior nodes pack eight per-slot lock bits onto one line, so two
   cores writing different slots under their own locks empty the line's
   lockset even though the words are disjoint (word-granular Eraser
   would not flag it). Any race outside that list fails the verdict.
   The zero-sharing census is additionally asserted only where the
   paper claims it ([zero_sharing]): RadixVM with per-core page tables
   on the disjoint-region (local) benchmark — pipeline/global share the
   region's pages by design. *)
let checked ~ctx ~name ~allow ?(race_allow = []) ?(zero_sharing = false) run =
  if not ctx.check then (run ~on_machine:ignore ~on_measure:ignore, None)
  else begin
    let chk = ref None in
    let r =
      run
        ~on_machine:(fun m -> chk := Some (Check.attach m))
        ~on_measure:(fun () -> Option.iter Check.reset_window !chk)
    in
    match !chk with
    | Some c ->
        let unexpected_races =
          List.filter
            (fun r -> not (List.mem r.Check.race_label race_allow))
            (Check.races c)
        in
        let sound =
          unexpected_races = [] && Check.cycles c = []
          && Check.tlb_violations c = []
          && Check.rc_violations c = []
        in
        let ok =
          sound && ((not zero_sharing) || Check.multi_writer_lines ~allow c = [])
        in
        Check.detach c;
        (r, Some (name, ok))
    | None -> (r, None)
  end

let check_fields = function
  | None -> []
  | Some (name, ok) ->
      [ ("check_name", Json.String name); ("check_clean", Json.Bool ok) ]

let checks_of_rows rows = List.filter_map (fun (_, c) -> c) rows

(* ------------------------------------------------------------------ *)
(* Table 1: major RadixVM components (line counts of this repo)        *)

(* The source tree whose lines Table 1 counts: the nearest ancestor of
   the working directory — or, failing that, of the executable — that
   holds a dune-project. Running under dune resolves to _build/default,
   whose copied sources have the same line counts; resolving against the
   bare working directory would silently count nothing when the driver
   runs from elsewhere (e.g. an --out-dir scratch directory). *)
let repo_root () =
  let rec ascend dir =
    if Sys.file_exists (Filename.concat dir "dune-project") then Some dir
    else
      let parent = Filename.dirname dir in
      if parent = dir then None else ascend parent
  in
  let absolute p =
    if Filename.is_relative p then Filename.concat (Sys.getcwd ()) p else p
  in
  List.find_map ascend
    [ Sys.getcwd (); absolute (Filename.dirname Sys.executable_name) ]

let count_lines root dir =
  let rec walk acc path =
    if Sys.is_directory path then
      Array.fold_left
        (fun acc entry -> walk acc (Filename.concat path entry))
        acc (Sys.readdir path)
    else if Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli"
    then begin
      let ic = open_in path in
      let n = ref 0 in
      (try
         while true do
           ignore (input_line ic);
           incr n
         done
       with End_of_file -> close_in ic);
      acc + !n
    end
    else acc
  in
  match root with
  | None -> 0
  | Some root -> (
      try walk 0 (Filename.concat root dir) with Sys_error _ -> 0)

let table1 ctx =
  header ctx "Table 1: major RadixVM components (lines of code)";
  let components =
    [
      ("Radix tree", [ "lib/radix" ], "1,376");
      ("Refcache", [ "lib/refcache" ], "932");
      ("MMU abstraction + VM ops", [ "lib/core" ], "889 + 632");
      ("Machine substrate (ccsim)", [ "lib/ccsim" ], "(kernel infra)");
      ("Baselines + structures", [ "lib/baselines"; "lib/structures" ], "-");
      ("Workloads", [ "lib/workloads" ], "-");
    ]
  in
  let root = repo_root () in
  let rows =
    List.map
      (fun (name, dirs, paper) ->
        ( name,
          List.fold_left (fun acc d -> acc + count_lines root d) 0 dirs,
          paper ))
      components
  in
  Format.fprintf ctx.ppf "%-28s %10s %16s\n" "Component" "this repo"
    "paper (sv6 C++)";
  List.iter
    (fun (name, lines, paper) ->
      Format.fprintf ctx.ppf "%-28s %10d %16s\n" name lines paper)
    rows;
  Format.pp_print_flush ctx.ppf ();
  {
    json =
      Json.List
        (List.map
           (fun (name, lines, paper) ->
             Json.Obj
               [
                 ("component", Json.String name);
                 ("lines", Json.Int lines);
                 ("paper_lines", Json.String paper);
               ])
           rows);
    checks = [];
  }

(* ------------------------------------------------------------------ *)
(* Figure 4: Metis scalability                                         *)

let fig4 ctx =
  let units = [ ("8MB", 2048); ("64KB", 16) ] in
  let systems =
    [
      ( "RadixVM",
        fun ~unit_pages ~ncores ->
          Metis_radix.run ~total_words:(metis_words ctx) ~unit_pages ~ncores
            Radixvm.create );
      ( "Bonsai",
        fun ~unit_pages ~ncores ->
          Metis_bonsai.run ~total_words:(metis_words ctx) ~unit_pages ~ncores
            Baselines.Bonsai_vm.create );
      ( "Linux",
        fun ~unit_pages ~ncores ->
          Metis_linux.run ~total_words:(metis_words ctx) ~unit_pages ~ncores
            Baselines.Linux_vm.create );
    ]
  in
  let jobs =
    List.concat_map
      (fun (uname, unit_pages) ->
        List.concat_map
          (fun (sysname, run) ->
            List.map
              (fun n ->
                Pool.job
                  ~name:(Printf.sprintf "%s/%s %d cores" sysname uname n)
                  (fun () -> (uname, sysname, n, run ~unit_pages ~ncores:n)))
              (core_counts ctx))
          systems)
      units
  in
  let rows = Pool.run ~jobs:ctx.jobs jobs in
  header ctx "Figure 4: Metis throughput (jobs/hour), word-position index";
  List.iter
    (fun (uname, _) ->
      Format.fprintf ctx.ppf "\n-- allocation unit %s --\n" uname;
      row_header ctx "cores" (List.map string_of_int (core_counts ctx));
      List.iter
        (fun (sysname, _) ->
          let cells =
            List.filter_map
              (fun (u, s, _, r) ->
                if u = uname && s = sysname then
                  Some (k r.Workloads.Metis.jobs_per_hour)
                else None)
              rows
          in
          row ctx (sysname ^ "/" ^ uname) cells)
        systems)
    units;
  {
    json =
      Json.List
        (List.map
           (fun (u, s, n, (r : Workloads.Metis.report)) ->
             Json.Obj
               [
                 ("unit", Json.String u);
                 ("system", Json.String s);
                 ("cores", Json.Int n);
                 ("jobs_per_hour", Json.Float r.jobs_per_hour);
                 ("job_cycles", Json.Int r.job_cycles);
                 ("mmaps", Json.Int r.mmaps);
                 ("pagefaults", Json.Int r.pagefaults);
                 ("ipis", Json.Int r.ipis);
               ])
           rows);
    checks = [];
  }

(* ------------------------------------------------------------------ *)
(* Figures 5 and 9: microbenchmarks                                    *)

(* One runnable microbenchmark family: a VM system (possibly with a fixed
   MMU policy) exposing the three section-5.3 benchmarks. *)
type micro_sys = {
  ms_name : string;
  ms_allow : string list;
  ms_race_allow : string list;
      (* line labels with documented lock-free or sub-line discipline *)
  ms_zero : string list;
      (* benches on which this system claims a zero-sharing census *)
  ms_local :
    warmup:int ->
    ncores:int ->
    duration:int ->
    on_machine:(Ccsim.Machine.t -> unit) ->
    on_measure:(unit -> unit) ->
    Workloads.Microbench.result;
  ms_pipeline :
    warmup:int ->
    ncores:int ->
    duration:int ->
    on_machine:(Ccsim.Machine.t -> unit) ->
    on_measure:(unit -> unit) ->
    Workloads.Microbench.result;
  ms_global :
    warmup:int ->
    ncores:int ->
    duration:int ->
    on_machine:(Ccsim.Machine.t -> unit) ->
    on_measure:(unit -> unit) ->
    Workloads.Microbench.result;
}

(* RadixVM with per-core page tables claims zero sharing only on the
   local benchmark: pipeline hands pages between cores and global maps
   one region from every core, so those share application lines by
   design. "radix:slot" is race-allowed because interior nodes keep
   eight per-slot lock bits on one line (see [checked]). *)
let radix_sys ?(race_allow = [ "radix:slot" ]) ?(zero = [ "local" ]) ~name
    ~allow make =
  {
    ms_name = name;
    ms_allow = allow;
    ms_race_allow = race_allow;
    ms_zero = zero;
    ms_local =
      (fun ~warmup ~ncores ~duration ~on_machine ~on_measure ->
        MB_radix.local ~warmup ~on_machine ~on_measure ~ncores ~duration make);
    ms_pipeline =
      (fun ~warmup ~ncores ~duration ~on_machine ~on_measure ->
        MB_radix.pipeline ~warmup ~on_machine ~on_measure ~ncores ~duration make);
    ms_global =
      (fun ~warmup ~ncores ~duration ~on_machine ~on_measure ->
        MB_radix.global ~warmup ~on_machine ~on_measure ~ncores ~duration make);
  }

let bonsai_sys =
  {
    ms_name = "Bonsai";
    ms_allow = [];
    (* shared page table written lock-free; RCU-style lock-free root *)
    ms_race_allow = [ "pt:shared"; "bonsai:root" ];
    ms_zero = [];
    ms_local =
      (fun ~warmup ~ncores ~duration ~on_machine ~on_measure ->
        MB_bonsai.local ~warmup ~on_machine ~on_measure ~ncores ~duration
          Baselines.Bonsai_vm.create);
    ms_pipeline =
      (fun ~warmup ~ncores ~duration ~on_machine ~on_measure ->
        MB_bonsai.pipeline ~warmup ~on_machine ~on_measure ~ncores ~duration
          Baselines.Bonsai_vm.create);
    ms_global =
      (fun ~warmup ~ncores ~duration ~on_machine ~on_measure ->
        MB_bonsai.global ~warmup ~on_machine ~on_measure ~ncores ~duration
          Baselines.Bonsai_vm.create);
  }

let linux_sys =
  {
    ms_name = "Linux";
    ms_allow = [];
    (* shared page table written lock-free by design *)
    ms_race_allow = [ "pt:shared" ];
    ms_zero = [];
    ms_local =
      (fun ~warmup ~ncores ~duration ~on_machine ~on_measure ->
        MB_linux.local ~warmup ~on_machine ~on_measure ~ncores ~duration
          Baselines.Linux_vm.create);
    ms_pipeline =
      (fun ~warmup ~ncores ~duration ~on_machine ~on_measure ->
        MB_linux.pipeline ~warmup ~on_machine ~on_measure ~ncores ~duration
          Baselines.Linux_vm.create);
    ms_global =
      (fun ~warmup ~ncores ~duration ~on_machine ~on_measure ->
        MB_linux.global ~warmup ~on_machine ~on_measure ~ncores ~duration
          Baselines.Linux_vm.create);
  }

let micro_benches = [ "local"; "pipeline"; "global" ]

(* One job: run [bench] of [sys] at column [n] and return the result row
   with its verdict. The pipeline benchmark needs at least two cores; the
   global benchmark sizes both windows to the core count. *)
let micro_job ~ctx ~sys ~bench ~n =
  (* Names carry the effective core count (the pipeline benchmark needs
     at least two), matching the machine the run actually simulates. *)
  let effective = match bench with "pipeline" -> max 2 n | _ -> n in
  let name = Printf.sprintf "%s %s %d cores" sys.ms_name bench effective in
  Pool.job ~name (fun () ->
      let run =
        match bench with
        | "local" ->
            sys.ms_local ~warmup:(micro_warmup ctx n) ~ncores:n
              ~duration:(micro_duration ctx)
        | "pipeline" ->
            sys.ms_pipeline ~warmup:(micro_warmup ctx n) ~ncores:effective
              ~duration:(micro_duration ctx)
        | "global" ->
            let d = global_duration ctx n in
            sys.ms_global ~warmup:d ~ncores:n ~duration:d
        | other -> failwith ("unknown microbenchmark " ^ other)
      in
      let result, verdict =
        checked ~ctx ~name ~allow:sys.ms_allow ~race_allow:sys.ms_race_allow
          ~zero_sharing:(List.mem bench sys.ms_zero)
          (fun ~on_machine ~on_measure -> run ~on_machine ~on_measure)
      in
      ((bench, sys.ms_name, n, result), verdict))

let micro_json ?(extra = []) (bench, system, cores, (r : Workloads.Microbench.result))
    verdict =
  (* "cores" is the sweep column; when a benchmark's floor lifts the
     simulated count (pipeline needs a producer and a consumer), the
     machine actually built is recorded as "effective_cores". *)
  let effective =
    if bench = "pipeline" && cores < 2 then
      [ ("effective_cores", Json.Int 2) ]
    else []
  in
  Json.Obj
    (extra
    @ [
        ("bench", Json.String bench);
        ("system", Json.String system);
        ("cores", Json.Int cores);
      ]
    @ effective
    @ [
        ("writes_per_sec", Json.Float r.writes_per_sec);
        ("page_writes", Json.Int r.page_writes);
        ("cycles", Json.Int r.cycles);
        ("ipis", Json.Int r.ipis);
        ("shootdowns", Json.Int r.shootdown_events);
        ("transfers", Json.Int r.transfers);
        ("lock_wait", Json.Int r.lock_wait);
        ("shootdown_wait", Json.Int r.shootdown_wait);
        ("line_stall", Json.Int r.line_stall);
      ]
    @ check_fields verdict)

let render_micro_tables ctx ~row_name ~rows =
  List.iter
    (fun bench ->
      Format.fprintf ctx.ppf "\n-- %s (total page writes/sec) --\n" bench;
      row_header ctx "cores" (List.map string_of_int (core_counts ctx));
      let systems_in_order =
        List.fold_left
          (fun acc ((b, s, _, _), _) ->
            if b = bench && not (List.mem s acc) then acc @ [ s ] else acc)
          [] rows
      in
      List.iter
        (fun sysname ->
          let cells =
            List.filter_map
              (fun ((b, s, _, r), _) ->
                if b = bench && s = sysname then
                  Some (k r.Workloads.Microbench.writes_per_sec)
                else None)
              rows
          in
          row ctx (row_name sysname) cells)
        systems_in_order)
    micro_benches

let fig5 ctx =
  let systems =
    [ radix_sys ~name:"RadixVM" ~allow:Check.radixvm_allow Radixvm.create;
      bonsai_sys; linux_sys ]
  in
  let jobs =
    List.concat_map
      (fun bench ->
        List.concat_map
          (fun sys ->
            List.map (fun n -> micro_job ~ctx ~sys ~bench ~n) (core_counts ctx))
          systems)
      micro_benches
  in
  let rows = Pool.run ~jobs:ctx.jobs jobs in
  header ctx "Figure 5: local / pipeline / global microbenchmarks";
  render_micro_tables ctx ~row_name:(fun s -> s) ~rows;
  let checks = checks_of_rows rows in
  report_checks ctx checks;
  { json = Json.List (List.map (fun (r, v) -> micro_json r v) rows); checks }

let fig9 ctx =
  let systems =
    [
      radix_sys ~name:"Per-core" ~allow:Check.radixvm_allow Radixvm.create;
      (* With a shared page table, PTE writes come from every faulting
         core: sharing (and its lock-free writes) is the point of the
         comparison, so no zero-sharing claim. *)
      radix_sys ~name:"Shared" ~allow:Check.radixvm_allow
        ~race_allow:[ "radix:slot"; "pt:shared" ] ~zero:[]
        (fun m -> Radixvm.create_with ~mmu:Vm.Page_table.Shared m);
    ]
  in
  let jobs =
    List.concat_map
      (fun bench ->
        List.concat_map
          (fun sys ->
            List.map (fun n -> micro_job ~ctx ~sys ~bench ~n) (core_counts ctx))
          systems)
      micro_benches
  in
  let rows = Pool.run ~jobs:ctx.jobs jobs in
  header ctx "Figure 9: per-core vs shared page tables (RadixVM)";
  render_micro_tables ctx ~row_name:(fun s -> s) ~rows;
  let checks = checks_of_rows rows in
  report_checks ctx checks;
  {
    json =
      Json.List
        (List.map
           (fun ((b, s, n, r), v) ->
             micro_json
               ~extra:[ ("page_tables", Json.String s) ]
               (b, "RadixVM", n, r) v)
           rows);
    checks;
  }

(* ------------------------------------------------------------------ *)
(* Range-lock crossover: backends x operation mixes                    *)

(* The four points in the backend space the crossover figure compares.
   Partitioning is a variant of the embedded backend, not a separate
   backend, so it appears here as "radix-part64" (split folds wider than
   64 pages instead of propagating locks into them). *)
let rangelock_variants =
  [
    ("radix", Locks.Range_lock.Radix_embedded, None);
    ("radix-part64", Locks.Range_lock.Radix_embedded, Some 64);
    ("list", Locks.Range_lock.List_based, None);
    ("global", Locks.Range_lock.Global, None);
  ]

let rangelock_mixes = [ "disjoint"; "bigmap" ]

(* Two operation mixes bracket the design space: "disjoint" is the
   Figure 5 local benchmark (per-core private regions — the embedded
   backend's best case, pure per-slot locality), "bigmap" is the fault
   storm on one freshly-folded huge mapping (its worst case — the first
   fault's expansion propagates the lock to every new slot, which is
   exactly what the partition variant avoids and what the external
   backends never do). Where the curves cross is the figure. *)
let rangelock ctx =
  let jobs =
    List.concat_map
      (fun mix ->
        List.concat_map
          (fun (vname, kind, partition) ->
            List.map
              (fun n ->
                let name =
                  Printf.sprintf "rangelock %s %s %d cores" vname mix n
                in
                Pool.job ~name (fun () ->
                    let make m =
                      Radixvm.create_with ~rangelock:kind ?partition m
                    in
                    let run =
                      match mix with
                      | "disjoint" ->
                          fun ~on_machine ~on_measure ->
                            MB_radix.local ~warmup:(micro_warmup ctx n)
                              ~on_machine ~on_measure ~ncores:n
                              ~duration:(micro_duration ctx) make
                      | "bigmap" ->
                          let d = global_duration ctx n in
                          fun ~on_machine ~on_measure ->
                            RL_bigmap.bigmap ~warmup:d ~on_machine ~on_measure
                              ~ncores:n ~duration:d make
                      | other -> failwith ("unknown rangelock mix " ^ other)
                    in
                    (* External backends share their lock lines and walk
                       the tree lock-free under range protection — admit
                       exactly those labels (Range_lock.labels), nothing
                       more. Zero sharing is claimed where the paper
                       claims it: the embedded backend on the disjoint
                       mix. *)
                    let rl = Locks.Range_lock.labels kind in
                    let result, verdict =
                      checked ~ctx ~name
                        ~allow:(Check.radixvm_allow @ rl)
                        ~race_allow:("radix:slot" :: rl)
                        ~zero_sharing:
                          (mix = "disjoint"
                          && kind = Locks.Range_lock.Radix_embedded)
                        run
                    in
                    ((mix, vname, n, result), verdict)))
              (core_counts ctx))
          rangelock_variants)
      rangelock_mixes
  in
  let rows = Pool.run ~jobs:ctx.jobs jobs in
  header ctx "Range-lock crossover: backend x mix (page writes/sec)";
  List.iter
    (fun mix ->
      Format.fprintf ctx.ppf "\n-- %s (total page writes/sec) --\n" mix;
      row_header ctx "cores" (List.map string_of_int (core_counts ctx));
      List.iter
        (fun (vname, _, _) ->
          let cells =
            List.filter_map
              (fun ((m, v, _, r), _) ->
                if m = mix && v = vname then
                  Some (k r.Workloads.Microbench.writes_per_sec)
                else None)
              rows
          in
          row ctx vname cells)
        rangelock_variants)
    rangelock_mixes;
  let checks = checks_of_rows rows in
  report_checks ctx checks;
  {
    json =
      Json.List
        (List.map
           (fun ((mix, vname, n, (r : Workloads.Microbench.result)), v) ->
             Json.Obj
               ([
                  ("backend", Json.String vname);
                  ("mix", Json.String mix);
                  ("cores", Json.Int n);
                  ("writes_per_sec", Json.Float r.writes_per_sec);
                  ("page_writes", Json.Int r.page_writes);
                  ("cycles", Json.Int r.cycles);
                  ("ipis", Json.Int r.ipis);
                  ("shootdowns", Json.Int r.shootdown_events);
                  ("transfers", Json.Int r.transfers);
                  ("lock_wait", Json.Int r.lock_wait);
                  ("shootdown_wait", Json.Int r.shootdown_wait);
                  ("line_stall", Json.Int r.line_stall);
                ]
               @ check_fields v))
           rows);
    checks;
  }

(* ------------------------------------------------------------------ *)
(* Table 2: memory overhead                                            *)

let table2 ctx =
  let jobs =
    List.map
      (fun p ->
        Pool.job ~name:("snapshot " ^ p.Workloads.Snapshots.name) (fun () ->
            Workloads.Snapshots.measure p))
      Workloads.Snapshots.all
  in
  let rows = Pool.run ~jobs:ctx.jobs jobs in
  header ctx "Table 2: memory usage for alternate VM representations";
  List.iter (fun r -> Format.fprintf ctx.ppf "%a@." Workloads.Snapshots.pp_row r) rows;
  Format.fprintf ctx.ppf
    "(paper: Firefox 2.4x, Chrome 2.0x, Apache 1.5x, MySQL 2.7x)\n";
  Format.pp_print_flush ctx.ppf ();
  {
    json =
      Json.List
        (List.map
           (fun (r : Workloads.Snapshots.row) ->
             Json.Obj
               [
                 ("profile", Json.String r.profile.Workloads.Snapshots.name);
                 ("vma_count", Json.Int r.profile.Workloads.Snapshots.vma_count);
                 ("rss_bytes", Json.Int r.rss_bytes);
                 ("linux_vma_bytes", Json.Int r.linux_vma_bytes);
                 ("linux_pt_bytes", Json.Int r.linux_pt_bytes);
                 ("radix_bytes", Json.Int r.radix_bytes);
                 ("ratio", Json.Float r.ratio);
               ])
           rows);
    checks = [];
  }

(* ------------------------------------------------------------------ *)
(* Section 5.4: per-core page table overhead for Metis                 *)

let pt_overhead ctx =
  let ncores = if ctx.quick then 16 else 80 in
  let measure mmu () =
    let captured = ref None in
    let make machine =
      let vm = Radixvm.create_with ~mmu machine in
      captured := Some vm;
      vm
    in
    let _metis =
      Metis_radix.run ~total_words:(metis_words ctx) ~unit_pages:16 ~ncores make
    in
    match !captured with
    | Some vm ->
        let pt = Radixvm.pt_bytes vm in
        let rss =
          Ccsim.Physmem.live_frames (Ccsim.Machine.physmem (Radixvm.machine vm))
          * Vm.Vm_types.page_size
        in
        (pt, rss)
    | None -> assert false
  in
  let jobs =
    [
      Pool.job ~name:"pt-overhead per-core" (measure Vm.Page_table.Per_core);
      Pool.job ~name:"pt-overhead shared" (measure Vm.Page_table.Shared);
    ]
  in
  let rows = Pool.run ~jobs:ctx.jobs jobs in
  let (pt_per_core, rss), (pt_shared, _) =
    match rows with [ a; b ] -> (a, b) | _ -> assert false
  in
  header ctx "Section 5.4: Metis page-table overhead, per-core vs shared";
  Format.fprintf ctx.ppf
    "Metis at %d cores: app memory %s, shared PT %s (%.1f%%), per-core PT %s (%.1f%%), ratio %.1fx\n"
    ncores
    (k (float_of_int rss))
    (k (float_of_int pt_shared))
    (100. *. float_of_int pt_shared /. float_of_int rss)
    (k (float_of_int pt_per_core))
    (100. *. float_of_int pt_per_core /. float_of_int rss)
    (float_of_int pt_per_core /. float_of_int (max 1 pt_shared));
  Format.fprintf ctx.ppf
    "(paper: shared 0.3%% of app memory, per-core 3.6%%, 13x)\n";
  Format.pp_print_flush ctx.ppf ();
  {
    json =
      Json.Obj
        [
          ("cores", Json.Int ncores);
          ("app_rss_bytes", Json.Int rss);
          ("pt_bytes_shared", Json.Int pt_shared);
          ("pt_bytes_per_core", Json.Int pt_per_core);
          ( "ratio",
            Json.Float (float_of_int pt_per_core /. float_of_int (max 1 pt_shared))
          );
        ];
    checks = [];
  }

(* ------------------------------------------------------------------ *)
(* Figures 6 and 7: index structure lookups vs writers                 *)

let fig_index ctx ~title ~structure ~writer_counts run =
  let jobs =
    List.concat_map
      (fun writers ->
        List.map
          (fun readers ->
            Pool.job
              ~name:
                (Printf.sprintf "%s %d writers %d readers" structure writers
                   readers)
              (fun () ->
                ( writers,
                  readers,
                  run ~readers ~writers ~duration:(index_duration ctx) )))
          (core_counts ctx))
      writer_counts
  in
  let rows = Pool.run ~jobs:ctx.jobs jobs in
  header ctx title;
  row_header ctx "reader cores" (List.map string_of_int (core_counts ctx));
  List.iter
    (fun writers ->
      let cells =
        List.filter_map
          (fun (w, _, r) ->
            if w = writers then Some (k r.Workloads.Index_bench.lookups_per_sec)
            else None)
          rows
      in
      row ctx (Printf.sprintf "%d writers" writers) cells)
    writer_counts;
  {
    json =
      Json.List
        (List.map
           (fun (w, rd, (r : Workloads.Index_bench.result)) ->
             Json.Obj
               [
                 ("structure", Json.String structure);
                 ("readers", Json.Int rd);
                 ("writers", Json.Int w);
                 ("lookups_per_sec", Json.Float r.lookups_per_sec);
                 ("lookups", Json.Int r.lookups);
                 ("write_pairs_per_sec", Json.Float r.write_pairs_per_sec);
               ])
           rows);
    checks = [];
  }

let fig6 ctx =
  fig_index ctx
    ~title:"Figure 6: skip list lookups under concurrent inserts/deletes"
    ~structure:"skiplist" ~writer_counts:[ 0; 1; 5 ]
    (fun ~readers ~writers ~duration ->
      Workloads.Index_bench.skiplist ~readers ~writers ~duration ())

let fig7 ctx =
  fig_index ctx
    ~title:"Figure 7: radix tree lookups under concurrent inserts/deletes"
    ~structure:"radix" ~writer_counts:[ 0; 10; 40 ]
    (fun ~readers ~writers ~duration ->
      Workloads.Index_bench.radix ~readers ~writers ~duration ())

(* ------------------------------------------------------------------ *)
(* Figure 8: reference counting schemes                                *)

let fig8 ctx =
  let schemes =
    [
      ("Refcache", fun ~ncores ~duration -> CB_refcache.run ~ncores ~duration ());
      ("SNZI", fun ~ncores ~duration -> CB_snzi.run ~ncores ~duration ());
      ("Shared counter", fun ~ncores ~duration -> CB_shared.run ~ncores ~duration ());
      ("Distributed", fun ~ncores ~duration -> CB_dist.run ~ncores ~duration ());
    ]
  in
  let jobs =
    List.concat_map
      (fun (name, run) ->
        List.map
          (fun n ->
            Pool.job
              ~name:(Printf.sprintf "%s %d cores" name n)
              (fun () ->
                (name, n, run ~ncores:n ~duration:(counter_duration ctx))))
          (core_counts ctx))
      schemes
  in
  let rows = Pool.run ~jobs:ctx.jobs jobs in
  header ctx "Figure 8: page-sharing throughput by refcount scheme (iters/sec)";
  row_header ctx "cores" (List.map string_of_int (core_counts ctx));
  List.iter
    (fun (name, _) ->
      let cells =
        List.filter_map
          (fun (s, _, r) ->
            if s = name then Some (k r.Workloads.Counter_bench.iters_per_sec)
            else None)
          rows
      in
      row ctx name cells)
    schemes;
  {
    json =
      Json.List
        (List.map
           (fun (s, n, (r : Workloads.Counter_bench.result)) ->
             Json.Obj
               [
                 ("scheme", Json.String s);
                 ("cores", Json.Int n);
                 ("iters_per_sec", Json.Float r.iters_per_sec);
                 ("iterations", Json.Int r.iterations);
                 ("transfers", Json.Int r.transfers);
               ])
           rows);
    checks = [];
  }

(* ------------------------------------------------------------------ *)
(* Ablations: design knobs the paper discusses but does not plot        *)

(* A. MMU policy sweep (section 3.3's page-table sharing compromise). *)
let ablation_mmu ctx =
  let policies =
    [
      ("Per-core", Vm.Page_table.Per_core);
      ("Per-socket (10)", Vm.Page_table.Grouped 10);
      ("Shared", Vm.Page_table.Shared);
    ]
  in
  let jobs =
    List.concat_map
      (fun (name, mmu) ->
        List.map
          (fun n ->
            Pool.job
              ~name:(Printf.sprintf "mmu %s %d cores" name n)
              (fun () ->
                let r =
                  MB_radix.local ~warmup:(micro_warmup ctx n) ~ncores:n
                    ~duration:(micro_duration ctx)
                    (fun m -> Radixvm.create_with ~mmu m)
                in
                (name, n, r.Workloads.Microbench.writes_per_sec)))
          (core_counts ctx))
      policies
  in
  let rows = Pool.run ~jobs:ctx.jobs jobs in
  Format.fprintf ctx.ppf
    "\n-- A. MMU policy, local benchmark (page writes/sec) --\n";
  row_header ctx "cores" (List.map string_of_int (core_counts ctx));
  List.iter
    (fun (name, _) ->
      let cells =
        List.filter_map
          (fun (p, _, w) -> if p = name then Some (k w) else None)
          rows
      in
      row ctx name cells)
    policies;
  Json.List
    (List.map
       (fun (p, n, w) ->
         Json.Obj
           [
             ("policy", Json.String p);
             ("cores", Json.Int n);
             ("writes_per_sec", Json.Float w);
           ])
       rows)

(* B. Refcache delta-cache size: conflict rate as the space/scalability
   knob — a hot working set with a tiny cache evicts constantly. *)
let ablation_cache_size ctx =
  let run_one slots () =
    let machine = Ccsim.Machine.create (Ccsim.Params.default ~ncores:16 ()) in
    let rc = Refcnt.Refcache.create ~cache_slots:slots machine in
    let core0 = Ccsim.Machine.core machine 0 in
    let objs =
      Array.init 256 (fun _ ->
          Refcnt.Refcache.make_obj rc core0 ~init:1 ~free:(fun _ -> ()))
    in
    let ops = ref 0 in
    for c = 0 to 15 do
      let core = Ccsim.Machine.core machine c in
      (* Hold references across operations so deltas stay cached between
         steps: cache conflicts then evict live deltas to the shared
         global counts. *)
      let held = Queue.create () in
      Ccsim.Machine.set_workload machine c (fun () ->
          if Queue.length held >= 8 then
            Refcnt.Refcache.dec rc core (Queue.pop held);
          let o = objs.(Random.State.int core.Ccsim.Core.rng 256) in
          Refcnt.Refcache.inc rc core o;
          Queue.push o held;
          incr ops;
          true)
    done;
    let duration = if ctx.quick then 200_000 else 1_000_000 in
    Ccsim.Machine.run_for machine ~cycles:duration;
    (slots, float_of_int !ops /. Ccsim.Machine.seconds machine duration)
  in
  let jobs =
    List.map
      (fun slots ->
        Pool.job ~name:(Printf.sprintf "refcache %d slots" slots) (run_one slots))
      [ 8; 32; 256; 4096 ]
  in
  let rows = Pool.run ~jobs:ctx.jobs jobs in
  Format.fprintf ctx.ppf
    "\n-- B. Refcache delta-cache size (16 cores, 256 hot objects; ops/sec) --\n";
  List.iter
    (fun (slots, ops) ->
      Format.fprintf ctx.ppf "%6d slots: %12s ops/sec\n" slots (k ops))
    rows;
  Format.pp_print_flush ctx.ppf ();
  Json.List
    (List.map
       (fun (slots, ops) ->
         Json.Obj [ ("slots", Json.Int slots); ("ops_per_sec", Json.Float ops) ])
       rows)

(* C. Epoch length: reclamation latency vs scalability. *)
let ablation_epoch ctx =
  let run_one epoch () =
    let machine =
      Ccsim.Machine.create (Ccsim.Params.default ~ncores:2 ~epoch_cycles:epoch ())
    in
    let vm = Radixvm.create machine in
    let core = Ccsim.Machine.core machine 0 in
    Radixvm.mmap vm core ~vpn:0 ~npages:16 ();
    for p = 0 to 15 do
      ignore (Radixvm.touch vm core ~vpn:p)
    done;
    (* Settle the maintenance backlog accumulated during setup so the
       measurement starts from a clean epoch boundary. *)
    Ccsim.Machine.drain machine ~cycles:1;
    Radixvm.munmap vm core ~vpn:0 ~npages:16;
    let unmapped_at = Ccsim.Machine.elapsed machine in
    let pm = Ccsim.Machine.physmem machine in
    let freed_at = ref None in
    let guard = ref 0 in
    while !freed_at = None && !guard < 1000 do
      incr guard;
      Ccsim.Machine.drain machine ~cycles:(epoch / 4);
      if Ccsim.Physmem.live_frames pm = 0 then
        freed_at := Some (Ccsim.Machine.elapsed machine)
    done;
    (epoch, Option.map (fun t -> t - unmapped_at) !freed_at)
  in
  let jobs =
    List.map
      (fun epoch ->
        Pool.job ~name:(Printf.sprintf "epoch %d" epoch) (run_one epoch))
      [ 100_000; 1_000_000; 10_000_000 ]
  in
  let rows = Pool.run ~jobs:ctx.jobs jobs in
  Format.fprintf ctx.ppf
    "\n-- C. Refcache epoch length vs frame reclamation latency --\n";
  List.iter
    (fun (epoch, latency) ->
      match latency with
      | Some l ->
          Format.fprintf ctx.ppf
            "epoch %8d cycles: frames reclaimed %8d cycles after munmap (%.1f epochs)\n"
            epoch l
            (float_of_int l /. float_of_int epoch)
      | None ->
          Format.fprintf ctx.ppf "epoch %8d cycles: frames never reclaimed!\n"
            epoch)
    rows;
  Format.pp_print_flush ctx.ppf ();
  Json.List
    (List.map
       (fun (epoch, latency) ->
         Json.Obj
           [
             ("epoch_cycles", Json.Int epoch);
             ( "reclaim_cycles",
               match latency with Some l -> Json.Int l | None -> Json.Null );
           ])
       rows)

(* D. Fork cost vs address-space size (COW: no frames are copied). *)
let ablation_fork ctx =
  let run_one npages () =
    let machine = Ccsim.Machine.create (Ccsim.Params.default ~ncores:2 ()) in
    let vm = Radixvm.create machine in
    let core = Ccsim.Machine.core machine 0 in
    Radixvm.mmap vm core ~vpn:0 ~npages ();
    for p = 0 to npages - 1 do
      ignore (Radixvm.touch vm core ~vpn:p)
    done;
    let t0 = Ccsim.Core.now core in
    let child = Radixvm.fork vm core in
    let cycles = Ccsim.Core.now core - t0 in
    ignore child;
    let eager = npages * (Ccsim.Machine.params machine).Ccsim.Params.page_zero in
    (npages, cycles, eager)
  in
  let jobs =
    List.map
      (fun npages ->
        Pool.job ~name:(Printf.sprintf "fork %d pages" npages) (run_one npages))
      [ 64; 512; 4096 ]
  in
  let rows = Pool.run ~jobs:ctx.jobs jobs in
  Format.fprintf ctx.ppf
    "\n-- D. fork cost vs faulted pages (COW: no frames are copied) --\n";
  List.iter
    (fun (npages, cycles, eager) ->
      Format.fprintf ctx.ppf
        "%6d pages: fork %9d cycles (%5d/page) | eager copy would cost >= %9d\n"
        npages cycles (cycles / max 1 npages) eager)
    rows;
  Format.pp_print_flush ctx.ppf ();
  Json.List
    (List.map
       (fun (npages, cycles, eager) ->
         Json.Obj
           [
             ("pages", Json.Int npages);
             ("fork_cycles", Json.Int cycles);
             ("eager_copy_cycles", Json.Int eager);
           ])
       rows)

let ablations ctx =
  header ctx "Ablations: design knobs beyond the paper's figures";
  let mmu = ablation_mmu ctx in
  let cache = ablation_cache_size ctx in
  let epoch = ablation_epoch ctx in
  let fork = ablation_fork ctx in
  {
    json =
      Json.Obj
        [
          ("mmu_policy", mmu);
          ("refcache_cache_size", cache);
          ("epoch_reclaim", epoch);
          ("fork_cost", fork);
        ];
    checks = [];
  }

(* ------------------------------------------------------------------ *)
(* Wall-clock microbenchmarks of the real data structures (Bechamel)   *)

(* Real elapsed time, not simulated: inherently serial and not
   deterministic, so it bypasses the pool and its JSON artifact is for
   humans and trend dashboards, not byte-identity checks. *)
let wallclock ctx =
  header ctx "Wall-clock microbenchmarks (Bechamel, real time not simulated)";
  let open Bechamel in
  let open Toolkit in
  let machine = Ccsim.Machine.create (Ccsim.Params.default ~ncores:4 ()) in
  let rc = Refcnt.Refcache.create machine in
  let core = Ccsim.Machine.core machine 0 in
  let tree = Radix.create ~bits:9 ~levels:3 machine rc core in
  let lk = Radix.lock_range tree core ~lo:0 ~hi:4096 in
  Radix.fill_range tree core lk 42;
  Radix.unlock_range tree core lk;
  let obj = Refcnt.Refcache.make_obj rc core ~init:1 ~free:(fun _ -> ()) in
  let sl = Structures.Skiplist.create core in
  for i = 0 to 999 do
    Structures.Skiplist.insert core sl (i * 17) i
  done;
  let counter = ref 0 in
  let tests =
    Test.make_grouped ~name:"radixvm" ~fmt:"%s %s"
      [
        Test.make ~name:"radix lookup"
          (Staged.stage (fun () ->
               incr counter;
               ignore (Radix.lookup tree core (!counter * 7 mod 4096))));
        Test.make ~name:"refcache inc/dec"
          (Staged.stage (fun () ->
               Refcnt.Refcache.inc rc core obj;
               Refcnt.Refcache.dec rc core obj));
        Test.make ~name:"skiplist find"
          (Staged.stage (fun () ->
               incr counter;
               ignore
                 (Structures.Skiplist.find core sl (!counter * 17 mod 17000))));
      ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let raw_results = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw_results in
  let rows =
    Hashtbl.fold
      (fun name result acc ->
        let est =
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Some est
          | _ -> None
        in
        (name, est) :: acc)
      results []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  List.iter
    (fun (name, est) ->
      match est with
      | Some est -> Format.fprintf ctx.ppf "%-32s %10.1f ns/op\n" name est
      | None -> Format.fprintf ctx.ppf "%-32s (no estimate)\n" name)
    rows;
  Format.pp_print_flush ctx.ppf ();
  {
    json =
      Json.List
        (List.map
           (fun (name, est) ->
             Json.Obj
               [
                 ("name", Json.String name);
                 ( "ns_per_op",
                   match est with Some e -> Json.Float e | None -> Json.Null );
               ])
           rows);
    checks = [];
  }

(* ------------------------------------------------------------------ *)
(* Shard scaling: one multi-address-space world, N host domains        *)

(* Host wall-clock is the *point* of this figure (how much real time N
   domains save on a fixed world), so like [wallclock] it bypasses the
   pool and runs its rows serially — each row's world is itself the
   parallel workload being timed. Simulated results (ops, cycles,
   cross-shard rates, digest) are byte-identical at every width; the
   per-scenario digest check enforces that on every run. *)
let shard ctx =
  header ctx "Shard scaling (BENCH_shard.json): 8 nodes x 4 cores";
  let nodes = 8 and cores = 4 and epoch = 100_000 in
  let duration = if ctx.quick then 1_000_000 else 20_000_000 in
  let widths =
    match
      List.filter
        (fun w -> w <= max 1 ctx.shards)
        (if ctx.quick then [ 1; 2 ] else [ 1; 2; 4 ])
    with
    | [] -> [ 1 ]
    | ws -> ws
  in
  let host = Pool.default_jobs () in
  row_header ctx "scenario"
    [ "shards"; "eff"; "ops"; "xs_sent"; "ipis"; "wall(s)"; "speedup" ];
  let checks = ref [] and rows = ref [] in
  List.iter
    (fun scenario ->
      let base_wall = ref 0.0 in
      let digests = ref [] in
      List.iter
        (fun w ->
          let cfg =
            { Workloads.Shard_bench.nodes; cores; shards = w; clamp = true;
              duration; epoch }
          in
          let t0 = Unix.gettimeofday () in
          let r = SB_shard.run cfg ~scenario in
          let wall = Unix.gettimeofday () -. t0 in
          if w = 1 then base_wall := wall;
          let speedup = if wall > 0.0 then !base_wall /. wall else 1.0 in
          let eff = min w (min nodes host) in
          digests := r.Workloads.Shard_bench.digest :: !digests;
          row ctx
            (if w = List.hd widths then scenario else "")
            [
              string_of_int w; string_of_int eff;
              string_of_int r.Workloads.Shard_bench.ops;
              string_of_int r.Workloads.Shard_bench.xs_sent;
              string_of_int r.Workloads.Shard_bench.ipis;
              Printf.sprintf "%.3f" wall;
              Printf.sprintf "%.2f" speedup;
            ];
          rows :=
            Json.Obj
              [
                ("scenario", Json.String scenario);
                ("shards", Json.Int w);
                ("effective_shards", Json.Int eff);
                ("host_domains", Json.Int host);
                ("nodes", Json.Int nodes);
                ("cores", Json.Int cores);
                ("duration_cycles", Json.Int duration);
                ("epoch_cycles", Json.Int epoch);
                ("ops", Json.Int r.Workloads.Shard_bench.ops);
                ("remote_acks", Json.Int r.Workloads.Shard_bench.remote_acks);
                ("epochs", Json.Int r.Workloads.Shard_bench.epochs);
                ("xs_sent", Json.Int r.Workloads.Shard_bench.xs_sent);
                ("xs_delivered", Json.Int r.Workloads.Shard_bench.xs_delivered);
                ("sim_cycles", Json.Int r.Workloads.Shard_bench.sim_cycles);
                ("ipis", Json.Int r.Workloads.Shard_bench.ipis);
                ( "shootdown_events",
                  Json.Int r.Workloads.Shard_bench.shootdown_events );
                ("wall_clock_seconds", Json.Float wall);
                ("speedup", Json.Float speedup);
                ("digest", Json.String r.Workloads.Shard_bench.digest);
              ]
            :: !rows)
        widths;
      let ok =
        match !digests with
        | [] -> true
        | d :: rest -> List.for_all (String.equal d) rest
      in
      if not ok then
        Format.fprintf ctx.ppf
          "  DIGEST MISMATCH: %s differs across shard widths\n" scenario;
      checks := (Printf.sprintf "shard-det:%s" scenario, ok) :: !checks)
    Workloads.Shard_bench.scenarios;
  { json = Json.List (List.rev !rows); checks = List.rev !checks }

(* ------------------------------------------------------------------ *)
(* Cache serving ("mmap in anger"): a shared-memory cache's service
   throughput, per system x range-lock backend x cores. Unlike the
   microbenchmarks, the VM operations here (eviction munmap/remap,
   slot-resize mprotect, page-cache reload) sit on the serving hot path,
   so the row is ops/sec of the *cache*, not of mmap itself. *)

let cacheserve_slots ctx = if ctx.quick then 64 else 256

(* File-backed rows must pull the working set through the page cache's
   disk latency before the window opens: every slot's first toucher pays
   a full disk read, and late cores straggle behind hot-bucket queues —
   so the budget scales with both the slot count and the core count.
   Anonymous rows only need the microbenchmark warmup. *)
let cacheserve_warmup ctx n ~slots ~file =
  micro_warmup ctx n + (if file then 80_000 * (slots + (4 * n)) else 0)

(* The three page-cache hooks the RadixVM rows give the sweep; the
   baselines run anonymous (they have no page cache) so their eviction
   is munmap + remap only. *)
let cacheserve_ops fd =
  {
    Workloads.Cache_serve.co_evict =
      (fun vm core ~page -> Radixvm.evict_file_page vm core ~file:fd ~page);
    co_mark_dirty =
      (fun vm core ~page ->
        PCache.set_dirty (Radixvm.page_cache vm) core ~file:fd ~page);
    co_dirty =
      (fun vm ~page -> PCache.dirty (Radixvm.page_cache vm) ~file:fd ~page);
    co_clear_dirty =
      (fun vm core ~page ->
        PCache.clear_dirty (Radixvm.page_cache vm) core ~file:fd ~page);
  }

let cacheserve_backends =
  [
    ("radix", Locks.Range_lock.Radix_embedded);
    ("list", Locks.Range_lock.List_based);
    ("global", Locks.Range_lock.Global);
  ]

let cacheserve ctx =
  let slots = cacheserve_slots ctx in
  let duration = micro_duration ctx in
  let fd = 3 in
  let cache_ops = cacheserve_ops fd in
  (* File-backed rows reload evicted slots through the 80k-cycle disk
     latency; give them a window several misses deep so every core lands
     in it. *)
  let duration_file = max duration (slots * 80_000 / 2) in
  let perf_jobs =
    List.concat_map
      (fun n ->
        let warm_file = cacheserve_warmup ctx n ~slots ~file:true in
        let warm_anon = cacheserve_warmup ctx n ~slots ~file:false in
        (* The cross-system comparison runs anonymous — the baselines
           have no page cache, so charging only RadixVM the disk would
           measure the disk, not the VM design. The full-stack rows
           (page cache, dirty writeback, disk reloads) are RadixVM-only:
           "RadixVM-pc" in-process and "RadixVM-procs" via syscalls. *)
        List.map
          (fun (vname, kind) ->
            let name = Printf.sprintf "cacheserve RadixVM/%s %d cores" vname n in
            Pool.job ~name (fun () ->
                let rl = Locks.Range_lock.labels kind in
                let run ~on_machine ~on_measure =
                  CS_radix.serve ~warmup:warm_anon ~slots ~on_machine
                    ~on_measure ~ncores:n ~duration (fun m ->
                      Radixvm.create_with ~rangelock:kind m)
                in
                let r, v =
                  checked ~ctx ~name
                    ~allow:(Check.radixvm_allow @ rl)
                    ~race_allow:("radix:slot" :: rl) run
                in
                (("RadixVM", vname, n, r), v)))
          cacheserve_backends
        @ [
            (let name = Printf.sprintf "cacheserve RadixVM-pc %d cores" n in
             Pool.job ~name (fun () ->
                 let run ~on_machine ~on_measure =
                   CS_radix.serve ~warmup:warm_file ~slots ~file:fd ~cache_ops
                     ~on_machine ~on_measure ~ncores:n ~duration:duration_file
                     (fun m -> Radixvm.create m)
                 in
                 let r, v =
                   checked ~ctx ~name ~allow:Check.radixvm_allow
                     ~race_allow:[ "radix:slot" ] run
                 in
                 (("RadixVM-pc", "radix", n, r), v)));
            (let name = Printf.sprintf "cacheserve RadixVM-procs %d cores" n in
             Pool.job ~name (fun () ->
                 let run ~on_machine ~on_measure =
                   Workloads.Cache_serve.Procs.serve ~warmup:warm_file ~slots
                     ~on_machine ~on_measure ~ncores:n ~duration:duration_file
                     ()
                 in
                 let r, v =
                   checked ~ctx ~name ~allow:Check.radixvm_allow
                     ~race_allow:[ "radix:slot" ] run
                 in
                 (("RadixVM-procs", "radix", n, r), v)));
            (let name = Printf.sprintf "cacheserve Linux %d cores" n in
             Pool.job ~name (fun () ->
                 let run ~on_machine ~on_measure =
                   CS_linux.serve ~warmup:warm_anon ~slots ~on_machine
                     ~on_measure ~ncores:n ~duration Baselines.Linux_vm.create
                 in
                 let r, v =
                   checked ~ctx ~name ~allow:[] ~race_allow:[ "pt:shared" ] run
                 in
                 (("Linux", "-", n, r), v)));
            (let name = Printf.sprintf "cacheserve Bonsai %d cores" n in
             Pool.job ~name (fun () ->
                 let run ~on_machine ~on_measure =
                   CS_bonsai.serve ~warmup:warm_anon ~slots ~on_machine
                     ~on_measure ~ncores:n ~duration Baselines.Bonsai_vm.create
                 in
                 let r, v =
                   checked ~ctx ~name ~allow:[]
                     ~race_allow:[ "pt:shared"; "bonsai:root" ] run
                 in
                 (("Bonsai", "-", n, r), v)));
          ])
      (core_counts ctx)
  in
  let rows = Pool.run ~jobs:ctx.jobs perf_jobs in
  (* Under --check, additionally replay the model-checked session per
     backend (and through the syscall layer): every observable get/set/
     delete cross-checked against Cache_model, with the dynamic checker
     watching TLB coherence and the Refcache ledger. *)
  let model_rows =
    if not ctx.check then []
    else begin
      let session_ops = if ctx.quick then 1_500 else 6_000 in
      let session_slots = if ctx.quick then 32 else 64 in
      let model_job ~name ~rangelock ~via_kernel =
        Pool.job ~name (fun () ->
            let chk = ref None in
            let o =
              Workloads.Cache_serve.Session.run ~ncores:4 ~procs:3
                ~slots:session_slots ~ops:session_ops ~rangelock ~via_kernel
                ~compact_every:(session_ops / 2)
                ~on_machine:(fun m -> chk := Some (Check.attach m))
                ()
            in
            let clean =
              match !chk with
              | None -> o.Workloads.Cache_serve.Session.divergences = []
              | Some c ->
                  let rl = Locks.Range_lock.labels rangelock in
                  let unexpected =
                    List.filter
                      (fun r ->
                        not (List.mem r.Check.race_label ("radix:slot" :: rl)))
                      (Check.races c)
                  in
                  let ok =
                    o.Workloads.Cache_serve.Session.divergences = []
                    && unexpected = [] && Check.cycles c = []
                    && Check.tlb_violations c = []
                    && Check.rc_violations c = []
                  in
                  Check.detach c;
                  ok
            in
            (name, o, clean))
      in
      Pool.run ~jobs:ctx.jobs
        (List.map
           (fun (vname, kind) ->
             model_job
               ~name:(Printf.sprintf "cacheserve-model:%s" vname)
               ~rangelock:kind ~via_kernel:false)
           cacheserve_backends
        @ [
            model_job ~name:"cacheserve-model:kernel"
              ~rangelock:Locks.Range_lock.Radix_embedded ~via_kernel:true;
          ])
    end
  in
  header ctx "Cache serving (\"mmap in anger\"): service ops/sec";
  let display =
    [
      ("RadixVM/radix", "RadixVM", "radix");
      ("RadixVM/list", "RadixVM", "list");
      ("RadixVM/global", "RadixVM", "global");
      ("RadixVM-pc", "RadixVM-pc", "radix");
      ("RadixVM-procs", "RadixVM-procs", "radix");
      ("Linux", "Linux", "-");
      ("Bonsai", "Bonsai", "-");
    ]
  in
  row_header ctx "cores" (List.map string_of_int (core_counts ctx));
  List.iter
    (fun (label, sys, backend) ->
      let cells =
        List.filter_map
          (fun ((s, b, _, r), _) ->
            if s = sys && b = backend then
              Some (k r.Workloads.Cache_serve.ops_per_sec)
            else None)
          rows
      in
      row ctx label cells)
    display;
  List.iter
    (fun (name, (o : Workloads.Cache_serve.Session.outcome), clean) ->
      Format.fprintf ctx.ppf
        "%s: %d ops, %d evictions, %d writebacks, %d compactions, %d \
         divergences%s\n"
        name o.ops_done o.evictions o.writebacks o.compactions
        (List.length o.divergences)
        (if clean then "" else "  [FINDINGS]"))
    model_rows;
  Format.pp_print_flush ctx.ppf ();
  let checks =
    checks_of_rows rows @ List.map (fun (n, _, ok) -> (n, ok)) model_rows
  in
  report_checks ctx checks;
  {
    json =
      Json.List
        (List.map
           (fun ((sys, backend, n, (r : Workloads.Cache_serve.result)), v) ->
             Json.Obj
               ([
                  ("system", Json.String sys);
                  ("backend", Json.String backend);
                  ("cores", Json.Int n);
                  ("ops_per_sec", Json.Float r.ops_per_sec);
                  ("ops_per_core", Json.Float r.ops_per_core);
                  ("ops", Json.Int r.ops);
                  ("gets", Json.Int r.gets);
                  ("sets", Json.Int r.sets);
                  ("dels", Json.Int r.dels);
                  ("lost", Json.Int r.lost);
                  ("evictions", Json.Int r.evictions);
                  ("writebacks", Json.Int r.writebacks);
                  ("resizes", Json.Int r.resizes);
                  ("cycles", Json.Int r.cycles);
                  ("ipis", Json.Int r.ipis);
                  ("shootdowns", Json.Int r.shootdown_events);
                  ("lock_wait", Json.Int r.lock_wait);
                  ("shootdown_wait", Json.Int r.shootdown_wait);
                  ("line_stall", Json.Int r.line_stall);
                ]
               @ check_fields v))
           rows);
    checks;
  }

(* ------------------------------------------------------------------ *)

let targets =
  [
    ("table1", table1);
    ("fig4", fig4);
    ("fig5", fig5);
    ("table2", table2);
    ("pt-overhead", pt_overhead);
    ("fig6", fig6);
    ("fig7", fig7);
    ("fig8", fig8);
    ("fig9", fig9);
    ("ablations", ablations);
    ("rangelock", rangelock);
    ("wallclock", wallclock);
    ("shard", shard);
    ("cacheserve", cacheserve);
  ]

let target_names = List.map fst targets
let run_target ctx name = Option.map (fun f -> f ctx) (List.assoc_opt name targets)
