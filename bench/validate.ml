(* Artifact validator for the bench-smoke alias: every BENCH_*.json given
   on the command line must exist, parse as JSON, and be structurally
   sane — a non-empty array of row objects (or, for BENCH_meta.json, an
   object carrying the required bookkeeping fields). Exits nonzero with a
   message naming the first offending file. *)

module Json = Harness.Json

let fail fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt

(* Artifacts with a known row schema get field-level checks on top of the
   generic shape check; the crossover figure's rows must carry the sweep
   coordinates (backend, mix, cores) and the metric every consumer plots
   (writes_per_sec). *)
let required_fields path =
  match Filename.basename path with
  | "BENCH_rangelock.json" ->
      [ "backend"; "mix"; "cores"; "writes_per_sec" ]
  | "BENCH_cacheserve.json" ->
      (* The cache-serving figure: sweep coordinates (system, backend,
         cores) and the service-throughput metrics every consumer
         plots. *)
      [ "system"; "backend"; "cores"; "ops_per_sec"; "ops_per_core" ]
  | "BENCH_shard.json" ->
      (* The shard-scaling figure: sweep coordinates, the cross-shard
         traffic counters, the wall-clock/speedup metrics, and the digest
         whose cross-width equality the figure itself asserts. *)
      [
        "scenario"; "shards"; "effective_shards"; "host_domains"; "nodes";
        "cores"; "ops"; "xs_sent"; "xs_delivered"; "sim_cycles";
        "wall_clock_seconds"; "speedup"; "digest";
      ]
  | _ -> []

let require_rows path = function
  | Json.List [] -> fail "%s: empty rows array" path
  | Json.List rows ->
      let fields = required_fields path in
      List.iteri
        (fun i row ->
          match row with
          | Json.Obj (_ :: _) ->
              List.iter
                (fun f ->
                  if Json.member f row = None then
                    fail "%s: row %d missing field %S" path i f)
                fields
          | _ -> fail "%s: row %d is not a non-empty object" path i)
        rows
  | Json.Obj (_ :: _) -> ()  (* scalar-shaped artifacts (pt-overhead, ablations) *)
  | _ -> fail "%s: expected an array of rows or an object" path

(* The chaos soak's artifact: a summary object carrying one row per
   session; the counts must be consistent with the rows. *)
let require_chaos path json =
  List.iter
    (fun key ->
      if Json.member key json = None then fail "%s: missing field %S" path key)
    [
      "schema_version";
      "seed";
      "budget_seconds";
      "wall_clock_seconds";
      "sessions";
      "passed";
      "failed";
      "crashes_injected";
      "livelocks";
      "rows";
    ];
  match Json.member "rows" json with
  | Some (Json.List (_ :: _ as rows)) ->
      List.iteri
        (fun i row ->
          List.iter
            (fun f ->
              if Json.member f row = None then
                fail "%s: row %d missing field %S" path i f)
            [
              "seed"; "backend"; "cores"; "ops"; "passed"; "crashes";
              "livelocked"; "wall_clock_seconds";
            ])
        rows;
      (match (Json.member "sessions" json, Json.member "passed" json,
              Json.member "failed" json) with
      | Some (Json.Int n), Some (Json.Int p), Some (Json.Int f) ->
          if n <> List.length rows then
            fail "%s: sessions=%d but %d rows" path n (List.length rows);
          if p + f <> n then
            fail "%s: passed(%d) + failed(%d) <> sessions(%d)" path p f n
      | _ -> fail "%s: sessions/passed/failed must be integers" path)
  | Some (Json.List []) -> fail "%s: empty rows array" path
  | _ -> fail "%s: missing or malformed rows" path

let require_meta path json =
  List.iter
    (fun key ->
      if Json.member key json = None then fail "%s: missing field %S" path key)
    [
      "schema_version";
      "targets";
      "jobs";
      "wall_clock_seconds";
      "target_wall_clock_seconds";
      "commit";
    ];
  (* Per-target times must cover exactly the targets that ran. *)
  match
    (Json.member "targets" json, Json.member "target_wall_clock_seconds" json)
  with
  | Some (Json.List targets), Some (Json.Obj walls) ->
      List.iter
        (fun t ->
          match t with
          | Json.String name ->
              if not (List.mem_assoc name walls) then
                fail "%s: no wall clock recorded for target %S" path name
          | _ -> ())
        targets
  | _ -> fail "%s: malformed targets / target_wall_clock_seconds" path

let () =
  let paths = List.tl (Array.to_list Sys.argv) in
  if paths = [] then fail "usage: validate.exe BENCH_*.json...";
  List.iter
    (fun path ->
      if not (Sys.file_exists path) then fail "%s: missing artifact" path;
      match Json.of_file path with
      | Error m -> fail "%s: invalid JSON: %s" path m
      | Ok json ->
          if Filename.basename path = "BENCH_meta.json" then
            require_meta path json
          else if Filename.basename path = "BENCH_chaos.json" then
            require_chaos path json
          else require_rows path json)
    paths;
  Printf.printf "validate: %d artifacts ok\n" (List.length paths)
