(* radixvm-selfbench: how fast is the simulator itself on this host?
   Times the workloads a developer actually waits on — a quick fig5
   sweep, one checked fuzz session — plus the Bechamel micro-op figures,
   and writes them as a flat metric list (BENCH_selfperf.json) that
   bench/compare.exe can diff against a committed baseline.

   All metrics are host wall-clock, so they are noisy by nature; the
   comparison gate applies tolerance bands, not byte-identity (that is
   the golden test's job). Run with --out-dir to choose where the
   artifact lands; everything else is fixed so baselines stay
   comparable across runs. *)

module Json = Harness.Json

let usage () =
  prerr_endline "usage: radixvm_selfbench.exe [--out-dir D]";
  exit 1

let null_ppf = Format.make_formatter (fun _ _ _ -> ()) (fun () -> ())

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* Lower-is-better seconds / ns metrics and higher-is-better rates carry
   their direction so the comparator needs no name heuristics. *)
let metric ?(better = "lower") name value unit_ =
  Json.Obj
    [
      ("name", Json.String name);
      ("value", value);
      ("unit", Json.String unit_);
      ("better", Json.String better);
    ]

let () =
  let out_dir = ref "." in
  let rec parse = function
    | [] -> ()
    | "--out-dir" :: d :: rest ->
        out_dir := d;
        parse rest
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  (* 1. The quick fig5 sweep, serial: the dominant edit-compile-measure
     loop of this repo. [--jobs 1] so the number means the same thing on
     any host core count. *)
  let ctx =
    { Figures.quick = true; check = false; jobs = 1; shards = 1;
      ppf = null_ppf }
  in
  let fig5, fig5_s =
    time (fun () -> Figures.run_target ctx "fig5")
  in
  (match fig5 with
  | Some _ -> ()
  | None ->
      prerr_endline "selfbench: fig5 target missing";
      exit 1);
  Printf.printf "fig5 --quick --jobs 1:     %7.2f s\n%!" fig5_s;
  (* 2. One checked 600-op fuzz session — the soak path, checker attached. *)
  let fuzz_cfg =
    { Fuzz.default with Fuzz.seed = 42; ops = 600; ncores = 4; check = true }
  in
  let outcome, fuzz_s = time (fun () -> Fuzz.run_session fuzz_cfg) in
  if not outcome.Fuzz.passed then begin
    prerr_endline "selfbench: checked fuzz session FAILED; timings meaningless";
    print_string outcome.Fuzz.transcript;
    exit 1
  end;
  let ops_per_sec = float_of_int fuzz_cfg.Fuzz.ops /. fuzz_s in
  Printf.printf "fuzz 600 ops (checked):    %7.2f s  (%.0f ops/s)\n%!" fuzz_s
    ops_per_sec;
  (* 2b. A sharded fuzz world: 4 coupled node sessions, execution width
     clamped to the host. The soak path added by the shard engine. *)
  let world_cfg =
    { Fuzz.default with Fuzz.seed = 42; ops = 300; ncores = 4; check = true }
  in
  let world, world_s =
    time (fun () -> Fuzz.run_world ~shards:4 ~nodes:4 world_cfg)
  in
  if not world.Fuzz.w_passed then begin
    prerr_endline "selfbench: sharded fuzz world FAILED; timings meaningless";
    print_string world.Fuzz.w_transcript;
    exit 1
  end;
  Printf.printf "fuzz world 4x300 (checked):%7.2f s\n%!" world_s;
  (* 2c. The quick cacheserve sweep, serial: the heaviest figure target
     (seven systems x three core counts, page-cache rows disk-bound), so
     its wall time is worth gating on its own. *)
  let cacheserve, cacheserve_s =
    time (fun () -> Figures.run_target ctx "cacheserve")
  in
  (match cacheserve with
  | Some _ -> ()
  | None ->
      prerr_endline "selfbench: cacheserve target missing";
      exit 1);
  Printf.printf "cacheserve --quick --jobs 1:%6.2f s\n%!" cacheserve_s;
  (* 3. Micro-op figures through the existing Bechamel wiring. *)
  let micro =
    match Figures.run_target { ctx with ppf = null_ppf } "wallclock" with
    | Some out -> (
        match out.Figures.json with
        | Json.List rows ->
            List.filter_map
              (fun row ->
                match (Json.member "name" row, Json.member "ns_per_op" row) with
                | Some (Json.String name), Some v ->
                    (match v with
                    | Json.Float ns ->
                        Printf.printf "%-26s %9.1f ns/op\n%!" name ns
                    | _ -> ());
                    Some (metric ("micro " ^ name) v "ns/op")
                | _ -> None)
              rows
        | _ -> [])
    | None -> []
  in
  let doc =
    Json.Obj
      [
        ("schema_version", Json.Int 1);
        ( "metrics",
          Json.List
            ([
               metric "fig5_quick_wall" (Json.Float fig5_s) "s";
               metric "fuzz600_checked_wall" (Json.Float fuzz_s) "s";
               metric "fuzz_sharded_wall" (Json.Float world_s) "s";
               metric "cacheserve_wall" (Json.Float cacheserve_s) "s";
               metric ~better:"higher" "fuzz_ops_per_sec"
                 (Json.Float ops_per_sec) "ops/s";
             ]
            @ micro) );
      ]
  in
  let path = Filename.concat !out_dir "BENCH_selfperf.json" in
  Json.to_file ~pretty:true path doc;
  Printf.printf "wrote %s\n" path
