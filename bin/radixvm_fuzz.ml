(* radixvm-fuzz: seeded fault-injection fuzzer / soak harness for the VM
   stack.

   Each run is a batch of independent sessions (seeds seed .. seed+runs-1),
   executed on a worker pool; transcripts are printed in seed order, so the
   output is byte-identical for any --jobs. A failing session prints the
   seed that replays it:

     radixvm-fuzz --seed 42 --ops 600 --cores 4 --runs 2 --jobs 2
     radixvm-fuzz --seed 1337 --runs 1 --verbose      # replay one session *)

open Cmdliner

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Base seed; session $(i,i) uses seed + i.")

let ops_arg =
  Arg.(value & opt int 600 & info [ "ops" ] ~doc:"Operations per session.")

let cores_arg =
  Arg.(value & opt int 4 & info [ "cores" ] ~doc:"Simulated cores per session (minimum 2).")

let runs_arg =
  Arg.(value & opt int 1 & info [ "runs" ] ~doc:"Number of sessions (consecutive seeds).")

let jobs_arg =
  Arg.(
    value
    & opt int (Harness.Pool.default_jobs ())
    & info [ "jobs" ]
        ~doc:
          "Worker domains. Sessions are independent and results are \
           printed in seed order, so the output does not depend on this.")

let check_arg =
  Arg.(value & flag & info [ "check" ] ~doc:"Attach the dynamic checkers (lockset, TLB, Refcache, leaked locks) to every session.")

let verbose_arg =
  Arg.(value & flag & info [ "verbose" ] ~doc:"Print one transcript line per operation.")

let broken_arg =
  Arg.(
    value & flag
    & info [ "broken" ]
        ~doc:
          "Known-bad mode: skip rollback on injected aborts. Sessions are \
           expected to FAIL — use this to confirm the oracle and checkers \
           have teeth.")

let rangelock_conv =
  let parse s =
    match Locks.Range_lock.of_string s with
    | Ok k -> Ok k
    | Error msg -> Error (`Msg msg)
  in
  Arg.conv (parse, fun ppf k -> Format.pp_print_string ppf (Locks.Range_lock.name k))

let rangelock_arg =
  Arg.(
    value
    & opt rangelock_conv Locks.Range_lock.Radix_embedded
    & info [ "rangelock" ]
        ~doc:
          "Range-lock backend for every address space: $(b,radix) (the \
           paper's embedded slot locks, default), $(b,list) (ordered list \
           of locked ranges), or $(b,global) (one whole-address-space \
           lock).")

let main seed ops cores runs jobs check verbose broken rangelock =
  let runs = max 1 runs in
  let sessions =
    List.init runs (fun i ->
        let cfg = { Fuzz.seed = seed + i; ops; ncores = cores; check; verbose; broken; rangelock } in
        Harness.Pool.job
          ~name:(Printf.sprintf "fuzz-%d" cfg.Fuzz.seed)
          (fun () -> Fuzz.run_session cfg))
  in
  let outcomes = Harness.Pool.run ~jobs sessions in
  List.iter (fun o -> print_string o.Fuzz.transcript) outcomes;
  let failed = List.filter (fun o -> not o.Fuzz.passed) outcomes in
  Printf.printf "fuzz: %d/%d sessions passed\n" (runs - List.length failed) runs;
  if failed <> [] then exit 1

let cmd =
  let doc = "seeded fault-injection fuzzer for the RadixVM stack" in
  Cmd.v
    (Cmd.info "radixvm-fuzz" ~doc)
    Term.(
      const main $ seed_arg $ ops_arg $ cores_arg $ runs_arg $ jobs_arg
      $ check_arg $ verbose_arg $ broken_arg $ rangelock_arg)

let () = exit (Cmd.eval cmd)
