(* radixvm-fuzz: seeded fault-injection fuzzer / soak harness for the VM
   stack.

   Each run is a batch of independent sessions (seeds seed .. seed+runs-1),
   executed on a worker pool; transcripts are printed in seed order, so the
   output is byte-identical for any --jobs. A failing session writes a
   self-contained repro artifact (the reified program plus the failing
   transcript) and prints the command that replays it:

     radixvm-fuzz --seed 42 --ops 600 --cores 4 --runs 2 --jobs 2
     radixvm-fuzz --repro fuzz_repro_1337.txt        # replay an artifact
     radixvm-fuzz --repro fuzz_repro_1337.txt --shrink   # minimize it *)

open Cmdliner

(* Strictly positive counts: a negative --ops or --runs used to be
   silently clamped, which made typos look like tiny successful runs.
   Reject them at the CLI boundary instead. *)
let pos_int_conv what =
  let parse s =
    match int_of_string_opt s with
    | Some v when v >= 1 -> Ok v
    | Some v ->
        Error (`Msg (Printf.sprintf "%s must be at least 1, got %d" what v))
    | None -> Error (`Msg (Printf.sprintf "invalid %s: %S" what s))
  in
  Arg.conv (parse, Format.pp_print_int)

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Base seed; session $(i,i) uses seed + i.")

let ops_arg =
  Arg.(
    value
    & opt (pos_int_conv "--ops") 600
    & info [ "ops" ] ~doc:"Operations per session (at least 1).")

let cores_arg =
  Arg.(
    value
    & opt (pos_int_conv "--cores") 4
    & info [ "cores" ] ~doc:"Simulated cores per session (minimum 2; 1 is raised to 2).")

let runs_arg =
  Arg.(
    value
    & opt (pos_int_conv "--runs") 1
    & info [ "runs" ] ~doc:"Number of sessions (consecutive seeds, at least 1).")

let nodes_arg =
  Arg.(
    value
    & opt (pos_int_conv "--nodes") 1
    & info [ "nodes" ]
        ~doc:
          "World width: run each seed as a world of this many coupled \
           node sessions exchanging spawn requests at barrier points \
           (1 = the classic single-machine session).")

let shards_arg =
  Arg.(
    value
    & opt (pos_int_conv "--shards") 1
    & info [ "shards" ]
        ~doc:
          "Host domains executing each world's node sessions. Transcripts \
           are byte-identical for any value; only the wall clock moves. \
           Combined with $(b,--jobs), the total worker-domain count is \
           clamped to the host's parallelism.")

let jobs_arg =
  Arg.(
    value
    & opt int (Harness.Pool.default_jobs ())
    & info [ "jobs" ]
        ~doc:
          "Worker domains. Sessions are independent and results are \
           printed in seed order, so the output does not depend on this.")

let check_arg =
  Arg.(value & flag & info [ "check" ] ~doc:"Attach the dynamic checkers (lockset, TLB, Refcache, leaked locks) to every session.")

let verbose_arg =
  Arg.(value & flag & info [ "verbose" ] ~doc:"Print one transcript line per operation.")

let broken_arg =
  Arg.(
    value & flag
    & info [ "broken" ]
        ~doc:
          "Known-bad mode: skip rollback on injected aborts. Sessions are \
           expected to FAIL — use this to confirm the oracle and checkers \
           have teeth.")

let crash_arg =
  Arg.(
    value & flag
    & info [ "crash" ]
        ~doc:
          "Draw crash rules into the fault plan: operations occasionally \
           die mid-critical-section without unwinding, and the session \
           verifies the kernel-side recovery (reap) leaves survivors \
           intact.")

let watchdog_arg =
  Arg.(
    value
    & opt (some (pos_int_conv "--watchdog")) None
    & info [ "watchdog" ]
        ~doc:
          "Livelock horizon in simulated cycles: fail any session where \
           no operation retires for this long (requires $(b,--check)).")

let rangelock_conv =
  let parse s =
    match Locks.Range_lock.of_string s with
    | Ok k -> Ok k
    | Error msg -> Error (`Msg msg)
  in
  Arg.conv (parse, fun ppf k -> Format.pp_print_string ppf (Locks.Range_lock.name k))

let rangelock_arg =
  Arg.(
    value
    & opt rangelock_conv Locks.Range_lock.Radix_embedded
    & info [ "rangelock" ]
        ~doc:
          "Range-lock backend for every address space: $(b,radix) (the \
           paper's embedded slot locks, default), $(b,list) (ordered list \
           of locked ranges), or $(b,global) (one whole-address-space \
           lock).")

let repro_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "repro" ] ~docv:"FILE"
        ~doc:
          "Replay a recorded repro artifact instead of generating \
           sessions ($(b,--seed)/$(b,--ops)/$(b,--runs) are ignored).")

let shrink_arg =
  Arg.(
    value & flag
    & info [ "shrink" ]
        ~doc:
          "Delta-debug the failing session to a minimal reproducer and \
           write it as $(i,<artifact>).min.txt. With $(b,--repro), \
           shrinks that artifact; otherwise shrinks the first failing \
           generated session.")

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_artifact path (o : Fuzz.outcome) =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (Fuzz.program_to_string o.Fuzz.program);
      (* The parser stops at "end", so the failing transcript rides along
         as a human-readable appendix. *)
      output_string oc "\n# --- failing transcript ---\n";
      String.split_on_char '\n' o.Fuzz.transcript
      |> List.iter (fun l -> output_string oc ("# " ^ l ^ "\n")))

let do_shrink ~artifact (o : Fuzz.outcome) =
  match Fuzz.shrink ~log:prerr_endline o.Fuzz.program with
  | Error msg ->
      Printf.eprintf "shrink: %s\n" msg;
      false
  | Ok minimal ->
      let min_path = artifact ^ ".min.txt" in
      let mo = Fuzz.run_program minimal in
      write_artifact min_path mo;
      Printf.printf
        "shrink: minimized to %d ops, %d cores -> %s\n  replay: \
         radixvm-fuzz --repro %s\n"
        (List.length minimal.Fuzz.pr_ops)
        minimal.Fuzz.pr_ncores min_path min_path;
      true

let report_failure ~artifact ~shrink (o : Fuzz.outcome) =
  write_artifact artifact o;
  Printf.printf "repro: written to %s\n  replay: radixvm-fuzz --repro %s\n"
    artifact artifact;
  if shrink then ignore (do_shrink ~artifact o)

let replay_main path shrink verbose =
  match Fuzz.program_of_string (read_file path) with
  | Error msg ->
      Printf.eprintf "radixvm-fuzz: cannot parse %s: %s\n" path msg;
      exit 2
  | Ok prog ->
      let o = Fuzz.run_program ~verbose prog in
      print_string o.Fuzz.transcript;
      if o.Fuzz.passed then print_string "fuzz: replay passed\n"
      else begin
        print_string "fuzz: replay FAILED\n";
        if shrink then ignore (do_shrink ~artifact:path o);
        exit 1
      end

let world_main ~seed ~ops ~cores ~runs ~nodes ~shards ~jobs ~check ~verbose
    ~broken ~crash ~watchdog ~rangelock ~shrink =
  (* Each world already runs [shards] domains, so the world-level pool is
     clamped to jobs × shards ≤ the host's parallelism. *)
  let wjobs = Harness.Pool.clamp_jobs ~per_job:shards jobs in
  let worlds =
    List.init runs (fun i ->
        let cfg =
          { Fuzz.seed = seed + i; ops; ncores = cores; check; verbose;
            broken; rangelock; crash; watchdog; lock_timeouts = [] }
        in
        Harness.Pool.job
          ~name:(Printf.sprintf "fuzz-world-%d" cfg.Fuzz.seed)
          (fun () -> Fuzz.run_world ~shards ~nodes cfg))
  in
  let outs = Harness.Pool.run ~jobs:wjobs worlds in
  List.iter (fun w -> print_string w.Fuzz.w_transcript) outs;
  let failed = List.filter (fun w -> not w.Fuzz.w_passed) outs in
  Printf.printf "fuzz: %d/%d worlds passed\n" (runs - List.length failed) runs;
  (match failed with
  | [] -> ()
  | w :: _ -> (
      (* The failing node's session is an ordinary recorded program —
         the repro artifact replays it standalone, no world involved. *)
      match
        List.filter (fun (o : Fuzz.outcome) -> not o.Fuzz.passed)
          w.Fuzz.w_outcomes
      with
      | [] -> ()
      | o :: _ ->
          let artifact =
            Printf.sprintf "fuzz_repro_%d.txt" o.Fuzz.program.Fuzz.pr_seed
          in
          report_failure ~artifact ~shrink o));
  if failed <> [] then exit 1

let main seed ops cores runs nodes shards jobs check verbose broken crash
    watchdog rangelock repro shrink =
  match repro with
  | Some path -> replay_main path shrink verbose
  | None when nodes > 1 || shards > 1 ->
      world_main ~seed ~ops ~cores ~runs ~nodes ~shards ~jobs ~check ~verbose
        ~broken ~crash ~watchdog ~rangelock ~shrink
  | None ->
      let sessions =
        List.init runs (fun i ->
            let cfg =
              { Fuzz.seed = seed + i; ops; ncores = cores; check; verbose;
                broken; rangelock; crash; watchdog; lock_timeouts = [] }
            in
            Harness.Pool.job
              ~name:(Printf.sprintf "fuzz-%d" cfg.Fuzz.seed)
              (fun () -> Fuzz.run_session cfg))
      in
      let outcomes = Harness.Pool.run ~jobs sessions in
      List.iter (fun o -> print_string o.Fuzz.transcript) outcomes;
      let failed = List.filter (fun o -> not o.Fuzz.passed) outcomes in
      Printf.printf "fuzz: %d/%d sessions passed\n"
        (runs - List.length failed)
        runs;
      (match failed with
      | [] -> ()
      | o :: _ ->
          let artifact =
            Printf.sprintf "fuzz_repro_%d.txt" o.Fuzz.program.Fuzz.pr_seed
          in
          report_failure ~artifact ~shrink o);
      if failed <> [] then exit 1

let cmd =
  let doc = "seeded fault-injection fuzzer for the RadixVM stack" in
  Cmd.v
    (Cmd.info "radixvm-fuzz" ~doc)
    Term.(
      const main $ seed_arg $ ops_arg $ cores_arg $ runs_arg $ nodes_arg
      $ shards_arg $ jobs_arg $ check_arg $ verbose_arg $ broken_arg
      $ crash_arg $ watchdog_arg $ rangelock_arg $ repro_arg $ shrink_arg)

let () = exit (Cmd.eval cmd)
