(* radixvm-bench: command-line driver for individual experiments.

   Examples:
     radixvm-bench micro --bench local --vm radixvm --cores 16
     radixvm-bench metis --vm linux --unit-kb 64 --cores 8
     radixvm-bench counter --scheme snzi --cores 40
     radixvm-bench index --structure skiplist --readers 20 --writers 5
     radixvm-bench snapshot --profile firefox *)

open Cmdliner

module Radixvm = Vm.Radixvm.Default
module MB_radix = Workloads.Microbench.Make (Vm.Radixvm.Default)
module MB_linux = Workloads.Microbench.Make (Baselines.Linux_vm)
module MB_bonsai = Workloads.Microbench.Make (Baselines.Bonsai_vm)
module Metis_radix = Workloads.Metis.Make (Vm.Radixvm.Default)
module Metis_linux = Workloads.Metis.Make (Baselines.Linux_vm)
module Metis_bonsai = Workloads.Metis.Make (Baselines.Bonsai_vm)

let vm_arg =
  let doc = "VM system: radixvm, radixvm-shared (shared page tables), linux, bonsai." in
  Arg.(value & opt string "radixvm" & info [ "vm" ] ~doc)

let cores_arg =
  Arg.(value & opt int 8 & info [ "cores" ] ~doc:"Number of simulated cores.")

(* Sweeping subcommands accept a comma-separated list of core counts and
   run one independent simulation per count. *)
let cores_list_arg =
  Arg.(
    value & opt string "8"
    & info [ "cores" ]
        ~doc:
          "Simulated core count, or a comma-separated list to sweep (one \
           independent run per count).")

let jobs_arg =
  Arg.(
    value
    & opt int (Harness.Pool.default_jobs ())
    & info [ "jobs" ]
        ~doc:
          "Worker domains for sweeps (default: the host's recommended domain \
           count). 1 runs everything serially; results are printed in sweep \
           order either way.")

let parse_cores s =
  let parts = String.split_on_char ',' s in
  let cores =
    List.map
      (fun p ->
        match int_of_string_opt (String.trim p) with
        | Some n when n >= 1 -> n
        | _ -> failwith ("bad --cores value: " ^ s))
      parts
  in
  if cores = [] then failwith "empty --cores list" else cores

let duration_arg =
  Arg.(
    value
    & opt int 2_000_000
    & info [ "duration" ] ~doc:"Simulated run length in cycles.")

let check_arg =
  let doc =
    "Attach the dynamic checker (lockset races, lock-order cycles, \
     zero-sharing census, TLB coherence, refcount ledger) to the run and \
     print its report after the results."
  in
  Arg.(value & flag & info [ "check" ] ~doc)

let debug_stats_arg =
  let doc =
    "Dump the machine's raw stat counters to stderr when each run \
     finishes (replaces the old RADIXVM_DEBUG environment variable)."
  in
  Arg.(value & flag & info [ "debug-stats" ] ~doc)

let rangelock_conv =
  let parse s =
    match Locks.Range_lock.of_string s with
    | Ok k -> Ok k
    | Error msg -> Error (`Msg msg)
  in
  Arg.conv
    (parse, fun ppf k -> Format.pp_print_string ppf (Locks.Range_lock.name k))

let rangelock_arg =
  Arg.(
    value
    & opt rangelock_conv Locks.Range_lock.Radix_embedded
    & info [ "rangelock" ]
        ~doc:
          "Range-lock backend for radixvm address spaces: $(b,radix) (the \
           paper's embedded slot locks, default), $(b,list) (ordered list \
           of locked ranges), or $(b,global) (one whole-address-space \
           lock). Ignored by the linux/bonsai baselines.")

let partition_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "partition" ]
        ~doc:
          "Embedded-backend fold partitioning threshold in pages \
           (DragonFly's trick): folds wider than this are split before \
           locking when only partially covered. Off by default.")

(* The checker attaches when the machine is built and opens its sharing
   window at the warmup/measure boundary, exactly where [Stats.reset]
   runs; for RadixVM the zero-sharing verdict uses the documented
   allowlist, baselines are reported raw. Pooled jobs must not print, so
   the report is rendered to a string inside the job and printed by the
   collector in sweep order. *)
let render_report ?(rangelock = Locks.Range_lock.Radix_embedded)
    ?(extra_allow = []) ?(extra_races = []) vm chk =
  match !chk with
  | None -> ""
  | Some c ->
      (* External range-lock backends introduce shared lines by design
         (the list backend's ordered list, the global backend's one lock)
         and walk the tree lock-free under range protection, which the
         line-granular lockset analysis cannot express — admit exactly
         those labels so the verdict still flags anything unexpected. *)
      let rl = Locks.Range_lock.labels rangelock in
      let rl_races =
        if rl = [] then [] else "radix:slot" :: "radix:node" :: rl
      in
      let allow =
        (match vm with
        | "radixvm" | "radixvm-shared" | "radixvm-pc" | "radixvm-procs" ->
            Check.radixvm_allow
        | _ -> [])
        @ extra_allow @ rl
      in
      let s =
        Format.asprintf "%a@."
          (Check.report ~allow ~race_allow:(extra_races @ rl_races))
          c
      in
      Check.detach c;
      s

(* Run one job per requested core count through the harness pool and
   print each result (and checker report) in sweep order. *)
let sweep ~name ~jobs ~cores ~pp rows =
  let results = Harness.Pool.run ~jobs rows in
  let many = List.length cores > 1 in
  List.iter2
    (fun n (result, report) ->
      if many then Format.printf "-- %s, %d cores --@." name n;
      Format.printf "%a@." pp result;
      print_string report)
    cores results

(* ---- micro ---- *)

let micro bench vm cores jobs duration check rangelock partition debug =
  let cores = parse_cores cores in
  let run_one n =
    let chk = ref None in
    let on_machine m = if check then chk := Some (Check.attach m) in
    let on_measure () = Option.iter Check.reset_window !chk in
    let pick local pipeline global =
      match bench with
      | "local" -> local ~on_machine ~on_measure ~ncores:n ~duration
      | "pipeline" -> pipeline ~on_machine ~on_measure ~ncores:(max 2 n) ~duration
      | "global" -> global ~on_machine ~on_measure ~ncores:n ~duration
      | other -> failwith ("unknown benchmark " ^ other)
    in
    let result =
      match vm with
      | "radixvm" ->
          let make m = Radixvm.create_with ~rangelock ?partition m in
          pick
            (fun ~on_machine ~on_measure ~ncores ~duration ->
              MB_radix.local ~on_machine ~on_measure ~debug ~ncores ~duration make)
            (fun ~on_machine ~on_measure ~ncores ~duration ->
              MB_radix.pipeline ~on_machine ~on_measure ~debug ~ncores ~duration make)
            (fun ~on_machine ~on_measure ~ncores ~duration ->
              MB_radix.global ~on_machine ~on_measure ~debug ~ncores ~duration make)
      | "radixvm-shared" ->
          let make m =
            Radixvm.create_with ~mmu:Vm.Page_table.Shared ~rangelock ?partition m
          in
          pick
            (fun ~on_machine ~on_measure ~ncores ~duration ->
              MB_radix.local ~on_machine ~on_measure ~debug ~ncores ~duration make)
            (fun ~on_machine ~on_measure ~ncores ~duration ->
              MB_radix.pipeline ~on_machine ~on_measure ~debug ~ncores ~duration make)
            (fun ~on_machine ~on_measure ~ncores ~duration ->
              MB_radix.global ~on_machine ~on_measure ~debug ~ncores ~duration make)
      | "linux" ->
          pick
            (fun ~on_machine ~on_measure ~ncores ~duration ->
              MB_linux.local ~on_machine ~on_measure ~debug ~ncores ~duration Baselines.Linux_vm.create)
            (fun ~on_machine ~on_measure ~ncores ~duration ->
              MB_linux.pipeline ~on_machine ~on_measure ~debug ~ncores ~duration Baselines.Linux_vm.create)
            (fun ~on_machine ~on_measure ~ncores ~duration ->
              MB_linux.global ~on_machine ~on_measure ~debug ~ncores ~duration Baselines.Linux_vm.create)
      | "bonsai" ->
          pick
            (fun ~on_machine ~on_measure ~ncores ~duration ->
              MB_bonsai.local ~on_machine ~on_measure ~debug ~ncores ~duration Baselines.Bonsai_vm.create)
            (fun ~on_machine ~on_measure ~ncores ~duration ->
              MB_bonsai.pipeline ~on_machine ~on_measure ~debug ~ncores ~duration Baselines.Bonsai_vm.create)
            (fun ~on_machine ~on_measure ~ncores ~duration ->
              MB_bonsai.global ~on_machine ~on_measure ~debug ~ncores ~duration Baselines.Bonsai_vm.create)
      | other -> failwith ("unknown vm " ^ other)
    in
    (result, render_report ~rangelock vm chk)
  in
  sweep
    ~name:(Printf.sprintf "%s %s" vm bench)
    ~jobs ~cores ~pp:Workloads.Microbench.pp_result
    (List.map
       (fun n ->
         Harness.Pool.job
           ~name:(Printf.sprintf "%s %s %d cores" vm bench n)
           (fun () -> run_one n))
       cores)

let micro_cmd =
  let bench =
    Arg.(
      value & opt string "local"
      & info [ "bench" ] ~doc:"Microbenchmark: local, pipeline, or global.")
  in
  Cmd.v
    (Cmd.info "micro" ~doc:"Run a section-5.3 microbenchmark.")
    Term.(
      const micro $ bench $ vm_arg $ cores_list_arg $ jobs_arg $ duration_arg
      $ check_arg $ rangelock_arg $ partition_arg $ debug_stats_arg)

(* ---- metis ---- *)

let metis vm cores unit_kb words =
  let unit_pages = max 1 (unit_kb * 1024 / Vm.Vm_types.page_size) in
  let report =
    match vm with
    | "radixvm" ->
        Metis_radix.run ~total_words:words ~unit_pages ~ncores:cores
          Radixvm.create
    | "linux" ->
        Metis_linux.run ~total_words:words ~unit_pages ~ncores:cores
          Baselines.Linux_vm.create
    | "bonsai" ->
        Metis_bonsai.run ~total_words:words ~unit_pages ~ncores:cores
          Baselines.Bonsai_vm.create
    | other -> failwith ("unknown vm " ^ other)
  in
  Format.printf "%a@." Workloads.Metis.pp_report report

let metis_cmd =
  let unit_kb =
    Arg.(
      value & opt int 64
      & info [ "unit-kb" ] ~doc:"Allocator unit in KB (64 or 8192).")
  in
  let words =
    Arg.(
      value & opt int 200_000
      & info [ "words" ] ~doc:"Total input words across all workers.")
  in
  Cmd.v
    (Cmd.info "metis" ~doc:"Run the Metis MapReduce benchmark (Figure 4).")
    Term.(const metis $ vm_arg $ cores_arg $ unit_kb $ words)

(* ---- counter ---- *)

let counter scheme cores jobs duration check =
  let cores = parse_cores cores in
  let run_one n =
    let chk = ref None in
    let on_machine m = if check then chk := Some (Check.attach m) in
    let on_measure () = Option.iter Check.reset_window !chk in
    let result =
      match scheme with
      | "refcache" ->
          let module B = Workloads.Counter_bench.Make (Refcnt.Refcache_counter) in
          B.run ~on_machine ~on_measure ~ncores:n ~duration ()
      | "shared" ->
          let module B = Workloads.Counter_bench.Make (Refcnt.Shared_counter) in
          B.run ~on_machine ~on_measure ~ncores:n ~duration ()
      | "snzi" ->
          let module B = Workloads.Counter_bench.Make (Refcnt.Snzi) in
          B.run ~on_machine ~on_measure ~ncores:n ~duration ()
      | "distributed" ->
          let module B = Workloads.Counter_bench.Make (Refcnt.Distributed_counter) in
          B.run ~on_machine ~on_measure ~ncores:n ~duration ()
      | other -> failwith ("unknown scheme " ^ other)
    in
    (result, render_report scheme chk)
  in
  sweep
    ~name:(Printf.sprintf "counter %s" scheme)
    ~jobs ~cores ~pp:Workloads.Counter_bench.pp_result
    (List.map
       (fun n ->
         Harness.Pool.job
           ~name:(Printf.sprintf "counter %s %d cores" scheme n)
           (fun () -> run_one n))
       cores)

let counter_cmd =
  let scheme =
    Arg.(
      value & opt string "refcache"
      & info [ "scheme" ]
          ~doc:"Counting scheme: refcache, shared, snzi, distributed.")
  in
  Cmd.v
    (Cmd.info "counter" ~doc:"Run the Figure 8 refcounting benchmark.")
    Term.(
      const counter $ scheme $ cores_list_arg $ jobs_arg $ duration_arg
      $ check_arg)

(* ---- index ---- *)

let index structure readers writers duration debug =
  let result =
    match structure with
    | "skiplist" ->
        Workloads.Index_bench.skiplist ~debug ~readers ~writers ~duration ()
    | "radix" ->
        Workloads.Index_bench.radix ~debug ~readers ~writers ~duration ()
    | other -> failwith ("unknown structure " ^ other)
  in
  Format.printf "%a@." Workloads.Index_bench.pp_result result

let index_cmd =
  let structure =
    Arg.(
      value & opt string "radix"
      & info [ "structure" ] ~doc:"Index structure: radix or skiplist.")
  in
  let readers =
    Arg.(value & opt int 8 & info [ "readers" ] ~doc:"Reader cores.")
  in
  let writers =
    Arg.(value & opt int 0 & info [ "writers" ] ~doc:"Writer cores.")
  in
  Cmd.v
    (Cmd.info "index" ~doc:"Run the Figure 6/7 index lookup benchmark.")
    Term.(
      const index $ structure $ readers $ writers $ duration_arg
      $ debug_stats_arg)

(* ---- cacheserve ---- *)

module CS_radix = Workloads.Cache_serve.Make (Vm.Radixvm.Default)
module CS_linux = Workloads.Cache_serve.Make (Baselines.Linux_vm)
module CS_bonsai = Workloads.Cache_serve.Make (Baselines.Bonsai_vm)
module PCache = Vm.Page_cache.Make (Refcnt.Refcache_counter)

let cacheserve_ops fd =
  {
    Workloads.Cache_serve.co_evict =
      (fun vm core ~page -> Radixvm.evict_file_page vm core ~file:fd ~page);
    co_mark_dirty =
      (fun vm core ~page ->
        PCache.set_dirty (Radixvm.page_cache vm) core ~file:fd ~page);
    co_dirty =
      (fun vm ~page -> PCache.dirty (Radixvm.page_cache vm) ~file:fd ~page);
    co_clear_dirty =
      (fun vm core ~page ->
        PCache.clear_dirty (Radixvm.page_cache vm) core ~file:fd ~page);
  }

let cacheserve vm cores jobs duration check rangelock zipf_s slots evict_every
    model_ops =
  let cores = parse_cores cores in
  if model_ops > 0 then begin
    (* The sequential model-checked session instead of a throughput run:
       every observable operation cross-checked against Cache_model. *)
    let o =
      Workloads.Cache_serve.Session.run ~ncores:(List.hd cores) ~procs:3
        ~slots ~zipf_s ~evict_every ~rangelock
        ~via_kernel:(vm = "radixvm-procs") ~ops:model_ops ()
    in
    Format.printf
      "session: %d ops (%d get / %d set / %d del), %d hits, %d misses@.\
       evictions %d, writebacks %d, compactions %d, resizes %d@.\
       divergences %d@."
      o.ops_done o.gets o.sets o.dels o.hits o.misses o.evictions o.writebacks
      o.compactions o.resizes
      (List.length o.divergences);
    if o.divergences <> [] then begin
      List.iter (fun d -> Format.printf "  %s@." d) o.divergences;
      exit 1
    end
  end
  else begin
    let fd = 3 in
    let warmup n ~file =
      1_000_000 + (if file then 80_000 * (slots + (4 * n)) else 0)
    in
    let run_one n =
      let chk = ref None in
      let on_machine m = if check then chk := Some (Check.attach m) in
      let on_measure () = Option.iter Check.reset_window !chk in
      let result =
        match vm with
        | "radixvm" ->
            CS_radix.serve ~warmup:(warmup n ~file:false) ~slots ~zipf_s
              ~evict_every ~on_machine ~on_measure ~ncores:n ~duration (fun m ->
                Radixvm.create_with ~rangelock m)
        | "radixvm-pc" ->
            CS_radix.serve ~warmup:(warmup n ~file:true) ~slots ~zipf_s
              ~evict_every ~file:fd ~cache_ops:(cacheserve_ops fd) ~on_machine
              ~on_measure ~ncores:n ~duration (fun m ->
                Radixvm.create_with ~rangelock m)
        | "radixvm-procs" ->
            Workloads.Cache_serve.Procs.serve ~warmup:(warmup n ~file:true)
              ~slots ~zipf_s ~evict_every ~on_machine ~on_measure ~ncores:n
              ~duration ()
        | "linux" ->
            CS_linux.serve ~warmup:(warmup n ~file:false) ~slots ~zipf_s
              ~evict_every ~on_machine ~on_measure ~ncores:n ~duration
              Baselines.Linux_vm.create
        | "bonsai" ->
            CS_bonsai.serve ~warmup:(warmup n ~file:false) ~slots ~zipf_s
              ~evict_every ~on_machine ~on_measure ~ncores:n ~duration
              Baselines.Bonsai_vm.create
        | other -> failwith ("unknown vm " ^ other)
      in
      (* Unlike the microbenchmarks, this workload evicts and remaps under
         live traffic, so lock-protected lines go multi-writer by design:
         RadixVM contends on slot locks (and page-cache / Refcache lines in
         the file-backed shapes), the baselines on their shared page table
         and allocator freelists. Admit exactly those labels; data races,
         lock cycles, TLB staleness and refcount violations stay fatal. *)
      let extra_allow, extra_races =
        match vm with
        | "linux" ->
            ([ "pt:shared"; "linux:aslock"; "physmem:freelist" ],
             [ "pt:shared" ])
        | "bonsai" ->
            ([ "pt:shared"; "bonsai:root"; "physmem:freelist" ],
             [ "pt:shared"; "bonsai:root" ])
        | _ ->
            ([ "radix:slot"; "pagecache:lock"; "refcache:obj";
               "physmem:freelist" ],
             [])
      in
      (result, render_report ~rangelock ~extra_allow ~extra_races vm chk)
    in
    sweep
      ~name:(Printf.sprintf "cacheserve %s" vm)
      ~jobs ~cores ~pp:Workloads.Cache_serve.pp_result
      (List.map
         (fun n ->
           Harness.Pool.job
             ~name:(Printf.sprintf "cacheserve %s %d cores" vm n)
             (fun () -> run_one n))
         cores)
  end

let cacheserve_cmd =
  let vm =
    let doc =
      "System under test: $(b,radixvm) (anonymous region, backend from \
       --rangelock), $(b,radixvm-pc) (file-backed through the page cache, \
       with dirty writeback), $(b,radixvm-procs) (one forked process per \
       core via the syscall layer), $(b,linux), or $(b,bonsai)."
    in
    Arg.(value & opt string "radixvm" & info [ "vm" ] ~doc)
  in
  let zipf_s =
    Arg.(
      value & opt float 1.1
      & info [ "zipf-s" ] ~doc:"Zipf skew of the key popularity distribution.")
  in
  let slots =
    Arg.(
      value & opt int 128
      & info [ "slots" ] ~doc:"Page-granular cache slots (keys hash to one).")
  in
  let evict_every =
    Arg.(
      value & opt int 512
      & info [ "evict-every" ]
          ~doc:
            "Operations between LRU sweeps (each sweep munmaps, drops and \
             remaps the coldest slots).")
  in
  let model_ops =
    Arg.(
      value & opt int 0
      & info [ "model-ops" ]
          ~doc:
            "Run the sequential model-checked session for this many \
             operations instead of a throughput sweep; exits nonzero on any \
             divergence from the reference cache model.")
  in
  Cmd.v
    (Cmd.info "cacheserve"
       ~doc:
         "Run the shared-memory cache serving workload (\"mmap in anger\").")
    Term.(
      const cacheserve $ vm $ cores_list_arg $ jobs_arg $ duration_arg
      $ check_arg $ rangelock_arg $ zipf_s $ slots $ evict_every $ model_ops)

(* ---- snapshot ---- *)

let snapshot profile =
  let p =
    match String.lowercase_ascii profile with
    | "firefox" -> Workloads.Snapshots.firefox
    | "chrome" -> Workloads.Snapshots.chrome
    | "apache" -> Workloads.Snapshots.apache
    | "mysql" -> Workloads.Snapshots.mysql
    | other -> failwith ("unknown profile " ^ other)
  in
  Format.printf "%a@." Workloads.Snapshots.pp_row
    (Workloads.Snapshots.measure p)

let snapshot_cmd =
  let profile =
    Arg.(
      value & opt string "firefox"
      & info [ "profile" ]
          ~doc:"Application profile: firefox, chrome, apache, mysql.")
  in
  Cmd.v
    (Cmd.info "snapshot" ~doc:"Measure Table 2 memory overhead for a profile.")
    Term.(const snapshot $ profile)

let () =
  let info =
    Cmd.info "radixvm-bench" ~version:"1.0.0"
      ~doc:"Run individual RadixVM reproduction experiments."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            micro_cmd;
            metis_cmd;
            counter_cmd;
            index_cmd;
            snapshot_cmd;
            cacheserve_cmd;
          ]))
