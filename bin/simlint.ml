(* simlint: the static half of the repo's invariant enforcement (the
   dynamic half is lib/check). Scans the .cmt files dune emitted under
   the given roots, applies the rule families in Lint.Finding against
   the committed allowlist, and prints machine-readable findings:

     file:line: [rule-id] Module.site: message

   Exit status: 0 clean, 1 findings, 2 operational failure. Run from the
   build context root (dune build @lint does) so cmt load paths resolve.

   --out-dir D additionally writes a BENCH_meta.json recording the lint
   wall clock, shaped so bench/validate.exe accepts it like the other
   gated targets' metadata. *)

module Json = Harness.Json

let usage () =
  prerr_endline
    "usage: simlint.exe [--allow FILE] [--out-dir D] [--all-scopes] [roots...]";
  exit 2

(* Wall clock for BENCH_meta.json only; never inside the scanned logic.
   (simlint lints itself — this use is covered by lint.allow.) *)
let now () = Unix.gettimeofday ()

let git_commit () =
  let read_line path =
    try
      let ic = open_in path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> Some (String.trim (input_line ic)))
    with Sys_error _ | End_of_file -> None
  in
  match read_line ".git/HEAD" with
  | None -> "unknown"
  | Some head ->
      if String.length head > 5 && String.sub head 0 5 = "ref: " then
        let r = String.sub head 5 (String.length head - 5) in
        match read_line (Filename.concat ".git" r) with
        | Some hash -> hash
        | None -> "unknown"
      else head

let () =
  let allow_file = ref None
  and out_dir = ref None
  and all_scopes = ref false
  and roots = ref [] in
  let rec parse = function
    | [] -> ()
    | "--allow" :: f :: rest ->
        allow_file := Some f;
        parse rest
    | "--out-dir" :: d :: rest ->
        out_dir := Some d;
        parse rest
    | "--all-scopes" :: rest ->
        all_scopes := true;
        parse rest
    | ("--allow" | "--out-dir") :: [] -> usage ()
    | a :: _ when String.length a > 0 && a.[0] = '-' -> usage ()
    | a :: rest ->
        roots := a :: !roots;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let roots =
    match List.rev !roots with
    | [] -> [ "lib"; "bin"; "bench"; "test" ]
    | rs -> rs
  in
  let config =
    if !all_scopes then
      (* Fixture mode: every rule family applies everywhere. *)
      {
        Lint.Engine.classify =
          (fun _ ->
            {
              Lint.Engine.hot = true;
              artifact = true;
              float_emitter = false;
              toplevel_state = true;
              shard_engine = false;
              sim_core = true;
            });
        skip_dir = (fun _ -> false);
      }
    else Lint.Engine.repo_config
  in
  let t0 = now () in
  let allow, malformed =
    match !allow_file with
    | None -> (Lint.Allowlist.empty, [])
    | Some f -> (
        try Lint.Allowlist.load f
        with Sys_error m ->
          Printf.eprintf "simlint: cannot read allowlist: %s\n" m;
          exit 2)
  in
  let scanned = Lint.Engine.find_cmts config roots in
  let findings =
    try Lint.Engine.run config ~allow ~roots
    with e ->
      Printf.eprintf "simlint: scan failed: %s\n" (Printexc.to_string e);
      exit 2
  in
  let findings = List.sort_uniq Lint.Finding.compare (malformed @ findings) in
  List.iter (fun f -> print_endline (Lint.Finding.to_string f)) findings;
  let wall = now () -. t0 in
  (match !out_dir with
  | None -> ()
  | Some dir ->
      Json.to_file ~pretty:true
        (Filename.concat dir "BENCH_meta.json")
        (Json.Obj
           [
             ("schema_version", Json.Int 1);
             ("targets", Json.List [ Json.String "lint" ]);
             ("quick", Json.Bool false);
             ("check", Json.Bool false);
             ("jobs", Json.Int 1);
             ("wall_clock_seconds", Json.Float wall);
             ( "target_wall_clock_seconds",
               Json.Obj [ ("lint", Json.Float wall) ] );
             ("generated_at", Json.Float t0);
             ("commit", Json.String (git_commit ()));
             ("modules_scanned", Json.Int (List.length scanned));
             ("findings", Json.Int (List.length findings));
           ]));
  Printf.printf "simlint: %d modules scanned under %s, %d findings\n"
    (List.length scanned) (String.concat " " roots) (List.length findings);
  exit (if findings = [] then 0 else 1)
