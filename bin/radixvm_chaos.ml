(* radixvm-chaos: wall-clock-budgeted chaos soak for the VM stack.

   Runs fuzz sessions back to back until a host time budget is spent,
   each under a randomly drawn fault palette — frame budgets, IPI delays
   and stalls, mid-operation aborts, mid-critical-section crashes (with
   verified recovery), spurious lock timeouts — cycling through all three
   range-lock backends, with the dynamic checkers attached and the
   livelock watchdog armed. Per-session palettes derive from --seed, so a
   given (seed, session-index) pair is exactly reproducible even though
   the number of sessions depends on the host's speed.

   Results land in BENCH_chaos.json (validated by bench/validate.exe).
   A failing session writes a replayable repro artifact and the run exits
   nonzero:

     radixvm-chaos --seconds 60 --seed 1 --out-dir .
     radixvm-fuzz --repro chaos_repro_<seed>.txt --shrink   # minimize *)

open Cmdliner
module Json = Harness.Json

(* No operation under the heaviest palette (IPI retry storms included)
   legitimately runs this many simulated cycles without retiring. *)
let watchdog_horizon = 100_000_000

let seconds_arg =
  Arg.(
    value & opt float 30.0
    & info [ "seconds" ]
        ~doc:"Wall-clock budget: keep starting sessions until this much \
              host time has elapsed (at least one session always runs).")

let seed_arg =
  Arg.(
    value & opt int 1
    & info [ "seed" ] ~doc:"Base seed; session $(i,i) uses seed + i and a \
                            palette drawn from (seed, i).")

let max_sessions_arg =
  Arg.(
    value & opt int 0
    & info [ "max-sessions" ]
        ~doc:"Hard cap on sessions regardless of remaining budget \
              (0 = no cap).")

let shards_arg =
  Arg.(
    value & opt int 1
    & info [ "shards" ]
        ~doc:"Run each session as a sharded world of this many coupled \
              node sessions (Fuzz.run_world), one host domain per node \
              (clamped to the host's parallelism). Palettes still derive \
              from (seed, index), so failures stay reproducible.")

let out_dir_arg =
  Arg.(
    value & opt string "."
    & info [ "out-dir" ] ~doc:"Directory for BENCH_chaos.json and any \
                               repro artifacts.")

let verbose_arg =
  Arg.(value & flag & info [ "verbose" ] ~doc:"Print every session's transcript, not just failing ones.")

(* The per-session fault palette. Independent of execution timing: only
   (base seed, session index) feed the draw, so a reported failure is
   reproducible with --seed/--max-sessions regardless of host speed. *)
let palette ~seed ~index =
  let rng = Random.State.make [| 0xc4a05; seed; index |] in
  let backends = Locks.Range_lock.all in
  let backend = List.nth backends (index mod List.length backends) in
  let ncores = 2 + Random.State.int rng 5 in
  let ops = 200 + Random.State.int rng 601 in
  let lock_timeouts =
    (* No-ops unless a timed-acquire path exists for the label, but kept
       in the palette (and in any repro artifact) so such paths are
       exercised the day they appear. *)
    if Random.State.int rng 4 = 0 then [ ("radix:slot", 0.01) ] else []
  in
  {
    Fuzz.seed = seed + index;
    ops;
    ncores;
    check = true;
    verbose = false;
    broken = false;
    rangelock = backend;
    crash = true;
    watchdog = Some watchdog_horizon;
    lock_timeouts;
  }

let write_artifact path (o : Fuzz.outcome) =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (Fuzz.program_to_string o.Fuzz.program);
      output_string oc "\n# --- failing transcript ---\n";
      String.split_on_char '\n' o.Fuzz.transcript
      |> List.iter (fun l -> output_string oc ("# " ^ l ^ "\n")))

(* One unit of chaos: a plain session, or — with --shards N — a world of
   N coupled node sessions. Reported through one shape either way. *)
let run_unit ~shards cfg =
  if shards <= 1 then begin
    let o = Fuzz.run_session cfg in
    ( o.Fuzz.passed,
      o.Fuzz.crashes,
      o.Fuzz.livelocked,
      o.Fuzz.transcript,
      if o.Fuzz.passed then None else Some o )
  end
  else begin
    let w = Fuzz.run_world ~shards ~nodes:shards cfg in
    let crashes =
      List.fold_left
        (fun a (o : Fuzz.outcome) -> a + o.Fuzz.crashes)
        0 w.Fuzz.w_outcomes
    in
    let livelocked =
      List.exists (fun (o : Fuzz.outcome) -> o.Fuzz.livelocked) w.Fuzz.w_outcomes
    in
    ( w.Fuzz.w_passed,
      crashes,
      livelocked,
      w.Fuzz.w_transcript,
      List.find_opt
        (fun (o : Fuzz.outcome) -> not o.Fuzz.passed)
        w.Fuzz.w_outcomes )
  end

let main seconds seed max_sessions shards out_dir verbose =
  let t0 = Unix.gettimeofday () in
  let elapsed () = Unix.gettimeofday () -. t0 in
  let rows = ref [] in
  let failures = ref [] in
  let n = ref 0 in
  let total_crashes = ref 0 in
  let total_livelocks = ref 0 in
  while
    (!n = 0 || elapsed () < seconds)
    && (max_sessions = 0 || !n < max_sessions)
  do
    let index = !n in
    incr n;
    let cfg = palette ~seed ~index in
    let s0 = Unix.gettimeofday () in
    let passed, crashes, livelocked, transcript, failing =
      run_unit ~shards cfg
    in
    let wall = Unix.gettimeofday () -. s0 in
    total_crashes := !total_crashes + crashes;
    if livelocked then incr total_livelocks;
    Printf.printf "chaos: session %d seed=%d backend=%s cores=%d ops=%d%s -> \
                   %s (%d reaped%s, %.2fs)\n%!"
      index cfg.Fuzz.seed
      (Locks.Range_lock.name cfg.Fuzz.rangelock)
      cfg.Fuzz.ncores cfg.Fuzz.ops
      (if shards > 1 then Printf.sprintf " shards=%d" shards else "")
      (if passed then "PASS" else "FAIL")
      crashes
      (if livelocked then ", LIVELOCK" else "")
      wall;
    if verbose || not passed then print_string transcript;
    if not passed then begin
      (match failing with
      | Some o ->
          (* For a world, the artifact is the failing node's own recorded
             program — it replays standalone with radixvm-fuzz --repro. *)
          let artifact =
            Filename.concat out_dir
              (Printf.sprintf "chaos_repro_%d.txt" o.Fuzz.program.Fuzz.pr_seed)
          in
          write_artifact artifact o;
          Printf.printf
            "chaos: repro written to %s\n  replay: radixvm-fuzz --repro %s\n%!"
            artifact artifact
      | None -> ());
      failures := cfg.Fuzz.seed :: !failures
    end;
    rows :=
      Json.Obj
        [
          ("seed", Json.Int cfg.Fuzz.seed);
          ("backend", Json.String (Locks.Range_lock.name cfg.Fuzz.rangelock));
          ("cores", Json.Int cfg.Fuzz.ncores);
          ("ops", Json.Int cfg.Fuzz.ops);
          ("shards", Json.Int (max 1 shards));
          ("passed", Json.Bool passed);
          ("crashes", Json.Int crashes);
          ("livelocked", Json.Bool livelocked);
          ("wall_clock_seconds", Json.Float wall);
        ]
      :: !rows
  done;
  let doc =
    Json.Obj
      [
        ("schema_version", Json.Int 1);
        ("seed", Json.Int seed);
        ("budget_seconds", Json.Float seconds);
        ("wall_clock_seconds", Json.Float (elapsed ()));
        ("sessions", Json.Int !n);
        ("passed", Json.Int (!n - List.length !failures));
        ("failed", Json.Int (List.length !failures));
        ("crashes_injected", Json.Int !total_crashes);
        ("livelocks", Json.Int !total_livelocks);
        ("rows", Json.List (List.rev !rows));
      ]
  in
  let out = Filename.concat out_dir "BENCH_chaos.json" in
  Json.to_file ~pretty:true out doc;
  Printf.printf "chaos: %d/%d sessions passed, %d processes crashed and \
                 reaped, %d livelocks -> %s\n"
    (!n - List.length !failures)
    !n !total_crashes !total_livelocks out;
  if !failures <> [] then exit 1

let cmd =
  let doc = "wall-clock-budgeted chaos soak for the RadixVM stack" in
  Cmd.v
    (Cmd.info "radixvm-chaos" ~doc)
    Term.(
      const main $ seconds_arg $ seed_arg $ max_sessions_arg $ shards_arg
      $ out_dir_arg $ verbose_arg)

let () = exit (Cmd.eval cmd)
