(* Tests for the OS personality: processes, fork/exec/exit/wait, sbrk,
   validated VM syscalls, and whole-system frame accounting across process
   lifetimes. *)

open Ccsim
module K = Os.Kernel
module R = Vm.Radixvm.Default

let epoch = 10_000

let boot ?(ncores = 4) () =
  let m = Machine.create (Params.default ~ncores ~epoch_cycles:epoch ()) in
  (m, K.boot m)

let drain m n = Machine.drain m ~cycles:(n * epoch)
let live m = Physmem.live_frames (Machine.physmem m)

let ok_t = Alcotest.testable (fun ppf _ -> Format.pp_print_string ppf "_") ( = )

let check_ok name = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: unexpected %s" name (K.errno_to_string e)

let result_t =
  Alcotest.testable
    (fun ppf -> function
      | Vm.Vm_types.Ok -> Format.pp_print_string ppf "Ok"
      | Vm.Vm_types.Segfault -> Format.pp_print_string ppf "Segfault"
      | Vm.Vm_types.Oom -> Format.pp_print_string ppf "Oom")
    ( = )

(* ------------------------------------------------------------------ *)

let test_boot () =
  let _m, k = boot () in
  let init = K.init_process k in
  Alcotest.(check int) "init pid" 1 (K.pid init);
  Alcotest.(check bool) "alive" true (K.alive init);
  Alcotest.(check int) "one process" 1 (K.process_count k)

let test_fork_tree_and_wait () =
  let m, k = boot () in
  let c = Machine.core m 0 in
  let init = K.init_process k in
  let a = check_ok "fork a" (K.sys_fork k c init) in
  let b = check_ok "fork b" (K.sys_fork k c init) in
  Alcotest.(check bool) "distinct pids" true (K.pid a <> K.pid b);
  Alcotest.(check int) "parents" 1 (K.parent_pid a);
  Alcotest.(check int) "three processes" 3 (K.process_count k);
  (* no zombie children yet *)
  Alcotest.(check bool) "wait blocks (ECHILD)" true
    (K.sys_wait k init = Error K.ECHILD);
  K.sys_exit k c a ~code:7;
  Alcotest.(check bool) "zombie not alive" false (K.alive a);
  let zpid, code = check_ok "wait" (K.sys_wait k init) in
  Alcotest.(check int) "reaped pid" (K.pid a) zpid;
  Alcotest.(check int) "exit code" 7 code;
  Alcotest.(check int) "reaped from table" 2 (K.process_count k);
  ignore b

let test_orphans_reparent_to_init () =
  let m, k = boot () in
  let c = Machine.core m 0 in
  let init = K.init_process k in
  let parent = check_ok "fork" (K.sys_fork k c init) in
  let orphan = check_ok "fork2" (K.sys_fork k c parent) in
  K.sys_exit k c parent ~code:0;
  Alcotest.(check int) "orphan reparented" 1 (K.parent_pid orphan);
  K.sys_exit k c orphan ~code:3;
  (* init reaps both *)
  ignore (check_ok "reap 1" (K.sys_wait k init));
  ignore (check_ok "reap 2" (K.sys_wait k init));
  Alcotest.(check int) "only init left" 1 (K.process_count k)

let test_sbrk_heap () =
  let m, k = boot () in
  let c = Machine.core m 0 in
  let p = check_ok "fork" (K.sys_fork k c (K.init_process k)) in
  let old = check_ok "grow" (K.sys_sbrk k c p ~pages:4) in
  Alcotest.(check int) "old break" K.heap_base old;
  Alcotest.(check int) "new break" (K.heap_base + 4) (K.brk p);
  (* the heap is usable memory *)
  Alcotest.check result_t "store on heap" Vm.Vm_types.Ok
    (K.store k c p ~vpn:K.heap_base 42);
  Alcotest.(check (option int)) "load back" (Some 42)
    (K.load k c p ~vpn:K.heap_base);
  (* beyond the break is unmapped *)
  Alcotest.check result_t "beyond break faults" Vm.Vm_types.Segfault
    (K.store k c p ~vpn:(K.heap_base + 4) 1);
  (* shrink releases the pages *)
  ignore (check_ok "shrink" (K.sys_sbrk k c p ~pages:(-4)));
  Alcotest.check result_t "released" Vm.Vm_types.Segfault
    (K.store k c p ~vpn:K.heap_base 1);
  (* invalid shrinks are rejected *)
  Alcotest.(check bool) "below heap base rejected" true
    (K.sys_sbrk k c p ~pages:(-1) = Error K.EINVAL)

let test_exec_layout () =
  let m, k = boot () in
  let c = Machine.core m 0 in
  let p = check_ok "fork" (K.sys_fork k c (K.init_process k)) in
  ignore (K.sys_sbrk k c p ~pages:8);
  ignore (K.store k c p ~vpn:K.heap_base 99);
  let _fd = Os.Vfs.create_file (K.vfs k) ~name:"app" ~pages:4 in
  check_ok "exec" (K.sys_exec k c p ~path:"app");
  (* old heap is gone *)
  Alcotest.(check int) "break reset" K.heap_base (K.brk p);
  Alcotest.check result_t "old heap unmapped" Vm.Vm_types.Segfault
    (K.store k c p ~vpn:K.heap_base 1);
  (* text is mapped read-only from the file *)
  Alcotest.(check (option int)) "text readable"
    (Some (Vm.Page_cache.file_content ~file:3 ~page:K.text_base))
    (K.load k c p ~vpn:K.text_base);
  Alcotest.check result_t "text not writable" Vm.Vm_types.Segfault
    (K.store k c p ~vpn:K.text_base 1);
  (* the stack works *)
  Alcotest.check result_t "stack writable" Vm.Vm_types.Ok
    (K.store k c p ~vpn:K.stack_base 5);
  (* exec of a missing file fails cleanly *)
  Alcotest.(check bool) "ENOENT" true
    (K.sys_exec k c p ~path:"nope" = Error K.ENOENT)

let test_exec_shares_text_between_processes () =
  let m, k = boot () in
  let c = Machine.core m 0 in
  let init = K.init_process k in
  let _fd = Os.Vfs.create_file (K.vfs k) ~name:"app" ~pages:4 in
  let p1 = check_ok "fork1" (K.sys_fork k c init) in
  let p2 = check_ok "fork2" (K.sys_fork k c init) in
  check_ok "exec1" (K.sys_exec k c p1 ~path:"app");
  check_ok "exec2" (K.sys_exec k c p2 ~path:"app");
  let before = live m in
  ignore (K.load k c p1 ~vpn:K.text_base);
  Alcotest.(check int) "first text fault loads" (before + 1) (live m);
  ignore (K.load k c p2 ~vpn:K.text_base);
  Alcotest.(check int) "second process shares the cached text page"
    (before + 1) (live m)

let test_fork_cow_through_syscalls () =
  let m, k = boot () in
  let c = Machine.core m 0 in
  let p = check_ok "fork" (K.sys_fork k c (K.init_process k)) in
  ignore (K.sys_sbrk k c p ~pages:2);
  ignore (K.store k c p ~vpn:K.heap_base 10);
  let child = check_ok "fork child" (K.sys_fork k c p) in
  Alcotest.(check int) "child inherits break" (K.brk p) (K.brk child);
  Alcotest.(check (option int)) "child sees data" (Some 10)
    (K.load k c child ~vpn:K.heap_base);
  ignore (K.store k c child ~vpn:K.heap_base 20);
  Alcotest.(check (option int)) "parent isolated" (Some 10)
    (K.load k c p ~vpn:K.heap_base);
  Alcotest.(check (option int)) "child sees its write" (Some 20)
    (K.load k c child ~vpn:K.heap_base)

let test_all_frames_reclaimed_at_exit () =
  let m, k = boot () in
  let c = Machine.core m 0 in
  let init = K.init_process k in
  let baseline = live m in
  let p = check_ok "fork" (K.sys_fork k c init) in
  ignore (K.sys_sbrk k c p ~pages:16);
  for i = 0 to 15 do
    ignore (K.store k c p ~vpn:(K.heap_base + i) i)
  done;
  let q = check_ok "fork q" (K.sys_fork k c p) in
  for i = 0 to 7 do
    ignore (K.store k c q ~vpn:(K.heap_base + i) (100 + i))
  done;
  K.sys_exit k c q ~code:0;
  K.sys_exit k c p ~code:0;
  ignore (K.sys_wait k init);
  drain m 8;
  Alcotest.(check int) "everything reclaimed" baseline (live m)

let test_syscall_validation () =
  let m, k = boot () in
  let c = Machine.core m 0 in
  let p = check_ok "fork" (K.sys_fork k c (K.init_process k)) in
  let space = R.address_space_pages (K.vm p) in
  Alcotest.(check bool) "mmap beyond space" true
    (K.sys_mmap k c p ~vpn:(space - 1) ~npages:2 () = Error K.EINVAL);
  Alcotest.(check bool) "munmap zero pages" true
    (K.sys_munmap k c p ~vpn:0 ~npages:0 = Error K.EINVAL);
  Alcotest.(check bool) "mmap bad fd" true
    (K.sys_mmap k c p ~vpn:0 ~npages:1 ~file:99 () = Error K.EINVAL);
  let fd = Os.Vfs.create_file (K.vfs k) ~name:"f" ~pages:2 in
  Alcotest.(check bool) "file mapping beyond EOF" true
    (K.sys_mmap k c p ~vpn:0 ~npages:3 ~file:fd () = Error K.EINVAL);
  Alcotest.(check ok_t) "valid file mapping" (Ok ())
    (K.sys_mmap k c p ~vpn:0 ~npages:2 ~file:fd ());
  (* syscalls on a dead process *)
  K.sys_exit k c p ~code:0;
  Alcotest.(check bool) "fork dead process" true
    (match K.sys_fork k c p with Error K.ESRCH -> true | _ -> false);
  Alcotest.(check bool) "sbrk dead process" true
    (K.sys_sbrk k c p ~pages:1 = Error K.ESRCH);
  Alcotest.check result_t "store dead process" Vm.Vm_types.Segfault
    (K.store k c p ~vpn:0 1)

let test_mprotect_via_syscall () =
  let m, k = boot () in
  let c = Machine.core m 0 in
  let p = check_ok "fork" (K.sys_fork k c (K.init_process k)) in
  ignore (check_ok "mmap" (K.sys_mmap k c p ~vpn:0 ~npages:4 ()));
  ignore (K.store k c p ~vpn:1 5);
  ignore
    (check_ok "mprotect"
       (K.sys_mprotect k c p ~vpn:0 ~npages:4 Vm.Vm_types.Read_only));
  Alcotest.check result_t "write refused" Vm.Vm_types.Segfault
    (K.store k c p ~vpn:1 6);
  Alcotest.(check (option int)) "data intact and readable" (Some 5)
    (K.load k c p ~vpn:1)

(* Both protections ({!Vm.Vm_types.prot} has no execute bit) across
   mapped, partially mapped, and unmapped ranges. Any in-space range is
   Ok — like the real call, mprotect rewrites whatever mappings the range
   contains and ignores the holes — while a range reaching outside the
   address space (or an empty one) is EINVAL and changes nothing. *)
let test_mprotect_matrix () =
  let m, k = boot () in
  let c = Machine.core m 0 in
  let p = check_ok "fork" (K.sys_fork k c (K.init_process k)) in
  let space = Vm.Radixvm.Default.address_space_pages (K.vm p) in
  ignore (check_ok "mmap" (K.sys_mmap k c p ~vpn:0 ~npages:4 ()));
  ignore (K.store k c p ~vpn:1 5);
  List.iter
    (fun prot ->
      let writable = prot = Vm.Vm_types.Read_write in
      (* fully mapped *)
      ignore
        (check_ok "mapped" (K.sys_mprotect k c p ~vpn:0 ~npages:4 prot));
      Alcotest.check result_t
        (if writable then "write allowed" else "write refused")
        (if writable then Vm.Vm_types.Ok else Vm.Vm_types.Segfault)
        (K.store k c p ~vpn:1 6);
      Alcotest.(check bool) "readable either way" true
        (K.load k c p ~vpn:1 <> None);
      (* partially mapped: pages 4..7 are holes; the mapped half takes the
         new protection, the holes stay segfaulting *)
      ignore
        (check_ok "partial" (K.sys_mprotect k c p ~vpn:2 ~npages:6 prot));
      Alcotest.check result_t "mapped half follows prot"
        (if writable then Vm.Vm_types.Ok else Vm.Vm_types.Segfault)
        (K.store k c p ~vpn:3 7);
      Alcotest.check result_t "hole still unmapped" Vm.Vm_types.Segfault
        (K.store k c p ~vpn:5 7);
      (* fully unmapped: a no-op, not an error *)
      ignore
        (check_ok "unmapped" (K.sys_mprotect k c p ~vpn:16 ~npages:4 prot));
      Alcotest.(check (option int)) "still unmapped" None
        (K.load k c p ~vpn:17);
      (* invalid ranges: EINVAL, nothing happened *)
      List.iter
        (fun (name, vpn, npages) ->
          Alcotest.(check bool) name true
            (K.sys_mprotect k c p ~vpn ~npages prot = Error K.EINVAL))
        [
          ("zero pages", 0, 0);
          ("negative vpn", -1, 2);
          ("beyond space", space - 1, 2);
        ])
    [ Vm.Vm_types.Read_only; Vm.Vm_types.Read_write ];
  (* back to writable for a final sanity write *)
  ignore (check_ok "restore" (K.sys_mprotect k c p ~vpn:0 ~npages:4 Vm.Vm_types.Read_write));
  Alcotest.check result_t "writable again" Vm.Vm_types.Ok (K.store k c p ~vpn:1 8)

(* An injected abort at mprotect's only abort point ("locked", before the
   first metadata rewrite) must surface as EFAULT at the syscall boundary
   and leave the mapping byte-for-byte as it was: same protection, same
   contents, same frame count, no leaked range locks — the same contract
   test_fault.ml asserts for munmap's mid-operation abort. *)
let test_mprotect_abort_rolls_back () =
  let m, k = boot () in
  let chk = Check.attach m in
  let plan = Fault.create ~seed:0 () in
  Machine.set_fault m (Some plan);
  let c = Machine.core m 0 in
  let p = check_ok "fork" (K.sys_fork k c (K.init_process k)) in
  ignore (check_ok "mmap" (K.sys_mmap k c p ~vpn:0 ~npages:4 ()));
  Alcotest.check result_t "seed write" Vm.Vm_types.Ok (K.store k c p ~vpn:1 5);
  let frames_before = live m in
  Fault.abort_ops plan ~op:"mprotect" ~point:"locked" ~prob:1.0 ();
  Alcotest.(check bool) "aborted mprotect is EFAULT" true
    (K.sys_mprotect k c p ~vpn:0 ~npages:4 Vm.Vm_types.Read_only
    = Error K.EFAULT);
  (* The failed downgrade must be a perfect no-op: still writable. *)
  Alcotest.check result_t "still writable" Vm.Vm_types.Ok
    (K.store k c p ~vpn:1 6);
  Alcotest.(check (option int)) "contents survived" (Some 6)
    (K.load k c p ~vpn:1);
  Alcotest.(check int) "no frames leaked or dropped" frames_before (live m);
  Alcotest.(check int) "range locks released" 0
    (List.length (Check.leaked_locks chk));
  (* With the plan detached the same downgrade goes through. *)
  Machine.set_fault m None;
  ignore
    (check_ok "mprotect after detach"
       (K.sys_mprotect k c p ~vpn:0 ~npages:4 Vm.Vm_types.Read_only));
  Alcotest.check result_t "downgrade effective" Vm.Vm_types.Segfault
    (K.store k c p ~vpn:1 7);
  Check.detach chk

let process_lifecycle_property =
  QCheck.Test.make ~name:"random process lifecycles leak no frames" ~count:40
    QCheck.(
      make
        ~print:(fun ops ->
          String.concat ";"
            (List.map
               (fun op ->
                 match op with
                 | 0 -> "fork"
                 | 1 -> "exit"
                 | 2 -> "sbrk+"
                 | 3 -> "touch"
                 | _ -> "wait")
               ops))
        Gen.(list_size (int_range 1 60) (int_bound 4)))
    (fun ops ->
      let m, k = boot () in
      let c = Machine.core m 0 in
      let init = K.init_process k in
      let baseline = live m in
      let procs = ref [] in
      let pick () =
        match !procs with
        | [] -> None
        | l -> Some (List.nth l (List.length l / 2))
      in
      List.iter
        (fun op ->
          match op with
          | 0 ->
              let parent = Option.value (pick ()) ~default:init in
              if K.alive parent then
                (match K.sys_fork k c parent with
                | Ok child -> procs := child :: !procs
                | Error _ -> ())
          | 1 -> (
              match pick () with
              | Some p when K.alive p -> K.sys_exit k c p ~code:0
              | _ -> ())
          | 2 -> (
              match pick () with
              | Some p when K.alive p -> ignore (K.sys_sbrk k c p ~pages:2)
              | _ -> ())
          | 3 -> (
              match pick () with
              | Some p when K.alive p && K.brk p > K.heap_base ->
                  ignore (K.store k c p ~vpn:K.heap_base 1)
              | _ -> ())
          | _ ->
              ignore (K.sys_wait k init);
              (match pick () with
              | Some p -> ignore (K.sys_wait k p)
              | None -> ()))
        ops;
      (* everyone exits; init reaps what it can *)
      List.iter (fun p -> if K.alive p then K.sys_exit k c p ~code:0) !procs;
      let rec reap () =
        match K.sys_wait k init with Ok _ -> reap () | Error _ -> ()
      in
      reap ();
      drain m 10;
      live m = baseline)

(* ------------------------------------------------------------------ *)
(* VFS resize hook                                                     *)

(* The grow/truncate surface the cache-serving workload leans on: the
   hook fires exactly when the size changes, with both sizes, after the
   size table already shows the new one. *)
let test_vfs_resize_hook () =
  let vfs = Os.Vfs.create () in
  let fd = Os.Vfs.create_file vfs ~name:"f" ~pages:8 in
  let fired = ref [] in
  Os.Vfs.set_resize_hook vfs (fun fd' ~old_pages ~new_pages ->
      Alcotest.(check (option int))
        "size table updated before the hook" (Some new_pages)
        (Os.Vfs.size_pages vfs fd');
      fired := (fd', old_pages, new_pages) :: !fired);
  Alcotest.(check (option int)) "truncate returns old size" (Some 8)
    (Os.Vfs.resize_file vfs fd ~pages:0);
  Alcotest.(check (option int)) "grow returns old size" (Some 0)
    (Os.Vfs.resize_file vfs fd ~pages:8);
  (* Same size: no hook, but still reports. *)
  Alcotest.(check (option int)) "no-op resize reports" (Some 8)
    (Os.Vfs.resize_file vfs fd ~pages:8);
  Alcotest.(check (option int)) "unknown fd refused" None
    (Os.Vfs.resize_file vfs 99 ~pages:4);
  Alcotest.(check (list (triple int int int)))
    "hook fired once per actual change, in order"
    [ (fd, 0, 8); (fd, 8, 0) ]
    (List.map (fun (a, b, c) -> (a, b, c)) !fired)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "os"
    [
      ( "processes",
        [
          tc "boot" `Quick test_boot;
          tc "fork tree and wait" `Quick test_fork_tree_and_wait;
          tc "orphans reparent" `Quick test_orphans_reparent_to_init;
          tc "sbrk heap" `Quick test_sbrk_heap;
        ] );
      ( "exec",
        [
          tc "layout" `Quick test_exec_layout;
          tc "text shared between processes" `Quick
            test_exec_shares_text_between_processes;
        ] );
      ( "memory",
        [
          tc "fork cow via syscalls" `Quick test_fork_cow_through_syscalls;
          tc "frames reclaimed at exit" `Quick test_all_frames_reclaimed_at_exit;
          tc "mprotect" `Quick test_mprotect_via_syscall;
          tc "mprotect matrix" `Quick test_mprotect_matrix;
          tc "mprotect abort rolls back" `Quick
            test_mprotect_abort_rolls_back;
        ] );
      ("validation", [ tc "errno paths" `Quick test_syscall_validation ]);
      ("vfs", [ tc "resize hook" `Quick test_vfs_resize_hook ]);
      ("property", [ QCheck_alcotest.to_alcotest process_lifecycle_property ]);
    ]
