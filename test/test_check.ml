(* Tests for the Check library (dynamic race / invariant checking).

   Two halves:

   - "fixtures": known-bad programs, each of which must trip exactly the
     analysis aimed at it (lockset race, lock-order cycle, stale TLB after
     a buggy unmap, Refcache misuse) — and the corresponding correct
     program, which must stay silent. These prove the detectors actually
     fire.

   - acceptance: the checker attached to real workloads. On RadixVM the
     disjoint-region microbenchmark must show *zero* multi-writer lines
     outside the documented allowlist (the paper's central claim, now a
     pass/fail test); the Linux-like and Bonsai baselines must show
     non-zero sharing on the very same workload. Plus conservation: the
     checker's event count must equal the cost model's access count. *)

open Ccsim
module Radixvm = Vm.Radixvm.Default
module MB = Workloads.Microbench.Make (Vm.Radixvm.Default)
module MB_linux = Workloads.Microbench.Make (Baselines.Linux_vm)
module MB_bonsai = Workloads.Microbench.Make (Baselines.Bonsai_vm)
module Refcache = Refcnt.Refcache

let quick_micro = 300_000
let quick_warmup = 600_000

let machine ?(ncores = 2) ?epoch_cycles () =
  Machine.create (Params.default ~ncores ?epoch_cycles ())

(* ------------------------------------------------------------------ *)
(* Known-bad fixtures                                                  *)

(* Two cores increment a shared counter with plain read-modify-write and
   no lock: the classic data race. *)
let test_race_fires () =
  let m = machine () in
  let chk = Check.attach m in
  let c0 = Machine.core m 0 in
  let counter = Cell.make ~label:"fixture:racy" c0 0 in
  for c = 0 to 1 do
    let core = Machine.core m c in
    let n = ref 0 in
    Machine.set_workload m c (fun () ->
        Cell.write core counter (Cell.read core counter + 1);
        incr n;
        !n < 100)
  done;
  Machine.run m;
  (match Check.races chk with
  | [ r ] ->
      Alcotest.(check string) "labeled" "fixture:racy" r.Check.race_label;
      Alcotest.(check (list int)) "both cores implicated" [ 0; 1 ]
        r.Check.race_cores
  | rs -> Alcotest.failf "expected exactly one race, got %d" (List.length rs));
  Alcotest.(check bool) "verdict fails" false (Check.ok chk)

(* The same counter protected by a lock: the detector must stay silent
   (lockset refinement, not mere cross-core detection). *)
let test_race_silent_under_lock () =
  let m = machine () in
  let chk = Check.attach m in
  let c0 = Machine.core m 0 in
  let counter = Cell.make ~label:"fixture:locked" c0 0 in
  let lock = Lock.create ~label:"fixture:lock" c0 in
  for c = 0 to 1 do
    let core = Machine.core m c in
    let n = ref 0 in
    Machine.set_workload m c (fun () ->
        Lock.acquire core lock;
        Cell.write core counter (Cell.read core counter + 1);
        Lock.release core lock;
        incr n;
        !n < 100)
  done;
  Machine.run m;
  Alcotest.(check int) "no races" 0 (List.length (Check.races chk));
  Alcotest.(check int) "no cycles" 0 (List.length (Check.cycles chk))

(* Core 0 acquires A then B; core 1 acquires B then A. No deadlock occurs
   in the (atomic-step) run, but the lock-order graph has an A<->B cycle —
   the latent deadlock the analysis exists to catch. *)
let test_lock_order_cycle_fires () =
  let m = machine () in
  let chk = Check.attach m in
  let c0 = Machine.core m 0 in
  let a = Lock.create ~label:"fixture:A" c0 in
  let b = Lock.create ~label:"fixture:B" c0 in
  (* Publish both locks first: a lock's very first acquisition orders
     against nothing (nascent objects are born locked), so edges are only
     recorded between locks that have already completed an acquisition. *)
  Lock.acquire c0 a;
  Lock.release c0 a;
  Lock.acquire c0 b;
  Lock.release c0 b;
  let step core first second () =
    Lock.acquire core first;
    Lock.acquire core second;
    Lock.release core second;
    Lock.release core first;
    false
  in
  Machine.set_workload m 0 (step (Machine.core m 0) a b);
  Machine.set_workload m 1 (step (Machine.core m 1) b a);
  Machine.run m;
  (match Check.cycles chk with
  | [ cyc ] ->
      Alcotest.(check int) "two edges" 2 (List.length cyc);
      List.iter
        (fun (e : Check.lock_edge) ->
          Alcotest.(check bool) "acquisition context recorded" true
            (e.Check.e_held <> []))
        cyc
  | cs -> Alcotest.failf "expected one cycle, got %d" (List.length cs));
  Alcotest.(check bool) "verdict fails" false (Check.ok chk)

(* Both cores acquire in the same order: a partial order, no cycle. *)
let test_lock_order_silent_when_consistent () =
  let m = machine () in
  let chk = Check.attach m in
  let c0 = Machine.core m 0 in
  let a = Lock.create ~label:"fixture:A" c0 in
  let b = Lock.create ~label:"fixture:B" c0 in
  for c = 0 to 1 do
    let core = Machine.core m c in
    Machine.set_workload m c (fun () ->
        Lock.acquire core a;
        Lock.acquire core b;
        Lock.release core b;
        Lock.release core a;
        false)
  done;
  Machine.run m;
  Alcotest.(check int) "no cycles" 0 (List.length (Check.cycles chk))

(* A buggy VM that "unmaps" by clearing only its own core's page table
   and TLB — the stale-TLB window every shootdown protocol exists to
   close. The checker's TLB mirror must catch core 1's surviving
   translation the moment the unmap declares itself done. *)
let test_stale_tlb_fires () =
  let m = machine () in
  let chk = Check.attach m in
  let mmu = Vm.Mmu.create m Vm.Page_table.Per_core in
  let c0 = Machine.core m 0 and c1 = Machine.core m 1 in
  let pfn = Physmem.alloc (Machine.physmem m) c0 in
  Vm.Mmu.install mmu c0 ~vpn:100 ~pfn ~writable:true;
  Vm.Mmu.install mmu c1 ~vpn:100 ~pfn ~writable:true;
  let asid = Vm.Mmu.asid mmu in
  (* Bug: no shootdown round — only the unmapping core is cleaned. *)
  ignore (Vm.Mmu.drop_for_core mmu ~owner:0 ~lo:100 ~hi:101);
  Obs.emit (Machine.obs m)
    (Obs.Unmap_done { core = 0; asid; lo = 100; hi = 101 });
  (match Check.tlb_violations chk with
  | [ v ] ->
      Alcotest.(check int) "stale core" 1 v.Check.tv_stale_core;
      Alcotest.(check int) "stale vpn" 100 v.Check.tv_vpn;
      Alcotest.(check int) "unmapping core" 0 v.Check.tv_unmap_core
  | vs ->
      Alcotest.failf "expected one stale-TLB violation, got %d"
        (List.length vs));
  (* The correct protocol — clear every core that may cache the range —
     adds no further violation. *)
  ignore (Vm.Mmu.drop_for_core mmu ~owner:1 ~lo:100 ~hi:101);
  Obs.emit (Machine.obs m)
    (Obs.Unmap_done { core = 0; asid; lo = 100; hi = 101 });
  Alcotest.(check int) "clean after full shootdown" 1
    (List.length (Check.tlb_violations chk))

(* Hand-written bad reference-count traces (the real Refcache is correct,
   so the broken protocols are injected directly into the event stream). *)
let test_rc_violations_fire () =
  let m = machine () in
  let chk = Check.attach m in
  let obs = Machine.obs m in
  let lbl = "fixture:rc" in
  (* Freed while the count is still 2: a premature free. *)
  Obs.emit obs (Obs.Rc_make { core = 0; oid = 9001; init = 2; label = lbl });
  Obs.emit obs (Obs.Rc_free { core = 0; oid = 9001; label = lbl });
  (* A legitimate free, followed by double free and use-after-free. *)
  Obs.emit obs (Obs.Rc_make { core = 0; oid = 9002; init = 1; label = lbl });
  Obs.emit obs (Obs.Rc_dec { core = 1; oid = 9002; label = lbl });
  Obs.emit obs (Obs.Rc_free { core = 1; oid = 9002; label = lbl });
  Obs.emit obs (Obs.Rc_free { core = 0; oid = 9002; label = lbl });
  Obs.emit obs (Obs.Rc_inc { core = 0; oid = 9002; label = lbl });
  Obs.emit obs (Obs.Rc_dec { core = 0; oid = 9002; label = lbl });
  (* Count driven below zero. *)
  Obs.emit obs (Obs.Rc_make { core = 1; oid = 9003; init = 0; label = lbl });
  Obs.emit obs (Obs.Rc_dec { core = 1; oid = 9003; label = lbl });
  let faults =
    List.map (fun (v : Check.rc_violation) -> v.Check.rv_fault)
      (Check.rc_violations chk)
  in
  let has f = List.mem f faults in
  Alcotest.(check bool) "freed while referenced" true
    (has (Check.Freed_referenced 2));
  Alcotest.(check bool) "double free" true (has Check.Double_free);
  Alcotest.(check bool) "inc after free" true (has Check.Inc_after_free);
  Alcotest.(check bool) "dec after free" true (has Check.Dec_after_free);
  Alcotest.(check bool) "negative count" true (has Check.Negative_count);
  Alcotest.(check int) "exactly the five injected faults" 5
    (List.length faults)

(* ------------------------------------------------------------------ *)
(* Checker mechanics                                                   *)

let test_detach_stops_observation () =
  let m = machine () in
  let chk = Check.attach m in
  let c0 = Machine.core m 0 in
  let cell = Cell.make ~label:"fixture:detach" c0 0 in
  Cell.write c0 cell 1;
  let n = Check.accesses chk in
  Alcotest.(check bool) "saw the write" true (n > 0);
  Check.detach chk;
  Cell.write c0 cell 2;
  Alcotest.(check int) "silent after detach" n (Check.accesses chk)

(* The ledger maintained from Rc_* events must agree with Refcache's own
   true count at every step, and a full lifecycle of a real Refcache
   object must produce zero violations. *)
let test_refcache_ledger_matches () =
  let m = machine ~epoch_cycles:10_000 () in
  let chk = Check.attach m in
  let rc = Refcache.create m in
  let c0 = Machine.core m 0 and c1 = Machine.core m 1 in
  let freed = ref 0 in
  let obj =
    Refcache.make_obj ~label:"fixture:obj" rc c0 ~init:1 ~free:(fun _ ->
        incr freed)
  in
  let oid = Refcache.oid obj in
  let agree msg =
    Alcotest.(check (option int))
      msg
      (Some (Refcache.true_count rc obj))
      (Check.rc_count chk ~oid)
  in
  agree "after make";
  Refcache.inc rc c1 obj;
  agree "after cross-core inc";
  Refcache.dec rc c0 obj;
  agree "after dec";
  Refcache.dec rc c1 obj;
  agree "at zero";
  Machine.drain m ~cycles:100_000;
  Alcotest.(check int) "freed exactly once" 1 !freed;
  Alcotest.(check (option int)) "ledger at zero" (Some 0)
    (Check.rc_count chk ~oid);
  Alcotest.(check int) "no violations over a correct lifecycle" 0
    (List.length (Check.rc_violations chk))

(* ------------------------------------------------------------------ *)
(* Acceptance: real workloads                                          *)

let get = function
  | Some chk -> chk
  | None -> Alcotest.fail "checker was not attached"

(* RadixVM on the disjoint-region microbenchmark: the paper's claim is
   that steady-state operations on disjoint regions access *no* shared
   cache lines. With the checker attached the claim becomes a test: over
   the measured window (sharing census reset at the warmup boundary,
   like the stats — node creation is a one-time handoff the steady-state
   claim excludes), no multi-writer line outside the documented
   allowlist; and over the whole run, no races, no stale TLB entries, no
   refcount violations, no lock-order cycles. *)
let test_radixvm_local_zero_sharing () =
  let chk = ref None in
  ignore
    (MB.local ~warmup:quick_warmup ~ncores:8 ~duration:quick_micro
       ~on_machine:(fun m -> chk := Some (Check.attach m))
       ~on_measure:(fun () -> Check.reset_window (get !chk))
       Radixvm.create);
  let chk = get !chk in
  Alcotest.(check bool) "events observed" true (Check.accesses chk > 0);
  (match Check.multi_writer_lines ~allow:Check.radixvm_allow chk with
  | [] -> ()
  | ls ->
      Alcotest.failf "lines written by several cores:@ %a"
        (Format.pp_print_list Check.pp_line_info)
        ls);
  Alcotest.(check int) "no races" 0 (List.length (Check.races chk));
  Alcotest.(check int) "no lock-order cycles" 0
    (List.length (Check.cycles chk));
  Alcotest.(check int) "no stale TLB entries" 0
    (List.length (Check.tlb_violations chk));
  Alcotest.(check int) "no refcount violations" 0
    (List.length (Check.rc_violations chk));
  Alcotest.(check bool) "verdict passes" true
    (Check.ok ~allow:Check.radixvm_allow chk)

(* A longer scripted RadixVM run with short epochs, so Refcache actually
   flushes and frees during the measured window. The allowlist must then
   be non-vacuous: epoch flushes write the shared interior nodes' counts
   from several cores ("radix:node"), and nothing else may be shared.
   This run also pins down conservation: the checker sees exactly the
   accesses the cost model charged, and shootdown rounds never target
   more cores than were interrupted. *)
let test_radixvm_scripted_epochs_and_conservation () =
  let ncores = 4 in
  let m = machine ~ncores ~epoch_cycles:10_000 () in
  let chk = Check.attach m in
  let vm = Radixvm.create m in
  let iters = ref 0 in
  for c = 0 to ncores - 1 do
    let core = Machine.core m c in
    let vpn = c * 4096 in
    let n = ref 0 in
    Machine.set_workload m c (fun () ->
        Radixvm.mmap vm core ~vpn ~npages:2 ();
        (match Radixvm.touch vm core ~vpn with
        | Vm.Vm_types.Ok -> ()
        | Vm.Vm_types.Segfault -> Alcotest.fail "unexpected segfault"
        | Vm.Vm_types.Oom -> Alcotest.fail "unexpected oom");
        ignore (Radixvm.touch vm core ~vpn:(vpn + 1));
        Radixvm.munmap vm core ~vpn ~npages:2;
        incr n;
        incr iters;
        !n < 200)
  done;
  (* Warmup phase: initial radix expansion (nodes are born with their
     lock bits held by the creating core — a one-time handoff). Then a
     fresh window for both the stats and the sharing census. *)
  Machine.run_for m ~cycles:50_000;
  Stats.reset (Machine.stats m);
  Check.reset_window chk;
  Machine.run m;
  Machine.drain m ~cycles:100_000;
  Alcotest.(check bool) "workload actually ran" true (!iters >= 200);
  (* Zero sharing, with the allowlist demonstrably needed. *)
  (match Check.multi_writer_lines ~allow:Check.radixvm_allow chk with
  | [] -> ()
  | ls ->
      Alcotest.failf "lines written by several cores:@ %a"
        (Format.pp_print_list Check.pp_line_info)
        ls);
  let node_census =
    List.find_opt
      (fun (c : Check.label_census) -> c.Check.lc_label = "radix:node")
      (Check.census chk)
  in
  (match node_census with
  | Some c ->
      Alcotest.(check bool) "epoch flushes shared the node counts" true
        (c.Check.lc_multi_writer >= 1)
  | None -> Alcotest.fail "no radix:node lines observed");
  Alcotest.(check int) "no races" 0 (List.length (Check.races chk));
  Alcotest.(check int) "no stale TLB entries" 0
    (List.length (Check.tlb_violations chk));
  Alcotest.(check int) "no refcount violations" 0
    (List.length (Check.rc_violations chk));
  (* Conservation: one event per charged access, no more, no less. *)
  let s = Machine.stats m in
  Alcotest.(check int) "event stream = cost model"
    (s.Stats.l1_hits + s.Stats.transfers_local + s.Stats.transfers_remote
   + s.Stats.dram_fills)
    (Check.accesses chk);
  Alcotest.(check bool) "targets >= shootdown rounds" true
    (s.Stats.shootdown_targets >= s.Stats.shootdown_events)

(* The baselines run the identical disjoint workload and must show real
   sharing — otherwise the zero-sharing verifier proves nothing. *)
let baseline_shares name run expect_label =
  let chk = ref None in
  ignore (run (fun m -> chk := Some (Check.attach m)));
  let chk = get !chk in
  let shared = Check.multi_writer_lines chk in
  Alcotest.(check bool) (name ^ " shares lines") true (shared <> []);
  Alcotest.(check bool)
    (name ^ " shares " ^ expect_label)
    true
    (List.exists
       (fun (li : Check.line_info) -> li.Check.li_label = expect_label)
       shared)

let test_linux_local_shares () =
  baseline_shares "linux"
    (fun on_machine ->
      MB_linux.local ~warmup:quick_warmup ~ncores:8 ~duration:quick_micro
        ~on_machine Baselines.Linux_vm.create)
    "linux:aslock"

let test_bonsai_local_shares () =
  baseline_shares "bonsai"
    (fun on_machine ->
      MB_bonsai.local ~warmup:quick_warmup ~ncores:8 ~duration:quick_micro
        ~on_machine Baselines.Bonsai_vm.create)
    "bonsai:aslock"

(* ------------------------------------------------------------------ *)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "check"
    [
      ( "fixtures",
        [
          tc "racy counter detected" `Quick test_race_fires;
          tc "locked counter silent" `Quick test_race_silent_under_lock;
          tc "AB/BA cycle detected" `Quick test_lock_order_cycle_fires;
          tc "consistent order silent" `Quick
            test_lock_order_silent_when_consistent;
          tc "stale TLB detected" `Quick test_stale_tlb_fires;
          tc "refcount misuse detected" `Quick test_rc_violations_fire;
        ] );
      ( "mechanics",
        [
          tc "detach stops observation" `Quick test_detach_stops_observation;
          tc "ledger matches refcache" `Quick test_refcache_ledger_matches;
        ] );
      ( "acceptance",
        [
          tc "radixvm local: zero sharing" `Quick
            test_radixvm_local_zero_sharing;
          tc "radixvm scripted: epochs + conservation" `Quick
            test_radixvm_scripted_epochs_and_conservation;
          tc "linux local: shares" `Quick test_linux_local_shares;
          tc "bonsai local: shares" `Quick test_bonsai_local_shares;
        ] );
    ]
