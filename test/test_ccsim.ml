(* Tests for the cache-coherent machine simulator. *)

open Ccsim

let small_params ?(ncores = 8) () = Params.default ~ncores ()
let machine ?ncores () = Machine.create (small_params ?ncores ())

(* ------------------------------------------------------------------ *)
(* Bitset                                                              *)

let test_bitset_basic () =
  let b = Bitset.create 100 in
  Alcotest.(check bool) "empty" true (Bitset.is_empty b);
  Bitset.add b 0;
  Bitset.add b 63;
  Bitset.add b 64;
  Bitset.add b 99;
  Alcotest.(check int) "cardinal" 4 (Bitset.cardinal b);
  Alcotest.(check bool) "mem 63" true (Bitset.mem b 63);
  Alcotest.(check bool) "mem 64" true (Bitset.mem b 64);
  Alcotest.(check bool) "not mem 1" false (Bitset.mem b 1);
  Alcotest.(check (list int)) "elements" [ 0; 63; 64; 99 ] (Bitset.elements b);
  Bitset.remove b 63;
  Alcotest.(check bool) "removed" false (Bitset.mem b 63);
  Alcotest.(check (option int)) "choose" (Some 0) (Bitset.choose b);
  Bitset.clear b;
  Alcotest.(check bool) "cleared" true (Bitset.is_empty b)

let test_bitset_bounds () =
  let b = Bitset.create 10 in
  Alcotest.check_raises "add oob" (Invalid_argument "Bitset: index out of range")
    (fun () -> Bitset.add b 10);
  Alcotest.check_raises "neg" (Invalid_argument "Bitset: index out of range")
    (fun () -> ignore (Bitset.mem b (-1)))

let test_bitset_union () =
  let a = Bitset.create 70 and b = Bitset.create 70 in
  Bitset.add a 1;
  Bitset.add b 65;
  Bitset.union_into ~dst:a b;
  Alcotest.(check (list int)) "union" [ 1; 65 ] (Bitset.elements a)

let bitset_model =
  QCheck.Test.make ~name:"bitset matches set model" ~count:300
    QCheck.(list (pair (int_bound 99) bool))
    (fun ops ->
      let b = Bitset.create 100 in
      let m = Hashtbl.create 16 in
      List.iter
        (fun (i, add) ->
          if add then begin
            Bitset.add b i;
            Hashtbl.replace m i ()
          end
          else begin
            Bitset.remove b i;
            Hashtbl.remove m i
          end)
        ops;
      let model = List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) m []) in
      Bitset.elements b = model && Bitset.cardinal b = List.length model)

(* The query surface the line-directory miss path depends on — [mem],
   [iter]/[fold] order, [exists_other], [mem_range_other] — against the
   same naive model. The 32-bit word split and the mask arithmetic of the
   range query are exactly the kind of code an off-by-one slips into. *)
let bitset_query_model =
  QCheck.Test.make ~name:"bitset queries match set model" ~count:300
    QCheck.(
      pair
        (list (pair (int_bound 99) bool))
        (pair (int_bound 99) (pair (int_bound 100) (int_bound 100))))
    (fun (ops, (probe, (r1, r2))) ->
      let b = Bitset.create 100 in
      let m = Hashtbl.create 16 in
      List.iter
        (fun (i, add) ->
          if add then begin
            Bitset.add b i;
            Hashtbl.replace m i ()
          end
          else begin
            Bitset.remove b i;
            Hashtbl.remove m i
          end)
        ops;
      let model = List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) m []) in
      let mem_ok =
        List.for_all (fun i -> Bitset.mem b i = Hashtbl.mem m i)
          (List.init 100 Fun.id)
      in
      let iter_ok =
        let seen = ref [] in
        Bitset.iter (fun i -> seen := i :: !seen) b;
        List.rev !seen = model
      in
      let fold_ok = Bitset.fold (fun _ n -> n + 1) b 0 = List.length model in
      let exists_other_ok =
        Bitset.exists_other b probe = List.exists (fun i -> i <> probe) model
      in
      let lo = min r1 r2 and hi = max r1 r2 in
      let range_ok =
        Bitset.mem_range_other b ~lo ~hi probe
        = List.exists (fun i -> i >= lo && i < hi && i <> probe) model
      in
      mem_ok && iter_ok && fold_ok && exists_other_ok && range_ok)

(* ------------------------------------------------------------------ *)
(* Cache-line cost model                                               *)

let test_private_line_is_cheap () =
  let m = machine () in
  let c = Machine.core m 0 in
  let cell = Cell.make c 0 in
  Cell.write c cell 1;
  (* first access: DRAM *)
  let t0 = Core.now c in
  for i = 2 to 100 do
    Cell.write c cell i
  done;
  let per_op = (Core.now c - t0) / 99 in
  Alcotest.(check int)
    "private writes cost an L1 hit"
    (Machine.params m).Params.l1_hit per_op

let test_contended_line_serializes () =
  let m = machine () in
  let a = Machine.core m 0 and b = Machine.core m 1 in
  let cell = Cell.make a 0 in
  (* Alternating writers: each write must transfer the line and queue. *)
  for _ = 1 to 10 do
    Cell.write a cell 1;
    Cell.write b cell 2
  done;
  let p = Machine.params m in
  (* Both cores were forced to at least 19 transfers' worth of time. *)
  let elapsed = max (Core.now a) (Core.now b) in
  Alcotest.(check bool)
    "serialized beyond 19 transfers" true
    (elapsed >= 19 * p.Params.local_transfer);
  Alcotest.(check bool)
    "stall cycles recorded" true
    ((Machine.stats m).Stats.line_stall_cycles > 0)

let test_read_sharing_caches () =
  let m = machine () in
  let a = Machine.core m 0 and b = Machine.core m 1 in
  let cell = Cell.make a 42 in
  ignore (Cell.read a cell);
  ignore (Cell.read b cell);
  let s = Machine.stats m in
  let before = Stats.total_transfers s + s.Stats.dram_fills in
  (* Re-reads by both sharers are now L1 hits. *)
  ignore (Cell.read a cell);
  ignore (Cell.read b cell);
  Alcotest.(check int)
    "no new transfers" before
    (Stats.total_transfers s + s.Stats.dram_fills);
  Alcotest.(check bool) "hits counted" true (s.Stats.l1_hits >= 2)

let test_write_invalidates_sharers () =
  let m = machine () in
  let a = Machine.core m 0 and b = Machine.core m 1 in
  let cell = Cell.make a 0 in
  ignore (Cell.read a cell);
  ignore (Cell.read b cell);
  Cell.write a cell 7;
  Alcotest.(check (option int)) "a owns" (Some 0) (Line.holder (Cell.line cell));
  Alcotest.(check (list int)) "no sharers" [] (Line.sharers (Cell.line cell));
  (* b must re-fetch. *)
  let s = Machine.stats m in
  let before = Stats.total_transfers s in
  Alcotest.(check int) "b rereads value" 7 (Cell.read b cell);
  Alcotest.(check bool) "transfer happened" true (Stats.total_transfers s > before)

let test_cas_semantics () =
  let m = machine () in
  let a = Machine.core m 0 in
  let cell = Cell.make a 5 in
  Alcotest.(check bool) "cas ok" true (Cell.cas a cell ~expect:5 ~update:9);
  Alcotest.(check bool) "cas fail" false (Cell.cas a cell ~expect:5 ~update:1);
  Alcotest.(check int) "value" 9 (Cell.peek cell);
  Alcotest.(check int) "fetch_add returns old" 9 (Cell.fetch_add a cell 3);
  Alcotest.(check int) "added" 12 (Cell.peek cell)

(* ------------------------------------------------------------------ *)
(* Locks                                                               *)

let test_lock_serializes () =
  let m = machine () in
  let a = Machine.core m 0 and b = Machine.core m 1 in
  let lock = Lock.create a in
  Lock.acquire a lock;
  Core.tick a 10_000;
  Lock.release a lock;
  let release_time = Core.now a in
  (* b, logically earlier, must wait until a's release. *)
  Lock.acquire b lock;
  Alcotest.(check bool) "b waited" true (Core.now b >= release_time);
  Lock.release b lock;
  Alcotest.(check bool)
    "contention counted" true
    ((Machine.stats m).Stats.lock_contended >= 1)

let test_try_acquire () =
  let m = machine () in
  let a = Machine.core m 0 and b = Machine.core m 1 in
  let lock = Lock.create a in
  Lock.acquire a lock;
  Core.tick a 10_000;
  Lock.release a lock;
  Alcotest.(check bool) "b try fails while busy" false (Lock.try_acquire b lock);
  Core.tick b 20_000;
  Alcotest.(check bool) "b try succeeds later" true (Lock.try_acquire b lock)

let test_rwlock_readers_concurrent () =
  let m = machine () in
  let a = Machine.core m 0 and b = Machine.core m 1 in
  let rw = Rwlock.create a in
  Rwlock.read_acquire a rw;
  Core.tick a 50_000;
  (* b can read while a holds the read lock: no wait to a's release. *)
  Rwlock.read_acquire b rw;
  Alcotest.(check bool) "no long reader wait" true (Core.now b < 10_000);
  Rwlock.read_release b rw;
  Rwlock.read_release a rw;
  (* but a writer waits for the last reader *)
  let c = Machine.core m 2 in
  Rwlock.write_acquire c rw;
  Alcotest.(check bool) "writer waited for readers" true (Core.now c >= 50_000);
  Rwlock.write_release c rw

let test_rwlock_writer_blocks_readers () =
  let m = machine () in
  let a = Machine.core m 0 and b = Machine.core m 1 in
  let rw = Rwlock.create a in
  Rwlock.write_acquire a rw;
  Core.tick a 30_000;
  Rwlock.write_release a rw;
  Rwlock.read_acquire b rw;
  Alcotest.(check bool) "reader waited" true (Core.now b >= 30_000);
  Rwlock.read_release b rw

(* ------------------------------------------------------------------ *)
(* TLB                                                                 *)

let pfn_of = function Some e -> Some e.Tlb.pfn | None -> None

let test_tlb_basic () =
  let t = Tlb.create ~capacity:4 () in
  Tlb.insert t ~vpn:1 ~pfn:100 ~writable:true;
  Tlb.insert t ~vpn:2 ~pfn:200 ~writable:false;
  Alcotest.(check (option int)) "hit" (Some 100) (pfn_of (Tlb.lookup t 1));
  Alcotest.(check (option int)) "miss" None (pfn_of (Tlb.lookup t 9));
  (match Tlb.lookup t 2 with
  | Some e -> Alcotest.(check bool) "permission kept" false e.Tlb.writable
  | None -> Alcotest.fail "entry 2 missing");
  Tlb.invalidate t 1;
  Alcotest.(check (option int)) "invalidated" None (pfn_of (Tlb.lookup t 1))

let test_tlb_capacity_fifo () =
  let t = Tlb.create ~capacity:3 () in
  for v = 1 to 3 do
    Tlb.insert t ~vpn:v ~pfn:v ~writable:true
  done;
  Tlb.insert t ~vpn:4 ~pfn:4 ~writable:true;
  Alcotest.(check int) "bounded" 3 (Tlb.size t);
  Alcotest.(check (option int)) "oldest evicted" None (pfn_of (Tlb.lookup t 1));
  Alcotest.(check (option int)) "newest present" (Some 4) (pfn_of (Tlb.lookup t 4))

let test_tlb_range_and_flush () =
  let t = Tlb.create ~capacity:16 () in
  for v = 0 to 9 do
    Tlb.insert t ~vpn:v ~pfn:v ~writable:true
  done;
  Tlb.invalidate_range t ~lo:3 ~hi:7;
  Alcotest.(check int) "range removed" 6 (Tlb.size t);
  Alcotest.(check bool) "3 gone" false (Tlb.mem t 3);
  Alcotest.(check bool) "7 stays" true (Tlb.mem t 7);
  Tlb.flush t;
  Alcotest.(check int) "flushed" 0 (Tlb.size t)

let test_tlb_reinsert_after_evict () =
  let t = Tlb.create ~capacity:2 () in
  Tlb.insert t ~vpn:1 ~pfn:1 ~writable:true;
  Tlb.insert t ~vpn:1 ~pfn:5 ~writable:true;
  Alcotest.(check (option int)) "replaced" (Some 5) (pfn_of (Tlb.lookup t 1));
  Alcotest.(check int) "no duplicate" 1 (Tlb.size t)

(* Invalidation leaves stale vpns in the FIFO; eviction must still fire
   in insertion order of the *live* entries, skipping the stale ones. *)
let test_tlb_fifo_order_with_invalidations () =
  let t = Tlb.create ~capacity:4 () in
  for v = 1 to 4 do
    Tlb.insert t ~vpn:v ~pfn:v ~writable:true
  done;
  Tlb.invalidate t 2;
  (* Live order is now 1, 3, 4; one slot is free again. *)
  Tlb.insert t ~vpn:5 ~pfn:5 ~writable:true;
  Alcotest.(check bool) "below capacity: no eviction" true (Tlb.mem t 1);
  Tlb.insert t ~vpn:6 ~pfn:6 ~writable:true;
  Alcotest.(check bool) "oldest live (1) evicted" false (Tlb.mem t 1);
  Alcotest.(check bool) "3 survives" true (Tlb.mem t 3);
  Tlb.insert t ~vpn:7 ~pfn:7 ~writable:true;
  (* 2 is stale: eviction skips it and takes 3, the next live entry. *)
  Alcotest.(check bool) "stale 2 skipped, 3 evicted" false (Tlb.mem t 3);
  Alcotest.(check bool) "4 survives" true (Tlb.mem t 4);
  Alcotest.(check int) "at capacity" 4 (Tlb.size t)

(* An munmap-heavy workload invalidates far more than it evicts. The
   FIFO must not accumulate the stale vpns: compaction keeps it within
   twice the capacity (plus the entry being processed). *)
let test_tlb_queue_bounded_under_churn () =
  let cap = 8 in
  let t = Tlb.create ~capacity:cap () in
  let max_qlen = ref 0 in
  for i = 0 to 9_999 do
    Tlb.insert t ~vpn:i ~pfn:i ~writable:true;
    if i mod 3 <> 0 then Tlb.invalidate t i;
    max_qlen := max !max_qlen (Tlb.queue_length t)
  done;
  Alcotest.(check bool)
    (Printf.sprintf "queue bounded (max observed %d)" !max_qlen)
    true
    (!max_qlen <= (2 * cap) + 1);
  Alcotest.(check bool) "live entries bounded" true (Tlb.size t <= cap)

let test_tlb_invalidate_range_paths () =
  (* Narrow range: the per-vpn loop path. *)
  let t = Tlb.create ~capacity:64 () in
  for v = 0 to 31 do
    Tlb.insert t ~vpn:v ~pfn:v ~writable:true
  done;
  Tlb.invalidate_range t ~lo:4 ~hi:8;
  Alcotest.(check int) "narrow range removed" 28 (Tlb.size t);
  for v = 4 to 7 do
    Alcotest.(check bool) "narrow: gone" false (Tlb.mem t v)
  done;
  (* Wide range (>= live count): the table-scan path. *)
  Tlb.invalidate_range t ~lo:0 ~hi:1_000_000;
  Alcotest.(check int) "wide range removed all" 0 (Tlb.size t);
  (* Surviving entries still evict in order after a range invalidation. *)
  let t2 = Tlb.create ~capacity:4 () in
  for v = 0 to 3 do
    Tlb.insert t2 ~vpn:v ~pfn:v ~writable:true
  done;
  Tlb.invalidate_range t2 ~lo:0 ~hi:2;
  Tlb.insert t2 ~vpn:10 ~pfn:10 ~writable:true;
  Tlb.insert t2 ~vpn:11 ~pfn:11 ~writable:true;
  Tlb.insert t2 ~vpn:12 ~pfn:12 ~writable:true;
  (* 2 was the oldest live entry; inserting past capacity evicts it. *)
  Alcotest.(check bool) "post-range eviction order" false (Tlb.mem t2 2);
  Alcotest.(check bool) "3 survives" true (Tlb.mem t2 3)

(* ------------------------------------------------------------------ *)
(* Process-global id counters: two domains allocating concurrently must
   never observe the same id. *)

let test_fresh_ids_domain_safe () =
  let n = 10_000 in
  let alloc fresh () = List.init n (fun _ -> fresh ()) in
  let check_disjoint name fresh =
    let d = Domain.spawn (alloc fresh) in
    let mine = alloc fresh () in
    let theirs = Domain.join d in
    let seen = Hashtbl.create (4 * n) in
    List.iter
      (fun id ->
        if Hashtbl.mem seen id then
          Alcotest.failf "%s: id %d allocated twice" name id;
        Hashtbl.add seen id ())
      (mine @ theirs);
    Alcotest.(check int)
      (name ^ ": all distinct")
      (2 * n) (Hashtbl.length seen)
  in
  check_disjoint "line ids" Obs.fresh_line_id;
  check_disjoint "lock ids" Obs.fresh_lock_id;
  check_disjoint "asids" Obs.fresh_asid

(* ------------------------------------------------------------------ *)
(* Physical memory                                                     *)

let test_physmem_alloc_free () =
  let m = machine () in
  let a = Machine.core m 0 in
  let pm = Machine.physmem m in
  let f1 = Physmem.alloc pm a in
  let f2 = Physmem.alloc pm a in
  Alcotest.(check bool) "distinct" true (f1 <> f2);
  Alcotest.(check int) "live" 2 (Physmem.live_frames pm);
  Physmem.free pm a f1;
  Alcotest.(check int) "live after free" 1 (Physmem.live_frames pm);
  let f3 = Physmem.alloc pm a in
  Alcotest.(check int) "frame recycled" f1 f3

let test_physmem_remote_free_goes_home () =
  let m = machine () in
  let a = Machine.core m 0 and b = Machine.core m 1 in
  let pm = Machine.physmem m in
  let f = Physmem.alloc pm a in
  Physmem.free pm b f;
  (* Home is core 0: core 0 reallocates it; core 1 gets a fresh frame. *)
  let fb = Physmem.alloc pm b in
  Alcotest.(check bool) "b does not reuse a's frame" true (fb <> f);
  let fa = Physmem.alloc pm a in
  Alcotest.(check int) "a reuses its frame" f fa

let test_physmem_zero_cost () =
  let m = machine () in
  let a = Machine.core m 0 in
  let t0 = Core.now a in
  ignore (Physmem.alloc (Machine.physmem m) a);
  Alcotest.(check bool)
    "alloc charges zeroing" true
    (Core.now a - t0 >= (Machine.params m).Params.page_zero)

(* ------------------------------------------------------------------ *)
(* Machine scheduler                                                   *)

let test_scheduler_runs_in_time_order () =
  let m = machine ~ncores:4 () in
  let order = ref [] in
  for i = 0 to 3 do
    let core = Machine.core m i in
    (* Different step costs: completion times interleave. *)
    let remaining = ref 3 in
    Machine.set_workload m i (fun () ->
        order := (i, Core.now core) :: !order;
        Core.tick core ((i + 1) * 100);
        decr remaining;
        !remaining > 0)
  done;
  Machine.run m;
  let times = List.rev_map snd !order in
  (* The scheduler picked the min-clock core each time, so observation
     times are non-decreasing. *)
  let sorted = List.sort compare times in
  Alcotest.(check (list int)) "time ordered" sorted times

let test_run_for_horizon () =
  let m = machine ~ncores:2 () in
  let iters = ref 0 in
  for i = 0 to 1 do
    let core = Machine.core m i in
    Machine.set_workload m i (fun () ->
        incr iters;
        Core.tick core 1000;
        true)
  done;
  Machine.run_for m ~cycles:100_000;
  Alcotest.(check bool) "ran about 200 iters" true (!iters >= 190 && !iters <= 210)

let test_run_for_horizon_edges () =
  let m = machine ~ncores:2 () in
  let iters = ref 0 in
  for i = 0 to 1 do
    let core = Machine.core m i in
    Machine.set_workload m i (fun () ->
        incr iters;
        Core.tick core 1_000;
        true)
  done;
  (* A zero horizon retires every core before its first step. *)
  Machine.run_for m ~cycles:0;
  Alcotest.(check int) "zero horizon runs nothing" 0 !iters;
  (* Cores step while strictly before the horizon, so a 1-cycle horizon
     admits exactly one step per core. *)
  Machine.run_for m ~cycles:1;
  Alcotest.(check int) "one step per core" 2 !iters;
  (* Workloads stay installed: a later call with a larger horizon resumes
     from where the cores stopped, not from zero. *)
  Machine.run_for m ~cycles:100_000;
  Alcotest.(check int) "resumed to the larger horizon" 200 !iters;
  Alcotest.(check bool) "clocks at the horizon" true (Machine.elapsed m >= 100_000)

let test_maintenance_fires_per_core () =
  let m = machine ~ncores:3 () in
  let fired = Array.make 3 0 in
  Machine.add_maintenance m ~period:10_000 (fun core ->
      fired.(core.Core.id) <- fired.(core.Core.id) + 1);
  for i = 0 to 2 do
    let core = Machine.core m i in
    Machine.set_workload m i (fun () ->
        Core.tick core 500;
        Core.now core < 100_000)
  done;
  Machine.run m;
  Array.iteri
    (fun i n ->
      Alcotest.(check bool)
        (Printf.sprintf "core %d fired ~10 times" i)
        true
        (n >= 9 && n <= 11))
    fired

let test_drain_advances_maintenance () =
  let m = machine ~ncores:2 () in
  let fired = ref 0 in
  Machine.add_maintenance m ~period:5_000 (fun _ -> incr fired);
  Machine.drain m ~cycles:50_000;
  (* 2 cores x 10 periods *)
  Alcotest.(check bool) "about 20 firings" true (!fired >= 18 && !fired <= 22)

let test_drain_horizon_edges () =
  let m = machine ~ncores:2 () in
  let fired = ref 0 in
  Machine.add_maintenance m ~period:5_000 (fun _ -> incr fired);
  (* A zero-cycle drain fires nothing: the first hook is strictly in the
     future. *)
  Machine.drain m ~cycles:0;
  Alcotest.(check int) "zero drain fires nothing" 0 !fired;
  (* The target boundary is inclusive: draining exactly to the period
     fires core 0's hook (first firings are staggered per core, so core
     1's lands a fraction of a period later), and time lands on the
     target. *)
  Machine.drain m ~cycles:5_000;
  Alcotest.(check int) "boundary hook fired on core 0" 1 !fired;
  Alcotest.(check int) "time advanced to the target" 5_000 (Machine.elapsed m);
  (* Draining past the stagger picks up core 1's first firing too. *)
  Machine.drain m ~cycles:2_000;
  Alcotest.(check int) "staggered hook fired on core 1" 2 !fired;
  Alcotest.(check int) "time at the second target" 7_000 (Machine.elapsed m)

(* ------------------------------------------------------------------ *)
(* IPIs                                                                *)

let test_ipi_waits_for_acks () =
  let m = machine () in
  let a = Machine.core m 0 in
  let p = Machine.params m in
  Ipi.multicast m a ~targets:[ 1; 2; 3 ];
  Alcotest.(check bool)
    "sender waited for handler acks" true
    (Core.now a >= p.Params.ipi_deliver + p.Params.ipi_handler);
  Alcotest.(check int) "3 ipis" 3 (Machine.stats m).Stats.ipis;
  (* Targets carry pending handler costs. *)
  Alcotest.(check int)
    "target charged"
    p.Params.ipi_handler
    (Machine.core m 1).Core.pending_intr

let test_ipi_channel_serializes_senders () =
  let m = machine () in
  let a = Machine.core m 0 and b = Machine.core m 1 in
  Ipi.multicast m a ~targets:[ 2 ];
  Ipi.multicast m b ~targets:[ 3 ];
  let p = Machine.params m in
  (* b's send queued behind a's interconnect occupancy, then paid its own
     full send + delivery + handler-ack wait. *)
  Alcotest.(check bool)
    "second sender delayed" true
    (Core.now b
    >= p.Params.ipi_channel + p.Params.ipi_send + p.Params.ipi_deliver
       + p.Params.ipi_handler)

let test_ipi_sender_serial_per_target () =
  let m = machine () in
  let a = Machine.core m 0 in
  let p = Machine.params m in
  (* Broadcast to 6 targets: the sender's APIC protocol is serial per
     target, so the sender is busy at least 6 * ipi_send cycles. *)
  Ipi.multicast m a ~targets:[ 1; 2; 3; 4; 5; 6 ];
  Alcotest.(check bool)
    "sender serial cost" true
    (Core.now a >= 6 * p.Params.ipi_send)

let test_ipi_self_skip () =
  let m = machine () in
  let a = Machine.core m 0 in
  Ipi.multicast m a ~targets:[ 0 ];
  Alcotest.(check int) "no self ipi" 0 (Machine.stats m).Stats.ipis

(* ------------------------------------------------------------------ *)
(* Channels                                                            *)

let test_channel_delivery_time () =
  let m = machine () in
  let a = Machine.core m 0 and b = Machine.core m 1 in
  let ch = Channel.create a in
  Core.tick a 5_000;
  Channel.send a ch 42;
  (* b is logically at time ~0, but the queue's cache line is busy until
     the send completes: b's receive stalls past the send time. *)
  Alcotest.(check (option int)) "delivered" (Some 42) (Channel.recv b ch);
  Alcotest.(check bool) "receive not before send" true (Core.now b >= 5_000);
  Alcotest.(check (option int)) "drained" None (Channel.recv b ch)

let test_channel_fifo () =
  let m = machine () in
  let a = Machine.core m 0 and b = Machine.core m 1 in
  let ch = Channel.create a in
  Channel.send a ch 1;
  Channel.send a ch 2;
  Core.tick b 1_000;
  Alcotest.(check (option int)) "first" (Some 1) (Channel.recv b ch);
  Alcotest.(check (option int)) "second" (Some 2) (Channel.recv b ch)

(* ------------------------------------------------------------------ *)
(* Stats conservation: every charged access lands in exactly one of the
   four coherence counters, and the checker sees exactly one event for
   it, so the counter sum must equal the checker's access count. *)

let test_stats_conservation () =
  let m = machine ~ncores:4 () in
  let chk = Check.attach m in
  let a = Machine.core m 0 and b = Machine.core m 1 in
  let l = Line.create ~label:"t" a.Core.params a.Core.stats ~home_socket:0 in
  let c = Cell.make a 0 in
  let lk = Lock.create a in
  (* A hand-picked mix: DRAM fills, local/remote transfers, L1 hits,
     atomics, and lock traffic (whose internal write is quiet but whose
     acquire/release events stand in for it one-for-one). *)
  Line.read a l;
  Line.read a l;
  Line.write b l;
  Line.read a l;
  Line.write_atomic a l;
  Cell.write a c 1;
  ignore (Cell.read b c);
  ignore (Cell.fetch_add b c 1);
  Lock.acquire a lk;
  Lock.release a lk;
  Lock.acquire b lk;
  Lock.release b lk;
  let s = Machine.stats m in
  Alcotest.(check int) "sum of coherence counters = observed accesses"
    (Check.accesses chk)
    (s.Stats.l1_hits + s.Stats.transfers_local + s.Stats.transfers_remote
   + s.Stats.dram_fills);
  Alcotest.(check bool) "nonzero work" true (Check.accesses chk > 0)

(* ------------------------------------------------------------------ *)

(* Random op sequences against a naive model that mirrors the TLB's
   replacement scheme directly: a live map plus an *uncompacted* ring of
   every insertion (duplicates and stale entries included). Eviction pops
   the ring until it removes a live vpn — note that a vpn re-inserted
   after invalidation is revived at its old ring position, so its
   eviction age spans the invalidation; a plain first-insert FIFO list is
   *not* a correct model. Because the model never compacts while the real
   TLB does, contents agreement is exactly the claim that compaction
   preserves eviction order. The queue-length bound is also asserted
   after every op: invalidation compacts the ring back to the live set
   once it passes twice the capacity, and at most [capacity] insert-only
   pushes fit between invalidations, so it stays below 3 * capacity. *)
let tlb_model =
  let cap = 8 in
  let universe = 3 * cap in
  QCheck.Test.make ~name:"tlb matches fifo model" ~count:300
    QCheck.(
      list_of_size Gen.(int_range 1 120)
        (tup3 (int_bound 9) (int_bound (universe - 1)) (int_bound (universe - 1))))
    (fun ops ->
      let t = Tlb.create ~capacity:cap () in
      let live = Hashtbl.create 16 in
      let ring = ref [] in  (* oldest first *)
      let ok = ref true in
      List.iter
        (fun (tag, a, b) ->
          (match tag with
          | 0 | 1 | 2 | 3 | 4 | 5 ->
              (* insert: value derived from the op so updates are visible *)
              let pfn = (a * 7) + b and writable = b land 1 = 1 in
              Tlb.insert t ~vpn:a ~pfn ~writable;
              if Hashtbl.mem live a then Hashtbl.replace live a (pfn, writable)
              else begin
                if Hashtbl.length live >= cap then begin
                  let rec evict = function
                    | [] -> []
                    | v :: rest ->
                        if Hashtbl.mem live v then begin
                          Hashtbl.remove live v;
                          rest
                        end
                        else evict rest
                  in
                  ring := evict !ring
                end;
                Hashtbl.replace live a (pfn, writable);
                ring := !ring @ [ a ]
              end
          | 6 | 7 ->
              Tlb.invalidate t a;
              Hashtbl.remove live a
          | 8 ->
              let lo = min a b and hi = max a b in
              Tlb.invalidate_range t ~lo ~hi;
              for vpn = lo to hi - 1 do
                Hashtbl.remove live vpn
              done
          | _ ->
              Tlb.flush t;
              Hashtbl.reset live;
              ring := []);
          if Tlb.size t <> Hashtbl.length live then ok := false;
          if Tlb.queue_length t >= 3 * cap then ok := false)
        ops;
      let lookups_agree =
        List.for_all
          (fun vpn ->
            match (Tlb.lookup t vpn, Hashtbl.find_opt live vpn) with
            | None, None -> true
            | Some e, Some (pfn, writable) ->
                e.Tlb.pfn = pfn && e.Tlb.writable = writable
            | _ -> false)
          (List.init universe Fun.id)
      in
      !ok && lookups_agree)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "ccsim"
    [
      ( "bitset",
        [
          tc "basic" `Quick test_bitset_basic;
          tc "bounds" `Quick test_bitset_bounds;
          tc "union" `Quick test_bitset_union;
          QCheck_alcotest.to_alcotest bitset_model;
          QCheck_alcotest.to_alcotest bitset_query_model;
        ] );
      ( "line",
        [
          tc "private line cheap" `Quick test_private_line_is_cheap;
          tc "contended line serializes" `Quick test_contended_line_serializes;
          tc "read sharing caches" `Quick test_read_sharing_caches;
          tc "write invalidates" `Quick test_write_invalidates_sharers;
          tc "cas semantics" `Quick test_cas_semantics;
        ] );
      ( "lock",
        [
          tc "serializes" `Quick test_lock_serializes;
          tc "try acquire" `Quick test_try_acquire;
          tc "rwlock readers" `Quick test_rwlock_readers_concurrent;
          tc "rwlock writer" `Quick test_rwlock_writer_blocks_readers;
        ] );
      ( "tlb",
        [
          tc "basic" `Quick test_tlb_basic;
          tc "capacity fifo" `Quick test_tlb_capacity_fifo;
          tc "range and flush" `Quick test_tlb_range_and_flush;
          tc "reinsert" `Quick test_tlb_reinsert_after_evict;
          tc "fifo order with invalidations" `Quick
            test_tlb_fifo_order_with_invalidations;
          tc "queue bounded under churn" `Quick
            test_tlb_queue_bounded_under_churn;
          QCheck_alcotest.to_alcotest tlb_model;
          tc "invalidate_range paths" `Quick test_tlb_invalidate_range_paths;
        ] );
      ( "ids",
        [ tc "domain-safe counters" `Quick test_fresh_ids_domain_safe ] );
      ( "physmem",
        [
          tc "alloc free" `Quick test_physmem_alloc_free;
          tc "remote free home" `Quick test_physmem_remote_free_goes_home;
          tc "zero cost" `Quick test_physmem_zero_cost;
        ] );
      ( "machine",
        [
          tc "time order" `Quick test_scheduler_runs_in_time_order;
          tc "run_for horizon" `Quick test_run_for_horizon;
          tc "run_for edges" `Quick test_run_for_horizon_edges;
          tc "maintenance" `Quick test_maintenance_fires_per_core;
          tc "drain" `Quick test_drain_advances_maintenance;
          tc "drain edges" `Quick test_drain_horizon_edges;
        ] );
      ( "ipi",
        [
          tc "waits for acks" `Quick test_ipi_waits_for_acks;
          tc "channel serializes" `Quick test_ipi_channel_serializes_senders;
          tc "sender serial" `Quick test_ipi_sender_serial_per_target;
          tc "self skip" `Quick test_ipi_self_skip;
        ] );
      ( "conservation",
        [ tc "counters sum to accesses" `Quick test_stats_conservation ] );
      ( "channel",
        [
          tc "delivery time" `Quick test_channel_delivery_time;
          tc "fifo" `Quick test_channel_fifo;
        ] );
    ]
