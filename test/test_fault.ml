(* Tests for the fault-injection layer: each injected fault kind at its
   source (frame budget, forced lock timeouts, perturbed IPI
   acknowledgment, mid-operation aborts), graceful degradation through the
   VM stack and the kernel's errno surface, the known-bad rollback escape
   hatch (the leak checkers must catch it), and the fuzzer's determinism
   and oracle. *)

open Ccsim
module T = Vm.Vm_types
module R = Vm.Radixvm.Default
module K = Os.Kernel

let epoch = 10_000

let machine ?(ncores = 4) () =
  Machine.create (Params.default ~ncores ~epoch_cycles:epoch ())

let plan_on ?(seed = 0) m =
  let p = Fault.create ~seed () in
  Machine.set_fault m (Some p);
  p

let live m = Physmem.live_frames (Machine.physmem m)

let access_t = Alcotest.testable T.pp_access_result ( = )
let vm_error_t = Alcotest.testable T.pp_vm_error ( = )
let result_vm = Alcotest.(result access_t vm_error_t)

let pp_result_vm ppf = function
  | Ok a -> T.pp_access_result ppf a
  | Error e -> T.pp_vm_error ppf e

(* ------------------------------------------------------------------ *)
(* Physmem: frame budget and double-free                               *)

let test_frame_budget () =
  let m = machine () in
  let plan = plan_on m in
  let pm = Machine.physmem m and c0 = Machine.core m 0 in
  Fault.set_frame_budget plan (Some 2);
  let f0 = Physmem.alloc pm c0 in
  let f1 = Physmem.alloc pm c0 in
  (match Physmem.alloc pm c0 with
  | _ -> Alcotest.fail "third alloc under a budget of 2 succeeded"
  | exception Physmem.Out_of_frames -> ());
  Alcotest.(check (option int)) "try_alloc refuses" None (Physmem.try_alloc pm c0);
  Alcotest.(check int) "refusals counted" 2 (Fault.injected_oom plan);
  (* The budget caps live frames, not total allocations: freeing makes
     room. *)
  Physmem.free pm c0 f0;
  let f2 = Physmem.alloc pm c0 in
  Alcotest.(check int) "still two live" 2 (live m);
  (* Lifting the budget restores unbounded memory. *)
  Fault.set_frame_budget plan None;
  let f3 = Physmem.alloc pm c0 in
  List.iter (Physmem.free pm c0) [ f1; f2; f3 ];
  Alcotest.(check int) "all returned" 0 (live m)

let test_double_free_detected () =
  let m = machine () in
  let pm = Machine.physmem m and c0 = Machine.core m 0 in
  let f = Physmem.alloc pm c0 in
  Physmem.free pm c0 f;
  (match Physmem.free pm c0 f with
  | () -> Alcotest.fail "double free not detected"
  | exception Physmem.Double_free g ->
      Alcotest.(check int) "names the frame" f g);
  match Physmem.free pm c0 424242 with
  | () -> Alcotest.fail "free of never-allocated frame not detected"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Forced lock timeouts                                                *)

let test_forced_lock_timeout () =
  let m = machine () in
  let plan = plan_on m in
  let c0 = Machine.core m 0 in
  Fault.timeout_locks plan ~label:"victim" ~prob:1.0;
  let l = Lock.create ~label:"victim" c0 in
  let other = Lock.create ~label:"bystander" c0 in
  (* The lock is free, but every timed attempt is forced to fail. *)
  Alcotest.(check bool)
    "timed attempt forced out" false
    (Lock.try_acquire ~timeout:1_000 c0 l);
  Alcotest.(check bool) "counted" true (Fault.injected_lock_timeouts plan >= 1);
  Alcotest.(check bool)
    "other labels unaffected" true
    (Lock.try_acquire ~timeout:1_000 c0 other);
  Lock.release c0 other;
  (* Teardown paths run suppressed and must not be refused. *)
  Fault.with_suppressed (Some plan) (fun () ->
      Alcotest.(check bool)
        "suppressed attempt succeeds" true
        (Lock.try_acquire ~timeout:1_000 c0 l);
      Lock.release c0 l)

(* ------------------------------------------------------------------ *)
(* IPI delay / stall under shootdowns                                  *)

(* Map a page, touch it on two cores (so both TLBs hold the translation),
   then unmap on core 0 — the shootdown must interrupt core 1. *)
let shootdown_under plan_cfg =
  let m = machine ~ncores:2 () in
  let chk = Check.attach m in
  let plan = plan_on m in
  plan_cfg plan;
  let vm = R.create m in
  let c0 = Machine.core m 0 and c1 = Machine.core m 1 in
  (match R.mmap_result vm c0 ~vpn:5 ~npages:1 () with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "mmap failed");
  Alcotest.(check result_vm) "touch c0" (Ok T.Ok) (R.touch_result vm c0 ~vpn:5);
  Alcotest.(check result_vm) "touch c1" (Ok T.Ok) (R.touch_result vm c1 ~vpn:5);
  (match R.munmap_result vm c0 ~vpn:5 ~npages:1 with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "munmap failed");
  Alcotest.(check bool) "unmapped" false (R.mapped vm ~vpn:5);
  R.destroy vm c0;
  Machine.drain m ~cycles:(4 * epoch);
  (* Perturbed acknowledgment is a timing fault only: the invalidations
     happened synchronously before the IPI, so the TLB mirror must stay
     coherent no matter how late (or never) the ack arrives. *)
  Alcotest.(check int) "no stale TLB entries" 0
    (List.length (Check.tlb_violations chk));
  Alcotest.(check int) "no leaked frames" 0 (live m);
  (m, plan)

let test_ipi_delay_forces_retry () =
  let m, plan =
    shootdown_under (fun plan ->
        (* Past ipi_ack_timeout (250k), within the retry budget. *)
        Fault.delay_ipi plan ~core:1 ~cycles:600_000)
  in
  Alcotest.(check bool) "delays recorded" true (Fault.ipi_delays plan > 0);
  Alcotest.(check bool)
    "sender retried" true
    ((Machine.stats m).Stats.shootdown_retries > 0);
  Alcotest.(check int) "nobody abandoned" 0 (Fault.ipi_abandoned plan)

(* The retry-exhaustion path: a stalled core exhausts the sender's retry
   budget, [ipi_abandoned] records the give-up, and — because the
   invalidations happened synchronously before the IPI — the abandoned
   target's TLB mirror stays coherent and no frame is stranded
   ([shootdown_under] asserts both after the drain). *)
let test_ipi_stall_abandoned () =
  let m, plan = shootdown_under (fun plan -> Fault.stall_ipi plan ~core:1) in
  Alcotest.(check bool)
    "sender retried before giving up" true
    ((Machine.stats m).Stats.shootdown_retries > 0);
  Alcotest.(check bool)
    "stalled target abandoned after the retry budget" true
    (Fault.ipi_abandoned plan > 0)

let test_ipi_prompt_keeps_legacy_timing () =
  let m, plan = shootdown_under (fun _ -> ()) in
  Alcotest.(check int) "no retries" 0 (Machine.stats m).Stats.shootdown_retries;
  Alcotest.(check int) "no delays" 0 (Fault.ipi_delays plan)

(* ------------------------------------------------------------------ *)
(* Mid-operation aborts: rollback makes the operation a no-op          *)

let test_abort_rolls_back () =
  let m = machine () in
  let chk = Check.attach m in
  let plan = plan_on m in
  let vm = R.create m in
  let c0 = Machine.core m 0 in
  (match R.mmap_result vm c0 ~vpn:10 ~npages:4 () with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "setup mmap failed");
  Alcotest.(check result_vm) "store" (Ok T.Ok) (R.store_result vm c0 ~vpn:11 7);
  let frames_before = live m in
  Fault.abort_ops plan ~op:"munmap" ~point:"cleared" ~prob:1.0 ();
  (match R.munmap_result vm c0 ~vpn:10 ~npages:4 with
  | Error (T.Aborted { op = "munmap"; point = "cleared" }) -> ()
  | Error e -> Alcotest.failf "wrong error: %a" T.pp_vm_error e
  | Ok () -> Alcotest.fail "abort at probability 1.0 did not fire");
  (* The failed munmap must be a perfect no-op. *)
  Alcotest.(check bool) "still mapped" true (R.mapped vm ~vpn:10);
  Alcotest.(check (result (option int) vm_error_t))
    "value survived"
    (Ok (Some 7))
    (R.load_result vm c0 ~vpn:11);
  Alcotest.(check int) "no frames leaked or dropped" frames_before (live m);
  R.check_invariants vm;
  Alcotest.(check int) "range locks released" 0
    (List.length (Check.leaked_locks chk));
  (* With the plan detached the same operation goes through. *)
  Machine.set_fault m None;
  (match R.munmap_result vm c0 ~vpn:10 ~npages:4 with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "munmap after detach failed");
  Alcotest.(check bool) "now unmapped" false (R.mapped vm ~vpn:10)

(* fork has the longest failure path in the VM: by the time it aborts it
   may have demoted the parent's writable pages to COW, taken per-page
   frame references for the child, and built part of the child's tree.
   Abort at each point and require a perfect no-op on the parent — COW
   demotions undone (a write must not fault a copy), both trees' range
   locks released, the half-built child torn down with its frame
   references returned — and that the same fork succeeds once the plan
   is detached. *)
let test_fork_abort_rolls_back () =
  List.iter
    (fun point ->
      let m = machine () in
      let chk = Check.attach m in
      let plan = plan_on m in
      let vm = R.create m in
      let c0 = Machine.core m 0 in
      (match R.mmap_result vm c0 ~vpn:10 ~npages:4 () with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "setup mmap failed");
      (* Populate two pages so the demote pass has real work to undo. *)
      Alcotest.(check result_vm) "store" (Ok T.Ok) (R.store_result vm c0 ~vpn:11 7);
      Alcotest.(check result_vm) "touch" (Ok T.Ok) (R.touch_result vm c0 ~vpn:12);
      let frames_before = live m in
      Fault.abort_ops plan ~op:"fork" ~point ~prob:1.0 ();
      (match R.fork_result vm c0 with
      | Error (T.Aborted { op = "fork"; point = p }) ->
          Alcotest.(check string) (point ^ ": typed abort") point p
      | Error e -> Alcotest.failf "[%s] wrong error: %a" point T.pp_vm_error e
      | Ok _ -> Alcotest.failf "[%s] abort at probability 1.0 did not fire" point);
      Alcotest.(check bool) (point ^ ": still mapped") true (R.mapped vm ~vpn:10);
      Alcotest.(check (result (option int) vm_error_t))
        (point ^ ": value survived")
        (Ok (Some 7))
        (R.load_result vm c0 ~vpn:11);
      (* The COW rollback check: were a demotion left behind, this write
         would fault a private copy and shift the frame count. *)
      Alcotest.(check result_vm) (point ^ ": write-after-rollback") (Ok T.Ok)
        (R.store_result vm c0 ~vpn:12 9);
      Alcotest.(check int) (point ^ ": frames balanced") frames_before (live m);
      R.check_invariants vm;
      Alcotest.(check int) (point ^ ": range locks released") 0
        (List.length (Check.leaked_locks chk));
      (* With the plan detached the same fork goes through, and the child
         really shares the parent's pages. *)
      Machine.set_fault m None;
      (match R.fork_result vm c0 with
      | Ok child ->
          Alcotest.(check (result (option int) vm_error_t))
            (point ^ ": child sees value")
            (Ok (Some 7))
            (R.load_result child c0 ~vpn:11);
          R.destroy child c0
      | Error e ->
          Alcotest.failf "[%s] fork after detach failed: %a" point
            T.pp_vm_error e);
      R.destroy vm c0;
      Machine.drain m ~cycles:(4 * epoch);
      Alcotest.(check int) (point ^ ": all frames freed") 0 (live m);
      Alcotest.(check int) (point ^ ": refcount ledger clean") 0
        (List.length (Check.rc_violations chk)))
    [ "locked"; "demoted"; "copy"; "copied" ]

let test_frame_exhaustion_degrades () =
  let m = machine () in
  let plan = plan_on m in
  let vm = R.create m in
  let c0 = Machine.core m 0 in
  (match R.mmap_result vm c0 ~vpn:0 ~npages:8 () with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "setup mmap failed");
  (* Demand-zero pages allocate on first touch: freeze the budget at the
     current live count and every populate path must degrade, typed. *)
  Fault.set_frame_budget plan (Some (live m));
  (match R.touch_result vm c0 ~vpn:3 with
  | Error T.Enomem -> ()
  | r -> Alcotest.failf "touch: expected Enomem, got %a" pp_result_vm r);
  (match R.store_result vm c0 ~vpn:4 9 with
  | Error T.Enomem -> ()
  | r -> Alcotest.failf "store: expected Enomem, got %a" pp_result_vm r);
  R.check_invariants vm;
  (* Pressure relieved: the same accesses succeed. *)
  Fault.set_frame_budget plan None;
  Alcotest.(check result_vm) "touch after relief" (Ok T.Ok)
    (R.touch_result vm c0 ~vpn:3);
  Alcotest.(check result_vm) "store after relief" (Ok T.Ok)
    (R.store_result vm c0 ~vpn:4 9)

(* ------------------------------------------------------------------ *)
(* Kernel errno surface                                                *)

let test_kernel_enomem () =
  let m = machine () in
  let k = K.boot m in
  let p = K.init_process k in
  let c0 = Machine.core m 0 in
  let plan = plan_on m in
  Fault.set_frame_budget plan (Some (live m));
  (match
     K.sys_mmap k c0 p ~vpn:K.heap_base ~npages:4 ~populate:true ()
   with
  | Error K.ENOMEM -> ()
  | Ok () -> Alcotest.fail "populate under exhausted budget succeeded"
  | Error e -> Alcotest.failf "expected ENOMEM, got %s" (K.errno_to_string e));
  Fault.set_frame_budget plan None;
  match K.sys_mmap k c0 p ~vpn:K.heap_base ~npages:4 ~populate:true () with
  | Ok () -> ()
  | Error e ->
      Alcotest.failf "mmap after relief failed: %s" (K.errno_to_string e)

let test_kernel_efault_and_einval () =
  let m = machine () in
  let k = K.boot m in
  let p = K.init_process k in
  let c0 = Machine.core m 0 in
  (* Validation comes before mutation — and before fault injection. *)
  (match K.sys_mmap k c0 p ~vpn:(-3) ~npages:2 () with
  | Error K.EINVAL -> ()
  | _ -> Alcotest.fail "negative vpn accepted");
  let plan = plan_on m in
  Fault.abort_ops plan ~op:"mmap" ~prob:1.0 ();
  (match K.sys_mmap k c0 p ~vpn:K.heap_base ~npages:2 () with
  | Error K.EFAULT -> ()
  | Ok () -> Alcotest.fail "aborted mmap reported success"
  | Error e -> Alcotest.failf "expected EFAULT, got %s" (K.errno_to_string e));
  Alcotest.(check bool)
    "rolled back: range not mapped" false
    (R.mapped (K.vm p) ~vpn:K.heap_base)

let test_errno_to_string_total () =
  List.iter
    (fun e -> Alcotest.(check bool) "nonempty" true (K.errno_to_string e <> ""))
    [ K.EINVAL; K.ENOENT; K.ESRCH; K.ECHILD; K.ENOMEM; K.EFAULT ]

(* ------------------------------------------------------------------ *)
(* Known-bad mode: a skipped rollback must be caught                   *)

let test_broken_rollback_is_caught () =
  let m = machine () in
  let chk = Check.attach m in
  let plan = plan_on m in
  let vm = R.create m in
  let c0 = Machine.core m 0 in
  Fault.set_break_rollback plan true;
  Fault.abort_ops plan ~op:"mmap" ~point:"locked" ~prob:1.0 ();
  (match R.mmap_result vm c0 ~vpn:20 ~npages:3 () with
  | Error (T.Aborted _) -> ()
  | Ok () -> Alcotest.fail "abort did not fire"
  | Error e -> Alcotest.failf "wrong error: %a" T.pp_vm_error e);
  (* The range locks taken before the abort were never released — exactly
     what the leaked-lock checker exists to catch. *)
  Alcotest.(check bool)
    "leaked locks detected" true
    (Check.leaked_locks chk <> [])

let test_invariant_violation_is_typed () =
  let m = machine () in
  let plan = plan_on m in
  let vm = R.create m in
  let c0 = Machine.core m 0 in
  (match R.mmap_result vm c0 ~vpn:0 ~npages:2 () with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "setup mmap failed");
  Fault.set_break_rollback plan true;
  Fault.abort_ops plan ~op:"munmap" ~point:"cleared" ~prob:1.0 ();
  (match R.munmap_result vm c0 ~vpn:0 ~npages:2 with
  | Error (T.Aborted _) -> ()
  | _ -> Alcotest.fail "abort did not fire");
  (* Half-applied munmap with no rollback: the tree's counts are wrong,
     and the verifier must say so as a typed, catchable error. *)
  match R.check_invariants vm with
  | () -> Alcotest.fail "corrupted tree passed check_invariants"
  | exception T.Invariant_violation { subsystem; _ } ->
      Alcotest.(check bool)
        "names a VM subsystem" true
        (List.mem subsystem [ "radix"; "radixvm" ])

(* ------------------------------------------------------------------ *)
(* Crash points: die mid-critical-section, reap, survivors stay clean  *)

(* Every injection point each operation actually passes through (the
   rollback tests above cover the same map for graceful aborts). *)
let crash_matrix =
  [
    ("mmap", [ "locked"; "cleared"; "filled" ]);
    ("munmap", [ "locked"; "cleared" ]);
    ("mprotect", [ "locked" ]);
    ("pagefault", [ "locked" ]);
    ("fork", [ "locked"; "demoted"; "copy"; "copied" ]);
  ]

(* Run the operation that reaches [op]'s injection points. The typed
   [_result] wrappers catch aborts and Enomem only — a crash must
   propagate to the caller (the session driver playing kernel). *)
let run_crash_victim op vm c0 =
  match op with
  | "mmap" -> ignore (R.mmap_result vm c0 ~vpn:30 ~npages:2 ())
  | "munmap" -> ignore (R.munmap_result vm c0 ~vpn:10 ~npages:4)
  | "mprotect" ->
      ignore (R.mprotect_result vm c0 ~vpn:10 ~npages:4 T.Read_only)
  | "pagefault" -> ignore (R.touch_result vm c0 ~vpn:13)
  | "fork" -> (
      match R.fork_result vm c0 with
      | Ok child -> R.destroy child c0
      | Error _ -> ())
  | _ -> assert false

(* For every (operation, injection point): kill the process there with no
   unwinding, let [reap] repair the half-done mutation, and require a
   sibling process sharing the same Refcache / frame counters / page
   cache to stay fully operational — then a full teardown with zero
   leaked frames, locks, refcache entries, or stale TLB lines. *)
let test_crash_reap_survivors_clean () =
  List.iter
    (fun (op, points) ->
      List.iter
        (fun point ->
          let name = Printf.sprintf "%s@%s" op point in
          let m = machine () in
          let chk = Check.attach m in
          let plan = plan_on m in
          let vm = R.create m in
          let c0 = Machine.core m 0 and c1 = Machine.core m 1 in
          (match R.mmap_result vm c0 ~vpn:10 ~npages:4 () with
          | Ok () -> ()
          | Error _ -> Alcotest.fail (name ^ ": setup mmap failed"));
          Alcotest.(check result_vm) (name ^ ": setup store") (Ok T.Ok)
            (R.store_result vm c0 ~vpn:11 7);
          Alcotest.(check result_vm) (name ^ ": setup touch") (Ok T.Ok)
            (R.touch_result vm c0 ~vpn:12);
          (* The survivor: forked before the crash, so it shares the
             refcounting layers and holds COW references to the victim's
             pages — exactly what reap must not disturb. *)
          let sib =
            match R.fork_result vm c0 with
            | Ok s -> s
            | Error e ->
                Alcotest.failf "[%s] setup fork failed: %a" name T.pp_vm_error e
          in
          Fault.crash_ops plan ~op ~point ~prob:1.0 ();
          (match run_crash_victim op vm c0 with
          | exception Fault.Injected_crash { op = o; point = p } ->
              Alcotest.(check string) (name ^ ": crash names the op") op o;
              Alcotest.(check string) (name ^ ": crash names the point") point p
          | () -> Alcotest.failf "[%s] crash at probability 1.0 did not fire" name);
          Alcotest.(check int) (name ^ ": crash counted") 1
            (Fault.injected_crashes plan);
          Alcotest.(check bool) (name ^ ": repair stashed") true
            (R.crash_pending vm);
          (* The kernel notices the dead process. Detach the plan first:
             recovery and the survivor's later work must not re-crash. *)
          Machine.set_fault m None;
          R.reap vm c0;
          (* The dead process's range locks were force-released: nothing
             the crash held may linger. *)
          Alcotest.(check int) (name ^ ": no leaked locks after reap") 0
            (List.length (Check.leaked_locks chk));
          (* The sibling is oracle-clean and fully operational — reads the
             shared value, writes (breaking COW), maps and unmaps fresh
             ranges, and its tree passes the verifier. *)
          Alcotest.(check (result (option int) vm_error_t))
            (name ^ ": survivor reads shared value")
            (Ok (Some 7))
            (R.load_result sib c1 ~vpn:11);
          Alcotest.(check result_vm) (name ^ ": survivor writes") (Ok T.Ok)
            (R.store_result sib c1 ~vpn:12 9);
          (match R.mmap_result sib c1 ~vpn:50 ~npages:3 () with
          | Ok () -> ()
          | Error _ -> Alcotest.fail (name ^ ": survivor mmap failed"));
          Alcotest.(check result_vm) (name ^ ": survivor touches new range")
            (Ok T.Ok)
            (R.touch_result sib c1 ~vpn:51);
          (match R.munmap_result sib c1 ~vpn:50 ~npages:3 with
          | Ok () -> ()
          | Error _ -> Alcotest.fail (name ^ ": survivor munmap failed"));
          R.check_invariants sib;
          (* Full teardown: every frame and refcache entry drains. *)
          R.destroy sib c1;
          Machine.drain m ~cycles:(4 * epoch);
          Alcotest.(check int) (name ^ ": zero live frames") 0 (live m);
          Alcotest.(check int) (name ^ ": refcount ledger clean") 0
            (List.length (Check.rc_violations chk));
          Alcotest.(check int) (name ^ ": TLB mirror coherent") 0
            (List.length (Check.tlb_violations chk)))
        points)
    crash_matrix

(* ------------------------------------------------------------------ *)
(* Cache-serve session under faults                                    *)

(* The cache-serving oracle (test_workloads checks it fault-free) must
   also hold under injected faults: the model stays divergence-free, the
   crashed address spaces are reaped without disturbing siblings, and
   teardown still drains to zero frames with clean checker ledgers. *)

module CS = Workloads.Cache_serve

let run_faulted_session ~name ~ops ~arm_plan =
  let plan = ref None and mref = ref None and chk = ref None in
  let o =
    CS.Session.run ~ncores:4 ~procs:3 ~slots:64 ~ops
      ~on_machine:(fun m ->
        mref := Some m;
        chk := Some (Check.attach m);
        plan := Some (plan_on ~seed:11 m))
      ~arm:(fun () -> arm_plan (Option.get !plan) (Option.get !mref))
      ()
  in
  let m = Option.get !mref and chk = Option.get !chk in
  Alcotest.(check (list string)) (name ^ ": no divergences") []
    o.CS.Session.divergences;
  Alcotest.(check int) (name ^ ": zero live frames after teardown") 0 (live m);
  Alcotest.(check int) (name ^ ": no leaked locks") 0
    (List.length (Check.leaked_locks chk));
  Alcotest.(check int) (name ^ ": refcount ledger clean") 0
    (List.length (Check.rc_violations chk));
  Alcotest.(check int) (name ^ ": TLB mirror coherent") 0
    (List.length (Check.tlb_violations chk));
  o

let test_cacheserve_frame_budget () =
  let o =
    run_faulted_session ~name:"budget" ~ops:4_000 ~arm_plan:(fun plan m ->
        (* Pin the budget just above what setup already holds: eviction
           sweeps free frames, so serving limps along instead of dying. *)
        let budget = Physmem.live_frames (Machine.physmem m) + 8 in
        Fault.set_frame_budget plan (Some budget))
  in
  Alcotest.(check bool) "budget: refusals observed" true
    (o.CS.Session.enomem > 0);
  Alcotest.(check bool) "budget: serving continued" true
    (o.CS.Session.hits > 0 && o.CS.Session.sets > 0)

let cacheserve_crash_matrix =
  (* (op, point, prob): probabilities tuned to how often the session
     reaches each op — mprotect only runs on slot resizes, pagefault on
     every cold access. *)
  [
    ("mmap", "locked", 0.05, false);
    ("munmap", "locked", 0.05, true);
    ("munmap", "cleared", 0.05, false);
    ("mprotect", "locked", 1.0, false);
    ("pagefault", "locked", 0.02, false);
  ]

let test_cacheserve_crash_matrix () =
  List.iter
    (fun (op, point, prob, want_served_after) ->
      let name = Printf.sprintf "%s@%s" op point in
      let o =
        run_faulted_session ~name ~ops:3_000 ~arm_plan:(fun plan _m ->
            Fault.crash_ops plan ~op ~point ~prob ())
      in
      Alcotest.(check bool) (name ^ ": at least one crash reaped") true
        (o.CS.Session.crashes_reaped >= 1);
      if want_served_after then
        Alcotest.(check bool) (name ^ ": siblings served after the crash")
          true o.CS.Session.served_after_crash)
    cacheserve_crash_matrix

(* ------------------------------------------------------------------ *)
(* Suppression: re-entrant and exception-safe                          *)

let test_with_suppressed_reentrant_exception_safe () =
  let m = machine () in
  let plan = plan_on m in
  Fault.abort_ops plan ~op:"mmap" ~point:"locked" ~prob:1.0 ();
  Fault.crash_ops plan ~op:"mmap" ~point:"locked" ~prob:1.0 ();
  Fault.timeout_locks plan ~label:"victim" ~prob:1.0;
  let fires () =
    match Fault.abort_now plan ~op:"mmap" ~point:"locked" with
    | () -> false
    | exception (Fault.Injected_abort _ | Fault.Injected_crash _) -> true
  in
  Alcotest.(check bool) "armed outside" true (fires ());
  Fault.with_suppressed (Some plan) (fun () ->
      Alcotest.(check bool) "suppressed inside" true (Fault.suppressed plan);
      Alcotest.(check bool) "aborts and crashes held back" false (fires ());
      Alcotest.(check bool) "lock timeouts held back" false
        (Fault.forced_lock_timeout plan ~label:"victim");
      (* Re-entrancy: leaving a nested suppression must not re-arm the
         injectors while the outer one is still active. *)
      Fault.with_suppressed (Some plan) (fun () ->
          Alcotest.(check bool) "nested suppressed" true (Fault.suppressed plan));
      Alcotest.(check bool) "outer still suppressed after nested exit" true
        (Fault.suppressed plan);
      Alcotest.(check bool) "still held back" false (fires ()));
  Alcotest.(check bool) "re-armed after exit" true (fires ());
  (* Exception safety: a thunk escaping by exception (with a nested
     suppression on the way) must restore the armed state exactly. *)
  (match
     Fault.with_suppressed (Some plan) (fun () ->
         Fault.with_suppressed (Some plan) (fun () -> ());
         raise Exit)
   with
  | () -> Alcotest.fail "Exit swallowed"
  | exception Exit -> ());
  Alcotest.(check bool) "not suppressed after exception" false
    (Fault.suppressed plan);
  Alcotest.(check bool) "re-armed after exception" true (fires ());
  (* No plan: pure passthrough. *)
  Alcotest.(check int) "None passthrough" 7
    (Fault.with_suppressed None (fun () -> 7))

(* ------------------------------------------------------------------ *)
(* Livelock watchdog                                                   *)

let test_watchdog_trips_and_is_one_shot () =
  let m = machine () in
  let chk = Check.attach m in
  let vm = R.create m in
  let c0 = Machine.core m 0 in
  (* A 1-cycle horizon: the very first op to burn simulated time past the
     last feed must trip from inside the wedged operation. *)
  Check.arm_watchdog chk ~horizon:1;
  Check.feed_watchdog chk;
  (match R.mmap_result vm c0 ~vpn:0 ~npages:2 () with
  | exception Check.Livelock { elapsed; horizon; dump = _ } ->
      Alcotest.(check int) "reports the armed horizon" 1 horizon;
      Alcotest.(check bool) "elapsed is the machine clock" true (elapsed >= 0)
  | Ok () -> Alcotest.fail "watchdog did not trip"
  | Error e -> Alcotest.failf "unexpected error: %a" T.pp_vm_error e);
  (* One-shot: it disarmed itself before raising, so the session can be
     abandoned without the unwind (or anything after) re-tripping. *)
  let vm2 = R.create m in
  match R.mmap_result vm2 c0 ~vpn:0 ~npages:1 () with
  | Ok () -> ()
  | Error e -> Alcotest.failf "post-trip op failed: %a" T.pp_vm_error e
  | exception Check.Livelock _ -> Alcotest.fail "watchdog tripped twice"

(* ------------------------------------------------------------------ *)
(* Fuzzer: determinism and the oracle                                  *)

let test_fuzz_deterministic () =
  let cfg = { Fuzz.default with seed = 11; ops = 150; ncores = 3 } in
  let a = Fuzz.run_session cfg in
  let b = Fuzz.run_session cfg in
  Alcotest.(check bool) "passes" true a.Fuzz.passed;
  Alcotest.(check string)
    "byte-identical transcripts" a.Fuzz.transcript b.Fuzz.transcript

let test_fuzz_catches_broken_rollback () =
  let cfg = { Fuzz.default with seed = 11; ops = 150; ncores = 3; broken = true }
  in
  let o = Fuzz.run_session cfg in
  Alcotest.(check bool) "known-bad variant fails" false o.Fuzz.passed;
  Alcotest.(check bool) "with explicit failures" true (o.Fuzz.failures <> [])

(* Every generated session records its op stream as an explicit program;
   replaying that program must reproduce the generation transcript
   byte-for-byte — drains, invariant sweeps, and respawns land at the
   same indices in both modes. *)
let test_record_replay_byte_identical () =
  let cfg = { Fuzz.default with seed = 42; ops = 300; ncores = 4; check = true }
  in
  let o = Fuzz.run_session cfg in
  Alcotest.(check bool) "generated session passes" true o.Fuzz.passed;
  let r = Fuzz.run_program o.Fuzz.program in
  Alcotest.(check string)
    "replay reproduces the generation transcript byte-for-byte"
    o.Fuzz.transcript r.Fuzz.transcript;
  (* And survives a serialization round-trip. *)
  match Fuzz.program_of_string (Fuzz.program_to_string o.Fuzz.program) with
  | Error m -> Alcotest.fail m
  | Ok parsed ->
      let p = Fuzz.run_program parsed in
      Alcotest.(check string) "parsed replay identical too" o.Fuzz.transcript
        p.Fuzz.transcript

(* Under a crash palette the oracle-checked session must still pass:
   every injected crash is reaped and the survivors stay clean. *)
let test_fuzz_crash_sessions_recover () =
  let cfg =
    { Fuzz.default with
      seed = 1; ops = 600; ncores = 4; check = true; crash = true }
  in
  let o = Fuzz.run_session cfg in
  Alcotest.(check bool) "crash session passes" true o.Fuzz.passed;
  Alcotest.(check bool) "crashes were actually injected" true (o.Fuzz.crashes > 0)

(* Lock ids are a global counter, so a failure line's "lock 674030"
   depends on how many locks the process created before the replay —
   byte-identity across replays holds per fresh process (the CLI path),
   while two replays inside this one test process differ only there.
   Mask the ids before comparing. *)
let mask_lock_ids s =
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    if !i + 5 <= n && String.sub s !i 5 = "lock " then begin
      Buffer.add_string b "lock ";
      i := !i + 5;
      let j = ref !i in
      while !j < n && s.[!j] >= '0' && s.[!j] <= '9' do
        incr j
      done;
      if !j > !i then Buffer.add_char b '#';
      i := !j
    end
    else begin
      Buffer.add_char b s.[!i];
      incr i
    end
  done;
  Buffer.contents b

(* The acceptance bound: the known-bad 600-op --broken failure shrinks to
   a reproducer of at most 25 ops that still fails, and the minimized
   program replays deterministically. *)
let test_shrinker_minimizes_broken_failure () =
  let cfg =
    { Fuzz.default with
      seed = 42; ops = 600; ncores = 4; check = true; broken = true }
  in
  let o = Fuzz.run_session cfg in
  Alcotest.(check bool) "known-bad session fails" false o.Fuzz.passed;
  match Fuzz.shrink o.Fuzz.program with
  | Error m -> Alcotest.fail m
  | Ok minimal ->
      Alcotest.(check bool)
        (Printf.sprintf "minimal has <= 25 ops (got %d)"
           (List.length minimal.Fuzz.pr_ops))
        true
        (List.length minimal.Fuzz.pr_ops <= 25);
      let mo = Fuzz.run_program minimal in
      Alcotest.(check bool) "minimal reproducer still fails" false mo.Fuzz.passed;
      (* The emitted artifact replays byte-identically. *)
      match Fuzz.program_of_string (Fuzz.program_to_string minimal) with
      | Error m -> Alcotest.fail m
      | Ok parsed ->
          let po = Fuzz.run_program parsed in
          Alcotest.(check string) "repro file replays identically"
            (mask_lock_ids mo.Fuzz.transcript)
            (mask_lock_ids po.Fuzz.transcript)

(* Shrinking is itself deterministic: the same failing program minimizes
   to the same reproducer every time (smaller corpus to keep it quick —
   the 600-op bound is covered above). *)
let test_shrinker_deterministic () =
  let cfg = { Fuzz.default with seed = 11; ops = 150; ncores = 3; broken = true }
  in
  let o = Fuzz.run_session cfg in
  Alcotest.(check bool) "session fails" false o.Fuzz.passed;
  match (Fuzz.shrink o.Fuzz.program, Fuzz.shrink o.Fuzz.program) with
  | Ok a, Ok b ->
      Alcotest.(check string) "identical minimized programs"
        (Fuzz.program_to_string a) (Fuzz.program_to_string b)
  | Error m, _ | _, Error m -> Alcotest.fail m

(* ------------------------------------------------------------------ *)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "fault"
    [
      ( "physmem",
        [
          tc "frame budget" `Quick test_frame_budget;
          tc "double free" `Quick test_double_free_detected;
        ] );
      ("locks", [ tc "forced timeout" `Quick test_forced_lock_timeout ]);
      ( "ipi",
        [
          tc "delay forces retry" `Quick test_ipi_delay_forces_retry;
          tc "stall abandoned" `Quick test_ipi_stall_abandoned;
          tc "prompt = legacy" `Quick test_ipi_prompt_keeps_legacy_timing;
        ] );
      ( "degradation",
        [
          tc "abort rolls back" `Quick test_abort_rolls_back;
          tc "fork abort rolls back" `Quick test_fork_abort_rolls_back;
          tc "frame exhaustion" `Quick test_frame_exhaustion_degrades;
          tc "kernel ENOMEM" `Quick test_kernel_enomem;
          tc "kernel EFAULT/EINVAL" `Quick test_kernel_efault_and_einval;
          tc "errno_to_string total" `Quick test_errno_to_string_total;
        ] );
      ( "known-bad",
        [
          tc "broken rollback leaks locks" `Quick test_broken_rollback_is_caught;
          tc "invariant violation typed" `Quick test_invariant_violation_is_typed;
        ] );
      ( "cache-serve",
        [
          tc "frame budget stays model-clean" `Quick
            test_cacheserve_frame_budget;
          tc "crash matrix stays model-clean" `Quick
            test_cacheserve_crash_matrix;
        ] );
      ( "crash-recovery",
        [
          tc "reap leaves survivors clean (all points)" `Quick
            test_crash_reap_survivors_clean;
          tc "with_suppressed re-entrant + exception-safe" `Quick
            test_with_suppressed_reentrant_exception_safe;
          tc "watchdog trips once" `Quick test_watchdog_trips_and_is_one_shot;
        ] );
      ( "fuzz",
        [
          tc "deterministic" `Quick test_fuzz_deterministic;
          tc "broken variant caught" `Quick test_fuzz_catches_broken_rollback;
          tc "record/replay byte-identical" `Quick
            test_record_replay_byte_identical;
          tc "crash sessions recover" `Quick test_fuzz_crash_sessions_recover;
          tc "shrinker hits the 25-op bound" `Slow
            test_shrinker_minimizes_broken_failure;
          tc "shrinker deterministic" `Quick test_shrinker_deterministic;
        ] );
    ]
