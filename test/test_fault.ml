(* Tests for the fault-injection layer: each injected fault kind at its
   source (frame budget, forced lock timeouts, perturbed IPI
   acknowledgment, mid-operation aborts), graceful degradation through the
   VM stack and the kernel's errno surface, the known-bad rollback escape
   hatch (the leak checkers must catch it), and the fuzzer's determinism
   and oracle. *)

open Ccsim
module T = Vm.Vm_types
module R = Vm.Radixvm.Default
module K = Os.Kernel

let epoch = 10_000

let machine ?(ncores = 4) () =
  Machine.create (Params.default ~ncores ~epoch_cycles:epoch ())

let plan_on ?(seed = 0) m =
  let p = Fault.create ~seed () in
  Machine.set_fault m (Some p);
  p

let live m = Physmem.live_frames (Machine.physmem m)

let access_t = Alcotest.testable T.pp_access_result ( = )
let vm_error_t = Alcotest.testable T.pp_vm_error ( = )
let result_vm = Alcotest.(result access_t vm_error_t)

let pp_result_vm ppf = function
  | Ok a -> T.pp_access_result ppf a
  | Error e -> T.pp_vm_error ppf e

(* ------------------------------------------------------------------ *)
(* Physmem: frame budget and double-free                               *)

let test_frame_budget () =
  let m = machine () in
  let plan = plan_on m in
  let pm = Machine.physmem m and c0 = Machine.core m 0 in
  Fault.set_frame_budget plan (Some 2);
  let f0 = Physmem.alloc pm c0 in
  let f1 = Physmem.alloc pm c0 in
  (match Physmem.alloc pm c0 with
  | _ -> Alcotest.fail "third alloc under a budget of 2 succeeded"
  | exception Physmem.Out_of_frames -> ());
  Alcotest.(check (option int)) "try_alloc refuses" None (Physmem.try_alloc pm c0);
  Alcotest.(check int) "refusals counted" 2 (Fault.injected_oom plan);
  (* The budget caps live frames, not total allocations: freeing makes
     room. *)
  Physmem.free pm c0 f0;
  let f2 = Physmem.alloc pm c0 in
  Alcotest.(check int) "still two live" 2 (live m);
  (* Lifting the budget restores unbounded memory. *)
  Fault.set_frame_budget plan None;
  let f3 = Physmem.alloc pm c0 in
  List.iter (Physmem.free pm c0) [ f1; f2; f3 ];
  Alcotest.(check int) "all returned" 0 (live m)

let test_double_free_detected () =
  let m = machine () in
  let pm = Machine.physmem m and c0 = Machine.core m 0 in
  let f = Physmem.alloc pm c0 in
  Physmem.free pm c0 f;
  (match Physmem.free pm c0 f with
  | () -> Alcotest.fail "double free not detected"
  | exception Physmem.Double_free g ->
      Alcotest.(check int) "names the frame" f g);
  match Physmem.free pm c0 424242 with
  | () -> Alcotest.fail "free of never-allocated frame not detected"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Forced lock timeouts                                                *)

let test_forced_lock_timeout () =
  let m = machine () in
  let plan = plan_on m in
  let c0 = Machine.core m 0 in
  Fault.timeout_locks plan ~label:"victim" ~prob:1.0;
  let l = Lock.create ~label:"victim" c0 in
  let other = Lock.create ~label:"bystander" c0 in
  (* The lock is free, but every timed attempt is forced to fail. *)
  Alcotest.(check bool)
    "timed attempt forced out" false
    (Lock.try_acquire ~timeout:1_000 c0 l);
  Alcotest.(check bool) "counted" true (Fault.injected_lock_timeouts plan >= 1);
  Alcotest.(check bool)
    "other labels unaffected" true
    (Lock.try_acquire ~timeout:1_000 c0 other);
  Lock.release c0 other;
  (* Teardown paths run suppressed and must not be refused. *)
  Fault.with_suppressed (Some plan) (fun () ->
      Alcotest.(check bool)
        "suppressed attempt succeeds" true
        (Lock.try_acquire ~timeout:1_000 c0 l);
      Lock.release c0 l)

(* ------------------------------------------------------------------ *)
(* IPI delay / stall under shootdowns                                  *)

(* Map a page, touch it on two cores (so both TLBs hold the translation),
   then unmap on core 0 — the shootdown must interrupt core 1. *)
let shootdown_under plan_cfg =
  let m = machine ~ncores:2 () in
  let chk = Check.attach m in
  let plan = plan_on m in
  plan_cfg plan;
  let vm = R.create m in
  let c0 = Machine.core m 0 and c1 = Machine.core m 1 in
  (match R.mmap_result vm c0 ~vpn:5 ~npages:1 () with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "mmap failed");
  Alcotest.(check result_vm) "touch c0" (Ok T.Ok) (R.touch_result vm c0 ~vpn:5);
  Alcotest.(check result_vm) "touch c1" (Ok T.Ok) (R.touch_result vm c1 ~vpn:5);
  (match R.munmap_result vm c0 ~vpn:5 ~npages:1 with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "munmap failed");
  Alcotest.(check bool) "unmapped" false (R.mapped vm ~vpn:5);
  R.destroy vm c0;
  Machine.drain m ~cycles:(4 * epoch);
  (* Perturbed acknowledgment is a timing fault only: the invalidations
     happened synchronously before the IPI, so the TLB mirror must stay
     coherent no matter how late (or never) the ack arrives. *)
  Alcotest.(check int) "no stale TLB entries" 0
    (List.length (Check.tlb_violations chk));
  Alcotest.(check int) "no leaked frames" 0 (live m);
  (m, plan)

let test_ipi_delay_forces_retry () =
  let m, plan =
    shootdown_under (fun plan ->
        (* Past ipi_ack_timeout (250k), within the retry budget. *)
        Fault.delay_ipi plan ~core:1 ~cycles:600_000)
  in
  Alcotest.(check bool) "delays recorded" true (Fault.ipi_delays plan > 0);
  Alcotest.(check bool)
    "sender retried" true
    ((Machine.stats m).Stats.shootdown_retries > 0);
  Alcotest.(check int) "nobody abandoned" 0 (Fault.ipi_abandoned plan)

let test_ipi_stall_abandoned () =
  let _, plan = shootdown_under (fun plan -> Fault.stall_ipi plan ~core:1) in
  Alcotest.(check bool)
    "stalled target abandoned after the retry budget" true
    (Fault.ipi_abandoned plan > 0)

let test_ipi_prompt_keeps_legacy_timing () =
  let m, plan = shootdown_under (fun _ -> ()) in
  Alcotest.(check int) "no retries" 0 (Machine.stats m).Stats.shootdown_retries;
  Alcotest.(check int) "no delays" 0 (Fault.ipi_delays plan)

(* ------------------------------------------------------------------ *)
(* Mid-operation aborts: rollback makes the operation a no-op          *)

let test_abort_rolls_back () =
  let m = machine () in
  let chk = Check.attach m in
  let plan = plan_on m in
  let vm = R.create m in
  let c0 = Machine.core m 0 in
  (match R.mmap_result vm c0 ~vpn:10 ~npages:4 () with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "setup mmap failed");
  Alcotest.(check result_vm) "store" (Ok T.Ok) (R.store_result vm c0 ~vpn:11 7);
  let frames_before = live m in
  Fault.abort_ops plan ~op:"munmap" ~point:"cleared" ~prob:1.0 ();
  (match R.munmap_result vm c0 ~vpn:10 ~npages:4 with
  | Error (T.Aborted { op = "munmap"; point = "cleared" }) -> ()
  | Error e -> Alcotest.failf "wrong error: %a" T.pp_vm_error e
  | Ok () -> Alcotest.fail "abort at probability 1.0 did not fire");
  (* The failed munmap must be a perfect no-op. *)
  Alcotest.(check bool) "still mapped" true (R.mapped vm ~vpn:10);
  Alcotest.(check (result (option int) vm_error_t))
    "value survived"
    (Ok (Some 7))
    (R.load_result vm c0 ~vpn:11);
  Alcotest.(check int) "no frames leaked or dropped" frames_before (live m);
  R.check_invariants vm;
  Alcotest.(check int) "range locks released" 0
    (List.length (Check.leaked_locks chk));
  (* With the plan detached the same operation goes through. *)
  Machine.set_fault m None;
  (match R.munmap_result vm c0 ~vpn:10 ~npages:4 with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "munmap after detach failed");
  Alcotest.(check bool) "now unmapped" false (R.mapped vm ~vpn:10)

(* fork has the longest failure path in the VM: by the time it aborts it
   may have demoted the parent's writable pages to COW, taken per-page
   frame references for the child, and built part of the child's tree.
   Abort at each point and require a perfect no-op on the parent — COW
   demotions undone (a write must not fault a copy), both trees' range
   locks released, the half-built child torn down with its frame
   references returned — and that the same fork succeeds once the plan
   is detached. *)
let test_fork_abort_rolls_back () =
  List.iter
    (fun point ->
      let m = machine () in
      let chk = Check.attach m in
      let plan = plan_on m in
      let vm = R.create m in
      let c0 = Machine.core m 0 in
      (match R.mmap_result vm c0 ~vpn:10 ~npages:4 () with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "setup mmap failed");
      (* Populate two pages so the demote pass has real work to undo. *)
      Alcotest.(check result_vm) "store" (Ok T.Ok) (R.store_result vm c0 ~vpn:11 7);
      Alcotest.(check result_vm) "touch" (Ok T.Ok) (R.touch_result vm c0 ~vpn:12);
      let frames_before = live m in
      Fault.abort_ops plan ~op:"fork" ~point ~prob:1.0 ();
      (match R.fork_result vm c0 with
      | Error (T.Aborted { op = "fork"; point = p }) ->
          Alcotest.(check string) (point ^ ": typed abort") point p
      | Error e -> Alcotest.failf "[%s] wrong error: %a" point T.pp_vm_error e
      | Ok _ -> Alcotest.failf "[%s] abort at probability 1.0 did not fire" point);
      Alcotest.(check bool) (point ^ ": still mapped") true (R.mapped vm ~vpn:10);
      Alcotest.(check (result (option int) vm_error_t))
        (point ^ ": value survived")
        (Ok (Some 7))
        (R.load_result vm c0 ~vpn:11);
      (* The COW rollback check: were a demotion left behind, this write
         would fault a private copy and shift the frame count. *)
      Alcotest.(check result_vm) (point ^ ": write-after-rollback") (Ok T.Ok)
        (R.store_result vm c0 ~vpn:12 9);
      Alcotest.(check int) (point ^ ": frames balanced") frames_before (live m);
      R.check_invariants vm;
      Alcotest.(check int) (point ^ ": range locks released") 0
        (List.length (Check.leaked_locks chk));
      (* With the plan detached the same fork goes through, and the child
         really shares the parent's pages. *)
      Machine.set_fault m None;
      (match R.fork_result vm c0 with
      | Ok child ->
          Alcotest.(check (result (option int) vm_error_t))
            (point ^ ": child sees value")
            (Ok (Some 7))
            (R.load_result child c0 ~vpn:11);
          R.destroy child c0
      | Error e ->
          Alcotest.failf "[%s] fork after detach failed: %a" point
            T.pp_vm_error e);
      R.destroy vm c0;
      Machine.drain m ~cycles:(4 * epoch);
      Alcotest.(check int) (point ^ ": all frames freed") 0 (live m);
      Alcotest.(check int) (point ^ ": refcount ledger clean") 0
        (List.length (Check.rc_violations chk)))
    [ "locked"; "demoted"; "copy"; "copied" ]

let test_frame_exhaustion_degrades () =
  let m = machine () in
  let plan = plan_on m in
  let vm = R.create m in
  let c0 = Machine.core m 0 in
  (match R.mmap_result vm c0 ~vpn:0 ~npages:8 () with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "setup mmap failed");
  (* Demand-zero pages allocate on first touch: freeze the budget at the
     current live count and every populate path must degrade, typed. *)
  Fault.set_frame_budget plan (Some (live m));
  (match R.touch_result vm c0 ~vpn:3 with
  | Error T.Enomem -> ()
  | r -> Alcotest.failf "touch: expected Enomem, got %a" pp_result_vm r);
  (match R.store_result vm c0 ~vpn:4 9 with
  | Error T.Enomem -> ()
  | r -> Alcotest.failf "store: expected Enomem, got %a" pp_result_vm r);
  R.check_invariants vm;
  (* Pressure relieved: the same accesses succeed. *)
  Fault.set_frame_budget plan None;
  Alcotest.(check result_vm) "touch after relief" (Ok T.Ok)
    (R.touch_result vm c0 ~vpn:3);
  Alcotest.(check result_vm) "store after relief" (Ok T.Ok)
    (R.store_result vm c0 ~vpn:4 9)

(* ------------------------------------------------------------------ *)
(* Kernel errno surface                                                *)

let test_kernel_enomem () =
  let m = machine () in
  let k = K.boot m in
  let p = K.init_process k in
  let c0 = Machine.core m 0 in
  let plan = plan_on m in
  Fault.set_frame_budget plan (Some (live m));
  (match
     K.sys_mmap k c0 p ~vpn:K.heap_base ~npages:4 ~populate:true ()
   with
  | Error K.ENOMEM -> ()
  | Ok () -> Alcotest.fail "populate under exhausted budget succeeded"
  | Error e -> Alcotest.failf "expected ENOMEM, got %s" (K.errno_to_string e));
  Fault.set_frame_budget plan None;
  match K.sys_mmap k c0 p ~vpn:K.heap_base ~npages:4 ~populate:true () with
  | Ok () -> ()
  | Error e ->
      Alcotest.failf "mmap after relief failed: %s" (K.errno_to_string e)

let test_kernel_efault_and_einval () =
  let m = machine () in
  let k = K.boot m in
  let p = K.init_process k in
  let c0 = Machine.core m 0 in
  (* Validation comes before mutation — and before fault injection. *)
  (match K.sys_mmap k c0 p ~vpn:(-3) ~npages:2 () with
  | Error K.EINVAL -> ()
  | _ -> Alcotest.fail "negative vpn accepted");
  let plan = plan_on m in
  Fault.abort_ops plan ~op:"mmap" ~prob:1.0 ();
  (match K.sys_mmap k c0 p ~vpn:K.heap_base ~npages:2 () with
  | Error K.EFAULT -> ()
  | Ok () -> Alcotest.fail "aborted mmap reported success"
  | Error e -> Alcotest.failf "expected EFAULT, got %s" (K.errno_to_string e));
  Alcotest.(check bool)
    "rolled back: range not mapped" false
    (R.mapped (K.vm p) ~vpn:K.heap_base)

let test_errno_to_string_total () =
  List.iter
    (fun e -> Alcotest.(check bool) "nonempty" true (K.errno_to_string e <> ""))
    [ K.EINVAL; K.ENOENT; K.ESRCH; K.ECHILD; K.ENOMEM; K.EFAULT ]

(* ------------------------------------------------------------------ *)
(* Known-bad mode: a skipped rollback must be caught                   *)

let test_broken_rollback_is_caught () =
  let m = machine () in
  let chk = Check.attach m in
  let plan = plan_on m in
  let vm = R.create m in
  let c0 = Machine.core m 0 in
  Fault.set_break_rollback plan true;
  Fault.abort_ops plan ~op:"mmap" ~point:"locked" ~prob:1.0 ();
  (match R.mmap_result vm c0 ~vpn:20 ~npages:3 () with
  | Error (T.Aborted _) -> ()
  | Ok () -> Alcotest.fail "abort did not fire"
  | Error e -> Alcotest.failf "wrong error: %a" T.pp_vm_error e);
  (* The range locks taken before the abort were never released — exactly
     what the leaked-lock checker exists to catch. *)
  Alcotest.(check bool)
    "leaked locks detected" true
    (Check.leaked_locks chk <> [])

let test_invariant_violation_is_typed () =
  let m = machine () in
  let plan = plan_on m in
  let vm = R.create m in
  let c0 = Machine.core m 0 in
  (match R.mmap_result vm c0 ~vpn:0 ~npages:2 () with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "setup mmap failed");
  Fault.set_break_rollback plan true;
  Fault.abort_ops plan ~op:"munmap" ~point:"cleared" ~prob:1.0 ();
  (match R.munmap_result vm c0 ~vpn:0 ~npages:2 with
  | Error (T.Aborted _) -> ()
  | _ -> Alcotest.fail "abort did not fire");
  (* Half-applied munmap with no rollback: the tree's counts are wrong,
     and the verifier must say so as a typed, catchable error. *)
  match R.check_invariants vm with
  | () -> Alcotest.fail "corrupted tree passed check_invariants"
  | exception T.Invariant_violation { subsystem; _ } ->
      Alcotest.(check bool)
        "names a VM subsystem" true
        (List.mem subsystem [ "radix"; "radixvm" ])

(* ------------------------------------------------------------------ *)
(* Fuzzer: determinism and the oracle                                  *)

let test_fuzz_deterministic () =
  let cfg = { Fuzz.default with seed = 11; ops = 150; ncores = 3 } in
  let a = Fuzz.run_session cfg in
  let b = Fuzz.run_session cfg in
  Alcotest.(check bool) "passes" true a.Fuzz.passed;
  Alcotest.(check string)
    "byte-identical transcripts" a.Fuzz.transcript b.Fuzz.transcript

let test_fuzz_catches_broken_rollback () =
  let cfg = { Fuzz.default with seed = 11; ops = 150; ncores = 3; broken = true }
  in
  let o = Fuzz.run_session cfg in
  Alcotest.(check bool) "known-bad variant fails" false o.Fuzz.passed;
  Alcotest.(check bool) "with explicit failures" true (o.Fuzz.failures <> [])

(* ------------------------------------------------------------------ *)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "fault"
    [
      ( "physmem",
        [
          tc "frame budget" `Quick test_frame_budget;
          tc "double free" `Quick test_double_free_detected;
        ] );
      ("locks", [ tc "forced timeout" `Quick test_forced_lock_timeout ]);
      ( "ipi",
        [
          tc "delay forces retry" `Quick test_ipi_delay_forces_retry;
          tc "stall abandoned" `Quick test_ipi_stall_abandoned;
          tc "prompt = legacy" `Quick test_ipi_prompt_keeps_legacy_timing;
        ] );
      ( "degradation",
        [
          tc "abort rolls back" `Quick test_abort_rolls_back;
          tc "fork abort rolls back" `Quick test_fork_abort_rolls_back;
          tc "frame exhaustion" `Quick test_frame_exhaustion_degrades;
          tc "kernel ENOMEM" `Quick test_kernel_enomem;
          tc "kernel EFAULT/EINVAL" `Quick test_kernel_efault_and_einval;
          tc "errno_to_string total" `Quick test_errno_to_string_total;
        ] );
      ( "known-bad",
        [
          tc "broken rollback leaks locks" `Quick test_broken_rollback_is_caught;
          tc "invariant violation typed" `Quick test_invariant_violation_is_typed;
        ] );
      ( "fuzz",
        [
          tc "deterministic" `Quick test_fuzz_deterministic;
          tc "broken variant caught" `Quick test_fuzz_catches_broken_rollback;
        ] );
    ]
