(* Acceptance tests for simlint (lib/lint + bin/simlint.exe): each
   known-bad fixture under test/lint_fixtures must trip its rule family
   with a file:line finding, the clean control must stay silent, and the
   allowlist must both suppress and go stale loudly. The fixtures are
   scanned with --all-scopes, where every rule family applies everywhere
   (the real-tree scan's scoping is exercised by `dune build @lint`).

   The tests drive the real executable, not the library, so exit codes
   and output format are part of the contract. Dune runs tests from
   test/; we chdir to the build-context root so the fixture cmts' load
   paths resolve exactly as they do under `dune build @lint`. *)

let () = if Sys.file_exists "../bin/simlint.exe" then Sys.chdir ".."

let fixture_root = "test/lint_fixtures"

let run_simlint args =
  let cmd = Printf.sprintf "./bin/simlint.exe %s 2>/dev/null" args in
  let ic = Unix.open_process_in cmd in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  let code =
    match Unix.close_process_in ic with
    | Unix.WEXITED n -> n
    | Unix.WSIGNALED _ | Unix.WSTOPPED _ -> 255
  in
  (code, List.rev !lines)

(* One full --all-scopes fixture scan shared by the assertions below. *)
let scan = lazy (run_simlint ("--all-scopes " ^ fixture_root))

let findings () =
  let _, lines = Lazy.force scan in
  List.filter (fun l -> not (String.length l >= 8 && String.sub l 0 8 = "simlint:")) lines

let has_finding ~file ~rule ~site =
  List.exists
    (fun l ->
      let contains needle =
        let n = String.length needle and ln = String.length l in
        let rec go i = i + n <= ln && (String.sub l i n = needle || go (i + 1)) in
        go 0
      in
      contains (file ^ ":")
      && contains (Printf.sprintf "[%s]" rule)
      && contains (site ^ ":"))
    (findings ())

let check_fires ~file ~rule ~site () =
  Alcotest.(check bool)
    (Printf.sprintf "%s fires %s at %s" file rule site)
    true
    (has_finding ~file ~rule ~site)

let check_silent ~file ~site msg () =
  Alcotest.(check bool) msg false
    (List.exists
       (fun l ->
         let needle = file ^ ":" in
         let n = String.length needle and ln = String.length l in
         let rec go i = i + n <= ln && (String.sub l i n = needle || go (i + 1)) in
         go 0
         &&
         let s = site ^ ":" in
         let sn = String.length s in
         let rec go2 i = i + sn <= ln && (String.sub l i sn = s || go2 (i + 1)) in
         go2 0)
       (findings ()))

let test_exit_code () =
  let code, _ = Lazy.force scan in
  Alcotest.(check int) "fixture scan exits 1" 1 code

let test_finding_format () =
  (* Every finding line is machine-readable: path:line: [rule-id] ... *)
  List.iter
    (fun l ->
      let ok =
        match String.index_opt l ':' with
        | None -> false
        | Some i -> (
            String.length l > i + 1
            &&
            match String.index_from_opt l (i + 1) ':' with
            | None -> false
            | Some j -> (
                (match int_of_string_opt (String.sub l (i + 1) (j - i - 1)) with
                | Some n -> n > 0
                | None -> false)
                && j + 2 < String.length l
                && l.[j + 2] = '['))
      in
      Alcotest.(check bool) (Printf.sprintf "parseable finding: %s" l) true ok)
    (findings ());
  Alcotest.(check bool) "scan produced findings" true (findings () <> [])

let test_good_clean () =
  let _, lines = Lazy.force scan in
  Alcotest.(check bool) "good_clean.ml has zero findings" false
    (List.exists
       (fun l ->
         let needle = "good_clean.ml:" in
         let n = String.length needle and ln = String.length l in
         let rec go i = i + n <= ln && (String.sub l i n = needle || go (i + 1)) in
         go 0)
       lines)

let with_temp_allow contents f =
  let path = Filename.temp_file "lint_allow" ".txt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let oc = open_out path in
      output_string oc contents;
      close_out oc;
      f path)

let test_allow_suppresses () =
  with_temp_allow
    "det-entropy:Bad_determinism # fixture pin for the acceptance test\n"
    (fun allow ->
      let _, lines =
        run_simlint
          (Printf.sprintf "--all-scopes --allow %s %s" allow fixture_root)
      in
      Alcotest.(check bool) "det-entropy suppressed for Bad_determinism" false
        (List.exists
           (fun l ->
             let needle = "[det-entropy] Bad_determinism" in
             let n = String.length needle and ln = String.length l in
             let rec go i =
               i + n <= ln && (String.sub l i n = needle || go (i + 1))
             in
             go 0)
           lines))

let test_allow_rule_ids_independent () =
  (* The additive wall-clock rule has its own id: pinning det-entropy for
     the module must leave the det-wallclock findings standing. *)
  with_temp_allow
    "det-entropy:Bad_wallclock # fixture pin for the acceptance test\n"
    (fun allow ->
      let code, lines =
        run_simlint
          (Printf.sprintf "--all-scopes --allow %s %s" allow fixture_root)
      in
      Alcotest.(check int) "det-wallclock still fails the scan" 1 code;
      Alcotest.(check bool) "det-wallclock survives a det-entropy pin" true
        (List.exists
           (fun l ->
             let needle = "[det-wallclock] Bad_wallclock" in
             let n = String.length needle and ln = String.length l in
             let rec go i =
               i + n <= ln && (String.sub l i n = needle || go (i + 1))
             in
             go 0)
           lines))

let test_allow_stale () =
  with_temp_allow "hot-marshal:No_such_module.nowhere # stale on purpose\n"
    (fun allow ->
      let code, lines =
        run_simlint
          (Printf.sprintf "--all-scopes --allow %s %s" allow fixture_root)
      in
      Alcotest.(check int) "stale entry still fails" 1 code;
      Alcotest.(check bool) "allow-stale reported" true
        (List.exists
           (fun l ->
             let needle = "[allow-stale] No_such_module.nowhere" in
             let n = String.length needle and ln = String.length l in
             let rec go i =
               i + n <= ln && (String.sub l i n = needle || go (i + 1))
             in
             go 0)
           lines))

let test_allow_malformed () =
  with_temp_allow "det-entropy:Bad_determinism\n" (fun allow ->
      let code, lines =
        run_simlint
          (Printf.sprintf "--all-scopes --allow %s %s" allow fixture_root)
      in
      Alcotest.(check int) "malformed entry fails" 1 code;
      Alcotest.(check bool) "allow-malformed reported" true
        (List.exists
           (fun l ->
             let needle = "[allow-malformed]"
             in
             let n = String.length needle and ln = String.length l in
             let rec go i =
               i + n <= ln && (String.sub l i n = needle || go (i + 1))
             in
             go 0)
           lines))

let fires file rule site =
  Alcotest.test_case
    (Printf.sprintf "%s: %s" rule site)
    `Quick
    (check_fires ~file ~rule ~site)

let () =
  Alcotest.run "lint"
    [
      ( "cli",
        [
          Alcotest.test_case "exit code" `Quick test_exit_code;
          Alcotest.test_case "finding format" `Quick test_finding_format;
          Alcotest.test_case "clean control" `Quick test_good_clean;
        ] );
      ( "domain-safety",
        [
          fires "bad_domain.ml" "ds-toplevel-mutable" "Bad_domain.counter";
          fires "bad_domain.ml" "ds-toplevel-mutable" "Bad_domain.cfg";
          fires "bad_domain.ml" "ds-toplevel-mutable" "Bad_domain.cache";
          fires "bad_domain.ml" "ds-toplevel-mutable" "Bad_domain.scratch";
          fires "bad_domain.ml" "ds-toplevel-mutable" "Bad_domain.deep";
          Alcotest.test_case "Atomic.t exempt" `Quick
            (check_silent ~file:"bad_domain.ml" ~site:"Bad_domain.hits"
               "Atomic.t at top level is not flagged");
        ] );
      ( "shard-safety",
        [
          fires "bad_shard.ml" "ds-cross-shard" "Bad_shard.poke_remote";
          fires "bad_shard.ml" "ds-cross-shard" "Bad_shard.steal_uplink";
          fires "bad_shard.ml" "ds-cross-shard" "Bad_shard.inject";
          fires "bad_shard.ml" "ds-cross-shard" "Bad_shard.charge";
          (* A module alias must not hide the endpoint from the
             typed-AST walk. *)
          fires "bad_shard.ml" "ds-cross-shard" "Bad_shard.aliased";
          Alcotest.test_case "uplink_send exempt" `Quick
            (check_silent ~file:"bad_shard.ml" ~site:"Bad_shard.sanctioned"
               "Machine.uplink_send buffers into the sender's own outbox; \
                not flagged");
        ] );
      ( "determinism",
        [
          fires "bad_determinism.ml" "det-entropy"
            "Bad_determinism.seed_the_world";
          fires "bad_determinism.ml" "det-entropy" "Bad_determinism.state";
          fires "bad_determinism.ml" "det-entropy" "Bad_determinism.cpu_now";
          fires "bad_determinism.ml" "det-entropy" "Bad_determinism.wall_now";
          fires "bad_determinism.ml" "det-entropy" "Bad_determinism.coarse_now";
          fires "bad_getenv.ml" "det-getenv" "Bad_getenv.debug_enabled";
          fires "bad_getenv.ml" "det-getenv" "Bad_getenv.home";
          fires "bad_getenv.ml" "det-getenv" "Bad_getenv.path";
          fires "bad_getenv.ml" "det-getenv" "Bad_getenv.whole_env";
          fires "bad_wallclock.ml" "det-wallclock" "Bad_wallclock.stamp";
          fires "bad_wallclock.ml" "det-wallclock" "Bad_wallclock.epoch";
          fires "bad_wallclock.ml" "det-wallclock" "Bad_wallclock.sneaky";
          fires "bad_wallclock.ml" "det-wallclock" "Bad_wallclock.opened";
          fires "bad_wallclock.ml" "det-wallclock" "Bad_wallclock.sampler";
          (* Additive by design: the same sites also trip det-entropy, so
             a det-entropy pin alone can never cover a sim-core clock. *)
          fires "bad_wallclock.ml" "det-entropy" "Bad_wallclock.stamp";
          fires "bad_determinism.ml" "det-wallclock" "Bad_determinism.wall_now";
          fires "bad_order.ml" "det-hashtbl-order" "Bad_order.dump";
          fires "bad_order.ml" "det-hashtbl-order" "Bad_order.keys";
          fires "bad_order.ml" "det-hashtbl-order" "Bad_order.stream";
          fires "bad_order.ml" "det-hashtbl-order" "Bad_order.key_stream";
          fires "bad_order.ml" "det-hashtbl-order" "Bad_order.val_stream";
          fires "bad_float.ml" "det-float-format" "Bad_float.render";
          fires "bad_float.ml" "det-float-format" "Bad_float.wide";
          fires "bad_float.ml" "det-float-format" "Bad_float.general";
          fires "bad_float.ml" "det-float-format" "Bad_float.stringly";
          fires "bad_float.ml" "det-float-format" "Bad_float.stdlibly";
        ] );
      ( "hot-path",
        [
          fires "bad_hot.ml" "hot-polycompare" "Bad_hot.same";
          fires "bad_hot.ml" "hot-polycompare" "Bad_hot.rank";
          fires "bad_hot.ml" "hot-polycompare" "Bad_hot.differs";
          fires "bad_hot.ml" "hot-polycompare" "Bad_hot.smallest";
          fires "bad_hot.ml" "hot-polycompare" "Bad_hot.digest";
          Alcotest.test_case "specialized int (=) exempt" `Quick
            (check_silent ~file:"bad_hot.ml" ~site:"Bad_hot.int_eq"
               "int (=) is specialized, not flagged");
          Alcotest.test_case "specialized float (<=) exempt" `Quick
            (check_silent ~file:"bad_hot.ml" ~site:"Bad_hot.float_le"
               "float (<=) is specialized, not flagged");
          Alcotest.test_case "specialized string (=) exempt" `Quick
            (check_silent ~file:"bad_hot.ml" ~site:"Bad_hot.str_eq"
               "string (=) is specialized, not flagged");
          fires "bad_hot.ml" "hot-hashtbl" "Bad_hot.lookup";
          fires "bad_hot.ml" "hot-hashtbl" "Bad_hot.store";
          fires "bad_hot.ml" "hot-marshal" "Bad_hot.save";
          fires "bad_hot.ml" "hot-marshal" "Bad_hot.load";
        ] );
      ( "allowlist",
        [
          Alcotest.test_case "suppression" `Quick test_allow_suppresses;
          Alcotest.test_case "rule ids independent" `Quick
            test_allow_rule_ids_independent;
          Alcotest.test_case "stale entry fails" `Quick test_allow_stale;
          Alcotest.test_case "malformed entry fails" `Quick test_allow_malformed;
        ] );
    ]
