(* Tests for the workload layer: barrier, block allocator, microbenchmarks,
   Metis, the index and counter benchmarks, and the Table 2 snapshots.
   Besides correctness, several tests assert the *direction* of the
   scalability results the paper reports — those are the load-bearing
   claims of the reproduction. *)

open Ccsim
module Radixvm = Vm.Radixvm.Default
module MB = Workloads.Microbench.Make (Vm.Radixvm.Default)
module MB_linux = Workloads.Microbench.Make (Baselines.Linux_vm)
module Metis = Workloads.Metis.Make (Vm.Radixvm.Default)
module Metis_linux = Workloads.Metis.Make (Baselines.Linux_vm)
module Alloc = Workloads.Block_alloc.Make (Vm.Radixvm.Default)

(* ------------------------------------------------------------------ *)
(* Barrier                                                             *)

let test_barrier_sync () =
  let m = Machine.create (Params.default ~ncores:4 ()) in
  let b = Workloads.Barrier.create (Machine.core m 0) ~parties:4 in
  let passed_at = Array.make 4 0 in
  let arrive_at = [| 1_000; 5_000; 2_000; 40_000 |] in
  for c = 0 to 3 do
    let core = Machine.core m c in
    let state = ref `Start in
    Machine.set_workload m c (fun () ->
        (match !state with
        | `Start ->
            Core.tick core arrive_at.(c);
            state := `Arrived (Workloads.Barrier.arrive core b)
        | `Arrived gen ->
            if Workloads.Barrier.passed core b gen then begin
              passed_at.(c) <- Core.now core;
              state := `Done
            end
            else Machine.wait_hint m core
        | `Done -> ());
        !state <> `Done)
  done;
  Machine.run m;
  (* Nobody passes before the last arrival. *)
  Array.iteri
    (fun c t ->
      Alcotest.(check bool)
        (Printf.sprintf "core %d passed after last arrival" c)
        true (t >= 40_000))
    passed_at

let test_barrier_reuse () =
  let m = Machine.create (Params.default ~ncores:2 ()) in
  let b = Workloads.Barrier.create (Machine.core m 0) ~parties:2 in
  let rounds = Array.make 2 0 in
  for c = 0 to 1 do
    let core = Machine.core m c in
    let state = ref `Go in
    Machine.set_workload m c (fun () ->
        (match !state with
        | `Go ->
            Core.tick core ((c + 1) * 100);
            state := `Wait (Workloads.Barrier.arrive core b)
        | `Wait gen ->
            if Workloads.Barrier.passed core b gen then begin
              rounds.(c) <- rounds.(c) + 1;
              state := `Go
            end
            else Machine.wait_hint m core);
        rounds.(c) < 5)
  done;
  Machine.run m;
  Alcotest.(check (list int)) "five rounds each" [ 5; 5 ] (Array.to_list rounds)

(* ------------------------------------------------------------------ *)
(* Block allocator                                                     *)

let test_block_alloc_basics () =
  let m = Machine.create (Params.default ~ncores:2 ()) in
  let vm = Radixvm.create m in
  let alloc = Alloc.create vm ~unit_pages:16 ~ncores:2 in
  let c0 = Machine.core m 0 in
  let a = Alloc.alloc_pages alloc c0 4 in
  let b = Alloc.alloc_pages alloc c0 4 in
  Alcotest.(check int) "bump allocation" (a + 4) b;
  Alcotest.(check int) "one block so far" 1 (Alloc.blocks_mapped alloc);
  (* 16-page block: 4+4 used, next 12 overflows into a new block *)
  let c = Alloc.alloc_pages alloc c0 12 in
  Alcotest.(check int) "new block mapped" 2 (Alloc.blocks_mapped alloc);
  Alcotest.(check bool) "fresh block is block-aligned" true (c > b);
  (* allocations are mapped and usable *)
  Alcotest.(check bool) "mapped" true (Radixvm.mapped vm ~vpn:a);
  Alcotest.(check bool) "usable" true (Radixvm.touch vm c0 ~vpn:c = Vm.Vm_types.Ok)

let test_block_alloc_per_core_disjoint () =
  let m = Machine.create (Params.default ~ncores:2 ()) in
  let vm = Radixvm.create m in
  let alloc = Alloc.create vm ~unit_pages:16 ~ncores:2 in
  let a = Alloc.alloc_pages alloc (Machine.core m 0) 8 in
  let b = Alloc.alloc_pages alloc (Machine.core m 1) 8 in
  Alcotest.(check bool) "arenas disjoint" true (abs (a - b) >= 1 lsl 24)

let test_block_alloc_rejects_oversize () =
  let m = Machine.create (Params.default ~ncores:1 ()) in
  let vm = Radixvm.create m in
  let alloc = Alloc.create vm ~unit_pages:8 ~ncores:1 in
  Alcotest.check_raises "oversize" (Invalid_argument "Block_alloc.alloc_pages")
    (fun () -> ignore (Alloc.alloc_pages alloc (Machine.core m 0) 9))

(* ------------------------------------------------------------------ *)
(* Microbenchmarks                                                     *)

let quick_micro = 300_000
let quick_warmup = 600_000

let test_local_scales_on_radixvm () =
  let r1 =
    MB.local ~warmup:quick_warmup ~ncores:1 ~duration:quick_micro
      Radixvm.create
  in
  let r8 =
    MB.local ~warmup:quick_warmup ~ncores:8 ~duration:quick_micro
      Radixvm.create
  in
  Alcotest.(check bool) "progress" true (r1.Workloads.Microbench.page_writes > 0);
  let speedup =
    r8.Workloads.Microbench.writes_per_sec
    /. r1.Workloads.Microbench.writes_per_sec
  in
  Alcotest.(check bool)
    (Printf.sprintf "near-linear speedup (got %.1fx)" speedup)
    true
    (speedup > 6.0);
  Alcotest.(check int) "no shootdown IPIs" 0 r8.Workloads.Microbench.ipis

let test_local_flat_on_linux () =
  let r1 =
    MB_linux.local ~warmup:quick_warmup ~ncores:1 ~duration:quick_micro
      Baselines.Linux_vm.create
  in
  let r8 =
    MB_linux.local ~warmup:quick_warmup ~ncores:8 ~duration:quick_micro
      Baselines.Linux_vm.create
  in
  let speedup =
    r8.Workloads.Microbench.writes_per_sec
    /. r1.Workloads.Microbench.writes_per_sec
  in
  Alcotest.(check bool)
    (Printf.sprintf "serialized (got %.1fx)" speedup)
    true (speedup < 2.0)

let test_pipeline_one_shootdown_per_munmap () =
  let r =
    MB.pipeline ~warmup:quick_warmup ~ncores:4 ~duration:quick_micro
      Radixvm.create
  in
  Alcotest.(check bool) "progress" true (r.Workloads.Microbench.page_writes > 0);
  (* Each unmapped region was written by exactly two cores, so each
     shootdown round targets exactly one remote core. *)
  Alcotest.(check int)
    "ipis equal shootdown rounds" r.Workloads.Microbench.shootdown_events
    r.Workloads.Microbench.ipis

let test_global_progress_and_shared_frames () =
  let r =
    MB.global ~warmup:quick_warmup ~ncores:4 ~duration:1_500_000
      Radixvm.create
  in
  Alcotest.(check bool) "progress" true (r.Workloads.Microbench.page_writes > 0)

(* ------------------------------------------------------------------ *)
(* Metis                                                               *)

let test_metis_runs_and_wins () =
  let radix =
    Metis.run ~total_words:20_000 ~unit_pages:16 ~ncores:8 Radixvm.create
  in
  let linux =
    Metis_linux.run ~total_words:20_000 ~unit_pages:16 ~ncores:8
      Baselines.Linux_vm.create
  in
  Alcotest.(check bool) "radix finished" true (radix.Workloads.Metis.jobs_per_hour > 0.);
  Alcotest.(check bool) "mmaps happened" true (radix.Workloads.Metis.mmaps > 8);
  Alcotest.(check bool)
    "RadixVM beats Linux on the mmap-heavy configuration" true
    (radix.Workloads.Metis.jobs_per_hour > linux.Workloads.Metis.jobs_per_hour)

let test_metis_unit_controls_mmaps () =
  let small =
    Metis.run ~total_words:80_000 ~unit_pages:16 ~ncores:4 Radixvm.create
  in
  let big =
    Metis.run ~total_words:80_000 ~unit_pages:2048 ~ncores:4 Radixvm.create
  in
  Alcotest.(check bool)
    "64KB unit does far more mmaps than 8MB unit" true
    (small.Workloads.Metis.mmaps > 4 * big.Workloads.Metis.mmaps);
  Alcotest.(check bool)
    "similar fault counts" true
    (abs (small.Workloads.Metis.pagefaults - big.Workloads.Metis.pagefaults)
    < small.Workloads.Metis.pagefaults)

let test_metis_deterministic () =
  let a = Metis.run ~total_words:10_000 ~unit_pages:16 ~ncores:4 Radixvm.create in
  let b = Metis.run ~total_words:10_000 ~unit_pages:16 ~ncores:4 Radixvm.create in
  Alcotest.(check int) "same cycles" a.Workloads.Metis.job_cycles
    b.Workloads.Metis.job_cycles;
  Alcotest.(check int) "same faults" a.Workloads.Metis.pagefaults
    b.Workloads.Metis.pagefaults

(* ------------------------------------------------------------------ *)
(* Index benchmark (Figures 6/7 direction)                             *)

let test_radix_readers_immune_to_writers () =
  let base =
    Workloads.Index_bench.radix ~readers:8 ~writers:0 ~duration:300_000 ()
  in
  let loaded =
    Workloads.Index_bench.radix ~readers:8 ~writers:4 ~duration:300_000 ()
  in
  Alcotest.(check bool) "lookups happened" true
    (base.Workloads.Index_bench.lookups > 0);
  let ratio =
    loaded.Workloads.Index_bench.lookups_per_sec
    /. base.Workloads.Index_bench.lookups_per_sec
  in
  Alcotest.(check bool)
    (Printf.sprintf "radix readers barely affected (ratio %.2f)" ratio)
    true (ratio > 0.8)

let test_skiplist_readers_hurt_by_writers () =
  let base =
    Workloads.Index_bench.skiplist ~readers:8 ~writers:0 ~duration:300_000 ()
  in
  let loaded =
    Workloads.Index_bench.skiplist ~readers:8 ~writers:4 ~duration:300_000 ()
  in
  let ratio =
    loaded.Workloads.Index_bench.lookups_per_sec
    /. base.Workloads.Index_bench.lookups_per_sec
  in
  (* writers on unrelated keys must cost the readers something real *)
  Alcotest.(check bool)
    (Printf.sprintf "skiplist readers degraded (ratio %.2f)" ratio)
    true (ratio < 0.9)

(* ------------------------------------------------------------------ *)
(* Counter benchmark (Figure 8 direction)                              *)

module CB_refcache = Workloads.Counter_bench.Make (Refcnt.Refcache_counter)
module CB_shared = Workloads.Counter_bench.Make (Refcnt.Shared_counter)

let test_refcache_beats_shared_counter () =
  let rc = CB_refcache.run ~ncores:8 ~duration:300_000 () in
  let sh = CB_shared.run ~ncores:8 ~duration:300_000 () in
  Alcotest.(check bool) "progress" true (rc.Workloads.Counter_bench.iterations > 0);
  Alcotest.(check bool)
    "refcache outscales the shared counter at 8 cores" true
    (rc.Workloads.Counter_bench.iters_per_sec
    > sh.Workloads.Counter_bench.iters_per_sec)

let test_counter_bench_scales_refcache () =
  let one = CB_refcache.run ~ncores:1 ~duration:300_000 () in
  let eight = CB_refcache.run ~ncores:8 ~duration:300_000 () in
  let speedup =
    eight.Workloads.Counter_bench.iters_per_sec
    /. one.Workloads.Counter_bench.iters_per_sec
  in
  Alcotest.(check bool)
    (Printf.sprintf "refcache scales (%.1fx at 8 cores)" speedup)
    true (speedup > 5.0)

(* ------------------------------------------------------------------ *)
(* Zipf sampler                                                        *)

(* An independent inverse-CDF reference: recompute the table with the
   same summation order (so the floats agree bit-for-bit) and replace
   the binary search with a linear scan. *)
let zipf_reference_cdf n s =
  let weights = Array.init n (fun i -> 1.0 /. (float_of_int (i + 1) ** s)) in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i w ->
      acc := !acc +. (w /. total);
      cdf.(i) <- !acc)
    weights;
  cdf.(n - 1) <- 1.0;
  cdf

let zipf_matches_reference =
  QCheck.Test.make ~name:"zipf matches exact inverse-CDF reference" ~count:200
    QCheck.(
      triple (int_range 1 40) (float_bound_inclusive 3.0) (int_bound 10_000))
    (fun (n, s, seed) ->
      let z = Workloads.Zipf.create ~n ~s ~seed in
      let cdf = zipf_reference_cdf n s in
      let reference u =
        let i = ref 0 in
        while u >= cdf.(!i) do
          incr i
        done;
        !i
      in
      let ok = ref true in
      for _ = 1 to 100 do
        let u = Workloads.Zipf.uniform z in
        let r = Workloads.Zipf.sample_u z u in
        if r <> reference u || r < 0 || r >= n then ok := false
      done;
      !ok)

let zipf_next_in_range =
  QCheck.Test.make ~name:"zipf next never leaves [0, n)" ~count:200
    QCheck.(pair (int_range 1 100) (int_bound 10_000))
    (fun (n, seed) ->
      let z = Workloads.Zipf.create ~n ~s:1.5 ~seed in
      let ok = ref true in
      for _ = 1 to 500 do
        let r = Workloads.Zipf.next z in
        if r < 0 || r >= n then ok := false
      done;
      !ok)

(* The property the workload actually leans on: the stream is a pure
   function of (n, s, seed) — the same on a worker domain at any pool
   width as on the main domain. *)
let test_zipf_deterministic_across_domains () =
  let stream () =
    let z = Workloads.Zipf.create ~n:64 ~s:1.1 ~seed:7 in
    List.init 2_000 (fun _ -> Workloads.Zipf.next z)
  in
  let serial = stream () in
  List.iter
    (fun jobs ->
      let results =
        Harness.Pool.run ~jobs
          (List.init 4 (fun i ->
               Harness.Pool.job ~name:(string_of_int i) stream))
      in
      List.iteri
        (fun i r ->
          Alcotest.(check (list int))
            (Printf.sprintf "jobs=%d worker %d matches serial" jobs i)
            serial r)
        results)
    [ 1; 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Cache-serve: the model-checked session                              *)

module CS = Workloads.Cache_serve

let run_session ?(via_kernel = false) ?(compact_every = 0) ?(ops = 10_000)
    kind =
  let chk = ref None in
  let o =
    CS.Session.run ~ncores:4 ~procs:3 ~slots:64 ~ops ~rangelock:kind
      ~via_kernel ~compact_every
      ~on_machine:(fun m -> chk := Some (Check.attach m))
      ()
  in
  (o, Option.get !chk)

let check_session_clean name ((o : CS.Session.outcome), chk) =
  Alcotest.(check (list string)) (name ^ ": no divergences") [] o.divergences;
  Alcotest.(check bool) (name ^ ": hits and misses") true
    (o.hits > 0 && o.misses > 0);
  Alcotest.(check bool) (name ^ ": evictions ran") true (o.evictions > 0);
  Alcotest.(check bool) (name ^ ": dirty writebacks ran") true
    (o.writebacks > 0);
  Alcotest.(check int) (name ^ ": TLB mirror clean") 0
    (List.length (Check.tlb_violations chk));
  Alcotest.(check int) (name ^ ": refcache ledger clean") 0
    (List.length (Check.rc_violations chk));
  Alcotest.(check int) (name ^ ": no leaked locks") 0
    (List.length (Check.leaked_locks chk))

(* Satellite 2: a 10k-op serving session is divergence-free against
   Cache_model under every range-lock backend, and its observable
   history is byte-identical across them — the backend choice is a
   performance knob, never a semantics knob. *)
let test_session_identical_across_backends () =
  let sessions =
    List.map
      (fun (name, kind) -> (name, run_session kind))
      [
        ("radix", Locks.Range_lock.Radix_embedded);
        ("list", Locks.Range_lock.List_based);
        ("global", Locks.Range_lock.Global);
      ]
  in
  let _, ((first : CS.Session.outcome), _) = List.hd sessions in
  List.iter
    (fun (name, ((o : CS.Session.outcome), _chk as s)) ->
      check_session_clean name s;
      Alcotest.(check string)
        (name ^ ": history byte-identical to radix backend")
        first.history o.history)
    sessions

(* The same session driven through Os.Kernel syscalls (sys_fork per
   process, sys_mmap/sys_munmap for every slot move) observes the same
   history as direct Radixvm calls: the syscall layer adds errno
   plumbing, not semantics. *)
let test_session_kernel_matches_direct () =
  let direct, _ = run_session Locks.Range_lock.Radix_embedded in
  let (kernel, _chk) as s =
    run_session ~via_kernel:true Locks.Range_lock.Radix_embedded
  in
  check_session_clean "kernel" s;
  Alcotest.(check string) "kernel history matches direct" direct.history
    kernel.history

(* Whole-file truncate compactions (the VFS resize hook dropping every
   cached page) stay inside the model too. *)
let test_session_compaction_clean () =
  let (o, _chk) as s =
    run_session ~compact_every:4_000 Locks.Range_lock.Radix_embedded
  in
  check_session_clean "compact" s;
  Alcotest.(check int) "two compactions" 2 o.compactions

(* ------------------------------------------------------------------ *)
(* Cache-serve: the throughput workload                                *)

module CS_radix = Workloads.Cache_serve.Make (Vm.Radixvm.Default)

let test_cacheserve_progress_and_evictions () =
  let r =
    CS_radix.serve ~warmup:600_000 ~slots:64 ~evict_every:256 ~ncores:4
      ~duration:400_000 Radixvm.create
  in
  Alcotest.(check bool) "ops" true (r.CS.ops > 0);
  Alcotest.(check bool) "evictions" true (r.CS.evictions > 0);
  Alcotest.(check bool) "eviction shootdowns are real IPIs" true (r.CS.ipis > 0)

let test_cacheserve_deterministic () =
  let run () =
    CS_radix.serve ~warmup:600_000 ~slots:64 ~evict_every:256 ~ncores:4
      ~duration:400_000 Radixvm.create
  in
  let a = run () and b = run () in
  Alcotest.(check int) "same ops" a.CS.ops b.CS.ops;
  Alcotest.(check int) "same evictions" a.CS.evictions b.CS.evictions;
  Alcotest.(check int) "same ipis" a.CS.ipis b.CS.ipis

(* ------------------------------------------------------------------ *)
(* Snapshots (Table 2)                                                 *)

let test_snapshot_measures () =
  let row = Workloads.Snapshots.measure Workloads.Snapshots.apache in
  Alcotest.(check bool) "vma bytes positive" true (row.Workloads.Snapshots.linux_vma_bytes > 0);
  Alcotest.(check bool) "pt bytes positive" true (row.Workloads.Snapshots.linux_pt_bytes > 0);
  Alcotest.(check bool) "radix bytes positive" true (row.Workloads.Snapshots.radix_bytes > 0);
  Alcotest.(check bool)
    (Printf.sprintf "ratio in a sane band (%.1f)" row.Workloads.Snapshots.ratio)
    true
    (row.Workloads.Snapshots.ratio > 0.5 && row.Workloads.Snapshots.ratio < 8.0)

let test_snapshot_radix_costs_more_than_vma_tree () =
  let row = Workloads.Snapshots.measure Workloads.Snapshots.mysql in
  (* The paper's core observation: the radix tree is bigger than Linux's
     VMA tree alone, but a small multiple of VMA tree + page tables. *)
  Alcotest.(check bool) "radix > vma tree" true
    (row.Workloads.Snapshots.radix_bytes > row.Workloads.Snapshots.linux_vma_bytes);
  Alcotest.(check bool) "but only a few x the total" true
    (row.Workloads.Snapshots.ratio < 5.0)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "workloads"
    [
      ( "barrier",
        [
          tc "synchronizes" `Quick test_barrier_sync;
          tc "reusable" `Quick test_barrier_reuse;
        ] );
      ( "block_alloc",
        [
          tc "basics" `Quick test_block_alloc_basics;
          tc "per-core arenas" `Quick test_block_alloc_per_core_disjoint;
          tc "oversize rejected" `Quick test_block_alloc_rejects_oversize;
        ] );
      ( "microbench",
        [
          tc "local scales on radixvm" `Slow test_local_scales_on_radixvm;
          tc "local flat on linux" `Slow test_local_flat_on_linux;
          tc "pipeline targeted shootdowns" `Slow test_pipeline_one_shootdown_per_munmap;
          tc "global progress" `Slow test_global_progress_and_shared_frames;
        ] );
      ( "metis",
        [
          tc "runs and wins" `Slow test_metis_runs_and_wins;
          tc "unit controls mmaps" `Slow test_metis_unit_controls_mmaps;
          tc "deterministic" `Slow test_metis_deterministic;
        ] );
      ( "index bench",
        [
          tc "radix immune" `Slow test_radix_readers_immune_to_writers;
          tc "skiplist degraded" `Slow test_skiplist_readers_hurt_by_writers;
        ] );
      ( "counter bench",
        [
          tc "refcache beats shared" `Slow test_refcache_beats_shared_counter;
          tc "refcache scales" `Slow test_counter_bench_scales_refcache;
        ] );
      ( "zipf",
        [
          QCheck_alcotest.to_alcotest zipf_matches_reference;
          QCheck_alcotest.to_alcotest zipf_next_in_range;
          tc "deterministic across domains" `Quick
            test_zipf_deterministic_across_domains;
        ] );
      ( "cache_serve session",
        [
          tc "identical across backends" `Quick
            test_session_identical_across_backends;
          tc "kernel matches direct" `Quick test_session_kernel_matches_direct;
          tc "compaction clean" `Quick test_session_compaction_clean;
        ] );
      ( "cache_serve",
        [
          tc "progress and evictions" `Slow
            test_cacheserve_progress_and_evictions;
          tc "deterministic" `Slow test_cacheserve_deterministic;
        ] );
      ( "snapshots",
        [
          tc "measures" `Slow test_snapshot_measures;
          tc "radix vs vma" `Slow test_snapshot_radix_costs_more_than_vma_tree;
        ] );
    ]
