(* Tests for the pluggable range-lock backends (lib/locks + the backend
   parameter on Radix/Radixvm): the boundary matrix every backend must
   pass (lo = 0, hi = max_vpn, single pages, adjacent ranges), the
   blocking-semantics agreement (overlap serializes everywhere; disjoint
   ranges run in parallel everywhere except the global strawman, whose
   whole-point is that they don't), the DragonFly fold-partitioning
   trick, node recycling in the list backend, and a qcheck property
   cross-checking the list backend against a held-ranges model. *)

open Ccsim
module Refcache = Refcnt.Refcache
module RL = Locks.Range_lock

let epoch = 10_000

let setup ?(ncores = 4) ?(bits = 4) ?(levels = 3)
    ?(backend = RL.Radix_embedded) ?partition () =
  let m = Machine.create (Params.default ~ncores ~epoch_cycles:epoch ()) in
  let rc = Refcache.create m in
  let core0 = Machine.core m 0 in
  let tree = Radix.create ~bits ~levels ~backend ?partition m rc core0 in
  (m, tree)

let mmap tree core ~lo ~hi v =
  let lk = Radix.lock_range tree core ~lo ~hi in
  ignore (Radix.clear_range tree core lk);
  Radix.fill_range tree core lk v;
  Radix.unlock_range tree core lk

let munmap tree core ~lo ~hi =
  let lk = Radix.lock_range tree core ~lo ~hi in
  ignore (Radix.clear_range tree core lk);
  Radix.unlock_range tree core lk

let backends = RL.all
let backend_name = RL.name

(* ------------------------------------------------------------------ *)
(* Boundary matrix: every backend must handle the address-space edges  *)

let test_boundaries backend () =
  let m, tree = setup ~backend () in
  let c = Machine.core m 0 in
  let max = Radix.max_vpn tree in
  (* lo = 0, single page. *)
  mmap tree c ~lo:0 ~hi:1 "first";
  Alcotest.(check (option string)) "page 0" (Some "first") (Radix.lookup tree c 0);
  (* hi = max_vpn, single page. *)
  mmap tree c ~lo:(max - 1) ~hi:max "last";
  Alcotest.(check (option string)) "last page" (Some "last")
    (Radix.lookup tree c (max - 1));
  munmap tree c ~lo:0 ~hi:1;
  munmap tree c ~lo:(max - 1) ~hi:max;
  (* The whole space at once. *)
  mmap tree c ~lo:0 ~hi:max "all";
  Alcotest.(check (option string)) "mid" (Some "all")
    (Radix.lookup tree c (max / 2));
  munmap tree c ~lo:0 ~hi:max;
  Alcotest.(check (option string)) "empty again" None (Radix.lookup tree c 0);
  Radix.check_invariants tree

let test_bad_ranges backend () =
  let m, tree = setup ~backend () in
  let c = Machine.core m 0 in
  Alcotest.check_raises "empty range"
    (Invalid_argument "Radix.lock_range: bad range") (fun () ->
      ignore (Radix.lock_range tree c ~lo:5 ~hi:5));
  Alcotest.check_raises "past the end"
    (Invalid_argument "Radix.lock_range: bad range") (fun () ->
      ignore (Radix.lock_range tree c ~lo:0 ~hi:(Radix.max_vpn tree + 1)))

(* ------------------------------------------------------------------ *)
(* Blocking semantics: where the backends must agree (and where the
   global strawman is documented to differ)                            *)

(* Overlapping ranges serialize under every backend: core a holds
   [4, 8) across a 100k-cycle critical section; core b's [7, 12) must
   not begin until a released. *)
let test_overlap_serializes backend () =
  let m, tree = setup ~backend () in
  let a = Machine.core m 0 and b = Machine.core m 1 in
  mmap tree a ~lo:0 ~hi:16 "v";
  let lk = Radix.lock_range tree a ~lo:4 ~hi:8 in
  Core.tick a 100_000;
  Radix.unlock_range tree a lk;
  let lk_b = Radix.lock_range tree b ~lo:7 ~hi:12 in
  Alcotest.(check bool)
    (Printf.sprintf "[%s] overlapping locker waited" (backend_name backend))
    true
    (Core.now b >= 100_000);
  Radix.unlock_range tree b lk_b;
  Radix.check_invariants tree

(* Adjacent, non-overlapping single-page-granularity ranges: [4, 6) and
   [6, 8) share no page, so b must not serialize behind a's critical
   section — except under the global backend, where serializing
   everything is the (documented) point. The two ranges are mapped
   separately so the embedded backend's tree holds them as expanded
   leaf pages, not one fold: locking any page of a fold holds the
   fold's whole span (that propagation is partition_probe's subject,
   not this test's). *)
let test_adjacent_ranges backend () =
  let m, tree = setup ~backend () in
  let a = Machine.core m 0 and b = Machine.core m 1 in
  mmap tree a ~lo:4 ~hi:6 "v";
  mmap tree a ~lo:6 ~hi:8 "w";
  let lk = Radix.lock_range tree a ~lo:4 ~hi:6 in
  Core.tick a 100_000;
  Radix.unlock_range tree a lk;
  let lk_b = Radix.lock_range tree b ~lo:6 ~hi:8 in
  let waited = Core.now b >= 100_000 in
  Alcotest.(check bool)
    (Printf.sprintf "[%s] adjacent ranges %s" (backend_name backend)
       (if backend = RL.Global then "serialize (strawman)" else "run in parallel"))
    (backend = RL.Global) waited;
  Radix.unlock_range tree b lk_b;
  Radix.check_invariants tree

(* ------------------------------------------------------------------ *)
(* The DragonFly partition trick                                       *)

(* One 256-page fold (a full root slot at bits=4, levels=3). Locking a
   single page of it under the plain embedded backend expands the fold,
   and expansion propagates the lock to every new slot: core a's
   one-page critical section holds all 256 pages, so core b's fault on
   page 200 serializes behind it. With ~partition:8 the fold is split
   instead of propagated, a holds only its page, and b proceeds. *)
let partition_probe partition =
  let m, tree = setup ?partition () in
  let a = Machine.core m 0 and b = Machine.core m 1 in
  mmap tree a ~lo:0 ~hi:256 "big";
  let lk = Radix.lock_range tree a ~lo:0 ~hi:1 in
  Core.tick a 100_000;
  Radix.unlock_range tree a lk;
  let lk_b = Radix.lock_range tree b ~lo:200 ~hi:201 in
  let waited = Core.now b >= 100_000 in
  Radix.unlock_range tree b lk_b;
  (* Splitting must be invisible to the mapping itself. *)
  Alcotest.(check (option string)) "fold value intact" (Some "big")
    (Radix.lookup tree b 137);
  Radix.check_invariants tree;
  waited

let test_partition_avoids_propagation () =
  Alcotest.(check bool)
    "plain embedded: expansion serializes the whole fold" true
    (partition_probe None);
  Alcotest.(check bool)
    "partition=8: disjoint faults on one fold proceed" false
    (partition_probe (Some 8))

let test_partition_external_rejected () =
  let m = Machine.create (Params.default ~ncores:2 ~epoch_cycles:epoch ()) in
  let rc = Refcache.create m in
  let c = Machine.core m 0 in
  Alcotest.check_raises "partition requires the embedded backend"
    (Invalid_argument "Radix.create: ~partition applies only to the embedded backend")
    (fun () ->
      ignore
        (Radix.create ~bits:4 ~levels:3 ~backend:RL.List_based ~partition:8 m
           rc c))

(* ------------------------------------------------------------------ *)
(* List backend: node recycling                                        *)

let test_list_recycling () =
  (* One core, so the quiescence horizon (min core clock) advances and
     released nodes actually become recyclable. *)
  let m = Machine.create (Params.default ~ncores:1 ~epoch_cycles:epoch ()) in
  let c = Machine.core m 0 in
  let t = Locks.List_lock.create m c in
  (* Sequential churn: each acquire recycles the previous node straight
     out of the pool, so the list never grows past one node. *)
  for i = 0 to 31 do
    let h = Locks.List_lock.acquire c t ~lo:(i * 4) ~hi:((i * 4) + 2) in
    Core.tick c 1_000;
    Locks.List_lock.release c t h
  done;
  Alcotest.(check bool) "list stays bounded under churn" true
    (Locks.List_lock.outstanding t + Locks.List_lock.pooled t <= 2);
  (* Two disjoint holds released together: the next acquire unlinks both
     quiescent nodes and reuses one, leaving the other in the pool. *)
  let h1 = Locks.List_lock.acquire c t ~lo:200 ~hi:202 in
  let h2 = Locks.List_lock.acquire c t ~lo:204 ~hi:206 in
  Core.tick c 1_000;
  Locks.List_lock.release c t h1;
  Locks.List_lock.release c t h2;
  Core.tick c 1_000;
  let h3 = Locks.List_lock.acquire c t ~lo:208 ~hi:210 in
  Alcotest.(check bool) "released nodes were recycled" true
    (Locks.List_lock.pooled t > 0);
  Alcotest.(check bool) "unlinked, not leaked" true
    (Locks.List_lock.outstanding t = 1);
  Locks.List_lock.release c t h3

(* ------------------------------------------------------------------ *)
(* List backend vs a held-ranges model (qcheck)                        *)

(* The model is the set of previously held ranges with their release
   times. For each acquisition: if any overlapping range's release time
   is still in the acquirer's future, the acquirer must end up at or
   past every such release (overlap => block, exclusion intervals
   serialize); if none is, the machine-wide lock-wait counter must not
   move (disjoint or already-released => both acquire without waiting). *)
let list_model_test =
  let op_gen =
    QCheck.Gen.(
      map3
        (fun core lo (len, hold) -> (core, lo, lo + 1 + len, hold))
        (int_bound 3) (int_bound 60)
        (pair (int_bound 7) (int_bound 5_000)))
  in
  QCheck.Test.make ~name:"list backend matches held-range model" ~count:100
    (QCheck.make
       ~print:(fun l ->
         String.concat ";"
           (List.map
              (fun (c, lo, hi, hold) -> Printf.sprintf "c%d[%d,%d)+%d" c lo hi hold)
              l))
       QCheck.Gen.(list_size (int_range 1 40) op_gen))
    (fun ops ->
      let m = Machine.create (Params.default ~ncores:4 ~epoch_cycles:epoch ()) in
      let t = Locks.List_lock.create m (Machine.core m 0) in
      let model = ref [] in
      let ok = ref true in
      List.iter
        (fun (ci, lo, hi, hold) ->
          let core = Machine.core m ci in
          let t0 = core.Core.clock in
          let wait0 = (Machine.stats m).Stats.lock_wait_cycles in
          let h = Locks.List_lock.acquire core t ~lo ~hi in
          let blockers =
            List.filter
              (fun (l, h', rt) -> l < hi && lo < h' && rt > t0)
              !model
          in
          List.iter
            (fun (_, _, rt) -> if core.Core.clock < rt then ok := false)
            blockers;
          if
            blockers = []
            && (Machine.stats m).Stats.lock_wait_cycles <> wait0
          then ok := false;
          Core.tick core hold;
          Locks.List_lock.release core t h;
          model := (lo, hi, Core.now core) :: !model)
        ops;
      !ok)

(* ------------------------------------------------------------------ *)

let () =
  let tc = Alcotest.test_case in
  let per_backend name f =
    List.map
      (fun b -> tc (Printf.sprintf "%s (%s)" name (backend_name b)) `Quick (f b))
      backends
  in
  Alcotest.run "locks"
    [
      ("boundaries", per_backend "edges of the space" test_boundaries
                     @ per_backend "bad ranges rejected" test_bad_ranges);
      ( "blocking agreement",
        per_backend "overlap serializes" test_overlap_serializes
        @ per_backend "adjacent ranges" test_adjacent_ranges );
      ( "partition",
        [
          tc "splits instead of propagating" `Quick
            test_partition_avoids_propagation;
          tc "external backends reject it" `Quick
            test_partition_external_rejected;
        ] );
      ( "list backend",
        [
          tc "node recycling" `Quick test_list_recycling;
          QCheck_alcotest.to_alcotest list_model_test;
        ] );
    ]
