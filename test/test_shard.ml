(* Tests for the epoch-barrier shard engine (Harness.Shard): cross-shard
   IPI ordering and delivery-time quantization must be independent of how
   nodes are laid out over host domains, and the Shard_bench worlds must
   produce bit-identical results at shard widths 1, 2, and 4. *)

open Ccsim
module Shard = Harness.Shard
module SB = Workloads.Shard_bench.Make (Vm.Radixvm.Default)

let widths = [ 1; 2; 4 ]

(* A 4-node world in which node 0's core 0 issues remote shootdown
   rounds to (node 2, core 1) and (node 1, core 0) at fixed virtual
   times, then retires. Returns the canonical delivery log (rendered)
   plus each node's effective core clocks at the end. *)
let shootdown_world ~shards =
  let params = List.init 4 (fun _ -> Params.default ~ncores:2 ()) in
  let w = Shard.create ~keep_log:true ~epoch:20_000 params in
  let nd0 = Shard.node w 0 in
  let m0 = Shard.machine nd0 in
  let core0 = Machine.core m0 0 in
  let rounds = ref 0 in
  Machine.set_workload m0 0 (fun () ->
      incr rounds;
      Ipi.remote m0 core0 ~targets:[ (2, 1); (1, 0) ];
      Core.tick core0 7_000;
      !rounds < 5);
  Shard.run ~shards w;
  let log =
    List.map
      (fun (d : Shard.delivery) ->
        Format.asprintf "e%d %d->%d sent=%d at=%d %s" d.Shard.d_epoch
          d.Shard.d_src d.Shard.d_dst d.Shard.d_sent d.Shard.d_time
          (match d.Shard.d_payload with
          | Machine.Xshootdown { core; handler } ->
              Printf.sprintf "sd(core=%d,h=%d)" core handler
          | Machine.Xrc _ -> "rc"
          | Machine.Xmsg _ -> "msg"))
      (Shard.log w)
  in
  let clocks =
    List.concat_map
      (fun n ->
        let m = Shard.machine (Shard.node w n) in
        List.map
          (fun c ->
            let core = Machine.core m c in
            core.Core.clock + core.Core.pending_intr)
          [ 0; 1 ])
      [ 0; 1; 2; 3 ]
  in
  (log, clocks, Shard.sent w, Shard.delivered w)

let test_ipi_ordering_layout_independent () =
  let reference = shootdown_world ~shards:1 in
  let log1, clocks1, sent1, delivered1 = reference in
  Alcotest.(check bool) "events flowed" true (sent1 > 0);
  Alcotest.(check int) "all delivered" sent1 delivered1;
  List.iter
    (fun shards ->
      let log, clocks, sent, delivered = shootdown_world ~shards in
      Alcotest.(check (list string))
        (Printf.sprintf "delivery log at shards=%d" shards)
        log1 log;
      Alcotest.(check (list int))
        (Printf.sprintf "core clocks at shards=%d" shards)
        clocks1 clocks;
      Alcotest.(check (pair int int))
        (Printf.sprintf "counters at shards=%d" shards)
        (sent1, delivered1) (sent, delivered))
    widths

let test_ipi_delivery_quantized () =
  let log, _, _, _ = shootdown_world ~shards:1 in
  (* Every delivery lands exactly at the boundary of the epoch after its
     send: d_time = (floor(sent / epoch) + 1) * epoch. *)
  List.iter
    (fun line ->
      Scanf.sscanf line "e%d %d->%d sent=%d at=%d"
        (fun _e _src _dst sent at ->
          Alcotest.(check int)
            (Printf.sprintf "quantized delivery for %s" line)
            (((sent / 20_000) + 1) * 20_000)
            at))
    log

let test_remote_requires_uplink () =
  let m = Machine.create (Params.default ~ncores:2 ()) in
  Alcotest.check_raises "standalone machine"
    (Invalid_argument "Machine.uplink_send: no uplink installed")
    (fun () -> Ipi.remote m (Machine.core m 0) ~targets:[ (1, 0) ])

(* Handlers and channel posts: a fork-style round trip must complete and
   be counted identically at any width. *)
let bench_cfg scenario =
  {
    Workloads.Shard_bench.nodes = 4;
    cores = 2;
    shards = 1;
    (* Force the requested layout so widths 1/2/4 genuinely run 1/2/4
       domains even on a single-CPU host. *)
    clamp = false;
    duration = 400_000;
    epoch = 50_000;
  }
  |> fun cfg ->
  match scenario with
  | "disjoint" -> { cfg with Workloads.Shard_bench.cores = 3 }
  (* A fork iteration costs ~285k simulated cycles, so the spawn/reap
     round trip needs a few of those within the duration. *)
  | "fork" -> { cfg with Workloads.Shard_bench.duration = 1_500_000 }
  | _ -> cfg

let strip_shards (r : Workloads.Shard_bench.result) =
  Format.asprintf
    "%s n=%d c=%d ops=%d acks=%d epochs=%d sent=%d del=%d sim=%d ipis=%d \
     sd=%d %s"
    r.scenario r.nodes r.cores r.ops r.remote_acks r.epochs r.xs_sent
    r.xs_delivered r.sim_cycles r.ipis r.shootdown_events r.digest

let test_bench_deterministic_across_widths () =
  List.iter
    (fun scenario ->
      let cfg = bench_cfg scenario in
      let reference =
        strip_shards (SB.run { cfg with shards = 1 } ~scenario)
      in
      List.iter
        (fun shards ->
          let r = SB.run { cfg with shards } ~scenario in
          Alcotest.(check int) "reported width" shards r.shards;
          Alcotest.(check string)
            (Printf.sprintf "%s at shards=%d" scenario shards)
            reference (strip_shards r))
        widths)
    Workloads.Shard_bench.scenarios

let test_bench_cross_traffic_flows () =
  (* The fork and shared scenarios must actually exercise the epoch
     batch: events sent, delivered, and (for fork) acknowledged. *)
  let fork = SB.run (bench_cfg "fork") ~scenario:"fork" in
  Alcotest.(check bool) "fork sends" true (fork.xs_sent > 0);
  Alcotest.(check bool) "fork acks" true (fork.remote_acks > 0);
  let shared = SB.run (bench_cfg "shared") ~scenario:"shared" in
  Alcotest.(check bool) "shared sends" true (shared.xs_sent > 0);
  Alcotest.(check bool) "shared shootdowns land" true (shared.ipis > 0);
  let disjoint = SB.run (bench_cfg "disjoint") ~scenario:"disjoint" in
  Alcotest.(check int) "disjoint is traffic-free" 0 disjoint.xs_sent

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "shard"
    [
      ( "ipi",
        [
          tc "layout independence" `Quick test_ipi_ordering_layout_independent;
          tc "epoch quantization" `Quick test_ipi_delivery_quantized;
          tc "standalone machines reject remote" `Quick
            test_remote_requires_uplink;
        ] );
      ( "bench",
        [
          tc "widths 1/2/4 identical" `Quick
            test_bench_deterministic_across_widths;
          tc "cross-shard traffic flows" `Quick test_bench_cross_traffic_flows;
        ] );
    ]
