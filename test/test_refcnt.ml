(* Tests for Refcache (Figure 2) and the rival counting schemes. *)

open Ccsim
module Refcache = Refcnt.Refcache

let epoch = 10_000

(* Every machine in this file runs with the dynamic checker attached;
   a final test asserts the cumulative TLB-coherence and refcount
   analyses stayed clean across everything the suite did. *)
let checked : Check.t list ref = ref []

let machine ?(ncores = 4) () =
  let m = Machine.create (Params.default ~ncores ~epoch_cycles:epoch ()) in
  checked := Check.attach m :: !checked;
  m

let test_checker_clean () =
  Alcotest.(check bool) "checkers attached" true (!checked <> []);
  List.iter
    (fun chk ->
      List.iter
        (fun v -> Format.eprintf "%a@." Check.pp_tlb_violation v)
        (Check.tlb_violations chk);
      List.iter
        (fun v -> Format.eprintf "%a@." Check.pp_rc_violation v)
        (Check.rc_violations chk);
      Alcotest.(check int) "no stale TLB entries" 0
        (List.length (Check.tlb_violations chk));
      Alcotest.(check int) "no refcount violations" 0
        (List.length (Check.rc_violations chk)))
    !checked

let drain_epochs m n = Machine.drain m ~cycles:(n * epoch)

(* ------------------------------------------------------------------ *)
(* Refcache basics                                                     *)

let test_free_after_zero () =
  let m = machine () in
  let rc = Refcache.create m in
  let c0 = Machine.core m 0 in
  let freed = ref 0 in
  let obj = Refcache.make_obj rc c0 ~init:1 ~free:(fun _ -> incr freed) in
  Refcache.dec rc c0 obj;
  Alcotest.(check int) "true count zero" 0 (Refcache.true_count rc obj);
  Alcotest.(check int) "not freed yet" 0 !freed;
  drain_epochs m 5;
  Alcotest.(check int) "freed exactly once" 1 !freed;
  Alcotest.(check bool) "marked freed" true (Refcache.is_freed obj)

let test_not_freed_while_referenced () =
  let m = machine () in
  let rc = Refcache.create m in
  let c0 = Machine.core m 0 in
  let freed = ref 0 in
  let obj = Refcache.make_obj rc c0 ~init:2 ~free:(fun _ -> incr freed) in
  Refcache.dec rc c0 obj;
  drain_epochs m 5;
  Alcotest.(check int) "still alive" 0 !freed;
  Alcotest.(check int) "count one" 1 (Refcache.true_count rc obj);
  Refcache.dec rc c0 obj;
  drain_epochs m 5;
  Alcotest.(check int) "now freed" 1 !freed

let test_batching_no_global_writes () =
  let m = machine () in
  let rc = Refcache.create m in
  let c0 = Machine.core m 0 in
  let obj = Refcache.make_obj rc c0 ~init:1 ~free:(fun _ -> ()) in
  let s = Machine.stats m in
  let transfers_before = Stats.total_transfers s + s.Stats.dram_fills in
  (* Paired inc/dec on one core: pure delta-cache traffic, cancels before
     any flush; the global count line is never touched. *)
  for _ = 1 to 1_000 do
    Refcache.inc rc c0 obj;
    Refcache.dec rc c0 obj
  done;
  Alcotest.(check int)
    "no cache-line movement" transfers_before
    (Stats.total_transfers s + s.Stats.dram_fills);
  Alcotest.(check int) "count intact" 1 (Refcache.true_count rc obj)

let test_reordered_flush_no_false_free () =
  (* Epoch-2 scenario from Figure 1: core 0's decrement flushes before
     core 1's increment, so the global count transiently reads zero even
     though the true count is 1. The object must survive. *)
  let m = machine () in
  let rc = Refcache.create m in
  let c0 = Machine.core m 0 and c1 = Machine.core m 1 in
  let freed = ref 0 in
  let obj = Refcache.make_obj rc c0 ~init:1 ~free:(fun _ -> incr freed) in
  Refcache.inc rc c1 obj;
  Refcache.dec rc c0 obj;
  Alcotest.(check int) "true count one" 1 (Refcache.true_count rc obj);
  drain_epochs m 6;
  Alcotest.(check int) "survived reordered flushes" 0 !freed;
  Alcotest.(check int) "count still one" 1 (Refcache.true_count rc obj)

let test_dirty_zero_delays_but_frees () =
  (* Drive the count 0 -> 1 -> 0 across epochs so a dirty zero occurs;
     the object must still be freed in the end, exactly once. *)
  let m = machine () in
  let rc = Refcache.create m in
  let c0 = Machine.core m 0 and c1 = Machine.core m 1 in
  let freed = ref 0 in
  let obj = Refcache.make_obj rc c0 ~init:1 ~free:(fun _ -> incr freed) in
  Refcache.dec rc c0 obj;
  drain_epochs m 1;
  (* It is now on a review queue with a zero global count. Revive and
     re-kill it from another core, with a flush in between so the global
     count actually leaves and returns to zero (a dirty zero). *)
  Refcache.inc rc c1 obj;
  drain_epochs m 1;
  Alcotest.(check int) "alive mid-revival" 0 !freed;
  Refcache.dec rc c1 obj;
  drain_epochs m 8;
  Alcotest.(check int) "freed exactly once" 1 !freed

(* ------------------------------------------------------------------ *)
(* Weak references                                                     *)

let test_tryget_revives () =
  let m = machine () in
  let rc = Refcache.create m in
  let c0 = Machine.core m 0 and c1 = Machine.core m 1 in
  let freed = ref 0 in
  let obj, weak =
    Refcache.make_weak_obj rc c0 ~init:1 ~free:(fun _ -> incr freed)
  in
  Refcache.dec rc c0 obj;
  drain_epochs m 1;
  (* On a review queue, dying. Revive it. *)
  (match Refcache.tryget rc c1 weak with
  | Some o -> Alcotest.(check bool) "same object" true (o == obj)
  | None -> Alcotest.fail "tryget failed before free");
  drain_epochs m 6;
  Alcotest.(check int) "revived object not freed" 0 !freed;
  Alcotest.(check int) "count one" 1 (Refcache.true_count rc obj);
  (* Drop the revived reference: now it must die. *)
  Refcache.dec rc c1 obj;
  drain_epochs m 6;
  Alcotest.(check int) "freed after final dec" 1 !freed

let test_tryget_after_free () =
  let m = machine () in
  let rc = Refcache.create m in
  let c0 = Machine.core m 0 in
  let obj, weak = Refcache.make_weak_obj rc c0 ~init:1 ~free:(fun _ -> ()) in
  Refcache.dec rc c0 obj;
  drain_epochs m 5;
  Alcotest.(check bool) "freed" true (Refcache.is_freed obj);
  Alcotest.(check bool) "tryget fails" true
    (Refcache.tryget rc c0 weak = None)

let test_zero_init_object_reviewed () =
  let m = machine () in
  let rc = Refcache.create m in
  let c0 = Machine.core m 0 in
  let freed = ref 0 in
  let _obj = Refcache.make_obj rc c0 ~init:0 ~free:(fun _ -> incr freed) in
  Alcotest.(check bool) "queued" true (Refcache.pending_review rc > 0);
  drain_epochs m 5;
  Alcotest.(check int) "freed" 1 !freed

let test_zero_init_revived_by_inc () =
  let m = machine () in
  let rc = Refcache.create m in
  let c0 = Machine.core m 0 in
  let freed = ref 0 in
  let obj = Refcache.make_obj rc c0 ~init:0 ~free:(fun _ -> incr freed) in
  Refcache.inc rc c0 obj;
  drain_epochs m 6;
  Alcotest.(check int) "revived by early inc" 0 !freed;
  Refcache.dec rc c0 obj;
  drain_epochs m 6;
  Alcotest.(check int) "then freed" 1 !freed

(* ------------------------------------------------------------------ *)
(* Refcache property test                                              *)

type rc_op = Inc of int | Dec of int | Settle

let rc_op_gen ncores =
  QCheck.Gen.(
    frequency
      [
        (4, map (fun c -> Inc c) (int_bound (ncores - 1)));
        (4, map (fun c -> Dec c) (int_bound (ncores - 1)));
        (1, return Settle);
      ])

let rc_op_print = function
  | Inc c -> Printf.sprintf "inc@%d" c
  | Dec c -> Printf.sprintf "dec@%d" c
  | Settle -> "settle"

let refcache_linearizable =
  let ncores = 4 in
  QCheck.Test.make ~name:"refcache frees iff true count stays zero" ~count:60
    QCheck.(make ~print:(fun l -> String.concat "," (List.map rc_op_print l))
              (QCheck.Gen.list_size (QCheck.Gen.int_range 1 60) (rc_op_gen ncores)))
    (fun ops ->
      let m = machine ~ncores () in
      let rc = Refcache.create m in
      let c0 = Machine.core m 0 in
      let freed = ref 0 in
      let obj = Refcache.make_obj rc c0 ~init:1 ~free:(fun _ -> incr freed) in
      let oracle = ref 1 in
      let ok = ref true in
      List.iter
        (fun op ->
          if !oracle > 0 then
            match op with
            | Inc c ->
                Refcache.inc rc (Machine.core m c) obj;
                incr oracle
            | Dec c when !oracle > 1 ->
                Refcache.dec rc (Machine.core m c) obj;
                decr oracle
            | Dec _ -> ()
            | Settle ->
                drain_epochs m 3;
                (* alive references outstanding: must not be freed *)
                if !freed > 0 then ok := false)
        ops;
      if not !ok then false
      else begin
        (* Release every outstanding reference and settle. *)
        while !oracle > 0 do
          Refcache.dec rc c0 obj;
          decr oracle
        done;
        drain_epochs m 8;
        !freed = 1 && Refcache.is_freed obj
      end)

(* ------------------------------------------------------------------ *)
(* Counter schemes through the common interface                        *)

module Counter_suite (C : Refcnt.Counter_intf.S) = struct
  (* [deferred] distinguishes Refcache (zero detected epochs later) from
     the immediate schemes. *)
  let tests ~deferred =
    let settle m = if deferred then drain_epochs m 5 in
    let test_value_tracking () =
      let m = machine () in
      let sub = C.create m in
      let h =
        C.make sub (Machine.core m 0) ~init:3 ~on_free:(fun _ -> ())
      in
      C.inc sub (Machine.core m 1) h;
      C.inc sub (Machine.core m 2) h;
      C.dec sub (Machine.core m 1) h;
      settle m;
      Alcotest.(check int) "value" 4 (C.value sub h)
    in
    let test_free_on_zero () =
      let m = machine () in
      let sub = C.create m in
      let freed = ref 0 in
      let h =
        C.make sub (Machine.core m 0) ~init:2 ~on_free:(fun _ -> incr freed)
      in
      C.dec sub (Machine.core m 1) h;
      settle m;
      Alcotest.(check int) "alive at one" 0 !freed;
      C.dec sub (Machine.core m 2) h;
      settle m;
      Alcotest.(check int) "freed once at zero" 1 !freed
    in
    let test_many_cores () =
      let m = machine ~ncores:8 () in
      let sub = C.create m in
      let freed = ref 0 in
      let h =
        C.make sub (Machine.core m 0) ~init:1 ~on_free:(fun _ -> incr freed)
      in
      for c = 0 to 7 do
        C.inc sub (Machine.core m c) h
      done;
      for c = 0 to 7 do
        C.dec sub (Machine.core m c) h
      done;
      settle m;
      Alcotest.(check int) "survives balanced traffic" 0 !freed;
      Alcotest.(check int) "value back to one" 1 (C.value sub h);
      C.dec sub (Machine.core m 3) h;
      settle m;
      Alcotest.(check int) "freed" 1 !freed
    in
    [
      Alcotest.test_case (C.name ^ " value tracking") `Quick test_value_tracking;
      Alcotest.test_case (C.name ^ " free on zero") `Quick test_free_on_zero;
      Alcotest.test_case (C.name ^ " many cores") `Quick test_many_cores;
    ]
end

module Shared_suite = Counter_suite (Refcnt.Shared_counter)
module Snzi_suite = Counter_suite (Refcnt.Snzi)
module Dist_suite = Counter_suite (Refcnt.Distributed_counter)
module Rc_suite = Counter_suite (Refcnt.Refcache_counter)

let test_snzi_cross_core_dec () =
  let m = machine ~ncores:8 () in
  let sub = Refcnt.Snzi.create m in
  let freed = ref 0 in
  let h =
    Refcnt.Snzi.make sub (Machine.core m 0) ~init:1 ~on_free:(fun _ ->
        incr freed)
  in
  (* inc on core 0, dec on core 7 (different leaf): must not underflow. *)
  Refcnt.Snzi.inc sub (Machine.core m 0) h;
  Refcnt.Snzi.dec sub (Machine.core m 7) h;
  Alcotest.(check int) "value" 1 (Refcnt.Snzi.value sub h);
  Refcnt.Snzi.dec sub (Machine.core m 7) h;
  Alcotest.(check int) "freed" 1 !freed

let test_space_claims () =
  let p = Params.default ~ncores:80 () in
  let refcache = Refcnt.Refcache_counter.bytes_per_object p in
  let snzi = Refcnt.Snzi.bytes_per_object p in
  let dist = Refcnt.Distributed_counter.bytes_per_object p in
  Alcotest.(check bool) "refcache is O(1) per object" true (refcache < 100);
  Alcotest.(check bool) "snzi is O(cores)" true (snzi > 40 * 8);
  Alcotest.(check bool) "distributed is O(cores)" true (dist >= 80 * 64)

let test_shared_counter_contention_visible () =
  let m = machine ~ncores:8 () in
  let sub = Refcnt.Shared_counter.create m in
  let h =
    Refcnt.Shared_counter.make sub (Machine.core m 0) ~init:1
      ~on_free:(fun _ -> ())
  in
  let s = Machine.stats m in
  for c = 0 to 7 do
    Refcnt.Shared_counter.inc sub (Machine.core m c) h
  done;
  Alcotest.(check bool)
    "every core transferred the counter line" true
    (Stats.total_transfers s >= 7)

(* Object ids are the event stream's identity and are drawn from one
   process-global counter; two domains building independent simulations
   concurrently must never observe the same oid. (No checker here: the
   [machine] helper's bookkeeping is not meant for concurrent use.) *)
let test_oids_disjoint_across_domains () =
  let n = 2_000 in
  let alloc () =
    let m = Machine.create (Params.default ~ncores:2 ~epoch_cycles:epoch ()) in
    let rc = Refcache.create m in
    let c0 = Machine.core m 0 in
    List.init n (fun _ ->
        Refcache.oid (Refcache.make_obj rc c0 ~init:1 ~free:(fun _ -> ())))
  in
  let d = Domain.spawn alloc in
  let mine = alloc () in
  let theirs = Domain.join d in
  let seen = Hashtbl.create (4 * n) in
  List.iter
    (fun id ->
      if Hashtbl.mem seen id then Alcotest.failf "oid %d allocated twice" id;
      Hashtbl.add seen id ())
    (mine @ theirs);
  Alcotest.(check int) "all oids distinct" (2 * n) (Hashtbl.length seen)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "refcnt"
    [
      ( "refcache",
        [
          tc "free after zero" `Quick test_free_after_zero;
          tc "alive while referenced" `Quick test_not_freed_while_referenced;
          tc "batching avoids traffic" `Quick test_batching_no_global_writes;
          tc "reordered flush" `Quick test_reordered_flush_no_false_free;
          tc "dirty zero" `Quick test_dirty_zero_delays_but_frees;
          tc "oids disjoint across domains" `Quick
            test_oids_disjoint_across_domains;
        ] );
      ( "weakref",
        [
          tc "tryget revives" `Quick test_tryget_revives;
          tc "tryget after free" `Quick test_tryget_after_free;
          tc "zero-init reviewed" `Quick test_zero_init_object_reviewed;
          tc "zero-init revived" `Quick test_zero_init_revived_by_inc;
        ] );
      ("property", [ QCheck_alcotest.to_alcotest refcache_linearizable ]);
      ("counter shared", Shared_suite.tests ~deferred:false);
      ("counter snzi", Snzi_suite.tests ~deferred:false);
      ("counter distributed", Dist_suite.tests ~deferred:false);
      ("counter refcache", Rc_suite.tests ~deferred:true);
      ( "counter misc",
        [
          tc "snzi cross-core dec" `Quick test_snzi_cross_core_dec;
          tc "space claims" `Quick test_space_claims;
          tc "shared counter contention" `Quick test_shared_counter_contention_visible;
        ] );
      ( "checker",
        [ tc "no TLB or refcount violations anywhere" `Quick test_checker_clean ] );
    ]
