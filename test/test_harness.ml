(* Tests for the benchmark harness: the Domains worker pool, the
   hand-rolled JSON layer, and the end-to-end guarantee that a parallel
   sweep produces byte-identical artifacts to a serial one. *)

module Pool = Harness.Pool
module Json = Harness.Json

(* ------------------------------------------------------------------ *)
(* Pool                                                                *)

let test_pool_preserves_order () =
  (* Job i sleeps inversely to its index, so completion order is the
     reverse of submission order; results must come back in submission
     order anyway. *)
  let n = 12 in
  let jobs =
    List.init n (fun i ->
        Pool.job ~name:(string_of_int i) (fun () ->
            Unix.sleepf (0.001 *. float_of_int (n - i));
            i))
  in
  List.iter
    (fun jobs_n ->
      Alcotest.(check (list int))
        (Printf.sprintf "order with jobs=%d" jobs_n)
        (List.init n Fun.id)
        (Pool.run ~jobs:jobs_n jobs))
    [ 1; 2; 4; 32 ]

let test_pool_serial_runs_in_caller () =
  (* jobs=1 must not spawn domains: the jobs run in the calling domain,
     in order, observable through plain (unsynchronized) state. *)
  let self = Domain.self () in
  let trace = ref [] in
  let jobs =
    List.init 5 (fun i ->
        Pool.job ~name:(string_of_int i) (fun () ->
            Alcotest.(check bool) "same domain" true (Domain.self () = self);
            trace := i :: !trace;
            i * i))
  in
  let results = Pool.run ~jobs:1 jobs in
  Alcotest.(check (list int)) "results" [ 0; 1; 4; 9; 16 ] results;
  Alcotest.(check (list int)) "executed in order" [ 4; 3; 2; 1; 0 ] !trace

let test_pool_propagates_failure () =
  let jobs =
    List.init 8 (fun i ->
        Pool.job ~name:(Printf.sprintf "job%d" i) (fun () ->
            if i = 3 || i = 6 then failwith "boom";
            i))
  in
  List.iter
    (fun jobs_n ->
      match Pool.run ~jobs:jobs_n jobs with
      | _ -> Alcotest.fail "expected Job_failed"
      | exception Pool.Job_failed (name, Failure m) ->
          (* The first failure in submission order wins, at any width. *)
          Alcotest.(check string) "failing job" "job3" name;
          Alcotest.(check string) "original exn" "boom" m
      | exception e -> raise e)
    [ 1; 4 ]

(* A worker dying on a simulator exception (e.g. an injected fault that
   escaped a buggy handler) must surface as Job_failed with the original
   exception intact, not crash or hang the pool. *)
let test_pool_propagates_injected_abort () =
  let jobs =
    List.init 4 (fun i ->
        Pool.job ~name:(Printf.sprintf "fz%d" i) (fun () ->
            if i = 2 then
              raise (Ccsim.Fault.Injected_abort { op = "mmap"; point = "locked" });
            i))
  in
  match Pool.run ~jobs:2 jobs with
  | _ -> Alcotest.fail "expected Job_failed"
  | exception
      Pool.Job_failed (name, Ccsim.Fault.Injected_abort { op; point }) ->
      Alcotest.(check string) "failing job" "fz2" name;
      Alcotest.(check string) "op" "mmap" op;
      Alcotest.(check string) "point" "locked" point

let test_pool_clamps_width () =
  (* More workers than jobs, zero workers, empty job list: all legal. *)
  Alcotest.(check (list int))
    "more workers than jobs" [ 7 ]
    (Pool.run ~jobs:64 [ Pool.job ~name:"one" (fun () -> 7) ]);
  Alcotest.(check (list int))
    "non-positive width" [ 1; 2 ]
    (Pool.run ~jobs:0
       [ Pool.job ~name:"a" (fun () -> 1); Pool.job ~name:"b" (fun () -> 2) ]);
  Alcotest.(check (list int)) "empty" [] (Pool.run ~jobs:4 [])

(* When every job itself runs [per_job] worker domains (a sharded world
   per pool job), the sensible default is fewer concurrent jobs, not
   more domains: the product jobs * per_job must stay within the host's
   recommendation, bottoming out at one serial job. *)
let test_pool_default_jobs_oversubscription () =
  let host = Domain.recommended_domain_count () in
  Alcotest.(check int) "plain default" (max 1 host) (Pool.default_jobs ());
  List.iter
    (fun per_job ->
      let jobs = Pool.default_jobs ~per_job () in
      Alcotest.(check bool)
        (Printf.sprintf "at least one job at per_job=%d" per_job)
        true (jobs >= 1);
      Alcotest.(check bool)
        (Printf.sprintf "jobs*per_job within host at per_job=%d" per_job)
        true
        (jobs = 1 || jobs * per_job <= host))
    [ 1; 2; 4; 64 ]

let test_pool_clamp_jobs () =
  let host = Domain.recommended_domain_count () in
  (* An explicit request is only ever reduced, never raised, and never
     below one. *)
  Alcotest.(check int) "one stays one" 1 (Pool.clamp_jobs 1);
  Alcotest.(check int) "huge per_job bottoms out at one" 1
    (Pool.clamp_jobs ~per_job:(max host 1 * 2) 8);
  List.iter
    (fun (jobs, per_job) ->
      let c = Pool.clamp_jobs ~per_job jobs in
      Alcotest.(check bool)
        (Printf.sprintf "clamp %dx%d in range" jobs per_job)
        true
        (c >= 1 && c <= jobs && (c = 1 || c * per_job <= host)))
    [ (1024, 2); (8, 4); (3, 1); (2, 64) ]

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)

let sample =
  Json.Obj
    [
      ("name", Json.String "fig5 \"quick\"\n");
      ("cores", Json.List [ Json.Int 1; Json.Int 4; Json.Int 16 ]);
      ("rate", Json.Float 582_000.0);
      ("ratio", Json.Float 3.25);
      ("clean", Json.Bool true);
      ("missing", Json.Null);
      ("empty_list", Json.List []);
      ("empty_obj", Json.Obj []);
    ]

let rec json_equal a b =
  match (a, b) with
  | Json.Null, Json.Null -> true
  | Json.Bool x, Json.Bool y -> x = y
  | Json.Int x, Json.Int y -> x = y
  | Json.Float x, Json.Float y -> x = y
  | Json.String x, Json.String y -> x = y
  | Json.List x, Json.List y ->
      List.length x = List.length y && List.for_all2 json_equal x y
  | Json.Obj x, Json.Obj y ->
      List.length x = List.length y
      && List.for_all2
           (fun (k1, v1) (k2, v2) -> k1 = k2 && json_equal v1 v2)
           x y
  | _ -> false

let test_json_roundtrip () =
  List.iter
    (fun pretty ->
      match Json.of_string (Json.to_string ~pretty sample) with
      | Ok parsed ->
          Alcotest.(check bool)
            (Printf.sprintf "roundtrip pretty=%b" pretty)
            true (json_equal sample parsed)
      | Error m -> Alcotest.failf "parse failed: %s" m)
    [ false; true ]

let test_json_float_repr () =
  (* Whole floats must not print as the invalid-JSON "1."; non-finite
     values have no JSON spelling and degrade to null. *)
  Alcotest.(check string) "whole float" "582000.0"
    (Json.to_string (Json.Float 582_000.0));
  Alcotest.(check string) "fractional" "3.25" (Json.to_string (Json.Float 3.25));
  Alcotest.(check string) "nan" "null" (Json.to_string (Json.Float Float.nan));
  Alcotest.(check string) "inf" "null"
    (Json.to_string (Json.Float Float.infinity))

let test_json_parse_errors () =
  List.iter
    (fun bad ->
      match Json.of_string bad with
      | Ok _ -> Alcotest.failf "accepted invalid input %S" bad
      | Error _ -> ())
    [
      ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2";
      "{\"a\":1,}"; "[1 2]"; "nulll";
    ]

let test_json_member () =
  Alcotest.(check bool) "present" true
    (Json.member "cores" sample <> None);
  Alcotest.(check bool) "absent" true (Json.member "nope" sample = None);
  Alcotest.(check bool) "non-object" true (Json.member "x" Json.Null = None)

(* ------------------------------------------------------------------ *)
(* End to end: a parallel sweep must be indistinguishable from a serial
   one. Render the quick Figure 5 sweep (with the checker attached) at
   jobs=1 and jobs=4 and require byte-identical JSON. *)

let null_ppf = Format.make_formatter (fun _ _ _ -> ()) (fun () -> ())

let test_fig5_deterministic_across_jobs () =
  let run jobs =
    let ctx =
      { Figures.quick = true; check = true; jobs; shards = 1; ppf = null_ppf }
    in
    match Figures.run_target ctx "fig5" with
    | Some out -> Json.to_string ~pretty:true out.Figures.json
    | None -> Alcotest.fail "fig5 target missing"
  in
  let serial = run 1 in
  let parallel = run 4 in
  Alcotest.(check string) "serial = 4-domain sweep" serial parallel

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "harness"
    [
      ( "pool",
        [
          tc "submission order" `Quick test_pool_preserves_order;
          tc "serial path" `Quick test_pool_serial_runs_in_caller;
          tc "failure propagation" `Quick test_pool_propagates_failure;
          tc "injected abort" `Quick test_pool_propagates_injected_abort;
          tc "width clamping" `Quick test_pool_clamps_width;
          tc "default jobs oversubscription" `Quick
            test_pool_default_jobs_oversubscription;
          tc "clamp_jobs" `Quick test_pool_clamp_jobs;
        ] );
      ( "json",
        [
          tc "roundtrip" `Quick test_json_roundtrip;
          tc "float repr" `Quick test_json_float_repr;
          tc "parse errors" `Quick test_json_parse_errors;
          tc "member" `Quick test_json_member;
        ] );
      ( "determinism",
        [ tc "fig5 serial = parallel" `Quick test_fig5_deterministic_across_jobs ] );
    ]
