(* Golden-artifact differential test: the byte-exact contract that host
   performance work must not move the simulation.

   Regenerates, in-process, the artifacts of a `--quick --jobs 2` sweep
   (BENCH_fig5.json, BENCH_fig9.json, BENCH_table2.json) and the
   transcript of the seed-42 checked fuzz session, digests each, and
   compares against the digests committed in test/golden/digests.txt.
   Any drift in the cost model or operation semantics — including from
   host-side optimization of the simulator's hot paths — changes the
   simulated cycle counts and therefore the bytes, and fails tier-1
   loudly.

   When a change is *meant* to move the numbers (a new cost parameter, a
   semantic fix), refresh the goldens from the repo root with:

     dune exec test/test_golden.exe -- --regen

   and commit the updated test/golden/digests.txt together with the
   change that explains it. *)

let golden_paths = [ "golden/digests.txt"; "test/golden/digests.txt" ]

let digest s = Digest.to_hex (Digest.string s)

let null_ppf =
  Format.make_formatter (fun _ _ _ -> ()) (fun () -> ())

(* The exact configuration of the committed goldens: quick sweep, two
   worker domains (PR 3 guarantees byte-identity at any width; using two
   exercises the pool), no checker (verdict fields would change the
   artifact shape, and the checked configurations are covered by
   @bench-smoke). *)
let ctx ~shards =
  { Figures.quick = true; check = false; jobs = 2; shards; ppf = null_ppf }

let shard_widths = [ 1; 2; 4 ]

(* Each artifact is regenerated at --shards 1/2/4: the shard width is a
   pure execution parameter and must never reach the bytes. The width-1
   rendering is the digest subject; any cross-width difference fails
   before digesting. *)
let artifact_bytes target =
  let render shards =
    match Figures.run_target (ctx ~shards) target with
    | Some out ->
        (* Same bytes Json.to_file writes: pretty document + newline. *)
        Harness.Json.to_string ~pretty:true out.Figures.json ^ "\n"
    | None -> failwith ("unknown bench target " ^ target)
  in
  match List.map render shard_widths with
  | reference :: rest ->
      List.iteri
        (fun i bytes ->
          if bytes <> reference then
            failwith
              (Printf.sprintf "%s differs between --shards 1 and --shards %d"
                 target
                 (List.nth shard_widths (i + 1))))
        rest;
      reference
  | [] -> assert false

(* The cacheserve artifact varies the pool width instead: its rows mix
   generic, page-cache and multi-process runs, and neither row values
   nor row order may depend on how many worker domains ran the sweep. *)
let cacheserve_bytes () =
  let render jobs =
    match
      Figures.run_target { (ctx ~shards:1) with Figures.jobs } "cacheserve"
    with
    | Some out -> Harness.Json.to_string ~pretty:true out.Figures.json ^ "\n"
    | None -> failwith "unknown bench target cacheserve"
  in
  let widths = [ 1; 2; 4 ] in
  match List.map render widths with
  | reference :: rest ->
      List.iteri
        (fun i bytes ->
          if bytes <> reference then
            failwith
              (Printf.sprintf
                 "BENCH_cacheserve.json differs between --jobs 1 and --jobs %d"
                 (List.nth widths (i + 1))))
        rest;
      reference
  | [] -> assert false

let fuzz_bytes () =
  let outcome = Fuzz.run_session { Fuzz.default with Fuzz.seed = 42 } in
  if not outcome.Fuzz.passed then
    failwith
      ("golden fuzz session failed:\n"
      ^ String.concat "\n" outcome.Fuzz.failures);
  outcome.Fuzz.transcript

(* The sharded fuzz world: 4 coupled node sessions with cross-node spawn
   injections, run at genuine domain widths 1/2/4 (~clamp:false so even a
   small host really lays the nodes out three different ways). *)
let fuzz_world_bytes () =
  let base = { Fuzz.default with Fuzz.seed = 42 } in
  let render shards =
    (Fuzz.run_world ~clamp:false ~shards ~nodes:4 base).Fuzz.w_transcript
  in
  match List.map render shard_widths with
  | reference :: rest ->
      List.iteri
        (fun i bytes ->
          if bytes <> reference then
            failwith
              (Printf.sprintf
                 "world transcript differs between --shards 1 and --shards %d"
                 (List.nth shard_widths (i + 1))))
        rest;
      reference
  | [] -> assert false

let subjects =
  [
    ("BENCH_fig5.json", fun () -> artifact_bytes "fig5");
    ("BENCH_fig9.json", fun () -> artifact_bytes "fig9");
    ("BENCH_table2.json", fun () -> artifact_bytes "table2");
    ("BENCH_cacheserve.json", cacheserve_bytes);
    ("fuzz_seed42.transcript", fuzz_bytes);
    ("fuzz_world_seed42.transcript", fuzz_world_bytes);
  ]

let read_goldens () =
  match List.find_opt Sys.file_exists golden_paths with
  | None ->
      Alcotest.failf "no golden digest file found (looked for %s)"
        (String.concat ", " golden_paths)
  | Some path ->
      let ic = open_in path in
      let entries = ref [] in
      (try
         while true do
           let line = String.trim (input_line ic) in
           if line <> "" && line.[0] <> '#' then
             match String.index_opt line ' ' with
             | Some i ->
                 entries :=
                   ( String.sub line 0 i,
                     String.trim
                       (String.sub line (i + 1) (String.length line - i - 1))
                   )
                   :: !entries
             | None -> failwith ("malformed golden line: " ^ line)
         done
       with End_of_file -> close_in ic);
      List.rev !entries

let regen () =
  let path =
    match List.find_opt Sys.file_exists golden_paths with
    | Some p -> p
    | None -> "test/golden/digests.txt"
  in
  let oc = open_out path in
  output_string oc
    "# MD5 digests of the golden artifacts (see test/test_golden.ml).\n\
     # Refresh with: dune exec test/test_golden.exe -- --regen\n";
  List.iter
    (fun (name, make) ->
      let d = digest (make ()) in
      Printf.fprintf oc "%s %s\n" name d;
      Printf.printf "%s %s\n" name d)
    subjects;
  close_out oc;
  Printf.printf "wrote %s\n" path

let check_subject goldens (name, make) () =
  match List.assoc_opt name goldens with
  | None -> Alcotest.failf "no golden digest recorded for %s" name
  | Some expected ->
      let actual = digest (make ()) in
      if actual <> expected then
        Alcotest.failf
          "%s drifted from the golden artifact:\n\
          \  expected %s\n\
          \  actual   %s\n\
           The simulated numbers changed. If this is intentional, refresh \
           with `dune exec test/test_golden.exe -- --regen` from the repo \
           root and commit test/golden/digests.txt; otherwise the change \
           altered the cost model or operation semantics."
          name expected actual

let () =
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "--regen" then regen ()
  else
    let goldens = read_goldens () in
    Alcotest.run "golden"
      [
        ( "byte-identity",
          List.map
            (fun subject ->
              Alcotest.test_case (fst subject) `Slow
                (check_subject goldens subject))
            subjects );
      ]
