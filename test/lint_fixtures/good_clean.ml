(* The control: ordinary immutable code that must produce zero findings
   even under --all-scopes. *)

let add a b = a + b
let greet name = "hello, " ^ name
let total xs = List.fold_left ( + ) 0 xs
let evens xs = List.filter (fun x -> x mod 2 = 0) xs

type point = { x : int; y : int }

let origin = { x = 0; y = 0 }
let manhattan p = abs p.x + abs p.y
