(* det-entropy: ambient nondeterminism sources. Every call below must be
   flagged. *)

let seed_the_world () = Random.self_init ()
let state = Random.State.make_self_init
let cpu_now () = Sys.time ()
let wall_now () = Unix.gettimeofday ()
let coarse_now () = Unix.time ()
let jitter () = int_of_float (cpu_now () +. wall_now () +. coarse_now ())
