(* det-float-format: float rendering outside Harness.Json's deterministic
   emitter. Each conversion below must be flagged. *)

let render x = Printf.sprintf "%.3f" x
let wide x = Printf.sprintf "%12.6e" x
let general x = Format.asprintf "%g" x
let stringly x = string_of_float x
let stdlibly x = Float.to_string x
