(* det-wallclock: host wall-clock reads in a sim-core scope. Every call
   below must be flagged (they also trip det-entropy — the rules are
   deliberately additive, so a det-entropy pin cannot cover these). *)

let stamp () = Unix.gettimeofday ()
let epoch () = Unix.time ()

(* Aliases and opens cannot hide the identifier from the typed tree. *)
module U = Unix

let sneaky () = U.gettimeofday ()

let opened () =
  let open Unix in
  time ()

(* Eta-free references, not just direct calls. *)
let sampler = [ Unix.gettimeofday; Unix.time ]
