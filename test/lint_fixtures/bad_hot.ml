(* hot-hashtbl / hot-polycompare / hot-marshal: hot-path hygiene
   violations. Polymorphic comparisons here are at boxed structured types
   (records, options, lists) — the ones that really reach caml_compare;
   int/float/string comparisons are specialized and must NOT be flagged. *)

type pair = { a : int; b : string }

(* hot-polycompare *)
let same (x : pair) (y : pair) = x = y
let rank (x : int option) (y : int option) = compare x y
let differs (x : pair list) (y : pair list) = x <> y
let smallest (x : pair) (y : pair) = min x y
let digest (x : pair) = Hashtbl.hash x

(* NOT flagged: specialized comparisons. *)
let int_eq (x : int) (y : int) = x = y
let float_le (x : float) (y : float) = x <= y
let str_eq (x : string) (y : string) = x = y

(* hot-hashtbl *)
let tbl : (int, pair) Hashtbl.t = Hashtbl.create 8
let lookup k = Hashtbl.find_opt tbl k
let store k v = Hashtbl.replace tbl k v

(* hot-marshal *)
let save oc (x : pair) = Marshal.to_channel oc [ x ] []
let load ic : pair list = Marshal.from_channel ic
