(* det-getenv: ambient environment-variable reads — configuration that
   never appears in a transcript or seed. Every call below must be
   flagged. *)

let debug_enabled () = Sys.getenv_opt "RADIXVM_DEBUG" <> None
let home () = Sys.getenv "HOME"
let path () = Unix.getenv "PATH"
let whole_env () = Array.length (Unix.environment ())
