(* Known-bad fixture for ds-cross-shard: every binding below calls one
   of the sharded world's delivery endpoints from outside lib/ccsim and
   lib/harness — direct mutation of another node's state that bypasses
   the epoch-barrier exchange. The sanctioned path (Machine.uplink_send)
   is the clean control: it only buffers into the sender's own outbox. *)

open Ccsim

let machine () = Machine.create (Params.default ~ncores:2 ())

(* Direct cross-shard shootdown: pokes the destination machine's core
   without any epoch buffering. *)
let poke_remote dst = Machine.deliver_interrupt dst ~core:0 ~cycles:900

(* Hijacking the shard engine's outbox hook. *)
let steal_uplink m = Machine.set_uplink m ~node:7 (fun _ -> ())

(* Injecting into a destination node's channel directly. *)
let inject ch v = Channel.post ch v ~ready:1_000

(* Charging interrupt time to a core the caller does not own. *)
let charge m = Core.interrupt (Machine.core m 1) ~cycles:450

(* Aliasing must not hide the endpoint from the typed-AST walk. *)
module M = Machine

let aliased dst = M.deliver_interrupt dst ~core:1 ~cycles:900

(* Clean control: the sanctioned send path buffers into this machine's
   own outbox and must stay silent. *)
let sanctioned m =
  Machine.uplink_send m ~dst:1 ~sent:0 (Machine.Xmsg { tag = 0; a = 1; b = 2 })
