(* ds-toplevel-mutable: module-level mutable state that domains would
   race on. Each binding below must be flagged; the Atomic.t must not. *)

let counter = ref 0

type cfg = { mutable level : int; name : string }

let cfg = { level = 0; name = "fixture" }
let cache : (int, string) Hashtbl.t = Hashtbl.create 16
let scratch = Buffer.create 64
let deep = (0, ref 0)

(* Fine: atomics are the sanctioned form of shared module state. *)
let hits = Atomic.make 0

(* Fine: functions and immutable data. *)
let bump () =
  incr counter;
  Atomic.incr hits;
  cfg.level <- Buffer.length scratch + Hashtbl.length cache + !(snd deep)
