(* det-hashtbl-order: Hashtbl iteration in bucket order escaping to an
   observer. Each iter/fold/to_seq below must be flagged. *)

let dump out (tbl : (int, string) Hashtbl.t) =
  Hashtbl.iter (fun k v -> out (string_of_int k ^ "=" ^ v)) tbl

let keys (tbl : (int, string) Hashtbl.t) =
  Hashtbl.fold (fun k _ acc -> k :: acc) tbl []

let stream (tbl : (int, string) Hashtbl.t) = Hashtbl.to_seq tbl
let key_stream (tbl : (int, string) Hashtbl.t) = Hashtbl.to_seq_keys tbl
let val_stream (tbl : (int, string) Hashtbl.t) = Hashtbl.to_seq_values tbl
