(* Tests for the VM systems: RadixVM (per-core and shared MMU, several
   frame-counting schemes) and the Linux/Bonsai baselines, all driven
   through the common Vm_intf.S interface plus system-specific invariant
   checks. *)

open Ccsim
module Vm_types = Vm.Vm_types
module Radixvm = Vm.Radixvm

let epoch = 10_000

(* Every machine in this file runs with the dynamic checker attached;
   a final test asserts the cumulative TLB-coherence and refcount
   analyses stayed clean across everything the suite did. *)
let checked : Check.t list ref = ref []

let machine ?(ncores = 4) () =
  let m = Machine.create (Params.default ~ncores ~epoch_cycles:epoch ()) in
  checked := Check.attach m :: !checked;
  m

let test_checker_clean () =
  Alcotest.(check bool) "checkers attached" true (!checked <> []);
  List.iter
    (fun chk ->
      List.iter
        (fun v -> Format.eprintf "%a@." Check.pp_tlb_violation v)
        (Check.tlb_violations chk);
      List.iter
        (fun v -> Format.eprintf "%a@." Check.pp_rc_violation v)
        (Check.rc_violations chk);
      Alcotest.(check int) "no stale TLB entries" 0
        (List.length (Check.tlb_violations chk));
      Alcotest.(check int) "no refcount violations" 0
        (List.length (Check.rc_violations chk)))
    !checked

let drain_epochs m n = Machine.drain m ~cycles:(n * epoch)

let result_t =
  Alcotest.testable
    (fun ppf -> function
      | Vm_types.Ok -> Format.pp_print_string ppf "Ok"
      | Vm_types.Segfault -> Format.pp_print_string ppf "Segfault"
      | Vm_types.Oom -> Format.pp_print_string ppf "Oom")
    ( = )

(* ------------------------------------------------------------------ *)
(* Generic behaviour through the common interface                      *)

module Generic (V : Vm.Vm_intf.S) = struct
  (* [settle] lets lazily-reclaiming systems (Refcache) finish frees. *)
  let suite ~settle =
    let test_map_touch_unmap () =
      let m = machine () in
      let vm = V.create m in
      let c = Machine.core m 0 in
      V.mmap vm c ~vpn:100 ~npages:10 ();
      Alcotest.(check bool) "mapped" true (V.mapped vm ~vpn:105);
      Alcotest.check result_t "touch ok" Vm_types.Ok (V.touch vm c ~vpn:105);
      Alcotest.check result_t "touch again ok" Vm_types.Ok (V.touch vm c ~vpn:105);
      V.munmap vm c ~vpn:100 ~npages:10;
      Alcotest.(check bool) "unmapped" false (V.mapped vm ~vpn:105);
      Alcotest.check result_t "segfault after munmap" Vm_types.Segfault
        (V.touch vm c ~vpn:105)
    in
    let test_segfault_unmapped () =
      let m = machine () in
      let vm = V.create m in
      let c = Machine.core m 0 in
      Alcotest.check result_t "segfault" Vm_types.Segfault (V.touch vm c ~vpn:42)
    in
    let test_frames_reclaimed () =
      let m = machine () in
      let vm = V.create m in
      let c = Machine.core m 0 in
      V.mmap vm c ~vpn:0 ~npages:8 ();
      for p = 0 to 7 do
        Alcotest.check result_t "touch" Vm_types.Ok (V.touch vm c ~vpn:p)
      done;
      Alcotest.(check int) "8 frames live" 8
        (Physmem.live_frames (Machine.physmem m));
      V.munmap vm c ~vpn:0 ~npages:8;
      settle m;
      Alcotest.(check int) "all frames reclaimed" 0
        (Physmem.live_frames (Machine.physmem m))
    in
    let test_mmap_over_existing () =
      let m = machine () in
      let vm = V.create m in
      let c = Machine.core m 0 in
      V.mmap vm c ~vpn:0 ~npages:4 ();
      Alcotest.check result_t "touch old" Vm_types.Ok (V.touch vm c ~vpn:1);
      (* Re-map the middle over the old mapping: implicit munmap. *)
      V.mmap vm c ~vpn:1 ~npages:2 ();
      settle m;
      (* Fresh mapping: the page must fault again and get a new frame. *)
      Alcotest.(check bool) "still mapped" true (V.mapped vm ~vpn:1);
      Alcotest.check result_t "touch new" Vm_types.Ok (V.touch vm c ~vpn:1);
      Alcotest.(check bool) "edges intact" true
        (V.mapped vm ~vpn:0 && V.mapped vm ~vpn:3)
    in
    let test_partial_munmap () =
      let m = machine () in
      let vm = V.create m in
      let c = Machine.core m 0 in
      V.mmap vm c ~vpn:10 ~npages:10 ();
      V.munmap vm c ~vpn:13 ~npages:4;
      Alcotest.(check bool) "left" true (V.mapped vm ~vpn:12);
      Alcotest.(check bool) "hole" false (V.mapped vm ~vpn:15);
      Alcotest.(check bool) "right" true (V.mapped vm ~vpn:17);
      Alcotest.check result_t "left touch" Vm_types.Ok (V.touch vm c ~vpn:12);
      Alcotest.check result_t "hole faults" Vm_types.Segfault
        (V.touch vm c ~vpn:15)
    in
    let test_cross_core_sharing () =
      let m = machine () in
      let vm = V.create m in
      let a = Machine.core m 0 and b = Machine.core m 1 in
      V.mmap vm a ~vpn:0 ~npages:4 ();
      Alcotest.check result_t "a touches" Vm_types.Ok (V.touch vm a ~vpn:2);
      Alcotest.check result_t "b touches same page" Vm_types.Ok
        (V.touch vm b ~vpn:2);
      (* One physical frame regardless of which core faulted first. *)
      Alcotest.(check int) "one frame" 1 (Physmem.live_frames (Machine.physmem m))
    in
    let test_munmap_clears_remote_tlbs () =
      let m = machine () in
      let vm = V.create m in
      let a = Machine.core m 0 and b = Machine.core m 1 in
      V.mmap vm a ~vpn:50 ~npages:2 ();
      Alcotest.check result_t "a" Vm_types.Ok (V.touch vm a ~vpn:50);
      Alcotest.check result_t "b" Vm_types.Ok (V.touch vm b ~vpn:50);
      (* b unmaps; afterwards a's next access must fault, not use a stale
         translation. *)
      V.munmap vm b ~vpn:50 ~npages:2;
      Alcotest.check result_t "stale access faults" Vm_types.Segfault
        (V.touch vm a ~vpn:50)
    in
    let model_test =
      QCheck.Test.make ~name:(V.name ^ " matches page oracle") ~count:40
        QCheck.(
          make
            ~print:(fun ops ->
              String.concat ";"
                (List.map
                   (fun (k, c, lo, n) ->
                     Printf.sprintf "%d@%d[%d+%d]" k c lo n)
                   ops))
            Gen.(
              list_size (int_range 1 40)
                (quad (int_bound 2) (int_bound 3) (int_bound 200)
                   (int_range 1 32))))
        (fun ops ->
          let m = machine () in
          let vm = V.create m in
          let mapped : (int, unit) Hashtbl.t = Hashtbl.create 64 in
          let ok = ref true in
          List.iter
            (fun (kind, core_id, lo, n) ->
              let core = Machine.core m core_id in
              match kind with
              | 0 ->
                  V.mmap vm core ~vpn:lo ~npages:n ();
                  for p = lo to lo + n - 1 do
                    Hashtbl.replace mapped p ()
                  done
              | 1 ->
                  V.munmap vm core ~vpn:lo ~npages:n;
                  for p = lo to lo + n - 1 do
                    Hashtbl.remove mapped p
                  done
              | _ ->
                  let expect =
                    if Hashtbl.mem mapped lo then Vm_types.Ok
                    else Vm_types.Segfault
                  in
                  if V.touch vm core ~vpn:lo <> expect then ok := false)
            ops;
          (* Cross-check the whole touched space. *)
          for p = 0 to 240 do
            if V.mapped vm ~vpn:p <> Hashtbl.mem mapped p then ok := false
          done;
          !ok)
    in
    [
      Alcotest.test_case (V.name ^ " map/touch/unmap") `Quick test_map_touch_unmap;
      Alcotest.test_case (V.name ^ " segfault") `Quick test_segfault_unmapped;
      Alcotest.test_case (V.name ^ " frames reclaimed") `Quick test_frames_reclaimed;
      Alcotest.test_case (V.name ^ " mmap over existing") `Quick test_mmap_over_existing;
      Alcotest.test_case (V.name ^ " partial munmap") `Quick test_partial_munmap;
      Alcotest.test_case (V.name ^ " cross-core sharing") `Quick test_cross_core_sharing;
      Alcotest.test_case (V.name ^ " munmap clears TLBs") `Quick
        test_munmap_clears_remote_tlbs;
      QCheck_alcotest.to_alcotest model_test;
    ]
end

module Radix_generic = Generic (Radixvm.Default)
module Linux_generic = Generic (Baselines.Linux_vm)
module Bonsai_generic = Generic (Baselines.Bonsai_vm)

(* RadixVM over a shared counter frees frames immediately. *)
module Radix_shared_counter = Radixvm.Make (Refcnt.Shared_counter)
module Radix_shared_generic = Generic (Radix_shared_counter)

let settle_refcache m = drain_epochs m 8
let settle_immediate _m = ()

(* ------------------------------------------------------------------ *)
(* RadixVM-specific behaviour                                          *)

module R = Radixvm.Default

let test_targeted_no_ipis_single_core () =
  let m = machine () in
  let vm = R.create m in
  let c = Machine.core m 0 in
  (* local pattern: map, touch, unmap, all on one core *)
  for i = 0 to 9 do
    let vpn = 100 + (i * 4) in
    R.mmap vm c ~vpn ~npages:4 ();
    for p = vpn to vpn + 3 do
      ignore (R.touch vm c ~vpn:p)
    done;
    R.munmap vm c ~vpn ~npages:4
  done;
  Alcotest.(check int) "zero IPIs for single-core use" 0
    (Machine.stats m).Stats.ipis

let test_targeted_ipi_only_to_faulting_core () =
  let m = machine () in
  let vm = R.create m in
  let a = Machine.core m 0
  and b = Machine.core m 1 in
  R.mmap vm a ~vpn:0 ~npages:2 ();
  ignore (R.touch vm a ~vpn:0);
  ignore (R.touch vm b ~vpn:0);
  (* Core 2 never touched the page; munmap from a must IPI exactly b. *)
  let s = Machine.stats m in
  let before = s.Stats.ipis in
  R.munmap vm a ~vpn:0 ~npages:2;
  Alcotest.(check int) "exactly one IPI (to b)" (before + 1) s.Stats.ipis

let test_shared_mmu_broadcasts () =
  let m = machine () in
  let vm = R.create_with ~mmu:Vm.Page_table.Shared m in
  let a = Machine.core m 0
  and b = Machine.core m 1
  and c = Machine.core m 2 in
  R.mmap vm a ~vpn:0 ~npages:2 ();
  ignore (R.touch vm a ~vpn:0);
  ignore (R.touch vm b ~vpn:0);
  ignore (R.touch vm c ~vpn:1);
  let s = Machine.stats m in
  let before = s.Stats.ipis in
  (* a unmaps: with a shared page table it cannot know who cached what and
     must interrupt every active core (b and c). *)
  R.munmap vm a ~vpn:0 ~npages:2;
  Alcotest.(check int) "broadcast to both other cores" (before + 2) s.Stats.ipis

let test_per_core_fill_faults () =
  let m = machine () in
  let vm = R.create m in
  let a = Machine.core m 0 and b = Machine.core m 1 in
  R.mmap vm a ~vpn:0 ~npages:1 ();
  ignore (R.touch vm a ~vpn:0);
  ignore (R.touch vm b ~vpn:0);
  let s = Machine.stats m in
  Alcotest.(check int) "one allocating fault" 1 s.Stats.alloc_faults;
  Alcotest.(check int) "one fill fault (b)" 1 s.Stats.fill_faults

let test_shared_mmu_one_fault_per_page () =
  let m = machine () in
  let vm = R.create_with ~mmu:Vm.Page_table.Shared m in
  let a = Machine.core m 0 and b = Machine.core m 1 in
  R.mmap vm a ~vpn:0 ~npages:1 ();
  ignore (R.touch vm a ~vpn:0);
  ignore (R.touch vm b ~vpn:0);
  let s = Machine.stats m in
  Alcotest.(check int) "one fault total" 1 s.Stats.pagefaults;
  Alcotest.(check int) "no fill faults" 0 s.Stats.fill_faults;
  Alcotest.(check bool) "b filled its TLB by hardware walk" true
    (s.Stats.hw_walks >= 1)

let test_mmap_shared_frame_refcount () =
  let m = machine () in
  let vm = R.create m in
  let a = Machine.core m 0 and b = Machine.core m 1 in
  let pm = Machine.physmem m in
  let pfn = Physmem.alloc pm a in
  let freed = ref 0 in
  let handle =
    Refcnt.Refcache_counter.make (R.counters vm) a ~init:1 ~on_free:(fun _ ->
        incr freed)
  in
  R.mmap_shared_frame vm a ~vpn:10 ~npages:1 ~pfn handle;
  R.mmap_shared_frame vm b ~vpn:20 ~npages:1 ~pfn handle;
  ignore (R.touch vm a ~vpn:10);
  ignore (R.touch vm b ~vpn:20);
  R.munmap vm a ~vpn:10 ~npages:1;
  drain_epochs m 8;
  Alcotest.(check int) "page survives one unmap" 0 !freed;
  R.munmap vm b ~vpn:20 ~npages:1;
  drain_epochs m 8;
  Alcotest.(check int) "still one base reference" 0 !freed;
  Refcnt.Refcache_counter.dec (R.counters vm) a handle;
  drain_epochs m 8;
  Alcotest.(check int) "freed when last reference drops" 1 !freed

let test_radixvm_invariants_after_churn () =
  let m = machine () in
  let vm = R.create m in
  let rng = Random.State.make [| 7 |] in
  for _ = 1 to 200 do
    let core = Machine.core m (Random.State.int rng 4) in
    let vpn = Random.State.int rng 256 in
    let n = 1 + Random.State.int rng 16 in
    match Random.State.int rng 3 with
    | 0 -> R.mmap vm core ~vpn ~npages:n ()
    | 1 -> R.munmap vm core ~vpn ~npages:n
    | _ -> ignore (R.touch vm core ~vpn)
  done;
  drain_epochs m 6;
  R.check_invariants vm

let test_no_tlb_entry_survives_munmap () =
  let m = machine () in
  let vm = R.create m in
  let cores = Array.init 4 (Machine.core m) in
  R.mmap vm cores.(0) ~vpn:0 ~npages:8 ();
  Array.iter
    (fun c ->
      for p = 0 to 7 do
        ignore (R.touch vm c ~vpn:p)
      done)
    cores;
  R.munmap vm cores.(3) ~vpn:0 ~npages:8;
  for c = 0 to 3 do
    for p = 0 to 7 do
      Alcotest.(check bool)
        (Printf.sprintf "core %d vpn %d clean" c p)
        false
        (Vm.Mmu.tlb_mem (R.mmu vm) ~core:c ~vpn:p
        || Vm.Mmu.pt_entry (R.mmu vm) ~core:c ~vpn:p <> None)
    done
  done

let test_table2_accounting_moves () =
  let m = machine () in
  let vm = R.create m in
  let c = Machine.core m 0 in
  let bytes0 = R.index_bytes vm in
  R.mmap vm c ~vpn:0 ~npages:64 ();
  for p = 0 to 63 do
    ignore (R.touch vm c ~vpn:p)
  done;
  Alcotest.(check bool) "index grew" true (R.index_bytes vm > bytes0);
  Alcotest.(check bool) "page tables non-empty" true (R.pt_bytes vm > 0)

(* ------------------------------------------------------------------ *)
(* Protection, mprotect, COW fork, page cache, page-table discard       *)

module Prot_suite (V : Vm.Vm_intf.S) = struct
  let tests =
    let test_read_only_mapping () =
      let m = machine () in
      let vm = V.create m in
      let c = Machine.core m 0 in
      V.mmap vm c ~vpn:0 ~npages:4 ~prot:Vm_types.Read_only ();
      Alcotest.check result_t "read allowed" Vm_types.Ok (V.read vm c ~vpn:1);
      Alcotest.check result_t "write denied" Vm_types.Segfault
        (V.touch vm c ~vpn:1);
      (* repeated writes stay denied even with the translation cached *)
      Alcotest.check result_t "write still denied" Vm_types.Segfault
        (V.touch vm c ~vpn:1)
    in
    let test_mprotect_downgrade () =
      let m = machine () in
      let vm = V.create m in
      let a = Machine.core m 0 and b = Machine.core m 1 in
      V.mmap vm a ~vpn:0 ~npages:4 ();
      Alcotest.check result_t "a writes" Vm_types.Ok (V.touch vm a ~vpn:2);
      Alcotest.check result_t "b writes" Vm_types.Ok (V.touch vm b ~vpn:2);
      V.mprotect vm a ~vpn:0 ~npages:4 Vm_types.Read_only;
      (* No stale writable translation may survive, on any core. *)
      Alcotest.check result_t "a write denied" Vm_types.Segfault
        (V.touch vm a ~vpn:2);
      Alcotest.check result_t "b write denied" Vm_types.Segfault
        (V.touch vm b ~vpn:2);
      Alcotest.check result_t "reads fine" Vm_types.Ok (V.read vm b ~vpn:2)
    in
    let test_mprotect_upgrade () =
      let m = machine () in
      let vm = V.create m in
      let c = Machine.core m 0 in
      V.mmap vm c ~vpn:0 ~npages:2 ~prot:Vm_types.Read_only ();
      Alcotest.check result_t "read faults it in" Vm_types.Ok (V.read vm c ~vpn:0);
      Alcotest.check result_t "write denied" Vm_types.Segfault (V.touch vm c ~vpn:0);
      V.mprotect vm c ~vpn:0 ~npages:2 Vm_types.Read_write;
      Alcotest.check result_t "write allowed after upgrade" Vm_types.Ok
        (V.touch vm c ~vpn:0)
    in
    let test_mprotect_partial () =
      let m = machine () in
      let vm = V.create m in
      let c = Machine.core m 0 in
      V.mmap vm c ~vpn:0 ~npages:8 ();
      V.mprotect vm c ~vpn:2 ~npages:3 Vm_types.Read_only;
      Alcotest.check result_t "before" Vm_types.Ok (V.touch vm c ~vpn:1);
      Alcotest.check result_t "inside" Vm_types.Segfault (V.touch vm c ~vpn:3);
      Alcotest.check result_t "after" Vm_types.Ok (V.touch vm c ~vpn:5)
    in
    [
      Alcotest.test_case (V.name ^ " read-only mapping") `Quick test_read_only_mapping;
      Alcotest.test_case (V.name ^ " mprotect downgrade") `Quick test_mprotect_downgrade;
      Alcotest.test_case (V.name ^ " mprotect upgrade") `Quick test_mprotect_upgrade;
      Alcotest.test_case (V.name ^ " mprotect partial") `Quick test_mprotect_partial;
    ]
end

module Radix_prot = Prot_suite (Radixvm.Default)
module Linux_prot = Prot_suite (Baselines.Linux_vm)
module Bonsai_prot = Prot_suite (Baselines.Bonsai_vm)

let test_fork_shares_then_copies () =
  let m = machine () in
  let vm = R.create m in
  let c = Machine.core m 0 in
  R.mmap vm c ~vpn:0 ~npages:4 ();
  for p = 0 to 3 do
    Alcotest.check result_t "parent touch" Vm_types.Ok (R.touch vm c ~vpn:p)
  done;
  Alcotest.(check int) "4 frames" 4 (Physmem.live_frames (Machine.physmem m));
  let child = R.fork vm c in
  (* COW: no frames copied yet *)
  Alcotest.(check int) "fork copies nothing" 4
    (Physmem.live_frames (Machine.physmem m));
  (* Reads in the child share the parent's frames. *)
  Alcotest.check result_t "child read" Vm_types.Ok (R.read child c ~vpn:1);
  Alcotest.(check int) "reads copy nothing" 4
    (Physmem.live_frames (Machine.physmem m));
  (* A child write breaks COW for exactly that page. *)
  Alcotest.check result_t "child write" Vm_types.Ok (R.touch child c ~vpn:1);
  Alcotest.(check int) "one page copied" 5
    (Physmem.live_frames (Machine.physmem m));
  (* A parent write to the same page also copies (both had COW), but a
     parent write to an untouched page copies only once overall. *)
  Alcotest.check result_t "parent write" Vm_types.Ok (R.touch vm c ~vpn:2);
  Alcotest.(check int) "second copy" 6 (Physmem.live_frames (Machine.physmem m));
  R.check_invariants vm;
  R.check_invariants child

let test_fork_frames_freed_when_both_exit () =
  let m = machine () in
  let vm = R.create m in
  let c = Machine.core m 0 in
  R.mmap vm c ~vpn:0 ~npages:4 ();
  for p = 0 to 3 do
    ignore (R.touch vm c ~vpn:p)
  done;
  let child = R.fork vm c in
  ignore (R.touch child c ~vpn:0);
  (* broke COW: 5 live *)
  R.destroy child c;
  drain_epochs m 8;
  Alcotest.(check int) "child exit frees its copy, parent pages stay" 4
    (Physmem.live_frames (Machine.physmem m));
  R.destroy vm c;
  drain_epochs m 8;
  Alcotest.(check int) "all freed after parent exit" 0
    (Physmem.live_frames (Machine.physmem m))

let test_fork_write_isolation_against_parent () =
  let m = machine () in
  let vm = R.create m in
  let c = Machine.core m 0 in
  R.mmap vm c ~vpn:0 ~npages:1 ();
  ignore (R.touch vm c ~vpn:0);
  let child = R.fork vm c in
  (* the parent's cached writable translation was demoted: its next write
     must fault (and copy), not silently write the shared frame *)
  let s = Machine.stats m in
  let faults = s.Stats.pagefaults in
  Alcotest.check result_t "parent write after fork" Vm_types.Ok
    (R.touch vm c ~vpn:0);
  Alcotest.(check bool) "write took a fault" true (s.Stats.pagefaults > faults);
  Alcotest.(check int) "copy made" 2 (Physmem.live_frames (Machine.physmem m));
  ignore child

let test_file_mappings_share_page_cache () =
  let m = machine () in
  let vm = R.create m in
  let a = Machine.core m 0 and b = Machine.core m 1 in
  (* Two address spaces (like two processes) map the same file. *)
  let vm2 = R.fork vm a in
  R.mmap vm a ~vpn:100 ~npages:4 ~backing:(Vm_types.File 7) ();
  R.mmap vm2 b ~vpn:100 ~npages:4 ~backing:(Vm_types.File 7) ();
  ignore (R.read vm a ~vpn:101);
  Alcotest.(check int) "first fault loads from disk" 1
    (Physmem.live_frames (Machine.physmem m));
  ignore (R.read vm2 b ~vpn:101);
  Alcotest.(check int) "second mapping reuses the cached frame" 1
    (Physmem.live_frames (Machine.physmem m));
  Alcotest.(check int) "one cached page" 1 (R.cached_file_pages vm);
  (* Unmapping both still leaves the cache's copy resident. *)
  R.munmap vm a ~vpn:100 ~npages:4;
  R.munmap vm2 b ~vpn:100 ~npages:4;
  drain_epochs m 8;
  Alcotest.(check int) "page stays cached" 1
    (Physmem.live_frames (Machine.physmem m));
  (* Eviction (memory pressure) finally frees it. *)
  R.evict_file_page vm a ~file:7 ~page:101;
  drain_epochs m 8;
  Alcotest.(check int) "evicted" 0 (Physmem.live_frames (Machine.physmem m));
  Alcotest.(check int) "cache empty" 0 (R.cached_file_pages vm)

let test_discard_page_tables () =
  let m = machine () in
  let vm = R.create m in
  let a = Machine.core m 0 and b = Machine.core m 1 in
  R.mmap vm a ~vpn:0 ~npages:8 ();
  for p = 0 to 7 do
    ignore (R.touch vm a ~vpn:p);
    ignore (R.touch vm b ~vpn:p)
  done;
  Alcotest.(check bool) "page tables populated" true (R.pt_bytes vm > 0);
  let frames = Physmem.live_frames (Machine.physmem m) in
  R.discard_page_tables vm a;
  Alcotest.(check int) "page tables empty" 0 (R.pt_bytes vm);
  Alcotest.(check int) "frames untouched" frames
    (Physmem.live_frames (Machine.physmem m));
  (* Everything still works: accesses re-fault and rebuild. *)
  let s = Machine.stats m in
  let alloc = s.Stats.alloc_faults in
  for p = 0 to 7 do
    Alcotest.check result_t "refault" Vm_types.Ok (R.touch vm b ~vpn:p)
  done;
  Alcotest.(check int) "no new frames allocated" alloc s.Stats.alloc_faults;
  Alcotest.(check bool) "page tables rebuilt" true (R.pt_bytes vm > 0);
  R.check_invariants vm

let test_cow_chain_grandchild () =
  let m = machine () in
  let vm = R.create m in
  let c = Machine.core m 0 in
  R.mmap vm c ~vpn:0 ~npages:1 ();
  ignore (R.touch vm c ~vpn:0);
  let child = R.fork vm c in
  let grandchild = R.fork child c in
  Alcotest.(check int) "still one frame" 1
    (Physmem.live_frames (Machine.physmem m));
  ignore (R.touch grandchild c ~vpn:0);
  ignore (R.touch child c ~vpn:0);
  ignore (R.touch vm c ~vpn:0);
  (* Each writer copied (COW never inspects the exact count — Refcache
     only detects stable zeros), so the original frame is now orphaned and
     freed lazily: 3 private copies survive the epochs. *)
  drain_epochs m 8;
  Alcotest.(check int) "three private copies" 3
    (Physmem.live_frames (Machine.physmem m));
  R.destroy vm c;
  R.destroy child c;
  R.destroy grandchild c;
  drain_epochs m 8;
  Alcotest.(check int) "all reclaimed" 0 (Physmem.live_frames (Machine.physmem m))

(* Scheduler-driven concurrency: cores run randomized VM workloads through
   the machine scheduler (not sequential direct calls), on disjoint
   per-core regions plus one shared read-mostly region. Afterwards every
   invariant and every core's data oracle must hold, and no frame may
   leak. This is the closest analogue of the paper's multithreaded
   stress. *)

let test_concurrent_stress () =
  let ncores = 8 in
  let m = machine ~ncores () in
  let vm = R.create m in
  let c0 = Machine.core m 0 in
  (* shared read-mostly region *)
  R.mmap vm c0 ~vpn:0 ~npages:16 ();
  for p = 0 to 15 do
    ignore (R.store vm c0 ~vpn:p (5000 + p))
  done;
  let region_pages = 32 in
  let oracle = Array.make_matrix ncores region_pages (-1) in
  let errors = ref [] in
  for c = 0 to ncores - 1 do
    let core = Machine.core m c in
    let base = 4096 * (c + 1) in
    let mapped = Array.make region_pages false in
    let steps = ref 0 in
    Machine.set_workload m c (fun () ->
        incr steps;
        let rng = core.Core.rng in
        let p = Random.State.int rng region_pages in
        (match Random.State.int rng 6 with
        | 0 ->
            let n = min (1 + Random.State.int rng 8) (region_pages - p) in
            R.mmap vm core ~vpn:(base + p) ~npages:n ();
            for i = p to p + n - 1 do
              mapped.(i) <- true;
              oracle.(c).(i) <- 0
            done
        | 1 ->
            let n = min (1 + Random.State.int rng 8) (region_pages - p) in
            R.munmap vm core ~vpn:(base + p) ~npages:n;
            for i = p to p + n - 1 do
              mapped.(i) <- false;
              oracle.(c).(i) <- -1
            done
        | 2 | 3 ->
            let v = Random.State.int rng 10_000 in
            let r = R.store vm core ~vpn:(base + p) v in
            let expect = if mapped.(p) then Vm_types.Ok else Vm_types.Segfault in
            if r <> expect then errors := `Store (c, p) :: !errors;
            if mapped.(p) then oracle.(c).(p) <- v
        | 4 ->
            let got = R.load vm core ~vpn:(base + p) in
            let expect = if mapped.(p) then Some oracle.(c).(p) else None in
            if got <> expect then errors := `Load (c, p) :: !errors
        | _ ->
            (* read the shared region: never disturbs anyone *)
            let sp = Random.State.int rng 16 in
            if R.load vm core ~vpn:sp <> Some (5000 + sp) then
              errors := `Shared (c, sp) :: !errors);
        !steps < 400)
  done;
  Machine.run m;
  Alcotest.(check int) "no semantic violations" 0 (List.length !errors);
  drain_epochs m 8;
  R.check_invariants vm;
  R.destroy vm c0;
  drain_epochs m 8;
  Alcotest.(check int) "no leaked frames after destroy" 0
    (Physmem.live_frames (Machine.physmem m))

(* Data-level semantics: values stored through the VM must respect COW
   isolation and page-cache sharing. *)

let test_store_load_roundtrip () =
  let m = machine () in
  let vm = R.create m in
  let c = Machine.core m 0 in
  R.mmap vm c ~vpn:0 ~npages:2 ();
  Alcotest.check result_t "store" Vm_types.Ok (R.store vm c ~vpn:0 42);
  Alcotest.(check (option int)) "load" (Some 42) (R.load vm c ~vpn:0);
  Alcotest.(check (option int)) "fresh page zeroed" (Some 0) (R.load vm c ~vpn:1);
  Alcotest.(check (option int)) "unmapped load faults" None (R.load vm c ~vpn:9)

let test_cow_data_isolation () =
  let m = machine () in
  let vm = R.create m in
  let c = Machine.core m 0 in
  R.mmap vm c ~vpn:0 ~npages:2 ();
  ignore (R.store vm c ~vpn:0 111);
  ignore (R.store vm c ~vpn:1 222);
  let child = R.fork vm c in
  Alcotest.(check (option int)) "child sees parent's data" (Some 111)
    (R.load child c ~vpn:0);
  ignore (R.store child c ~vpn:0 999);
  Alcotest.(check (option int)) "child sees its write" (Some 999)
    (R.load child c ~vpn:0);
  Alcotest.(check (option int)) "parent unaffected" (Some 111)
    (R.load vm c ~vpn:0);
  ignore (R.store vm c ~vpn:1 333);
  Alcotest.(check (option int)) "child keeps pre-fork value" (Some 222)
    (R.load child c ~vpn:1);
  Alcotest.(check (option int)) "parent sees its write" (Some 333)
    (R.load vm c ~vpn:1)

let test_file_data_shared_across_spaces () =
  let m = machine () in
  let vm = R.create m in
  let c = Machine.core m 0 in
  let vm2 = R.fork vm c in
  R.mmap vm c ~vpn:64 ~npages:2 ~backing:(Vm_types.File 5) ();
  R.mmap vm2 c ~vpn:128 ~npages:2 ~backing:(Vm_types.File 5) ();
  (* Same file, different virtual addresses... the simplified cache keys
     by (file, vpn), so map at the same vpn to observe sharing. *)
  R.munmap vm2 c ~vpn:128 ~npages:2;
  R.mmap vm2 c ~vpn:64 ~npages:2 ~backing:(Vm_types.File 5) ();
  let expected = Vm.Page_cache.file_content ~file:5 ~page:64 in
  Alcotest.(check (option int)) "disk content" (Some expected)
    (R.load vm c ~vpn:64);
  (* MAP_SHARED semantics: a write through one mapping is visible through
     the other. *)
  ignore (R.store vm c ~vpn:64 777);
  Alcotest.(check (option int)) "shared write visible" (Some 777)
    (R.load vm2 c ~vpn:64)

let cow_data_property =
  QCheck.Test.make ~name:"fork COW preserves data isolation" ~count:60
    QCheck.(
      make
        ~print:(fun ops ->
          String.concat ";"
            (List.map
               (fun (sp, p, v) -> Printf.sprintf "%d:%d<-%d" sp p v)
               ops))
        Gen.(list_size (int_range 1 40) (triple (int_bound 2) (int_bound 7) (int_range 1 1000))))
    (fun ops ->
      let m = machine () in
      let vm = R.create m in
      let c = Machine.core m 0 in
      R.mmap vm c ~vpn:0 ~npages:8 ();
      (* seed, then fork twice *)
      for p = 0 to 7 do
        ignore (R.store vm c ~vpn:p (1000 + p))
      done;
      let child1 = R.fork vm c in
      let child2 = R.fork vm c in
      let spaces = [| vm; child1; child2 |] in
      let oracle = Array.init 3 (fun _ -> Array.init 8 (fun p -> 1000 + p)) in
      List.for_all
        (fun (sp, page, v) ->
          ignore (R.store spaces.(sp) c ~vpn:page v);
          oracle.(sp).(page) <- v;
          (* every space must read back exactly its own view *)
          List.for_all
            (fun s ->
              List.for_all
                (fun p -> R.load spaces.(s) c ~vpn:p = Some oracle.(s).(p))
                [ 0; 1; 2; 3; 4; 5; 6; 7 ])
            [ 0; 1; 2 ])
        ops)

(* ------------------------------------------------------------------ *)
(* Page table unit tests                                                *)

module PT = Vm.Page_table

let test_pt_find_install_clear () =
  let m = machine () in
  List.iter
    (fun kind ->
      let pt = PT.create m kind in
      let a = Machine.core m 0 in
      let pfn_of = function Some e -> Some e.PT.pfn | None -> None in
      Alcotest.(check (option int)) "empty" None (pfn_of (PT.find pt a ~vpn:5));
      PT.install pt a ~vpn:5 ~pfn:50 ~writable:true;
      PT.install pt a ~vpn:6 ~pfn:60 ~writable:false;
      Alcotest.(check (option int)) "found" (Some 50) (pfn_of (PT.find pt a ~vpn:5));
      (match PT.find pt a ~vpn:6 with
      | Some pte -> Alcotest.(check bool) "ro kept" false pte.PT.writable
      | None -> Alcotest.fail "pte 6 missing");
      let removed = PT.clear_range pt ~owner:0 ~lo:0 ~hi:6 in
      Alcotest.(check (list (pair int int))) "removed" [ (5, 50) ] removed;
      Alcotest.(check (option int)) "cleared" None (pfn_of (PT.find pt a ~vpn:5));
      Alcotest.(check (option int)) "kept" (Some 60) (pfn_of (PT.find pt a ~vpn:6)))
    [ PT.Per_core; PT.Shared; PT.Grouped 2 ]

let test_pt_visibility_by_kind () =
  let m = machine () in
  let check_visibility kind ~same_group_sees =
    let pt = PT.create m kind in
    PT.install pt (Machine.core m 0) ~vpn:7 ~pfn:70 ~writable:true;
    let seen_by c = PT.find pt (Machine.core m c) ~vpn:7 <> None in
    Alcotest.(check bool) "installer sees" true (seen_by 0);
    Alcotest.(check bool) "group mate" same_group_sees (seen_by 1);
    (match kind with
    | PT.Shared -> Alcotest.(check bool) "far core sees" true (seen_by 3)
    | PT.Per_core | PT.Grouped _ ->
        Alcotest.(check bool) "far core blind" false (seen_by 3))
  in
  check_visibility PT.Per_core ~same_group_sees:false;
  check_visibility (PT.Grouped 2) ~same_group_sees:true;
  check_visibility PT.Shared ~same_group_sees:true

let test_pt_accounting () =
  let m = machine () in
  let pt = PT.create m PT.Shared in
  let a = Machine.core m 0 in
  for vpn = 0 to 599 do
    PT.install pt a ~vpn ~pfn:vpn ~writable:true
  done;
  Alcotest.(check int) "entries" 600 (PT.entries pt);
  (* 600 PTEs span two 512-entry leaf pages *)
  Alcotest.(check int) "leaf pages" 2 (PT.pt_pages pt);
  Alcotest.(check int) "bytes" (2 * 4096) (PT.bytes pt)

(* ------------------------------------------------------------------ *)
(* VMA interval bookkeeping (splits and merges) against a page oracle   *)

let vma_interval_property =
  QCheck.Test.make ~name:"linux vma count matches interval oracle" ~count:80
    QCheck.(
      make
        ~print:(fun ops ->
          String.concat ";"
            (List.map
               (fun (m, lo, n) ->
                 Printf.sprintf "%s[%d+%d]" (if m then "map" else "unmap") lo n)
               ops))
        Gen.(list_size (int_range 1 40) (triple bool (int_bound 100) (int_range 1 20))))
    (fun ops ->
      let m = machine () in
      let vm = Baselines.Linux_vm.create m in
      let core = Machine.core m 0 in
      let mapped = Array.make 140 false in
      List.iter
        (fun (do_map, lo, n) ->
          if do_map then begin
            Baselines.Linux_vm.mmap vm core ~vpn:lo ~npages:n ();
            Array.fill mapped lo n true
          end
          else begin
            Baselines.Linux_vm.munmap vm core ~vpn:lo ~npages:n;
            Array.fill mapped lo n false
          end)
        ops;
      (* count maximal runs of mapped pages: with merging of same-prot
         anon mappings, the VMA count must equal the run count *)
      let runs = ref 0 in
      for p = 0 to 139 do
        if mapped.(p) && ((not (p > 0 && mapped.(p - 1))) || p = 0) then incr runs
      done;
      Baselines.Linux_vm.vma_count vm = !runs
      && Array.for_all (fun x -> x = x) mapped
      &&
      let ok = ref true in
      Array.iteri
        (fun p expect ->
          if Baselines.Linux_vm.mapped vm ~vpn:p <> expect then ok := false)
        mapped;
      !ok)

(* ------------------------------------------------------------------ *)
(* Grouped page tables (the section 3.3 "share page tables between      *)
(* small groups of cores" variant)                                      *)

let test_grouped_walk_within_group () =
  let m = machine ~ncores:4 () in
  let vm = R.create_with ~mmu:(Vm.Page_table.Grouped 2) m in
  let a = Machine.core m 0 and b = Machine.core m 1 in
  R.mmap vm a ~vpn:0 ~npages:1 ();
  ignore (R.touch vm a ~vpn:0);
  let s = Machine.stats m in
  let faults = s.Stats.pagefaults in
  (* b shares a's page table: its access is a hardware walk, no fault. *)
  ignore (R.touch vm b ~vpn:0);
  Alcotest.(check int) "no new fault inside group" faults s.Stats.pagefaults;
  Alcotest.(check bool) "hardware walk happened" true (s.Stats.hw_walks >= 1);
  (* a core in the other group must software-fault *)
  ignore (R.touch vm (Machine.core m 2) ~vpn:0);
  Alcotest.(check int) "other group faults" (faults + 1) s.Stats.pagefaults

let test_grouped_shootdown_targets_groups () =
  let m = machine ~ncores:6 () in
  let vm = R.create_with ~mmu:(Vm.Page_table.Grouped 2) m in
  let a = Machine.core m 0 in
  R.mmap vm a ~vpn:0 ~npages:1 ();
  ignore (R.touch vm a ~vpn:0);
  ignore (R.touch vm (Machine.core m 2) ~vpn:0);
  (* groups {0,1} and {2,3} used the page; group {4,5} did not *)
  let s = Machine.stats m in
  let before = s.Stats.ipis in
  R.munmap vm a ~vpn:0 ~npages:1;
  (* targets: cores 1, 2, 3 (self excluded) — not 4 or 5 *)
  Alcotest.(check int) "three IPIs" (before + 3) s.Stats.ipis;
  (* the group-mate's stale translation must be gone *)
  Alcotest.check result_t "group-mate faults after munmap" Vm_types.Segfault
    (R.touch vm (Machine.core m 1) ~vpn:0)

let test_grouped_pt_memory_between () =
  let count mmu =
    let m = machine ~ncores:4 () in
    let vm = R.create_with ~mmu m in
    for c = 0 to 3 do
      let core = Machine.core m c in
      let vpn = c * 4096 in
      R.mmap vm core ~vpn ~npages:8 ();
      for p = vpn to vpn + 7 do
        ignore (R.touch vm core ~vpn:p)
      done
    done;
    Vm.Page_table.entries (Vm.Mmu.page_table (R.mmu vm))
  in
  let per_core = count Vm.Page_table.Per_core in
  let grouped = count (Vm.Page_table.Grouped 2) in
  let shared = count Vm.Page_table.Shared in
  Alcotest.(check int) "per-core PTEs for private pages" 32 per_core;
  Alcotest.(check int) "grouped same for private pages" 32 grouped;
  Alcotest.(check int) "shared same for private pages" 32 shared;
  (* now with full sharing: every core touches every page *)
  let count_shared_access mmu =
    let m = machine ~ncores:4 () in
    let vm = R.create_with ~mmu m in
    R.mmap vm (Machine.core m 0) ~vpn:0 ~npages:8 ();
    for c = 0 to 3 do
      for p = 0 to 7 do
        ignore (R.touch vm (Machine.core m c) ~vpn:p)
      done
    done;
    Vm.Page_table.entries (Vm.Mmu.page_table (R.mmu vm))
  in
  Alcotest.(check int) "per-core: 4 copies" 32
    (count_shared_access Vm.Page_table.Per_core);
  Alcotest.(check int) "grouped: 2 copies" 16
    (count_shared_access (Vm.Page_table.Grouped 2));
  Alcotest.(check int) "shared: 1 copy" 8
    (count_shared_access Vm.Page_table.Shared)

module Radix_grouped = struct
  include R

  let name = "radixvm+grouped"
  let create m = R.create_with ~mmu:(Vm.Page_table.Grouped 2) m
end

module Grouped_generic = Generic (Radix_grouped)

(* ------------------------------------------------------------------ *)
(* Baseline-specific behaviour                                         *)

let test_linux_faults_contend_on_lock () =
  let m = machine ~ncores:8 () in
  let vm = Baselines.Linux_vm.create m in
  let c0 = Machine.core m 0 in
  Baselines.Linux_vm.mmap vm c0 ~vpn:0 ~npages:64 ();
  let s = Machine.stats m in
  let before = s.Stats.lock_acquires in
  for core = 0 to 7 do
    ignore (Baselines.Linux_vm.touch vm (Machine.core m core) ~vpn:core)
  done;
  (* Every fault took the read lock. *)
  Alcotest.(check bool) "read lock taken per fault" true
    (s.Stats.lock_acquires - before >= 8)

let test_bonsai_faults_take_no_lock () =
  let m = machine ~ncores:8 () in
  let vm = Baselines.Bonsai_vm.create m in
  let c0 = Machine.core m 0 in
  Baselines.Bonsai_vm.mmap vm c0 ~vpn:0 ~npages:64 ();
  let s = Machine.stats m in
  let before = s.Stats.lock_acquires in
  for core = 0 to 7 do
    ignore (Baselines.Bonsai_vm.touch vm (Machine.core m core) ~vpn:core)
  done;
  Alcotest.(check int) "no lock acquires in fault path" before
    s.Stats.lock_acquires

let test_linux_vma_merging () =
  let m = machine () in
  let vm = Baselines.Linux_vm.create m in
  let c = Machine.core m 0 in
  Baselines.Linux_vm.mmap vm c ~vpn:0 ~npages:4 ();
  Baselines.Linux_vm.mmap vm c ~vpn:4 ~npages:4 ();
  Baselines.Linux_vm.mmap vm c ~vpn:8 ~npages:4 ();
  Alcotest.(check int) "adjacent anon VMAs merge" 1
    (Baselines.Linux_vm.vma_count vm);
  Baselines.Linux_vm.munmap vm c ~vpn:4 ~npages:4;
  Alcotest.(check int) "split in two" 2 (Baselines.Linux_vm.vma_count vm)

let test_baseline_broadcast_shootdown () =
  let m = machine () in
  let vm = Baselines.Linux_vm.create m in
  let a = Machine.core m 0 in
  Baselines.Linux_vm.mmap vm a ~vpn:0 ~npages:2 ();
  ignore (Baselines.Linux_vm.touch vm a ~vpn:0);
  (* Make three other cores active in the address space. *)
  for c = 1 to 3 do
    ignore (Baselines.Linux_vm.touch vm (Machine.core m c) ~vpn:1)
  done;
  let s = Machine.stats m in
  let before = s.Stats.ipis in
  Baselines.Linux_vm.munmap vm a ~vpn:0 ~npages:2;
  Alcotest.(check int) "broadcast to all three others" (before + 3) s.Stats.ipis

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "vm"
    [
      ("radixvm generic", Radix_generic.suite ~settle:settle_refcache);
      ( "radixvm shared-counter generic",
        Radix_shared_generic.suite ~settle:settle_immediate );
      ("linux generic", Linux_generic.suite ~settle:settle_immediate);
      ("bonsai generic", Bonsai_generic.suite ~settle:settle_immediate);
      ("protection radixvm", Radix_prot.tests);
      ("protection linux", Linux_prot.tests);
      ("protection bonsai", Bonsai_prot.tests);
      ( "fork & cow",
        [
          tc "fork shares then copies" `Quick test_fork_shares_then_copies;
          tc "frames freed at exit" `Quick test_fork_frames_freed_when_both_exit;
          tc "parent write isolation" `Quick test_fork_write_isolation_against_parent;
          tc "cow chain grandchild" `Quick test_cow_chain_grandchild;
        ] );
      ( "concurrent stress",
        [ tc "8-core randomized workloads" `Slow test_concurrent_stress ] );
      ( "data semantics",
        [
          tc "store/load roundtrip" `Quick test_store_load_roundtrip;
          tc "cow isolation" `Quick test_cow_data_isolation;
          tc "file data shared" `Quick test_file_data_shared_across_spaces;
          QCheck_alcotest.to_alcotest cow_data_property;
        ] );
      ( "page cache & discard",
        [
          tc "file mappings share cache" `Quick test_file_mappings_share_page_cache;
          tc "discard page tables" `Quick test_discard_page_tables;
        ] );
      ( "page table",
        [
          tc "find/install/clear" `Quick test_pt_find_install_clear;
          tc "visibility by kind" `Quick test_pt_visibility_by_kind;
          tc "accounting" `Quick test_pt_accounting;
        ] );
      ("vma intervals", [ QCheck_alcotest.to_alcotest vma_interval_property ]);
      ("radixvm grouped generic", Grouped_generic.suite ~settle:settle_refcache);
      ( "grouped mmu",
        [
          tc "walk within group" `Quick test_grouped_walk_within_group;
          tc "shootdown targets groups" `Quick test_grouped_shootdown_targets_groups;
          tc "pt memory between" `Quick test_grouped_pt_memory_between;
        ] );
      ( "radixvm specific",
        [
          tc "no IPIs single core" `Quick test_targeted_no_ipis_single_core;
          tc "IPI only to faulting core" `Quick test_targeted_ipi_only_to_faulting_core;
          tc "shared MMU broadcasts" `Quick test_shared_mmu_broadcasts;
          tc "per-core fill faults" `Quick test_per_core_fill_faults;
          tc "shared MMU one fault" `Quick test_shared_mmu_one_fault_per_page;
          tc "shared frame refcount" `Quick test_mmap_shared_frame_refcount;
          tc "invariants after churn" `Quick test_radixvm_invariants_after_churn;
          tc "munmap leaves no stale entry" `Quick test_no_tlb_entry_survives_munmap;
          tc "memory accounting" `Quick test_table2_accounting_moves;
        ] );
      ( "baseline specific",
        [
          tc "linux faults take lock" `Quick test_linux_faults_contend_on_lock;
          tc "bonsai faults lock-free" `Quick test_bonsai_faults_take_no_lock;
          tc "linux vma merging" `Quick test_linux_vma_merging;
          tc "broadcast shootdown" `Quick test_baseline_broadcast_shootdown;
        ] );
      ( "checker",
        [ tc "no TLB or refcount violations anywhere" `Quick test_checker_clean ] );
    ]
