test/test_refcnt.ml: Alcotest Ccsim List Machine Params Printf QCheck QCheck_alcotest Refcnt Stats String
