test/test_os.ml: Alcotest Ccsim Format Gen List Machine Option Os Params Physmem QCheck QCheck_alcotest String Vm
