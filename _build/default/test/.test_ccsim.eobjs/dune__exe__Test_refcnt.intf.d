test/test_refcnt.mli:
