test/test_ccsim.ml: Alcotest Array Bitset Ccsim Cell Channel Core Hashtbl Ipi Line List Lock Machine Params Physmem Printf QCheck QCheck_alcotest Rwlock Stats Tlb
