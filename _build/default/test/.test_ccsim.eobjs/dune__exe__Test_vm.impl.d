test/test_vm.ml: Alcotest Array Baselines Ccsim Core Format Gen Hashtbl List Machine Params Physmem Printf QCheck QCheck_alcotest Random Refcnt Stats String Vm
