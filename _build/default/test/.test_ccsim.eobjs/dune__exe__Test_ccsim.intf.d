test/test_ccsim.mli:
