test/test_structures.ml: Alcotest Ccsim Core Int List Machine Map Params Printf QCheck QCheck_alcotest Stats String Structures
