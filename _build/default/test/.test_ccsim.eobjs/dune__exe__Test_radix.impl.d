test/test_radix.ml: Alcotest Ccsim Core Hashtbl List Machine Params Printf QCheck QCheck_alcotest Radix Refcnt String
