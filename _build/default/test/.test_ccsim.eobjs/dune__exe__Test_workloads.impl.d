test/test_workloads.ml: Alcotest Array Baselines Ccsim Core Machine Params Printf Refcnt Vm Workloads
