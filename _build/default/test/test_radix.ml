(* Tests for the compressed radix tree: folding, expansion, range locking,
   Refcache-tracked node liveness and collapsing, plus a model-based
   property test against a hash-table oracle. *)

open Ccsim
module Refcache = Refcnt.Refcache

let epoch = 10_000

let setup ?(ncores = 4) ?(bits = 4) ?(levels = 3) ?(collapse = false) () =
  let m = Machine.create (Params.default ~ncores ~epoch_cycles:epoch ()) in
  let rc = Refcache.create m in
  let core0 = Machine.core m 0 in
  let tree = Radix.create ~bits ~levels ~collapse m rc core0 in
  (m, rc, tree)

let drain_epochs m n = Machine.drain m ~cycles:(n * epoch)

(* VM-style mmap: lock, clear what's there, fill. *)
let mmap tree core ~lo ~hi v =
  let lk = Radix.lock_range tree core ~lo ~hi in
  ignore (Radix.clear_range tree core lk);
  Radix.fill_range tree core lk v;
  Radix.unlock_range tree core lk

let munmap tree core ~lo ~hi =
  let lk = Radix.lock_range tree core ~lo ~hi in
  let removed = Radix.clear_range tree core lk in
  Radix.unlock_range tree core lk;
  removed

(* ------------------------------------------------------------------ *)

let test_fill_lookup_clear () =
  let m, _rc, tree = setup () in
  let c = Machine.core m 0 in
  mmap tree c ~lo:10 ~hi:20 "a";
  Alcotest.(check (option string)) "mapped" (Some "a") (Radix.lookup tree c 15);
  Alcotest.(check (option string)) "below" None (Radix.lookup tree c 9);
  Alcotest.(check (option string)) "above" None (Radix.lookup tree c 20);
  let removed = munmap tree c ~lo:10 ~hi:20 in
  Alcotest.(check int)
    "all ten pages returned" 10
    (List.fold_left (fun acc (_, n, _) -> acc + n) 0 removed);
  Alcotest.(check (option string)) "unmapped" None (Radix.lookup tree c 15);
  Radix.check_invariants tree

let test_folding_keeps_tree_small () =
  let m, _rc, tree = setup () in
  let c = Machine.core m 0 in
  let nodes0 = Radix.node_count tree in
  (* 16^2 = 256 pages: exactly one level-2 slot's span. *)
  mmap tree c ~lo:0 ~hi:256 "big";
  Alcotest.(check int) "fold allocated no nodes" nodes0 (Radix.node_count tree);
  Alcotest.(check (option string)) "first" (Some "big") (Radix.lookup tree c 0);
  Alcotest.(check (option string)) "last" (Some "big") (Radix.lookup tree c 255);
  Radix.check_invariants tree

let test_whole_space_fold () =
  let m, _rc, tree = setup () in
  let c = Machine.core m 0 in
  let max = Radix.max_vpn tree in
  mmap tree c ~lo:0 ~hi:max "all";
  Alcotest.(check int) "single node" 1 (Radix.node_count tree);
  Alcotest.(check (option string)) "mid" (Some "all") (Radix.lookup tree c (max / 2));
  Radix.check_invariants tree

let test_set_page_expands () =
  let m, _rc, tree = setup () in
  let c = Machine.core m 0 in
  mmap tree c ~lo:0 ~hi:256 "shared";
  let lk = Radix.lock_range tree c ~lo:7 ~hi:8 in
  Alcotest.(check (option string)) "get through fold" (Some "shared")
    (Radix.get_page tree c lk 7);
  Radix.set_page tree c lk 7 "private";
  Radix.unlock_range tree c lk;
  Alcotest.(check (option string)) "private page" (Some "private")
    (Radix.lookup tree c 7);
  Alcotest.(check (option string)) "neighbours keep fold" (Some "shared")
    (Radix.lookup tree c 8);
  Alcotest.(check bool) "expansion allocated nodes" true
    (Radix.node_count tree > 1);
  Radix.check_invariants tree

let test_partial_munmap_of_fold () =
  let m, _rc, tree = setup () in
  let c = Machine.core m 0 in
  mmap tree c ~lo:0 ~hi:256 "x";
  let removed = munmap tree c ~lo:100 ~hi:156 in
  Alcotest.(check int) "56 pages removed" 56
    (List.fold_left (fun acc (_, n, _) -> acc + n) 0 removed);
  Alcotest.(check (option string)) "left survives" (Some "x") (Radix.lookup tree c 99);
  Alcotest.(check (option string)) "hole" None (Radix.lookup tree c 128);
  Alcotest.(check (option string)) "right survives" (Some "x") (Radix.lookup tree c 156);
  Radix.check_invariants tree

let test_clear_returns_folded_runs () =
  let m, _rc, tree = setup () in
  let c = Machine.core m 0 in
  mmap tree c ~lo:0 ~hi:256 "x";
  let removed = munmap tree c ~lo:0 ~hi:256 in
  (* A fully folded region comes back as a handful of large runs, not 256
     single-page entries. *)
  Alcotest.(check bool) "few runs" true (List.length removed <= 16);
  Radix.check_invariants tree

let test_lock_overlap_serializes () =
  let m, _rc, tree = setup () in
  let a = Machine.core m 0 and b = Machine.core m 1 in
  (* Expand the range to leaves first so locks are per-page. *)
  mmap tree a ~lo:0 ~hi:16 "v";
  let lk = Radix.lock_range tree a ~lo:4 ~hi:8 in
  Core.tick a 100_000;
  Radix.unlock_range tree a lk;
  let lk_b = Radix.lock_range tree b ~lo:7 ~hi:12 in
  Alcotest.(check bool) "overlapping locker waited" true (Core.now b >= 100_000);
  Radix.unlock_range tree b lk_b

let test_disjoint_ranges_no_wait () =
  let m, _rc, tree = setup ~bits:4 ~levels:3 () in
  let a = Machine.core m 0 and b = Machine.core m 1 in
  (* Two far-apart leaf regions, pre-expanded by per-page writes. *)
  mmap tree a ~lo:0 ~hi:16 "a";
  mmap tree b ~lo:2048 ~hi:2064 "b";
  let lk_a = Radix.lock_range tree a ~lo:0 ~hi:16 in
  Core.tick a 1_000_000;
  Radix.unlock_range tree a lk_a;
  let before = Core.now b in
  let lk_b = Radix.lock_range tree b ~lo:2048 ~hi:2064 in
  Radix.unlock_range tree b lk_b;
  Alcotest.(check bool) "no cross-range wait" true
    (Core.now b - before < 100_000)

let test_fill_on_mapped_rejected () =
  let m, _rc, tree = setup () in
  let c = Machine.core m 0 in
  mmap tree c ~lo:0 ~hi:8 "x";
  let lk = Radix.lock_range tree c ~lo:0 ~hi:8 in
  Alcotest.check_raises "fill over mapped"
    (Invalid_argument "Radix.fill_range: page mapped") (fun () ->
      Radix.fill_range tree c lk "y");
  Radix.unlock_range tree c lk

let test_bad_ranges_rejected () =
  let m, _rc, tree = setup () in
  let c = Machine.core m 0 in
  Alcotest.check_raises "empty range"
    (Invalid_argument "Radix.lock_range: bad range") (fun () ->
      ignore (Radix.lock_range tree c ~lo:5 ~hi:5));
  Alcotest.check_raises "beyond space"
    (Invalid_argument "Radix.lock_range: bad range") (fun () ->
      ignore (Radix.lock_range tree c ~lo:0 ~hi:(Radix.max_vpn tree + 1)))

let test_out_of_token_access_rejected () =
  let m, _rc, tree = setup () in
  let c = Machine.core m 0 in
  let lk = Radix.lock_range tree c ~lo:0 ~hi:8 in
  Alcotest.check_raises "get outside token"
    (Invalid_argument "Radix.get_page: outside the locked range") (fun () ->
      ignore (Radix.get_page tree c lk 9));
  Radix.unlock_range tree c lk

(* ------------------------------------------------------------------ *)
(* Collapse (Refcache-driven node reclamation)                         *)

let test_collapse_reclaims_nodes () =
  let m, _rc, tree = setup ~collapse:true () in
  let c = Machine.core m 0 in
  (* Per-page writes force full expansion. *)
  mmap tree c ~lo:0 ~hi:16 "x";
  let lk = Radix.lock_range tree c ~lo:0 ~hi:16 in
  for p = 0 to 15 do
    Radix.set_page tree c lk p "y"
  done;
  Radix.unlock_range tree c lk;
  let expanded = Radix.node_count tree in
  Alcotest.(check bool) "expanded" true (expanded > 1);
  ignore (munmap tree c ~lo:0 ~hi:16);
  drain_epochs m 6;
  Alcotest.(check int) "collapsed back to root" 1 (Radix.node_count tree);
  Alcotest.(check (option string)) "still unmapped" None (Radix.lookup tree c 3);
  Radix.check_invariants tree

let test_no_collapse_by_default () =
  let m, _rc, tree = setup ~collapse:false () in
  let c = Machine.core m 0 in
  mmap tree c ~lo:0 ~hi:16 "x";
  let lk = Radix.lock_range tree c ~lo:3 ~hi:4 in
  Radix.set_page tree c lk 3 "y";
  Radix.unlock_range tree c lk;
  let expanded = Radix.node_count tree in
  ignore (munmap tree c ~lo:0 ~hi:16);
  drain_epochs m 6;
  Alcotest.(check int) "nodes retained" expanded (Radix.node_count tree);
  Radix.check_invariants tree

let test_reuse_after_empty_before_collapse () =
  let m, _rc, tree = setup ~collapse:true () in
  let c = Machine.core m 0 in
  mmap tree c ~lo:0 ~hi:4 "x";
  let lk = Radix.lock_range tree c ~lo:0 ~hi:4 in
  for p = 0 to 3 do
    Radix.set_page tree c lk p "y"
  done;
  Radix.unlock_range tree c lk;
  ignore (munmap tree c ~lo:0 ~hi:4);
  (* Node is empty and queued for collapse; reuse it immediately. *)
  mmap tree c ~lo:0 ~hi:4 "z";
  drain_epochs m 8;
  Alcotest.(check (option string)) "revived mapping survives" (Some "z")
    (Radix.lookup tree c 2);
  Radix.check_invariants tree

(* ------------------------------------------------------------------ *)
(* Model-based property test                                           *)

type mop =
  | Mmap of int * int  (* lo, hi *)
  | Munmap of int * int
  | Setp of int
  | Look of int

let mop_print = function
  | Mmap (a, b) -> Printf.sprintf "mmap[%d,%d)" a b
  | Munmap (a, b) -> Printf.sprintf "munmap[%d,%d)" a b
  | Setp p -> Printf.sprintf "set(%d)" p
  | Look p -> Printf.sprintf "look(%d)" p

let mop_gen space =
  QCheck.Gen.(
    let range =
      map2
        (fun lo len -> (lo, min space (lo + 1 + len)))
        (int_bound (space - 2))
        (int_bound (space / 4))
    in
    frequency
      [
        (4, map (fun (a, b) -> Mmap (a, b)) range);
        (3, map (fun (a, b) -> Munmap (a, b)) range);
        (2, map (fun p -> Setp p) (int_bound (space - 1)));
        (3, map (fun p -> Look p) (int_bound (space - 1)));
      ])

let radix_model_test ~collapse =
  let space = 4096 in
  (* bits=4, levels=3 -> 4096 pages *)
  QCheck.Test.make
    ~name:
      (Printf.sprintf "radix matches oracle (collapse=%b)" collapse)
    ~count:60
    (QCheck.make
       ~print:(fun l -> String.concat ";" (List.map mop_print l))
       QCheck.Gen.(list_size (int_range 1 80) (mop_gen space)))
    (fun ops ->
      let m, _rc, tree = setup ~collapse () in
      let c = Machine.core m 0 in
      let model : (int, int) Hashtbl.t = Hashtbl.create 64 in
      let next_id = ref 0 in
      let ok = ref true in
      List.iter
        (fun op ->
          match op with
          | Mmap (lo, hi) ->
              incr next_id;
              mmap tree c ~lo ~hi !next_id;
              for p = lo to hi - 1 do
                Hashtbl.replace model p !next_id
              done
          | Munmap (lo, hi) ->
              ignore (munmap tree c ~lo ~hi);
              for p = lo to hi - 1 do
                Hashtbl.remove model p
              done
          | Setp p ->
              incr next_id;
              let lk = Radix.lock_range tree c ~lo:p ~hi:(p + 1) in
              if Radix.get_page tree c lk p <> None then begin
                Radix.set_page tree c lk p !next_id;
                Hashtbl.replace model p !next_id
              end;
              Radix.unlock_range tree c lk
          | Look p ->
              if Radix.lookup tree c p <> Hashtbl.find_opt model p then
                ok := false)
        ops;
      Radix.check_invariants tree;
      (* Settle Refcache and re-verify the whole space. *)
      drain_epochs m 6;
      Radix.check_invariants tree;
      for p = 0 to space - 1 do
        if Radix.peek tree p <> Hashtbl.find_opt model p then ok := false
      done;
      !ok)

let test_fold_mapped_enumerates () =
  let m, _rc, tree = setup () in
  let c = Machine.core m 0 in
  mmap tree c ~lo:3 ~hi:6 "a";
  mmap tree c ~lo:10 ~hi:12 "b";
  let pages =
    Radix.fold_mapped tree ~init:[] ~f:(fun acc p v -> (p, v) :: acc)
    |> List.rev
  in
  Alcotest.(check (list (pair int string)))
    "enumeration"
    [ (3, "a"); (4, "a"); (5, "a"); (10, "b"); (11, "b") ]
    pages

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "radix"
    [
      ( "basics",
        [
          tc "fill lookup clear" `Quick test_fill_lookup_clear;
          tc "folding" `Quick test_folding_keeps_tree_small;
          tc "whole space fold" `Quick test_whole_space_fold;
          tc "set_page expands" `Quick test_set_page_expands;
          tc "partial munmap of fold" `Quick test_partial_munmap_of_fold;
          tc "clear returns runs" `Quick test_clear_returns_folded_runs;
          tc "fold_mapped" `Quick test_fold_mapped_enumerates;
        ] );
      ( "locking",
        [
          tc "overlap serializes" `Quick test_lock_overlap_serializes;
          tc "disjoint no wait" `Quick test_disjoint_ranges_no_wait;
          tc "fill on mapped rejected" `Quick test_fill_on_mapped_rejected;
          tc "bad ranges" `Quick test_bad_ranges_rejected;
          tc "token bounds" `Quick test_out_of_token_access_rejected;
        ] );
      ( "collapse",
        [
          tc "reclaims nodes" `Quick test_collapse_reclaims_nodes;
          tc "off by default" `Quick test_no_collapse_by_default;
          tc "revive before collapse" `Quick test_reuse_after_empty_before_collapse;
        ] );
      ( "property",
        [
          QCheck_alcotest.to_alcotest (radix_model_test ~collapse:false);
          QCheck_alcotest.to_alcotest (radix_model_test ~collapse:true);
        ] );
    ]
