(* Model-based tests for the index structures: skip list, red-black tree,
   COW weight-balanced tree. Each is checked against a Map oracle under
   random operation sequences, with structural invariants verified after
   every batch. *)

open Ccsim
module IntMap = Map.Make (Int)

let machine () = Machine.create (Params.default ~ncores:8 ())

type op = Insert of int * int | Remove of int | Find of int | Floor of int

let op_gen key_range =
  QCheck.Gen.(
    frequency
      [
        (4, map2 (fun k v -> Insert (k, v)) (int_bound key_range) (int_bound 1000));
        (3, map (fun k -> Remove k) (int_bound key_range));
        (2, map (fun k -> Find k) (int_bound key_range));
        (1, map (fun k -> Floor k) (int_bound key_range));
      ])

let op_print = function
  | Insert (k, v) -> Printf.sprintf "ins(%d,%d)" k v
  | Remove k -> Printf.sprintf "rem(%d)" k
  | Find k -> Printf.sprintf "find(%d)" k
  | Floor k -> Printf.sprintf "floor(%d)" k

let ops_arb =
  QCheck.make
    ~print:(fun l -> String.concat ";" (List.map op_print l))
    QCheck.Gen.(list_size (int_range 1 200) (op_gen 50))

let map_floor m k =
  IntMap.fold (fun key v acc -> if key <= k then Some (key, v) else acc) m None

(* A common harness: the structure under test exposes map-like charged
   operations plus an invariant checker and an uncharged dump. *)
module type Map_like = sig
  type t

  val name : string
  val create : Core.t -> t
  val insert : Core.t -> t -> int -> int -> unit
  val remove : Core.t -> t -> int -> bool
  val find : Core.t -> t -> int -> int option
  val floor : Core.t -> t -> int -> (int * int) option
  val to_alist : t -> (int * int) list
  val check_invariants : t -> unit
end

module Harness (S : Map_like) = struct
  let model_test =
    QCheck.Test.make
      ~name:(S.name ^ " matches Map oracle")
      ~count:120 ops_arb
      (fun ops ->
        let m = machine () in
        let core = Machine.core m 0 in
        let t = S.create core in
        let model = ref IntMap.empty in
        List.for_all
          (fun op ->
            let ok =
              match op with
              | Insert (k, v) ->
                  S.insert core t k v;
                  model := IntMap.add k v !model;
                  true
              | Remove k ->
                  let present = IntMap.mem k !model in
                  let removed = S.remove core t k in
                  model := IntMap.remove k !model;
                  removed = present
              | Find k -> S.find core t k = IntMap.find_opt k !model
              | Floor k -> S.floor core t k = map_floor !model k
            in
            S.check_invariants t;
            ok && S.to_alist t = IntMap.bindings !model)
          ops)

  let basic () =
    let m = machine () in
    let core = Machine.core m 0 in
    let t = S.create core in
    Alcotest.(check (option int)) "empty find" None (S.find core t 5);
    S.insert core t 5 50;
    S.insert core t 1 10;
    S.insert core t 9 90;
    Alcotest.(check (option int)) "find 5" (Some 50) (S.find core t 5);
    S.insert core t 5 55;
    Alcotest.(check (option int)) "replaced" (Some 55) (S.find core t 5);
    Alcotest.(check (list (pair int int)))
      "sorted" [ (1, 10); (5, 55); (9, 90) ] (S.to_alist t);
    Alcotest.(check bool) "remove" true (S.remove core t 5);
    Alcotest.(check bool) "remove absent" false (S.remove core t 5);
    Alcotest.(check (option (pair int int))) "floor" (Some (1, 10)) (S.floor core t 4);
    Alcotest.(check (option (pair int int))) "floor exact" (Some (9, 90)) (S.floor core t 9);
    Alcotest.(check (option (pair int int))) "floor below" None (S.floor core t 0);
    S.check_invariants t

  let ascending_descending () =
    let m = machine () in
    let core = Machine.core m 0 in
    let t = S.create core in
    for k = 1 to 200 do
      S.insert core t k k;
      S.check_invariants t
    done;
    for k = 200 downto 1 do
      Alcotest.(check bool) (Printf.sprintf "rm %d" k) true (S.remove core t k);
      S.check_invariants t
    done;
    Alcotest.(check (list (pair int int))) "empty" [] (S.to_alist t)

  let tests =
    [
      Alcotest.test_case (S.name ^ " basic") `Quick basic;
      Alcotest.test_case (S.name ^ " asc/desc") `Quick ascending_descending;
      QCheck_alcotest.to_alcotest model_test;
    ]
end

module Skiplist_adapter = struct
  include Structures.Skiplist

  type t = int Structures.Skiplist.t

  let name = "skiplist"
  let create core = create core
end

module Rbtree_adapter = struct
  include Structures.Rbtree

  type t = int Structures.Rbtree.t

  let name = "rbtree"
end

module Cow_adapter = struct
  include Structures.Cow_tree

  type t = int Structures.Cow_tree.t

  let name = "cow_tree"
end

module Skiplist_h = Harness (Skiplist_adapter)
module Rbtree_h = Harness (Rbtree_adapter)
module Cow_h = Harness (Cow_adapter)

(* ------------------------------------------------------------------ *)
(* Structure-specific cost-shape checks                                *)

(* The Figure 6 mechanism: a writer on unrelated keys invalidates interior
   nodes that readers then have to re-fetch. *)
let test_skiplist_interior_contention () =
  let m = machine () in
  let reader = Machine.core m 0 and writer = Machine.core m 1 in
  let t = Structures.Skiplist.create reader in
  for k = 0 to 199 do
    Structures.Skiplist.insert reader t (2 * k) k
  done;
  (* Warm the reader's cache. *)
  for k = 0 to 199 do
    ignore (Structures.Skiplist.find reader t (2 * k))
  done;
  let s = Machine.stats m in
  let before = Stats.total_transfers s in
  ignore (Structures.Skiplist.find reader t 100);
  let warm_read_cost = Stats.total_transfers s - before in
  Alcotest.(check int) "warm lookup moves no lines" 0 warm_read_cost;
  (* One insert on a *different* key dirties predecessor towers. *)
  Structures.Skiplist.insert writer t 101 1;
  let before = Stats.total_transfers s in
  ignore (Structures.Skiplist.find reader t 301);
  Alcotest.(check bool)
    "unrelated lookup now transfers lines" true
    (Stats.total_transfers s - before > 0)

(* The COW tree's readers never write shared lines. *)
let test_cow_readers_cache () =
  let m = machine () in
  let reader = Machine.core m 0 and writer = Machine.core m 1 in
  let t = Structures.Cow_tree.create writer in
  for k = 0 to 99 do
    Structures.Cow_tree.insert writer t k k
  done;
  for k = 0 to 99 do
    ignore (Structures.Cow_tree.find reader t k)
  done;
  let s = Machine.stats m in
  let before = Stats.total_transfers s + s.Stats.dram_fills in
  for k = 0 to 99 do
    ignore (Structures.Cow_tree.find reader t k)
  done;
  Alcotest.(check int)
    "repeat lookups fully cached" before
    (Stats.total_transfers s + s.Stats.dram_fills)

let test_skiplist_floor_between () =
  let m = machine () in
  let core = Machine.core m 0 in
  let t = Structures.Skiplist.create core in
  Structures.Skiplist.insert core t 10 1;
  Structures.Skiplist.insert core t 20 2;
  Alcotest.(check (option (pair int int)))
    "floor mid" (Some (10, 1))
    (Structures.Skiplist.floor core t 15);
  Alcotest.(check int) "length" 2 (Structures.Skiplist.length t)

let test_rbtree_ceiling () =
  let m = machine () in
  let core = Machine.core m 0 in
  let t = Structures.Rbtree.create core in
  List.iter (fun k -> Structures.Rbtree.insert core t k k) [ 10; 20; 30 ];
  Alcotest.(check (option (pair int int)))
    "ceiling mid" (Some (20, 20))
    (Structures.Rbtree.ceiling core t 15);
  Alcotest.(check (option (pair int int)))
    "ceiling above" None
    (Structures.Rbtree.ceiling core t 31);
  Alcotest.(check int) "size" 3 (Structures.Rbtree.size t)

let () =
  Alcotest.run "structures"
    [
      ("skiplist", Skiplist_h.tests);
      ("rbtree", Rbtree_h.tests);
      ("cow_tree", Cow_h.tests);
      ( "cost shapes",
        [
          Alcotest.test_case "skiplist interior contention" `Quick
            test_skiplist_interior_contention;
          Alcotest.test_case "cow readers cache" `Quick test_cow_readers_cache;
          Alcotest.test_case "skiplist floor" `Quick test_skiplist_floor_between;
          Alcotest.test_case "rbtree ceiling" `Quick test_rbtree_ceiling;
        ] );
    ]
