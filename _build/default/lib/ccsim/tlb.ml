type entry = { pfn : int; writable : bool }

type t = {
  capacity : int;
  tbl : (int, entry) Hashtbl.t;
  fifo : int Queue.t;  (* insertion order; may contain stale vpns *)
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Tlb.create";
  { capacity; tbl = Hashtbl.create (2 * capacity); fifo = Queue.create () }

let lookup t vpn = Hashtbl.find_opt t.tbl vpn
let mem t vpn = Hashtbl.mem t.tbl vpn
let size t = Hashtbl.length t.tbl

(* Pop stale queue entries until a live one is evicted. *)
let rec evict_one t =
  match Queue.take_opt t.fifo with
  | None -> ()
  | Some vpn ->
      if Hashtbl.mem t.tbl vpn then Hashtbl.remove t.tbl vpn
      else evict_one t

let insert t ~vpn ~pfn ~writable =
  let entry = { pfn; writable } in
  if Hashtbl.mem t.tbl vpn then Hashtbl.replace t.tbl vpn entry
  else begin
    if Hashtbl.length t.tbl >= t.capacity then evict_one t;
    Hashtbl.replace t.tbl vpn entry;
    Queue.push vpn t.fifo
  end

let invalidate t vpn = Hashtbl.remove t.tbl vpn

let invalidate_range t ~lo ~hi =
  if hi - lo < Hashtbl.length t.tbl then
    for vpn = lo to hi - 1 do
      Hashtbl.remove t.tbl vpn
    done
  else begin
    let doomed =
      Hashtbl.fold
        (fun vpn _ acc -> if vpn >= lo && vpn < hi then vpn :: acc else acc)
        t.tbl []
    in
    List.iter (Hashtbl.remove t.tbl) doomed
  end

let flush t =
  Hashtbl.reset t.tbl;
  Queue.clear t.fifo
