type t = {
  line : Line.t;
  mutable writer_free : int;  (* time the last writer released *)
  mutable readers_free : int;  (* latest reader release time *)
}

let create (core : Core.t) =
  let line =
    Line.create core.Core.params core.Core.stats
      ~home_socket:core.Core.socket
  in
  { line; writer_free = 0; readers_free = 0 }

let charge_acquire (core : Core.t) t wait_until =
  let stats = core.Core.stats in
  stats.Stats.lock_acquires <- stats.Stats.lock_acquires + 1;
  Line.write core t.line;
  let now = Core.now core in
  if wait_until > now then begin
    stats.Stats.lock_contended <- stats.Stats.lock_contended + 1;
    stats.Stats.lock_wait_cycles <-
      stats.Stats.lock_wait_cycles + (wait_until - now);
    core.Core.clock <- wait_until
  end

let read_acquire core t = charge_acquire core t t.writer_free

let read_release (core : Core.t) t =
  Line.write core t.line;
  t.readers_free <- max t.readers_free (Core.now core)

let write_acquire core t =
  charge_acquire core t (max t.writer_free t.readers_free)

let write_release (core : Core.t) t =
  Line.write core t.line;
  t.writer_free <- Core.now core
