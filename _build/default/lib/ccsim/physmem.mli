(** Simulated physical memory: a frame allocator with per-core free lists.

    Frames are small integers. Each frame has a home core (its first
    allocator); freeing returns it to the home core's free list, touching
    that list's cache line — so cross-core frees generate the coherence
    traffic the paper observes when the pipeline benchmark "returns freed
    pages to their home nodes". Allocation of a fresh or recycled frame
    charges the page-zeroing cost (the dominant per-iteration cache-miss
    source in section 5.3). *)

type t

val create : Params.t -> Stats.t -> t

val alloc : t -> Core.t -> int
(** Allocate (and zero) a frame for [core]. *)

val free : t -> Core.t -> int -> unit
(** Return a frame to its home core's free list. *)

val live_frames : t -> int
(** Frames currently allocated (for leak tests and memory accounting). *)

val total_frames : t -> int
(** Frames ever created. *)

val set_content : t -> int -> int -> unit
(** [set_content t frame v] records a one-word summary of the frame's
    contents — enough to test copy-on-write and page-cache sharing
    end-to-end on real values. Access costs are charged by the VM layer's
    load/store paths, not here. *)

val get_content : t -> int -> int
(** The frame's content word (0 for a freshly allocated frame). *)
