lib/ccsim/lock.ml: Core Line Stats
