lib/ccsim/params.ml: Format
