lib/ccsim/lock.mli: Core Line
