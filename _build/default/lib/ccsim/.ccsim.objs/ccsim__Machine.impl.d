lib/ccsim/machine.ml: Array Core List Params Physmem Stats
