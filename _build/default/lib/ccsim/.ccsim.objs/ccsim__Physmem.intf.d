lib/ccsim/physmem.mli: Core Params Stats
