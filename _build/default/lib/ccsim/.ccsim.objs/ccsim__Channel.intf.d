lib/ccsim/channel.mli: Core
