lib/ccsim/core.mli: Format Params Random Stats
