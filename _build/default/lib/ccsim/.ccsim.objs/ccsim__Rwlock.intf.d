lib/ccsim/rwlock.mli: Core
