lib/ccsim/machine.mli: Core Params Physmem Stats
