lib/ccsim/line.mli: Core Params Stats
