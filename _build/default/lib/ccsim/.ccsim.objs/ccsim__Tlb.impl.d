lib/ccsim/tlb.ml: Hashtbl List Queue
