lib/ccsim/cell.mli: Core Line
