lib/ccsim/ipi.ml: Core List Machine Params Stats
