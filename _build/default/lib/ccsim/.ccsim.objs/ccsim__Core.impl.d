lib/ccsim/core.ml: Format Params Random Stats
