lib/ccsim/params.mli: Format
