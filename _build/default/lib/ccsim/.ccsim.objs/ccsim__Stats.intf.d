lib/ccsim/stats.mli: Format
