lib/ccsim/stats.ml: Format
