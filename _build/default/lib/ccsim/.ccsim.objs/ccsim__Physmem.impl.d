lib/ccsim/physmem.ml: Array Core Hashtbl Line Params Stats
