lib/ccsim/cell.ml: Core Line
