lib/ccsim/ipi.mli: Core Machine
