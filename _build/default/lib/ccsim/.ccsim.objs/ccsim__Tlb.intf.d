lib/ccsim/tlb.mli:
