lib/ccsim/bitset.mli: Format
