lib/ccsim/channel.ml: Core Line Queue
