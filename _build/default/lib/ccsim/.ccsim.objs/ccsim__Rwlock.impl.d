lib/ccsim/rwlock.ml: Core Line Stats
