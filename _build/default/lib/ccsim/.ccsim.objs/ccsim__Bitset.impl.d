lib/ccsim/bitset.ml: Array Format List Sys
