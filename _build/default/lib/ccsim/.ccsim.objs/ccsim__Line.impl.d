lib/ccsim/line.ml: Bitset Core Params Stats
