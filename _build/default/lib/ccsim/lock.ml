type t = { line : Line.t; mutable free_time : int; mutable holder : int }

let create (core : Core.t) =
  let line =
    Line.create core.Core.params core.Core.stats
      ~home_socket:core.Core.socket
  in
  { line; free_time = 0; holder = -1 }

let create_on line = { line; free_time = 0; holder = -1 }

let acquire (core : Core.t) t =
  let stats = core.Core.stats in
  stats.Stats.lock_acquires <- stats.Stats.lock_acquires + 1;
  Line.write core t.line;
  let now = Core.now core in
  if t.free_time > now then begin
    stats.Stats.lock_contended <- stats.Stats.lock_contended + 1;
    stats.Stats.lock_wait_cycles <-
      stats.Stats.lock_wait_cycles + (t.free_time - now);
    core.Core.clock <- t.free_time
  end;
  t.holder <- core.Core.id

let release (core : Core.t) t =
  Line.write core t.line;
  t.holder <- -1;
  t.free_time <- Core.now core

let try_acquire (core : Core.t) t =
  let stats = core.Core.stats in
  stats.Stats.lock_acquires <- stats.Stats.lock_acquires + 1;
  Line.write core t.line;
  let now = Core.now core in
  if t.free_time > now then begin
    stats.Stats.lock_contended <- stats.Stats.lock_contended + 1;
    false
  end
  else begin
    t.holder <- core.Core.id;
    true
  end

let free_time t = t.free_time
