let multicast machine (sender : Core.t) ~targets =
  let p = Machine.params machine and stats = Machine.stats machine in
  stats.Stats.shootdown_events <- stats.Stats.shootdown_events + 1;
  let ack_max = ref 0 in
  List.iter
    (fun id ->
      if id <> sender.Core.id then begin
        let target = Machine.core machine id in
        (* The interconnect briefly serializes every IPI machine-wide;
           the dominant cost is the sender's own APIC protocol, paid
           serially per target. *)
        let start = max (Core.now sender) (Machine.ipi_free_at machine) in
        Machine.set_ipi_free_at machine (start + p.Params.ipi_channel);
        let sent = start + p.Params.ipi_send in
        sender.Core.clock <- sent;
        let deliver = sent + p.Params.ipi_deliver in
        let start =
          max (target.Core.clock + target.Core.pending_intr) deliver
        in
        let ack = start + p.Params.ipi_handler in
        target.Core.pending_intr <-
          target.Core.pending_intr + p.Params.ipi_handler;
        stats.Stats.ipis <- stats.Stats.ipis + 1;
        stats.Stats.shootdown_targets <- stats.Stats.shootdown_targets + 1;
        ack_max := max !ack_max ack
      end)
    targets;
  if !ack_max > 0 then begin
    let now = Core.now sender in
    if !ack_max > now then begin
      stats.Stats.shootdown_wait_cycles <-
        stats.Stats.shootdown_wait_cycles + (!ack_max - now);
      sender.Core.clock <- !ack_max
    end
  end
