(** Fixed-capacity mutable bit sets.

    Used for cache-line sharer sets and per-page TLB core sets. Capacity is
    fixed at creation; membership operations on out-of-range indices raise
    [Invalid_argument]. *)

type t

val create : int -> t
(** [create n] is an empty set over universe [0 .. n-1]. *)

val capacity : t -> int
val add : t -> int -> unit
val remove : t -> int -> unit
val mem : t -> int -> bool
val clear : t -> unit
val is_empty : t -> bool
val cardinal : t -> int
val iter : (int -> unit) -> t -> unit
val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
val elements : t -> int list
val copy : t -> t
val choose : t -> int option
(** [choose t] is the smallest member, if any. *)

val union_into : dst:t -> t -> unit
(** [union_into ~dst src] adds every member of [src] to [dst]. The two sets
    must have the same capacity. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
