type t = { words : int array; n : int }

let bits_per_word = Sys.int_size

let create n =
  if n < 0 then invalid_arg "Bitset.create";
  { words = Array.make ((n + bits_per_word - 1) / bits_per_word) 0; n }

let capacity t = t.n

let check t i =
  if i < 0 || i >= t.n then invalid_arg "Bitset: index out of range"

let add t i =
  check t i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  t.words.(w) <- t.words.(w) lor (1 lsl b)

let remove t i =
  check t i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  t.words.(w) <- t.words.(w) land lnot (1 lsl b)

let mem t i =
  check t i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  t.words.(w) land (1 lsl b) <> 0

let clear t = Array.fill t.words 0 (Array.length t.words) 0
let is_empty t = Array.for_all (fun w -> w = 0) t.words

let cardinal t =
  let count_word w =
    let rec go w acc = if w = 0 then acc else go (w lsr 1) (acc + (w land 1)) in
    go w 0
  in
  Array.fold_left (fun acc w -> acc + count_word w) 0 t.words

let iter f t =
  for w = 0 to Array.length t.words - 1 do
    let word = t.words.(w) in
    if word <> 0 then
      for b = 0 to bits_per_word - 1 do
        if word land (1 lsl b) <> 0 then f ((w * bits_per_word) + b)
      done
  done

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

let elements t = List.rev (fold (fun i acc -> i :: acc) t [])
let copy t = { words = Array.copy t.words; n = t.n }

let choose t =
  let exception Found of int in
  try
    iter (fun i -> raise (Found i)) t;
    None
  with Found i -> Some i

let union_into ~dst src =
  if dst.n <> src.n then invalid_arg "Bitset.union_into: capacity mismatch";
  for w = 0 to Array.length dst.words - 1 do
    dst.words.(w) <- dst.words.(w) lor src.words.(w)
  done

let equal a b = a.n = b.n && a.words = b.words

let pp ppf t =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Format.pp_print_int)
    (elements t)
