(** {!Refcache} adapted to the common {!Counter_intf.S} interface so the
    Figure 8 benchmark and the counter test suite can run all schemes
    through identical code. *)

type t = Refcache.t
type handle = Refcache.obj

let name = "refcache"
let create machine = Refcache.create machine
let make t core ~init ~on_free = Refcache.make_obj t core ~init ~free:on_free
let inc t core h = Refcache.inc t core h
let dec t core h = Refcache.dec t core h
let value t h = Refcache.true_count t h

let bytes_per_object (_ : Ccsim.Params.t) = 56
